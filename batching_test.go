package ebsn

import (
	"math"
	"testing"
)

var cachedBatchRec *Recommender

// batchRecommender builds a private pipeline for the batching and
// quantization facade tests — they mutate query routing (prepare calls,
// EnableQuantizedQueries), which must not leak into the shared fixture.
func batchRecommender(t testing.TB) *Recommender {
	t.Helper()
	if cachedBatchRec != nil {
		return cachedBatchRec
	}
	rec, err := New(Config{City: CityTiny, Seed: 7, Threads: 4, TrainSteps: tinyTrainSteps})
	if err != nil {
		t.Fatal(err)
	}
	cachedBatchRec = rec
	return rec
}

func pairsBitIdentical(t *testing.T, label string, want, got []PairRecommendation) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d results", label, len(got), len(want))
	}
	for i := range want {
		if want[i].Event != got[i].Event || want[i].Partner != got[i].Partner ||
			math.Float32bits(want[i].Score) != math.Float32bits(got[i].Score) {
			t.Fatalf("%s: rank %d: got %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func TestTopEventPartnersBatchMatchesSingle(t *testing.T) {
	rec := batchRecommender(t)
	if err := rec.PrepareJointSharded(10, 3); err != nil {
		t.Fatal(err)
	}
	users := []int32{0, 1, 2, 3, 4, 5, 6}
	batch, stats, err := rec.TopEventPartnersBatchStats(users, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(users) {
		t.Fatalf("batch size %d", len(batch))
	}
	if len(stats.Shards) != 3 {
		t.Fatalf("stats cover %d shards, want 3", len(stats.Shards))
	}
	for i, u := range users {
		single, err := rec.TopEventPartnersSharded(u, 8)
		if err != nil {
			t.Fatal(err)
		}
		pairsBitIdentical(t, "batch vs sharded single", single, batch[i])
	}
}

func TestTopEventPartnersBatchValidation(t *testing.T) {
	rec := batchRecommender(t)
	if _, err := rec.TopEventPartnersBatch([]int32{0}, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := rec.TopEventPartnersBatch([]int32{-1}, 3); err == nil {
		t.Error("negative user accepted")
	}
	if _, err := rec.TopEventPartnersBatch([]int32{int32(rec.Dataset().NumUsers)}, 3); err == nil {
		t.Error("out-of-range user accepted")
	}
	if out, err := rec.TopEventPartnersBatch(nil, 3); err != nil || len(out) != 0 {
		t.Error("empty batch should be a no-op")
	}
}

func TestTopEventsBatchScratchMatchesSingle(t *testing.T) {
	rec := batchRecommender(t)
	users := []int32{0, 3, 1, 9, 9, 2}
	var sc EventBatchScratch
	for trial := 0; trial < 2; trial++ { // second pass exercises warm buffers
		res, err := rec.TopEventsBatchScratch(users, 6, &sc)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(users) {
			t.Fatalf("got %d result lists", len(res))
		}
		for i, u := range users {
			single, err := rec.TopEvents(u, 6)
			if err != nil {
				t.Fatal(err)
			}
			if len(single) != len(res[i]) {
				t.Fatalf("user %d: %d vs %d results", u, len(res[i]), len(single))
			}
			for j := range single {
				if single[j].Event != res[i][j].Event ||
					math.Float32bits(single[j].Score) != math.Float32bits(res[i][j].Score) {
					t.Fatalf("user %d rank %d: %+v vs %+v", u, j, res[i][j], single[j])
				}
			}
		}
	}
	if _, err := rec.TopEventsBatchScratch([]int32{0}, 0, &sc); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := rec.TopEventsBatchScratch([]int32{-2}, 3, &sc); err == nil {
		t.Error("bad user accepted")
	}
}

// TestQuantizedQueriesFacade flips the recommender into quantized mode
// and checks the routing: single monolithic, sharded, and batched
// queries all run the int8 path and agree with each other bit for bit
// (they share one candidate set and one walk implementation).
func TestQuantizedQueriesFacade(t *testing.T) {
	rec := batchRecommender(t)
	if err := rec.PrepareJointSharded(10, 1); err != nil {
		t.Fatal(err)
	}
	if rec.QuantizedQueries() {
		t.Fatal("quantized before enable")
	}
	if err := rec.EnableQuantizedQueries(); err != nil {
		t.Fatal(err)
	}
	if !rec.QuantizedQueries() {
		t.Fatal("QuantizedQueries false after enable")
	}
	users := []int32{0, 1, 2, 3, 4}
	batch, err := rec.TopEventPartnersBatch(users, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range users {
		mono, _, err := rec.TopEventPartnersStats(u, 6)
		if err != nil {
			t.Fatal(err)
		}
		sharded, err := rec.TopEventPartnersSharded(u, 6)
		if err != nil {
			t.Fatal(err)
		}
		pairsBitIdentical(t, "quantized mono vs sharded", mono, sharded)
		pairsBitIdentical(t, "quantized batch vs single", mono, batch[i])
	}
}
