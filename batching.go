package ebsn

import (
	"fmt"

	"ebsn/internal/ta"
	"ebsn/internal/vecmath"
)

// EnableQuantizedQueries packs int8 mirrors of the joint candidate
// space and routes subsequent joint queries — single, sharded and
// batched — through the quantized search path: approximate int8
// affinity passes over 4x-smaller candidate storage, with the top n·4
// survivors re-ranked against the exact float32 rows (see
// ta.PackQuantized). The quantized path is approximate; its recall@10
// against the exact ranking is gated ≥ 0.99 in CI. Requires a prepared
// joint index or engine (PrepareJoint / PrepareJointSharded) and must
// be serialized with other mutating calls.
func (r *Recommender) EnableQuantizedQueries() error {
	if r.taEngine == nil && r.taIndex == nil {
		return fmt.Errorf("ebsn: no joint index prepared; call PrepareJoint or PrepareJointSharded first")
	}
	if r.taEngine != nil {
		if err := r.taEngine.EnableQuantized(); err != nil {
			return err
		}
	}
	if r.taSet != nil && !r.taSet.Quantized() {
		// Monolithic index prepared separately from the engine (or no
		// engine at all).
		r.taSet.PackQuantized()
	}
	r.taQuantized = true
	return nil
}

// QuantizedQueries reports whether joint queries route through the
// int8-quantized candidate mirrors.
func (r *Recommender) QuantizedQueries() bool { return r.taQuantized }

// TopEventPartnersBatch answers TopEventPartners for many users with
// one index traversal per batch: the affinity passes run as matrix
// panels shared across the batch (vecmath.DotPanel), and on a sharded
// engine the whole batch fans out to each shard once. Results are
// indexed like users. On the exact (non-quantized) path the results are
// bit-identical to per-user TopEventPartners calls — same pairs, same
// score bits, same tie order.
func (r *Recommender) TopEventPartnersBatch(users []int32, n int) ([][]PairRecommendation, error) {
	out, _, err := r.TopEventPartnersBatchStats(users, n)
	return out, err
}

// TopEventPartnersBatchStats is TopEventPartnersBatch plus the batched
// scatter-gather decomposition. When no engine has been prepared it
// builds a one-shard engine with the default pruning, like the sharded
// single-query path.
func (r *Recommender) TopEventPartnersBatchStats(users []int32, n int) ([][]PairRecommendation, EngineBatchStats, error) {
	if n <= 0 {
		return nil, EngineBatchStats{}, fmt.Errorf("ebsn: n must be positive")
	}
	for _, u := range users {
		if int(u) < 0 || int(u) >= r.dataset.NumUsers {
			return nil, EngineBatchStats{}, fmt.Errorf("ebsn: user %d out of range [0,%d)", u, r.dataset.NumUsers)
		}
	}
	if r.taEngine == nil {
		k := len(r.split.TestEvents) / 20
		if k < 1 {
			k = 1
		}
		if err := r.PrepareJointSharded(k, 1); err != nil {
			return nil, EngineBatchStats{}, err
		}
		if r.taQuantized {
			if err := r.taEngine.EnableQuantized(); err != nil {
				return nil, EngineBatchStats{}, err
			}
		}
	}
	vecs := make([][]float32, len(users))
	exclude := make([]int32, len(users))
	for j, u := range users {
		vecs[j] = r.model.UserVec(u)
		exclude[j] = u
	}
	res, stats, err := r.taEngine.SearchBatch(vecs, n, exclude)
	if err != nil {
		return nil, stats, err
	}
	out := make([][]PairRecommendation, len(users))
	for j, rs := range res {
		prs := make([]PairRecommendation, 0, len(rs))
		for _, rr := range rs {
			prs = append(prs, PairRecommendation{
				Event:   r.split.TestEvents[rr.Event],
				Partner: rr.Partner,
				Score:   rr.Score,
			})
		}
		out[j] = prs
	}
	return out, stats, nil
}

// EventBatchScratch owns the buffers of TopEventsBatchScratch: the
// packed test-event matrix, the query panel, the score panel, and the
// reusable result storage. A warmed scratch makes steady-state batched
// cold-event rankings allocation-free. Not safe for concurrent use, and
// tied to the Recommender that warmed it (the packed matrix is rebuilt
// whenever the event count or dimension changes).
type EventBatchScratch struct {
	events []float32 // packed test-event rows, |X|×K
	nev, k int
	gen    *Recommender // whose rows are packed
	qs     []float32
	scores []float32
	out    []Recommendation
	res    [][]Recommendation
}

// TopEventsBatchScratch ranks the cold (test) events for every user in
// one panel pass: the users' vectors score all test events via the
// matrix-panel kernel, and each user's top n falls out of the same
// selection the single-user TopEvents runs — so results are
// bit-identical to per-user TopEvents calls, tie handling included.
// Results are indexed like users, alias sc, and are valid only until
// its next use. Unlike TopEventsBatch (worker-parallel over single-user
// calls, fresh allocations), this variant is single-goroutine and
// allocation-free once warm — the shape the serving coalescer wants.
func (r *Recommender) TopEventsBatchScratch(users []int32, n int, sc *EventBatchScratch) ([][]Recommendation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ebsn: n must be positive")
	}
	for _, u := range users {
		if int(u) < 0 || int(u) >= r.dataset.NumUsers {
			return nil, fmt.Errorf("ebsn: user %d out of range [0,%d)", u, r.dataset.NumUsers)
		}
	}
	k := r.model.K()
	nev := len(r.split.TestEvents)
	if sc.gen != r || sc.nev != nev || sc.k != k {
		// Pack the test-event rows once per (recommender, shape); the
		// model is frozen after build, so the rows cannot change under a
		// warmed scratch.
		sc.events = growF32(sc.events, nev*k)
		for i, x := range r.split.TestEvents {
			copy(sc.events[i*k:(i+1)*k], r.model.EventVec(x))
		}
		sc.gen, sc.nev, sc.k = r, nev, k
	}
	nb := len(users)
	sc.qs = growF32(sc.qs, nb*k)
	for j, u := range users {
		copy(sc.qs[j*k:(j+1)*k], r.model.UserVec(u))
	}
	sc.scores = growF32(sc.scores, nb*nev)
	vecmath.DotPanel(sc.qs, nb, sc.events, k, sc.scores)

	if n > nev {
		n = nev
	}
	if cap(sc.res) < nb {
		sc.res = make([][]Recommendation, nb)
	}
	sc.res = sc.res[:nb]
	if cap(sc.out) < nb*n {
		sc.out = make([]Recommendation, nb*n)
	}
	sc.out = sc.out[:nb*n]
	for j := 0; j < nb; j++ {
		scores := sc.scores[j*nev : (j+1)*nev]
		best := sc.out[j*n : j*n : j*n+n]
		// The same strict-> insertion selection TopEvents runs, reading
		// the panel scores instead of per-event dots: first-seen wins on
		// ties, so ordering matches the single-user path exactly.
		for i, x := range r.split.TestEvents {
			s := scores[i]
			switch {
			case len(best) < n:
				best = append(best, Recommendation{Event: x, Score: s})
			case s > best[n-1].Score:
				best[n-1] = Recommendation{Event: x, Score: s}
			default:
				continue
			}
			for up := len(best) - 1; up > 0 && best[up].Score > best[up-1].Score; up-- {
				best[up], best[up-1] = best[up-1], best[up]
			}
		}
		sc.res[j] = best
	}
	return sc.res, nil
}

// growF32 returns buf grown to length n, reusing capacity; contents are
// unspecified.
func growF32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// quantizedJointQuery reports whether the monolithic single-query path
// should use the quantized index walk for the given set.
func (r *Recommender) quantizedJointQuery(set *ta.CandidateSet) bool {
	return r.taQuantized && set != nil && set.Quantized()
}
