package ebsn

// One benchmark per table and figure of the paper's evaluation section,
// plus the ablation benches DESIGN.md §6 calls out. Each experiment bench
// runs the corresponding internal/experiments harness at a reduced scale
// so `go test -bench=.` finishes in minutes; cmd/ebsn-bench runs the same
// experiments at full scale and prints the paper-style tables recorded in
// EXPERIMENTS.md. Accuracy results surface as custom benchmark metrics
// (acc@10 etc.) so regressions show up in benchstat diffs.

import (
	"fmt"
	"strconv"
	"testing"

	"ebsn/internal/core"
	"ebsn/internal/datagen"
	"ebsn/internal/ebsnet"
	"ebsn/internal/eval"
	"ebsn/internal/experiments"
)

var benchEnv *experiments.Env

func benchEnvironment(b *testing.B) *experiments.Env {
	b.Helper()
	if benchEnv == nil {
		env, err := experiments.NewEnv(datagen.TinyConfig(23))
		if err != nil {
			b.Fatal(err)
		}
		benchEnv = env
	}
	return benchEnv
}

func benchOptions() experiments.Options {
	return experiments.Options{
		K:         16,
		BaseSteps: 150_000,
		Threads:   4,
		EvalCases: 400,
		Ns:        []int{5, 10},
		Seed:      23,
	}
}

// reportAccuracy surfaces a named table cell as a benchmark metric.
func reportAccuracy(b *testing.B, tbl *experiments.Table, rowLabel string, col int, metric string) {
	b.Helper()
	for _, row := range tbl.Rows {
		if row[0] == rowLabel {
			if v, err := strconv.ParseFloat(row[col], 64); err == nil {
				b.ReportMetric(v, metric)
			}
			return
		}
	}
}

func BenchmarkFig3ColdStartEventRec(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig3(env, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportAccuracy(b, tbl, "GEM-A", 2, "gemA_acc@10")
		reportAccuracy(b, tbl, "PTE", 2, "pte_acc@10")
	}
}

func BenchmarkFig4EventPartnerFriends(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig4(env, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportAccuracy(b, tbl, "GEM-A", 2, "gemA_acc@10")
		reportAccuracy(b, tbl, "CFAPR-E", 2, "cfapr_acc@10")
	}
}

func BenchmarkFig5EventPartnerPotential(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig5(env, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportAccuracy(b, tbl, "GEM-A", 2, "gemA_acc@10")
	}
}

func BenchmarkTable2Convergence(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Tab2(env, benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3ConvergencePartner(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Tab3(env, benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4DimensionK(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Tab4(env, benchOptions(), []int{8, 16, 32}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5Lambda(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Tab5(env, benchOptions(), []float64{50, 200}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Scalability(b *testing.B) {
	env := benchEnvironment(b)
	opts := benchOptions()
	opts.BaseSteps = 400_000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(env, opts, []int{1, 2, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6OnlineEfficiency(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Tab6(env, benchOptions(), 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Pruning(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(env, benchOptions(), 10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md §6) ---------------------------------

// ablate trains one GEM config on the bench environment and reports the
// resulting cold-start accuracy as a metric.
func ablate(b *testing.B, mutate func(*core.Config)) {
	b.Helper()
	env := benchEnvironment(b)
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		preset := core.GEMAConfig()
		mutate(&preset)
		m, err := opts.TrainGEM(env.Graphs, preset, opts.BaseSteps)
		if err != nil {
			b.Fatal(err)
		}
		ecfg := eval.DefaultConfig()
		ecfg.Ns = []int{10}
		ecfg.MaxCases = opts.EvalCases
		res, err := eval.EventRecommendation(m, env.Dataset, env.Split, ebsnet.Test, ecfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MustAt(10), "acc@10")
	}
}

// BenchmarkAblationBidirectional isolates Eqn. 4's bidirectional negative
// sampling: run with the degree sampler so only directionality differs.
func BenchmarkAblationBidirectional(b *testing.B) {
	for _, bidir := range []bool{true, false} {
		b.Run(fmt.Sprintf("bidirectional=%v", bidir), func(b *testing.B) {
			ablate(b, func(c *core.Config) {
				c.Sampler = core.SamplerDegree
				c.Bidirectional = bidir
			})
		})
	}
}

// BenchmarkAblationGraphSampling isolates Algorithm 2's edge-proportional
// graph selection against PTE-style uniform selection.
func BenchmarkAblationGraphSampling(b *testing.B) {
	for _, gs := range []core.GraphSampling{core.GraphProportional, core.GraphUniform} {
		b.Run("graphs="+gs.String(), func(b *testing.B) {
			ablate(b, func(c *core.Config) {
				c.Sampler = core.SamplerDegree
				c.GraphSampling = gs
			})
		})
	}
}

// BenchmarkAblationReLU isolates the paper's rectifier projection. The
// non-negative variant collapses (see DESIGN.md §2 and the Config doc):
// its acc@10 metric lands at chance while the signed variant learns.
func BenchmarkAblationReLU(b *testing.B) {
	for _, nn := range []bool{false, true} {
		b.Run(fmt.Sprintf("nonNegative=%v", nn), func(b *testing.B) {
			ablate(b, func(c *core.Config) { c.NonNegative = nn })
		})
	}
}

// BenchmarkAblationSampler compares all four noise samplers end to end.
func BenchmarkAblationSampler(b *testing.B) {
	for _, s := range []core.SamplerKind{core.SamplerUniform, core.SamplerDegree, core.SamplerAdaptive} {
		b.Run("sampler="+s.String(), func(b *testing.B) {
			ablate(b, func(c *core.Config) { c.Sampler = s })
		})
	}
}

// BenchmarkAblationAdaptiveExactVsApprox compares training throughput of
// the exact Eqn. 6 sampler against Algorithm 1's approximation. The exact
// form is O(|V|·K) per draw and exists only for this comparison.
func BenchmarkAblationAdaptiveExactVsApprox(b *testing.B) {
	env := benchEnvironment(b)
	for _, s := range []core.SamplerKind{core.SamplerAdaptive, core.SamplerAdaptiveExact} {
		b.Run("sampler="+s.String(), func(b *testing.B) {
			preset := core.GEMAConfig()
			preset.Sampler = s
			preset.K = 16
			preset.Seed = 23
			m, err := core.NewModel(env.Graphs, preset)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.TrainSteps(100)
			}
		})
	}
}

// BenchmarkTrainThroughput measures raw gradient steps per second for the
// production configuration (GEM-A, K=60).
func BenchmarkTrainThroughput(b *testing.B) {
	env := benchEnvironment(b)
	for _, threads := range []int{1, 4} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			cfg := core.GEMAConfig()
			cfg.Threads = threads
			cfg.Seed = 23
			m, err := core.NewModel(env.Graphs, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.TrainSteps(10_000)
			}
			b.ReportMetric(float64(10_000*b.N)/b.Elapsed().Seconds(), "steps/s")
		})
	}
}

// BenchmarkScoreTriple measures the Eqn. 8 scoring hot path.
func BenchmarkScoreTriple(b *testing.B) {
	env := benchEnvironment(b)
	cfg := core.GEMAConfig()
	cfg.Seed = 23
	m, err := core.NewModel(env.Graphs, cfg)
	if err != nil {
		b.Fatal(err)
	}
	m.TrainSteps(10_000)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float32
	for i := 0; i < b.N; i++ {
		sink += m.ScoreTriple(int32(i%100), int32((i+7)%100), int32(i%50))
	}
	_ = sink
}
