package ebsn

import (
	"fmt"

	"ebsn/internal/engine"
	"ebsn/internal/ta"
)

// Artifact error classes, re-exported from internal/ta for errors.Is
// matching at the facade: Corrupt means the file failed structural
// validation (checksums, truncation, geometry), Stale means it is sound
// but was built from different inputs — a retrain, a different dataset,
// or a different pruneK/shard configuration. Either way the remedy is
// the same: rebuild with PrepareJointSharded and rewrite the artifact
// with SaveIndexArtifact.
var (
	ErrArtifactCorrupt = ta.ErrArtifactCorrupt
	ErrArtifactStale   = ta.ErrArtifactStale
)

// MappedIndexBytes returns the total bytes of zero-copy index artifact
// storage currently open in this process (on unix, memory mapped from
// artifact files, outside the Go heap). Serving exposes it as the
// ebsn_mapped_bytes gauge.
func MappedIndexBytes() int64 { return ta.MappedBytes() }

// indexFingerprint hashes everything that determines the built joint
// index — the normalized build configuration plus the raw bytes of the
// event and partner embedding rows — so an artifact written after one
// build refuses to load against any other model or configuration.
// pruneK and shards are normalized exactly as the build normalizes them
// (pruneK ≤ 0 or beyond the event count keeps the full space; shards
// clamp to [1, partners]), so equivalent configurations map to the same
// artifact.
func (r *Recommender) indexFingerprint(events, partners [][]float32, pruneK, shards int) uint64 {
	pk := pruneK
	if pk <= 0 || pk > len(events) {
		pk = len(events)
	}
	ns := shards
	if ns < 1 {
		ns = 1
	}
	if ns > len(partners) {
		ns = len(partners)
	}
	return ta.Fingerprint(
		[]uint64{uint64(r.cfg.K), uint64(pk), uint64(ns), uint64(len(events)), uint64(len(partners))},
		events, partners)
}

// SaveIndexArtifact serializes the prepared joint engine — packed
// candidate rows, FastIndex bounds, quantized mirrors when
// EnableQuantizedQueries has run, and the shard partition — into a
// zero-copy index artifact at path, written atomically. The artifact is
// stamped with a fingerprint of the current embeddings and build
// configuration; PrepareJointFromArtifact on the same model maps it
// back instead of rebuilding. Requires PrepareJointSharded (the
// embeddings are assumed frozen, as the joint-query contract already
// requires).
func (r *Recommender) SaveIndexArtifact(path string) error {
	if r.taEngine == nil {
		return fmt.Errorf("ebsn: no joint engine prepared; call PrepareJointSharded first")
	}
	events, partners := r.jointVectors()
	fp := r.indexFingerprint(events, partners, r.taPruneK, r.taEngine.Shards())
	return r.taEngine.SaveArtifact(path, fp)
}

// PrepareJointFromArtifact is PrepareJointSharded without the build: it
// maps the artifact at path and aliases the engine's candidate and
// index storage directly onto the mapped pages, after verifying the
// header, every section checksum, and that the artifact's fingerprint
// matches this model's embeddings and the given configuration. A
// mapped engine answers bit-identically to a fresh build. On any error
// — missing file, ErrArtifactCorrupt, ErrArtifactStale — the
// recommender is left untouched and the caller falls back to
// PrepareJointSharded (and typically rewrites the artifact with
// SaveIndexArtifact).
func (r *Recommender) PrepareJointFromArtifact(path string, pruneK, shards int) error {
	events, partners := r.jointVectors()
	fp := r.indexFingerprint(events, partners, pruneK, shards)
	eng, err := engine.OpenArtifact(path, fp)
	if err != nil {
		return err
	}
	r.taEngine = eng
	r.taPruneK = pruneK
	r.resetLive()
	r.taSet = eng.Set()     // non-nil only for one shard
	r.taIndex = eng.Index() // likewise
	return nil
}
