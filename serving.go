package ebsn

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ebsn/internal/ta"
	"ebsn/internal/vecmath"
)

// TopEventsBatch computes top-n cold-event recommendations for many users
// concurrently — the offline path behind daily-digest jobs. Results are
// indexed like users; workers ≤ 0 means Config.Threads. The first
// per-user error cancels the remaining work: other workers stop at their
// next user instead of finishing chunks whose results are already doomed.
func (r *Recommender) TopEventsBatch(users []int32, n, workers int) ([][]Recommendation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ebsn: n must be positive")
	}
	if workers <= 0 {
		workers = r.cfg.Threads
	}
	if workers > len(users) {
		workers = len(users)
	}
	if workers < 1 {
		workers = 1
	}
	out := make([][]Recommendation, len(users))
	var wg sync.WaitGroup
	chunk := (len(users) + workers - 1) / workers
	var failed atomic.Bool
	var firstErr error
	var mu sync.Mutex
	for lo := 0; lo < len(users); lo += chunk {
		hi := lo + chunk
		if hi > len(users) {
			hi = len(users)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if failed.Load() {
					return
				}
				recs, err := r.TopEvents(users[i], n)
				if err != nil {
					failed.Store(true)
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				out[i] = recs
			}
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// LiveEventID identifies an event ingested after training: negative
// values distinguish it from dataset event IDs in PairRecommendation
// results. ID -1 is the first ingested event, -2 the second, and so on.
type LiveEventID = int32

// IngestColdEvent folds a brand-new event (created after training) into
// the serving path: its embedding is synthesized from trained word,
// region and time vectors (FoldInEvent), and its candidate pairs join the
// joint-recommendation index's delta buffer immediately — no retraining,
// no index rebuild. The returned LiveEventID appears (negated) as the
// Event field of PairRecommendations that include it.
func (r *Recommender) IngestColdEvent(words []string, venue int32, start time.Time) (LiveEventID, error) {
	vec, err := r.FoldInEvent(words, venue, start)
	if err != nil {
		return 0, err
	}
	if r.taDynamic == nil {
		if r.taIndex == nil {
			// A multi-shard engine has no monolithic candidate set for
			// the delta to extend; build one with the engine's pruning.
			// Without an engine, apply the usual 5% default.
			k := r.taPruneK
			if r.taEngine == nil && k == 0 {
				k = len(r.split.TestEvents) / 20
				if k < 1 {
					k = 1
				}
			}
			if err := r.PrepareJoint(k); err != nil {
				return 0, err
			}
		}
		r.taDynamic = ta.NewDynamic(r.taSet, r.taPruneK)
	}
	if err := r.taDynamic.AddEvent(vec); err != nil {
		return 0, err
	}
	r.liveEvents++
	return -int32(r.liveEvents), nil
}

// TopEventPartnersLive is TopEventPartners over the base index plus every
// event ingested since. Live events surface with negative Event IDs (see
// LiveEventID); dataset events keep their usual IDs.
func (r *Recommender) TopEventPartnersLive(user int32, n int) ([]PairRecommendation, error) {
	out, _, err := r.TopEventPartnersLiveStats(user, n)
	return out, err
}

// TopEventPartnersLiveStats is TopEventPartnersLive plus the TA work
// counters for the query.
func (r *Recommender) TopEventPartnersLiveStats(user int32, n int) ([]PairRecommendation, SearchStats, error) {
	if int(user) < 0 || int(user) >= r.dataset.NumUsers {
		return nil, SearchStats{}, fmt.Errorf("ebsn: user %d out of range [0,%d)", user, r.dataset.NumUsers)
	}
	if n <= 0 {
		return nil, SearchStats{}, fmt.Errorf("ebsn: n must be positive")
	}
	if r.taDynamic == nil {
		// Nothing ingested yet. Prefer the sharded engine when one is
		// prepared — with shards > 1 there may be no monolithic index,
		// and query paths must not build one (mutation is reserved for
		// the serialized prepare/ingest calls).
		if r.taEngine != nil {
			out, es, err := r.TopEventPartnersShardedStats(user, n)
			return out, es.Agg, err
		}
		return r.TopEventPartnersStats(user, n)
	}
	// As in TopEventPartnersStats: the raw results alias the pooled
	// scratch and are converted before it is released.
	sc := ta.GetScratch()
	defer ta.PutScratch(sc)
	res, stats := r.taDynamic.TopNExcludingScratch(r.model.UserVec(user), n, user, sc)
	base := len(r.split.TestEvents)
	out := make([]PairRecommendation, 0, n)
	for _, rr := range res {
		var event int32
		switch {
		case rr.FromDelta:
			// Delta events are numbered by arrival within the current
			// delta; compacted events shift the numbering, so offset by
			// how many were already folded into the base.
			compacted := r.liveEvents - r.taDynamic.DeltaEvents()
			event = -int32(compacted) - (rr.Event + 1)
		case int(rr.Event) >= base:
			// A previously compacted live event: positions past the
			// original test events map back to arrival order.
			event = -(rr.Event - int32(base) + 1)
		default:
			event = r.split.TestEvents[rr.Event]
		}
		out = append(out, PairRecommendation{Event: event, Partner: rr.Partner, Score: rr.Score})
		if len(out) == n {
			break
		}
	}
	return out, stats, nil
}

// CompactLiveEvents folds all ingested events into the main index (a
// rebuild), keeping query latency flat as the delta grows. Live events
// keep their negative LiveEventIDs in subsequent results: compaction is
// invisible to callers apart from the latency profile.
func (r *Recommender) CompactLiveEvents() {
	if r.taDynamic != nil {
		r.taDynamic.Rebuild()
	}
}

// LiveEventCount returns how many events were ingested since training.
func (r *Recommender) LiveEventCount() int { return r.liveEvents }

// ScoreBreakdown decomposes a joint recommendation score into the three
// pairwise terms of Eqn. 8 — the explanation surface for "why this event,
// why this partner": the user's own affinity for the event, the partner's
// affinity for it, and the social proximity of the two users.
type ScoreBreakdown struct {
	UserEvent    float32 // u·x  — how much the target user likes the event
	PartnerEvent float32 // u'·x — how much the partner likes the event
	Social       float32 // u·u' — how close the two users are
	Total        float32
}

// Explain returns the score decomposition for (user, partner, event) with
// a dataset event ID.
func (r *Recommender) Explain(user, partner, event int32) (ScoreBreakdown, error) {
	if int(user) < 0 || int(user) >= r.dataset.NumUsers {
		return ScoreBreakdown{}, fmt.Errorf("ebsn: user %d out of range", user)
	}
	if int(partner) < 0 || int(partner) >= r.dataset.NumUsers {
		return ScoreBreakdown{}, fmt.Errorf("ebsn: partner %d out of range", partner)
	}
	if int(event) < 0 || int(event) >= r.dataset.NumEvents() {
		return ScoreBreakdown{}, fmt.Errorf("ebsn: event %d out of range", event)
	}
	b := ScoreBreakdown{
		UserEvent:    r.model.ScoreUserEvent(user, event),
		PartnerEvent: r.model.ScoreUserEvent(partner, event),
		Social:       vecmath.Dot(r.model.UserVec(user), r.model.UserVec(partner)),
	}
	b.Total = b.UserEvent + b.PartnerEvent + b.Social
	return b, nil
}
