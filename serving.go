package ebsn

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ebsn/internal/engine"
	"ebsn/internal/ta"
	"ebsn/internal/vecmath"
)

// TopEventsBatch computes top-n cold-event recommendations for many users
// concurrently — the offline path behind daily-digest jobs. Results are
// indexed like users; workers ≤ 0 means Config.Threads. The first
// per-user error cancels the remaining work: other workers stop at their
// next user instead of finishing chunks whose results are already doomed.
func (r *Recommender) TopEventsBatch(users []int32, n, workers int) ([][]Recommendation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ebsn: n must be positive")
	}
	if workers <= 0 {
		workers = r.cfg.Threads
	}
	if workers > len(users) {
		workers = len(users)
	}
	if workers < 1 {
		workers = 1
	}
	out := make([][]Recommendation, len(users))
	var wg sync.WaitGroup
	chunk := (len(users) + workers - 1) / workers
	var failed atomic.Bool
	var firstErr error
	var mu sync.Mutex
	for lo := 0; lo < len(users); lo += chunk {
		hi := lo + chunk
		if hi > len(users) {
			hi = len(users)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if failed.Load() {
					return
				}
				recs, err := r.TopEvents(users[i], n)
				if err != nil {
					failed.Store(true)
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				out[i] = recs
			}
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// LiveEventID identifies an event ingested after training: negative
// values distinguish it from dataset event IDs in PairRecommendation
// results. ID -1 is the first ingested event, -2 the second, and so on.
type LiveEventID = int32

// IngestColdEvent folds a brand-new event (created after training) into
// the serving path: its embedding is synthesized from trained word,
// region and time vectors (FoldInEvent), and its candidate pairs join the
// joint-recommendation index's delta buffer immediately — no retraining,
// no index rebuild. The returned LiveEventID appears (negated) as the
// Event field of PairRecommendations that include it.
func (r *Recommender) IngestColdEvent(words []string, venue int32, start time.Time) (LiveEventID, error) {
	vec, err := r.FoldInEvent(words, venue, start)
	if err != nil {
		return 0, err
	}
	if r.taDelta == nil {
		if r.taEngine == nil && r.taIndex == nil {
			// No base index yet: build the monolithic one with the usual
			// 5% default pruning.
			k := r.taPruneK
			if k == 0 {
				k = len(r.split.TestEvents) / 20
				if k < 1 {
					k = 1
				}
			}
			if err := r.PrepareJoint(k); err != nil {
				return 0, err
			}
		}
		if r.taSet != nil {
			// Monolithic index (or one-shard engine): the delta shares its
			// packed partner rows.
			r.taDelta = ta.NewDeltaForSet(r.taSet, r.taPruneK)
		} else {
			// Multi-shard engine: no monolithic set exists, and the delta
			// must cover every partner, so it packs its own copy of the
			// partner rows. Queries overlay it on the engine's fan-out.
			_, partners := r.jointVectors()
			d, err := ta.NewDelta(partners, r.taPruneK)
			if err != nil {
				return 0, err
			}
			r.taDelta = d
		}
	}
	if err := r.taDelta.AddEvent(vec); err != nil {
		return 0, err
	}
	r.liveEvents++
	return -int32(r.liveEvents), nil
}

// TopEventPartnersLive is TopEventPartners over the base index plus every
// event ingested since. Live events surface with negative Event IDs (see
// LiveEventID); dataset events keep their usual IDs.
func (r *Recommender) TopEventPartnersLive(user int32, n int) ([]PairRecommendation, error) {
	out, _, err := r.TopEventPartnersLiveStats(user, n)
	return out, err
}

// TopEventPartnersLiveStats is TopEventPartnersLive plus the TA work
// counters for the query.
func (r *Recommender) TopEventPartnersLiveStats(user int32, n int) ([]PairRecommendation, SearchStats, error) {
	if int(user) < 0 || int(user) >= r.dataset.NumUsers {
		return nil, SearchStats{}, fmt.Errorf("ebsn: user %d out of range [0,%d)", user, r.dataset.NumUsers)
	}
	if n <= 0 {
		return nil, SearchStats{}, fmt.Errorf("ebsn: n must be positive")
	}
	if r.taDelta == nil {
		// Nothing ingested yet. Prefer the sharded engine when one is
		// prepared — with shards > 1 there may be no monolithic index,
		// and query paths must not build one (mutation is reserved for
		// the serialized prepare/ingest calls).
		if r.taEngine != nil {
			out, es, err := r.TopEventPartnersShardedStats(user, n)
			return out, es.Agg, err
		}
		return r.TopEventPartnersStats(user, n)
	}
	// Two-tier query: exact top-n over the live base (the compacted fold
	// when one was installed, else the plain engine or index), overlaid
	// with an exhaustive scan of the delta. The raw results alias the
	// pooled scratch and are converted before it is released.
	userVec := r.model.UserVec(user)
	sc := ta.GetScratch()
	defer ta.PutScratch(sc)
	var (
		base       []ta.Result
		stats      SearchStats
		baseEvents int
	)
	if eng := r.liveEngine(); eng != nil {
		res, es, err := eng.Search(userVec, n, user)
		if err != nil {
			return nil, SearchStats{}, err
		}
		base, stats, baseEvents = res, es.Agg, eng.NumEvents()
	} else {
		idx, set := r.taLiveIdx, r.taLiveSet
		if idx == nil {
			idx, set = r.taIndex, r.taSet
		}
		if r.quantizedJointQuery(set) {
			base, stats = idx.TopNExcludingQuantizedScratch(userVec, n, user, sc)
		} else {
			base, stats = idx.TopNExcludingScratch(userVec, n, user, sc)
		}
		baseEvents = len(set.Events)
	}
	res := r.taDelta.MergeTopN(base, baseEvents, userVec, n, user, sc, &stats)

	testN := len(r.split.TestEvents)
	out := make([]PairRecommendation, 0, n)
	for _, rr := range res {
		var event int32
		switch {
		case rr.FromDelta:
			// Delta events are numbered by arrival within the current
			// delta; compacted events shift the numbering, so offset by
			// how many were already folded into the base.
			compacted := r.liveEvents - r.taDelta.Events()
			event = -int32(compacted) - (rr.Event + 1)
		case int(rr.Event) >= testN:
			// A previously compacted live event: positions past the
			// original test events map back to arrival order.
			event = -(rr.Event - int32(testN) + 1)
		default:
			event = r.split.TestEvents[rr.Event]
		}
		out = append(out, PairRecommendation{Event: event, Partner: rr.Partner, Score: rr.Score})
		if len(out) == n {
			break
		}
	}
	return out, stats, nil
}

// liveEngine returns the engine the live path fans out over: the
// compacted fork when a compaction has installed one, else the plain
// engine, else nil (monolithic index deployment).
func (r *Recommender) liveEngine() *engine.Engine {
	if r.taLiveEngine != nil {
		return r.taLiveEngine
	}
	return r.taEngine
}

// Compaction is one in-flight background fold of the live delta into a
// fresh main tier. BeginCompaction captures it cheaply under the
// caller's writer lock, Run performs the expensive build with no lock
// held, and InstallCompaction swaps the result in under the writer lock
// again — so queries never wait on a rebuild.
type Compaction struct {
	delta *ta.Delta
	view  ta.DeltaView
	// events is the delta-event count being folded.
	events  int
	workers int
	// quantized carries the recommender's quantized-queries mode into
	// the fold: the folded tier re-packs its int8 mirrors so the swap
	// does not silently revert queries to the exact path.
	quantized bool

	// Exactly one base is set, matching the live tier being forked.
	baseEngine *engine.Engine
	baseSet    *ta.CandidateSet
	baseIdx    *ta.FastIndex

	newEngine *engine.Engine
	newSet    *ta.CandidateSet
	newIdx    *ta.FastIndex
}

// Events returns the number of delta events the compaction folds.
func (c *Compaction) Events() int { return c.events }

// BeginCompaction captures the pending delta as a compaction unit, or
// nil when nothing is pending. Must be serialized with ingestion and
// InstallCompaction (the caller's writer lock); the returned
// compaction's Run needs no lock.
func (r *Recommender) BeginCompaction() *Compaction {
	if r.taDelta == nil || r.taDelta.Events() == 0 {
		return nil
	}
	c := &Compaction{
		delta:     r.taDelta,
		view:      r.taDelta.View(),
		workers:   r.cfg.Threads,
		quantized: r.taQuantized,
	}
	c.events = len(c.view.Events)
	if eng := r.liveEngine(); eng != nil {
		c.baseEngine = eng
	} else if r.taLiveIdx != nil {
		c.baseSet, c.baseIdx = r.taLiveSet, r.taLiveIdx
	} else {
		c.baseSet, c.baseIdx = r.taSet, r.taIndex
	}
	return c
}

// Run builds the folded tier — the expensive step, run on any goroutine
// with no lock held; the old tiers keep serving meanwhile.
func (c *Compaction) Run() error {
	if c.baseEngine != nil {
		eng, err := c.baseEngine.Fold(c.view.Events, c.view.Pairs, c.view.Cross, c.workers)
		if err != nil {
			return err
		}
		c.newEngine = eng
		return nil
	}
	c.newSet, c.newIdx = ta.FoldDelta(c.baseSet, c.view, c.workers)
	if c.quantized {
		c.newSet.PackQuantized()
	}
	return nil
}

// InstallCompaction swaps the folded tier in as the live base and drops
// the folded prefix from the delta (events ingested after
// BeginCompaction stay queued). Serialize with ingestion and queries;
// the call is a pointer swap plus the residual-delta copy. It fails if
// the recommender's delta was replaced since BeginCompaction (a
// re-prepare) — the fold is then stale and discarded.
func (r *Recommender) InstallCompaction(c *Compaction) error {
	if c == nil {
		return nil
	}
	if r.taDelta != c.delta {
		return fmt.Errorf("ebsn: compaction superseded: candidate space re-prepared while the fold ran")
	}
	if c.newEngine != nil {
		r.taLiveEngine = c.newEngine
	} else {
		r.taLiveSet, r.taLiveIdx = c.newSet, c.newIdx
	}
	r.taDelta.Advance(c.view)
	return nil
}

// CompactLiveEvents folds all ingested events into the main index
// synchronously (BeginCompaction + Run + InstallCompaction in one
// call), keeping query latency flat as the delta grows. Live events
// keep their negative LiveEventIDs in subsequent results: compaction is
// invisible to callers apart from the latency profile. Services wanting
// the fold off the request path drive the three steps themselves.
func (r *Recommender) CompactLiveEvents() error {
	c := r.BeginCompaction()
	if c == nil {
		return nil
	}
	if err := c.Run(); err != nil {
		return err
	}
	return r.InstallCompaction(c)
}

// LiveEventCount returns how many events were ingested since training.
func (r *Recommender) LiveEventCount() int { return r.liveEvents }

// PendingLiveEvents returns how many ingested events still sit in the
// mutable delta tier — the compaction queue depth.
func (r *Recommender) PendingLiveEvents() int {
	if r.taDelta == nil {
		return 0
	}
	return r.taDelta.Events()
}

// PendingLivePairs returns the candidate pairs in the delta tier — the
// per-query exhaustive-scan cost until the next compaction.
func (r *Recommender) PendingLivePairs() int {
	if r.taDelta == nil {
		return 0
	}
	return r.taDelta.PairCount()
}

// ScoreBreakdown decomposes a joint recommendation score into the three
// pairwise terms of Eqn. 8 — the explanation surface for "why this event,
// why this partner": the user's own affinity for the event, the partner's
// affinity for it, and the social proximity of the two users.
type ScoreBreakdown struct {
	UserEvent    float32 // u·x  — how much the target user likes the event
	PartnerEvent float32 // u'·x — how much the partner likes the event
	Social       float32 // u·u' — how close the two users are
	Total        float32
}

// Explain returns the score decomposition for (user, partner, event) with
// a dataset event ID.
func (r *Recommender) Explain(user, partner, event int32) (ScoreBreakdown, error) {
	if int(user) < 0 || int(user) >= r.dataset.NumUsers {
		return ScoreBreakdown{}, fmt.Errorf("ebsn: user %d out of range", user)
	}
	if int(partner) < 0 || int(partner) >= r.dataset.NumUsers {
		return ScoreBreakdown{}, fmt.Errorf("ebsn: partner %d out of range", partner)
	}
	if int(event) < 0 || int(event) >= r.dataset.NumEvents() {
		return ScoreBreakdown{}, fmt.Errorf("ebsn: event %d out of range", event)
	}
	b := ScoreBreakdown{
		UserEvent:    r.model.ScoreUserEvent(user, event),
		PartnerEvent: r.model.ScoreUserEvent(partner, event),
		Social:       vecmath.Dot(r.model.UserVec(user), r.model.UserVec(partner)),
	}
	b.Total = b.UserEvent + b.PartnerEvent + b.Social
	return b, nil
}
