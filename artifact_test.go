package ebsn

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"
)

// TestIndexArtifactFacadeRoundTrip saves a prepared joint engine as an
// artifact, maps it into a second recommender over the same embeddings,
// and checks both the exact and quantized query paths answer
// identically — then flips the build configuration and asserts the
// artifact is refused as stale.
func TestIndexArtifactFacadeRoundTrip(t *testing.T) {
	rec, err := New(Config{City: CityTiny, Seed: 11, Threads: 4, TrainSteps: tinyTrainSteps})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.PrepareJointSharded(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := rec.EnableQuantizedQueries(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.art")
	if err := rec.SaveIndexArtifact(path); err != nil {
		t.Fatal(err)
	}

	// Same embeddings, fresh recommender: the reload scenario.
	rec2, err := rec.WithSnapshot(rec.Model().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := rec2.PrepareJointFromArtifact(path, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := rec2.EnableQuantizedQueries(); err != nil {
		t.Fatal(err)
	}
	if got := MappedIndexBytes(); got <= 0 {
		t.Fatalf("MappedIndexBytes = %d after mapping an artifact", got)
	}
	for u := int32(0); u < 25; u++ {
		want, err := rec.TopEventPartnersSharded(u, 8)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rec2.TopEventPartnersSharded(u, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("user %d: mapped engine diverges from built engine", u)
		}
	}

	// A different shard count or pruning is a different build: the same
	// file must be refused as stale, leaving the caller to rebuild.
	if err := rec2.PrepareJointFromArtifact(path, 0, 4); !errors.Is(err, ErrArtifactStale) {
		t.Fatalf("shards=4 against shards=2 artifact: got %v, want ErrArtifactStale", err)
	}
	if err := rec2.PrepareJointFromArtifact(path, 3, 2); !errors.Is(err, ErrArtifactStale) {
		t.Fatalf("pruneK=3 against full-space artifact: got %v, want ErrArtifactStale", err)
	}
}
