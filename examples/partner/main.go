// Joint event-partner recommendation with the Threshold Algorithm: the
// paper's Section IV pipeline. This example builds the transformed
// candidate space over (cold events × all users), compares TA queries
// against brute force, and sweeps the per-partner top-k pruning — a
// miniature of Table VI and Figure 7.
//
//	go run ./examples/partner
package main

import (
	"fmt"
	"log"
	"time"

	"ebsn"
)

func main() {
	rec, err := ebsn.New(ebsn.Config{
		City:    ebsn.CityTiny,
		Seed:    3,
		Variant: ebsn.GEMA,
		Threads: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	d := rec.Dataset()
	testEvents := len(rec.Split().TestEvents)
	fullPairs := testEvents * d.NumUsers
	fmt.Printf("candidate space: %d cold events x %d users = %d event-partner pairs\n\n",
		testEvents, d.NumUsers, fullPairs)

	users := sampleUsers(d.NumUsers, 20)

	// Full space first: every pair is a candidate.
	if err := rec.PrepareJoint(0); err != nil {
		log.Fatal(err)
	}
	fullTime, fullResults := timeQueries(rec, users)
	fmt.Printf("full space   : avg TA query %v\n", fullTime)

	// Pruned spaces: each partner contributes only their top-k events.
	for _, pct := range []int{2, 5, 10} {
		k := testEvents * pct / 100
		if k < 1 {
			k = 1
		}
		if err := rec.PrepareJoint(k); err != nil {
			log.Fatal(err)
		}
		prunedTime, prunedResults := timeQueries(rec, users)
		fmt.Printf("top-%d (%d%%) : avg TA query %v, approximation ratio %.3f\n",
			k, pct, prunedTime, overlap(fullResults, prunedResults))
	}

	// Show one user's final recommendations from the last pruned space.
	u := users[0]
	pairs, err := rec.TopEventPartners(u, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nuser %d's event-partner recommendations:\n", u)
	for i, p := range pairs {
		rel := "new person"
		if d.AreFriends(u, p.Partner) {
			rel = "friend"
		}
		fmt.Printf("  %d. event %d with user %d (%s, score %.3f)\n",
			i+1, p.Event, p.Partner, rel, p.Score)
	}
}

func sampleUsers(n, want int) []int32 {
	stride := n / want
	if stride < 1 {
		stride = 1
	}
	var out []int32
	for u := 0; u < n && len(out) < want; u += stride {
		out = append(out, int32(u))
	}
	return out
}

// timeQueries issues one top-10 query per user and returns the average
// latency plus each user's result set for overlap computation.
func timeQueries(rec *ebsn.Recommender, users []int32) (time.Duration, map[int32]map[[2]int32]bool) {
	results := make(map[int32]map[[2]int32]bool, len(users))
	start := time.Now()
	for _, u := range users {
		pairs, err := rec.TopEventPartners(u, 10)
		if err != nil {
			log.Fatal(err)
		}
		set := make(map[[2]int32]bool, len(pairs))
		for _, p := range pairs {
			set[[2]int32{p.Event, p.Partner}] = true
		}
		results[u] = set
	}
	return time.Since(start) / time.Duration(len(users)), results
}

// overlap measures how much of the full-space top-10 survives pruning,
// averaged over users — Figure 7(b)'s approximation ratio.
func overlap(full, pruned map[int32]map[[2]int32]bool) float64 {
	var hit, total int
	for u, fullSet := range full {
		for pair := range fullSet {
			total++
			if pruned[u][pair] {
				hit++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}
