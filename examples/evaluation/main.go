// Evaluation walkthrough: train two GEM variants with the
// validation-driven convergence API (how the paper determines each
// model's sample budget), then compare them under three lenses — the
// paper's sampled-negative Accuracy@n, full-ranking MRR/NDCG, and the
// training objective itself.
//
//	go run ./examples/evaluation
package main

import (
	"fmt"
	"log"

	"ebsn"
)

func main() {
	fmt.Println("building pipeline (GEM-A, tiny city)...")
	rec, err := ebsn.New(ebsn.Config{
		City:    ebsn.CityTiny,
		Seed:    21,
		Variant: ebsn.GEMA,
		Threads: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Lens 1: the paper's protocol — Accuracy@n against 1000 sampled
	// negatives per held-out attendance.
	cold, err := rec.EvaluateColdStart([]int{1, 5, 10, 20}, 400)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npaper protocol (cold-start, sampled negatives):")
	for i, n := range cold.Ns {
		fmt.Printf("  acc@%-2d = %.3f\n", n, cold.Accuracy[i])
	}

	// Lens 2: full-ranking metrics. No sampling noise; directly
	// comparable across runs and datasets.
	m, err := rec.EvaluateFullRanking([]int{1, 10}, 400)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfull ranking over every cold event:")
	fmt.Printf("  %s\n", m)

	// Lens 3: the optimization objective, per relation graph. A lagging
	// relation means its signal is under-trained (or absent).
	obj, err := rec.TrainingObjective(10_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntraining objective: %.4f\n", obj.Total)
	for name, v := range obj.PerRelation {
		fmt.Printf("  %-16s %.4f\n", name, v)
	}

	// The joint task, for completeness.
	partner, err := rec.EvaluatePartner([]int{10}, 400)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nevent-partner acc@10 = %.3f over %d ground-truth triples\n",
		partner.MustAt(10), partner.Cases)
}
