// A minimal HTTP recommendation service: train on the tiny city, then
// hand everything — routing, caching, load shedding, metrics, graceful
// shutdown — to the production serve package. cmd/ebsn-serve is the
// configurable daemon; this is the smallest embedding of the same stack.
//
//	go run ./examples/server
//	curl 'http://localhost:8080/v1/events?user=3&n=5'
//	curl 'http://localhost:8080/v1/partners?user=3&n=5'
//	curl 'http://localhost:8080/metrics'
package main

import (
	"context"
	"log"
	"os"
	"os/signal"
	"syscall"

	"ebsn"
	"ebsn/serve"
)

func main() {
	log.Println("training model (tiny city)...")
	rec, err := ebsn.New(ebsn.Config{City: ebsn.CityTiny, Seed: 9, Variant: ebsn.GEMA, Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	s := serve.New(rec, serve.Config{Logger: log.Default(), AccessLog: true})
	log.Println("building TA index...")
	if err := s.Warm(); err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Println("serving on :8080")
	if err := s.ListenAndServe(ctx, ":8080"); err != nil {
		log.Fatal(err)
	}
}
