// A minimal HTTP recommendation service on top of the library: the shape
// a production deployment of the paper's system would take. Training
// happens at startup; the TA index is built once; queries are served from
// memory.
//
//	go run ./examples/server
//	curl 'http://localhost:8080/events?user=3&n=5'
//	curl 'http://localhost:8080/partners?user=3&n=5'
//	curl 'http://localhost:8080/stats'
package main

import (
	"encoding/json"
	"log"
	"net/http"
	"strconv"

	"ebsn"
)

type server struct {
	rec *ebsn.Recommender
}

func main() {
	log.Println("training model (tiny city)...")
	rec, err := ebsn.New(ebsn.Config{
		City:    ebsn.CityTiny,
		Seed:    9,
		Variant: ebsn.GEMA,
		Threads: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Println("building TA index...")
	if err := rec.PrepareJoint(0); err != nil {
		log.Fatal(err)
	}
	s := &server{rec: rec}

	mux := http.NewServeMux()
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/partners", s.handlePartners)
	mux.HandleFunc("/stats", s.handleStats)

	addr := ":8080"
	log.Println("serving on", addr)
	log.Fatal(http.ListenAndServe(addr, mux))
}

func (s *server) params(w http.ResponseWriter, r *http.Request) (user int32, n int, ok bool) {
	u, err := strconv.Atoi(r.URL.Query().Get("user"))
	if err != nil || u < 0 || u >= s.rec.Dataset().NumUsers {
		http.Error(w, "events: invalid or missing user parameter", http.StatusBadRequest)
		return 0, 0, false
	}
	n = 10
	if raw := r.URL.Query().Get("n"); raw != "" {
		if v, err := strconv.Atoi(raw); err == nil && v > 0 && v <= 100 {
			n = v
		} else {
			http.Error(w, "invalid n parameter", http.StatusBadRequest)
			return 0, 0, false
		}
	}
	return int32(u), n, true
}

func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	user, n, ok := s.params(w, r)
	if !ok {
		return
	}
	recs, err := s.rec.TopEvents(user, n)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	type outEvent struct {
		Event int32   `json:"event"`
		Start string  `json:"start"`
		Score float32 `json:"score"`
	}
	d := s.rec.Dataset()
	out := make([]outEvent, len(recs))
	for i, e := range recs {
		out[i] = outEvent{e.Event, d.Events[e.Event].Start.Format("2006-01-02T15:04"), e.Score}
	}
	writeJSON(w, out)
}

func (s *server) handlePartners(w http.ResponseWriter, r *http.Request) {
	user, n, ok := s.params(w, r)
	if !ok {
		return
	}
	pairs, err := s.rec.TopEventPartners(user, n)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	type outPair struct {
		Event   int32   `json:"event"`
		Partner int32   `json:"partner"`
		Friend  bool    `json:"friend"`
		Score   float32 `json:"score"`
	}
	d := s.rec.Dataset()
	out := make([]outPair, len(pairs))
	for i, p := range pairs {
		out[i] = outPair{p.Event, p.Partner, d.AreFriends(user, p.Partner), p.Score}
	}
	writeJSON(w, out)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.rec.Dataset().Stats())
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Println("encode:", err)
	}
}
