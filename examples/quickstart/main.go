// Quickstart: generate a synthetic event-based social network, train the
// GEM embedding model, and print joint event-partner recommendations —
// the paper's headline scenario — in under a minute.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ebsn"
)

func main() {
	// Build the whole pipeline on the tiny synthetic city: dataset
	// generation, the cold-start chronological split, the five relation
	// graphs, and GEM-A training.
	rec, err := ebsn.New(ebsn.Config{
		City:    ebsn.CityTiny,
		Seed:    42,
		Variant: ebsn.GEMA,
		Threads: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	d := rec.Dataset()
	fmt.Println("dataset:", d.Stats())
	fmt.Printf("model:   %s, K=%d, %d gradient steps\n\n",
		ebsn.GEMA, rec.Model().K(), rec.Model().Steps())

	// Pick a reasonably active user.
	var user int32
	for u := int32(0); int(u) < d.NumUsers; u++ {
		if len(d.UserEvents(u)) >= 10 && len(d.Friends(u)) >= 5 {
			user = u
			break
		}
	}
	fmt.Printf("target user %d: %d events attended, %d friends\n\n",
		user, len(d.UserEvents(user)), len(d.Friends(user)))

	// Classic cold-start event recommendation: rank future events the
	// user has never interacted with.
	events, err := rec.TopEvents(user, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top 5 cold events:")
	for i, e := range events {
		ev := d.Events[e.Event]
		fmt.Printf("  %d. event %d on %s (score %.3f)\n",
			i+1, e.Event, ev.Start.Format("Mon Jan 2 15:04"), e.Score)
	}

	// The paper's contribution: recommend who to go with, jointly with
	// what to attend, via the TA index over the transformed space.
	pairs, err := rec.TopEventPartners(user, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop 5 event-partner pairs:")
	for i, p := range pairs {
		rel := "new person"
		if d.AreFriends(user, p.Partner) {
			rel = "friend"
		}
		fmt.Printf("  %d. event %d with user %d (%s, score %.3f)\n",
			i+1, p.Event, p.Partner, rel, p.Score)
	}
}
