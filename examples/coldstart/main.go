// Cold-start study: the scenario motivating the paper's Section I —
// events are short-lived and always in the future, so a recommender must
// score events with zero attendance history. This example trains GEM-A
// and the PTE baseline on the same data, evaluates both under the paper's
// 1000-negative Accuracy@n protocol on strictly cold (future) events, and
// finally folds in a brand-new event that did not exist at training time
// and shows it can still be ranked sensibly.
//
// Run with:
//
//	go run ./examples/coldstart
package main

import (
	"fmt"
	"log"
	"time"

	"ebsn"
)

func main() {
	fmt.Println("training GEM-A and PTE on the same synthetic city...")
	variants := []ebsn.Variant{ebsn.GEMA, ebsn.PTE}
	recs := make(map[ebsn.Variant]*ebsn.Recommender, len(variants))
	for _, v := range variants {
		rec, err := ebsn.New(ebsn.Config{
			City:    ebsn.CityTiny,
			Seed:    7,
			Variant: v,
			Threads: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		recs[v] = rec
	}

	// Both models, same protocol, same negatives: the gap is the method.
	fmt.Println("\ncold-start Accuracy@n (1000 sampled negatives per test case):")
	fmt.Printf("%-8s %8s %8s %8s\n", "model", "acc@5", "acc@10", "acc@20")
	for _, v := range variants {
		res, err := recs[v].EvaluateColdStart([]int{5, 10, 20}, 500)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %8.3f %8.3f %8.3f\n",
			v, res.MustAt(5), res.MustAt(10), res.MustAt(20))
	}

	// Fold-in: an event created *after* training. Its embedding is
	// assembled from the trained word, region and time-slot vectors.
	rec := recs[ebsn.GEMA]
	d := rec.Dataset()
	// Borrow the vocabulary of a real event so the description is
	// in-distribution, as a fresh listing on the platform would be.
	template := d.Events[len(d.Events)-1]
	vec, err := rec.FoldInEvent(template.Words, template.Venue,
		time.Date(2013, 3, 8, 19, 0, 0, 0, time.UTC))
	if err != nil {
		log.Fatal(err)
	}

	// Rank users for the folded-in event and check how many of its
	// template's actual attendees appear in the predicted top slice —
	// the fold-in never saw any attendance for either event.
	type us struct {
		u int32
		s float32
	}
	var best []us
	for u := int32(0); int(u) < d.NumUsers; u++ {
		best = append(best, us{u, rec.ScoreColdEvent(u, vec)})
	}
	for i := 0; i < len(best); i++ {
		for j := i + 1; j < len(best); j++ {
			if best[j].s > best[i].s {
				best[i], best[j] = best[j], best[i]
			}
		}
	}
	top := best[:30]
	attendees := map[int32]bool{}
	for _, u := range d.EventUsers(int32(len(d.Events) - 1)) {
		attendees[u] = true
	}
	hits := 0
	for _, e := range top {
		if attendees[e.u] {
			hits++
		}
	}
	fmt.Printf("\nfold-in check: %d of the template event's %d attendees appear "+
		"in the folded-in event's top-30 predicted users\n", hits, len(attendees))
	fmt.Println("(random placement would put ~", 30*len(attendees)/d.NumUsers, "there)")
}
