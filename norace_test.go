//go:build !race

package ebsn

// Full training budgets for the shared facade-test model and the
// checkpoint/resume lifecycle test; see race_test.go for why race
// builds use shorter ones.
const (
	tinyTrainSteps      = 600_000
	lifecycleTrainSteps = 100_000
)
