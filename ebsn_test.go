package ebsn

import (
	"path/filepath"
	"testing"
	"time"

	"ebsn/internal/ebsnet"
)

var cachedRec *Recommender

// tinyRecommender builds one shared pipeline for the facade tests.
func tinyRecommender(t testing.TB) *Recommender {
	t.Helper()
	if cachedRec != nil {
		return cachedRec
	}
	rec, err := New(Config{City: CityTiny, Seed: 5, Threads: 4, TrainSteps: tinyTrainSteps})
	if err != nil {
		t.Fatal(err)
	}
	cachedRec = rec
	return rec
}

func TestParseCityAndVariant(t *testing.T) {
	for _, name := range []string{"tiny", "small", "beijing", "shanghai"} {
		c, err := ParseCity(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.String() != name {
			t.Errorf("round trip %q -> %q", name, c.String())
		}
	}
	if _, err := ParseCity("tokyo"); err == nil {
		t.Error("unknown city accepted")
	}
	for s, want := range map[string]Variant{"gem-a": GEMA, "gem-p": GEMP, "pte": PTE} {
		v, err := ParseVariant(s)
		if err != nil || v != want {
			t.Errorf("ParseVariant(%q) = %v, %v", s, v, err)
		}
	}
	if _, err := ParseVariant("word2vec"); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestGeneratorConfigForScales(t *testing.T) {
	small := GeneratorConfigFor(CitySmall, 1)
	beijing := GeneratorConfigFor(CityBeijing, 1)
	if small.NumUsers >= beijing.NumUsers {
		t.Error("beijing preset not larger than small")
	}
	if beijing.NumUsers != 64113 || beijing.NumEvents != 12955 {
		t.Errorf("beijing preset does not match Table I: %d users %d events",
			beijing.NumUsers, beijing.NumEvents)
	}
}

func TestNewPipeline(t *testing.T) {
	rec := tinyRecommender(t)
	if rec.Dataset() == nil || rec.Split() == nil || rec.RelationGraphs() == nil || rec.Model() == nil {
		t.Fatal("pipeline components missing")
	}
	if rec.Model().Steps() != tinyTrainSteps {
		t.Errorf("Steps = %d, want %d", rec.Model().Steps(), tinyTrainSteps)
	}
	// Every surviving user attended at least 5 events (paper filter).
	d := rec.Dataset()
	for u := int32(0); int(u) < d.NumUsers; u++ {
		if len(d.UserEvents(u)) < 5 {
			t.Fatalf("user %d has %d events after filter", u, len(d.UserEvents(u)))
		}
	}
}

func TestTopEvents(t *testing.T) {
	rec := tinyRecommender(t)
	recs, err := rec.TopEvents(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 7 {
		t.Fatalf("got %d recommendations", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Score > recs[i-1].Score {
			t.Fatal("recommendations not sorted by score")
		}
	}
	// All recommended events are cold (test) events.
	for _, r := range recs {
		if rec.Split().Class(r.Event) != ebsnet.Test {
			t.Fatalf("recommended non-test event %d", r.Event)
		}
	}
	if _, err := rec.TopEvents(-1, 5); err == nil {
		t.Error("negative user accepted")
	}
	if _, err := rec.TopEvents(1, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestTopEventPartners(t *testing.T) {
	rec := tinyRecommender(t)
	pairs, err := rec.TopEventPartners(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("no pairs returned")
	}
	for i, p := range pairs {
		if p.Partner == 2 {
			t.Error("user recommended as their own partner")
		}
		if i > 0 && p.Score > pairs[i-1].Score {
			t.Error("pairs not sorted")
		}
		if rec.Split().Class(p.Event) != ebsnet.Test {
			t.Errorf("pair %d on non-test event %d", i, p.Event)
		}
	}
	if _, err := rec.TopEventPartners(-1, 5); err == nil {
		t.Error("negative user accepted")
	}
}

func TestPrepareJointFullVsPruned(t *testing.T) {
	rec := tinyRecommender(t)
	if err := rec.PrepareJoint(0); err != nil {
		t.Fatal(err)
	}
	full, err := rec.TopEventPartners(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.PrepareJoint(len(rec.Split().TestEvents)); err != nil {
		t.Fatal(err)
	}
	alsoFull, err := rec.TopEventPartners(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Pruning with k = all events is the identity.
	if len(full) != len(alsoFull) {
		t.Fatalf("identity pruning changed result count: %d vs %d", len(full), len(alsoFull))
	}
	for i := range full {
		if full[i] != alsoFull[i] {
			t.Fatalf("identity pruning changed results at %d: %+v vs %+v", i, full[i], alsoFull[i])
		}
	}
}

func TestEvaluateColdStartBeatsChance(t *testing.T) {
	rec := tinyRecommender(t)
	res, err := rec.EvaluateColdStart([]int{10}, 300)
	if err != nil {
		t.Fatal(err)
	}
	// Chance under the protocol is ~10/(pool size); the trained model
	// must clear it by a wide margin.
	if res.MustAt(10) < 0.05 {
		t.Errorf("cold-start acc@10 = %v, suspiciously close to chance", res.MustAt(10))
	}
}

func TestEvaluatePartner(t *testing.T) {
	rec := tinyRecommender(t)
	res, err := rec.EvaluatePartner([]int{10}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cases == 0 {
		t.Fatal("no partner cases evaluated")
	}
}

func TestFoldInEvent(t *testing.T) {
	rec := tinyRecommender(t)
	d := rec.Dataset()
	template := d.Events[0]
	vec, err := rec.FoldInEvent(template.Words, template.Venue, time.Date(2013, 1, 5, 19, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != rec.Model().K() {
		t.Fatalf("fold-in vector length %d", len(vec))
	}
	var nonzero bool
	for _, v := range vec {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("fold-in produced zero vector")
	}
	if _, err := rec.FoldInEvent(nil, int32(len(d.Venues)+1), time.Now()); err == nil {
		t.Error("out-of-range venue accepted")
	}
	_ = rec.ScoreColdEvent(0, vec) // must not panic
}

func TestSaveOpenRoundTrip(t *testing.T) {
	rec := tinyRecommender(t)
	dir := t.TempDir()
	if err := SaveDatasetCSV(rec.Dataset(), filepath.Join(dir, "dataset")); err != nil {
		t.Fatal(err)
	}
	if err := rec.SaveModel(filepath.Join(dir, "model.gob")); err != nil {
		t.Fatal(err)
	}
	opened, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Scores must match the original model exactly.
	for u := int32(0); u < 5; u++ {
		for x := int32(0); x < 5; x++ {
			if opened.Model().ScoreUserEvent(u, x) != rec.Model().ScoreUserEvent(u, x) {
				t.Fatalf("score mismatch after reopen at (%d,%d)", u, x)
			}
		}
	}
	if opened.Model().Steps() != rec.Model().Steps() {
		t.Error("step count lost in round trip")
	}
}

func TestOpenMissingDir(t *testing.T) {
	if _, err := Open(t.TempDir(), Config{}); err == nil {
		t.Fatal("open of empty dir succeeded")
	}
}

func TestBuildRejectsOverFiltering(t *testing.T) {
	d, err := GenerateDataset(GeneratorConfigFor(CityTiny, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(d, Config{MinEventsPerUser: 10_000}); err == nil {
		t.Fatal("pipeline accepted a filter that removes everyone")
	}
}

func TestEvaluateFullRanking(t *testing.T) {
	rec := tinyRecommender(t)
	m, err := rec.EvaluateFullRanking([]int{1, 10}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cases == 0 || m.MRR <= 0 || m.MeanRank < 1 {
		t.Errorf("degenerate full-ranking metrics: %+v", m)
	}
	if m.RecallAt[10] < m.RecallAt[1] {
		t.Error("recall not monotone")
	}
}

func TestTrainingObjective(t *testing.T) {
	rec := tinyRecommender(t)
	est, err := rec.TrainingObjective(2000)
	if err != nil {
		t.Fatal(err)
	}
	if est.Total <= 0 {
		t.Errorf("objective = %v", est.Total)
	}
	if len(est.PerRelation) == 0 {
		t.Error("no per-relation breakdown")
	}
}

func TestDescribeDataset(t *testing.T) {
	rec := tinyRecommender(t)
	d := rec.DescribeDataset()
	if d.Stats.Users != rec.Dataset().NumUsers {
		t.Error("description user count mismatch")
	}
	// Post-filter, every user has >= 5 events, so the median does too.
	if d.UserEventsMedian < 5 {
		t.Errorf("median events per user %d after min-5 filter", d.UserEventsMedian)
	}
}
