package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ebsn"
)

func postBatch(t *testing.T, srv *httptest.Server, path string, body any) (*http.Response, *BatchRankingResponse) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out BatchRankingResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp, &out
}

// samePairs compares two served rankings field by field. Scores are
// float32 and JSON round-trips them exactly, so equality is exact.
func samePairs(t *testing.T, label string, want, got []PairResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d pairs", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: rank %d: got %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func TestBatchEndpointsMatchSingle(t *testing.T) {
	s := warmServer(t, Config{Shards: 2})
	srv := httptest.NewServer(s)
	defer srv.Close()

	users := []int32{0, 3, 1, 5}
	resp, batch := postBatch(t, srv, "/v1/partners", BatchQueryRequest{Users: users, N: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/partners = %d", resp.StatusCode)
	}
	if batch.N != 5 || len(batch.Results) != len(users) {
		t.Fatalf("batch payload = %+v", batch)
	}
	for j, u := range users {
		var single RankingResponse
		getJSON(t, srv, fmt.Sprintf("/v1/partners?user=%d&n=5", u), &single)
		samePairs(t, fmt.Sprintf("user %d batch vs single", u), single.Pairs, batch.Results[j].Pairs)
	}

	resp, batch = postBatch(t, srv, "/v1/events", BatchQueryRequest{Users: users, N: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/events = %d", resp.StatusCode)
	}
	for j, u := range users {
		var single RankingResponse
		getJSON(t, srv, fmt.Sprintf("/v1/events?user=%d&n=4", u), &single)
		if len(single.Events) != len(batch.Results[j].Events) {
			t.Fatalf("user %d: %d vs %d events", u, len(batch.Results[j].Events), len(single.Events))
		}
		for i := range single.Events {
			if single.Events[i] != batch.Results[j].Events[i] {
				t.Fatalf("user %d rank %d: %+v vs %+v", u, i, batch.Results[j].Events[i], single.Events[i])
			}
		}
	}

	// Omitted n falls back to DefaultN.
	if _, b := postBatch(t, srv, "/v1/partners", BatchQueryRequest{Users: []int32{2}}); b.N != 10 {
		t.Fatalf("default batch n = %d, want 10", b.N)
	}

	var m ServerMetrics
	getJSON(t, srv, "/metrics?format=json", &m)
	if m.Batch.Dispatches < 3 || m.Batch.MeanSize <= 0 {
		t.Fatalf("batch metrics = %+v, want ≥3 dispatches", m.Batch)
	}
	if m.Endpoints["partners_batch"].Count != 2 || m.Endpoints["events_batch"].Count != 1 {
		t.Fatalf("batch endpoint counters = %+v", m.Endpoints)
	}
}

func TestBatchValidationAndCaps(t *testing.T) {
	s := warmServer(t, Config{MaxBatch: 4})
	srv := httptest.NewServer(s)
	defer srv.Close()

	for _, tc := range []struct {
		name string
		body string
	}{
		{"over cap", `{"users":[0,1,2,3,4]}`},
		{"empty users", `{"users":[]}`},
		{"missing users", `{}`},
		{"bad user", `{"users":[999999]}`},
		{"negative user", `{"users":[-1]}`},
		{"bad n", `{"users":[1],"n":1000}`},
		{"negative n", `{"users":[1],"n":-2}`},
		{"unknown field", `{"users":[1],"bogus":true}`},
		{"malformed", `{"users":`},
	} {
		for _, path := range []string{"/v1/partners", "/v1/events"} {
			resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s %s = %d, want 400 (never 500)", tc.name, path, resp.StatusCode)
			}
		}
	}
	var m ServerMetrics
	getJSON(t, srv, "/metrics?format=json", &m)
	if m.Batch.Rejected != 2 { // one over-cap rejection per endpoint
		t.Fatalf("batch rejections = %d, want 2", m.Batch.Rejected)
	}
	if m.Batch.Dispatches != 0 {
		t.Fatalf("dispatches = %d after pure-rejection traffic", m.Batch.Dispatches)
	}
}

// TestCoalescedPartnersMatchSingle drives concurrent single-user GETs
// through the micro-batching coalescer and checks that every answer is
// identical to the uncoalesced path — coalescing must be invisible.
func TestCoalescedPartnersMatchSingle(t *testing.T) {
	// Generous window so concurrent arrivals reliably share batches; the
	// cap keeps dispatches at ≤4 users. Cache off so every request takes
	// the coalesced path.
	s := warmServer(t, Config{CoalesceWindow: 20 * time.Millisecond, CoalesceBatch: 4, CacheCapacity: -1})
	srv := httptest.NewServer(s)
	defer srv.Close()
	rec := testRecommender(t)

	const nb = 8
	responses := make([]RankingResponse, nb)
	var wg sync.WaitGroup
	for u := 0; u < nb; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if resp := getJSON(t, srv, fmt.Sprintf("/v1/partners?user=%d&n=6", u), &responses[u]); resp.StatusCode != http.StatusOK {
				t.Errorf("coalesced /v1/partners user %d = %d", u, resp.StatusCode)
			}
		}(u)
	}
	wg.Wait()

	for u := 0; u < nb; u++ {
		want, err := rec.TopEventPartnersSharded(int32(u), 6)
		if err != nil {
			t.Fatal(err)
		}
		got := responses[u].Pairs
		if len(got) != len(want) {
			t.Fatalf("user %d: %d vs %d pairs", u, len(got), len(want))
		}
		for i := range want {
			if got[i].Event != want[i].Event || got[i].Partner != want[i].Partner || got[i].Score != want[i].Score {
				t.Fatalf("user %d rank %d: served %+v, library %+v", u, i, got[i], want[i])
			}
		}
	}

	var m ServerMetrics
	getJSON(t, srv, "/metrics?format=json", &m)
	if m.Batch.CoalescedRequests != nb {
		t.Fatalf("coalesced requests = %d, want %d", m.Batch.CoalescedRequests, nb)
	}
	// Cap 4 over 8 requests means at least two dispatches; scheduling
	// decides the exact widths.
	if m.Batch.Dispatches < 2 {
		t.Fatalf("dispatches = %d, want ≥2", m.Batch.Dispatches)
	}
	if m.Batch.MeanSize <= 0 || m.Batch.MeanSize > 4 {
		t.Fatalf("mean batch size = %v, want in (0,4]", m.Batch.MeanSize)
	}
}

// TestCoalescedMixedNPrefix checks the mixed-n coalescing contract: a
// window holding n=3 and n=9 requests runs once at n=9, and the n=3
// answer is the exact prefix of the n=9 one.
func TestCoalescedMixedNPrefix(t *testing.T) {
	s := warmServer(t, Config{CoalesceWindow: 20 * time.Millisecond, CoalesceBatch: 2, CacheCapacity: -1})
	srv := httptest.NewServer(s)
	defer srv.Close()

	var small, large RankingResponse
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); getJSON(t, srv, "/v1/partners?user=4&n=3", &small) }()
	go func() { defer wg.Done(); getJSON(t, srv, "/v1/partners?user=4&n=9", &large) }()
	wg.Wait()

	if len(small.Pairs) > 3 || len(large.Pairs) > 9 || len(large.Pairs) < len(small.Pairs) {
		t.Fatalf("pair counts: n=3 got %d, n=9 got %d", len(small.Pairs), len(large.Pairs))
	}
	samePairs(t, "n=3 prefix of n=9", large.Pairs[:len(small.Pairs)], small.Pairs)
}

// TestCoalescedConcurrentWithCompactionAndReload is the race-detector
// target for the batched admission layer: coalesced GETs and explicit
// POST batches run against concurrent ingest, background compaction and
// model reloads. Every response must succeed — swaps never surface as
// errors, and the dispatcher's read lock must interleave cleanly with
// the write-lock swap points.
func TestCoalescedConcurrentWithCompactionAndReload(t *testing.T) {
	snapPath := saveTestSnapshot(t)
	s := warmServer(t, Config{
		CoalesceWindow: 500 * time.Microsecond,
		CoalesceBatch:  8,
		SnapshotPath:   snapPath,
	})
	srv := httptest.NewServer(s)
	defer srv.Close()

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				if (w+i)%3 == 0 {
					resp, _ := postBatch(t, srv, "/v1/partners",
						BatchQueryRequest{Users: []int32{int32(i % 8), int32((i + 1) % 8)}, N: 5})
					if resp.StatusCode != http.StatusOK {
						t.Errorf("POST batch = %d during swaps", resp.StatusCode)
					}
				} else {
					if resp := getJSON(t, srv, fmt.Sprintf("/v1/partners?user=%d&n=5", (w+i)%8), nil); resp.StatusCode != http.StatusOK {
						t.Errorf("coalesced GET = %d during swaps", resp.StatusCode)
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			ingestTemplateEvent(t, srv)
			// wait=1 keeps the fold from outliving the test (the shared
			// recommender must not be compacted under a later server).
			resp, err := http.Post(srv.URL+"/v1/compact?wait=1", "application/json", nil)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			resp, err = http.Post(srv.URL+"/v1/reload", "application/json", nil)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("reload = %d", resp.StatusCode)
			}
		}
	}()
	wg.Wait()
}

// TestQuantizedServer exercises the Config.Quantized wiring end to end
// on a throwaway model (tiny budget — only the routing matters): Warm
// enables the int8 mirrors, single and batched answers agree bit for
// bit, and the quantized gauge is exposed.
func TestQuantizedServer(t *testing.T) {
	rec, err := ebsn.New(ebsn.Config{City: ebsn.CityTiny, Seed: 11, Threads: 4, TrainSteps: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	s := New(rec, Config{Quantized: true, Shards: 2})
	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}
	if !rec.QuantizedQueries() {
		t.Fatal("Warm did not enable quantized queries")
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	var single RankingResponse
	if resp := getJSON(t, srv, "/v1/partners?user=1&n=5", &single); resp.StatusCode != http.StatusOK {
		t.Fatalf("quantized /v1/partners = %d", resp.StatusCode)
	}
	if len(single.Pairs) == 0 {
		t.Fatal("quantized query returned no pairs")
	}
	resp, batch := postBatch(t, srv, "/v1/partners", BatchQueryRequest{Users: []int32{1, 2}, N: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quantized POST batch = %d", resp.StatusCode)
	}
	samePairs(t, "quantized batch vs single", single.Pairs, batch.Results[0].Pairs)

	expo, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer expo.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(expo.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ebsn_serve_quantized 1") {
		t.Fatal("exposition missing ebsn_serve_quantized 1")
	}
}
