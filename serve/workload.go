package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"ebsn"
)

// This file is the serving surface of the scenario workloads: the
// constrained variants of GET /v1/events and GET /v1/partners (time
// window and geo radius pushed into the TA walk), POST /v1/group/events
// (multi-member aggregation), and GET /v1/feed (events joined with
// companions). Every request landing here is counted in
// ebsn_serve_workload_requests_total by kind.

// Workload kinds for the workload_requests_total counter.
const (
	workloadGroup       = "group"
	workloadConstrained = "constrained"
	workloadFeed        = "feed"
)

// parseConstraintParams reads the from/until/within query parameters
// shared by the constrained GET endpoints. Absent parameters yield the
// zero Constraint, the signal to stay on the unconstrained path.
func parseConstraintParams(r *http.Request) (ebsn.Constraint, error) {
	q := r.URL.Query()
	return ebsn.ParseConstraint(q.Get("from"), q.Get("until"), q.Get("within"))
}

// parseM reads the per-event companion count for GET /v1/feed, bounded
// like n.
func (s *Server) parseM(r *http.Request) (int, error) {
	m := defaultFeedPartners
	if m > s.cfg.MaxN {
		m = s.cfg.MaxN
	}
	if raw := r.URL.Query().Get("m"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 || v > s.cfg.MaxN {
			return 0, errBadM{max: s.cfg.MaxN}
		}
		m = v
	}
	return m, nil
}

// defaultFeedPartners is the companion count per feed event when ?m= is
// absent.
const defaultFeedPartners = 5

type errBadM struct{ max int }

func (e errBadM) Error() string {
	return "invalid m parameter (1 ≤ m ≤ " + strconv.Itoa(e.max) + ")"
}

// handleEventsConstrained answers GET /v1/events carrying a non-zero
// constraint: the exact top n of the allowed event subset. Cached under
// a key extended with the constraint's canonical form, so distinct
// filters never share an entry.
func (s *Server) handleEventsConstrained(w http.ResponseWriter, r *http.Request, c ebsn.Constraint) {
	sp := s.tracer.Start(epEvents)
	defer sp.End()
	s.metrics.RecordWorkload(workloadConstrained)
	s.mu.RLock()
	rec := s.rec
	user, n, err := s.parseUserN(rec, r)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sp.SetAttr("user", int64(user))
	sp.SetAttr("n", int64(n))
	sp.SetAttr("constrained", 1)
	sp.Stage("cache")
	key := cacheKey(epEvents, user, n, s.gen.Load()) + "|c" + c.Key()
	if v, ok := s.cacheGet(key); ok {
		sp.SetAttr("cache_hit", 1)
		s.mu.RUnlock()
		writeJSON(w, http.StatusOK, v)
		return
	}
	sp.SetAttr("cache_hit", 0)
	sp.Stage("query")
	recs, err := rec.TopEventsConstrained(user, n, c)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	sp.Stage("encode")
	resp := encodeEvents(rec.Dataset(), user, n, recs)
	s.mu.RUnlock()
	s.cachePut(key, resp)
	writeJSON(w, http.StatusOK, resp)
}

// handlePartnersConstrained answers GET /v1/partners carrying a non-zero
// constraint, with the predicate pushed into the TA threshold walk
// (DESIGN.md §3.10). Constrained requests never enter the coalescer:
// folding requests with different predicates into one dispatch would
// either answer some of them against the wrong filter or force the
// batch to the union filter and post-filter — both break the exactness
// contract, so each constrained request runs its own traversal.
func (s *Server) handlePartnersConstrained(w http.ResponseWriter, r *http.Request, c ebsn.Constraint) {
	sp := s.tracer.Start(epPartners)
	defer sp.End()
	s.metrics.RecordWorkload(workloadConstrained)
	s.mu.RLock()
	rec := s.rec
	user, n, err := s.parseUserN(rec, r)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sp.SetAttr("user", int64(user))
	sp.SetAttr("n", int64(n))
	sp.SetAttr("constrained", 1)
	sp.Stage("cache")
	key := cacheKey(epPartners, user, n, s.gen.Load()) + "|c" + c.Key()
	if v, ok := s.cacheGet(key); ok {
		sp.SetAttr("cache_hit", 1)
		s.mu.RUnlock()
		writeJSON(w, http.StatusOK, v)
		return
	}
	sp.SetAttr("cache_hit", 0)
	sp.Stage("ta_search")
	pairs, stats, err := rec.TopEventPartnersConstrainedStats(user, n, c)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.metrics.RecordTA(stats)
	sp.SetAttr("ta_sorted", int64(stats.SortedAccesses))
	sp.SetAttr("ta_random", int64(stats.RandomAccesses))
	sp.SetAttr("ta_candidates", int64(stats.Candidates))
	sp.Stage("encode")
	resp := encodePairs(rec.Dataset(), user, n, pairs)
	s.mu.RUnlock()
	s.cachePut(key, resp)
	writeJSON(w, http.StatusOK, resp)
}

// encodeEvents renders one user's event recommendations with start
// times.
func encodeEvents(d *ebsn.Dataset, user int32, n int, recs []ebsn.Recommendation) *RankingResponse {
	resp := &RankingResponse{User: user, N: n, Events: make([]EventResult, len(recs))}
	for i, e := range recs {
		resp.Events[i] = EventResult{
			Event: e.Event,
			Start: d.Events[e.Event].Start.Format(time.RFC3339),
			Score: e.Score,
		}
	}
	return resp
}

// GroupEventsRequest is the POST /v1/group/events body: the member set,
// an aggregation strategy, and an optional constraint in the same wire
// form as the GET parameters.
type GroupEventsRequest struct {
	// Members are the group's user IDs (at most Config.MaxBatch).
	Members []int32 `json:"members"`
	// N is the result count (Config.DefaultN when 0).
	N int `json:"n,omitempty"`
	// Strategy is "mean" (default) or "least-misery".
	Strategy string `json:"strategy,omitempty"`
	// From and Until bound event start times (RFC 3339, half-open).
	From  string `json:"from,omitempty"`
	Until string `json:"until,omitempty"`
	// Within is "lat,lng,radiusKm" around which event venues must lie.
	Within string `json:"within,omitempty"`
}

// GroupEventsResponse is the POST /v1/group/events payload.
type GroupEventsResponse struct {
	Members  []int32       `json:"members"`
	N        int           `json:"n"`
	Strategy string        `json:"strategy"`
	Events   []EventResult `json:"events"`
}

// handleGroupEvents is POST /v1/group/events: one ranking for a set of
// users under mean or least-misery aggregation, optionally constrained.
// Group responses are not cached — member sets are high-cardinality keys
// with little reuse, exactly like the batch endpoints.
func (s *Server) handleGroupEvents(w http.ResponseWriter, r *http.Request) {
	sp := s.tracer.Start(epGroup)
	defer sp.End()
	s.metrics.RecordWorkload(workloadGroup)
	var req GroupEventsRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad group body: "+err.Error())
		return
	}
	strat, err := ebsn.ParseGroupStrategy(req.Strategy)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	c, err := ebsn.ParseConstraint(req.From, req.Until, req.Within)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	n := req.N
	if n == 0 {
		n = s.cfg.DefaultN
	}
	if n < 0 || n > s.cfg.MaxN {
		writeError(w, http.StatusBadRequest, "invalid n (1 ≤ n ≤ "+strconv.Itoa(s.cfg.MaxN)+")")
		return
	}
	if len(req.Members) == 0 {
		writeError(w, http.StatusBadRequest, "members must be non-empty")
		return
	}
	if len(req.Members) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest,
			"group of "+strconv.Itoa(len(req.Members))+" members exceeds the "+strconv.Itoa(s.cfg.MaxBatch)+"-member limit")
		return
	}
	sp.SetAttr("members", int64(len(req.Members)))
	sp.SetAttr("n", int64(n))
	sp.Stage("query")
	s.mu.RLock()
	rec := s.rec
	nu := rec.Dataset().NumUsers
	for i, u := range req.Members {
		if int(u) < 0 || int(u) >= nu {
			s.mu.RUnlock()
			writeError(w, http.StatusBadRequest,
				"members["+strconv.Itoa(i)+"] = "+strconv.Itoa(int(u))+" out of range (0 ≤ user < "+strconv.Itoa(nu)+")")
			return
		}
	}
	recs, err := rec.GroupTopEventsConstrained(req.Members, n, strat, c)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	sp.Stage("encode")
	d := rec.Dataset()
	resp := &GroupEventsResponse{Members: req.Members, N: n, Strategy: strat.String(), Events: make([]EventResult, len(recs))}
	for i, e := range recs {
		resp.Events[i] = EventResult{
			Event: e.Event,
			Start: d.Events[e.Event].Start.Format(time.RFC3339),
			Score: e.Score,
		}
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

// FeedPartnerResult is one companion inside a feed item.
type FeedPartnerResult struct {
	Partner int32   `json:"partner"`
	Friend  bool    `json:"friend"`
	Score   float32 `json:"score"`
}

// FeedItemResult is one event of the feed with its joined companions.
type FeedItemResult struct {
	Event    int32               `json:"event"`
	Start    string              `json:"start"`
	Score    float32             `json:"score"`
	Partners []FeedPartnerResult `json:"partners"`
}

// FeedResponse is the GET /v1/feed payload.
type FeedResponse struct {
	User  int32            `json:"user"`
	N     int              `json:"n"`
	M     int              `json:"m"`
	Items []FeedItemResult `json:"items"`
}

// handleFeed is GET /v1/feed: the user's top-n events each joined with
// their top-m companions, served through the response cache with a
// bounded staleness window. The cache key folds in the generation (so
// ingest/compaction/reload invalidate immediately) plus a FeedTTL-wide
// time bucket, so even an idle generation re-renders a user's feed at
// most Config.FeedTTL after the previous render.
func (s *Server) handleFeed(w http.ResponseWriter, r *http.Request) {
	sp := s.tracer.Start(epFeed)
	defer sp.End()
	s.metrics.RecordWorkload(workloadFeed)
	s.mu.RLock()
	rec := s.rec
	user, n, err := s.parseUserN(rec, r)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	m, err := s.parseM(r)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sp.SetAttr("user", int64(user))
	sp.SetAttr("n", int64(n))
	sp.SetAttr("m", int64(m))
	sp.Stage("cache")
	key := cacheKey(epFeed, user, n, s.gen.Load()) + "|m" + strconv.Itoa(m)
	if s.cfg.FeedTTL > 0 {
		key += "|b" + strconv.FormatInt(time.Now().UnixNano()/int64(s.cfg.FeedTTL), 36)
	}
	if v, ok := s.cacheGet(key); ok {
		sp.SetAttr("cache_hit", 1)
		s.mu.RUnlock()
		writeJSON(w, http.StatusOK, v)
		return
	}
	sp.SetAttr("cache_hit", 0)
	sp.Stage("query")
	items, err := rec.Feed(user, n, m)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	sp.Stage("encode")
	d := rec.Dataset()
	resp := &FeedResponse{User: user, N: n, M: m, Items: make([]FeedItemResult, len(items))}
	for i, it := range items {
		fr := FeedItemResult{
			Event:    it.Event,
			Start:    d.Events[it.Event].Start.Format(time.RFC3339),
			Score:    it.Score,
			Partners: make([]FeedPartnerResult, len(it.Partners)),
		}
		for j, p := range it.Partners {
			fr.Partners[j] = FeedPartnerResult{
				Partner: p.Partner,
				Friend:  d.AreFriends(user, p.Partner),
				Score:   p.Score,
			}
		}
		resp.Items[i] = fr
	}
	s.mu.RUnlock()
	s.cachePut(key, resp)
	writeJSON(w, http.StatusOK, resp)
}
