package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestShardedServerMatchesMonolithic warms a multi-shard server and
// checks the /v1/partners answers are bit-identical to the facade's
// monolithic path, and that the fan-out shows up in spans and metrics:
// per-shard stages, the shards attr, the engine-shards gauge, and the
// shard-labeled counter/histogram families.
func TestShardedServerMatchesMonolithic(t *testing.T) {
	rec := testRecommender(t)
	s := New(rec, Config{Shards: 3, TraceEnabled: true, SlowQueryThreshold: 1, CacheCapacity: -1})
	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}
	if got := rec.EngineShards(); got != 3 {
		t.Fatalf("EngineShards = %d, want 3", got)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	for user := int32(0); user < 6; user++ {
		var resp RankingResponse
		if r := getJSON(t, srv, "/v1/partners?user="+strconv.Itoa(int(user))+"&n=7", &resp); r.StatusCode != 200 {
			t.Fatalf("/v1/partners user %d = %d", user, r.StatusCode)
		}
		// The monolithic reference: TopEventPartnersStats builds its own
		// unsharded index on first use and leaves the engine in place.
		want, _, err := rec.TopEventPartnersStats(user, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Pairs) != len(want) {
			t.Fatalf("user %d: %d pairs, want %d", user, len(resp.Pairs), len(want))
		}
		for i, p := range resp.Pairs {
			if p.Event != want[i].Event || p.Partner != want[i].Partner || p.Score != want[i].Score {
				t.Fatalf("user %d pair %d = %+v, want %+v", user, i, p, want[i])
			}
		}
	}

	// The live endpoint routes through the engine while no delta exists.
	var live RankingResponse
	if r := getJSON(t, srv, "/v1/partners/live?user=1&n=4", &live); r.StatusCode != 200 {
		t.Fatalf("/v1/partners/live = %d", r.StatusCode)
	}
	if len(live.Pairs) != 4 {
		t.Fatalf("live pairs = %d, want 4", len(live.Pairs))
	}

	// Span decomposition: the newest slow entry must carry one stage per
	// shard and the fan-out attrs.
	var sl SlowlogResponse
	getJSON(t, srv, "/v1/debug/slowlog", &sl)
	if len(sl.Entries) == 0 {
		t.Fatal("no slowlog entries captured")
	}
	found := false
	for _, e := range sl.Entries {
		if e.Name != epPartners || e.Attrs["cache_hit"] != 0 {
			continue
		}
		found = true
		if e.Attrs["shards"] != 3 {
			t.Fatalf("shards attr = %d, want 3 (attrs %+v)", e.Attrs["shards"], e.Attrs)
		}
		var names []string
		for _, st := range e.Stages {
			names = append(names, st.Name)
		}
		if strings.Join(names, ",") != "cache,ta_search,shard0,shard1,shard2,encode" {
			t.Fatalf("stages = %v", names)
		}
	}
	if !found {
		t.Fatal("no partners cache-miss span captured")
	}

	// Shard families in the exposition, with per-shard labels.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"ebsn_serve_engine_shards 3",
		"ebsn_serve_shard_fanout_total",
		`ebsn_serve_shard_searches_total{shard="0"}`,
		`ebsn_serve_shard_searches_total{shard="2"}`,
		`ebsn_serve_shard_wall_seconds_count{shard="1"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q", want)
		}
	}
}
