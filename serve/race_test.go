//go:build race

package serve

// The race detector slows the Hogwild training loop by two orders of
// magnitude (every embedding access is instrumented), so the shared
// test model would take >10min to train and time out the suite. The
// race runs exist to exercise the serving stack's synchronization, not
// the trainer's convergence — a shorter budget covers the same paths.
const testTrainSteps = 20_000
