package serve

import (
	"fmt"
	"testing"
	"time"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(64, 4, time.Minute)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("a", 2)
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("overwrite lost: %v", v)
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses; want 2, 1", hits, misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// One shard of capacity 4 makes eviction order deterministic.
	c := NewCache(4, 1, time.Minute)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	// Touch k0 so k1 is now the least recently used.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.Put("k4", 4)
	if _, ok := c.Get("k1"); ok {
		t.Fatal("LRU entry k1 survived eviction")
	}
	for _, k := range []string{"k0", "k2", "k3", "k4"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c := NewCache(16, 2, 10*time.Second)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	c.Put("a", 1)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("fresh entry missing")
	}
	now = now.Add(11 * time.Second)
	if _, ok := c.Get("a"); ok {
		t.Fatal("expired entry served")
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry still resident: Len = %d", c.Len())
	}
	// ttl < 0 disables expiry.
	c2 := NewCache(16, 2, -1)
	c2.now = func() time.Time { return now }
	c2.Put("a", 1)
	now = now.Add(1000 * time.Hour)
	if _, ok := c2.Get("a"); !ok {
		t.Fatal("entry expired with TTL disabled")
	}
}

func TestCacheShardingSpreadsKeys(t *testing.T) {
	c := NewCache(1024, 8, time.Minute)
	for i := 0; i < 512; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	if c.Len() != 512 {
		t.Fatalf("Len = %d, want 512", c.Len())
	}
	touched := 0
	for _, s := range c.shards {
		if s.ll.Len() > 0 {
			touched++
		}
	}
	if touched < 2 {
		t.Fatalf("only %d of %d shards used — hash is degenerate", touched, len(c.shards))
	}
	if c.Capacity() < 1024 {
		t.Fatalf("Capacity = %d, want >= 1024", c.Capacity())
	}
}
