package serve

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"ebsn"
)

// coalescer is the micro-batching admission layer for single-user
// partner queries: cache-missing GET /v1/partners requests park here for
// up to one window (Config.CoalesceWindow) and are dispatched as one
// engine batch — one index traversal instead of one per request. The
// arrival that fills the batch to Config.CoalesceBatch dispatches early
// without waiting out the window.
//
// Batched answers are bit-identical to sequential ones, so coalescing is
// invisible to clients beyond the (bounded) added latency. Requests with
// different n coalesce too: the batch runs at the largest n and each
// request takes its prefix, which the canonical result order makes exact.
type coalescer struct {
	s      *Server
	window time.Duration
	maxB   int

	mu  sync.Mutex
	cur *pendingBatch
}

// pendingBatch is one open coalescing window. The timer fires the batch
// when the window closes unless a cap-filling arrival dispatched it
// first; both paths race through fire/join under the coalescer's mutex,
// and whichever detaches the batch from cur runs it.
type pendingBatch struct {
	units []coalesceUnit
	timer *time.Timer
}

// coalesceUnit is one parked request. done is buffered so the
// dispatching goroutine never blocks on a waiter.
type coalesceUnit struct {
	user int32
	n    int
	done chan coalesceOut
}

// coalesceOut is one request's share of a dispatched batch.
type coalesceOut struct {
	status int
	resp   *RankingResponse
	errMsg string
	stats  ebsn.SearchStats
	shards int
	batch  int // users in the dispatch that answered this request
}

// join parks one request in the current window (opening one if none is
// open) and blocks until its batch is dispatched. The arrival that fills
// the batch to the cap becomes the dispatch leader, running the engine
// batch on its own goroutine; otherwise the window timer dispatches.
func (c *coalescer) join(user int32, n int) coalesceOut {
	u := coalesceUnit{user: user, n: n, done: make(chan coalesceOut, 1)}
	c.mu.Lock()
	b := c.cur
	if b == nil {
		b = &pendingBatch{}
		c.cur = b
		b.timer = time.AfterFunc(c.window, func() { c.fire(b) })
	}
	b.units = append(b.units, u)
	if len(b.units) >= c.maxB {
		c.cur = nil
		units := b.units
		b.timer.Stop()
		c.mu.Unlock()
		c.dispatch(units)
	} else {
		c.mu.Unlock()
	}
	return <-u.done
}

// fire is the window-timer path: dispatch the batch unless a cap arrival
// already detached it.
func (c *coalescer) fire(b *pendingBatch) {
	c.mu.Lock()
	if c.cur != b {
		c.mu.Unlock()
		return // dispatched at the cap before the window closed
	}
	c.cur = nil
	units := b.units
	c.mu.Unlock()
	c.dispatch(units)
}

// dispatch answers every unit of one detached batch. A panic in the
// engine path is converted into 500s for the whole batch rather than
// crashing the process — the timer goroutine has no recovery middleware
// above it.
func (c *coalescer) dispatch(units []coalesceUnit) {
	outs := make([]coalesceOut, len(units))
	func() {
		defer func() {
			if r := recover(); r != nil {
				c.s.metrics.RecordPanic()
				for i := range outs {
					outs[i] = coalesceOut{status: http.StatusInternalServerError, errMsg: fmt.Sprintf("batch dispatch panic: %v", r)}
				}
			}
		}()
		c.run(units, outs)
	}()
	for i := range units {
		units[i].done <- outs[i]
	}
}

// run executes one engine batch under the model read lock and encodes
// each unit's slice of the results. Waiters hold no locks, so the read
// lock here cannot deadlock against a queued writer.
func (c *coalescer) run(units []coalesceUnit, outs []coalesceOut) {
	s := c.s
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec := s.rec
	nu := rec.Dataset().NumUsers

	// Users were validated at parse time, but a reload may have swapped
	// in a model with a different user space while the request was
	// parked; answer such strays individually instead of failing the
	// whole batch.
	idx := make([]int, 0, len(units))
	users := make([]int32, 0, len(units))
	nmax := 0
	for i, u := range units {
		if int(u.user) < 0 || int(u.user) >= nu {
			outs[i] = coalesceOut{status: http.StatusBadRequest,
				errMsg: fmt.Sprintf("user %d out of range after model reload (0 ≤ user < %d)", u.user, nu)}
			continue
		}
		idx = append(idx, i)
		users = append(users, u.user)
		if u.n > nmax {
			nmax = u.n
		}
	}
	if len(users) == 0 {
		return
	}
	batch, bs, err := rec.TopEventPartnersBatchStats(users, nmax)
	if err != nil {
		for _, i := range idx {
			outs[i] = coalesceOut{status: http.StatusInternalServerError, errMsg: err.Error()}
		}
		return
	}
	s.metrics.RecordTA(bs.Agg)
	if len(bs.Shards) > 0 {
		s.metrics.RecordEngine(ebsn.EngineStats{Shards: bs.Shards, CriticalPath: bs.CriticalPath})
	}
	s.metrics.RecordCoalesced(len(users))
	d := rec.Dataset()
	gen := s.gen.Load()
	for k, i := range idx {
		u := units[i]
		resp := encodePairs(d, u.user, u.n, batch[k])
		// Seed the response cache so identical followers hit without
		// coalescing at all.
		s.cachePut(cacheKey(epPartners, u.user, u.n, gen), resp)
		outs[i] = coalesceOut{
			status: http.StatusOK, resp: resp,
			stats: bs.Agg, shards: len(bs.Shards), batch: len(users),
		}
	}
}

// handlePartnersCoalesced is GET /v1/partners when coalescing is on:
// parse and check the cache under the read lock, then release it and
// park in the coalescer (the dispatcher takes its own read lock — parking
// while holding ours would deadlock behind a queued writer).
func (s *Server) handlePartnersCoalesced(w http.ResponseWriter, r *http.Request) {
	sp := s.tracer.Start(epPartners)
	defer sp.End()
	s.mu.RLock()
	rec := s.rec
	user, n, err := s.parseUserN(rec, r)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sp.SetAttr("user", int64(user))
	sp.SetAttr("n", int64(n))
	sp.Stage("cache")
	key := cacheKey(epPartners, user, n, s.gen.Load())
	if v, ok := s.cacheGet(key); ok {
		sp.SetAttr("cache_hit", 1)
		s.mu.RUnlock()
		writeJSON(w, http.StatusOK, v)
		return
	}
	sp.SetAttr("cache_hit", 0)
	s.mu.RUnlock()
	sp.Stage("coalesce")
	out := s.coalesce.join(user, n)
	sp.SetAttr("batch", int64(out.batch))
	sp.SetAttr("ta_candidates", int64(out.stats.Candidates))
	sp.SetAttr("shards", int64(out.shards))
	if out.status != http.StatusOK {
		writeError(w, out.status, out.errMsg)
		return
	}
	writeJSON(w, http.StatusOK, out.resp)
}
