package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ebsn"
	"ebsn/internal/obs"
)

// Config tunes the server. The zero value is serviceable: every field
// has a production-shaped default.
type Config struct {
	// PruneK is the per-partner candidate pruning for PrepareJoint:
	// 0 keeps the paper's 5%-of-test-events heuristic, < 0 keeps the
	// full candidate space, > 0 is used as-is.
	PruneK int
	// Shards is the partner-range shard count of the scatter-gather
	// query engine built by Warm and Reload (default 1 — a monolithic
	// engine). Values above 1 fan each /v1/partners query out to
	// per-shard TA searches running concurrently; answers are
	// bit-identical for every setting.
	Shards int
	// DefaultN is the result count when ?n= is absent (default 10).
	DefaultN int
	// MaxN caps ?n= (default 100).
	MaxN int
	// CacheCapacity is the total cached responses (default 4096;
	// < 0 disables caching).
	CacheCapacity int
	// CacheShards is the cache shard count (default 8).
	CacheShards int
	// CacheTTL bounds entry staleness (default 60s; < 0 disables expiry).
	CacheTTL time.Duration
	// MaxInFlight is the concurrency bound before load shedding
	// (default 256).
	MaxInFlight int
	// RequestTimeout bounds handler time per request (default 5s;
	// < 0 disables).
	RequestTimeout time.Duration
	// DrainTimeout bounds connection draining on shutdown (default 10s).
	DrainTimeout time.Duration
	// SnapshotPath is the default model snapshot file for Reload — what
	// /v1/reload (with an empty body) and the daemon's SIGHUP handler
	// load. Empty means reloads must name a path explicitly.
	SnapshotPath string
	// Logger receives access-log and panic lines (nil = quiet).
	Logger *log.Logger
	// AccessLog enables per-request log lines on Logger.
	AccessLog bool
	// TraceEnabled turns request-scoped tracing on at startup. Off it
	// costs nothing (spans are nil); it can also be toggled at runtime
	// via Server.Tracer.
	TraceEnabled bool
	// SlowQueryThreshold is the span duration at which a traced request
	// is captured into the slow-query ring (default 100ms; < 0 disables
	// capture while keeping span counting).
	SlowQueryThreshold time.Duration
	// SlowLogSize is the slow-query ring capacity (default 128).
	SlowLogSize int
}

func (c *Config) fill() {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.DefaultN == 0 {
		c.DefaultN = 10
	}
	if c.MaxN == 0 {
		c.MaxN = 100
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 4096
	}
	if c.CacheShards == 0 {
		c.CacheShards = 8
	}
	if c.CacheTTL == 0 {
		c.CacheTTL = time.Minute
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 256
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.SlowQueryThreshold == 0 {
		c.SlowQueryThreshold = 100 * time.Millisecond
	}
	if c.SlowLogSize == 0 {
		c.SlowLogSize = 128
	}
}

// Server wraps a Recommender in the production HTTP stack. Create with
// New, then call Warm to build the TA index and flip readiness.
//
// Concurrency: query handlers hold a read lock; ingestion, compaction
// and the reload swap hold the write lock, serializing the
// Recommender's mutating methods as its contract requires. Reload
// builds its replacement Recommender entirely outside the lock, so
// in-flight queries finish against the old model and the swap itself is
// one pointer write.
type Server struct {
	cfg     Config
	cache   *Cache
	metrics *Metrics
	tracer  *obs.Tracer
	handler http.Handler

	mu     sync.RWMutex // guards rec (the pointer and its live/ingest state)
	rec    *ebsn.Recommender
	gen    atomic.Uint64
	ready  atomic.Bool
	pruneK atomic.Int64 // resolved PrepareJoint argument, for metrics/spans

	reloadMu sync.Mutex // serializes Reload calls end to end
	reload   reloadState
}

// reloadState is the observability record behind /metrics' reload
// section. Reloads are rare; a mutex is fine.
type reloadState struct {
	mu        sync.Mutex
	count     uint64
	failures  uint64
	lastOK    time.Time
	lastErr   string
	lastErrAt time.Time
}

// endpointNames is the fixed metrics key set, one per instrumented route.
const (
	epEvents       = "events"
	epPartners     = "partners"
	epPartnersLive = "partners_live"
	epExplain      = "explain"
	epIngest       = "ingest"
	epCompact      = "compact"
)

// New assembles the server around a trained recommender. The joint
// index is not built yet — call Warm (readiness stays false and /v1
// endpoints answer 503 until then).
func New(rec *ebsn.Recommender, cfg Config) *Server {
	cfg.fill()
	s := &Server{
		rec:     rec,
		cfg:     cfg,
		metrics: NewMetrics(epEvents, epPartners, epPartnersLive, epExplain, epIngest, epCompact),
		tracer:  obs.NewTracer(cfg.SlowLogSize, cfg.SlowQueryThreshold),
	}
	s.tracer.SetEnabled(cfg.TraceEnabled)
	if cfg.CacheCapacity > 0 {
		s.cache = NewCache(cfg.CacheCapacity, cfg.CacheShards, cfg.CacheTTL)
	}
	s.registerStateMetrics()

	api := http.NewServeMux()
	api.HandleFunc("GET /v1/events", s.api(epEvents, s.handleEvents))
	api.HandleFunc("GET /v1/partners", s.api(epPartners, s.handlePartners))
	api.HandleFunc("GET /v1/partners/live", s.api(epPartnersLive, s.handlePartnersLive))
	api.HandleFunc("GET /v1/explain", s.api(epExplain, s.handleExplain))
	api.HandleFunc("POST /v1/ingest", s.api(epIngest, s.handleIngest))
	api.HandleFunc("POST /v1/compact", s.api(epCompact, s.handleCompact))

	// Health and metrics bypass shedding and timeouts: a saturated
	// server must still answer its orchestrator.
	root := http.NewServeMux()
	root.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	root.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ready": true})
	})
	root.HandleFunc("GET /metrics", s.handleMetrics)
	// The slowlog bypasses shedding too: it exists to be read while the
	// server is struggling.
	root.HandleFunc("GET /v1/debug/slowlog", s.handleSlowlog)
	// Reload bypasses shedding and the request timeout: rebuilding the
	// TA index can take longer than a query budget, and a saturated
	// server must still accept the swap that might relieve it.
	root.HandleFunc("POST /v1/reload", s.handleReload)
	root.Handle("/v1/", Chain(api,
		WithConcurrencyLimit(cfg.MaxInFlight, s.metrics.RecordShed),
		WithTimeout(cfg.RequestTimeout),
	))

	var accessLogger *log.Logger
	if cfg.AccessLog {
		accessLogger = cfg.Logger
	}
	s.handler = Chain(root,
		WithLogging(accessLogger),
		WithRecovery(cfg.Logger, s.metrics.RecordPanic),
	)
	return s
}

// registerStateMetrics attaches scrape-time instruments for state owned
// outside the request panel: serving generation and model state (read
// under the model lock), cache effectiveness, reload history, and
// tracing volume. Reading at scrape time instead of mirroring into
// gauges means the exposition can never go stale.
func (s *Server) registerStateMetrics() {
	reg := s.metrics.Registry()
	reg.GaugeFunc("ebsn_serve_ready",
		"1 once Warm has built the joint index.",
		func() float64 {
			if s.ready.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("ebsn_serve_generation",
		"Cache generation; bumps on ingest, compaction, and reload.",
		func() float64 { return float64(s.gen.Load()) })
	reg.GaugeFunc("ebsn_serve_prune_k",
		"Per-partner candidate pruning applied by PrepareJoint (0 = full space).",
		func() float64 { return float64(s.pruneK.Load()) })
	reg.GaugeFunc("ebsn_serve_engine_shards",
		"Partner-range shards of the scatter-gather engine (0 until Warm).",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.rec.EngineShards())
		})
	reg.GaugeFunc("ebsn_serve_live_events",
		"Live-ingested events awaiting compaction.",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.rec.LiveEventCount())
		})
	reg.GaugeFunc("ebsn_serve_model_steps",
		"Gradient steps of the serving model snapshot.",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.rec.Model().Steps())
		})
	reg.CounterFunc("ebsn_serve_reloads_total",
		"Successful zero-downtime model reloads.",
		func() uint64 {
			s.reload.mu.Lock()
			defer s.reload.mu.Unlock()
			return s.reload.count
		})
	reg.CounterFunc("ebsn_serve_reload_failures_total",
		"Model reloads that failed and left the old model serving.",
		func() uint64 {
			s.reload.mu.Lock()
			defer s.reload.mu.Unlock()
			return s.reload.failures
		})
	reg.CounterFunc("ebsn_serve_trace_spans_total",
		"Request spans recorded while tracing was enabled.",
		s.tracer.Spans)
	reg.CounterFunc("ebsn_serve_trace_slow_total",
		"Spans that crossed the slow-query threshold into the slowlog.",
		s.tracer.Slow)
	if s.cache != nil {
		reg.CounterFunc("ebsn_serve_cache_hits_total",
			"Response cache hits.",
			func() uint64 { h, _ := s.cache.Stats(); return h })
		reg.CounterFunc("ebsn_serve_cache_misses_total",
			"Response cache misses.",
			func() uint64 { _, m := s.cache.Stats(); return m })
		reg.GaugeFunc("ebsn_serve_cache_entries",
			"Responses currently cached.",
			func() float64 { return float64(s.cache.Len()) })
		reg.GaugeFunc("ebsn_serve_cache_capacity",
			"Response cache capacity.",
			func() float64 { return float64(s.cache.Capacity()) })
	}
}

// Warm builds the scatter-gather engine (PrepareJointSharded with
// Config.Shards partner-range shards) and marks the server ready. Safe
// to call from a goroutine while the listener is already up: /healthz
// answers during warm-up, /readyz flips afterwards.
func (s *Server) Warm() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ready.Load() {
		return nil
	}
	pk := s.resolvePruneK(s.rec)
	if err := s.rec.PrepareJointSharded(pk, s.cfg.Shards); err != nil {
		return err
	}
	s.pruneK.Store(int64(pk))
	s.ready.Store(true)
	return nil
}

// resolvePruneK maps Config.PruneK onto a PrepareJoint argument: < 0
// keeps the full candidate space, 0 applies the paper's
// 5%-of-test-events heuristic, > 0 is used as-is.
func (s *Server) resolvePruneK(rec *ebsn.Recommender) int {
	pruneK := s.cfg.PruneK
	switch {
	case pruneK < 0:
		return 0 // PrepareJoint(0) keeps the full space
	case pruneK == 0:
		pruneK = len(rec.Split().TestEvents) / 20
		if pruneK < 1 {
			pruneK = 1
		}
	}
	return pruneK
}

// Reload loads the snapshot at path (Config.SnapshotPath when empty),
// rebuilds a Recommender and its TA index entirely off the request
// path, then atomically swaps it in and bumps the cache generation —
// zero downtime: queries in flight finish against the old model, new
// queries see the new one. Any live-ingested events are dropped (the
// retrained model supersedes them). A failed reload leaves the serving
// model untouched; success and failure are both recorded for /metrics.
func (s *Server) Reload(path string) (err error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	defer func() { s.recordReload(path, err) }()

	if path == "" {
		path = s.cfg.SnapshotPath
	}
	if path == "" {
		return errors.New("serve: no snapshot path configured (set Config.SnapshotPath or name one in the reload request)")
	}
	snap, err := ebsn.LoadModelSnapshot(path)
	if err != nil {
		return err
	}
	s.mu.RLock()
	cur := s.rec
	s.mu.RUnlock()
	next, err := cur.WithSnapshot(snap)
	if err != nil {
		return err
	}
	pk := s.resolvePruneK(next)
	if err := next.PrepareJointSharded(pk, s.cfg.Shards); err != nil {
		return err
	}
	s.mu.Lock()
	s.rec = next
	s.mu.Unlock()
	s.pruneK.Store(int64(pk))
	s.gen.Add(1) // orphan every cached response from the old model
	s.ready.Store(true)
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf("reloaded model from %s (steps=%d, generation=%d)", path, snap.Steps, s.gen.Load())
	}
	return nil
}

func (s *Server) recordReload(path string, err error) {
	s.reload.mu.Lock()
	defer s.reload.mu.Unlock()
	if err == nil {
		// The last failure stays visible as history; last_success vs
		// last_error_at tells the reader which outcome is current.
		s.reload.count++
		s.reload.lastOK = time.Now()
		return
	}
	s.reload.failures++
	s.reload.lastErr = err.Error()
	s.reload.lastErrAt = time.Now()
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf("reload from %q failed: %v", path, err)
	}
}

// Ready reports whether Warm has completed.
func (s *Server) Ready() bool { return s.ready.Load() }

// Generation returns the cache generation counter; it bumps on every
// ingest and compaction, orphaning older cached responses.
func (s *Server) Generation() uint64 { return s.gen.Load() }

// Metrics exposes the server's instrument panel.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Tracer exposes the request tracer, e.g. to toggle sampling at runtime
// or adjust the slow-query threshold without a restart.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Cache returns the response cache (nil when disabled).
func (s *Server) Cache() *Cache { return s.cache }

// ServeHTTP implements http.Handler with the full middleware stack.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Serve accepts connections on l until ctx is canceled, then drains
// in-flight requests for up to Config.DrainTimeout before returning.
// A clean shutdown returns nil. Drain progress is observable: the
// draining gauge flips before the listener stops accepting, so a final
// /metrics scrape over an open connection sees ebsn_serve_draining 1
// alongside the live in-flight count, and the shutdown log lines record
// how many requests the drain waited on and how long it took.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	hs := &http.Server{Handler: s, ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		if err == http.ErrServerClosed {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	s.metrics.SetDraining()
	inflight := s.metrics.InFlight()
	start := time.Now()
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf("shutdown: draining %d in-flight requests (timeout %s)", inflight, s.cfg.DrainTimeout)
	}
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := hs.Shutdown(sctx)
	if s.cfg.Logger != nil {
		if err != nil {
			s.cfg.Logger.Printf("shutdown: drain timed out after %s with %d requests still in flight: %v",
				time.Since(start).Round(time.Millisecond), s.metrics.InFlight(), err)
		} else {
			s.cfg.Logger.Printf("shutdown: drain complete in %s (%d requests were in flight)",
				time.Since(start).Round(time.Millisecond), inflight)
		}
	}
	if err != nil {
		return err
	}
	<-errc // reap http.ErrServerClosed
	return nil
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, l)
}

// api wraps a handler with the per-endpoint plumbing every /v1 route
// shares: readiness gating, the in-flight gauge, and status + latency
// metrics.
func (s *Server) api(name string, h http.HandlerFunc) http.HandlerFunc {
	ep := s.metrics.Endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "server warming up")
			return
		}
		s.metrics.AddInFlight(1)
		defer s.metrics.AddInFlight(-1)
		rec := &statusRecorder{ResponseWriter: w}
		t0 := time.Now()
		h(rec, r)
		ep.Observe(rec.statusOr200(), time.Since(t0))
	}
}

// ---- request parsing ----

func (s *Server) parseUserN(rec *ebsn.Recommender, r *http.Request) (user int32, n int, err error) {
	rawUser := r.URL.Query().Get("user")
	u, convErr := strconv.Atoi(rawUser)
	if rawUser == "" || convErr != nil || u < 0 || u >= rec.Dataset().NumUsers {
		return 0, 0, fmt.Errorf("invalid or missing user parameter (0 ≤ user < %d)", rec.Dataset().NumUsers)
	}
	n = s.cfg.DefaultN
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, convErr := strconv.Atoi(raw)
		if convErr != nil || v <= 0 || v > s.cfg.MaxN {
			return 0, 0, fmt.Errorf("invalid n parameter (1 ≤ n ≤ %d)", s.cfg.MaxN)
		}
		n = v
	}
	return int32(u), n, nil
}

func parseID(r *http.Request, key string, limit int) (int32, error) {
	raw := r.URL.Query().Get(key)
	v, err := strconv.Atoi(raw)
	if raw == "" || err != nil || v < 0 || v >= limit {
		return 0, fmt.Errorf("invalid or missing %s parameter (0 ≤ %s < %d)", key, key, limit)
	}
	return int32(v), nil
}

// ---- response shapes ----

// EventResult is one recommended event.
type EventResult struct {
	Event int32   `json:"event"`
	Start string  `json:"start,omitempty"`
	Score float32 `json:"score"`
}

// PairResult is one recommended event-partner pair. Live is true for
// events ingested after training (negative IDs).
type PairResult struct {
	Event   int32   `json:"event"`
	Live    bool    `json:"live,omitempty"`
	Start   string  `json:"start,omitempty"`
	Partner int32   `json:"partner"`
	Friend  bool    `json:"friend"`
	Score   float32 `json:"score"`
}

// RankingResponse is the payload of the three query endpoints.
type RankingResponse struct {
	User   int32         `json:"user"`
	N      int           `json:"n"`
	Events []EventResult `json:"events,omitempty"`
	Pairs  []PairResult  `json:"pairs,omitempty"`
}

// ExplainResponse decomposes one (user, partner, event) score per the
// paper's Eqn. 8.
type ExplainResponse struct {
	User         int32   `json:"user"`
	Partner      int32   `json:"partner"`
	Event        int32   `json:"event"`
	UserEvent    float32 `json:"user_event"`
	PartnerEvent float32 `json:"partner_event"`
	Social       float32 `json:"social"`
	Total        float32 `json:"total"`
	Friend       bool    `json:"friend"`
}

// IngestRequest is the POST /v1/ingest body.
type IngestRequest struct {
	// Words is the event description, tokenized.
	Words []string `json:"words"`
	// Venue is a known venue ID (the fold-in anchor).
	Venue int32 `json:"venue"`
	// Start is the event start time, RFC 3339.
	Start time.Time `json:"start"`
}

// IngestResponse reports the assigned live event ID.
type IngestResponse struct {
	ID         int32  `json:"id"`
	LiveEvents int    `json:"live_events"`
	Generation uint64 `json:"generation"`
}

// CompactResponse reports the post-compaction state.
type CompactResponse struct {
	LiveEvents int    `json:"live_events"`
	Generation uint64 `json:"generation"`
}

// ReloadRequest is the POST /v1/reload body; an empty body (or empty
// path) reloads from Config.SnapshotPath.
type ReloadRequest struct {
	// Path is the snapshot file to load.
	Path string `json:"path,omitempty"`
}

// ReloadResponse reports the post-reload serving state.
type ReloadResponse struct {
	Generation uint64         `json:"generation"`
	ModelSteps int64          `json:"model_steps"`
	Reload     ReloadSnapshot `json:"reload"`
}

// ReloadSnapshot is the reload section of /metrics: how many swaps
// succeeded and failed, when the last one landed, and the last error.
type ReloadSnapshot struct {
	Count       uint64 `json:"count"`
	Failures    uint64 `json:"failures"`
	LastSuccess string `json:"last_success,omitempty"`
	LastError   string `json:"last_error,omitempty"`
	LastErrorAt string `json:"last_error_at,omitempty"`
}

// ServerMetrics is the full /metrics payload.
type ServerMetrics struct {
	MetricsSnapshot
	Generation uint64         `json:"generation"`
	LiveEvents int            `json:"live_events"`
	ModelSteps int64          `json:"model_steps"`
	Reload     ReloadSnapshot `json:"reload"`
	Cache      CacheSnapshot  `json:"cache"`
}

// CacheSnapshot is the cache section of /metrics.
type CacheSnapshot struct {
	Enabled  bool    `json:"enabled"`
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	HitRate  float64 `json:"hit_rate"`
	Entries  int     `json:"entries"`
	Capacity int     `json:"capacity"`
}

// ---- handlers ----

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sp := s.tracer.Start(epEvents)
	defer sp.End()
	s.mu.RLock()
	rec := s.rec
	user, n, err := s.parseUserN(rec, r)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sp.SetAttr("user", int64(user))
	sp.SetAttr("n", int64(n))
	sp.Stage("cache")
	key := cacheKey(epEvents, user, n, s.gen.Load())
	if v, ok := s.cacheGet(key); ok {
		sp.SetAttr("cache_hit", 1)
		s.mu.RUnlock()
		writeJSON(w, http.StatusOK, v)
		return
	}
	sp.SetAttr("cache_hit", 0)
	sp.Stage("query")
	recs, err := rec.TopEvents(user, n)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	sp.Stage("encode")
	d := rec.Dataset()
	resp := &RankingResponse{User: user, N: n, Events: make([]EventResult, len(recs))}
	for i, e := range recs {
		resp.Events[i] = EventResult{
			Event: e.Event,
			Start: d.Events[e.Event].Start.Format(time.RFC3339),
			Score: e.Score,
		}
	}
	s.mu.RUnlock()
	s.cachePut(key, resp)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePartners(w http.ResponseWriter, r *http.Request) {
	s.servePairs(w, r, epPartners, func(rec *ebsn.Recommender, user int32, n int) ([]ebsn.PairRecommendation, ebsn.SearchStats, *ebsn.EngineStats, error) {
		// Warm prepared the engine; answer through the scatter-gather
		// path so the per-shard decomposition reaches spans and
		// /metrics. The monolithic path remains as a fallback for a
		// recommender warmed outside this server.
		if rec.EngineShards() > 0 {
			pairs, es, err := rec.TopEventPartnersShardedStats(user, n)
			return pairs, es.Agg, &es, err
		}
		pairs, stats, err := rec.TopEventPartnersStats(user, n)
		return pairs, stats, nil, err
	})
}

func (s *Server) handlePartnersLive(w http.ResponseWriter, r *http.Request) {
	s.servePairs(w, r, epPartnersLive, func(rec *ebsn.Recommender, user int32, n int) ([]ebsn.PairRecommendation, ebsn.SearchStats, *ebsn.EngineStats, error) {
		pairs, stats, err := rec.TopEventPartnersLiveStats(user, n)
		return pairs, stats, nil, err
	})
}

func (s *Server) servePairs(w http.ResponseWriter, r *http.Request, ep string,
	query func(*ebsn.Recommender, int32, int) ([]ebsn.PairRecommendation, ebsn.SearchStats, *ebsn.EngineStats, error)) {
	sp := s.tracer.Start(ep)
	defer sp.End()
	s.mu.RLock()
	rec := s.rec
	user, n, err := s.parseUserN(rec, r)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sp.SetAttr("user", int64(user))
	sp.SetAttr("n", int64(n))
	sp.Stage("cache")
	key := cacheKey(ep, user, n, s.gen.Load())
	if v, ok := s.cacheGet(key); ok {
		sp.SetAttr("cache_hit", 1)
		s.mu.RUnlock()
		writeJSON(w, http.StatusOK, v)
		return
	}
	sp.SetAttr("cache_hit", 0)
	sp.Stage("ta_search")
	pairs, stats, estats, err := query(rec, user, n)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.metrics.RecordTA(stats)
	sp.SetAttr("ta_sorted", int64(stats.SortedAccesses))
	sp.SetAttr("ta_random", int64(stats.RandomAccesses))
	sp.SetAttr("ta_candidates", int64(stats.Candidates))
	sp.SetAttr("prune_k", s.pruneK.Load())
	if estats != nil {
		// Scatter-gather decomposition: one explicit-duration stage per
		// shard (they ran concurrently, so wall-clock stage boundaries
		// cannot measure them) plus the fan-out attrs. Spans cap at
		// eight stages; shard stages beyond the cap are dropped and
		// counted in the span's truncated field.
		s.metrics.RecordEngine(*estats)
		sp.SetAttr("shards", int64(len(estats.Shards)))
		sp.SetAttr("critical_path_us", int64(estats.CriticalPath/time.Microsecond))
		for _, ss := range estats.Shards {
			sp.StageDur("shard"+strconv.Itoa(ss.Shard), ss.Wall)
		}
	}
	sp.Stage("encode")
	d := rec.Dataset()
	resp := &RankingResponse{User: user, N: n, Pairs: make([]PairResult, len(pairs))}
	for i, p := range pairs {
		pr := PairResult{
			Event:   p.Event,
			Live:    p.Event < 0,
			Partner: p.Partner,
			Friend:  d.AreFriends(user, p.Partner),
			Score:   p.Score,
		}
		if p.Event >= 0 {
			pr.Start = d.Events[p.Event].Start.Format(time.RFC3339)
		}
		resp.Pairs[i] = pr
	}
	s.mu.RUnlock()
	s.cachePut(key, resp)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec := s.rec
	d := rec.Dataset()
	user, err := parseID(r, "user", d.NumUsers)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	partner, err := parseID(r, "partner", d.NumUsers)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	event, err := parseID(r, "event", d.NumEvents())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	b, err := rec.Explain(user, partner, event)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, &ExplainResponse{
		User: user, Partner: partner, Event: event,
		UserEvent: b.UserEvent, PartnerEvent: b.PartnerEvent,
		Social: b.Social, Total: b.Total,
		Friend: d.AreFriends(user, partner),
	})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad ingest body: "+err.Error())
		return
	}
	if len(req.Words) == 0 {
		writeError(w, http.StatusBadRequest, "ingest: words must be non-empty")
		return
	}
	if req.Start.IsZero() {
		writeError(w, http.StatusBadRequest, "ingest: start must be a valid RFC 3339 time")
		return
	}
	s.mu.Lock()
	rec := s.rec
	if int(req.Venue) < 0 || int(req.Venue) >= len(rec.Dataset().Venues) {
		s.mu.Unlock()
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("ingest: venue %d out of range [0,%d)", req.Venue, len(rec.Dataset().Venues)))
		return
	}
	id, err := rec.IngestColdEvent(req.Words, req.Venue, req.Start)
	live := rec.LiveEventCount()
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	gen := s.gen.Add(1)
	writeJSON(w, http.StatusOK, &IngestResponse{ID: id, LiveEvents: live, Generation: gen})
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.rec.CompactLiveEvents()
	live := s.rec.LiveEventCount()
	s.mu.Unlock()
	gen := s.gen.Add(1)
	writeJSON(w, http.StatusOK, &CompactResponse{LiveEvents: live, Generation: gen})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req ReloadRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "bad reload body: "+err.Error())
		return
	}
	if err := s.Reload(req.Path); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.mu.RLock()
	steps := s.rec.Model().Steps()
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, &ReloadResponse{
		Generation: s.gen.Load(),
		ModelSteps: steps,
		Reload:     s.reloadSnapshot(),
	})
}

// reloadSnapshot renders the reload counters for /metrics and the
// reload response.
func (s *Server) reloadSnapshot() ReloadSnapshot {
	s.reload.mu.Lock()
	defer s.reload.mu.Unlock()
	rs := ReloadSnapshot{
		Count:     s.reload.count,
		Failures:  s.reload.failures,
		LastError: s.reload.lastErr,
	}
	if !s.reload.lastOK.IsZero() {
		rs.LastSuccess = s.reload.lastOK.Format(time.RFC3339)
	}
	if !s.reload.lastErrAt.IsZero() {
		rs.LastErrorAt = s.reload.lastErrAt.Format(time.RFC3339)
	}
	return rs
}

// handleMetrics serves Prometheus text exposition by default; the
// pre-Prometheus JSON panel survives behind ?format=json for human
// curls and the tests that assert on structured values.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") != "json" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.metrics.WriteExposition(w)
		return
	}
	s.mu.RLock()
	live := s.rec.LiveEventCount()
	steps := s.rec.Model().Steps()
	s.mu.RUnlock()
	m := ServerMetrics{
		MetricsSnapshot: s.metrics.Snapshot(),
		Generation:      s.gen.Load(),
		LiveEvents:      live,
		ModelSteps:      steps,
		Reload:          s.reloadSnapshot(),
	}
	if s.cache != nil {
		hits, misses := s.cache.Stats()
		m.Cache = CacheSnapshot{
			Enabled:  true,
			Hits:     hits,
			Misses:   misses,
			Entries:  s.cache.Len(),
			Capacity: s.cache.Capacity(),
		}
		if total := hits + misses; total > 0 {
			m.Cache.HitRate = float64(hits) / float64(total)
		}
	}
	writeJSON(w, http.StatusOK, m)
}

// SlowlogResponse is the GET /v1/debug/slowlog payload: the newest-first
// contents of the slow-query ring plus the tracer's current settings, so
// a reader can tell "no slow queries" from "tracing is off".
type SlowlogResponse struct {
	Enabled     bool            `json:"enabled"`
	ThresholdMs float64         `json:"threshold_ms"`
	Spans       uint64          `json:"spans"`
	Captured    uint64          `json:"captured"`
	Entries     []obs.SlowEntry `json:"entries"`
}

func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	entries := s.tracer.SlowLog().Snapshot()
	if entries == nil {
		entries = []obs.SlowEntry{} // render [] rather than null
	}
	writeJSON(w, http.StatusOK, &SlowlogResponse{
		Enabled:     s.tracer.Enabled(),
		ThresholdMs: float64(s.tracer.SlowThreshold()) / float64(time.Millisecond),
		Spans:       s.tracer.Spans(),
		Captured:    s.tracer.SlowLog().Total(),
		Entries:     entries,
	})
}

// ---- cache plumbing ----

func cacheKey(ep string, user int32, n int, gen uint64) string {
	return ep + "|u" + strconv.Itoa(int(user)) + "|n" + strconv.Itoa(n) + "|g" + strconv.FormatUint(gen, 10)
}

func (s *Server) cacheGet(key string) (any, bool) {
	if s.cache == nil {
		return nil, false
	}
	return s.cache.Get(key)
}

func (s *Server) cachePut(key string, v any) {
	if s.cache != nil {
		s.cache.Put(key, v)
	}
}

// ---- JSON helpers ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
