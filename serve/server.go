package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ebsn"
	"ebsn/internal/obs"
	"ebsn/internal/text"
)

// Config tunes the server. The zero value is serviceable: every field
// has a production-shaped default.
type Config struct {
	// PruneK is the per-partner candidate pruning for PrepareJoint:
	// 0 keeps the paper's 5%-of-test-events heuristic, < 0 keeps the
	// full candidate space, > 0 is used as-is.
	PruneK int
	// Shards is the partner-range shard count of the scatter-gather
	// query engine built by Warm and Reload (default 1 — a monolithic
	// engine). Values above 1 fan each /v1/partners query out to
	// per-shard TA searches running concurrently; answers are
	// bit-identical for every setting.
	Shards int
	// Quantized routes joint queries through int8-quantized candidate
	// mirrors (EnableQuantizedQueries): ~4x smaller candidate storage
	// with approximate rankings (recall@10 ≥ 0.99 against exact). Off by
	// default — see OPERATIONS.md for when to enable it.
	Quantized bool
	// DefaultN is the result count when ?n= is absent (default 10).
	DefaultN int
	// MaxN caps ?n= (default 100).
	MaxN int
	// MaxBatch caps the users of one batched POST query (default 64);
	// larger batches are rejected 400 and counted in /metrics.
	MaxBatch int
	// CoalesceWindow enables the micro-batching admission layer when
	// positive: cache-missing single-user GET /v1/partners requests are
	// held up to this long and dispatched as one engine batch. 0 (the
	// default) disables coalescing; the daemon flags it on at 200µs.
	CoalesceWindow time.Duration
	// CoalesceBatch caps one coalesced dispatch (default 16); the
	// arrival that fills the batch dispatches it without waiting out
	// the window.
	CoalesceBatch int
	// CacheCapacity is the total cached responses (default 4096;
	// < 0 disables caching).
	CacheCapacity int
	// CacheShards is the cache shard count (default 8).
	CacheShards int
	// CacheTTL bounds entry staleness (default 60s; < 0 disables expiry).
	CacheTTL time.Duration
	// FeedTTL bounds GET /v1/feed staleness: cached feed renders expire
	// at most this long after they were computed, even when the cache
	// generation has not moved (default 30s; < 0 leaves feeds bounded
	// only by CacheTTL and generation bumps).
	FeedTTL time.Duration
	// AutoCompactEvents kicks a background delta compaction once the
	// pending live-event count reaches this threshold (0 disables —
	// compaction then runs only on explicit /v1/compact).
	AutoCompactEvents int
	// MaxInFlight is the concurrency bound before load shedding
	// (default 256).
	MaxInFlight int
	// RequestTimeout bounds handler time per request (default 5s;
	// < 0 disables).
	RequestTimeout time.Duration
	// DrainTimeout bounds connection draining on shutdown (default 10s).
	DrainTimeout time.Duration
	// SnapshotPath is the default model snapshot file for Reload — what
	// /v1/reload (with an empty body) and the daemon's SIGHUP handler
	// load. Empty means reloads must name a path explicitly.
	SnapshotPath string
	// ArtifactPath, when set, is the zero-copy index artifact Warm and
	// Reload try to map (PrepareJointFromArtifact) before falling back
	// to a full PrepareJointSharded rebuild. After a fallback rebuild
	// the artifact is rewritten in place, so the next start or reload
	// maps instantly. Empty disables artifact use.
	ArtifactPath string
	// Logger receives access-log and panic lines (nil = quiet).
	Logger *log.Logger
	// AccessLog enables per-request log lines on Logger.
	AccessLog bool
	// TraceEnabled turns request-scoped tracing on at startup. Off it
	// costs nothing (spans are nil); it can also be toggled at runtime
	// via Server.Tracer.
	TraceEnabled bool
	// SlowQueryThreshold is the span duration at which a traced request
	// is captured into the slow-query ring (default 100ms; < 0 disables
	// capture while keeping span counting).
	SlowQueryThreshold time.Duration
	// SlowLogSize is the slow-query ring capacity (default 128).
	SlowLogSize int
}

func (c *Config) fill() {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.DefaultN == 0 {
		c.DefaultN = 10
	}
	if c.MaxN == 0 {
		c.MaxN = 100
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.CoalesceBatch == 0 {
		c.CoalesceBatch = 16
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 4096
	}
	if c.CacheShards == 0 {
		c.CacheShards = 8
	}
	if c.CacheTTL == 0 {
		c.CacheTTL = time.Minute
	}
	if c.FeedTTL == 0 {
		c.FeedTTL = 30 * time.Second
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 256
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.SlowQueryThreshold == 0 {
		c.SlowQueryThreshold = 100 * time.Millisecond
	}
	if c.SlowLogSize == 0 {
		c.SlowLogSize = 128
	}
}

// Server wraps a Recommender in the production HTTP stack. Create with
// New, then call Warm to build the TA index and flip readiness.
//
// Concurrency: query handlers hold a read lock; ingestion and the two
// swap points (the reload pointer swap and the compaction install) hold
// the write lock, serializing the Recommender's mutating methods as its
// contract requires. Both heavy builds run entirely outside the lock:
// Reload constructs its replacement Recommender off the request path,
// and the background compaction folds the delta into a fresh index on a
// copy — queries never wait on either, only on the pointer-swap
// critical sections.
type Server struct {
	cfg      Config
	cache    *Cache
	metrics  *Metrics
	tracer   *obs.Tracer
	handler  http.Handler
	coalesce *coalescer // nil unless Config.CoalesceWindow > 0

	mu     sync.RWMutex // guards rec (the pointer and its live/ingest state)
	rec    *ebsn.Recommender
	gen    atomic.Uint64
	ready  atomic.Bool
	pruneK atomic.Int64 // resolved PrepareJoint argument, for metrics/spans

	reloadMu sync.Mutex // serializes Reload calls end to end
	reload   reloadState

	compact compactState

	// journal records every accepted live ingest since startup so Reload
	// can replay them onto the fresh model instead of dropping them.
	// Appends happen while holding s.mu (write), so holding s.mu also
	// stabilizes the journal; journalMu alone suffices for snapshots.
	journalMu sync.Mutex
	journal   []ingestRecord
}

// ingestRecord is one replayable live ingest.
type ingestRecord struct {
	words  []string
	venue  int32
	start  time.Time
	source string
}

// compactState tracks the single-flight background compaction: at most
// one fold runs at a time, and waiters (POST /v1/compact?wait=1) block
// on the done channel of the in-flight run.
type compactState struct {
	mu         sync.Mutex
	running    bool
	done       chan struct{}
	count      uint64
	failures   uint64
	folded     uint64
	lastDur    time.Duration
	lastFolded int
	lastErr    string
	lastAt     time.Time
}

// reloadState is the observability record behind /metrics' reload
// section. Reloads are rare; a mutex is fine.
type reloadState struct {
	mu        sync.Mutex
	count     uint64
	failures  uint64
	lastOK    time.Time
	lastErr   string
	lastErrAt time.Time
}

// endpointNames is the fixed metrics key set, one per instrumented route.
const (
	epEvents        = "events"
	epEventsBatch   = "events_batch"
	epPartners      = "partners"
	epPartnersBatch = "partners_batch"
	epPartnersLive  = "partners_live"
	epExplain       = "explain"
	epIngest        = "ingest"
	epCompact       = "compact"
	epGroup         = "group_events"
	epFeed          = "feed"
)

// New assembles the server around a trained recommender. The joint
// index is not built yet — call Warm (readiness stays false and /v1
// endpoints answer 503 until then).
func New(rec *ebsn.Recommender, cfg Config) *Server {
	cfg.fill()
	s := &Server{
		rec: rec,
		cfg: cfg,
		metrics: NewMetrics(epEvents, epEventsBatch, epPartners, epPartnersBatch,
			epPartnersLive, epExplain, epIngest, epCompact, epGroup, epFeed),
		tracer: obs.NewTracer(cfg.SlowLogSize, cfg.SlowQueryThreshold),
	}
	s.tracer.SetEnabled(cfg.TraceEnabled)
	if cfg.CoalesceWindow > 0 {
		s.coalesce = &coalescer{s: s, window: cfg.CoalesceWindow, maxB: cfg.CoalesceBatch}
	}
	if cfg.CacheCapacity > 0 {
		s.cache = NewCache(cfg.CacheCapacity, cfg.CacheShards, cfg.CacheTTL)
	}
	s.registerStateMetrics()

	api := http.NewServeMux()
	api.HandleFunc("GET /v1/events", s.api(epEvents, s.handleEvents))
	api.HandleFunc("POST /v1/events", s.api(epEventsBatch, s.handleEventsBatch))
	api.HandleFunc("GET /v1/partners", s.api(epPartners, s.handlePartners))
	api.HandleFunc("POST /v1/partners", s.api(epPartnersBatch, s.handlePartnersBatch))
	api.HandleFunc("GET /v1/partners/live", s.api(epPartnersLive, s.handlePartnersLive))
	api.HandleFunc("POST /v1/group/events", s.api(epGroup, s.handleGroupEvents))
	api.HandleFunc("GET /v1/feed", s.api(epFeed, s.handleFeed))
	api.HandleFunc("GET /v1/explain", s.api(epExplain, s.handleExplain))
	api.HandleFunc("POST /v1/ingest", s.api(epIngest, s.handleIngest))
	api.HandleFunc("POST /v1/compact", s.api(epCompact, s.handleCompact))

	// Health and metrics bypass shedding and timeouts: a saturated
	// server must still answer its orchestrator.
	root := http.NewServeMux()
	root.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	root.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ready": true})
	})
	root.HandleFunc("GET /metrics", s.handleMetrics)
	// The slowlog bypasses shedding too: it exists to be read while the
	// server is struggling.
	root.HandleFunc("GET /v1/debug/slowlog", s.handleSlowlog)
	// Reload bypasses shedding and the request timeout: rebuilding the
	// TA index can take longer than a query budget, and a saturated
	// server must still accept the swap that might relieve it.
	root.HandleFunc("POST /v1/reload", s.handleReload)
	root.Handle("/v1/", Chain(api,
		WithConcurrencyLimit(cfg.MaxInFlight, s.metrics.RecordShed),
		WithTimeout(cfg.RequestTimeout),
	))

	var accessLogger *log.Logger
	if cfg.AccessLog {
		accessLogger = cfg.Logger
	}
	s.handler = Chain(root,
		WithLogging(accessLogger),
		WithRecovery(cfg.Logger, s.metrics.RecordPanic),
	)
	return s
}

// registerStateMetrics attaches scrape-time instruments for state owned
// outside the request panel: serving generation and model state (read
// under the model lock), cache effectiveness, reload history, and
// tracing volume. Reading at scrape time instead of mirroring into
// gauges means the exposition can never go stale.
func (s *Server) registerStateMetrics() {
	reg := s.metrics.Registry()
	obs.RegisterRuntimeMetrics(reg)
	reg.GaugeFunc("ebsn_mapped_bytes",
		"Bytes of zero-copy index artifact storage mapped into the process (outside the Go heap).",
		func() float64 { return float64(ebsn.MappedIndexBytes()) })
	reg.GaugeFunc("ebsn_serve_ready",
		"1 once Warm has built the joint index.",
		func() float64 {
			if s.ready.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("ebsn_serve_generation",
		"Cache generation; bumps on ingest, compaction, and reload.",
		func() float64 { return float64(s.gen.Load()) })
	reg.GaugeFunc("ebsn_serve_prune_k",
		"Per-partner candidate pruning applied by PrepareJoint (0 = full space).",
		func() float64 { return float64(s.pruneK.Load()) })
	reg.GaugeFunc("ebsn_serve_quantized",
		"1 while joint queries route through int8-quantized candidate mirrors.",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			if s.rec.QuantizedQueries() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("ebsn_serve_engine_shards",
		"Partner-range shards of the scatter-gather engine (0 until Warm).",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.rec.EngineShards())
		})
	reg.GaugeFunc("ebsn_serve_live_events",
		"Live-ingested events layered on the serving snapshot (total since the last reload).",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.rec.LiveEventCount())
		})
	reg.GaugeFunc("ebsn_serve_delta_events",
		"Live events pending in the mutable delta, awaiting background compaction.",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.rec.PendingLiveEvents())
		})
	reg.GaugeFunc("ebsn_serve_delta_pairs",
		"Candidate pairs in the mutable delta overlay scanned by every live query.",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.rec.PendingLivePairs())
		})
	reg.GaugeFunc("ebsn_serve_model_steps",
		"Gradient steps of the serving model snapshot.",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.rec.Model().Steps())
		})
	reg.CounterFunc("ebsn_serve_reloads_total",
		"Successful zero-downtime model reloads.",
		func() uint64 {
			s.reload.mu.Lock()
			defer s.reload.mu.Unlock()
			return s.reload.count
		})
	reg.CounterFunc("ebsn_serve_reload_failures_total",
		"Model reloads that failed and left the old model serving.",
		func() uint64 {
			s.reload.mu.Lock()
			defer s.reload.mu.Unlock()
			return s.reload.failures
		})
	reg.CounterFunc("ebsn_serve_trace_spans_total",
		"Request spans recorded while tracing was enabled.",
		s.tracer.Spans)
	reg.CounterFunc("ebsn_serve_trace_slow_total",
		"Spans that crossed the slow-query threshold into the slowlog.",
		s.tracer.Slow)
	if s.cache != nil {
		reg.CounterFunc("ebsn_serve_cache_hits_total",
			"Response cache hits.",
			func() uint64 { h, _ := s.cache.Stats(); return h })
		reg.CounterFunc("ebsn_serve_cache_misses_total",
			"Response cache misses.",
			func() uint64 { _, m := s.cache.Stats(); return m })
		reg.GaugeFunc("ebsn_serve_cache_entries",
			"Responses currently cached.",
			func() float64 { return float64(s.cache.Len()) })
		reg.GaugeFunc("ebsn_serve_cache_capacity",
			"Response cache capacity.",
			func() float64 { return float64(s.cache.Capacity()) })
	}
}

// Warm builds the scatter-gather engine (PrepareJointSharded with
// Config.Shards partner-range shards) and marks the server ready. Safe
// to call from a goroutine while the listener is already up: /healthz
// answers during warm-up, /readyz flips afterwards.
func (s *Server) Warm() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ready.Load() {
		return nil
	}
	pk := s.resolvePruneK(s.rec)
	if err := s.prepareIndex(s.rec, pk); err != nil {
		return err
	}
	s.pruneK.Store(int64(pk))
	s.ready.Store(true)
	return nil
}

// prepareIndex brings rec's joint engine up: when Config.ArtifactPath
// is set it first tries to map the zero-copy artifact there, and only
// on failure (missing, corrupt, or stale file) falls back to a full
// PrepareJointSharded rebuild — after which it rewrites the artifact so
// the next start maps instantly. Both paths end by enabling quantized
// routing when configured. Loads, fallbacks, and saves all land in
// /metrics.
func (s *Server) prepareIndex(rec *ebsn.Recommender, pk int) error {
	mapped := false
	if s.cfg.ArtifactPath != "" {
		start := time.Now()
		if err := rec.PrepareJointFromArtifact(s.cfg.ArtifactPath, pk, s.cfg.Shards); err == nil {
			mapped = true
			s.metrics.RecordArtifactLoad(time.Since(start))
			if s.cfg.Logger != nil {
				s.cfg.Logger.Printf("mapped index artifact %s in %s", s.cfg.ArtifactPath, time.Since(start).Round(time.Microsecond))
			}
		} else {
			s.metrics.RecordArtifactFallback()
			if s.cfg.Logger != nil {
				s.cfg.Logger.Printf("index artifact %s unusable (%v); rebuilding", s.cfg.ArtifactPath, err)
			}
		}
	}
	if !mapped {
		if err := rec.PrepareJointSharded(pk, s.cfg.Shards); err != nil {
			return err
		}
	}
	if s.cfg.Quantized {
		if err := rec.EnableQuantizedQueries(); err != nil {
			return err
		}
	}
	// Rewrite the artifact after a rebuild (quantized mirrors included,
	// hence after EnableQuantizedQueries). Best-effort: serving is
	// already healthy, so a failed write only costs the next start a
	// rebuild.
	if s.cfg.ArtifactPath != "" && !mapped {
		if err := rec.SaveIndexArtifact(s.cfg.ArtifactPath); err != nil {
			if s.cfg.Logger != nil {
				s.cfg.Logger.Printf("writing index artifact %s failed: %v", s.cfg.ArtifactPath, err)
			}
		} else {
			s.metrics.RecordArtifactSave()
			if s.cfg.Logger != nil {
				s.cfg.Logger.Printf("wrote index artifact %s", s.cfg.ArtifactPath)
			}
		}
	}
	return nil
}

// resolvePruneK maps Config.PruneK onto a PrepareJoint argument: < 0
// keeps the full candidate space, 0 applies the paper's
// 5%-of-test-events heuristic, > 0 is used as-is.
func (s *Server) resolvePruneK(rec *ebsn.Recommender) int {
	pruneK := s.cfg.PruneK
	switch {
	case pruneK < 0:
		return 0 // PrepareJoint(0) keeps the full space
	case pruneK == 0:
		pruneK = len(rec.Split().TestEvents) / 20
		if pruneK < 1 {
			pruneK = 1
		}
	}
	return pruneK
}

// Reload loads the snapshot at path (Config.SnapshotPath when empty),
// rebuilds a Recommender and its TA index entirely off the request
// path, then atomically swaps it in and bumps the cache generation —
// zero downtime: queries in flight finish against the old model, new
// queries see the new one. Live-ingested events are replayed from the
// ingest journal onto the fresh model (the bulk off-lock; arrivals that
// race the replay are caught up under the final swap lock), so a reload
// never silently drops them. A failed reload leaves the serving model
// untouched; success and failure are both recorded for /metrics.
func (s *Server) Reload(path string) (err error) {
	_, err = s.reload2(path)
	return err
}

func (s *Server) reload2(path string) (replayed int, err error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	defer func() { s.recordReload(path, err) }()

	if path == "" {
		path = s.cfg.SnapshotPath
	}
	if path == "" {
		return 0, errors.New("serve: no snapshot path configured (set Config.SnapshotPath or name one in the reload request)")
	}
	snap, err := ebsn.LoadModelSnapshot(path)
	if err != nil {
		return 0, err
	}
	s.mu.RLock()
	cur := s.rec
	s.mu.RUnlock()
	next, err := cur.WithSnapshot(snap)
	if err != nil {
		return 0, err
	}
	pk := s.resolvePruneK(next)
	if err := s.prepareIndex(next, pk); err != nil {
		return 0, err
	}
	// Replay the journaled live events into the fresh recommender while
	// the old one keeps serving. Ingests that land mid-replay append to
	// the journal under s.mu, so the tail pass below (inside the write
	// lock, which blocks ingest) is guaranteed to see all of them.
	base := s.journalSnapshot()
	replayed = s.replayJournal(next, base)
	s.mu.Lock()
	replayed += s.replayJournal(next, s.journalTail(len(base)))
	s.rec = next
	s.mu.Unlock()
	s.pruneK.Store(int64(pk))
	s.gen.Add(1) // orphan every cached response from the old model
	s.ready.Store(true)
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf("reloaded model from %s (steps=%d, generation=%d, replayed=%d live events)",
			path, snap.Steps, s.gen.Load(), replayed)
	}
	return replayed, nil
}

// replayJournal folds the records into rec, returning how many landed.
// Failures are logged and skipped: one bad record must not abort the
// reload that 0 or more good ones depend on.
func (s *Server) replayJournal(rec *ebsn.Recommender, records []ingestRecord) int {
	n := 0
	for _, jr := range records {
		if _, err := rec.IngestColdEvent(jr.words, jr.venue, jr.start); err != nil {
			if s.cfg.Logger != nil {
				s.cfg.Logger.Printf("reload: replaying live event (venue=%d source=%q) failed: %v", jr.venue, jr.source, err)
			}
			continue
		}
		n++
	}
	return n
}

func (s *Server) appendJournal(jr ingestRecord) {
	s.journalMu.Lock()
	s.journal = append(s.journal, jr)
	s.journalMu.Unlock()
}

func (s *Server) journalSnapshot() []ingestRecord {
	s.journalMu.Lock()
	defer s.journalMu.Unlock()
	out := make([]ingestRecord, len(s.journal))
	copy(out, s.journal)
	return out
}

// journalTail returns the records appended after the first n. Callers
// hold s.mu (write) so the tail cannot grow underneath them.
func (s *Server) journalTail(n int) []ingestRecord {
	s.journalMu.Lock()
	defer s.journalMu.Unlock()
	if n >= len(s.journal) {
		return nil
	}
	out := make([]ingestRecord, len(s.journal)-n)
	copy(out, s.journal[n:])
	return out
}

func (s *Server) recordReload(path string, err error) {
	s.reload.mu.Lock()
	defer s.reload.mu.Unlock()
	if err == nil {
		// The last failure stays visible as history; last_success vs
		// last_error_at tells the reader which outcome is current.
		s.reload.count++
		s.reload.lastOK = time.Now()
		return
	}
	s.reload.failures++
	s.reload.lastErr = err.Error()
	s.reload.lastErrAt = time.Now()
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf("reload from %q failed: %v", path, err)
	}
}

// Ready reports whether Warm has completed.
func (s *Server) Ready() bool { return s.ready.Load() }

// Generation returns the cache generation counter; it bumps on every
// ingest and compaction, orphaning older cached responses.
func (s *Server) Generation() uint64 { return s.gen.Load() }

// Metrics exposes the server's instrument panel.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Tracer exposes the request tracer, e.g. to toggle sampling at runtime
// or adjust the slow-query threshold without a restart.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Cache returns the response cache (nil when disabled).
func (s *Server) Cache() *Cache { return s.cache }

// ServeHTTP implements http.Handler with the full middleware stack.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Serve accepts connections on l until ctx is canceled, then drains
// in-flight requests for up to Config.DrainTimeout before returning.
// A clean shutdown returns nil. Drain progress is observable: the
// draining gauge flips before the listener stops accepting, so a final
// /metrics scrape over an open connection sees ebsn_serve_draining 1
// alongside the live in-flight count, and the shutdown log lines record
// how many requests the drain waited on and how long it took.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	hs := &http.Server{Handler: s, ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		if err == http.ErrServerClosed {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	s.metrics.SetDraining()
	inflight := s.metrics.InFlight()
	start := time.Now()
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf("shutdown: draining %d in-flight requests (timeout %s)", inflight, s.cfg.DrainTimeout)
	}
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := hs.Shutdown(sctx)
	if s.cfg.Logger != nil {
		if err != nil {
			s.cfg.Logger.Printf("shutdown: drain timed out after %s with %d requests still in flight: %v",
				time.Since(start).Round(time.Millisecond), s.metrics.InFlight(), err)
		} else {
			s.cfg.Logger.Printf("shutdown: drain complete in %s (%d requests were in flight)",
				time.Since(start).Round(time.Millisecond), inflight)
		}
	}
	if err != nil {
		return err
	}
	<-errc // reap http.ErrServerClosed
	return nil
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, l)
}

// api wraps a handler with the per-endpoint plumbing every /v1 route
// shares: readiness gating, the in-flight gauge, and status + latency
// metrics.
func (s *Server) api(name string, h http.HandlerFunc) http.HandlerFunc {
	ep := s.metrics.Endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "server warming up")
			return
		}
		s.metrics.AddInFlight(1)
		defer s.metrics.AddInFlight(-1)
		rec := &statusRecorder{ResponseWriter: w}
		t0 := time.Now()
		h(rec, r)
		ep.Observe(rec.statusOr200(), time.Since(t0))
	}
}

// ---- request parsing ----

func (s *Server) parseUserN(rec *ebsn.Recommender, r *http.Request) (user int32, n int, err error) {
	rawUser := r.URL.Query().Get("user")
	u, convErr := strconv.Atoi(rawUser)
	if rawUser == "" || convErr != nil || u < 0 || u >= rec.Dataset().NumUsers {
		return 0, 0, fmt.Errorf("invalid or missing user parameter (0 ≤ user < %d)", rec.Dataset().NumUsers)
	}
	n = s.cfg.DefaultN
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, convErr := strconv.Atoi(raw)
		if convErr != nil || v <= 0 || v > s.cfg.MaxN {
			return 0, 0, fmt.Errorf("invalid n parameter (1 ≤ n ≤ %d)", s.cfg.MaxN)
		}
		n = v
	}
	return int32(u), n, nil
}

func parseID(r *http.Request, key string, limit int) (int32, error) {
	raw := r.URL.Query().Get(key)
	v, err := strconv.Atoi(raw)
	if raw == "" || err != nil || v < 0 || v >= limit {
		return 0, fmt.Errorf("invalid or missing %s parameter (0 ≤ %s < %d)", key, key, limit)
	}
	return int32(v), nil
}

// ---- response shapes ----

// EventResult is one recommended event.
type EventResult struct {
	Event int32   `json:"event"`
	Start string  `json:"start,omitempty"`
	Score float32 `json:"score"`
}

// PairResult is one recommended event-partner pair. Live is true for
// events ingested after training (negative IDs).
type PairResult struct {
	Event   int32   `json:"event"`
	Live    bool    `json:"live,omitempty"`
	Start   string  `json:"start,omitempty"`
	Partner int32   `json:"partner"`
	Friend  bool    `json:"friend"`
	Score   float32 `json:"score"`
}

// RankingResponse is the payload of the three query endpoints.
type RankingResponse struct {
	User   int32         `json:"user"`
	N      int           `json:"n"`
	Events []EventResult `json:"events,omitempty"`
	Pairs  []PairResult  `json:"pairs,omitempty"`
}

// ExplainResponse decomposes one (user, partner, event) score per the
// paper's Eqn. 8.
type ExplainResponse struct {
	User         int32   `json:"user"`
	Partner      int32   `json:"partner"`
	Event        int32   `json:"event"`
	UserEvent    float32 `json:"user_event"`
	PartnerEvent float32 `json:"partner_event"`
	Social       float32 `json:"social"`
	Total        float32 `json:"total"`
	Friend       bool    `json:"friend"`
}

// IngestRequest is the POST /v1/ingest body. Two shapes are accepted:
// the original single-event form (words/venue/start at the top level)
// and a batch form carrying events[] plus an optional source
// attribution. The two are mutually exclusive.
type IngestRequest struct {
	// Words is the event description, tokenized (single-event form).
	Words []string `json:"words,omitempty"`
	// Venue is a known venue ID, the fold-in anchor (single-event form).
	Venue int32 `json:"venue,omitempty"`
	// Start is the event start time, RFC 3339 (single-event form).
	Start time.Time `json:"start,omitempty"`
	// Source attributes the batch to an upstream feed for the
	// per-source ingest counters ("default" when empty).
	Source string `json:"source,omitempty"`
	// Events is the batch form: every event is validated before any is
	// ingested, and the whole batch lands under one generation bump.
	Events []IngestEvent `json:"events,omitempty"`
}

// IngestEvent is one event in a batched ingest. Either pre-tokenized
// words or Schema.org/Event-flavored text fields (name, description,
// keywords — tokenized server-side exactly like the training corpus)
// must yield at least one token, and either start or startDate must be
// set.
type IngestEvent struct {
	Name        string    `json:"name,omitempty"`
	Description string    `json:"description,omitempty"`
	Keywords    []string  `json:"keywords,omitempty"`
	Words       []string  `json:"words,omitempty"`
	Venue       int32     `json:"venue"`
	StartDate   time.Time `json:"startDate,omitempty"`
	Start       time.Time `json:"start,omitempty"`
}

// IngestResponse reports the assigned live event IDs (ID mirrors the
// first for single-event callers) and the resulting overlay state.
type IngestResponse struct {
	ID            int32   `json:"id"`
	IDs           []int32 `json:"ids,omitempty"`
	Ingested      int     `json:"ingested"`
	Source        string  `json:"source,omitempty"`
	SourceTotal   uint64  `json:"source_total,omitempty"`
	LiveEvents    int     `json:"live_events"`
	PendingEvents int     `json:"pending_events"`
	Generation    uint64  `json:"generation"`
}

// CompactResponse reports the compaction state. POST /v1/compact
// returns immediately with started=true while the fold runs in the
// background; ?wait=1 blocks until the in-flight run (this one or an
// earlier one) completes, restoring synchronous semantics.
type CompactResponse struct {
	Started       bool               `json:"started"`
	Running       bool               `json:"running"`
	LiveEvents    int                `json:"live_events"`
	PendingEvents int                `json:"pending_events"`
	Generation    uint64             `json:"generation"`
	Compaction    CompactionSnapshot `json:"compaction"`
}

// CompactionSnapshot is the background-compaction section of /metrics.
type CompactionSnapshot struct {
	Count        uint64  `json:"count"`
	Failures     uint64  `json:"failures"`
	EventsFolded uint64  `json:"events_folded"`
	Running      bool    `json:"running"`
	LastMs       float64 `json:"last_ms,omitempty"`
	LastFolded   int     `json:"last_folded,omitempty"`
	LastError    string  `json:"last_error,omitempty"`
	LastAt       string  `json:"last_at,omitempty"`
}

// ReloadRequest is the POST /v1/reload body; an empty body (or empty
// path) reloads from Config.SnapshotPath.
type ReloadRequest struct {
	// Path is the snapshot file to load.
	Path string `json:"path,omitempty"`
}

// ReloadResponse reports the post-reload serving state, including how
// many journaled live events were replayed onto the fresh model.
type ReloadResponse struct {
	Generation uint64         `json:"generation"`
	ModelSteps int64          `json:"model_steps"`
	Replayed   int            `json:"replayed"`
	Reload     ReloadSnapshot `json:"reload"`
}

// ReloadSnapshot is the reload section of /metrics: how many swaps
// succeeded and failed, when the last one landed, and the last error.
type ReloadSnapshot struct {
	Count       uint64 `json:"count"`
	Failures    uint64 `json:"failures"`
	LastSuccess string `json:"last_success,omitempty"`
	LastError   string `json:"last_error,omitempty"`
	LastErrorAt string `json:"last_error_at,omitempty"`
}

// ServerMetrics is the full /metrics payload.
type ServerMetrics struct {
	MetricsSnapshot
	Generation    uint64             `json:"generation"`
	LiveEvents    int                `json:"live_events"`
	PendingEvents int                `json:"pending_events"`
	ModelSteps    int64              `json:"model_steps"`
	IngestSources map[string]uint64  `json:"ingest_sources,omitempty"`
	Compaction    CompactionSnapshot `json:"compaction"`
	Reload        ReloadSnapshot     `json:"reload"`
	Cache         CacheSnapshot      `json:"cache"`
}

// CacheSnapshot is the cache section of /metrics.
type CacheSnapshot struct {
	Enabled  bool    `json:"enabled"`
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	HitRate  float64 `json:"hit_rate"`
	Entries  int     `json:"entries"`
	Capacity int     `json:"capacity"`
}

// ---- handlers ----

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if c, err := parseConstraintParams(r); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	} else if !c.IsZero() {
		s.handleEventsConstrained(w, r, c)
		return
	}
	sp := s.tracer.Start(epEvents)
	defer sp.End()
	s.mu.RLock()
	rec := s.rec
	user, n, err := s.parseUserN(rec, r)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sp.SetAttr("user", int64(user))
	sp.SetAttr("n", int64(n))
	sp.Stage("cache")
	key := cacheKey(epEvents, user, n, s.gen.Load())
	if v, ok := s.cacheGet(key); ok {
		sp.SetAttr("cache_hit", 1)
		s.mu.RUnlock()
		writeJSON(w, http.StatusOK, v)
		return
	}
	sp.SetAttr("cache_hit", 0)
	sp.Stage("query")
	recs, err := rec.TopEvents(user, n)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	sp.Stage("encode")
	d := rec.Dataset()
	resp := &RankingResponse{User: user, N: n, Events: make([]EventResult, len(recs))}
	for i, e := range recs {
		resp.Events[i] = EventResult{
			Event: e.Event,
			Start: d.Events[e.Event].Start.Format(time.RFC3339),
			Score: e.Score,
		}
	}
	s.mu.RUnlock()
	s.cachePut(key, resp)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePartners(w http.ResponseWriter, r *http.Request) {
	if c, err := parseConstraintParams(r); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	} else if !c.IsZero() {
		// Constrained requests bypass the coalescer unconditionally —
		// requests with different predicates must never share a dispatch
		// (see handlePartnersConstrained).
		s.handlePartnersConstrained(w, r, c)
		return
	}
	if s.coalesce != nil {
		// Micro-batching admission: cache misses park in the coalescer
		// and share one engine traversal per window.
		s.handlePartnersCoalesced(w, r)
		return
	}
	s.servePairs(w, r, epPartners, func(rec *ebsn.Recommender, user int32, n int) ([]ebsn.PairRecommendation, ebsn.SearchStats, *ebsn.EngineStats, error) {
		// Warm prepared the engine; answer through the scatter-gather
		// path so the per-shard decomposition reaches spans and
		// /metrics. The monolithic path remains as a fallback for a
		// recommender warmed outside this server.
		if rec.EngineShards() > 0 {
			pairs, es, err := rec.TopEventPartnersShardedStats(user, n)
			return pairs, es.Agg, &es, err
		}
		pairs, stats, err := rec.TopEventPartnersStats(user, n)
		return pairs, stats, nil, err
	})
}

func (s *Server) handlePartnersLive(w http.ResponseWriter, r *http.Request) {
	s.servePairs(w, r, epPartnersLive, func(rec *ebsn.Recommender, user int32, n int) ([]ebsn.PairRecommendation, ebsn.SearchStats, *ebsn.EngineStats, error) {
		pairs, stats, err := rec.TopEventPartnersLiveStats(user, n)
		return pairs, stats, nil, err
	})
}

func (s *Server) servePairs(w http.ResponseWriter, r *http.Request, ep string,
	query func(*ebsn.Recommender, int32, int) ([]ebsn.PairRecommendation, ebsn.SearchStats, *ebsn.EngineStats, error)) {
	sp := s.tracer.Start(ep)
	defer sp.End()
	s.mu.RLock()
	rec := s.rec
	user, n, err := s.parseUserN(rec, r)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sp.SetAttr("user", int64(user))
	sp.SetAttr("n", int64(n))
	sp.Stage("cache")
	key := cacheKey(ep, user, n, s.gen.Load())
	if v, ok := s.cacheGet(key); ok {
		sp.SetAttr("cache_hit", 1)
		s.mu.RUnlock()
		writeJSON(w, http.StatusOK, v)
		return
	}
	sp.SetAttr("cache_hit", 0)
	sp.Stage("ta_search")
	pairs, stats, estats, err := query(rec, user, n)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.metrics.RecordTA(stats)
	sp.SetAttr("ta_sorted", int64(stats.SortedAccesses))
	sp.SetAttr("ta_random", int64(stats.RandomAccesses))
	sp.SetAttr("ta_candidates", int64(stats.Candidates))
	sp.SetAttr("prune_k", s.pruneK.Load())
	if estats != nil {
		// Scatter-gather decomposition: one explicit-duration stage per
		// shard (they ran concurrently, so wall-clock stage boundaries
		// cannot measure them) plus the fan-out attrs. Spans cap at
		// eight stages; shard stages beyond the cap are dropped and
		// counted in the span's truncated field.
		s.metrics.RecordEngine(*estats)
		sp.SetAttr("shards", int64(len(estats.Shards)))
		sp.SetAttr("critical_path_us", int64(estats.CriticalPath/time.Microsecond))
		for _, ss := range estats.Shards {
			sp.StageDur("shard"+strconv.Itoa(ss.Shard), ss.Wall)
		}
	}
	sp.Stage("encode")
	d := rec.Dataset()
	resp := &RankingResponse{User: user, N: n, Pairs: make([]PairResult, len(pairs))}
	for i, p := range pairs {
		pr := PairResult{
			Event:   p.Event,
			Live:    p.Event < 0,
			Partner: p.Partner,
			Friend:  d.AreFriends(user, p.Partner),
			Score:   p.Score,
		}
		if p.Event >= 0 {
			pr.Start = d.Events[p.Event].Start.Format(time.RFC3339)
		}
		resp.Pairs[i] = pr
	}
	s.mu.RUnlock()
	s.cachePut(key, resp)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec := s.rec
	d := rec.Dataset()
	user, err := parseID(r, "user", d.NumUsers)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	partner, err := parseID(r, "partner", d.NumUsers)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	event, err := parseID(r, "event", d.NumEvents())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	b, err := rec.Explain(user, partner, event)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, &ExplainResponse{
		User: user, Partner: partner, Event: event,
		UserEvent: b.UserEvent, PartnerEvent: b.PartnerEvent,
		Social: b.Social, Total: b.Total,
		Friend: d.AreFriends(user, partner),
	})
}

// maxIngestBatch bounds one POST /v1/ingest; larger feeds should chunk.
const maxIngestBatch = 4096

// normalize resolves one ingest payload into fold-in inputs: explicit
// words win; otherwise name, description and keywords are tokenized the
// same way the training corpus was.
func (ev *IngestEvent) normalize() (words []string, start time.Time, err error) {
	words = ev.Words
	if len(words) == 0 {
		words = append(words, text.Tokenize(ev.Name)...)
		words = append(words, text.Tokenize(ev.Description)...)
		for _, kw := range ev.Keywords {
			words = append(words, text.Tokenize(kw)...)
		}
	}
	if len(words) == 0 {
		return nil, time.Time{}, errors.New("words must be non-empty (set words, or name/description/keywords)")
	}
	start = ev.Start
	if start.IsZero() {
		start = ev.StartDate
	}
	if start.IsZero() {
		return nil, time.Time{}, errors.New("start must be a valid RFC 3339 time (set start or startDate)")
	}
	return words, start, nil
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad ingest body: "+err.Error())
		return
	}
	events := req.Events
	switch {
	case len(events) == 0:
		// Original single-event shape; same validation errors as before.
		events = []IngestEvent{{Words: req.Words, Venue: req.Venue, Start: req.Start}}
	case len(req.Words) > 0 || !req.Start.IsZero():
		writeError(w, http.StatusBadRequest, "ingest: use either the single-event fields or events[], not both")
		return
	case len(events) > maxIngestBatch:
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("ingest: batch of %d exceeds the %d-event limit; split the feed", len(events), maxIngestBatch))
		return
	}
	source := req.Source
	if source == "" {
		source = "default"
	}
	// Resolve and validate every event before ingesting any: a batch
	// either lands whole or is rejected whole, so partial feeds cannot
	// leave half-applied state behind a 4xx.
	batch := make([]ingestRecord, len(events))
	for i := range events {
		words, start, err := events[i].normalize()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("ingest: event %d: %v", i, err))
			return
		}
		batch[i] = ingestRecord{words: words, venue: events[i].Venue, start: start, source: source}
	}

	s.mu.Lock()
	rec := s.rec
	nv := len(rec.Dataset().Venues)
	for i := range batch {
		if int(batch[i].venue) < 0 || int(batch[i].venue) >= nv {
			s.mu.Unlock()
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("ingest: event %d: venue %d out of range [0,%d)", i, batch[i].venue, nv))
			return
		}
	}
	ids := make([]int32, 0, len(batch))
	var ingestErr error
	for i := range batch {
		id, err := rec.IngestColdEvent(batch[i].words, batch[i].venue, batch[i].start)
		if err != nil {
			ingestErr = err
			break
		}
		ids = append(ids, id)
		s.appendJournal(batch[i])
	}
	live := rec.LiveEventCount()
	pending := rec.PendingLiveEvents()
	s.mu.Unlock()

	var gen uint64
	var total uint64
	if len(ids) > 0 {
		gen = s.gen.Add(1)
		total = s.metrics.RecordIngest(source, len(ids))
		if s.cfg.AutoCompactEvents > 0 && pending >= s.cfg.AutoCompactEvents {
			s.startCompaction()
		}
	}
	if ingestErr != nil {
		// Validation passed, so this is an internal fold-in failure; any
		// earlier events of the batch already landed and stay.
		writeError(w, http.StatusInternalServerError,
			fmt.Sprintf("ingest: event %d: %v (%d earlier events in this batch were ingested)", len(ids), ingestErr, len(ids)))
		return
	}
	writeJSON(w, http.StatusOK, &IngestResponse{
		ID:            ids[0],
		IDs:           ids,
		Ingested:      len(ids),
		Source:        source,
		SourceTotal:   total,
		LiveEvents:    live,
		PendingEvents: pending,
		Generation:    gen,
	})
}

// startCompaction kicks the background delta fold unless one is already
// in flight or there is nothing pending. It returns the done channel of
// the run that will next complete (nil when there is none) and whether
// this call started it.
func (s *Server) startCompaction() (<-chan struct{}, bool) {
	s.compact.mu.Lock()
	if s.compact.running {
		done := s.compact.done
		s.compact.mu.Unlock()
		return done, false
	}
	s.mu.RLock()
	pending := s.rec.PendingLiveEvents()
	s.mu.RUnlock()
	if pending == 0 {
		s.compact.mu.Unlock()
		return nil, false
	}
	done := make(chan struct{})
	s.compact.running = true
	s.compact.done = done
	s.compact.mu.Unlock()
	s.metrics.CompactionStarted()
	go s.runCompaction(done)
	return done, true
}

// runCompaction is the background fold: capture the delta prefix under
// the write lock (microseconds), build the merged index entirely
// outside any lock while queries keep flowing, then swap it in under
// the write lock again. A reload that swapped the recommender mid-fold
// supersedes the result, which is discarded.
func (s *Server) runCompaction(done chan struct{}) {
	start := time.Now()
	var folded int
	var err error

	s.mu.Lock()
	rec := s.rec
	c := rec.BeginCompaction()
	s.mu.Unlock()
	if c != nil {
		folded = c.Events()
		if err = c.Run(); err == nil {
			s.mu.Lock()
			if s.rec == rec {
				err = rec.InstallCompaction(c)
			} else {
				err = errors.New("compaction superseded: model reloaded while the fold ran")
			}
			s.mu.Unlock()
		}
	}
	d := time.Since(start)
	if err == nil && folded > 0 {
		s.gen.Add(1) // the live overlay shrank; orphan cached live responses
	}
	s.metrics.CompactionDone(d, folded, err)
	if s.cfg.Logger != nil {
		if err != nil {
			s.cfg.Logger.Printf("background compaction failed after %s: %v", d.Round(time.Microsecond), err)
		} else {
			s.cfg.Logger.Printf("background compaction folded %d live events in %s (generation=%d)",
				folded, d.Round(time.Microsecond), s.gen.Load())
		}
	}
	s.compact.mu.Lock()
	s.compact.count++
	s.compact.lastDur = d
	s.compact.lastAt = time.Now()
	if err != nil {
		s.compact.failures++
		s.compact.lastErr = err.Error()
	} else {
		s.compact.folded += uint64(folded)
		s.compact.lastFolded = folded
		s.compact.lastErr = ""
	}
	s.compact.running = false
	s.compact.done = nil
	s.compact.mu.Unlock()
	close(done)
}

func (s *Server) compactionSnapshot() CompactionSnapshot {
	s.compact.mu.Lock()
	defer s.compact.mu.Unlock()
	cs := CompactionSnapshot{
		Count:        s.compact.count,
		Failures:     s.compact.failures,
		EventsFolded: s.compact.folded,
		Running:      s.compact.running,
		LastFolded:   s.compact.lastFolded,
		LastError:    s.compact.lastErr,
	}
	if s.compact.lastDur > 0 {
		cs.LastMs = float64(s.compact.lastDur) / float64(time.Millisecond)
	}
	if !s.compact.lastAt.IsZero() {
		cs.LastAt = s.compact.lastAt.Format(time.RFC3339)
	}
	return cs
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	wait := false
	if v := r.URL.Query().Get("wait"); v != "" && v != "0" && v != "false" {
		wait = true
	}
	done, started := s.startCompaction()
	if wait && done != nil {
		select {
		case <-done:
		case <-r.Context().Done():
			writeError(w, http.StatusServiceUnavailable,
				"compact: request canceled while waiting; the background fold continues")
			return
		}
	}
	s.mu.RLock()
	live := s.rec.LiveEventCount()
	pending := s.rec.PendingLiveEvents()
	s.mu.RUnlock()
	snap := s.compactionSnapshot()
	writeJSON(w, http.StatusOK, &CompactResponse{
		Started:       started,
		Running:       snap.Running,
		LiveEvents:    live,
		PendingEvents: pending,
		Generation:    s.gen.Load(),
		Compaction:    snap,
	})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req ReloadRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "bad reload body: "+err.Error())
		return
	}
	replayed, err := s.reload2(req.Path)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.mu.RLock()
	steps := s.rec.Model().Steps()
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, &ReloadResponse{
		Generation: s.gen.Load(),
		ModelSteps: steps,
		Replayed:   replayed,
		Reload:     s.reloadSnapshot(),
	})
}

// reloadSnapshot renders the reload counters for /metrics and the
// reload response.
func (s *Server) reloadSnapshot() ReloadSnapshot {
	s.reload.mu.Lock()
	defer s.reload.mu.Unlock()
	rs := ReloadSnapshot{
		Count:     s.reload.count,
		Failures:  s.reload.failures,
		LastError: s.reload.lastErr,
	}
	if !s.reload.lastOK.IsZero() {
		rs.LastSuccess = s.reload.lastOK.Format(time.RFC3339)
	}
	if !s.reload.lastErrAt.IsZero() {
		rs.LastErrorAt = s.reload.lastErrAt.Format(time.RFC3339)
	}
	return rs
}

// handleMetrics serves Prometheus text exposition by default; the
// pre-Prometheus JSON panel survives behind ?format=json for human
// curls and the tests that assert on structured values.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") != "json" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.metrics.WriteExposition(w)
		return
	}
	s.mu.RLock()
	live := s.rec.LiveEventCount()
	pending := s.rec.PendingLiveEvents()
	steps := s.rec.Model().Steps()
	s.mu.RUnlock()
	m := ServerMetrics{
		MetricsSnapshot: s.metrics.Snapshot(),
		Generation:      s.gen.Load(),
		LiveEvents:      live,
		PendingEvents:   pending,
		ModelSteps:      steps,
		IngestSources:   s.metrics.IngestSources(),
		Compaction:      s.compactionSnapshot(),
		Reload:          s.reloadSnapshot(),
	}
	if s.cache != nil {
		hits, misses := s.cache.Stats()
		m.Cache = CacheSnapshot{
			Enabled:  true,
			Hits:     hits,
			Misses:   misses,
			Entries:  s.cache.Len(),
			Capacity: s.cache.Capacity(),
		}
		if total := hits + misses; total > 0 {
			m.Cache.HitRate = float64(hits) / float64(total)
		}
	}
	writeJSON(w, http.StatusOK, m)
}

// SlowlogResponse is the GET /v1/debug/slowlog payload: the newest-first
// contents of the slow-query ring plus the tracer's current settings, so
// a reader can tell "no slow queries" from "tracing is off".
type SlowlogResponse struct {
	Enabled     bool            `json:"enabled"`
	ThresholdMs float64         `json:"threshold_ms"`
	Spans       uint64          `json:"spans"`
	Captured    uint64          `json:"captured"`
	Entries     []obs.SlowEntry `json:"entries"`
}

func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	entries := s.tracer.SlowLog().Snapshot()
	if entries == nil {
		entries = []obs.SlowEntry{} // render [] rather than null
	}
	writeJSON(w, http.StatusOK, &SlowlogResponse{
		Enabled:     s.tracer.Enabled(),
		ThresholdMs: float64(s.tracer.SlowThreshold()) / float64(time.Millisecond),
		Spans:       s.tracer.Spans(),
		Captured:    s.tracer.SlowLog().Total(),
		Entries:     entries,
	})
}

// ---- cache plumbing ----

func cacheKey(ep string, user int32, n int, gen uint64) string {
	return ep + "|u" + strconv.Itoa(int(user)) + "|n" + strconv.Itoa(n) + "|g" + strconv.FormatUint(gen, 10)
}

func (s *Server) cacheGet(key string) (any, bool) {
	if s.cache == nil {
		return nil, false
	}
	return s.cache.Get(key)
}

func (s *Server) cachePut(key string, v any) {
	if s.cache != nil {
		s.cache.Put(key, v)
	}
}

// ---- JSON helpers ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
