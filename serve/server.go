// Package serve is the production HTTP layer over a trained
// ebsn.Recommender: a long-lived daemon exposing the paper's two online
// recommendation paths (cold-event ranking and TA-accelerated joint
// event-partner ranking) plus live cold-event ingestion, behind a
// middleware stack with request logging, panic recovery, per-request
// timeouts and semaphore-based load shedding. A sharded LRU cache with
// a generation counter fronts the query endpoints; /metrics renders
// atomic counters and fixed-bucket latency histograms as JSON.
//
// Endpoints:
//
//	GET  /v1/events?user=U&n=N        top-N cold events for user U
//	GET  /v1/partners?user=U&n=N      top-N event-partner pairs (static index)
//	GET  /v1/partners/live?user=U&n=N same, including live-ingested events
//	GET  /v1/explain?user=U&partner=P&event=E   score decomposition (Eqn. 8)
//	POST /v1/ingest                   fold a brand-new event into serving
//	POST /v1/compact                  fold the live delta into the main index
//	POST /v1/reload                   zero-downtime swap to a new model snapshot
//	GET  /healthz                     liveness (always 200)
//	GET  /readyz                      readiness (503 until Warm completes)
//	GET  /metrics                     JSON metrics snapshot
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ebsn"
)

// Config tunes the server. The zero value is serviceable: every field
// has a production-shaped default.
type Config struct {
	// PruneK is the per-partner candidate pruning for PrepareJoint:
	// 0 keeps the paper's 5%-of-test-events heuristic, < 0 keeps the
	// full candidate space, > 0 is used as-is.
	PruneK int
	// DefaultN is the result count when ?n= is absent (default 10).
	DefaultN int
	// MaxN caps ?n= (default 100).
	MaxN int
	// CacheCapacity is the total cached responses (default 4096;
	// < 0 disables caching).
	CacheCapacity int
	// CacheShards is the cache shard count (default 8).
	CacheShards int
	// CacheTTL bounds entry staleness (default 60s; < 0 disables expiry).
	CacheTTL time.Duration
	// MaxInFlight is the concurrency bound before load shedding
	// (default 256).
	MaxInFlight int
	// RequestTimeout bounds handler time per request (default 5s;
	// < 0 disables).
	RequestTimeout time.Duration
	// DrainTimeout bounds connection draining on shutdown (default 10s).
	DrainTimeout time.Duration
	// SnapshotPath is the default model snapshot file for Reload — what
	// /v1/reload (with an empty body) and the daemon's SIGHUP handler
	// load. Empty means reloads must name a path explicitly.
	SnapshotPath string
	// Logger receives access-log and panic lines (nil = quiet).
	Logger *log.Logger
	// AccessLog enables per-request log lines on Logger.
	AccessLog bool
}

func (c *Config) fill() {
	if c.DefaultN == 0 {
		c.DefaultN = 10
	}
	if c.MaxN == 0 {
		c.MaxN = 100
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 4096
	}
	if c.CacheShards == 0 {
		c.CacheShards = 8
	}
	if c.CacheTTL == 0 {
		c.CacheTTL = time.Minute
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 256
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 10 * time.Second
	}
}

// Server wraps a Recommender in the production HTTP stack. Create with
// New, then call Warm to build the TA index and flip readiness.
//
// Concurrency: query handlers hold a read lock; ingestion, compaction
// and the reload swap hold the write lock, serializing the
// Recommender's mutating methods as its contract requires. Reload
// builds its replacement Recommender entirely outside the lock, so
// in-flight queries finish against the old model and the swap itself is
// one pointer write.
type Server struct {
	cfg     Config
	cache   *Cache
	metrics *Metrics
	handler http.Handler

	mu    sync.RWMutex // guards rec (the pointer and its live/ingest state)
	rec   *ebsn.Recommender
	gen   atomic.Uint64
	ready atomic.Bool

	reloadMu sync.Mutex // serializes Reload calls end to end
	reload   reloadState
}

// reloadState is the observability record behind /metrics' reload
// section. Reloads are rare; a mutex is fine.
type reloadState struct {
	mu        sync.Mutex
	count     uint64
	failures  uint64
	lastOK    time.Time
	lastErr   string
	lastErrAt time.Time
}

// endpointNames is the fixed metrics key set, one per instrumented route.
const (
	epEvents       = "events"
	epPartners     = "partners"
	epPartnersLive = "partners_live"
	epExplain      = "explain"
	epIngest       = "ingest"
	epCompact      = "compact"
)

// New assembles the server around a trained recommender. The joint
// index is not built yet — call Warm (readiness stays false and /v1
// endpoints answer 503 until then).
func New(rec *ebsn.Recommender, cfg Config) *Server {
	cfg.fill()
	s := &Server{
		rec:     rec,
		cfg:     cfg,
		metrics: NewMetrics(epEvents, epPartners, epPartnersLive, epExplain, epIngest, epCompact),
	}
	if cfg.CacheCapacity > 0 {
		s.cache = NewCache(cfg.CacheCapacity, cfg.CacheShards, cfg.CacheTTL)
	}

	api := http.NewServeMux()
	api.HandleFunc("GET /v1/events", s.api(epEvents, s.handleEvents))
	api.HandleFunc("GET /v1/partners", s.api(epPartners, s.handlePartners))
	api.HandleFunc("GET /v1/partners/live", s.api(epPartnersLive, s.handlePartnersLive))
	api.HandleFunc("GET /v1/explain", s.api(epExplain, s.handleExplain))
	api.HandleFunc("POST /v1/ingest", s.api(epIngest, s.handleIngest))
	api.HandleFunc("POST /v1/compact", s.api(epCompact, s.handleCompact))

	// Health and metrics bypass shedding and timeouts: a saturated
	// server must still answer its orchestrator.
	root := http.NewServeMux()
	root.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	root.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ready": true})
	})
	root.HandleFunc("GET /metrics", s.handleMetrics)
	// Reload bypasses shedding and the request timeout: rebuilding the
	// TA index can take longer than a query budget, and a saturated
	// server must still accept the swap that might relieve it.
	root.HandleFunc("POST /v1/reload", s.handleReload)
	root.Handle("/v1/", Chain(api,
		WithConcurrencyLimit(cfg.MaxInFlight, s.metrics.RecordShed),
		WithTimeout(cfg.RequestTimeout),
	))

	var accessLogger *log.Logger
	if cfg.AccessLog {
		accessLogger = cfg.Logger
	}
	s.handler = Chain(root,
		WithLogging(accessLogger),
		WithRecovery(cfg.Logger, s.metrics.RecordPanic),
	)
	return s
}

// Warm builds the TA index (PrepareJoint) and marks the server ready.
// Safe to call from a goroutine while the listener is already up:
// /healthz answers during warm-up, /readyz flips afterwards.
func (s *Server) Warm() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ready.Load() {
		return nil
	}
	if err := s.rec.PrepareJoint(s.resolvePruneK(s.rec)); err != nil {
		return err
	}
	s.ready.Store(true)
	return nil
}

// resolvePruneK maps Config.PruneK onto a PrepareJoint argument: < 0
// keeps the full candidate space, 0 applies the paper's
// 5%-of-test-events heuristic, > 0 is used as-is.
func (s *Server) resolvePruneK(rec *ebsn.Recommender) int {
	pruneK := s.cfg.PruneK
	switch {
	case pruneK < 0:
		return 0 // PrepareJoint(0) keeps the full space
	case pruneK == 0:
		pruneK = len(rec.Split().TestEvents) / 20
		if pruneK < 1 {
			pruneK = 1
		}
	}
	return pruneK
}

// Reload loads the snapshot at path (Config.SnapshotPath when empty),
// rebuilds a Recommender and its TA index entirely off the request
// path, then atomically swaps it in and bumps the cache generation —
// zero downtime: queries in flight finish against the old model, new
// queries see the new one. Any live-ingested events are dropped (the
// retrained model supersedes them). A failed reload leaves the serving
// model untouched; success and failure are both recorded for /metrics.
func (s *Server) Reload(path string) (err error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	defer func() { s.recordReload(path, err) }()

	if path == "" {
		path = s.cfg.SnapshotPath
	}
	if path == "" {
		return errors.New("serve: no snapshot path configured (set Config.SnapshotPath or name one in the reload request)")
	}
	snap, err := ebsn.LoadModelSnapshot(path)
	if err != nil {
		return err
	}
	s.mu.RLock()
	cur := s.rec
	s.mu.RUnlock()
	next, err := cur.WithSnapshot(snap)
	if err != nil {
		return err
	}
	if err := next.PrepareJoint(s.resolvePruneK(next)); err != nil {
		return err
	}
	s.mu.Lock()
	s.rec = next
	s.mu.Unlock()
	s.gen.Add(1) // orphan every cached response from the old model
	s.ready.Store(true)
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf("reloaded model from %s (steps=%d, generation=%d)", path, snap.Steps, s.gen.Load())
	}
	return nil
}

func (s *Server) recordReload(path string, err error) {
	s.reload.mu.Lock()
	defer s.reload.mu.Unlock()
	if err == nil {
		// The last failure stays visible as history; last_success vs
		// last_error_at tells the reader which outcome is current.
		s.reload.count++
		s.reload.lastOK = time.Now()
		return
	}
	s.reload.failures++
	s.reload.lastErr = err.Error()
	s.reload.lastErrAt = time.Now()
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf("reload from %q failed: %v", path, err)
	}
}

// Ready reports whether Warm has completed.
func (s *Server) Ready() bool { return s.ready.Load() }

// Generation returns the cache generation counter; it bumps on every
// ingest and compaction, orphaning older cached responses.
func (s *Server) Generation() uint64 { return s.gen.Load() }

// Metrics exposes the server's instrument panel.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Cache returns the response cache (nil when disabled).
func (s *Server) Cache() *Cache { return s.cache }

// ServeHTTP implements http.Handler with the full middleware stack.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Serve accepts connections on l until ctx is canceled, then drains
// in-flight requests for up to Config.DrainTimeout before returning.
// A clean shutdown returns nil.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	hs := &http.Server{Handler: s, ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		if err == http.ErrServerClosed {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	<-errc // reap http.ErrServerClosed
	return nil
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, l)
}

// api wraps a handler with the per-endpoint plumbing every /v1 route
// shares: readiness gating, the in-flight gauge, and status + latency
// metrics.
func (s *Server) api(name string, h http.HandlerFunc) http.HandlerFunc {
	ep := s.metrics.Endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "server warming up")
			return
		}
		s.metrics.AddInFlight(1)
		defer s.metrics.AddInFlight(-1)
		rec := &statusRecorder{ResponseWriter: w}
		t0 := time.Now()
		h(rec, r)
		ep.Observe(rec.statusOr200(), time.Since(t0))
	}
}

// ---- request parsing ----

func (s *Server) parseUserN(rec *ebsn.Recommender, r *http.Request) (user int32, n int, err error) {
	rawUser := r.URL.Query().Get("user")
	u, convErr := strconv.Atoi(rawUser)
	if rawUser == "" || convErr != nil || u < 0 || u >= rec.Dataset().NumUsers {
		return 0, 0, fmt.Errorf("invalid or missing user parameter (0 ≤ user < %d)", rec.Dataset().NumUsers)
	}
	n = s.cfg.DefaultN
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, convErr := strconv.Atoi(raw)
		if convErr != nil || v <= 0 || v > s.cfg.MaxN {
			return 0, 0, fmt.Errorf("invalid n parameter (1 ≤ n ≤ %d)", s.cfg.MaxN)
		}
		n = v
	}
	return int32(u), n, nil
}

func parseID(r *http.Request, key string, limit int) (int32, error) {
	raw := r.URL.Query().Get(key)
	v, err := strconv.Atoi(raw)
	if raw == "" || err != nil || v < 0 || v >= limit {
		return 0, fmt.Errorf("invalid or missing %s parameter (0 ≤ %s < %d)", key, key, limit)
	}
	return int32(v), nil
}

// ---- response shapes ----

// EventResult is one recommended event.
type EventResult struct {
	Event int32   `json:"event"`
	Start string  `json:"start,omitempty"`
	Score float32 `json:"score"`
}

// PairResult is one recommended event-partner pair. Live is true for
// events ingested after training (negative IDs).
type PairResult struct {
	Event   int32   `json:"event"`
	Live    bool    `json:"live,omitempty"`
	Start   string  `json:"start,omitempty"`
	Partner int32   `json:"partner"`
	Friend  bool    `json:"friend"`
	Score   float32 `json:"score"`
}

// RankingResponse is the payload of the three query endpoints.
type RankingResponse struct {
	User   int32         `json:"user"`
	N      int           `json:"n"`
	Events []EventResult `json:"events,omitempty"`
	Pairs  []PairResult  `json:"pairs,omitempty"`
}

// ExplainResponse decomposes one (user, partner, event) score per the
// paper's Eqn. 8.
type ExplainResponse struct {
	User         int32   `json:"user"`
	Partner      int32   `json:"partner"`
	Event        int32   `json:"event"`
	UserEvent    float32 `json:"user_event"`
	PartnerEvent float32 `json:"partner_event"`
	Social       float32 `json:"social"`
	Total        float32 `json:"total"`
	Friend       bool    `json:"friend"`
}

// IngestRequest is the POST /v1/ingest body.
type IngestRequest struct {
	// Words is the event description, tokenized.
	Words []string `json:"words"`
	// Venue is a known venue ID (the fold-in anchor).
	Venue int32 `json:"venue"`
	// Start is the event start time, RFC 3339.
	Start time.Time `json:"start"`
}

// IngestResponse reports the assigned live event ID.
type IngestResponse struct {
	ID         int32  `json:"id"`
	LiveEvents int    `json:"live_events"`
	Generation uint64 `json:"generation"`
}

// CompactResponse reports the post-compaction state.
type CompactResponse struct {
	LiveEvents int    `json:"live_events"`
	Generation uint64 `json:"generation"`
}

// ReloadRequest is the POST /v1/reload body; an empty body (or empty
// path) reloads from Config.SnapshotPath.
type ReloadRequest struct {
	// Path is the snapshot file to load.
	Path string `json:"path,omitempty"`
}

// ReloadResponse reports the post-reload serving state.
type ReloadResponse struct {
	Generation uint64         `json:"generation"`
	ModelSteps int64          `json:"model_steps"`
	Reload     ReloadSnapshot `json:"reload"`
}

// ReloadSnapshot is the reload section of /metrics: how many swaps
// succeeded and failed, when the last one landed, and the last error.
type ReloadSnapshot struct {
	Count       uint64 `json:"count"`
	Failures    uint64 `json:"failures"`
	LastSuccess string `json:"last_success,omitempty"`
	LastError   string `json:"last_error,omitempty"`
	LastErrorAt string `json:"last_error_at,omitempty"`
}

// ServerMetrics is the full /metrics payload.
type ServerMetrics struct {
	MetricsSnapshot
	Generation uint64         `json:"generation"`
	LiveEvents int            `json:"live_events"`
	ModelSteps int64          `json:"model_steps"`
	Reload     ReloadSnapshot `json:"reload"`
	Cache      CacheSnapshot  `json:"cache"`
}

// CacheSnapshot is the cache section of /metrics.
type CacheSnapshot struct {
	Enabled  bool    `json:"enabled"`
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	HitRate  float64 `json:"hit_rate"`
	Entries  int     `json:"entries"`
	Capacity int     `json:"capacity"`
}

// ---- handlers ----

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	rec := s.rec
	user, n, err := s.parseUserN(rec, r)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := cacheKey(epEvents, user, n, s.gen.Load())
	if v, ok := s.cacheGet(key); ok {
		s.mu.RUnlock()
		writeJSON(w, http.StatusOK, v)
		return
	}
	recs, err := rec.TopEvents(user, n)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	d := rec.Dataset()
	resp := &RankingResponse{User: user, N: n, Events: make([]EventResult, len(recs))}
	for i, e := range recs {
		resp.Events[i] = EventResult{
			Event: e.Event,
			Start: d.Events[e.Event].Start.Format(time.RFC3339),
			Score: e.Score,
		}
	}
	s.mu.RUnlock()
	s.cachePut(key, resp)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePartners(w http.ResponseWriter, r *http.Request) {
	s.servePairs(w, r, epPartners, (*ebsn.Recommender).TopEventPartnersStats)
}

func (s *Server) handlePartnersLive(w http.ResponseWriter, r *http.Request) {
	s.servePairs(w, r, epPartnersLive, (*ebsn.Recommender).TopEventPartnersLiveStats)
}

func (s *Server) servePairs(w http.ResponseWriter, r *http.Request, ep string,
	query func(*ebsn.Recommender, int32, int) ([]ebsn.PairRecommendation, ebsn.SearchStats, error)) {
	s.mu.RLock()
	rec := s.rec
	user, n, err := s.parseUserN(rec, r)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := cacheKey(ep, user, n, s.gen.Load())
	if v, ok := s.cacheGet(key); ok {
		s.mu.RUnlock()
		writeJSON(w, http.StatusOK, v)
		return
	}
	pairs, stats, err := query(rec, user, n)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.metrics.RecordTA(stats)
	d := rec.Dataset()
	resp := &RankingResponse{User: user, N: n, Pairs: make([]PairResult, len(pairs))}
	for i, p := range pairs {
		pr := PairResult{
			Event:   p.Event,
			Live:    p.Event < 0,
			Partner: p.Partner,
			Friend:  d.AreFriends(user, p.Partner),
			Score:   p.Score,
		}
		if p.Event >= 0 {
			pr.Start = d.Events[p.Event].Start.Format(time.RFC3339)
		}
		resp.Pairs[i] = pr
	}
	s.mu.RUnlock()
	s.cachePut(key, resp)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec := s.rec
	d := rec.Dataset()
	user, err := parseID(r, "user", d.NumUsers)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	partner, err := parseID(r, "partner", d.NumUsers)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	event, err := parseID(r, "event", d.NumEvents())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	b, err := rec.Explain(user, partner, event)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, &ExplainResponse{
		User: user, Partner: partner, Event: event,
		UserEvent: b.UserEvent, PartnerEvent: b.PartnerEvent,
		Social: b.Social, Total: b.Total,
		Friend: d.AreFriends(user, partner),
	})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad ingest body: "+err.Error())
		return
	}
	if len(req.Words) == 0 {
		writeError(w, http.StatusBadRequest, "ingest: words must be non-empty")
		return
	}
	if req.Start.IsZero() {
		writeError(w, http.StatusBadRequest, "ingest: start must be a valid RFC 3339 time")
		return
	}
	s.mu.Lock()
	rec := s.rec
	if int(req.Venue) < 0 || int(req.Venue) >= len(rec.Dataset().Venues) {
		s.mu.Unlock()
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("ingest: venue %d out of range [0,%d)", req.Venue, len(rec.Dataset().Venues)))
		return
	}
	id, err := rec.IngestColdEvent(req.Words, req.Venue, req.Start)
	live := rec.LiveEventCount()
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	gen := s.gen.Add(1)
	writeJSON(w, http.StatusOK, &IngestResponse{ID: id, LiveEvents: live, Generation: gen})
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.rec.CompactLiveEvents()
	live := s.rec.LiveEventCount()
	s.mu.Unlock()
	gen := s.gen.Add(1)
	writeJSON(w, http.StatusOK, &CompactResponse{LiveEvents: live, Generation: gen})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req ReloadRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "bad reload body: "+err.Error())
		return
	}
	if err := s.Reload(req.Path); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.mu.RLock()
	steps := s.rec.Model().Steps()
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, &ReloadResponse{
		Generation: s.gen.Load(),
		ModelSteps: steps,
		Reload:     s.reloadSnapshot(),
	})
}

// reloadSnapshot renders the reload counters for /metrics and the
// reload response.
func (s *Server) reloadSnapshot() ReloadSnapshot {
	s.reload.mu.Lock()
	defer s.reload.mu.Unlock()
	rs := ReloadSnapshot{
		Count:     s.reload.count,
		Failures:  s.reload.failures,
		LastError: s.reload.lastErr,
	}
	if !s.reload.lastOK.IsZero() {
		rs.LastSuccess = s.reload.lastOK.Format(time.RFC3339)
	}
	if !s.reload.lastErrAt.IsZero() {
		rs.LastErrorAt = s.reload.lastErrAt.Format(time.RFC3339)
	}
	return rs
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	live := s.rec.LiveEventCount()
	steps := s.rec.Model().Steps()
	s.mu.RUnlock()
	m := ServerMetrics{
		MetricsSnapshot: s.metrics.Snapshot(),
		Generation:      s.gen.Load(),
		LiveEvents:      live,
		ModelSteps:      steps,
		Reload:          s.reloadSnapshot(),
	}
	if s.cache != nil {
		hits, misses := s.cache.Stats()
		m.Cache = CacheSnapshot{
			Enabled:  true,
			Hits:     hits,
			Misses:   misses,
			Entries:  s.cache.Len(),
			Capacity: s.cache.Capacity(),
		}
		if total := hits + misses; total > 0 {
			m.Cache.HitRate = float64(hits) / float64(total)
		}
	}
	writeJSON(w, http.StatusOK, m)
}

// ---- cache plumbing ----

func cacheKey(ep string, user int32, n int, gen uint64) string {
	return ep + "|u" + strconv.Itoa(int(user)) + "|n" + strconv.Itoa(n) + "|g" + strconv.FormatUint(gen, 10)
}

func (s *Server) cacheGet(key string) (any, bool) {
	if s.cache == nil {
		return nil, false
	}
	return s.cache.Get(key)
}

func (s *Server) cachePut(key string, v any) {
	if s.cache != nil {
		s.cache.Put(key, v)
	}
}

// ---- JSON helpers ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
