package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ebsn"
)

// BatchQueryRequest is the body of the batched query endpoints
// (POST /v1/events and POST /v1/partners): one ranking per user, all
// answered by a single engine traversal. N falls back to Config.DefaultN
// when omitted.
type BatchQueryRequest struct {
	// Users are the user IDs to rank for, at most Config.MaxBatch of
	// them; larger batches are rejected with 400.
	Users []int32 `json:"users"`
	// N is the per-user result count (Config.DefaultN when 0).
	N int `json:"n,omitempty"`
}

// BatchRankingResponse is the payload of the batched query endpoints:
// Results is indexed like the request's users.
type BatchRankingResponse struct {
	// N is the resolved per-user result count.
	N int `json:"n"`
	// Results carries one ranking per requested user, in request order.
	Results []RankingResponse `json:"results"`
}

// validateBatch checks a batch body against the configured caps and the
// serving model's user space, returning the resolved n. Over-cap batches
// bump the rejection counter — they are a client-shaping signal, not an
// error of the server's.
func (s *Server) validateBatch(rec *ebsn.Recommender, req *BatchQueryRequest) (int, error) {
	if len(req.Users) == 0 {
		return 0, errors.New("users must be non-empty")
	}
	if len(req.Users) > s.cfg.MaxBatch {
		s.metrics.RecordBatchRejected()
		return 0, fmt.Errorf("batch of %d users exceeds the %d-user limit; split the request", len(req.Users), s.cfg.MaxBatch)
	}
	nu := rec.Dataset().NumUsers
	for i, u := range req.Users {
		if int(u) < 0 || int(u) >= nu {
			return 0, fmt.Errorf("users[%d] = %d out of range (0 ≤ user < %d)", i, u, nu)
		}
	}
	n := req.N
	if n == 0 {
		n = s.cfg.DefaultN
	}
	if n < 0 || n > s.cfg.MaxN {
		return 0, fmt.Errorf("invalid n (1 ≤ n ≤ %d)", s.cfg.MaxN)
	}
	return n, nil
}

// decodeBatch parses a batch body (1 MiB cap, unknown fields rejected).
func decodeBatch(w http.ResponseWriter, r *http.Request) (*BatchQueryRequest, bool) {
	var req BatchQueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad batch body: "+err.Error())
		return nil, false
	}
	return &req, true
}

// encodePairs renders one user's pair recommendations, truncated to n.
func encodePairs(d *ebsn.Dataset, user int32, n int, pairs []ebsn.PairRecommendation) *RankingResponse {
	if len(pairs) > n {
		pairs = pairs[:n]
	}
	resp := &RankingResponse{User: user, N: n, Pairs: make([]PairResult, len(pairs))}
	for i, p := range pairs {
		pr := PairResult{
			Event:   p.Event,
			Live:    p.Event < 0,
			Partner: p.Partner,
			Friend:  d.AreFriends(user, p.Partner),
			Score:   p.Score,
		}
		if p.Event >= 0 {
			pr.Start = d.Events[p.Event].Start.Format(time.RFC3339)
		}
		resp.Pairs[i] = pr
	}
	return resp
}

// eventScratchPool reuses TopEventsBatchScratch buffers across batched
// event requests; results are encoded before the scratch goes back.
var eventScratchPool = sync.Pool{New: func() any { return new(ebsn.EventBatchScratch) }}

// handleEventsBatch is POST /v1/events: one panel pass over the test
// events scores the whole batch, bit-identical to per-user GETs.
func (s *Server) handleEventsBatch(w http.ResponseWriter, r *http.Request) {
	sp := s.tracer.Start(epEventsBatch)
	defer sp.End()
	req, ok := decodeBatch(w, r)
	if !ok {
		return
	}
	s.mu.RLock()
	rec := s.rec
	n, err := s.validateBatch(rec, req)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sp.SetAttr("batch", int64(len(req.Users)))
	sp.SetAttr("n", int64(n))
	sp.Stage("query")
	sc := eventScratchPool.Get().(*ebsn.EventBatchScratch)
	res, err := rec.TopEventsBatchScratch(req.Users, n, sc)
	if err != nil {
		eventScratchPool.Put(sc)
		s.mu.RUnlock()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.metrics.RecordBatch(len(req.Users))
	sp.Stage("encode")
	d := rec.Dataset()
	resp := &BatchRankingResponse{N: n, Results: make([]RankingResponse, len(res))}
	for j, recs := range res {
		rr := RankingResponse{User: req.Users[j], N: n, Events: make([]EventResult, len(recs))}
		for i, e := range recs {
			rr.Events[i] = EventResult{
				Event: e.Event,
				Start: d.Events[e.Event].Start.Format(time.RFC3339),
				Score: e.Score,
			}
		}
		resp.Results[j] = rr
	}
	eventScratchPool.Put(sc) // results are encoded; the scratch is free
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

// handlePartnersBatch is POST /v1/partners: the whole batch fans out to
// each engine shard once, with the affinity passes shared across users
// as matrix panels. Results are bit-identical to per-user GETs.
func (s *Server) handlePartnersBatch(w http.ResponseWriter, r *http.Request) {
	sp := s.tracer.Start(epPartnersBatch)
	defer sp.End()
	req, ok := decodeBatch(w, r)
	if !ok {
		return
	}
	s.mu.RLock()
	rec := s.rec
	n, err := s.validateBatch(rec, req)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sp.SetAttr("batch", int64(len(req.Users)))
	sp.SetAttr("n", int64(n))
	sp.Stage("ta_search")
	batch, bs, err := rec.TopEventPartnersBatchStats(req.Users, n)
	if err != nil {
		s.mu.RUnlock()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.metrics.RecordTA(bs.Agg)
	if len(bs.Shards) > 0 {
		s.metrics.RecordEngine(ebsn.EngineStats{Shards: bs.Shards, CriticalPath: bs.CriticalPath})
	}
	s.metrics.RecordBatch(len(req.Users))
	sp.SetAttr("ta_candidates", int64(bs.Agg.Candidates))
	sp.SetAttr("shards", int64(len(bs.Shards)))
	for _, ss := range bs.Shards {
		sp.StageDur("shard"+strconv.Itoa(ss.Shard), ss.Wall)
	}
	sp.Stage("encode")
	d := rec.Dataset()
	resp := &BatchRankingResponse{N: n, Results: make([]RankingResponse, len(batch))}
	for j, pairs := range batch {
		resp.Results[j] = *encodePairs(d, req.Users[j], n, pairs)
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}
