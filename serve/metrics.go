package serve

import (
	"io"
	"strconv"
	"sync"
	"time"

	"ebsn"
	"ebsn/internal/obs"
)

// latencyBoundsMs are the request-latency histogram bucket upper bounds,
// in milliseconds. Observations above the last bound land in an overflow
// bucket. Fixed buckets keep Observe lock-free (one atomic increment) at
// the cost of interpolated quantiles — the standard serving trade-off.
// The registry stores the same bounds in seconds (Prometheus base
// units); this list stays in ms because the JSON snapshot and its tests
// speak milliseconds.
var latencyBoundsMs = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000,
}

// taBoundsSeconds are the TA in-index search-time buckets: the engine
// answers city-scale queries in hundreds of microseconds, so the request
// buckets above would collapse its whole distribution into two buckets.
var taBoundsSeconds = []float64{
	0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
}

func latencyBoundsSeconds() []float64 {
	s := make([]float64, len(latencyBoundsMs))
	for i, ms := range latencyBoundsMs {
		s[i] = ms / 1000
	}
	return s
}

// EndpointMetrics aggregates one endpoint's counters and latency
// histogram — children of the endpoint-labeled registry families,
// resolved once at startup so the hot path never touches the vec maps.
type EndpointMetrics struct {
	requests *obs.Counter
	err4xx   *obs.Counter
	err5xx   *obs.Counter
	hist     *obs.Histogram
}

// Observe records one finished request with its HTTP status.
func (e *EndpointMetrics) Observe(status int, d time.Duration) {
	e.requests.Inc()
	switch {
	case status >= 500:
		e.err5xx.Inc()
	case status >= 400:
		e.err4xx.Inc()
	}
	e.hist.Observe(d)
}

// Metrics is the server-wide instrument panel: per-endpoint counters and
// latency histograms, load-shedding and panic counts, in-flight and
// draining gauges, and cumulative TA search work. Every instrument lives
// in an obs.Registry, so /metrics renders the whole panel as Prometheus
// text; Snapshot keeps the legacy JSON view over the same counters.
// Recording on the hot path never takes a lock.
type Metrics struct {
	start time.Time
	reg   *obs.Registry

	order     []string
	endpoints map[string]*EndpointMetrics

	shed     *obs.Counter
	panics   *obs.Counter
	inflight *obs.Gauge
	draining *obs.Gauge

	taQueries    *obs.Counter
	taSorted     *obs.Counter
	taRandom     *obs.Counter
	taCandidates *obs.Counter
	taDuration   *obs.Histogram

	shardQueries  *obs.Counter
	shardSearches *obs.CounterVec
	shardWall     *obs.HistogramVec

	// Batched-admission panel: dispatch widths (explicit POST batches
	// and coalesced windows), requests answered through the coalescer,
	// and over-cap rejections.
	batchSize     *obs.Histogram
	coalesced     *obs.Counter
	batchRejected *obs.Counter

	// Streaming-ingest panel: per-source arrival counters (bounded label
	// cardinality — see RecordIngest) and the background-compaction
	// lifecycle.
	ingestEvents       *obs.CounterVec
	ingestMu           sync.Mutex
	ingestSrc          map[string]*obs.Counter
	compactions        *obs.Counter
	compactionFailures *obs.Counter
	compactionRunning  *obs.Gauge
	compactionDuration *obs.Histogram
	compactedEvents    *obs.Counter

	// Scenario-workload panel: requests answered by the group,
	// constrained, and feed surfaces, by kind. The kind set is fixed at
	// startup so recording stays lock-free.
	workload map[string]*obs.Counter

	// Zero-copy index-artifact panel: successful mapped loads (with
	// their map+verify duration), preparations that fell back to a full
	// rebuild, and artifact rewrites after such a rebuild.
	artifactLoads     *obs.Counter
	artifactFallbacks *obs.Counter
	artifactSaves     *obs.Counter
	artifactLoadDur   *obs.Histogram
}

// compactionBoundsSeconds are the background-fold duration buckets:
// milliseconds on the tiny presets up to tens of seconds at city scale.
var compactionBoundsSeconds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// NewMetrics creates a Metrics with one EndpointMetrics per name. The
// endpoint set is fixed at creation so lookups are lock-free, and every
// series exists from the first scrape (explicit zeros, no appearing
// series).
func NewMetrics(endpointNames ...string) *Metrics {
	m := &Metrics{
		start:     time.Now(),
		reg:       obs.NewRegistry(),
		order:     append([]string(nil), endpointNames...),
		endpoints: make(map[string]*EndpointMetrics, len(endpointNames)),
	}
	m.reg.GaugeFunc("ebsn_serve_uptime_seconds",
		"Seconds since the metrics panel (process) started.",
		func() float64 { return time.Since(m.start).Seconds() })
	req := m.reg.CounterVec("ebsn_serve_requests_total",
		"Finished /v1 requests, by endpoint.", "endpoint")
	errs := m.reg.CounterVec("ebsn_serve_request_errors_total",
		"Finished /v1 requests with error statuses, by endpoint and status class.",
		"endpoint", "class")
	hist := m.reg.HistogramVec("ebsn_serve_request_duration_seconds",
		"Request handler latency, by endpoint.", latencyBoundsSeconds(), "endpoint")
	for _, name := range endpointNames {
		m.endpoints[name] = &EndpointMetrics{
			requests: req.With(name),
			err4xx:   errs.With(name, "4xx"),
			err5xx:   errs.With(name, "5xx"),
			hist:     hist.With(name),
		}
	}
	m.shed = m.reg.Counter("ebsn_serve_shed_total",
		"Requests rejected 503 by the concurrency limiter.")
	m.panics = m.reg.Counter("ebsn_serve_panics_total",
		"Recovered handler panics.")
	m.inflight = m.reg.Gauge("ebsn_serve_in_flight",
		"Requests currently inside /v1 handlers.")
	m.draining = m.reg.Gauge("ebsn_serve_draining",
		"1 while the server drains in-flight requests during shutdown.")
	m.taQueries = m.reg.Counter("ebsn_serve_ta_queries_total",
		"Joint event-partner queries answered by the TA index.")
	m.taSorted = m.reg.Counter("ebsn_serve_ta_sorted_accesses_total",
		"Sorted-list positions consumed across all TA queries.")
	m.taRandom = m.reg.Counter("ebsn_serve_ta_random_accesses_total",
		"Candidate scores materialized across all TA queries.")
	m.taCandidates = m.reg.Counter("ebsn_serve_ta_candidates_total",
		"Candidate pairs in scope across all TA queries (pruning denominator).")
	m.taDuration = m.reg.Histogram("ebsn_serve_ta_duration_seconds",
		"Wall-clock time per query inside the TA index.", taBoundsSeconds)
	m.shardQueries = m.reg.Counter("ebsn_serve_shard_fanout_total",
		"Queries answered by the sharded scatter-gather engine.")
	m.shardSearches = m.reg.CounterVec("ebsn_serve_shard_searches_total",
		"Per-shard TA searches executed by engine fan-outs.", "shard")
	m.shardWall = m.reg.HistogramVec("ebsn_serve_shard_wall_seconds",
		"Wall-clock duration of one shard's search within a fan-out.",
		taBoundsSeconds, "shard")
	m.batchSize = m.reg.Histogram("ebsn_serve_batch_size",
		"Users per batched engine dispatch (POST batches and coalesced windows).",
		batchSizeBounds)
	m.coalesced = m.reg.Counter("ebsn_serve_coalesced_requests_total",
		"Single-user partner queries answered through the micro-batching coalescer.")
	m.batchRejected = m.reg.Counter("ebsn_serve_batch_rejected_total",
		"Batched queries rejected 400 for exceeding the configured user cap.")
	m.ingestEvents = m.reg.CounterVec("ebsn_serve_ingest_events_total",
		"Live events accepted by /v1/ingest, by source attribution.", "source")
	m.ingestSrc = make(map[string]*obs.Counter)
	m.compactions = m.reg.Counter("ebsn_serve_compactions_total",
		"Background delta compactions completed (successes and failures).")
	m.compactionFailures = m.reg.Counter("ebsn_serve_compaction_failures_total",
		"Background delta compactions that failed or were superseded.")
	m.compactionRunning = m.reg.Gauge("ebsn_serve_compaction_running",
		"1 while a background delta compaction is in flight.")
	m.compactionDuration = m.reg.Histogram("ebsn_serve_compaction_duration_seconds",
		"Wall-clock duration of one background delta fold (build + swap).",
		compactionBoundsSeconds)
	m.compactedEvents = m.reg.Counter("ebsn_serve_compacted_events_total",
		"Live events folded from the delta into the main index.")
	wl := m.reg.CounterVec("ebsn_serve_workload_requests_total",
		"Scenario workload requests served, by kind (group aggregation, predicate-constrained, feed).",
		"kind")
	m.workload = make(map[string]*obs.Counter, len(workloadKinds))
	for _, kind := range workloadKinds {
		m.workload[kind] = wl.With(kind)
	}
	m.artifactLoads = m.reg.Counter("ebsn_serve_artifact_loads_total",
		"Joint indexes brought up by mapping a zero-copy artifact instead of rebuilding.")
	m.artifactFallbacks = m.reg.Counter("ebsn_serve_artifact_fallback_rebuilds_total",
		"Index preparations that fell back to a full rebuild (artifact missing, corrupt, or stale).")
	m.artifactSaves = m.reg.Counter("ebsn_serve_artifact_saves_total",
		"Index artifacts (re)written after a rebuild.")
	m.artifactLoadDur = m.reg.Histogram("ebsn_serve_artifact_load_seconds",
		"Time to map and checksum-verify an index artifact on a successful zero-copy load.",
		compactionBoundsSeconds)
	return m
}

// batchSizeBounds are the batch-width histogram buckets, in users per
// dispatch (the histogram's "seconds" are unitless counts here).
var batchSizeBounds = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}

// RecordBatch observes one explicit batched dispatch of the given width.
func (m *Metrics) RecordBatch(size int) { m.batchSize.ObserveSeconds(float64(size)) }

// RecordCoalesced counts size requests answered by one coalesced
// dispatch and observes the dispatch width.
func (m *Metrics) RecordCoalesced(size int) {
	m.coalesced.Add(uint64(size))
	m.batchSize.ObserveSeconds(float64(size))
}

// RecordBatchRejected counts one batch rejected for exceeding the
// configured user cap.
func (m *Metrics) RecordBatchRejected() { m.batchRejected.Inc() }

// maxIngestSources bounds the source label cardinality; arrivals past
// the cap are attributed to "_other" so a misbehaving client cannot
// grow the exposition without bound.
const maxIngestSources = 64

// RecordIngest counts n accepted events for the source and returns the
// source's running total. Unknown sources allocate a new labeled child
// until the cardinality cap, then collapse into "_other".
func (m *Metrics) RecordIngest(source string, n int) uint64 {
	m.ingestMu.Lock()
	c, ok := m.ingestSrc[source]
	if !ok {
		if len(m.ingestSrc) >= maxIngestSources {
			source = "_other"
			c, ok = m.ingestSrc[source]
		}
		if !ok {
			c = m.ingestEvents.With(source)
			m.ingestSrc[source] = c
		}
	}
	m.ingestMu.Unlock()
	c.Add(uint64(n))
	return c.Value()
}

// IngestSources snapshots the per-source accepted-event totals.
func (m *Metrics) IngestSources() map[string]uint64 {
	m.ingestMu.Lock()
	defer m.ingestMu.Unlock()
	out := make(map[string]uint64, len(m.ingestSrc))
	for src, c := range m.ingestSrc {
		out[src] = c.Value()
	}
	return out
}

// workloadKinds is the fixed label set of the workload request counter.
var workloadKinds = []string{workloadGroup, workloadConstrained, workloadFeed}

// RecordWorkload counts one scenario-workload request of the given kind
// (one of workloadKinds; unknown kinds are dropped rather than grown
// into new series).
func (m *Metrics) RecordWorkload(kind string) {
	if c := m.workload[kind]; c != nil {
		c.Inc()
	}
}

// WorkloadCounts snapshots the per-kind workload request totals.
func (m *Metrics) WorkloadCounts() map[string]uint64 {
	out := make(map[string]uint64, len(m.workload))
	for kind, c := range m.workload {
		out[kind] = c.Value()
	}
	return out
}

// RecordArtifactLoad counts one successful zero-copy index load and its
// map+verify duration.
func (m *Metrics) RecordArtifactLoad(d time.Duration) {
	m.artifactLoads.Inc()
	m.artifactLoadDur.Observe(d)
}

// RecordArtifactFallback counts one index preparation that fell back to
// a full rebuild because the artifact was missing, corrupt, or stale.
func (m *Metrics) RecordArtifactFallback() { m.artifactFallbacks.Inc() }

// RecordArtifactSave counts one artifact rewritten after a rebuild.
func (m *Metrics) RecordArtifactSave() { m.artifactSaves.Inc() }

// ArtifactStats reads the artifact panel's counters (mapped loads,
// fallback rebuilds, artifact writes) — the integration tests' hook.
func (m *Metrics) ArtifactStats() (loads, fallbacks, saves uint64) {
	return m.artifactLoads.Value(), m.artifactFallbacks.Value(), m.artifactSaves.Value()
}

// CompactionStarted flips the running gauge up; pair with CompactionDone.
func (m *Metrics) CompactionStarted() { m.compactionRunning.Set(1) }

// CompactionDone records one finished background compaction: duration,
// events folded (on success), and the failure counter when err is
// non-nil. The running gauge flips down.
func (m *Metrics) CompactionDone(d time.Duration, folded int, err error) {
	m.compactionRunning.Set(0)
	m.compactions.Inc()
	m.compactionDuration.Observe(d)
	if err != nil {
		m.compactionFailures.Inc()
		return
	}
	m.compactedEvents.Add(uint64(folded))
}

// Registry exposes the underlying registry so the server can attach
// scrape-time instruments (cache, reload, model state) next to the
// request panel.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// WriteExposition renders every registered family as Prometheus text
// exposition format 0.0.4.
func (m *Metrics) WriteExposition(w io.Writer) error { return m.reg.WritePrometheus(w) }

// Endpoint returns the metrics bucket for name (nil when unknown).
func (m *Metrics) Endpoint(name string) *EndpointMetrics { return m.endpoints[name] }

// RecordShed counts one load-shed (503) response.
func (m *Metrics) RecordShed() { m.shed.Inc() }

// RecordPanic counts one recovered handler panic.
func (m *Metrics) RecordPanic() { m.panics.Inc() }

// RecordTA folds one TA query's work counters and in-index duration into
// the running totals.
func (m *Metrics) RecordTA(s ebsn.SearchStats) {
	m.taQueries.Inc()
	m.taSorted.Add(uint64(s.SortedAccesses))
	m.taRandom.Add(uint64(s.RandomAccesses))
	m.taCandidates.Add(uint64(s.Candidates))
	m.taDuration.Observe(s.Elapsed)
}

// RecordEngine folds one scatter-gather query's fan-out into the shard
// metrics: the fan-out counter, and per shard a search count and a wall
// -duration observation. Shard labels are the engine's shard indices, so
// a skewed partner range shows up as one shard's histogram drifting
// right. The aggregated TA counters are recorded separately via
// RecordTA, exactly as on the monolithic path.
func (m *Metrics) RecordEngine(es ebsn.EngineStats) {
	m.shardQueries.Inc()
	for _, ss := range es.Shards {
		label := strconv.Itoa(ss.Shard)
		m.shardSearches.With(label).Inc()
		m.shardWall.With(label).Observe(ss.Wall)
	}
}

// AddInFlight moves the in-flight request gauge by delta.
func (m *Metrics) AddInFlight(delta int64) { m.inflight.Add(float64(delta)) }

// InFlight reads the in-flight request gauge — the number the drain path
// logs and the final scrape reports during shutdown.
func (m *Metrics) InFlight() int64 { return int64(m.inflight.Value()) }

// SetDraining flips the draining gauge, marking every later scrape as
// taken during shutdown.
func (m *Metrics) SetDraining() { m.draining.Set(1) }

// Draining reports whether SetDraining has been called.
func (m *Metrics) Draining() bool { return m.draining.Value() != 0 }

// EndpointSnapshot is the rendered view of one endpoint.
type EndpointSnapshot struct {
	Count     uint64  `json:"count"`
	Status4xx uint64  `json:"status_4xx"`
	Status5xx uint64  `json:"status_5xx"`
	QPS       float64 `json:"qps"`
	MeanMs    float64 `json:"mean_ms"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// TASnapshot is the cumulative TA search work across joint queries.
type TASnapshot struct {
	Queries        uint64  `json:"queries"`
	SortedAccesses uint64  `json:"sorted_accesses"`
	RandomAccesses uint64  `json:"random_accesses"`
	Candidates     uint64  `json:"candidates"`
	AccessFraction float64 `json:"access_fraction"`
}

// BatchSnapshot is the batched-admission section of the JSON metrics
// view: coalescer throughput and the batch-width distribution across
// explicit POST batches and coalesced dispatches.
type BatchSnapshot struct {
	CoalescedRequests uint64  `json:"coalesced_requests"`
	Rejected          uint64  `json:"rejected"`
	Dispatches        uint64  `json:"dispatches"`
	MeanSize          float64 `json:"mean_size,omitempty"`
	P50Size           float64 `json:"p50_size,omitempty"`
	P95Size           float64 `json:"p95_size,omitempty"`
}

// MetricsSnapshot is the instrument section of the JSON metrics view
// (/metrics?format=json).
type MetricsSnapshot struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	InFlight      int64                       `json:"in_flight"`
	Draining      bool                        `json:"draining"`
	Shed          uint64                      `json:"shed"`
	Panics        uint64                      `json:"panics"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
	TA            TASnapshot                  `json:"ta"`
	Batch         BatchSnapshot               `json:"batch"`
	Workload      map[string]uint64           `json:"workload"`
}

// Snapshot renders the current counters. Values are read without
// stopping writers, so a snapshot taken under load is approximate.
func (m *Metrics) Snapshot() MetricsSnapshot {
	uptime := time.Since(m.start).Seconds()
	snap := MetricsSnapshot{
		UptimeSeconds: uptime,
		InFlight:      m.InFlight(),
		Draining:      m.Draining(),
		Shed:          m.shed.Value(),
		Panics:        m.panics.Value(),
		Endpoints:     make(map[string]EndpointSnapshot, len(m.order)),
	}
	for _, name := range m.order {
		e := m.endpoints[name]
		es := EndpointSnapshot{
			Count:     e.requests.Value(),
			Status4xx: e.err4xx.Value(),
			Status5xx: e.err5xx.Value(),
			MeanMs:    e.hist.Mean() * 1000,
			P50Ms:     e.hist.Quantile(0.50) * 1000,
			P95Ms:     e.hist.Quantile(0.95) * 1000,
			P99Ms:     e.hist.Quantile(0.99) * 1000,
		}
		if uptime > 0 {
			es.QPS = float64(es.Count) / uptime
		}
		snap.Endpoints[name] = es
	}
	snap.TA = TASnapshot{
		Queries:        m.taQueries.Value(),
		SortedAccesses: m.taSorted.Value(),
		RandomAccesses: m.taRandom.Value(),
		Candidates:     m.taCandidates.Value(),
	}
	if snap.TA.Candidates > 0 {
		snap.TA.AccessFraction = float64(snap.TA.RandomAccesses) / float64(snap.TA.Candidates)
	}
	snap.Batch = BatchSnapshot{
		CoalescedRequests: m.coalesced.Value(),
		Rejected:          m.batchRejected.Value(),
		Dispatches:        m.batchSize.Count(),
	}
	if snap.Batch.Dispatches > 0 {
		snap.Batch.MeanSize = m.batchSize.Mean()
		snap.Batch.P50Size = m.batchSize.Quantile(0.50)
		snap.Batch.P95Size = m.batchSize.Quantile(0.95)
	}
	snap.Workload = m.WorkloadCounts()
	return snap
}
