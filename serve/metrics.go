package serve

import (
	"sort"
	"sync/atomic"
	"time"

	"ebsn"
)

// latencyBoundsMs are the fixed histogram bucket upper bounds, in
// milliseconds. Observations above the last bound land in an overflow
// bucket. Fixed buckets keep Observe lock-free (one atomic increment)
// at the cost of interpolated quantiles — the standard serving
// trade-off.
var latencyBoundsMs = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000,
}

// Histogram is a fixed-bucket latency histogram safe for concurrent use.
type Histogram struct {
	buckets   []atomic.Uint64 // len(latencyBoundsMs)+1; last is overflow
	count     atomic.Uint64
	sumMicros atomic.Uint64
}

func newHistogram() *Histogram {
	return &Histogram{buckets: make([]atomic.Uint64, len(latencyBoundsMs)+1)}
}

// Observe records one request duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ms := float64(d.Microseconds()) / 1000
	i := sort.SearchFloat64s(latencyBoundsMs, ms)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumMicros.Add(uint64(d.Microseconds()))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// MeanMs returns the mean observed latency in milliseconds.
func (h *Histogram) MeanMs() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sumMicros.Load()) / 1000 / float64(n)
}

// Quantile estimates the q-quantile (0 < q ≤ 1) in milliseconds by
// linear interpolation inside the covering bucket. Overflow
// observations report the last bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	lower := 0.0
	for i := range h.buckets {
		b := float64(h.buckets[i].Load())
		if i == len(latencyBoundsMs) {
			return latencyBoundsMs[len(latencyBoundsMs)-1]
		}
		upper := latencyBoundsMs[i]
		if b > 0 && cum+b >= rank {
			return lower + (rank-cum)/b*(upper-lower)
		}
		cum += b
		lower = upper
	}
	return latencyBoundsMs[len(latencyBoundsMs)-1]
}

// EndpointMetrics aggregates one endpoint's counters and latency
// histogram.
type EndpointMetrics struct {
	count     atomic.Uint64
	status4xx atomic.Uint64
	status5xx atomic.Uint64
	hist      *Histogram
}

// Observe records one finished request with its HTTP status.
func (e *EndpointMetrics) Observe(status int, d time.Duration) {
	e.count.Add(1)
	switch {
	case status >= 500:
		e.status5xx.Add(1)
	case status >= 400:
		e.status4xx.Add(1)
	}
	e.hist.Observe(d)
}

// Metrics is the server-wide instrument panel: per-endpoint counters and
// latency histograms, load-shedding and panic counts, an in-flight
// gauge, and cumulative TA search work. Everything is atomic — recording
// on the hot path never takes a lock.
type Metrics struct {
	start     time.Time
	order     []string
	endpoints map[string]*EndpointMetrics

	shed     atomic.Uint64
	panics   atomic.Uint64
	inflight atomic.Int64

	taQueries    atomic.Uint64
	taSorted     atomic.Uint64
	taRandom     atomic.Uint64
	taCandidates atomic.Uint64
}

// NewMetrics creates a Metrics with one EndpointMetrics per name. The
// endpoint set is fixed at creation so lookups are lock-free.
func NewMetrics(endpointNames ...string) *Metrics {
	m := &Metrics{
		start:     time.Now(),
		order:     append([]string(nil), endpointNames...),
		endpoints: make(map[string]*EndpointMetrics, len(endpointNames)),
	}
	for _, name := range endpointNames {
		m.endpoints[name] = &EndpointMetrics{hist: newHistogram()}
	}
	return m
}

// Endpoint returns the metrics bucket for name (nil when unknown).
func (m *Metrics) Endpoint(name string) *EndpointMetrics { return m.endpoints[name] }

// RecordShed counts one load-shed (503) response.
func (m *Metrics) RecordShed() { m.shed.Add(1) }

// RecordPanic counts one recovered handler panic.
func (m *Metrics) RecordPanic() { m.panics.Add(1) }

// RecordTA folds one TA query's work counters into the running totals.
func (m *Metrics) RecordTA(s ebsn.SearchStats) {
	m.taQueries.Add(1)
	m.taSorted.Add(uint64(s.SortedAccesses))
	m.taRandom.Add(uint64(s.RandomAccesses))
	m.taCandidates.Add(uint64(s.Candidates))
}

// AddInFlight moves the in-flight request gauge by delta.
func (m *Metrics) AddInFlight(delta int64) { m.inflight.Add(delta) }

// EndpointSnapshot is the rendered view of one endpoint.
type EndpointSnapshot struct {
	Count     uint64  `json:"count"`
	Status4xx uint64  `json:"status_4xx"`
	Status5xx uint64  `json:"status_5xx"`
	QPS       float64 `json:"qps"`
	MeanMs    float64 `json:"mean_ms"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// TASnapshot is the cumulative TA search work across joint queries.
type TASnapshot struct {
	Queries        uint64  `json:"queries"`
	SortedAccesses uint64  `json:"sorted_accesses"`
	RandomAccesses uint64  `json:"random_accesses"`
	Candidates     uint64  `json:"candidates"`
	AccessFraction float64 `json:"access_fraction"`
}

// MetricsSnapshot is the /metrics JSON payload's instrument section.
type MetricsSnapshot struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	InFlight      int64                       `json:"in_flight"`
	Shed          uint64                      `json:"shed"`
	Panics        uint64                      `json:"panics"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
	TA            TASnapshot                  `json:"ta"`
}

// Snapshot renders the current counters. Values are read without
// stopping writers, so a snapshot taken under load is approximate.
func (m *Metrics) Snapshot() MetricsSnapshot {
	uptime := time.Since(m.start).Seconds()
	snap := MetricsSnapshot{
		UptimeSeconds: uptime,
		InFlight:      m.inflight.Load(),
		Shed:          m.shed.Load(),
		Panics:        m.panics.Load(),
		Endpoints:     make(map[string]EndpointSnapshot, len(m.order)),
	}
	for _, name := range m.order {
		e := m.endpoints[name]
		es := EndpointSnapshot{
			Count:     e.count.Load(),
			Status4xx: e.status4xx.Load(),
			Status5xx: e.status5xx.Load(),
			MeanMs:    e.hist.MeanMs(),
			P50Ms:     e.hist.Quantile(0.50),
			P95Ms:     e.hist.Quantile(0.95),
			P99Ms:     e.hist.Quantile(0.99),
		}
		if uptime > 0 {
			es.QPS = float64(es.Count) / uptime
		}
		snap.Endpoints[name] = es
	}
	snap.TA = TASnapshot{
		Queries:        m.taQueries.Load(),
		SortedAccesses: m.taSorted.Load(),
		RandomAccesses: m.taRandom.Load(),
		Candidates:     m.taCandidates.Load(),
	}
	if snap.TA.Candidates > 0 {
		snap.TA.AccessFraction = float64(snap.TA.RandomAccesses) / float64(snap.TA.Candidates)
	}
	return snap
}
