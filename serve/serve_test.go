package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ebsn"
)

// One trained pipeline is shared by every test in the package; servers
// are cheap, training is not. Tests that ingest events make assertions
// relative to the current live-event count, never absolute.
var (
	recOnce sync.Once
	recVal  *ebsn.Recommender
	recErr  error
)

func testRecommender(t *testing.T) *ebsn.Recommender {
	t.Helper()
	recOnce.Do(func() {
		recVal, recErr = ebsn.New(ebsn.Config{City: ebsn.CityTiny, Seed: 7, Threads: 4, TrainSteps: testTrainSteps})
	})
	if recErr != nil {
		t.Fatal(recErr)
	}
	return recVal
}

func warmServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(testRecommender(t), cfg)
	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}
	return s
}

func getJSON(t *testing.T, srv *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp
}

func TestHealthAndReadiness(t *testing.T) {
	s := New(testRecommender(t), Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	if resp := getJSON(t, srv, "/healthz", nil); resp.StatusCode != 200 {
		t.Fatalf("/healthz = %d before warm", resp.StatusCode)
	}
	if resp := getJSON(t, srv, "/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d before warm, want 503", resp.StatusCode)
	}
	if resp := getJSON(t, srv, "/v1/events?user=3&n=5", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/v1/events = %d before warm, want 503", resp.StatusCode)
	}
	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}
	if err := s.Warm(); err != nil { // idempotent
		t.Fatal(err)
	}
	if resp := getJSON(t, srv, "/readyz", nil); resp.StatusCode != 200 {
		t.Fatalf("/readyz = %d after warm", resp.StatusCode)
	}
	if resp := getJSON(t, srv, "/v1/events?user=3&n=5", nil); resp.StatusCode != 200 {
		t.Fatalf("/v1/events = %d after warm", resp.StatusCode)
	}
}

func TestQueryEndpoints(t *testing.T) {
	s := warmServer(t, Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()
	rec := testRecommender(t)

	var events RankingResponse
	if resp := getJSON(t, srv, "/v1/events?user=3&n=5", &events); resp.StatusCode != 200 {
		t.Fatalf("/v1/events = %d", resp.StatusCode)
	}
	if events.User != 3 || events.N != 5 || len(events.Events) == 0 || len(events.Events) > 5 {
		t.Fatalf("events payload = %+v", events)
	}
	want, err := rec.TopEvents(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if events.Events[i].Event != want[i].Event {
			t.Fatalf("rank %d: served %d, library %d", i, events.Events[i].Event, want[i].Event)
		}
		if events.Events[i].Start == "" {
			t.Fatalf("rank %d: missing start time", i)
		}
	}

	var pairs RankingResponse
	if resp := getJSON(t, srv, "/v1/partners?user=3&n=5", &pairs); resp.StatusCode != 200 {
		t.Fatalf("/v1/partners = %d", resp.StatusCode)
	}
	if len(pairs.Pairs) == 0 || len(pairs.Pairs) > 5 {
		t.Fatalf("pairs payload = %+v", pairs)
	}
	for _, p := range pairs.Pairs {
		if p.Partner == 3 {
			t.Fatal("user recommended as own partner")
		}
	}

	var live RankingResponse
	if resp := getJSON(t, srv, "/v1/partners/live?user=3&n=5", &live); resp.StatusCode != 200 {
		t.Fatalf("/v1/partners/live = %d", resp.StatusCode)
	}

	var ex ExplainResponse
	if resp := getJSON(t, srv, "/v1/explain?user=1&partner=2&event=3", &ex); resp.StatusCode != 200 {
		t.Fatalf("/v1/explain = %d", resp.StatusCode)
	}
	sum := ex.UserEvent + ex.PartnerEvent + ex.Social
	if diff := ex.Total - sum; diff > 1e-4 || diff < -1e-4 {
		t.Fatalf("explain terms %v do not sum to total %v", sum, ex.Total)
	}

	// Default n applies when the parameter is absent.
	var defN RankingResponse
	getJSON(t, srv, "/v1/events?user=0", &defN)
	if defN.N != 10 {
		t.Fatalf("default n = %d, want 10", defN.N)
	}
}

func TestBadRequests(t *testing.T) {
	s := warmServer(t, Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	for _, path := range []string{
		"/v1/events",              // missing user
		"/v1/events?user=-1",      // negative user
		"/v1/events?user=999999",  // out of range
		"/v1/events?user=3&n=0",   // bad n
		"/v1/events?user=3&n=101", // n over MaxN
		"/v1/events?user=abc",     // non-numeric
		"/v1/partners?user=",      // empty user
		"/v1/explain?user=1",      // missing partner/event
		"/v1/explain?user=1&partner=2&event=999999",
	} {
		resp := getJSON(t, srv, path, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", path, resp.StatusCode)
		}
	}

	// Wrong method: the go 1.22 mux rejects POST to a GET-only route
	// (/v1/events and /v1/partners accept POST now — batched queries).
	resp, err := http.Post(srv.URL+"/v1/explain?user=1&partner=2&event=3", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/explain = %d, want 405", resp.StatusCode)
	}
}

func TestCacheHitMissAndInvalidationOnIngest(t *testing.T) {
	s := warmServer(t, Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	h0, m0 := s.Cache().Stats()
	getJSON(t, srv, "/v1/partners?user=5&n=4", nil)
	h1, m1 := s.Cache().Stats()
	if h1 != h0 || m1 != m0+1 {
		t.Fatalf("first query: hits %d→%d misses %d→%d, want one miss", h0, h1, m0, m1)
	}
	getJSON(t, srv, "/v1/partners?user=5&n=4", nil)
	h2, m2 := s.Cache().Stats()
	if h2 != h1+1 || m2 != m1 {
		t.Fatalf("second query: hits %d→%d misses %d→%d, want one hit", h1, h2, m1, m2)
	}

	// Ingest bumps the generation; the same query must miss again.
	gen0 := s.Generation()
	ingestTemplateEvent(t, srv)
	if s.Generation() != gen0+1 {
		t.Fatalf("generation %d → %d, want +1", gen0, s.Generation())
	}
	getJSON(t, srv, "/v1/partners?user=5&n=4", nil)
	h3, m3 := s.Cache().Stats()
	if h3 != h2 || m3 != m2+1 {
		t.Fatalf("post-ingest query: hits %d→%d misses %d→%d, want one miss", h2, h3, m2, m3)
	}

	// Compaction bumps the generation too once the background fold
	// lands; ?wait=1 restores synchronous semantics for the assertion.
	genBefore := s.Generation()
	resp, err := http.Post(srv.URL+"/v1/compact?wait=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var comp CompactResponse
	if err := json.NewDecoder(resp.Body).Decode(&comp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if comp.Generation != genBefore+1 {
		t.Fatalf("compact generation = %d, want %d", comp.Generation, genBefore+1)
	}
	if comp.PendingEvents != 0 {
		t.Fatalf("pending events after awaited compact = %d, want 0", comp.PendingEvents)
	}
}

// ingestTemplateEvent POSTs a clone of an existing test event and
// returns the assigned live ID.
func ingestTemplateEvent(t *testing.T, srv *httptest.Server) int32 {
	t.Helper()
	rec := testRecommender(t)
	d := rec.Dataset()
	template := rec.Split().TestEvents[0]
	body, _ := json.Marshal(IngestRequest{
		Words: d.Events[template].Words,
		Venue: d.Events[template].Venue,
		Start: time.Date(2013, 2, 1, 19, 0, 0, 0, time.UTC),
	})
	resp, err := http.Post(srv.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/ingest = %d", resp.StatusCode)
	}
	if out.ID >= 0 {
		t.Fatalf("live event ID = %d, want negative", out.ID)
	}
	return out.ID
}

func TestIngestLifecycleOverHTTP(t *testing.T) {
	s := warmServer(t, Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()
	rec := testRecommender(t)

	liveBefore := rec.LiveEventCount()
	id := ingestTemplateEvent(t, srv)

	if got := rec.LiveEventCount(); got != liveBefore+1 {
		t.Fatalf("LiveEventCount = %d, want %d", got, liveBefore+1)
	}
	// The ingested clone of a popular event should surface for some user
	// in the live path, flagged Live with its negative ID.
	d := rec.Dataset()
	found := false
	for u := 0; u < d.NumUsers && !found; u += 3 {
		var out RankingResponse
		getJSON(t, srv, fmt.Sprintf("/v1/partners/live?user=%d&n=10", u), &out)
		for _, p := range out.Pairs {
			if p.Event == id {
				if !p.Live {
					t.Fatal("negative-ID event not flagged live")
				}
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("ingested event never surfaced in live recommendations")
	}

	for _, path := range []string{"/v1/ingest", "/v1/compact"} {
		resp := getJSON(t, srv, path, nil)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s = %d, want 405", path, resp.StatusCode)
		}
	}

	// Malformed ingest bodies are rejected.
	for _, body := range []string{
		`{`, // truncated
		`{"words":[],"venue":0,"start":"2013-02-01T19:00:00Z"}`,     // no words
		`{"words":["a"],"venue":-1,"start":"2013-02-01T19:00:00Z"}`, // bad venue
		`{"words":["a"],"venue":99999,"start":"2013-02-01T19:00:00Z"}`,
		`{"words":["a"],"venue":0}`,              // missing start
		`{"words":["a"],"venue":0,"bogus":true}`, // unknown field
	} {
		resp, err := http.Post(srv.URL+"/v1/ingest", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("ingest body %q = %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := warmServer(t, Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	for i := 0; i < 5; i++ {
		getJSON(t, srv, fmt.Sprintf("/v1/events?user=%d&n=3", i), nil)
		getJSON(t, srv, fmt.Sprintf("/v1/partners?user=%d&n=3", i), nil)
	}
	getJSON(t, srv, "/v1/events?user=999999", nil) // one 400

	var m ServerMetrics
	if resp := getJSON(t, srv, "/metrics?format=json", &m); resp.StatusCode != 200 {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	ev := m.Endpoints["events"]
	if ev.Count != 6 || ev.Status4xx != 1 {
		t.Fatalf("events endpoint = %+v", ev)
	}
	if ev.P50Ms <= 0 || ev.P99Ms <= 0 {
		t.Fatalf("latency histogram empty after traffic: %+v", ev)
	}
	pa := m.Endpoints["partners"]
	if pa.Count != 5 || pa.P99Ms <= 0 {
		t.Fatalf("partners endpoint = %+v", pa)
	}
	if m.TA.Queries != 5 || m.TA.Candidates == 0 {
		t.Fatalf("TA stats = %+v", m.TA)
	}
	if m.TA.AccessFraction <= 0 || m.TA.AccessFraction > 1 {
		t.Fatalf("TA access fraction = %v", m.TA.AccessFraction)
	}
	if !m.Cache.Enabled || m.Cache.Misses == 0 {
		t.Fatalf("cache snapshot = %+v", m.Cache)
	}
	if m.UptimeSeconds <= 0 {
		t.Fatal("uptime not positive")
	}
}

func TestCacheDisabled(t *testing.T) {
	s := warmServer(t, Config{CacheCapacity: -1})
	if s.Cache() != nil {
		t.Fatal("cache built despite CacheCapacity < 0")
	}
	srv := httptest.NewServer(s)
	defer srv.Close()
	for i := 0; i < 2; i++ {
		if resp := getJSON(t, srv, "/v1/events?user=1&n=3", nil); resp.StatusCode != 200 {
			t.Fatalf("uncached query = %d", resp.StatusCode)
		}
	}
	var m ServerMetrics
	getJSON(t, srv, "/metrics?format=json", &m)
	if m.Cache.Enabled {
		t.Fatal("metrics report cache enabled")
	}
}

func TestConcurrentTrafficWithIngest(t *testing.T) {
	// Races between queries (RLock) and ingest/compaction (Lock) are the
	// point of this test; run it under -race to make it bite.
	s := warmServer(t, Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				switch (w + i) % 4 {
				case 0:
					getJSON(t, srv, fmt.Sprintf("/v1/events?user=%d&n=5", i%8), nil)
				case 1:
					getJSON(t, srv, fmt.Sprintf("/v1/partners?user=%d&n=5", i%8), nil)
				case 2:
					getJSON(t, srv, fmt.Sprintf("/v1/partners/live?user=%d&n=5", i%8), nil)
				case 3:
					getJSON(t, srv, "/metrics?format=json", nil)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			ingestTemplateEvent(t, srv)
			// wait=1 keeps the fold from outliving the test: the shared
			// recommender must not be compacted under a later test's server.
			resp, err := http.Post(srv.URL+"/v1/compact?wait=1", "application/json", nil)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}
	}()
	wg.Wait()
}

// saveTestSnapshot writes the shared recommender's model to a temp file
// and returns the path.
func saveTestSnapshot(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := testRecommender(t).SaveModel(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReloadSwapsModelUnderConcurrentLoad(t *testing.T) {
	snapPath := saveTestSnapshot(t)
	s := warmServer(t, Config{SnapshotPath: snapPath})
	srv := httptest.NewServer(s)
	defer srv.Close()

	// Queries hammer the server while the model is swapped several
	// times; every single response must be a 200.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				path := fmt.Sprintf("/v1/events?user=%d&n=5", (w+i)%8)
				if i%2 == 1 {
					path = fmt.Sprintf("/v1/partners?user=%d&n=5", (w+i)%8)
				}
				if resp := getJSON(t, srv, path, nil); resp.StatusCode != 200 {
					t.Errorf("%s = %d during reload", path, resp.StatusCode)
					return
				}
			}
		}(w)
	}

	genBefore := s.Generation()
	for i := 0; i < 3; i++ {
		resp, err := http.Post(srv.URL+"/v1/reload", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		var out ReloadResponse
		if decErr := json.NewDecoder(resp.Body).Decode(&out); decErr != nil {
			t.Fatal(decErr)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("reload %d = %d", i, resp.StatusCode)
		}
		if out.Reload.Count != uint64(i+1) || out.Reload.Failures != 0 {
			t.Fatalf("reload %d counters = %+v", i, out.Reload)
		}
		if out.ModelSteps <= 0 {
			t.Fatalf("reload %d reports model steps %d", i, out.ModelSteps)
		}
	}
	close(stop)
	wg.Wait()

	if got := s.Generation(); got != genBefore+3 {
		t.Fatalf("generation %d → %d, want +3 (cache must be invalidated per reload)", genBefore, got)
	}

	var m ServerMetrics
	getJSON(t, srv, "/metrics?format=json", &m)
	if m.Reload.Count != 3 || m.Reload.Failures != 0 {
		t.Fatalf("metrics reload section = %+v", m.Reload)
	}
	if m.Reload.LastSuccess == "" {
		t.Fatal("metrics missing last reload timestamp")
	}
	if m.Reload.LastError != "" {
		t.Fatalf("metrics report reload error %q after clean reloads", m.Reload.LastError)
	}
	if m.ModelSteps <= 0 {
		t.Fatalf("metrics model_steps = %d", m.ModelSteps)
	}
}

func TestReloadFailureKeepsServingOldModel(t *testing.T) {
	dir := t.TempDir()
	corrupt := filepath.Join(dir, "corrupt.gob")
	if err := os.WriteFile(corrupt, []byte("EBSNSNAPgarbage-that-is-not-a-snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := warmServer(t, Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/reload", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// No SnapshotPath configured and no path in the body.
	if resp := post(""); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("pathless reload = %d, want 500", resp.StatusCode)
	}
	// Missing file.
	if resp := post(`{"path":"` + filepath.Join(dir, "absent.gob") + `"}`); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("missing-file reload = %d, want 500", resp.StatusCode)
	}
	// Corrupt file.
	if resp := post(`{"path":"` + corrupt + `"}`); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("corrupt-file reload = %d, want 500", resp.StatusCode)
	}
	// Malformed body.
	if resp := post(`{"bogus":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed reload body = %d, want 400", resp.StatusCode)
	}

	// The old model keeps serving and the failures are on the panel.
	if resp := getJSON(t, srv, "/v1/events?user=3&n=5", nil); resp.StatusCode != 200 {
		t.Fatalf("query after failed reloads = %d", resp.StatusCode)
	}
	var m ServerMetrics
	getJSON(t, srv, "/metrics?format=json", &m)
	if m.Reload.Count != 0 || m.Reload.Failures != 3 {
		t.Fatalf("reload section = %+v, want 3 failures", m.Reload)
	}
	if m.Reload.LastError == "" || m.Reload.LastErrorAt == "" {
		t.Fatalf("last reload error not surfaced: %+v", m.Reload)
	}
}

func TestReloadReplaysLiveEventsAndKeepsConsistency(t *testing.T) {
	snapPath := saveTestSnapshot(t)
	s := warmServer(t, Config{SnapshotPath: snapPath})
	srv := httptest.NewServer(s)
	defer srv.Close()

	ingestTemplateEvent(t, srv)
	resp, err := http.Post(srv.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var out ReloadResponse
	if decErr := json.NewDecoder(resp.Body).Decode(&out); decErr != nil {
		t.Fatal(decErr)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("reload = %d", resp.StatusCode)
	}
	// The journaled live event was replayed onto the fresh model instead
	// of being dropped.
	if out.Replayed != 1 {
		t.Fatalf("reload replayed %d live events, want 1", out.Replayed)
	}
	var m ServerMetrics
	getJSON(t, srv, "/metrics?format=json", &m)
	if m.LiveEvents != 1 {
		t.Fatalf("live events after reload = %d, want 1 (journal replay)", m.LiveEvents)
	}
	// Live path still answers against the fresh index plus replayed delta.
	if resp := getJSON(t, srv, "/v1/partners/live?user=2&n=5", nil); resp.StatusCode != 200 {
		t.Fatalf("/v1/partners/live after reload = %d", resp.StatusCode)
	}
}

func TestGracefulShutdown(t *testing.T) {
	s := warmServer(t, Config{DrainTimeout: 2 * time.Second})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, l) }()

	url := "http://" + l.Addr().String()
	resp, err := http.Get(url + "/v1/events?user=3&n=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pre-shutdown query = %d", resp.StatusCode)
	}

	cancel() // the SIGTERM path: context cancellation drains and exits
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down within 5s")
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}
