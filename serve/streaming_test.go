package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// postIngest marshals req, POSTs it, and decodes the response.
func postIngest(t *testing.T, srv *httptest.Server, req IngestRequest) (*http.Response, IngestResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out IngestResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

// templateBatch builds count ingestable events cloned (with varied
// start dates) from the shared fixture's test events, so every word is
// in-vocabulary and every venue exists.
func templateBatch(t *testing.T, count int) []IngestEvent {
	t.Helper()
	rec := testRecommender(t)
	d := rec.Dataset()
	tev := rec.Split().TestEvents
	out := make([]IngestEvent, count)
	for i := range out {
		template := tev[i%len(tev)]
		out[i] = IngestEvent{
			Words: d.Events[template].Words,
			Venue: d.Events[template].Venue,
			Start: time.Date(2013, 3, 1+i%27, 19, 0, 0, 0, time.UTC),
		}
	}
	return out
}

func TestBatchIngestSchemaOrgFieldsAndSourceAttribution(t *testing.T) {
	s := warmServer(t, Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()
	rec := testRecommender(t)
	d := rec.Dataset()
	template := rec.Split().TestEvents[0]
	words := d.Events[template].Words
	venue := d.Events[template].Venue
	liveBefore := rec.LiveEventCount()

	// One pre-tokenized event plus one Schema.org-flavored event whose
	// name/description/keywords tokenize back to in-vocabulary words.
	mid := len(words)/2 + 1
	req := IngestRequest{
		Source: "meetup",
		Events: []IngestEvent{
			{Words: words, Venue: venue, Start: time.Date(2013, 3, 2, 19, 0, 0, 0, time.UTC)},
			{
				Name:        strings.Join(words[:mid], " "),
				Description: strings.Join(words[mid:], ", "),
				Keywords:    []string{words[0]},
				Venue:       venue,
				StartDate:   time.Date(2013, 3, 3, 19, 0, 0, 0, time.UTC),
			},
		},
	}
	resp, out := postIngest(t, srv, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch ingest = %d", resp.StatusCode)
	}
	if out.Ingested != 2 || len(out.IDs) != 2 {
		t.Fatalf("batch response = %+v, want 2 ingested", out)
	}
	for _, id := range out.IDs {
		if id >= 0 {
			t.Fatalf("live event ID %d not negative", id)
		}
	}
	if out.ID != out.IDs[0] {
		t.Fatalf("legacy ID field %d != first batch ID %d", out.ID, out.IDs[0])
	}
	if out.Source != "meetup" || out.SourceTotal != 2 {
		t.Fatalf("source attribution = %q/%d, want meetup/2", out.Source, out.SourceTotal)
	}
	if got := rec.LiveEventCount(); got != liveBefore+2 {
		t.Fatalf("LiveEventCount = %d, want %d", got, liveBefore+2)
	}

	// A second single-event ingest defaults its source.
	if _, out2 := postIngest(t, srv, IngestRequest{Words: words, Venue: venue,
		Start: time.Date(2013, 3, 4, 19, 0, 0, 0, time.UTC)}); out2.Source != "default" {
		t.Fatalf("single-event source = %q, want default", out2.Source)
	}

	// The per-source counters reach the JSON metrics panel.
	var m ServerMetrics
	getJSON(t, srv, "/metrics?format=json", &m)
	if m.IngestSources["meetup"] != 2 || m.IngestSources["default"] != 1 {
		t.Fatalf("ingest_sources = %v", m.IngestSources)
	}
	if m.PendingEvents < 3 {
		t.Fatalf("pending events = %d, want >= 3", m.PendingEvents)
	}

	// And the Prometheus exposition carries the labeled series.
	resp2, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp2.Body); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if !strings.Contains(buf.String(), `ebsn_serve_ingest_events_total{source="meetup"} 2`) {
		t.Fatal("exposition missing per-source ingest counter")
	}

	// Batches are atomic: one invalid event rejects the lot.
	liveBefore = rec.LiveEventCount()
	badReq := IngestRequest{Source: "meetup", Events: []IngestEvent{
		{Words: words, Venue: venue, Start: time.Date(2013, 3, 5, 19, 0, 0, 0, time.UTC)},
		{Venue: venue, Start: time.Date(2013, 3, 5, 20, 0, 0, 0, time.UTC)}, // no words, no name
	}}
	if resp, _ := postIngest(t, srv, badReq); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("batch with empty event = %d, want 400", resp.StatusCode)
	}
	badVenue := IngestRequest{Events: []IngestEvent{
		{Words: words, Venue: venue, Start: time.Date(2013, 3, 5, 19, 0, 0, 0, time.UTC)},
		{Words: words, Venue: 99999, Start: time.Date(2013, 3, 5, 20, 0, 0, 0, time.UTC)},
	}}
	if resp, _ := postIngest(t, srv, badVenue); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("batch with bad venue = %d, want 400", resp.StatusCode)
	}
	mixed := IngestRequest{Words: words, Start: time.Date(2013, 3, 5, 19, 0, 0, 0, time.UTC),
		Events: []IngestEvent{{Words: words, Venue: venue, Start: time.Date(2013, 3, 5, 19, 0, 0, 0, time.UTC)}}}
	if resp, _ := postIngest(t, srv, mixed); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed single/batch shapes = %d, want 400", resp.StatusCode)
	}
	if got := rec.LiveEventCount(); got != liveBefore {
		t.Fatalf("rejected batches changed LiveEventCount %d -> %d", liveBefore, got)
	}

	// Drain the delta so no pending state leaks into later tests.
	resp3, err := http.Post(srv.URL+"/v1/compact?wait=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
}

// TestCompactNonBlockingUnderLoad is the tentpole acceptance test:
// ingest a >=1k-event delta in one batch, kick /v1/compact without
// wait (it must return immediately with the fold still running in the
// background), and require every query issued until the fold lands to
// answer 200. Joining via ?wait=1 must leave zero pending events and a
// bumped generation.
func TestCompactNonBlockingUnderLoad(t *testing.T) {
	s := warmServer(t, Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	const batch = 1200
	resp, out := postIngest(t, srv, IngestRequest{Source: "feed", Events: templateBatch(t, batch)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk ingest = %d", resp.StatusCode)
	}
	if out.Ingested != batch || out.PendingEvents < batch {
		t.Fatalf("bulk ingest response = ingested %d pending %d, want %d", out.Ingested, out.PendingEvents, batch)
	}
	genBefore := s.Generation()

	// Queries hammer the live path until the fold completes.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				path := fmt.Sprintf("/v1/partners/live?user=%d&n=5", (w+i)%8)
				if i%3 == 0 {
					path = fmt.Sprintf("/v1/partners?user=%d&n=5", (w+i)%8)
				}
				if resp := getJSON(t, srv, path, nil); resp.StatusCode != 200 {
					t.Errorf("%s = %d during background compaction", path, resp.StatusCode)
					return
				}
			}
		}(w)
	}

	// Fire-and-forget: the handler must come back without the fold.
	cresp, err := http.Post(srv.URL+"/v1/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var comp CompactResponse
	if err := json.NewDecoder(cresp.Body).Decode(&comp); err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if !comp.Started {
		t.Fatalf("compact with %d pending events reported started=false: %+v", batch, comp)
	}

	// Join the in-flight run.
	wresp, err := http.Post(srv.URL+"/v1/compact?wait=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var joined CompactResponse
	if err := json.NewDecoder(wresp.Body).Decode(&joined); err != nil {
		t.Fatal(err)
	}
	wresp.Body.Close()
	close(stop)
	wg.Wait()

	if joined.PendingEvents != 0 {
		t.Fatalf("pending events after awaited compact = %d, want 0", joined.PendingEvents)
	}
	if joined.Compaction.Count == 0 || joined.Compaction.EventsFolded < batch {
		t.Fatalf("compaction snapshot = %+v, want >= %d events folded", joined.Compaction, batch)
	}
	if joined.Compaction.Failures != 0 {
		t.Fatalf("compaction failures = %d: %s", joined.Compaction.Failures, joined.Compaction.LastError)
	}
	if got := s.Generation(); got <= genBefore {
		t.Fatalf("generation %d -> %d, want a bump from the fold landing", genBefore, got)
	}

	// The folded events still answer on the live path.
	if resp := getJSON(t, srv, "/v1/partners/live?user=2&n=5", nil); resp.StatusCode != 200 {
		t.Fatalf("/v1/partners/live after compaction = %d", resp.StatusCode)
	}
}

func TestAutoCompactKicksInAtThreshold(t *testing.T) {
	s := warmServer(t, Config{AutoCompactEvents: 4})
	srv := httptest.NewServer(s)
	defer srv.Close()

	if resp, _ := postIngest(t, srv, IngestRequest{Source: "auto", Events: templateBatch(t, 5)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d", resp.StatusCode)
	}
	// The threshold crossing kicks a background fold; poll until it
	// drains (bounded — compacting 5 events is quick).
	deadline := time.Now().Add(10 * time.Second)
	for {
		var m ServerMetrics
		getJSON(t, srv, "/metrics?format=json", &m)
		if m.PendingEvents == 0 && !m.Compaction.Running {
			if m.Compaction.Count == 0 {
				t.Fatalf("delta drained without a recorded compaction: %+v", m.Compaction)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-compaction never drained the delta: %+v", m.Compaction)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
