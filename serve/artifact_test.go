package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// getBody fetches a path and returns the raw response body, failing the
// test on any non-200 status.
func getBody(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("%s = %d: %s", path, resp.StatusCode, b)
	}
	return string(b)
}

// corruptInPlace replaces the artifact with garbage via the same
// write-then-rename dance WriteArtifact uses, so an engine still mapping
// the old inode is untouched — only the *next* open sees the bad file.
func corruptInPlace(t *testing.T, path string) {
	t.Helper()
	tmp := path + ".garbage"
	if err := os.WriteFile(tmp, []byte("EBSNIDX1 but not really; decidedly not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
}

// TestWarmArtifactFallbackThenMap covers the artifact lifecycle across
// two cold starts sharing one path: the first Warm finds no artifact,
// falls back to a full rebuild, and writes the file; the second maps it
// and answers identically — and the /metrics exposition carries the
// mapped-bytes gauge and the Go runtime telemetry.
func TestWarmArtifactFallbackThenMap(t *testing.T) {
	artPath := filepath.Join(t.TempDir(), "index.art")
	cfg := Config{ArtifactPath: artPath, Quantized: true}

	s1 := warmServer(t, cfg)
	srv1 := httptest.NewServer(s1)
	if loads, fallbacks, saves := s1.metrics.ArtifactStats(); loads != 0 || fallbacks != 1 || saves != 1 {
		t.Fatalf("first warm artifact counters = (%d loads, %d fallbacks, %d saves), want (0, 1, 1)", loads, fallbacks, saves)
	}
	if _, err := os.Stat(artPath); err != nil {
		t.Fatalf("artifact not written after fallback rebuild: %v", err)
	}
	want := make([]string, 10)
	for u := range want {
		want[u] = getBody(t, srv1, fmt.Sprintf("/v1/partners?user=%d&n=8", u))
	}
	srv1.Close()

	s2 := warmServer(t, cfg)
	srv2 := httptest.NewServer(s2)
	defer srv2.Close()
	if loads, fallbacks, saves := s2.metrics.ArtifactStats(); loads != 1 || fallbacks != 0 || saves != 0 {
		t.Fatalf("second warm artifact counters = (%d loads, %d fallbacks, %d saves), want (1, 0, 0)", loads, fallbacks, saves)
	}
	for u := range want {
		if got := getBody(t, srv2, fmt.Sprintf("/v1/partners?user=%d&n=8", u)); got != want[u] {
			t.Fatalf("user %d: mapped engine served %s, rebuilt engine served %s", u, got, want[u])
		}
	}

	exposition := getBody(t, srv2, "/metrics")
	for _, metric := range []string{
		"ebsn_mapped_bytes",
		"go_memstats_heap_inuse_bytes",
		"go_gc_cycles_total",
		"ebsn_serve_artifact_loads_total 1",
	} {
		if !strings.Contains(exposition, metric) {
			t.Errorf("/metrics exposition is missing %q", metric)
		}
	}
}

// TestWarmCorruptArtifactFallsBack proves a damaged artifact can never
// keep the server down: Warm detects the corruption, rebuilds, and
// rewrites a sound artifact over it.
func TestWarmCorruptArtifactFallsBack(t *testing.T) {
	artPath := filepath.Join(t.TempDir(), "index.art")
	if err := os.WriteFile(artPath, []byte("truncated garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := Config{ArtifactPath: artPath}

	s := warmServer(t, cfg)
	httptest.NewServer(s).Close()
	if loads, fallbacks, saves := s.metrics.ArtifactStats(); loads != 0 || fallbacks != 1 || saves != 1 {
		t.Fatalf("corrupt-artifact warm counters = (%d loads, %d fallbacks, %d saves), want (0, 1, 1)", loads, fallbacks, saves)
	}

	// The rewrite healed the file: the next start maps it.
	s2 := warmServer(t, cfg)
	if loads, _, _ := s2.metrics.ArtifactStats(); loads != 1 {
		t.Fatalf("warm after heal: %d artifact loads, want 1", loads)
	}
}

// TestReloadWithArtifactUnderConcurrentQueries exercises the reload path
// end to end while queries hammer the server: reloads that map the
// artifact, a reload against a replaced (stale-after-retrain shaped)
// artifact that must fall back and rewrite it, and a final reload that
// maps the rewrite. Every query during every swap must succeed. Run
// under -race this doubles as the concurrent reload-vs-query artifact
// race test.
func TestReloadWithArtifactUnderConcurrentQueries(t *testing.T) {
	dir := t.TempDir()
	snapPath := saveTestSnapshot(t)
	artPath := filepath.Join(dir, "index.art")
	s := warmServer(t, Config{SnapshotPath: snapPath, ArtifactPath: artPath})
	srv := httptest.NewServer(s)
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				path := fmt.Sprintf("/v1/partners?user=%d&n=5", (w+i)%8)
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("%s = %d during artifact reload", path, resp.StatusCode)
					return
				}
			}
		}(w)
	}

	reload := func() {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/reload", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("reload = %d", resp.StatusCode)
		}
	}

	// Two reloads against the artifact the warm-up fallback wrote: both
	// map it (same model, same configuration → matching fingerprint).
	reload()
	reload()
	// A retrain replaces the artifact with one this model refuses; the
	// reload falls back to a rebuild and rewrites a matching artifact.
	corruptInPlace(t, artPath)
	reload()
	// The rewrite is mapped straight back.
	reload()

	close(stop)
	wg.Wait()

	loads, fallbacks, saves := s.metrics.ArtifactStats()
	if loads != 3 || fallbacks != 2 || saves != 2 {
		t.Fatalf("artifact counters after reload cycle = (%d loads, %d fallbacks, %d saves), want (3, 2, 2)", loads, fallbacks, saves)
	}
}
