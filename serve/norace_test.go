//go:build !race

package serve

// Full training budget for the shared test model; see race_test.go for
// why race builds use a shorter one.
const testTrainSteps = 400_000
