package serve

import (
	"bytes"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestConcurrencyLimitSheds(t *testing.T) {
	inside := make(chan struct{})
	release := make(chan struct{})
	shed := 0
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inside <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	}), WithConcurrencyLimit(1, func() { shed++ }))
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Error(err)
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("first request status = %d", resp.StatusCode)
		}
	}()
	<-inside // the single slot is now held

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if shed != 1 {
		t.Fatalf("shed count = %d, want 1", shed)
	}
	close(release)
	wg.Wait()
}

func TestConcurrencyLimitRecovers(t *testing.T) {
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), WithConcurrencyLimit(1, nil))
	srv := httptest.NewServer(h)
	defer srv.Close()
	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sequential request %d shed: %d", i, resp.StatusCode)
		}
	}
}

func TestRecoveryTurnsPanicInto500(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	panics := 0
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}), WithRecovery(logger, func() { panics++ }))
	srv := httptest.NewServer(h)
	defer srv.Close()

	for i := 0; i < 2; i++ { // the process must survive repeat panics
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panic status = %d, want 500", resp.StatusCode)
		}
		if !strings.Contains(string(body), "boom") {
			t.Fatalf("panic body = %q", body)
		}
	}
	if panics != 2 {
		t.Fatalf("panic counter = %d, want 2", panics)
	}
	if !strings.Contains(buf.String(), "boom") {
		t.Fatal("panic not logged")
	}
}

func TestTimeoutMiddleware(t *testing.T) {
	slow := make(chan struct{})
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-slow:
		case <-r.Context().Done():
		}
		w.WriteHeader(http.StatusOK)
	}), WithTimeout(30*time.Millisecond))
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	close(slow)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timeout status = %d, want 503", resp.StatusCode)
	}
	// Disabled timeout passes the handler through untouched.
	if WithTimeout(0)(http.NotFoundHandler()) == nil {
		t.Fatal("disabled timeout returned nil handler")
	}
}

func TestLoggingMiddleware(t *testing.T) {
	var buf bytes.Buffer
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}), WithLogging(log.New(&buf, "", 0)))
	req := httptest.NewRequest("GET", "/v1/events?user=1", nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	line := buf.String()
	if !strings.Contains(line, "GET /v1/events 418") {
		t.Fatalf("access log line = %q", line)
	}
}

func TestChainOrder(t *testing.T) {
	var order []string
	mw := func(name string) Middleware {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				order = append(order, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		order = append(order, "handler")
	}), mw("outer"), mw("inner"))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if strings.Join(order, ",") != "outer,inner,handler" {
		t.Fatalf("chain order = %v", order)
	}
}
