package serve

import (
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"time"
)

// Middleware wraps an http.Handler with a cross-cutting concern.
type Middleware func(http.Handler) http.Handler

// Chain applies middlewares so that the first listed is outermost:
// Chain(h, a, b) serves a(b(h)).
func Chain(h http.Handler, mws ...Middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// statusRecorder captures the status code written downstream so logging
// and metrics layers can report it.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.wrote {
		r.status = http.StatusOK
		r.wrote = true
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) statusOr200() int {
	if r.wrote {
		return r.status
	}
	return http.StatusOK
}

// WithLogging emits one access-log line per request: method, path,
// status, duration. A nil logger disables it.
func WithLogging(logger *log.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		if logger == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := &statusRecorder{ResponseWriter: w}
			t0 := time.Now()
			defer func() {
				logger.Printf("%s %s %d %.2fms", r.Method, r.URL.Path, rec.statusOr200(), float64(time.Since(t0).Microseconds())/1000)
			}()
			next.ServeHTTP(rec, r)
		})
	}
}

// WithRecovery converts handler panics into 500 responses instead of
// torn connections, logs the stack, and counts the event — one bad
// request must not take down the daemon or go unnoticed.
func WithRecovery(logger *log.Logger, onPanic func()) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := &statusRecorder{ResponseWriter: w}
			defer func() {
				if p := recover(); p != nil {
					if onPanic != nil {
						onPanic()
					}
					if logger != nil {
						logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
					}
					if !rec.wrote {
						http.Error(rec, fmt.Sprintf("internal error: %v", p), http.StatusInternalServerError)
					}
				}
			}()
			next.ServeHTTP(rec, r)
		})
	}
}

// WithConcurrencyLimit admits at most max requests at once via a
// semaphore; the rest are shed immediately with 503 + Retry-After
// rather than queued, so a saturated server fails fast and stays
// responsive instead of building an unbounded backlog.
func WithConcurrencyLimit(max int, onShed func()) Middleware {
	sem := make(chan struct{}, max)
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
				next.ServeHTTP(w, r)
			default:
				if onShed != nil {
					onShed()
				}
				w.Header().Set("Retry-After", "1")
				http.Error(w, "server overloaded, retry later", http.StatusServiceUnavailable)
			}
		})
	}
}

// WithTimeout bounds each request's handler time; requests that exceed
// it get 503 with a JSON error body (http.TimeoutHandler semantics: the
// handler keeps running but its response is discarded).
func WithTimeout(d time.Duration) Middleware {
	return func(next http.Handler) http.Handler {
		if d <= 0 {
			return next
		}
		return http.TimeoutHandler(next, d, `{"error":"request timed out"}`)
	}
}
