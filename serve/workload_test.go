package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"sync"
	"testing"
	"time"

	"ebsn"
)

// testWindows derives two disjoint, non-degenerate time windows from the
// shared model's test events: window a covers the earlier half of the
// start-time range, window b the later half.
func testWindows(t *testing.T, rec *ebsn.Recommender) (a, b ebsn.Constraint) {
	t.Helper()
	events := rec.Split().TestEvents
	starts := make([]time.Time, len(events))
	for i, x := range events {
		starts[i] = rec.Dataset().Events[x].Start
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i].Before(starts[j]) })
	mid := starts[len(starts)/2].Truncate(time.Second)
	// Round-trip through the wire form so the oracle constraints are
	// bit-identical to what the server parses from the query string.
	var err error
	a, err = ebsn.ParseConstraint(
		starts[0].Add(-time.Hour).UTC().Format(time.RFC3339), mid.UTC().Format(time.RFC3339), "")
	if err != nil {
		t.Fatal(err)
	}
	b, err = ebsn.ParseConstraint(
		mid.UTC().Format(time.RFC3339), starts[len(starts)-1].Add(time.Hour).UTC().Format(time.RFC3339), "")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []ebsn.Constraint{a, b} {
		if _, allowed := rec.CompileConstraint(c); allowed == 0 || allowed == len(events) {
			t.Fatalf("window %+v is degenerate: %d of %d allowed", c, allowed, len(events))
		}
	}
	return a, b
}

// constraintQuery renders c as the from/until/within query parameters.
func constraintQuery(c ebsn.Constraint, user int32, n int) string {
	q := url.Values{}
	q.Set("user", fmt.Sprint(user))
	q.Set("n", fmt.Sprint(n))
	if !c.From.IsZero() {
		q.Set("from", c.From.UTC().Format(time.RFC3339))
	}
	if !c.Until.IsZero() {
		q.Set("until", c.Until.UTC().Format(time.RFC3339))
	}
	if c.RadiusKm > 0 {
		q.Set("within", fmt.Sprintf("%v,%v,%v", c.Center.Lat, c.Center.Lng, c.RadiusKm))
	}
	return q.Encode()
}

// inWindow checks one RFC 3339 start stamp against a time-only window.
func inWindow(t *testing.T, stamp string, c ebsn.Constraint) bool {
	t.Helper()
	ts, err := time.Parse(time.RFC3339, stamp)
	if err != nil {
		t.Fatalf("bad start stamp %q: %v", stamp, err)
	}
	return !ts.Before(c.From) && ts.Before(c.Until)
}

func TestConstrainedEventsEndpoint(t *testing.T) {
	s := warmServer(t, Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()
	rec := testRecommender(t)
	a, b := testWindows(t, rec)

	var gotA RankingResponse
	if resp := getJSON(t, srv, "/v1/events?"+constraintQuery(a, 3, 5), &gotA); resp.StatusCode != http.StatusOK {
		t.Fatalf("constrained /v1/events = %d", resp.StatusCode)
	}
	want, err := rec.TopEventsConstrained(3, 5, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotA.Events) != len(want) {
		t.Fatalf("served %d events, library %d", len(gotA.Events), len(want))
	}
	for i := range want {
		if gotA.Events[i].Event != want[i].Event || gotA.Events[i].Score != want[i].Score {
			t.Fatalf("rank %d: served %+v, library %+v", i, gotA.Events[i], want[i])
		}
		if !inWindow(t, gotA.Events[i].Start, a) {
			t.Fatalf("rank %d: event %d outside window", i, gotA.Events[i].Event)
		}
	}

	// A different window must not be served from window a's cache entry.
	var gotB RankingResponse
	getJSON(t, srv, "/v1/events?"+constraintQuery(b, 3, 5), &gotB)
	for i := range gotB.Events {
		if !inWindow(t, gotB.Events[i].Start, b) {
			t.Fatalf("window b rank %d: event %d outside window (cross-constraint cache hit?)", i, gotB.Events[i].Event)
		}
	}

	// Repeat of window a is served (cached or not) with the same payload.
	var again RankingResponse
	getJSON(t, srv, "/v1/events?"+constraintQuery(a, 3, 5), &again)
	if len(again.Events) != len(gotA.Events) {
		t.Fatalf("repeat served %d events, first %d", len(again.Events), len(gotA.Events))
	}
	for i := range gotA.Events {
		if again.Events[i] != gotA.Events[i] {
			t.Fatalf("repeat diverged at rank %d", i)
		}
	}

	if resp := getJSON(t, srv, "/v1/events?user=3&n=5&within=1,2", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed within = %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, srv, "/v1/events?user=3&n=5&from=not-a-time", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed from = %d, want 400", resp.StatusCode)
	}

	var m ServerMetrics
	getJSON(t, srv, "/metrics?format=json", &m)
	if m.Workload["constrained"] < 3 {
		t.Fatalf("workload constrained count = %d, want ≥3", m.Workload["constrained"])
	}
}

func TestConstrainedPartnersEndpoint(t *testing.T) {
	s := warmServer(t, Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()
	rec := testRecommender(t)
	a, _ := testWindows(t, rec)

	var got RankingResponse
	if resp := getJSON(t, srv, "/v1/partners?"+constraintQuery(a, 2, 6), &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("constrained /v1/partners = %d", resp.StatusCode)
	}
	want, _, err := rec.TopEventPartnersConstrainedStats(2, 6, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Pairs) != len(want) {
		t.Fatalf("served %d pairs, library %d", len(got.Pairs), len(want))
	}
	for i := range want {
		p := got.Pairs[i]
		if p.Event != want[i].Event || p.Partner != want[i].Partner || p.Score != want[i].Score {
			t.Fatalf("rank %d: served %+v, library %+v", i, p, want[i])
		}
		if !inWindow(t, p.Start, a) {
			t.Fatalf("rank %d: event %d outside window", i, p.Event)
		}
	}
}

func postJSONBody(t *testing.T, srv *httptest.Server, path string, body any, out any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp
}

func TestGroupEventsEndpoint(t *testing.T) {
	s := warmServer(t, Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()
	rec := testRecommender(t)

	// Single-member mean group degenerates to the user's own ranking.
	var solo GroupEventsResponse
	if resp := postJSONBody(t, srv, "/v1/group/events",
		GroupEventsRequest{Members: []int32{3}, N: 5}, &solo); resp.StatusCode != http.StatusOK {
		t.Fatalf("group = %d", resp.StatusCode)
	}
	if solo.Strategy != "mean" || solo.N != 5 {
		t.Fatalf("group payload = %+v", solo)
	}
	own, err := rec.TopEvents(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range own {
		if solo.Events[i].Event != own[i].Event {
			t.Fatalf("rank %d: group %d, solo %d", i, solo.Events[i].Event, own[i].Event)
		}
	}

	// Multi-member least misery matches the library exactly.
	var lm GroupEventsResponse
	postJSONBody(t, srv, "/v1/group/events",
		GroupEventsRequest{Members: []int32{0, 1, 2}, N: 4, Strategy: "least-misery"}, &lm)
	want, err := rec.GroupTopEvents([]int32{0, 1, 2}, 4, ebsn.GroupLeastMisery)
	if err != nil {
		t.Fatal(err)
	}
	if lm.Strategy != "least-misery" || len(lm.Events) != len(want) {
		t.Fatalf("least-misery payload = %+v", lm)
	}
	for i := range want {
		if lm.Events[i].Event != want[i].Event || lm.Events[i].Score != want[i].Score {
			t.Fatalf("rank %d: served %+v, library %+v", i, lm.Events[i], want[i])
		}
	}

	for name, req := range map[string]GroupEventsRequest{
		"empty members":     {N: 5},
		"bad strategy":      {Members: []int32{1}, Strategy: "median"},
		"member range":      {Members: []int32{1, 1 << 20}},
		"bad constraint":    {Members: []int32{1}, Within: "1,2"},
		"inverted window":   {Members: []int32{1}, From: "2012-07-01T00:00:00Z", Until: "2012-06-01T00:00:00Z"},
		"n over cap":        {Members: []int32{1}, N: 10_000},
		"over member limit": {Members: make([]int32, 100)},
	} {
		if resp := postJSONBody(t, srv, "/v1/group/events", req, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s = %d, want 400", name, resp.StatusCode)
		}
	}

	var m ServerMetrics
	getJSON(t, srv, "/metrics?format=json", &m)
	if m.Workload["group"] < 2 {
		t.Fatalf("workload group count = %d, want ≥2", m.Workload["group"])
	}
	if m.Endpoints["group_events"].Count == 0 {
		t.Fatal("group_events endpoint not instrumented")
	}
}

func TestFeedEndpoint(t *testing.T) {
	s := warmServer(t, Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()
	rec := testRecommender(t)

	var feed FeedResponse
	if resp := getJSON(t, srv, "/v1/feed?user=2&n=4&m=3", &feed); resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/feed = %d", resp.StatusCode)
	}
	if feed.User != 2 || feed.N != 4 || feed.M != 3 || len(feed.Items) != 4 {
		t.Fatalf("feed payload = %+v", feed)
	}
	want, err := rec.Feed(2, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := rec.Dataset()
	for i, it := range feed.Items {
		if it.Event != want[i].Event || it.Score != want[i].Score {
			t.Fatalf("item %d: served (%d, %v), library (%d, %v)", i, it.Event, it.Score, want[i].Event, want[i].Score)
		}
		if it.Start == "" {
			t.Fatalf("item %d missing start", i)
		}
		if len(it.Partners) != len(want[i].Partners) {
			t.Fatalf("item %d: %d partners served, %d from library", i, len(it.Partners), len(want[i].Partners))
		}
		for j, p := range it.Partners {
			wp := want[i].Partners[j]
			if p.Partner != wp.Partner || p.Score != wp.Score {
				t.Fatalf("item %d partner %d: served %+v, library %+v", i, j, p, wp)
			}
			if p.Friend != d.AreFriends(2, p.Partner) {
				t.Fatalf("item %d partner %d: friend flag wrong", i, j)
			}
		}
	}

	// Cached repeat serves the identical payload.
	var again FeedResponse
	getJSON(t, srv, "/v1/feed?user=2&n=4&m=3", &again)
	if len(again.Items) != len(feed.Items) || again.Items[0].Event != feed.Items[0].Event {
		t.Fatalf("cached feed diverged: %+v vs %+v", again.Items[0], feed.Items[0])
	}

	// Default m applies when absent; bad m is rejected.
	var dflt FeedResponse
	getJSON(t, srv, "/v1/feed?user=2&n=2", &dflt)
	if dflt.M != defaultFeedPartners {
		t.Fatalf("default m = %d, want %d", dflt.M, defaultFeedPartners)
	}
	if resp := getJSON(t, srv, "/v1/feed?user=2&n=2&m=0", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("m=0 = %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, srv, "/v1/feed?user=2&n=2&m=100000", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("huge m = %d, want 400", resp.StatusCode)
	}

	var m ServerMetrics
	getJSON(t, srv, "/metrics?format=json", &m)
	if m.Workload["feed"] < 3 {
		t.Fatalf("workload feed count = %d, want ≥3", m.Workload["feed"])
	}
}

// TestConstrainedPartnersNeverCoalesce is the race-detector target for
// the coalescer bypass: constrained single-user GETs carry per-request
// predicates, so folding them into a shared dispatch would answer some
// against the wrong filter. With coalescing on and a mix of constrained
// (two different windows) and unconstrained traffic in flight, every
// constrained answer must match its own window's exact result, and the
// coalesced-request counter must account for the unconstrained requests
// only — proving no constrained request ever shared a dispatch.
func TestConstrainedPartnersNeverCoalesce(t *testing.T) {
	s := warmServer(t, Config{CoalesceWindow: 10 * time.Millisecond, CoalesceBatch: 16, CacheCapacity: -1})
	srv := httptest.NewServer(s)
	defer srv.Close()
	rec := testRecommender(t)
	a, b := testWindows(t, rec)

	const workers = 12
	var plainRequests uint64
	responses := make([]RankingResponse, workers)
	windows := make([]ebsn.Constraint, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user := int32(w % 6)
			switch w % 3 {
			case 0:
				// Unconstrained: rides the coalescer.
				if resp := getJSON(t, srv, fmt.Sprintf("/v1/partners?user=%d&n=5", user), &responses[w]); resp.StatusCode != http.StatusOK {
					t.Errorf("plain GET = %d", resp.StatusCode)
				}
			case 1:
				windows[w] = a
				if resp := getJSON(t, srv, "/v1/partners?"+constraintQuery(a, user, 5), &responses[w]); resp.StatusCode != http.StatusOK {
					t.Errorf("window-a GET = %d", resp.StatusCode)
				}
			case 2:
				windows[w] = b
				if resp := getJSON(t, srv, "/v1/partners?"+constraintQuery(b, user, 5), &responses[w]); resp.StatusCode != http.StatusOK {
					t.Errorf("window-b GET = %d", resp.StatusCode)
				}
			}
		}(w)
	}
	for w := 0; w < workers; w += 3 {
		plainRequests++
	}
	wg.Wait()

	for w := 0; w < workers; w++ {
		if w%3 == 0 {
			continue
		}
		c := windows[w]
		user := int32(w % 6)
		want, _, err := rec.TopEventPartnersConstrainedStats(user, 5, c)
		if err != nil {
			t.Fatal(err)
		}
		got := responses[w].Pairs
		if len(got) != len(want) {
			t.Fatalf("worker %d: %d pairs served, %d from library", w, len(got), len(want))
		}
		for i := range want {
			if got[i].Event != want[i].Event || got[i].Partner != want[i].Partner || got[i].Score != want[i].Score {
				t.Fatalf("worker %d rank %d: served %+v, want %+v — predicate leaked across a dispatch", w, i, got[i], want[i])
			}
			if !inWindow(t, got[i].Start, c) {
				t.Fatalf("worker %d rank %d: event outside its own window", w, i)
			}
		}
	}

	var m ServerMetrics
	getJSON(t, srv, "/metrics?format=json", &m)
	if m.Batch.CoalescedRequests != plainRequests {
		t.Fatalf("coalesced requests = %d, want exactly the %d unconstrained ones — a constrained request entered a dispatch",
			m.Batch.CoalescedRequests, plainRequests)
	}
	if m.Workload["constrained"] != uint64(workers-int(plainRequests)) {
		t.Fatalf("workload constrained = %d, want %d", m.Workload["constrained"], workers-int(plainRequests))
	}
}
