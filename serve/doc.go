// Package serve is the production HTTP layer over a trained
// ebsn.Recommender: a long-lived daemon exposing the paper's two online
// recommendation paths (cold-event ranking and TA-accelerated joint
// event-partner ranking) plus live cold-event ingestion, behind a
// middleware stack with request logging, panic recovery, per-request
// timeouts and semaphore-based load shedding. A sharded LRU cache with
// a generation counter fronts the query endpoints.
//
// # Observability
//
// The server is instrumented with ebsn/internal/obs. /metrics renders
// Prometheus text exposition by default (counter, gauge and histogram
// families with HELP/TYPE headers; ?format=json keeps the legacy JSON
// panel). Config.TraceEnabled turns on request-scoped spans over the
// query pipeline — cache lookup, TA search, response encode — with
// per-stage timings and TA work attrs (sorted/random accesses,
// candidates, pruning k); spans slower than Config.SlowQueryThreshold
// land in a fixed-capacity ring served at /v1/debug/slowlog. With
// tracing off, spans are nil pointers and cost zero allocations
// (BenchmarkSpanDisabled pins this). OPERATIONS.md documents every
// metric family and a slow-query diagnosis walkthrough.
//
// # Endpoints
//
//	GET  /v1/events?user=U&n=N        top-N cold events for user U
//	GET  /v1/partners?user=U&n=N      top-N event-partner pairs (static index)
//	GET  /v1/partners/live?user=U&n=N same, including live-ingested events
//	GET  /v1/explain?user=U&partner=P&event=E   score decomposition (Eqn. 8)
//	POST /v1/ingest                   fold a brand-new event into serving
//	POST /v1/compact                  fold the live delta into the main index
//	POST /v1/reload                   zero-downtime swap to a new model snapshot
//	GET  /healthz                     liveness (always 200)
//	GET  /readyz                      readiness (503 until Warm completes)
//	GET  /metrics                     Prometheus text (JSON with ?format=json)
//	GET  /v1/debug/slowlog            slow-query ring, newest first
package serve
