package serve

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"ebsn"
	"ebsn/internal/obs"
)

func TestMetricsSnapshot(t *testing.T) {
	m := NewMetrics("events", "partners")
	ep := m.Endpoint("events")
	if ep == nil {
		t.Fatal("Endpoint(events) = nil")
	}
	if m.Endpoint("nope") != nil {
		t.Fatal("unknown endpoint not nil")
	}
	ep.Observe(200, 2*time.Millisecond)
	ep.Observe(400, 1*time.Millisecond)
	ep.Observe(500, 1*time.Millisecond)
	m.RecordShed()
	m.RecordPanic()
	m.RecordTA(ebsn.SearchStats{SortedAccesses: 10, RandomAccesses: 20, Candidates: 100, Elapsed: 300 * time.Microsecond})
	m.RecordTA(ebsn.SearchStats{SortedAccesses: 5, RandomAccesses: 5, Candidates: 100, Elapsed: 200 * time.Microsecond})

	snap := m.Snapshot()
	es := snap.Endpoints["events"]
	if es.Count != 3 || es.Status4xx != 1 || es.Status5xx != 1 {
		t.Fatalf("events snapshot = %+v", es)
	}
	if es.P50Ms <= 0 {
		t.Fatal("p50 not positive after traffic")
	}
	if snap.Shed != 1 || snap.Panics != 1 {
		t.Fatalf("shed/panics = %d/%d", snap.Shed, snap.Panics)
	}
	if snap.TA.Queries != 2 || snap.TA.RandomAccesses != 25 || snap.TA.Candidates != 200 {
		t.Fatalf("TA snapshot = %+v", snap.TA)
	}
	if snap.TA.AccessFraction != 0.125 {
		t.Fatalf("access fraction = %v, want 0.125", snap.TA.AccessFraction)
	}
	if empty := snap.Endpoints["partners"]; empty.Count != 0 {
		t.Fatalf("partners should be untouched: %+v", empty)
	}
	if snap.Draining {
		t.Fatal("draining before SetDraining")
	}
	m.SetDraining()
	if !m.Snapshot().Draining {
		t.Fatal("SetDraining not reflected in snapshot")
	}
}

// TestMetricsExpositionIsValidPrometheus renders the serve panel after
// traffic and holds it to the exposition-format rules the obs linter
// enforces: HELP/TYPE before samples, no duplicate families or samples,
// cumulative histogram buckets ending at +Inf that agree with _count.
func TestMetricsExpositionIsValidPrometheus(t *testing.T) {
	m := NewMetrics("events", "partners")
	m.Endpoint("events").Observe(200, 3*time.Millisecond)
	m.Endpoint("partners").Observe(200, 150*time.Microsecond)
	m.RecordTA(ebsn.SearchStats{SortedAccesses: 4, RandomAccesses: 9, Candidates: 50, Elapsed: 120 * time.Microsecond})
	var b bytes.Buffer
	if err := m.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	if err := obs.Lint(bytes.NewReader(b.Bytes())); err != nil {
		t.Fatalf("serve exposition fails lint: %v\n%s", err, b.Bytes())
	}
	samples, err := obs.ParseText(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, s := range samples {
		got[s.Key()] = s.Value
	}
	for key, want := range map[string]float64{
		`ebsn_serve_requests_total{endpoint="events"}`:                 1,
		`ebsn_serve_requests_total{endpoint="partners"}`:               1,
		`ebsn_serve_ta_queries_total`:                                  1,
		`ebsn_serve_ta_random_accesses_total`:                          9,
		`ebsn_serve_ta_candidates_total`:                               50,
		`ebsn_serve_request_duration_seconds_count{endpoint="events"}`: 1,
	} {
		if got[key] != want {
			t.Errorf("%s = %v, want %v", key, got[key], want)
		}
	}
	// Error classes exist as explicit zero series from the first scrape.
	if v, ok := got[`ebsn_serve_request_errors_total{endpoint="events",class="5xx"}`]; !ok || v != 0 {
		t.Errorf("5xx zero series missing or nonzero: %v (present=%v)", v, ok)
	}
	if !strings.Contains(b.String(), "# TYPE ebsn_serve_request_duration_seconds histogram") {
		t.Error("request duration family not typed histogram")
	}
}

// TestMetricsConcurrentRecording hammers the panel from many goroutines
// while scrapes render — run under -race in CI. Totals are exact.
func TestMetricsConcurrentRecording(t *testing.T) {
	m := NewMetrics("events")
	ep := m.Endpoint("events")
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ep.Observe(200, 100*time.Microsecond)
				m.AddInFlight(1)
				m.RecordTA(ebsn.SearchStats{RandomAccesses: 2, Candidates: 10, Elapsed: 50 * time.Microsecond})
				m.AddInFlight(-1)
			}
		}()
	}
	for sNum := 0; sNum < 4; sNum++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				var b bytes.Buffer
				if err := m.WriteExposition(&b); err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				if err := obs.Lint(bytes.NewReader(b.Bytes())); err != nil {
					t.Errorf("mid-load scrape invalid: %v", err)
					return
				}
				_ = m.Snapshot()
			}
		}()
	}
	wg.Wait()
	snap := m.Snapshot()
	if snap.Endpoints["events"].Count != workers*per {
		t.Fatalf("requests = %d, want %d", snap.Endpoints["events"].Count, workers*per)
	}
	if snap.TA.Queries != workers*per {
		t.Fatalf("ta queries = %d, want %d", snap.TA.Queries, workers*per)
	}
	if snap.InFlight != 0 {
		t.Fatalf("in-flight after balanced adds = %d", snap.InFlight)
	}
}
