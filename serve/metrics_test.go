package serve

import (
	"testing"
	"time"

	"ebsn"
)

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := newHistogram()
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	// 90 fast requests (~0.2ms) and 10 slow ones (~80ms).
	for i := 0; i < 90; i++ {
		h.Observe(200 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(80 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 <= 0 || p50 > 1 {
		t.Fatalf("p50 = %vms, want in (0, 1]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 50 || p99 > 100 {
		t.Fatalf("p99 = %vms, want in [50, 100]", p99)
	}
	if mean := h.MeanMs(); mean < 5 || mean > 20 {
		t.Fatalf("mean = %vms, want ~8", mean)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := newHistogram()
	h.Observe(30 * time.Second) // beyond the last bound
	last := latencyBoundsMs[len(latencyBoundsMs)-1]
	if got := h.Quantile(0.5); got != last {
		t.Fatalf("overflow quantile = %v, want %v", got, last)
	}
}

func TestMetricsSnapshot(t *testing.T) {
	m := NewMetrics("events", "partners")
	ep := m.Endpoint("events")
	if ep == nil {
		t.Fatal("Endpoint(events) = nil")
	}
	if m.Endpoint("nope") != nil {
		t.Fatal("unknown endpoint not nil")
	}
	ep.Observe(200, 2*time.Millisecond)
	ep.Observe(400, 1*time.Millisecond)
	ep.Observe(500, 1*time.Millisecond)
	m.RecordShed()
	m.RecordPanic()
	m.RecordTA(ebsn.SearchStats{SortedAccesses: 10, RandomAccesses: 20, Candidates: 100})
	m.RecordTA(ebsn.SearchStats{SortedAccesses: 5, RandomAccesses: 5, Candidates: 100})

	snap := m.Snapshot()
	es := snap.Endpoints["events"]
	if es.Count != 3 || es.Status4xx != 1 || es.Status5xx != 1 {
		t.Fatalf("events snapshot = %+v", es)
	}
	if es.P50Ms <= 0 {
		t.Fatal("p50 not positive after traffic")
	}
	if snap.Shed != 1 || snap.Panics != 1 {
		t.Fatalf("shed/panics = %d/%d", snap.Shed, snap.Panics)
	}
	if snap.TA.Queries != 2 || snap.TA.RandomAccesses != 25 || snap.TA.Candidates != 200 {
		t.Fatalf("TA snapshot = %+v", snap.TA)
	}
	if snap.TA.AccessFraction != 0.125 {
		t.Fatalf("access fraction = %v, want 0.125", snap.TA.AccessFraction)
	}
	if empty := snap.Endpoints["partners"]; empty.Count != 0 {
		t.Fatalf("partners should be untouched: %+v", empty)
	}
}
