package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ebsn/internal/obs"
)

// TestMetricsPrometheusDefault exercises the real /metrics endpoint end
// to end: default format is valid Prometheus text carrying both the
// request panel and the scrape-time state instruments.
func TestMetricsPrometheusDefault(t *testing.T) {
	s := warmServer(t, Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	getJSON(t, srv, "/v1/events?user=1&n=3", nil)
	getJSON(t, srv, "/v1/partners?user=1&n=3", nil)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Lint(bytes.NewReader(body)); err != nil {
		t.Fatalf("live /metrics fails exposition lint: %v", err)
	}
	samples, err := obs.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, sm := range samples {
		got[sm.Key()] = sm.Value
	}
	if got[`ebsn_serve_requests_total{endpoint="events"}`] < 1 {
		t.Error("events request not counted in exposition")
	}
	if got[`ebsn_serve_ta_queries_total`] < 1 {
		t.Error("TA query not counted in exposition")
	}
	if got[`ebsn_serve_model_steps`] != float64(testTrainSteps) {
		t.Errorf("model_steps = %v, want %d", got[`ebsn_serve_model_steps`], testTrainSteps)
	}
	if got[`ebsn_serve_ready`] != 1 {
		t.Error("ready gauge not 1 after Warm")
	}
	if _, ok := got[`ebsn_serve_cache_hits_total`]; !ok {
		t.Error("cache instruments missing with cache enabled")
	}
	if got[`ebsn_serve_draining`] != 0 {
		t.Error("draining gauge nonzero on a running server")
	}
}

// TestSlowlogEndpoint drives traced traffic with a threshold low enough
// that every query is slow, then reads the ring back through the debug
// endpoint: stage names, TA attrs, and the cache-hit marker must
// survive the trip.
func TestSlowlogEndpoint(t *testing.T) {
	s := warmServer(t, Config{TraceEnabled: true, SlowQueryThreshold: time.Nanosecond})
	srv := httptest.NewServer(s)
	defer srv.Close()

	getJSON(t, srv, "/v1/partners?user=2&n=4", nil) // miss: full pipeline
	getJSON(t, srv, "/v1/partners?user=2&n=4", nil) // hit: short span

	var sl SlowlogResponse
	if resp := getJSON(t, srv, "/v1/debug/slowlog", &sl); resp.StatusCode != 200 {
		t.Fatalf("/v1/debug/slowlog = %d", resp.StatusCode)
	}
	if !sl.Enabled || sl.Captured < 2 || len(sl.Entries) < 2 {
		t.Fatalf("slowlog = enabled=%v captured=%d entries=%d", sl.Enabled, sl.Captured, len(sl.Entries))
	}
	// Newest first: entry 0 is the cache hit, entry 1 the miss.
	hit, miss := sl.Entries[0], sl.Entries[1]
	if hit.Name != epPartners || hit.Attrs["cache_hit"] != 1 {
		t.Fatalf("hit entry = %+v", hit)
	}
	if miss.Attrs["cache_hit"] != 0 || miss.Attrs["ta_candidates"] <= 0 {
		t.Fatalf("miss entry attrs = %+v", miss.Attrs)
	}
	var stages []string
	for _, st := range miss.Stages {
		stages = append(stages, st.Name)
	}
	// The engine-backed partners path decomposes the search into one
	// explicit-duration stage per shard (shard0 for the default
	// one-shard engine) between the wall-time stages.
	if strings.Join(stages, ",") != "cache,ta_search,shard0,encode" {
		t.Fatalf("miss stages = %v", stages)
	}
	if miss.Attrs["shards"] != 1 {
		t.Fatalf("miss entry shards attr = %+v", miss.Attrs)
	}

	// The tracer's span volume shows up in the exposition.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "ebsn_serve_trace_slow_total") {
		t.Fatal("trace counters missing from exposition")
	}
}

// TestSlowlogDisabledByDefault: with tracing off the debug endpoint
// still answers, reporting disabled with an empty (non-null) entry list.
func TestSlowlogDisabledByDefault(t *testing.T) {
	s := warmServer(t, Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()
	getJSON(t, srv, "/v1/partners?user=3&n=2", nil)
	var sl SlowlogResponse
	getJSON(t, srv, "/v1/debug/slowlog", &sl)
	if sl.Enabled || sl.Spans != 0 || len(sl.Entries) != 0 {
		t.Fatalf("disabled tracer leaked spans: %+v", sl)
	}
	if sl.Entries == nil {
		t.Fatal("entries rendered as null, want []")
	}
}

// TestDrainProgressObservable pins the graceful-drain fix: the shutdown
// log lines carry the in-flight count and drain duration, and a final
// metrics scrape taken after drain starts reports the draining gauge.
func TestDrainProgressObservable(t *testing.T) {
	var logBuf bytes.Buffer
	s := warmServer(t, Config{DrainTimeout: 2 * time.Second, Logger: log.New(&logBuf, "", 0)})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, l) }()

	url := "http://" + l.Addr().String()
	if resp, err := http.Get(url + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	// Simulate requests caught mid-flight when the drain begins.
	s.Metrics().AddInFlight(2)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}

	logs := logBuf.String()
	if !strings.Contains(logs, "draining 2 in-flight requests") {
		t.Fatalf("drain start line missing in-flight count:\n%s", logs)
	}
	if !strings.Contains(logs, "drain complete in") || !strings.Contains(logs, "(2 requests were in flight)") {
		t.Fatalf("drain completion line missing progress:\n%s", logs)
	}

	// The "final scrape": the handler outlives the listener, and the
	// draining gauge stays up in the exposition it renders.
	req := httptest.NewRequest("GET", "/metrics", nil)
	rw := httptest.NewRecorder()
	s.ServeHTTP(rw, req)
	if !strings.Contains(rw.Body.String(), "ebsn_serve_draining 1") {
		t.Fatal("draining gauge not visible in post-drain scrape")
	}
	var m ServerMetrics
	rw2 := httptest.NewRecorder()
	s.ServeHTTP(rw2, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if err := json.NewDecoder(rw2.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if !m.Draining || m.InFlight != 2 {
		t.Fatalf("JSON view draining=%v in_flight=%d, want true/2", m.Draining, m.InFlight)
	}
}
