package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// Cache is a sharded LRU result cache with a global TTL. Sharding keeps
// lock contention off the hot query path: keys hash (FNV-1a) to one of
// several independently locked shards, each an LRU list over a map.
// Invalidation is by key construction, not by scanning: the server folds
// a generation counter into every key, so bumping the generation on
// ingest/compaction orphans stale entries and lets LRU pressure plus the
// TTL reclaim them.
type Cache struct {
	shards []*cacheShard
	ttl    time.Duration
	hits   atomic.Uint64
	misses atomic.Uint64

	// now is swappable so tests can drive TTL expiry without sleeping.
	now func() time.Time
}

type cacheShard struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type cacheEntry struct {
	key     string
	val     any
	expires time.Time // zero when the cache has no TTL
}

// NewCache builds a cache holding up to capacity entries across shards.
// Zero values pick defaults (4096 entries, 8 shards, 60s TTL); ttl < 0
// disables expiry.
func NewCache(capacity, shards int, ttl time.Duration) *Cache {
	if capacity <= 0 {
		capacity = 4096
	}
	if shards <= 0 {
		shards = 8
	}
	if shards > capacity {
		shards = capacity
	}
	if ttl == 0 {
		ttl = time.Minute
	}
	per := (capacity + shards - 1) / shards
	c := &Cache{shards: make([]*cacheShard, shards), ttl: ttl, now: time.Now}
	for i := range c.shards {
		c.shards[i] = &cacheShard{cap: per, ll: list.New(), m: make(map[string]*list.Element, per)}
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return c.shards[h%uint32(len(c.shards))]
}

// Get returns the cached value for key, tracking hit/miss counters and
// evicting the entry if its TTL has lapsed.
func (c *Cache) Get(key string) (any, bool) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.m[key]; ok {
		e := el.Value.(*cacheEntry)
		if c.ttl > 0 && c.now().After(e.expires) {
			s.ll.Remove(el)
			delete(s.m, key)
		} else {
			s.ll.MoveToFront(el)
			val := e.val
			s.mu.Unlock()
			c.hits.Add(1)
			return val, true
		}
	}
	s.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// Put stores val under key, evicting the shard's least recently used
// entry when full.
func (c *Cache) Put(key string, val any) {
	s := c.shard(key)
	var exp time.Time
	if c.ttl > 0 {
		exp = c.now().Add(c.ttl)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		e := el.Value.(*cacheEntry)
		e.val, e.expires = val, exp
		s.ll.MoveToFront(el)
		return
	}
	if s.ll.Len() >= s.cap {
		if back := s.ll.Back(); back != nil {
			s.ll.Remove(back)
			delete(s.m, back.Value.(*cacheEntry).key)
		}
	}
	s.m[key] = s.ll.PushFront(&cacheEntry{key: key, val: val, expires: exp})
}

// Len returns the live entry count across shards.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Capacity returns the total entry budget across shards.
func (c *Cache) Capacity() int {
	n := 0
	for _, s := range c.shards {
		n += s.cap
	}
	return n
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
