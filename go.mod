module ebsn

go 1.22
