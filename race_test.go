//go:build race

package ebsn

// The race detector makes training expensive (and race builds
// serialize the Hogwild step — see internal/core/race.go), so the full
// 600k-step shared model would dominate the race suite. 100k steps on
// the tiny city still clears every quality bar in these tests; race
// builds exist to check synchronization, not convergence.
const (
	tinyTrainSteps      = 100_000
	lifecycleTrainSteps = 10_000
)
