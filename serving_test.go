package ebsn

import (
	"testing"
	"time"
)

func TestTopEventsBatchMatchesSingle(t *testing.T) {
	rec := tinyRecommender(t)
	users := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	batch, err := rec.TopEventsBatch(users, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(users) {
		t.Fatalf("batch size %d", len(batch))
	}
	for i, u := range users {
		single, err := rec.TopEvents(u, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(single) != len(batch[i]) {
			t.Fatalf("user %d: batch %d vs single %d results", u, len(batch[i]), len(single))
		}
		for j := range single {
			if single[j] != batch[i][j] {
				t.Fatalf("user %d rank %d: %+v vs %+v", u, j, batch[i][j], single[j])
			}
		}
	}
}

func TestTopEventsBatchValidation(t *testing.T) {
	rec := tinyRecommender(t)
	if _, err := rec.TopEventsBatch([]int32{0}, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := rec.TopEventsBatch([]int32{-5}, 3, 1); err == nil {
		t.Error("bad user accepted")
	}
	if out, err := rec.TopEventsBatch(nil, 3, 1); err != nil || len(out) != 0 {
		t.Error("empty user list should be a no-op")
	}
}

func TestIngestColdEventSurfacesInLiveResults(t *testing.T) {
	// Fresh recommender: this test mutates serving state.
	rec, err := New(Config{City: CityTiny, Seed: 31, Threads: 4, TrainSteps: 400_000})
	if err != nil {
		t.Fatal(err)
	}
	d := rec.Dataset()

	// Without ingestion, live results must equal the static path.
	static, err := rec.TopEventPartners(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	live, err := rec.TopEventPartnersLive(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range static {
		if static[i] != live[i] {
			t.Fatalf("live path diverges without ingestion at %d", i)
		}
	}

	// Ingest a clone of a popular event; it should be able to reach the
	// top of some user's list since its embedding mirrors a real one.
	template := int32(rec.Split().TestEvents[0])
	id, err := rec.IngestColdEvent(d.Events[template].Words, d.Events[template].Venue,
		time.Date(2013, 2, 1, 19, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	if id != -1 {
		t.Fatalf("first live event id = %d, want -1", id)
	}
	if rec.LiveEventCount() != 1 {
		t.Fatalf("LiveEventCount = %d", rec.LiveEventCount())
	}

	// The live event must appear in at least one user's top list.
	found := false
	for u := int32(0); int(u) < d.NumUsers && !found; u += 3 {
		pairs, err := rec.TopEventPartnersLive(u, 10)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pairs {
			if p.Event == id {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("ingested event never surfaced in live recommendations")
	}

	// Compaction preserves the live ID mapping.
	rec.CompactLiveEvents()
	found = false
	for u := int32(0); int(u) < d.NumUsers && !found; u += 3 {
		pairs, err := rec.TopEventPartnersLive(u, 10)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pairs {
			if p.Event == id {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("live event lost its ID after compaction")
	}

	// A second ingest after compaction gets ID -2.
	id2, err := rec.IngestColdEvent(d.Events[template].Words, d.Events[template].Venue,
		time.Date(2013, 2, 2, 19, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	if id2 != -2 {
		t.Fatalf("second live event id = %d, want -2", id2)
	}
}

func TestExplainDecomposition(t *testing.T) {
	rec := tinyRecommender(t)
	b, err := rec.Explain(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := rec.Model().ScoreTriple(1, 2, 3)
	if diff := b.Total - want; diff > 1e-4 || diff < -1e-4 {
		t.Errorf("breakdown total %v != triple score %v", b.Total, want)
	}
	if b.Total != b.UserEvent+b.PartnerEvent+b.Social {
		t.Error("breakdown terms do not sum to total")
	}
	if _, err := rec.Explain(-1, 2, 3); err == nil {
		t.Error("bad user accepted")
	}
	if _, err := rec.Explain(1, 999999, 3); err == nil {
		t.Error("bad partner accepted")
	}
	if _, err := rec.Explain(1, 2, 999999); err == nil {
		t.Error("bad event accepted")
	}
}
