package ebsn

import (
	"testing"
	"time"
)

func TestTopEventsBatchMatchesSingle(t *testing.T) {
	rec := tinyRecommender(t)
	users := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	batch, err := rec.TopEventsBatch(users, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(users) {
		t.Fatalf("batch size %d", len(batch))
	}
	for i, u := range users {
		single, err := rec.TopEvents(u, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(single) != len(batch[i]) {
			t.Fatalf("user %d: batch %d vs single %d results", u, len(batch[i]), len(single))
		}
		for j := range single {
			if single[j] != batch[i][j] {
				t.Fatalf("user %d rank %d: %+v vs %+v", u, j, batch[i][j], single[j])
			}
		}
	}
}

func TestTopEventsBatchValidation(t *testing.T) {
	rec := tinyRecommender(t)
	if _, err := rec.TopEventsBatch([]int32{0}, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := rec.TopEventsBatch([]int32{-5}, 3, 1); err == nil {
		t.Error("bad user accepted")
	}
	if out, err := rec.TopEventsBatch(nil, 3, 1); err != nil || len(out) != 0 {
		t.Error("empty user list should be a no-op")
	}
	// A bad user in the middle of a large batch surfaces its error (and
	// cancels the remaining workers' chunks).
	users := make([]int32, 64)
	for i := range users {
		users[i] = int32(i % rec.Dataset().NumUsers)
	}
	users[40] = int32(rec.Dataset().NumUsers) // out of range
	if out, err := rec.TopEventsBatch(users, 3, 4); err == nil || out != nil {
		t.Error("mid-batch bad user not reported")
	}
}

func TestIngestColdEventSurfacesInLiveResults(t *testing.T) {
	// Fresh recommender: this test mutates serving state.
	rec, err := New(Config{City: CityTiny, Seed: 31, Threads: 4, TrainSteps: 400_000})
	if err != nil {
		t.Fatal(err)
	}
	d := rec.Dataset()

	// Without ingestion, live results must equal the static path.
	static, err := rec.TopEventPartners(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	live, err := rec.TopEventPartnersLive(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range static {
		if static[i] != live[i] {
			t.Fatalf("live path diverges without ingestion at %d", i)
		}
	}

	// Ingest a clone of a popular event; it should be able to reach the
	// top of some user's list since its embedding mirrors a real one.
	template := int32(rec.Split().TestEvents[0])
	id, err := rec.IngestColdEvent(d.Events[template].Words, d.Events[template].Venue,
		time.Date(2013, 2, 1, 19, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	if id != -1 {
		t.Fatalf("first live event id = %d, want -1", id)
	}
	if rec.LiveEventCount() != 1 {
		t.Fatalf("LiveEventCount = %d", rec.LiveEventCount())
	}

	// The live event must appear in at least one user's top list.
	found := false
	for u := int32(0); int(u) < d.NumUsers && !found; u += 3 {
		pairs, err := rec.TopEventPartnersLive(u, 10)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pairs {
			if p.Event == id {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("ingested event never surfaced in live recommendations")
	}

	// Compaction preserves the live ID mapping.
	rec.CompactLiveEvents()
	found = false
	for u := int32(0); int(u) < d.NumUsers && !found; u += 3 {
		pairs, err := rec.TopEventPartnersLive(u, 10)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pairs {
			if p.Event == id {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("live event lost its ID after compaction")
	}

	// A second ingest after compaction gets ID -2.
	id2, err := rec.IngestColdEvent(d.Events[template].Words, d.Events[template].Venue,
		time.Date(2013, 2, 2, 19, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	if id2 != -2 {
		t.Fatalf("second live event id = %d, want -2", id2)
	}
}

func TestLiveIngestLifecycle(t *testing.T) {
	// The full serving lifecycle: ingest → query → compact → ingest →
	// query, asserting live IDs stay stable across compaction and the
	// ranking itself is unchanged by it (compaction only moves pairs
	// from the delta into the main index).
	rec, err := New(Config{City: CityTiny, Seed: 47, Threads: 4, TrainSteps: 300_000})
	if err != nil {
		t.Fatal(err)
	}
	d := rec.Dataset()
	templates := rec.Split().TestEvents
	if len(templates) < 3 {
		t.Fatalf("tiny split has only %d test events", len(templates))
	}
	ingest := func(i int) LiveEventID {
		t.Helper()
		e := d.Events[templates[i%len(templates)]]
		id, err := rec.IngestColdEvent(e.Words, e.Venue, time.Date(2013, 2, 1+i, 19, 0, 0, 0, time.UTC))
		if err != nil {
			t.Fatal(err)
		}
		return id
	}

	// Two ingests into the delta.
	if id := ingest(0); id != -1 {
		t.Fatalf("first ingest id = %d, want -1", id)
	}
	if id := ingest(1); id != -2 {
		t.Fatalf("second ingest id = %d, want -2", id)
	}
	if rec.LiveEventCount() != 2 {
		t.Fatalf("LiveEventCount = %d, want 2", rec.LiveEventCount())
	}

	users := []int32{0, 2, 4, 6, 8}
	before := make(map[int32][]PairRecommendation)
	for _, u := range users {
		pairs, err := rec.TopEventPartnersLive(u, 10)
		if err != nil {
			t.Fatal(err)
		}
		before[u] = pairs
	}

	// Compaction must not change what any user sees: the same
	// (event, partner) pairs with the same scores up to the float drift
	// of recomputing cross terms during the rebuild.
	rec.CompactLiveEvents()
	if rec.LiveEventCount() != 2 {
		t.Fatalf("LiveEventCount after compaction = %d, want 2", rec.LiveEventCount())
	}
	type pairKey struct{ event, partner int32 }
	for _, u := range users {
		after, err := rec.TopEventPartnersLive(u, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(after) != len(before[u]) {
			t.Fatalf("user %d: %d results after compaction, %d before", u, len(after), len(before[u]))
		}
		want := make(map[pairKey]float32, len(before[u]))
		for _, p := range before[u] {
			want[pairKey{p.Event, p.Partner}] = p.Score
		}
		for _, p := range after {
			score, ok := want[pairKey{p.Event, p.Partner}]
			if !ok {
				t.Fatalf("user %d: pair %+v appeared only after compaction", u, p)
			}
			if diff := p.Score - score; diff > 1e-3 || diff < -1e-3 {
				t.Fatalf("user %d: pair (%d,%d) score %v → %v across compaction",
					u, p.Event, p.Partner, score, p.Score)
			}
		}
	}

	// A third ingest lands in the (now empty) delta with the next ID,
	// and mixed delta + compacted results keep distinct stable IDs.
	if id := ingest(2); id != -3 {
		t.Fatalf("post-compaction ingest id = %d, want -3", id)
	}
	if rec.LiveEventCount() != 3 {
		t.Fatalf("LiveEventCount = %d, want 3", rec.LiveEventCount())
	}
	seen := map[int32]bool{}
	for u := int32(0); int(u) < d.NumUsers; u += 2 {
		pairs, err := rec.TopEventPartnersLive(u, 10)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pairs {
			if p.Event < 0 {
				seen[p.Event] = true
				if p.Event < -3 {
					t.Fatalf("impossible live ID %d with 3 ingested events", p.Event)
				}
			}
		}
	}
	if len(seen) == 0 {
		t.Error("no live event surfaced in any top-10 list")
	}
}

func TestExplainDecomposition(t *testing.T) {
	rec := tinyRecommender(t)
	b, err := rec.Explain(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := rec.Model().ScoreTriple(1, 2, 3)
	if diff := b.Total - want; diff > 1e-4 || diff < -1e-4 {
		t.Errorf("breakdown total %v != triple score %v", b.Total, want)
	}
	if b.Total != b.UserEvent+b.PartnerEvent+b.Social {
		t.Error("breakdown terms do not sum to total")
	}
	if _, err := rec.Explain(-1, 2, 3); err == nil {
		t.Error("bad user accepted")
	}
	if _, err := rec.Explain(1, 999999, 3); err == nil {
		t.Error("bad partner accepted")
	}
	if _, err := rec.Explain(1, 2, 999999); err == nil {
		t.Error("bad event accepted")
	}
}
