// ebsn-recommend loads a run directory produced by ebsn-train and prints
// top-n recommendations: cold-event recommendations for a user, and joint
// event-partner recommendations via the TA index.
//
// Usage:
//
//	ebsn-recommend -run ./run -user 42 -n 10
//	ebsn-recommend -run ./run -user 42 -n 10 -prune 40
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ebsn"
)

func main() {
	var (
		run   = flag.String("run", "ebsn-run", "run directory from ebsn-train")
		user  = flag.Int("user", 0, "target user ID")
		n     = flag.Int("n", 10, "number of recommendations")
		prune = flag.Int("prune", 0, "top-k events per partner in the joint space (0 = 5% of test events)")
	)
	flag.Parse()

	rec, err := ebsn.Open(*run, ebsn.Config{})
	if err != nil {
		fatal(err)
	}
	d := rec.Dataset()
	if *user < 0 || *user >= d.NumUsers {
		fatal(fmt.Errorf("user %d out of range [0,%d)", *user, d.NumUsers))
	}
	u := int32(*user)

	fmt.Printf("user %d: %d attended events, %d friends\n\n",
		u, len(d.UserEvents(u)), len(d.Friends(u)))

	events, err := rec.TopEvents(u, *n)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("top-%d cold events:\n", *n)
	for i, e := range events {
		ev := d.Events[e.Event]
		fmt.Printf("%2d. event %-6d score %.3f  %s  %q\n",
			i+1, e.Event, e.Score, ev.Start.Format("2006-01-02 15:04"), snippet(ev.Words, 6))
	}

	if *prune > 0 {
		if err := rec.PrepareJoint(*prune); err != nil {
			fatal(err)
		}
	}
	pairs, err := rec.TopEventPartners(u, *n)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\ntop-%d event-partner pairs:\n", *n)
	for i, p := range pairs {
		ev := d.Events[p.Event]
		tag := ""
		if d.AreFriends(u, p.Partner) {
			tag = " (friend)"
		}
		why, err := rec.Explain(u, p.Partner, p.Event)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%2d. event %-6d with user %-6d%s score %.3f  %s  (you:%.2f partner:%.2f social:%.2f)\n",
			i+1, p.Event, p.Partner, tag, p.Score, ev.Start.Format("2006-01-02 15:04"),
			why.UserEvent, why.PartnerEvent, why.Social)
	}
}

func snippet(words []string, n int) string {
	if len(words) > n {
		words = words[:n]
	}
	return strings.Join(words, " ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ebsn-recommend:", err)
	os.Exit(1)
}
