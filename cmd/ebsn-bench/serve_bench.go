// The -serve experiment: load-test the production HTTP stack (the serve
// package) with concurrent clients against an in-process listener and
// record the throughput/latency trajectory in BENCH_serve.json, so
// serving-performance changes across PRs are measurable.
package main

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"ebsn"
	"ebsn/serve"
)

// serveBenchRun is one appended record in the BENCH_serve.json
// trajectory.
type serveBenchRun struct {
	Timestamp    string  `json:"timestamp"`
	City         string  `json:"city"`
	Seed         uint64  `json:"seed"`
	Concurrency  int     `json:"concurrency"`
	DurationS    float64 `json:"duration_s"`
	Requests     int     `json:"requests"`
	Errors       int     `json:"errors"`
	QPS          float64 `json:"qps"`
	P50Ms        float64 `json:"p50_ms"`
	P95Ms        float64 `json:"p95_ms"`
	P99Ms        float64 `json:"p99_ms"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	// Serving configuration, recorded in full on every entry so runs in
	// the trajectory are comparable at a glance — an entry whose config
	// drifted from its neighbors is not a regression.
	Shards           int     `json:"shards"`
	Quantized        bool    `json:"quantized"`
	CoalesceWindowUs float64 `json:"coalesce_window_us"`
	CoalesceBatch    int     `json:"coalesce_batch"`

	// Micro-batching admission: how many single-user partner queries the
	// coalescer folded together, and the resulting batch-width shape.
	CoalescedRequests uint64  `json:"coalesced_requests,omitempty"`
	BatchDispatches   uint64  `json:"batch_dispatches,omitempty"`
	BatchMeanSize     float64 `json:"batch_mean_size,omitempty"`
	BatchP95Size      float64 `json:"batch_p95_size,omitempty"`
}

// runServeBench trains (or reuses the scale default budget for) a model,
// stands up the full serving stack on an ephemeral port, and drives it
// with conc closed-loop clients for the given duration.
func runServeBench(city ebsn.City, seed uint64, steps int64, k, threads, conc, shards int, duration time.Duration, quantized bool, outPath string) error {
	fmt.Printf("serve bench: training %s (seed %d)...\n", city, seed)
	t0 := time.Now()
	rec, err := ebsn.New(ebsn.Config{City: city, Seed: seed, K: k, Threads: threads, TrainSteps: steps})
	if err != nil {
		return err
	}
	fmt.Printf("model ready in %.1fs; warming TA index...\n", time.Since(t0).Seconds())

	// Coalescing mirrors the ebsn-serve daemon defaults so the measured
	// throughput is what a deployment actually gets.
	const coalesceWindow = 200 * time.Microsecond
	const coalesceBatch = 16
	s := serve.New(rec, serve.Config{
		MaxInFlight:    conc * 2,
		Shards:         shards,
		Quantized:      quantized,
		CoalesceWindow: coalesceWindow,
		CoalesceBatch:  coalesceBatch,
	})
	if err := s.Warm(); err != nil {
		return err
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	numUsers := rec.Dataset().NumUsers
	paths := []string{"/v1/events", "/v1/partners", "/v1/partners/live"}
	deadline := time.Now().Add(duration)

	type workerResult struct {
		latencies []float64 // ms
		errors    int
	}
	results := make([]workerResult, conc)
	var wg sync.WaitGroup
	fmt.Printf("firing %d concurrent clients for %s...\n", conc, duration)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed)*1000 + int64(w)))
			client := srv.Client()
			for time.Now().Before(deadline) {
				user := rng.Intn(numUsers)
				path := paths[rng.Intn(len(paths))]
				url := fmt.Sprintf("%s%s?user=%d&n=10", srv.URL, path, user)
				q0 := time.Now()
				resp, err := client.Get(url)
				lat := float64(time.Since(q0).Microseconds()) / 1000
				if err != nil {
					results[w].errors++
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					results[w].errors++
					continue
				}
				results[w].latencies = append(results[w].latencies, lat)
			}
		}(w)
	}
	wg.Wait()

	var all []float64
	errors := 0
	for _, r := range results {
		all = append(all, r.latencies...)
		errors += r.errors
	}
	if len(all) == 0 {
		return fmt.Errorf("serve bench: no successful requests (errors=%d)", errors)
	}
	sort.Float64s(all)
	q := func(p float64) float64 {
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	hits, misses := s.Cache().Stats()
	run := serveBenchRun{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		City:        city.String(),
		Seed:        seed,
		Concurrency: conc,
		DurationS:   duration.Seconds(),
		Requests:    len(all),
		Errors:      errors,
		QPS:         float64(len(all)) / duration.Seconds(),
		P50Ms:       q(0.50),
		P95Ms:       q(0.95),
		P99Ms:       q(0.99),
	}
	if total := hits + misses; total > 0 {
		run.CacheHitRate = float64(hits) / float64(total)
	}
	batch := s.Metrics().Snapshot().Batch
	run.Shards = rec.EngineShards()
	run.Quantized = quantized
	run.CoalesceWindowUs = float64(coalesceWindow.Microseconds())
	run.CoalesceBatch = coalesceBatch
	run.CoalescedRequests = batch.CoalescedRequests
	run.BatchDispatches = batch.Dispatches
	run.BatchMeanSize = batch.MeanSize
	run.BatchP95Size = batch.P95Size

	fmt.Printf("\nserve bench (%s, %d clients, %.0fs):\n", city, conc, duration.Seconds())
	fmt.Printf("  requests   %d (%d errors)\n", run.Requests, run.Errors)
	fmt.Printf("  throughput %.0f req/s\n", run.QPS)
	fmt.Printf("  latency    p50 %.3fms   p95 %.3fms   p99 %.3fms\n", run.P50Ms, run.P95Ms, run.P99Ms)
	fmt.Printf("  cache hit  %.1f%%\n", run.CacheHitRate*100)
	fmt.Printf("  coalescer  %d requests folded into %d dispatches (mean %.2f, p95 %.0f per batch)\n",
		run.CoalescedRequests, run.BatchDispatches, run.BatchMeanSize, run.BatchP95Size)

	if outPath != "" {
		if err := appendBenchRun(outPath, run); err != nil {
			return err
		}
		fmt.Println("appended run to", outPath)
	}
	return nil
}
