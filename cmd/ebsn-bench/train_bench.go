// The -train experiment: micro-benchmark the negative-sampling SGD hot
// path (Algorithm 2) — steps/sec and ns/step at 1/2/4/8 Hogwild threads
// on a freshly generated city, no evaluation. Results append to
// BENCH_train.json, making training-throughput regressions (per-step
// cost, allocation creep, thread-scaling collapse) measurable across
// PRs, the same way BENCH_query.json tracks the online path.
package main

import (
	"fmt"
	"runtime"
	"time"

	"ebsn"
	"ebsn/internal/core"
	"ebsn/internal/ebsnet"
)

// trainBenchRun is one appended record in the BENCH_train.json
// trajectory.
type trainBenchRun struct {
	Timestamp  string `json:"timestamp"`
	Note       string `json:"note,omitempty"`
	City       string `json:"city"`
	Seed       uint64 `json:"seed"`
	K          int    `json:"k"`
	Sampler    string `json:"sampler"`
	Steps      int64  `json:"steps"`
	GoMaxProcs int    `json:"gomaxprocs"`

	Threads []trainThreadResult `json:"threads"`
	// Scaling8 is steps/sec at 8 threads over steps/sec at 1 thread: the
	// Hogwild scaling ratio (bounded by the core count; on a single-core
	// box it measures pure threading overhead).
	Scaling8 float64 `json:"scaling_8x"`
}

// trainThreadResult is one thread-count measurement within a run.
type trainThreadResult struct {
	Threads       int     `json:"threads"`
	StepsPerSec   float64 `json:"steps_per_sec"`
	NsPerStep     float64 `json:"ns_per_step"`
	AllocsPerStep float64 `json:"allocs_per_step"`
}

// trainBenchThreadCounts is the fixed Hogwild scaling curve every run
// reports, so trajectory entries stay comparable.
var trainBenchThreadCounts = []int{1, 2, 4, 8}

// runTrainBench generates the city, builds the relation graphs once, and
// times TrainSteps on a fresh identically-seeded model per thread count.
// Warmup steps before each timed window get the adaptive sampler past its
// initial ranking builds and the allocator to steady state, so the
// numbers reflect the sustained hot path.
func runTrainBench(city ebsn.City, seed uint64, steps int64, k int, note, outPath string) error {
	if steps <= 0 {
		steps = 300_000
	}
	gen := ebsn.GeneratorConfigFor(city, seed)
	fmt.Printf("train bench: generating %s (seed %d)...\n", gen.Name, seed)
	t0 := time.Now()
	g, err := buildTrainBenchGraphs(gen, seed)
	if err != nil {
		return err
	}
	fmt.Printf("graphs ready in %.1fs; timing %d steps per thread count...\n",
		time.Since(t0).Seconds(), steps)

	run := trainBenchRun{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Note:       note,
		City:       gen.Name,
		Seed:       seed,
		K:          k,
		Steps:      steps,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	warmup := steps / 10
	if warmup > 20_000 {
		warmup = 20_000
	}
	for _, threads := range trainBenchThreadCounts {
		cfg := core.DefaultConfig()
		cfg.K = k
		cfg.Seed = seed
		cfg.Threads = threads
		run.Sampler = cfg.Sampler.String()
		m, err := core.NewModel(g, cfg)
		if err != nil {
			return err
		}
		m.TrainSteps(warmup)

		var mem0, mem1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&mem0)
		w0 := time.Now()
		m.TrainSteps(steps)
		elapsed := time.Since(w0)
		runtime.ReadMemStats(&mem1)

		res := trainThreadResult{
			Threads:       threads,
			StepsPerSec:   float64(steps) / elapsed.Seconds(),
			NsPerStep:     float64(elapsed.Nanoseconds()) / float64(steps),
			AllocsPerStep: float64(mem1.Mallocs-mem0.Mallocs) / float64(steps),
		}
		run.Threads = append(run.Threads, res)
		fmt.Printf("  threads=%d   %10.0f steps/sec   %7.0f ns/step   %.4f allocs/step\n",
			threads, res.StepsPerSec, res.NsPerStep, res.AllocsPerStep)
	}
	if sps1 := run.Threads[0].StepsPerSec; sps1 > 0 {
		run.Scaling8 = run.Threads[len(run.Threads)-1].StepsPerSec / sps1
	}
	fmt.Printf("  8-thread scaling ratio %.2fx (GOMAXPROCS=%d)\n", run.Scaling8, run.GoMaxProcs)

	if outPath != "" {
		if err := appendBenchRun(outPath, run); err != nil {
			return err
		}
		fmt.Println("appended run to", outPath)
	}
	return nil
}

// buildTrainBenchGraphs mirrors the experiment environment's graph
// pipeline (minimum-attendance filter, chronological split, default graph
// config) without paying for ground-truth triples or the scenario-2
// rebuild, which the trainer never touches.
func buildTrainBenchGraphs(gen ebsn.GeneratorConfig, seed uint64) (*ebsnet.Graphs, error) {
	raw, err := ebsn.GenerateDataset(gen)
	if err != nil {
		return nil, err
	}
	d, err := raw.FilterMinEvents(5)
	if err != nil {
		return nil, err
	}
	s, err := ebsnet.ChronologicalSplit(d, ebsnet.DefaultSplitConfig())
	if err != nil {
		return nil, err
	}
	return ebsnet.BuildGraphs(d, s, ebsnet.DefaultGraphsConfig())
}
