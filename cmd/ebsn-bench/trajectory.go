package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// appendBenchRun reads an existing trajectory file (a JSON array of run
// records), appends run, and writes the array back. Every bench mode
// (-serve, -query, -train) accumulates its history this way so
// performance changes across PRs stay measurable.
func appendBenchRun[T any](path string, run T) error {
	var runs []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &runs); err != nil {
			return fmt.Errorf("bench: %s exists but is not a run array: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	raw, err := json.Marshal(run)
	if err != nil {
		return err
	}
	runs = append(runs, raw)
	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
