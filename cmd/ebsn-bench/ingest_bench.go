// The -serve -ingest experiment: measure what streaming ingest and
// background compaction cost the query path. Phase one drives the live
// query endpoints at steady state; phase two batch-ingests a delta of
// live events, kicks the non-blocking /v1/compact, and keeps driving
// queries while the fold runs. The record compares the two latency
// profiles — with the background compactor, the under-compaction p99
// should sit within a small factor of steady state instead of stalling
// behind a write-locked rebuild.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"ebsn"
	"ebsn/serve"
)

// serveIngestRun is one appended record in the BENCH_serve.json
// trajectory (mode "ingest-compact" distinguishes it from plain -serve
// records).
type serveIngestRun struct {
	Timestamp   string  `json:"timestamp"`
	Mode        string  `json:"mode"`
	City        string  `json:"city"`
	Seed        uint64  `json:"seed"`
	Concurrency int     `json:"concurrency"`
	DurationS   float64 `json:"duration_s"`

	IngestEvents int     `json:"ingest_events"`
	IngestMs     float64 `json:"ingest_ms"`
	CompactMs    float64 `json:"compact_ms"`

	SteadyRequests  int     `json:"steady_requests"`
	SteadyQPS       float64 `json:"steady_qps"`
	SteadyP50Ms     float64 `json:"steady_p50_ms"`
	SteadyP99Ms     float64 `json:"steady_p99_ms"`
	CompactRequests int     `json:"compact_requests"`
	CompactQPS      float64 `json:"compact_qps"`
	CompactP50Ms    float64 `json:"compact_p50_ms"`
	CompactP99Ms    float64 `json:"compact_p99_ms"`
	P99Ratio        float64 `json:"p99_ratio"`
	Errors          int     `json:"errors"`
}

// driveLoad fires conc closed-loop clients at the query endpoints until
// the deadline, returning the merged latency samples (ms) and the error
// count.
func driveLoad(srv *httptest.Server, numUsers, conc int, seed uint64, deadline time.Time) ([]float64, int) {
	paths := []string{"/v1/partners/live", "/v1/partners/live", "/v1/partners"}
	lats := make([][]float64, conc)
	errs := make([]int, conc)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed)*1000 + int64(w)))
			client := srv.Client()
			for time.Now().Before(deadline) {
				url := fmt.Sprintf("%s%s?user=%d&n=10", srv.URL, paths[rng.Intn(len(paths))], rng.Intn(numUsers))
				q0 := time.Now()
				resp, err := client.Get(url)
				lat := float64(time.Since(q0).Microseconds()) / 1000
				if err != nil {
					errs[w]++
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs[w]++
					continue
				}
				lats[w] = append(lats[w], lat)
			}
		}(w)
	}
	wg.Wait()
	var all []float64
	errors := 0
	for w := range lats {
		all = append(all, lats[w]...)
		errors += errs[w]
	}
	sort.Float64s(all)
	return all, errors
}

func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(p*float64(len(sorted)-1))]
}

// runServeIngestBench stands up the serving stack (response cache off,
// so the delta-scan and fold costs are not masked by cached answers)
// and measures the query latency profile at steady state and under a
// batch ingest plus background compaction.
func runServeIngestBench(city ebsn.City, seed uint64, steps int64, k, threads, conc int, duration time.Duration, events int, outPath string) error {
	fmt.Printf("ingest bench: training %s (seed %d)...\n", city, seed)
	t0 := time.Now()
	rec, err := ebsn.New(ebsn.Config{City: city, Seed: seed, K: k, Threads: threads, TrainSteps: steps})
	if err != nil {
		return err
	}
	fmt.Printf("model ready in %.1fs; warming TA index...\n", time.Since(t0).Seconds())

	s := serve.New(rec, serve.Config{MaxInFlight: conc * 2, CacheCapacity: -1})
	if err := s.Warm(); err != nil {
		return err
	}
	srv := httptest.NewServer(s)
	defer srv.Close()
	numUsers := rec.Dataset().NumUsers

	fmt.Printf("steady state: %d clients for %s...\n", conc, duration)
	steady, errs1 := driveLoad(srv, numUsers, conc, seed, time.Now().Add(duration))
	if len(steady) == 0 {
		return fmt.Errorf("ingest bench: no successful steady-state requests (errors=%d)", errs1)
	}

	// Batch-ingest the delta, chunked to stay under the request cap.
	fmt.Printf("ingesting %d live events...\n", events)
	d := rec.Dataset()
	tev := rec.Split().TestEvents
	i0 := time.Now()
	for off := 0; off < events; off += 2000 {
		n := min(2000, events-off)
		evs := make([]serve.IngestEvent, n)
		for i := range evs {
			template := tev[(off+i)%len(tev)]
			evs[i] = serve.IngestEvent{
				Words: d.Events[template].Words,
				Venue: d.Events[template].Venue,
				Start: time.Date(2013, 3, 1+(off+i)%27, 19, 0, 0, 0, time.UTC),
			}
		}
		body, err := json.Marshal(serve.IngestRequest{Source: "bench", Events: evs})
		if err != nil {
			return err
		}
		resp, err := http.Post(srv.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("ingest bench: batch ingest = %d", resp.StatusCode)
		}
	}
	ingestMs := float64(time.Since(i0).Microseconds()) / 1000

	// Kick the background fold and keep querying for the full window;
	// the join goroutine records how long the fold itself took.
	fmt.Printf("background compaction + %d clients for %s...\n", conc, duration)
	resp, err := http.Post(srv.URL+"/v1/compact", "application/json", nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	var compactMs float64
	joinErr := make(chan error, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/compact?wait=1", "application/json", nil)
		if err != nil {
			joinErr <- err
			return
		}
		defer resp.Body.Close()
		var out serve.CompactResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			joinErr <- err
			return
		}
		if out.PendingEvents != 0 || out.Compaction.Failures != 0 {
			joinErr <- fmt.Errorf("compaction left %d pending events (failures=%d: %s)",
				out.PendingEvents, out.Compaction.Failures, out.Compaction.LastError)
			return
		}
		compactMs = out.Compaction.LastMs
		joinErr <- nil
	}()
	under, errs2 := driveLoad(srv, numUsers, conc, seed+1, time.Now().Add(duration))
	if err := <-joinErr; err != nil {
		return err
	}
	if len(under) == 0 {
		return fmt.Errorf("ingest bench: no successful requests under compaction (errors=%d)", errs2)
	}

	run := serveIngestRun{
		Timestamp:       time.Now().UTC().Format(time.RFC3339),
		Mode:            "ingest-compact",
		City:            city.String(),
		Seed:            seed,
		Concurrency:     conc,
		DurationS:       duration.Seconds(),
		IngestEvents:    events,
		IngestMs:        ingestMs,
		CompactMs:       compactMs,
		SteadyRequests:  len(steady),
		SteadyQPS:       float64(len(steady)) / duration.Seconds(),
		SteadyP50Ms:     quantile(steady, 0.50),
		SteadyP99Ms:     quantile(steady, 0.99),
		CompactRequests: len(under),
		CompactQPS:      float64(len(under)) / duration.Seconds(),
		CompactP50Ms:    quantile(under, 0.50),
		CompactP99Ms:    quantile(under, 0.99),
		Errors:          errs1 + errs2,
	}
	if run.SteadyP99Ms > 0 {
		run.P99Ratio = run.CompactP99Ms / run.SteadyP99Ms
	}

	fmt.Printf("\ningest bench (%s, %d clients, %d events):\n", city, conc, events)
	fmt.Printf("  ingest     %.1fms for %d events\n", run.IngestMs, events)
	fmt.Printf("  compaction %.1fms background fold\n", run.CompactMs)
	fmt.Printf("  steady     %d req, %.0f req/s, p50 %.3fms, p99 %.3fms\n",
		run.SteadyRequests, run.SteadyQPS, run.SteadyP50Ms, run.SteadyP99Ms)
	fmt.Printf("  compacting %d req, %.0f req/s, p50 %.3fms, p99 %.3fms\n",
		run.CompactRequests, run.CompactQPS, run.CompactP50Ms, run.CompactP99Ms)
	fmt.Printf("  p99 ratio  %.2fx (under compaction vs steady)\n", run.P99Ratio)

	if outPath != "" {
		if err := appendBenchRun(outPath, run); err != nil {
			return err
		}
		fmt.Println("appended run to", outPath)
	}
	return nil
}
