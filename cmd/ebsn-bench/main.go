// ebsn-bench regenerates the paper's tables and figures on the synthetic
// benchmark. Each experiment prints a plain-text table mirroring the
// paper's layout; EXPERIMENTS.md records paper-vs-measured values.
//
// Usage:
//
//	ebsn-bench -exp fig3 -city small
//	ebsn-bench -exp all -city small -steps 1200000 -threads 8
//	ebsn-bench -exp tab6 -city small -queries 100
//
// With -serve it instead load-tests the production HTTP stack (the
// serve package) and appends throughput/latency results to
// BENCH_serve.json:
//
//	ebsn-bench -serve -city tiny -conc 16 -duration 5s
//
// With -query it micro-benchmarks the TA query hot path and index
// builds on synthetic vectors (no training) and appends the results to
// BENCH_query.json:
//
//	ebsn-bench -query -events 2000 -partners 5000 -topk 50
//	ebsn-bench -query -shards 4      # adds the scatter-gather shard-scaling sweep
//	ebsn-bench -query -batch 16      # adds the batched-query amortization curve
//	ebsn-bench -query -quantized     # adds int8-quantized latency + recall@10
//
// With -train it micro-benchmarks the SGD training hot path (steps/sec
// and ns/step at 1/2/4/8 Hogwild threads) and appends the results to
// BENCH_train.json:
//
//	ebsn-bench -train -city small -steps 300000
//
// Either mode accepts -cpuprofile/-memprofile to write pprof profiles
// of the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ebsn"
	"ebsn/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: tab1 fig3 fig3x fig4 fig5 fig6 fig7 tab2 tab3 tab4 tab5 tab6 abl group constrained feed or all (fig3x/abl/group/constrained/feed are extras outside all)")
		city    = flag.String("city", "small", "dataset scale: tiny small beijing shanghai")
		seed    = flag.Uint64("seed", 11, "generator and training seed")
		steps   = flag.Int64("steps", 0, "GEM-A training budget N (0 = scale default)")
		k       = flag.Int("k", 60, "embedding dimension")
		threads = flag.Int("threads", 8, "Hogwild training threads")
		cases   = flag.Int("cases", 2000, "max evaluation cases per protocol run")
		queries = flag.Int("queries", 50, "query users for the online-efficiency experiments")
		outDir  = flag.String("out", "", "also write each table as TSV into this directory")

		serveMode = flag.Bool("serve", false, "load-test the HTTP serving stack instead of running paper experiments")
		conc      = flag.Int("conc", 8, "concurrent clients for -serve (the trajectory's stable sweep config)")
		duration  = flag.Duration("duration", 5*time.Second, "load duration for -serve")
		ingestN   = flag.Int("ingest", 0, "with -serve: measure query p99 while this many live events batch-ingest and background-compact (0 = plain load test)")
		benchOut  = flag.String("benchout", "BENCH_serve.json", "trajectory file for -serve results (empty disables)")

		trainMode = flag.Bool("train", false, "micro-benchmark the SGD training hot path: steps/sec at 1/2/4/8 threads")
		trainOut  = flag.String("trainout", "BENCH_train.json", "trajectory file for -train results (empty disables)")

		queryMode = flag.Bool("query", false, "micro-benchmark the TA query hot path and index builds on synthetic vectors (no training)")
		nEvents   = flag.Int("events", 2000, "synthetic event count for -query")
		nPartners = flag.Int("partners", 5000, "synthetic partner count for -query")
		topK      = flag.Int("topk", 50, "per-partner candidate pruning for -query")
		topN      = flag.Int("topn", 10, "results per query for -query")
		shards    = flag.Int("shards", 1, "with -query: sweep the scatter-gather engine over shard counts {1,2,4,...,N} (1 disables); with -serve: the serving engine's shard count")
		batch     = flag.Int("batch", 1, "sweep the batched query path over widths {1,2,4,...,B} for -query (1 disables)")
		quantized = flag.Bool("quantized", false, "with -query: also measure int8-quantized queries and recall@10; with -serve: serve from quantized candidate storage")
		note      = flag.String("note", "", "free-form label recorded with the -query run")
		queryOut  = flag.String("queryout", "BENCH_query.json", "trajectory file for -query results (empty disables)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at the end of the run to this file")
	)
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	switch {
	case *serveMode:
		cityID, perr := ebsn.ParseCity(*city)
		if perr != nil {
			err = perr
			break
		}
		if *ingestN > 0 {
			err = runServeIngestBench(cityID, *seed, *steps, *k, *threads, *conc, *duration, *ingestN, *benchOut)
		} else {
			err = runServeBench(cityID, *seed, *steps, *k, *threads, *conc, *shards, *duration, *quantized, *benchOut)
		}
	case *trainMode:
		cityID, perr := ebsn.ParseCity(*city)
		if perr != nil {
			err = perr
			break
		}
		err = runTrainBench(cityID, *seed, *steps, *k, *note, *trainOut)
	case *queryMode:
		err = runQueryBench(*nEvents, *nPartners, *k, *topK, *topN, *shards, *batch, *quantized, *seed, *note, *queryOut)
	default:
		err = runExperiments(*exp, *city, *seed, *steps, *k, *threads, *cases, *queries, *outDir)
	}
	stopProfiles()
	if err != nil {
		fatal(err)
	}
}

// startProfiles turns on the requested pprof collection and returns the
// function that flushes it — called before exit even on failed runs.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Println("wrote CPU profile to", cpuPath)
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ebsn-bench:", err)
				return
			}
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ebsn-bench:", err)
			}
			f.Close()
			fmt.Println("wrote heap profile to", memPath)
		}
	}, nil
}

func runExperiments(exp, city string, seed uint64, steps int64, k, threads, cases, queries int, outDir string) error {
	cityID, err := ebsn.ParseCity(city)
	if err != nil {
		return err
	}
	gen := ebsn.GeneratorConfigFor(cityID, seed)

	fmt.Printf("building environment for %s (seed %d)...\n", gen.Name, seed)
	start := time.Now()
	env, err := experiments.NewEnv(gen)
	if err != nil {
		return err
	}
	stats := env.Dataset.Stats()
	fmt.Printf("dataset: %s (%.1fs)\n\n", stats, time.Since(start).Seconds())

	opts := experiments.DefaultOptions()
	opts.K = k
	opts.Threads = threads
	opts.EvalCases = cases
	opts.Seed = seed
	if steps > 0 {
		opts.BaseSteps = steps
	} else if cityID == ebsn.CityBeijing || cityID == ebsn.CityShanghai {
		// City-scale graphs carry ~20× the edges of the small preset.
		opts.BaseSteps = 24_000_000
	}

	type runner struct {
		id  string
		run func() (*experiments.Table, error)
	}
	runners := []runner{
		{"tab1", func() (*experiments.Table, error) { return experiments.Tab1(env), nil }},
		{"fig3", func() (*experiments.Table, error) { return experiments.Fig3(env, opts) }},
		{"fig3x", func() (*experiments.Table, error) { return experiments.Fig3Extended(env, opts) }},
		{"fig4", func() (*experiments.Table, error) { return experiments.Fig4(env, opts) }},
		{"fig5", func() (*experiments.Table, error) { return experiments.Fig5(env, opts) }},
		{"tab2", func() (*experiments.Table, error) { return experiments.Tab2(env, opts) }},
		{"tab3", func() (*experiments.Table, error) { return experiments.Tab3(env, opts) }},
		{"tab4", func() (*experiments.Table, error) { return experiments.Tab4(env, opts, nil) }},
		{"tab5", func() (*experiments.Table, error) { return experiments.Tab5(env, opts, nil) }},
		{"fig6", func() (*experiments.Table, error) { return experiments.Fig6(env, opts, nil) }},
		{"tab6", func() (*experiments.Table, error) { return experiments.Tab6(env, opts, queries) }},
		{"fig7", func() (*experiments.Table, error) { return experiments.Fig7(env, opts, queries) }},
		{"abl", func() (*experiments.Table, error) { return experiments.Ablations(env, opts) }},
		{"group", func() (*experiments.Table, error) { return experiments.ScenarioGroup(env, opts) }},
		{"constrained", func() (*experiments.Table, error) { return experiments.ScenarioConstrained(env, opts) }},
		{"feed", func() (*experiments.Table, error) { return experiments.ScenarioFeed(env, opts) }},
	}
	// Extras are valid ids but excluded from "all": fig3x/abl extend the
	// paper's sweep, and the scenario tables measure derived workloads.
	extras := map[string]bool{"fig3x": true, "abl": true, "group": true, "constrained": true, "feed": true}

	want := strings.Split(exp, ",")
	matched := false
	for _, r := range runners {
		extra := extras[r.id]
		if !selected(want, r.id) || (extra && !explicitly(want, r.id)) {
			continue
		}
		matched = true
		t0 := time.Now()
		tbl, err := r.run()
		if err != nil {
			return fmt.Errorf("%s: %w", r.id, err)
		}
		fmt.Println(tbl)
		if outDir != "" {
			path, err := tbl.WriteTSV(outDir, r.id+"-"+gen.Name)
			if err != nil {
				return err
			}
			fmt.Println("wrote", path)
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", r.id, time.Since(t0).Seconds())
	}
	if !matched {
		return fmt.Errorf("no experiment matches %q; see -h", exp)
	}
	return nil
}

func explicitly(want []string, id string) bool {
	for _, w := range want {
		if w == id {
			return true
		}
	}
	return false
}

func selected(want []string, id string) bool {
	for _, w := range want {
		if w == "all" || w == id {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ebsn-bench:", err)
	os.Exit(1)
}
