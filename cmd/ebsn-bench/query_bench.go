// The -query experiment: micro-benchmark the TA query hot path and the
// index builds on synthetic vectors — no dataset generation or training,
// so the numbers isolate the retrieval engine. Results append to
// BENCH_query.json, making hot-path regressions (latency, allocations,
// build scaling) measurable across PRs. With -shards N it additionally
// sweeps the scatter-gather engine across shard counts {1, 2, 4, ..., N}
// and appends the scaling curve to the same record.
package main

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"ebsn/internal/engine"
	"ebsn/internal/rng"
	"ebsn/internal/ta"
)

// queryBenchRun is one appended record in the BENCH_query.json
// trajectory.
type queryBenchRun struct {
	Timestamp string `json:"timestamp"`
	Note      string `json:"note,omitempty"`
	Events    int    `json:"events"`
	Partners  int    `json:"partners"`
	K         int    `json:"k"`
	TopK      int    `json:"topk"`
	TopN      int    `json:"topn"`
	Pairs     int    `json:"pairs"`
	Workers   int    `json:"workers"`

	BuildCandidatesSerialMs   float64 `json:"build_candidates_serial_ms"`
	BuildCandidatesParallelMs float64 `json:"build_candidates_parallel_ms"`
	FastIndexSerialMs         float64 `json:"fastindex_serial_ms"`
	FastIndexParallelMs       float64 `json:"fastindex_parallel_ms"`
	FaginSerialMs             float64 `json:"fagin_serial_ms"`
	FaginParallelMs           float64 `json:"fagin_parallel_ms"`

	QueryIters    int     `json:"query_iters"`
	QueryNsOp     float64 `json:"query_ns_op"`
	QueryP50Us    float64 `json:"query_p50_us"`
	QueryP95Us    float64 `json:"query_p95_us"`
	QueryAllocsOp float64 `json:"query_allocs_op"`

	ShardCurve []shardCurvePoint `json:"shard_curve,omitempty"`
	BatchCurve []batchCurvePoint `json:"batch_curve,omitempty"`
	PredCurve  []predCurvePoint  `json:"pred_curve,omitempty"`
	Quantized  *quantizedBench   `json:"quantized,omitempty"`
	Load       *loadBench        `json:"load,omitempty"`
}

// predCurvePoint is one selectivity's measurement in the constrained
// query sweep: the predicate push-down walk versus the post-filter
// oracle (run the unconstrained walk, drop disallowed events, escalate
// the fetch depth until the top-n allowed pairs surface). Bit-identity
// between the two is verified over sampled queries before the point is
// recorded, and push-down slower than post-filtering at selectivity
// ≤ 25% fails the whole bench run — both are CI gates.
type predCurvePoint struct {
	SelectivityPct float64 `json:"selectivity_pct"`
	AllowedEvents  int     `json:"allowed_events"`
	PredNsOp       float64 `json:"pred_ns_op"`
	PredP50Us      float64 `json:"pred_p50_us"`
	PredP95Us      float64 `json:"pred_p95_us"`
	PostNsOp       float64 `json:"postfilter_ns_op"`
	PostP50Us      float64 `json:"postfilter_p50_us"`
	PostP95Us      float64 `json:"postfilter_p95_us"`
	Speedup        float64 `json:"speedup"`
	BitIdentical   bool    `json:"bit_identical"`
}

// loadBench is the zero-copy artifact measurement: the cost of bringing
// a query engine up by rebuilding it from the raw embedding vectors
// versus mapping the artifact that rebuild wrote. The heap columns
// approximate reload peak memory — each engine is stood up while a
// fully-built one stays resident, the serving reload's double-occupancy
// moment. bit_identical is verified over sampled queries before the
// block is recorded; a mismatch fails the whole bench run.
type loadBench struct {
	Shards        int     `json:"shards"`
	Quantized     bool    `json:"quantized"`
	ArtifactMB    float64 `json:"artifact_mb"`
	RebuildMs     float64 `json:"rebuild_ms"`
	SaveMs        float64 `json:"save_ms"`
	MapMs         float64 `json:"map_ms"`
	Speedup       float64 `json:"speedup"`
	RebuildHeapMB float64 `json:"rebuild_heap_mb"`
	MapHeapMB     float64 `json:"map_heap_mb"`
	BitIdentical  bool    `json:"bit_identical"`
}

// batchCurvePoint is one batch width's measurement in the batched-query
// sweep: the whole batch shares one index traversal (matrix-panel
// affinity passes, one bound walk per user), so ns_user falling below
// the single-query ns/op is the panel amortization. Results are
// bit-identical to sequential single queries at every width.
type batchCurvePoint struct {
	Batch           int     `json:"batch"`
	QueryIters      int     `json:"query_iters"` // batched calls, not users
	NsUser          float64 `json:"ns_user"`
	P50Us           float64 `json:"p50_us"` // per batched call
	P95Us           float64 `json:"p95_us"`
	AllocsOp        float64 `json:"allocs_op"`
	SpeedupVsSingle float64 `json:"speedup_vs_single"`
}

// quantizedBench is the int8-quantized query measurement: latency of the
// approximate walk + exact re-rank, its batched (b=8) per-user cost, and
// recall@10 against the exact ranking. The quantized path trades walk
// depth (4x overfetch) for 4x-smaller candidate storage — its win is
// memory, not latency; the recall column is the quality gate.
type quantizedBench struct {
	QueryIters    int     `json:"query_iters"`
	QueryNsOp     float64 `json:"query_ns_op"`
	QueryP50Us    float64 `json:"query_p50_us"`
	QueryP95Us    float64 `json:"query_p95_us"`
	QueryAllocsOp float64 `json:"query_allocs_op"`
	Batch8NsUser  float64 `json:"batch8_ns_user"`
	RecallAt10    float64 `json:"recall_at_10"`
}

// shardCurvePoint is one shard count's measurement in the scatter-gather
// scaling sweep. Wall numbers are end-to-end engine.Search latency on
// this machine; the critical-path columns are the engine's simulated
// N-core latency (prepass + slowest shard + merge), which is the honest
// scaling signal on boxes with fewer cores than shards.
type shardCurvePoint struct {
	Shards            int     `json:"shards"`
	BuildMs           float64 `json:"build_ms"`
	QueryIters        int     `json:"query_iters"`
	QueryNsOp         float64 `json:"query_ns_op"`
	QueryP50Us        float64 `json:"query_p50_us"`
	QueryP95Us        float64 `json:"query_p95_us"`
	QueryAllocsOp     float64 `json:"query_allocs_op"`
	CriticalPathP50Us float64 `json:"critical_path_p50_us"`
	CriticalPathP95Us float64 `json:"critical_path_p95_us"`
}

// maxQuerySamples caps each query loop's latency buffer. The buffer is
// allocated once, before the baseline MemStats read, so the measured
// loop never grows it — earlier runs re-appended past capacity, charging
// slice reallocations to the query path and turning query_allocs_op
// fractional.
const maxQuerySamples = 1 << 17

// queryMeasurement is one timed query loop's summary. Percentiles are
// always computed from the recorded samples (the loop guarantees at
// least 200), never left zero, and allocs/op is rounded to the integer
// the steady-state path actually performs.
type queryMeasurement struct {
	iters    int
	nsOp     float64
	p50Us    float64
	p95Us    float64
	allocsOp float64
}

// measureQueries drives fn for at least 200 iterations and then until
// the 2-second deadline, timing each call. fn receives the iteration
// index for rotating query vectors/exclusions.
func measureQueries(fn func(i int)) queryMeasurement {
	latencies := make([]float64, 0, maxQuerySamples)
	var mem0, mem1 runtime.MemStats
	runtime.GC()
	deadline := time.Now().Add(2 * time.Second)
	runtime.ReadMemStats(&mem0)
	t0 := time.Now()
	for i := 0; (len(latencies) < 200 || time.Now().Before(deadline)) && len(latencies) < maxQuerySamples; i++ {
		q0 := time.Now()
		fn(i)
		latencies = append(latencies, float64(time.Since(q0).Nanoseconds()))
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&mem1)

	iters := len(latencies)
	sort.Float64s(latencies)
	return queryMeasurement{
		iters:    iters,
		nsOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		p50Us:    percentile(latencies, 0.50) / 1000,
		p95Us:    percentile(latencies, 0.95) / 1000,
		allocsOp: math.Round(float64(mem1.Mallocs-mem0.Mallocs) / float64(iters)),
	}
}

// percentile reads the p-quantile from ascending-sorted samples by
// nearest rank. Returns 0 only for an empty slice, which the query loops
// cannot produce.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(p*float64(len(sorted)-1))]
}

// shardCounts expands the -shards flag into the sweep {1, 2, 4, ...},
// doubling up to and always including the requested maximum.
func shardCounts(maxShards int) []int {
	var counts []int
	for s := 1; s < maxShards; s *= 2 {
		counts = append(counts, s)
	}
	return append(counts, maxShards)
}

// runQueryBench builds the synthetic candidate space, times the index
// builds serial vs parallel, then drives the FastIndex query path with
// rotating query vectors and excluded partners (cold cache by design)
// through a warmed pooled scratch. shards > 1 adds the scatter-gather
// engine sweep.
func runQueryBench(nEvents, nPartners, k, topK, topN, shards, batch int, quantized bool, seed uint64, note, outPath string) error {
	if nEvents <= 0 || nPartners <= 0 || k <= 0 || topN <= 0 {
		return fmt.Errorf("query bench: events, partners, k and topn must be positive")
	}
	workers := runtime.GOMAXPROCS(0)
	src := rng.New(seed)
	events := signedVecs(src, nEvents, k)
	partners := signedVecs(src, nPartners, k)
	fmt.Printf("query bench: %d events × %d partners, K=%d, topk=%d, %d workers\n",
		nEvents, nPartners, k, topK, workers)

	ms := func(f func()) float64 {
		runtime.GC() // keep earlier builds' garbage out of this timing
		t0 := time.Now()
		f()
		return float64(time.Since(t0).Microseconds()) / 1000
	}

	run := queryBenchRun{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Note:      note,
		Events:    nEvents,
		Partners:  nPartners,
		K:         k,
		TopK:      topK,
		TopN:      topN,
		Workers:   workers,
	}

	// Untimed warmup build: the very first pass over the input vectors
	// pays first-touch page faults and cold caches. Running it outside
	// the timed pair keeps those one-time costs out of whichever variant
	// happens to run first — without this, the serial build (timed
	// first) absorbed the warmup and the parallel build looked faster
	// than it was on few-core machines.
	var cs *ta.CandidateSet
	var err error
	if _, err = ta.BuildCandidates(events, partners, ta.BuildConfig{TopKEvents: topK, Workers: workers}); err != nil {
		return err
	}
	run.BuildCandidatesSerialMs = ms(func() {
		cs, err = ta.BuildCandidates(events, partners, ta.BuildConfig{TopKEvents: topK, Workers: 1})
	})
	if err != nil {
		return err
	}
	run.BuildCandidatesParallelMs = ms(func() {
		cs, err = ta.BuildCandidates(events, partners, ta.BuildConfig{TopKEvents: topK, Workers: workers})
	})
	if err != nil {
		return err
	}
	run.Pairs = len(cs.Pairs)

	var f *ta.FastIndex
	run.FastIndexSerialMs = ms(func() { f = ta.NewFastIndexWorkers(cs, 1) })
	run.FastIndexParallelMs = ms(func() { f = ta.NewFastIndexWorkers(cs, workers) })
	run.FaginSerialMs = ms(func() { ta.NewIndexWorkers(cs, 1) })
	run.FaginParallelMs = ms(func() { ta.NewIndexWorkers(cs, workers) })

	fmt.Printf("  build candidates  serial %.1fms   parallel %.1fms   (%d pairs)\n",
		run.BuildCandidatesSerialMs, run.BuildCandidatesParallelMs, run.Pairs)
	fmt.Printf("  build fastindex   serial %.1fms   parallel %.1fms\n",
		run.FastIndexSerialMs, run.FastIndexParallelMs)
	fmt.Printf("  build fagin       serial %.1fms   parallel %.1fms\n",
		run.FaginSerialMs, run.FaginParallelMs)

	// Query loop: 256 rotating query vectors defeat any per-vector cache
	// effects; the excluded partner rotates too, matching the serving
	// pattern (a user excluded from their own results).
	queries := signedVecs(src, 256, k)
	sc := ta.GetScratch()
	defer ta.PutScratch(sc)
	f.TopNExcludingScratch(queries[0], topN, 0, sc) // warm the scratch

	m := measureQueries(func(i int) {
		f.TopNExcludingScratch(queries[i%len(queries)], topN, int32(i%nPartners), sc)
	})
	run.QueryIters = m.iters
	run.QueryNsOp = m.nsOp
	run.QueryP50Us = m.p50Us
	run.QueryP95Us = m.p95Us
	run.QueryAllocsOp = m.allocsOp

	fmt.Printf("  query (top-%d)    %.0f ns/op   p50 %.1fµs   p95 %.1fµs   %.0f allocs/op   (%d iters)\n",
		topN, run.QueryNsOp, run.QueryP50Us, run.QueryP95Us, run.QueryAllocsOp, m.iters)

	if batch > 1 {
		run.BatchCurve = runBatchSweep(f, queries, nPartners, topN, batch, run.QueryNsOp)
	}
	predCurve, err := runPredSweep(f, queries, nEvents, nPartners, topN)
	if err != nil {
		return err
	}
	run.PredCurve = predCurve
	if quantized {
		run.Quantized = runQuantizedBench(cs, f, queries, nPartners, topN)
	}

	if shards > 1 {
		curve, err := runShardSweep(events, partners, queries, topK, topN, shards, workers, ms)
		if err != nil {
			return err
		}
		run.ShardCurve = curve
	}

	load, err := runLoadBench(events, partners, queries, topK, topN, shards, workers, quantized)
	if err != nil {
		return err
	}
	run.Load = load

	if outPath != "" {
		if err := appendBenchRun(outPath, run); err != nil {
			return err
		}
		fmt.Println("appended run to", outPath)
	}
	return nil
}

// runBatchSweep measures the batched exact query path at each width in
// {1, 2, 4, ..., maxB}: TopNBatch shares one affinity-panel pass and one
// partner-bound pass per batch, so per-user cost drops as the width
// amortizes the candidate traversal.
func runBatchSweep(f *ta.FastIndex, queries [][]float32, nPartners, topN, maxB int, singleNsOp float64) []batchCurvePoint {
	fmt.Printf("  batch sweep (panel-batched exact queries, top-%d)\n", topN)
	bsc := ta.GetBatchScratch()
	defer ta.PutBatchScratch(bsc)
	var curve []batchCurvePoint
	users := make([][]float32, maxB)
	excl := make([]int32, maxB)
	for _, nb := range shardCounts(maxB) {
		us, ex := users[:nb], excl[:nb]
		fill := func(i int) {
			for j := 0; j < nb; j++ {
				us[j] = queries[(i*nb+j)%len(queries)]
				ex[j] = int32((i*nb + j) % nPartners)
			}
		}
		fill(0)
		f.TopNBatch(ta.BatchQuery{Users: us, N: topN, Exclude: ex}, bsc) // warm the scratch
		m := measureQueries(func(i int) {
			fill(i)
			f.TopNBatch(ta.BatchQuery{Users: us, N: topN, Exclude: ex}, bsc)
		})
		pt := batchCurvePoint{
			Batch:      nb,
			QueryIters: m.iters,
			NsUser:     m.nsOp / float64(nb),
			P50Us:      m.p50Us,
			P95Us:      m.p95Us,
			AllocsOp:   m.allocsOp,
		}
		if pt.NsUser > 0 {
			pt.SpeedupVsSingle = singleNsOp / pt.NsUser
		}
		curve = append(curve, pt)
		fmt.Printf("    batch=%d  %.0f ns/user (%.2fx vs single)   call p50 %.1fµs p95 %.1fµs   %.0f allocs/op\n",
			nb, pt.NsUser, pt.SpeedupVsSingle, pt.P50Us, pt.P95Us, pt.AllocsOp)
	}
	return curve
}

// runPredSweep measures the predicate push-down path against its
// post-filter oracle at event selectivities {50%, 25%, 10%, 5%}. The
// oracle answers the same constrained query without push-down: run the
// unconstrained walk, drop pairs whose event the predicate rejects, and
// escalate the fetch depth (×4) until the top-n allowed pairs surface —
// the strategy a caller without TA-level predicates is forced into.
// Every point is gated on bit-identity over sampled queries, and at
// selectivity ≤ 25% the push-down path must not be slower than the
// oracle; either failure aborts the bench run with an error.
func runPredSweep(f *ta.FastIndex, queries [][]float32, nEvents, nPartners, topN int) ([]predCurvePoint, error) {
	fmt.Printf("  predicate sweep (push-down vs post-filter, top-%d)\n", topN)
	sc := ta.GetScratch()
	defer ta.PutScratch(sc)

	postFilter := func(q []float32, ex int32, pred ta.EventPredicate, dst []ta.Result) []ta.Result {
		for over := topN; ; over *= 4 {
			res, _ := f.TopNExcludingScratch(q, over, ex, sc)
			dst = dst[:0]
			for _, r := range res {
				if pred[r.Event] {
					dst = append(dst, r)
					if len(dst) == topN {
						return dst
					}
				}
			}
			if len(res) < over {
				return dst // the candidate space is exhausted
			}
		}
	}

	var curve []predCurvePoint
	for _, stride := range []int{2, 4, 10, 20} {
		pred := make(ta.EventPredicate, nEvents)
		allowed := 0
		for e := range pred {
			if e%stride == 0 {
				pred[e] = true
				allowed++
			}
		}
		pt := predCurvePoint{
			SelectivityPct: 100 / float64(stride),
			AllowedEvents:  allowed,
		}

		// Bit-identity first: both paths rank by the same exact scores
		// with the same tie order, so the push-down result must equal the
		// filtered unconstrained ranking entry for entry, score bits
		// included.
		scratch := make([]ta.Result, 0, 4*topN)
		pt.BitIdentical = true
		for i := 0; i < 200 && pt.BitIdentical; i++ {
			q := queries[i%len(queries)]
			ex := int32(i % nPartners)
			want := postFilter(q, ex, pred, scratch)
			got, _ := f.TopNExcludingPredScratch(q, topN, ex, pred, sc)
			if len(want) != len(got) {
				pt.BitIdentical = false
				break
			}
			for j := range want {
				if want[j].Event != got[j].Event || want[j].Partner != got[j].Partner ||
					math.Float32bits(want[j].Score) != math.Float32bits(got[j].Score) {
					pt.BitIdentical = false
					break
				}
			}
		}
		if !pt.BitIdentical {
			return nil, fmt.Errorf("pred sweep: push-down diverges from the post-filter oracle at selectivity %.0f%%", pt.SelectivityPct)
		}

		f.TopNExcludingPredScratch(queries[0], topN, 0, pred, sc) // warm
		m := measureQueries(func(i int) {
			f.TopNExcludingPredScratch(queries[i%len(queries)], topN, int32(i%nPartners), pred, sc)
		})
		pt.PredNsOp, pt.PredP50Us, pt.PredP95Us = m.nsOp, m.p50Us, m.p95Us

		mp := measureQueries(func(i int) {
			postFilter(queries[i%len(queries)], int32(i%nPartners), pred, scratch)
		})
		pt.PostNsOp, pt.PostP50Us, pt.PostP95Us = mp.nsOp, mp.p50Us, mp.p95Us
		if pt.PredNsOp > 0 {
			pt.Speedup = pt.PostNsOp / pt.PredNsOp
		}

		curve = append(curve, pt)
		fmt.Printf("    selectivity=%.0f%%  push-down %.0f ns/op (p50 %.1fµs p95 %.1fµs)   post-filter %.0f ns/op (p50 %.1fµs p95 %.1fµs)   %.2fx   bit-identical\n",
			pt.SelectivityPct, pt.PredNsOp, pt.PredP50Us, pt.PredP95Us,
			pt.PostNsOp, pt.PostP50Us, pt.PostP95Us, pt.Speedup)
		if pt.SelectivityPct <= 25 && pt.PredNsOp > pt.PostNsOp {
			return nil, fmt.Errorf("pred sweep: push-down slower than post-filtering at selectivity %.0f%% (%.0f vs %.0f ns/op)",
				pt.SelectivityPct, pt.PredNsOp, pt.PostNsOp)
		}
	}
	return curve, nil
}

// runQuantizedBench packs the int8 mirrors and measures the quantized
// query path — single and batched at width 8 — plus recall@10 against
// the exact ranking over 200 held-out queries.
func runQuantizedBench(cs *ta.CandidateSet, f *ta.FastIndex, queries [][]float32, nPartners, topN int) *quantizedBench {
	t0 := time.Now()
	cs.PackQuantized()
	fmt.Printf("  quantized: int8 mirrors packed in %.1fms (~4x smaller candidate storage)\n",
		float64(time.Since(t0).Microseconds())/1000)

	sc := ta.GetScratch()
	defer ta.PutScratch(sc)
	f.TopNExcludingQuantizedScratch(queries[0], topN, 0, sc) // warm
	m := measureQueries(func(i int) {
		f.TopNExcludingQuantizedScratch(queries[i%len(queries)], topN, int32(i%nPartners), sc)
	})
	qb := &quantizedBench{
		QueryIters:    m.iters,
		QueryNsOp:     m.nsOp,
		QueryP50Us:    m.p50Us,
		QueryP95Us:    m.p95Us,
		QueryAllocsOp: m.allocsOp,
	}

	// Batched quantized at width 8, the serving coalescer's typical shape.
	const nb = 8
	bsc := ta.GetBatchScratch()
	defer ta.PutBatchScratch(bsc)
	users := make([][]float32, nb)
	excl := make([]int32, nb)
	fill := func(i int) {
		for j := 0; j < nb; j++ {
			users[j] = queries[(i*nb+j)%len(queries)]
			excl[j] = int32((i*nb + j) % nPartners)
		}
	}
	fill(0)
	f.TopNBatch(ta.BatchQuery{Users: users, N: topN, Exclude: excl, Quantized: true}, bsc)
	mb := measureQueries(func(i int) {
		fill(i)
		f.TopNBatch(ta.BatchQuery{Users: users, N: topN, Exclude: excl, Quantized: true}, bsc)
	})
	qb.Batch8NsUser = mb.nsOp / nb

	// recall@10 against the exact walk: the CI gate holds this ≥ 0.99.
	const rn = 10
	total, count := 0.0, 0
	for i := 0; i < 200; i++ {
		q := queries[i%len(queries)]
		ex := int32(i % nPartners)
		exact, _ := f.TopNExcludingScratch(q, rn, ex, sc)
		if len(exact) == 0 {
			continue
		}
		keys := make(map[[2]int32]bool, len(exact))
		for _, r := range exact {
			keys[[2]int32{r.Event, r.Partner}] = true
		}
		quant, _ := f.TopNExcludingQuantizedScratch(q, rn, ex, sc)
		hit := 0
		for _, r := range quant {
			if keys[[2]int32{r.Event, r.Partner}] {
				hit++
			}
		}
		total += float64(hit) / float64(len(exact))
		count++
	}
	if count > 0 {
		qb.RecallAt10 = total / float64(count)
	}

	fmt.Printf("    quantized query   %.0f ns/op   p50 %.1fµs   p95 %.1fµs   %.0f allocs/op   (%d iters)\n",
		qb.QueryNsOp, qb.QueryP50Us, qb.QueryP95Us, qb.QueryAllocsOp, qb.QueryIters)
	fmt.Printf("    quantized batch=8 %.0f ns/user   recall@10 %.4f\n", qb.Batch8NsUser, qb.RecallAt10)
	return qb
}

// runShardSweep measures the scatter-gather engine at each shard count
// in {1, 2, 4, ..., maxShards}. Alongside wall latency it records the
// critical-path percentiles — prepass + slowest shard + merge per query
// — which is what an N-core deployment would observe; on machines with
// fewer cores than shards the wall column instead shows the fan-out's
// scheduling overhead.
func runShardSweep(events, partners, queries [][]float32, topK, topN, maxShards, workers int, ms func(func()) float64) ([]shardCurvePoint, error) {
	fmt.Printf("  shard sweep (scatter-gather engine, top-%d)\n", topN)
	var curve []shardCurvePoint
	for _, ns := range shardCounts(maxShards) {
		var eng *engine.Engine
		var err error
		buildMs := ms(func() {
			eng, err = engine.Build(events, partners, engine.Config{Shards: ns, TopKEvents: topK, Workers: workers})
		})
		if err != nil {
			return nil, err
		}

		// Warm the engine's pooled fan-out scratch, then collect the
		// per-query critical path alongside the wall timing.
		if _, _, err := eng.Search(queries[0], topN, 0); err != nil {
			return nil, err
		}
		critical := make([]float64, 0, maxQuerySamples)
		var searchErr error
		m := measureQueries(func(i int) {
			_, st, err := eng.Search(queries[i%len(queries)], topN, int32(i%len(partners)))
			if err != nil && searchErr == nil {
				searchErr = err
			}
			critical = append(critical, float64(st.CriticalPath.Nanoseconds()))
		})
		if searchErr != nil {
			return nil, searchErr
		}
		sort.Float64s(critical)

		pt := shardCurvePoint{
			Shards:            ns,
			BuildMs:           buildMs,
			QueryIters:        m.iters,
			QueryNsOp:         m.nsOp,
			QueryP50Us:        m.p50Us,
			QueryP95Us:        m.p95Us,
			QueryAllocsOp:     m.allocsOp,
			CriticalPathP50Us: percentile(critical, 0.50) / 1000,
			CriticalPathP95Us: percentile(critical, 0.95) / 1000,
		}
		curve = append(curve, pt)
		fmt.Printf("    shards=%d  build %.1fms   wall %.0f ns/op (p50 %.1fµs p95 %.1fµs)   critical-path p50 %.1fµs p95 %.1fµs   %.0f allocs/op\n",
			ns, pt.BuildMs, pt.QueryNsOp, pt.QueryP50Us, pt.QueryP95Us,
			pt.CriticalPathP50Us, pt.CriticalPathP95Us, pt.QueryAllocsOp)
	}
	return curve, nil
}

// runLoadBench measures the zero-copy artifact path at the -shards
// shard count: build the engine, write its artifact, then stand up a
// second engine both ways — a full rebuild and an OpenArtifact map —
// timing each and reading the heap growth while the first engine stays
// resident (the reload double-occupancy peak). It then proves the
// mapped engine answers bit-identically to the rebuild over sampled
// queries; any divergence is an error, which makes the CI query-bench
// smoke a round-trip gate.
func runLoadBench(events, partners, queries [][]float32, topK, topN, shards, workers int, quantized bool) (*loadBench, error) {
	ns := shards
	if ns < 1 {
		ns = 1
	}
	cfg := engine.Config{Shards: ns, TopKEvents: topK, Workers: workers}
	prepare := func() (*engine.Engine, error) {
		eng, err := engine.Build(events, partners, cfg)
		if err != nil {
			return nil, err
		}
		if quantized {
			if err := eng.EnableQuantized(); err != nil {
				return nil, err
			}
		}
		return eng, nil
	}

	built, err := prepare()
	if err != nil {
		return nil, err
	}
	fp := ta.Fingerprint([]uint64{uint64(len(events[0])), uint64(topK), uint64(ns)}, events, partners)
	dir, err := os.MkdirTemp("", "ebsn-loadbench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "index.art")

	lb := &loadBench{Shards: ns, Quantized: quantized}
	t0 := time.Now()
	if err := built.SaveArtifact(path, fp); err != nil {
		return nil, err
	}
	lb.SaveMs = float64(time.Since(t0).Microseconds()) / 1000
	if st, err := os.Stat(path); err == nil {
		lb.ArtifactMB = float64(st.Size()) / (1 << 20)
	}

	// Both bring-up paths run with `built` resident, so the heap deltas
	// are the double-occupancy cost a zero-downtime reload pays.
	heapMB := func(f func() error) (float64, float64, error) {
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		t := time.Now()
		err := f()
		ms := float64(time.Since(t).Microseconds()) / 1000
		runtime.ReadMemStats(&m1)
		grew := float64(m1.HeapAlloc) - float64(m0.HeapAlloc)
		if grew < 0 {
			grew = 0
		}
		return ms, grew / (1 << 20), err
	}

	var rebuilt, mapped *engine.Engine
	lb.RebuildMs, lb.RebuildHeapMB, err = heapMB(func() error {
		rebuilt, err = prepare()
		return err
	})
	if err != nil {
		return nil, err
	}
	lb.MapMs, lb.MapHeapMB, err = heapMB(func() error {
		mapped, err = engine.OpenArtifact(path, fp)
		return err
	})
	if err != nil {
		return nil, err
	}
	if lb.MapMs > 0 {
		lb.Speedup = lb.RebuildMs / lb.MapMs
	}

	// Bit-identity over sampled queries: exact path always, quantized
	// path too when mirrors are in play.
	lb.BitIdentical = true
	for i := 0; i < 64 && lb.BitIdentical; i++ {
		q := queries[i%len(queries)]
		ex := int32(i % len(partners))
		want, _, err1 := rebuilt.Search(q, topN, ex)
		got, _, err2 := mapped.Search(q, topN, ex)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("load bench: search failed: %v / %v", err1, err2)
		}
		if len(want) != len(got) {
			lb.BitIdentical = false
			break
		}
		for j := range want {
			if want[j].Event != got[j].Event || want[j].Partner != got[j].Partner ||
				math.Float32bits(want[j].Score) != math.Float32bits(got[j].Score) {
				lb.BitIdentical = false
				break
			}
		}
	}
	if !lb.BitIdentical {
		return nil, fmt.Errorf("load bench: mapped engine diverges from rebuilt engine (artifact round-trip broken)")
	}

	fmt.Printf("  artifact load (shards=%d%s)  rebuild %.1fms (+%.1f MiB heap)   map %.2fms (+%.1f MiB heap)   %.0fx faster   save %.1fms   %.1f MiB file   bit-identical\n",
		ns, map[bool]string{true: ", quantized"}[quantized], lb.RebuildMs, lb.RebuildHeapMB,
		lb.MapMs, lb.MapHeapMB, lb.Speedup, lb.SaveMs, lb.ArtifactMB)
	return lb, nil
}

// signedVecs draws n random K-vectors with signed N(0, 1/K) entries —
// the same distribution the trained embeddings roughly follow.
func signedVecs(src *rng.Source, n, k int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, k)
		for f := range v {
			v[f] = float32(src.NormFloat64()) / float32(k)
		}
		out[i] = v
	}
	return out
}
