// The -query experiment: micro-benchmark the TA query hot path and the
// index builds on synthetic vectors — no dataset generation or training,
// so the numbers isolate the retrieval engine. Results append to
// BENCH_query.json, making hot-path regressions (latency, allocations,
// build scaling) measurable across PRs. With -shards N it additionally
// sweeps the scatter-gather engine across shard counts {1, 2, 4, ..., N}
// and appends the scaling curve to the same record.
package main

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"ebsn/internal/engine"
	"ebsn/internal/rng"
	"ebsn/internal/ta"
)

// queryBenchRun is one appended record in the BENCH_query.json
// trajectory.
type queryBenchRun struct {
	Timestamp string `json:"timestamp"`
	Note      string `json:"note,omitempty"`
	Events    int    `json:"events"`
	Partners  int    `json:"partners"`
	K         int    `json:"k"`
	TopK      int    `json:"topk"`
	TopN      int    `json:"topn"`
	Pairs     int    `json:"pairs"`
	Workers   int    `json:"workers"`

	BuildCandidatesSerialMs   float64 `json:"build_candidates_serial_ms"`
	BuildCandidatesParallelMs float64 `json:"build_candidates_parallel_ms"`
	FastIndexSerialMs         float64 `json:"fastindex_serial_ms"`
	FastIndexParallelMs       float64 `json:"fastindex_parallel_ms"`
	FaginSerialMs             float64 `json:"fagin_serial_ms"`
	FaginParallelMs           float64 `json:"fagin_parallel_ms"`

	QueryIters    int     `json:"query_iters"`
	QueryNsOp     float64 `json:"query_ns_op"`
	QueryP50Us    float64 `json:"query_p50_us"`
	QueryP95Us    float64 `json:"query_p95_us"`
	QueryAllocsOp float64 `json:"query_allocs_op"`

	ShardCurve []shardCurvePoint `json:"shard_curve,omitempty"`
}

// shardCurvePoint is one shard count's measurement in the scatter-gather
// scaling sweep. Wall numbers are end-to-end engine.Search latency on
// this machine; the critical-path columns are the engine's simulated
// N-core latency (prepass + slowest shard + merge), which is the honest
// scaling signal on boxes with fewer cores than shards.
type shardCurvePoint struct {
	Shards            int     `json:"shards"`
	BuildMs           float64 `json:"build_ms"`
	QueryIters        int     `json:"query_iters"`
	QueryNsOp         float64 `json:"query_ns_op"`
	QueryP50Us        float64 `json:"query_p50_us"`
	QueryP95Us        float64 `json:"query_p95_us"`
	QueryAllocsOp     float64 `json:"query_allocs_op"`
	CriticalPathP50Us float64 `json:"critical_path_p50_us"`
	CriticalPathP95Us float64 `json:"critical_path_p95_us"`
}

// maxQuerySamples caps each query loop's latency buffer. The buffer is
// allocated once, before the baseline MemStats read, so the measured
// loop never grows it — earlier runs re-appended past capacity, charging
// slice reallocations to the query path and turning query_allocs_op
// fractional.
const maxQuerySamples = 1 << 17

// queryMeasurement is one timed query loop's summary. Percentiles are
// always computed from the recorded samples (the loop guarantees at
// least 200), never left zero, and allocs/op is rounded to the integer
// the steady-state path actually performs.
type queryMeasurement struct {
	iters    int
	nsOp     float64
	p50Us    float64
	p95Us    float64
	allocsOp float64
}

// measureQueries drives fn for at least 200 iterations and then until
// the 2-second deadline, timing each call. fn receives the iteration
// index for rotating query vectors/exclusions.
func measureQueries(fn func(i int)) queryMeasurement {
	latencies := make([]float64, 0, maxQuerySamples)
	var mem0, mem1 runtime.MemStats
	runtime.GC()
	deadline := time.Now().Add(2 * time.Second)
	runtime.ReadMemStats(&mem0)
	t0 := time.Now()
	for i := 0; (len(latencies) < 200 || time.Now().Before(deadline)) && len(latencies) < maxQuerySamples; i++ {
		q0 := time.Now()
		fn(i)
		latencies = append(latencies, float64(time.Since(q0).Nanoseconds()))
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&mem1)

	iters := len(latencies)
	sort.Float64s(latencies)
	return queryMeasurement{
		iters:    iters,
		nsOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		p50Us:    percentile(latencies, 0.50) / 1000,
		p95Us:    percentile(latencies, 0.95) / 1000,
		allocsOp: math.Round(float64(mem1.Mallocs-mem0.Mallocs) / float64(iters)),
	}
}

// percentile reads the p-quantile from ascending-sorted samples by
// nearest rank. Returns 0 only for an empty slice, which the query loops
// cannot produce.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(p*float64(len(sorted)-1))]
}

// shardCounts expands the -shards flag into the sweep {1, 2, 4, ...},
// doubling up to and always including the requested maximum.
func shardCounts(maxShards int) []int {
	var counts []int
	for s := 1; s < maxShards; s *= 2 {
		counts = append(counts, s)
	}
	return append(counts, maxShards)
}

// runQueryBench builds the synthetic candidate space, times the index
// builds serial vs parallel, then drives the FastIndex query path with
// rotating query vectors and excluded partners (cold cache by design)
// through a warmed pooled scratch. shards > 1 adds the scatter-gather
// engine sweep.
func runQueryBench(nEvents, nPartners, k, topK, topN, shards int, seed uint64, note, outPath string) error {
	if nEvents <= 0 || nPartners <= 0 || k <= 0 || topN <= 0 {
		return fmt.Errorf("query bench: events, partners, k and topn must be positive")
	}
	workers := runtime.GOMAXPROCS(0)
	src := rng.New(seed)
	events := signedVecs(src, nEvents, k)
	partners := signedVecs(src, nPartners, k)
	fmt.Printf("query bench: %d events × %d partners, K=%d, topk=%d, %d workers\n",
		nEvents, nPartners, k, topK, workers)

	ms := func(f func()) float64 {
		runtime.GC() // keep earlier builds' garbage out of this timing
		t0 := time.Now()
		f()
		return float64(time.Since(t0).Microseconds()) / 1000
	}

	run := queryBenchRun{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Note:      note,
		Events:    nEvents,
		Partners:  nPartners,
		K:         k,
		TopK:      topK,
		TopN:      topN,
		Workers:   workers,
	}

	// Untimed warmup build: the very first pass over the input vectors
	// pays first-touch page faults and cold caches. Running it outside
	// the timed pair keeps those one-time costs out of whichever variant
	// happens to run first — without this, the serial build (timed
	// first) absorbed the warmup and the parallel build looked faster
	// than it was on few-core machines.
	var cs *ta.CandidateSet
	var err error
	if _, err = ta.BuildCandidates(events, partners, ta.BuildConfig{TopKEvents: topK, Workers: workers}); err != nil {
		return err
	}
	run.BuildCandidatesSerialMs = ms(func() {
		cs, err = ta.BuildCandidates(events, partners, ta.BuildConfig{TopKEvents: topK, Workers: 1})
	})
	if err != nil {
		return err
	}
	run.BuildCandidatesParallelMs = ms(func() {
		cs, err = ta.BuildCandidates(events, partners, ta.BuildConfig{TopKEvents: topK, Workers: workers})
	})
	if err != nil {
		return err
	}
	run.Pairs = len(cs.Pairs)

	var f *ta.FastIndex
	run.FastIndexSerialMs = ms(func() { f = ta.NewFastIndexWorkers(cs, 1) })
	run.FastIndexParallelMs = ms(func() { f = ta.NewFastIndexWorkers(cs, workers) })
	run.FaginSerialMs = ms(func() { ta.NewIndexWorkers(cs, 1) })
	run.FaginParallelMs = ms(func() { ta.NewIndexWorkers(cs, workers) })

	fmt.Printf("  build candidates  serial %.1fms   parallel %.1fms   (%d pairs)\n",
		run.BuildCandidatesSerialMs, run.BuildCandidatesParallelMs, run.Pairs)
	fmt.Printf("  build fastindex   serial %.1fms   parallel %.1fms\n",
		run.FastIndexSerialMs, run.FastIndexParallelMs)
	fmt.Printf("  build fagin       serial %.1fms   parallel %.1fms\n",
		run.FaginSerialMs, run.FaginParallelMs)

	// Query loop: 256 rotating query vectors defeat any per-vector cache
	// effects; the excluded partner rotates too, matching the serving
	// pattern (a user excluded from their own results).
	queries := signedVecs(src, 256, k)
	sc := ta.GetScratch()
	defer ta.PutScratch(sc)
	f.TopNExcludingScratch(queries[0], topN, 0, sc) // warm the scratch

	m := measureQueries(func(i int) {
		f.TopNExcludingScratch(queries[i%len(queries)], topN, int32(i%nPartners), sc)
	})
	run.QueryIters = m.iters
	run.QueryNsOp = m.nsOp
	run.QueryP50Us = m.p50Us
	run.QueryP95Us = m.p95Us
	run.QueryAllocsOp = m.allocsOp

	fmt.Printf("  query (top-%d)    %.0f ns/op   p50 %.1fµs   p95 %.1fµs   %.0f allocs/op   (%d iters)\n",
		topN, run.QueryNsOp, run.QueryP50Us, run.QueryP95Us, run.QueryAllocsOp, m.iters)

	if shards > 1 {
		curve, err := runShardSweep(events, partners, queries, topK, topN, shards, workers, ms)
		if err != nil {
			return err
		}
		run.ShardCurve = curve
	}

	if outPath != "" {
		if err := appendBenchRun(outPath, run); err != nil {
			return err
		}
		fmt.Println("appended run to", outPath)
	}
	return nil
}

// runShardSweep measures the scatter-gather engine at each shard count
// in {1, 2, 4, ..., maxShards}. Alongside wall latency it records the
// critical-path percentiles — prepass + slowest shard + merge per query
// — which is what an N-core deployment would observe; on machines with
// fewer cores than shards the wall column instead shows the fan-out's
// scheduling overhead.
func runShardSweep(events, partners, queries [][]float32, topK, topN, maxShards, workers int, ms func(func()) float64) ([]shardCurvePoint, error) {
	fmt.Printf("  shard sweep (scatter-gather engine, top-%d)\n", topN)
	var curve []shardCurvePoint
	for _, ns := range shardCounts(maxShards) {
		var eng *engine.Engine
		var err error
		buildMs := ms(func() {
			eng, err = engine.Build(events, partners, engine.Config{Shards: ns, TopKEvents: topK, Workers: workers})
		})
		if err != nil {
			return nil, err
		}

		// Warm the engine's pooled fan-out scratch, then collect the
		// per-query critical path alongside the wall timing.
		if _, _, err := eng.Search(queries[0], topN, 0); err != nil {
			return nil, err
		}
		critical := make([]float64, 0, maxQuerySamples)
		var searchErr error
		m := measureQueries(func(i int) {
			_, st, err := eng.Search(queries[i%len(queries)], topN, int32(i%len(partners)))
			if err != nil && searchErr == nil {
				searchErr = err
			}
			critical = append(critical, float64(st.CriticalPath.Nanoseconds()))
		})
		if searchErr != nil {
			return nil, searchErr
		}
		sort.Float64s(critical)

		pt := shardCurvePoint{
			Shards:            ns,
			BuildMs:           buildMs,
			QueryIters:        m.iters,
			QueryNsOp:         m.nsOp,
			QueryP50Us:        m.p50Us,
			QueryP95Us:        m.p95Us,
			QueryAllocsOp:     m.allocsOp,
			CriticalPathP50Us: percentile(critical, 0.50) / 1000,
			CriticalPathP95Us: percentile(critical, 0.95) / 1000,
		}
		curve = append(curve, pt)
		fmt.Printf("    shards=%d  build %.1fms   wall %.0f ns/op (p50 %.1fµs p95 %.1fµs)   critical-path p50 %.1fµs p95 %.1fµs   %.0f allocs/op\n",
			ns, pt.BuildMs, pt.QueryNsOp, pt.QueryP50Us, pt.QueryP95Us,
			pt.CriticalPathP50Us, pt.CriticalPathP95Us, pt.QueryAllocsOp)
	}
	return curve, nil
}

// signedVecs draws n random K-vectors with signed N(0, 1/K) entries —
// the same distribution the trained embeddings roughly follow.
func signedVecs(src *rng.Source, n, k int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, k)
		for f := range v {
			v[f] = float32(src.NormFloat64()) / float32(k)
		}
		out[i] = v
	}
	return out
}
