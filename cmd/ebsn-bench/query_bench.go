// The -query experiment: micro-benchmark the TA query hot path and the
// index builds on synthetic vectors — no dataset generation or training,
// so the numbers isolate the retrieval engine. Results append to
// BENCH_query.json, making hot-path regressions (latency, allocations,
// build scaling) measurable across PRs.
package main

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"ebsn/internal/rng"
	"ebsn/internal/ta"
)

// queryBenchRun is one appended record in the BENCH_query.json
// trajectory.
type queryBenchRun struct {
	Timestamp string `json:"timestamp"`
	Note      string `json:"note,omitempty"`
	Events    int    `json:"events"`
	Partners  int    `json:"partners"`
	K         int    `json:"k"`
	TopK      int    `json:"topk"`
	TopN      int    `json:"topn"`
	Pairs     int    `json:"pairs"`
	Workers   int    `json:"workers"`

	BuildCandidatesSerialMs   float64 `json:"build_candidates_serial_ms"`
	BuildCandidatesParallelMs float64 `json:"build_candidates_parallel_ms"`
	FastIndexSerialMs         float64 `json:"fastindex_serial_ms"`
	FastIndexParallelMs       float64 `json:"fastindex_parallel_ms"`
	FaginSerialMs             float64 `json:"fagin_serial_ms"`
	FaginParallelMs           float64 `json:"fagin_parallel_ms"`

	QueryIters    int     `json:"query_iters"`
	QueryNsOp     float64 `json:"query_ns_op"`
	QueryP50Us    float64 `json:"query_p50_us"`
	QueryP95Us    float64 `json:"query_p95_us"`
	QueryAllocsOp float64 `json:"query_allocs_op"`
}

// runQueryBench builds the synthetic candidate space, times the index
// builds serial vs parallel, then drives the FastIndex query path with
// rotating query vectors and excluded partners (cold cache by design)
// through a warmed pooled scratch.
func runQueryBench(nEvents, nPartners, k, topK, topN int, seed uint64, note, outPath string) error {
	if nEvents <= 0 || nPartners <= 0 || k <= 0 || topN <= 0 {
		return fmt.Errorf("query bench: events, partners, k and topn must be positive")
	}
	workers := runtime.GOMAXPROCS(0)
	src := rng.New(seed)
	events := signedVecs(src, nEvents, k)
	partners := signedVecs(src, nPartners, k)
	fmt.Printf("query bench: %d events × %d partners, K=%d, topk=%d, %d workers\n",
		nEvents, nPartners, k, topK, workers)

	ms := func(f func()) float64 {
		runtime.GC() // keep earlier builds' garbage out of this timing
		t0 := time.Now()
		f()
		return float64(time.Since(t0).Microseconds()) / 1000
	}

	run := queryBenchRun{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Note:      note,
		Events:    nEvents,
		Partners:  nPartners,
		K:         k,
		TopK:      topK,
		TopN:      topN,
		Workers:   workers,
	}

	var cs *ta.CandidateSet
	var err error
	run.BuildCandidatesSerialMs = ms(func() {
		cs, err = ta.BuildCandidates(events, partners, ta.BuildConfig{TopKEvents: topK, Workers: 1})
	})
	if err != nil {
		return err
	}
	run.BuildCandidatesParallelMs = ms(func() {
		cs, err = ta.BuildCandidates(events, partners, ta.BuildConfig{TopKEvents: topK, Workers: workers})
	})
	if err != nil {
		return err
	}
	run.Pairs = len(cs.Pairs)

	var f *ta.FastIndex
	run.FastIndexSerialMs = ms(func() { f = ta.NewFastIndexWorkers(cs, 1) })
	run.FastIndexParallelMs = ms(func() { f = ta.NewFastIndexWorkers(cs, workers) })
	run.FaginSerialMs = ms(func() { ta.NewIndexWorkers(cs, 1) })
	run.FaginParallelMs = ms(func() { ta.NewIndexWorkers(cs, workers) })

	fmt.Printf("  build candidates  serial %.1fms   parallel %.1fms   (%d pairs)\n",
		run.BuildCandidatesSerialMs, run.BuildCandidatesParallelMs, run.Pairs)
	fmt.Printf("  build fastindex   serial %.1fms   parallel %.1fms\n",
		run.FastIndexSerialMs, run.FastIndexParallelMs)
	fmt.Printf("  build fagin       serial %.1fms   parallel %.1fms\n",
		run.FaginSerialMs, run.FaginParallelMs)

	// Query loop: 256 rotating query vectors defeat any per-vector cache
	// effects; the excluded partner rotates too, matching the serving
	// pattern (a user excluded from their own results).
	queries := signedVecs(src, 256, k)
	sc := ta.GetScratch()
	defer ta.PutScratch(sc)
	f.TopNExcludingScratch(queries[0], topN, 0, sc) // warm the scratch

	var mem0, mem1 runtime.MemStats
	latencies := make([]float64, 0, 4096)
	deadline := time.Now().Add(2 * time.Second)
	runtime.ReadMemStats(&mem0)
	t0 := time.Now()
	for i := 0; len(latencies) < 200 || time.Now().Before(deadline); i++ {
		q0 := time.Now()
		f.TopNExcludingScratch(queries[i%len(queries)], topN, int32(i%nPartners), sc)
		latencies = append(latencies, float64(time.Since(q0).Nanoseconds()))
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&mem1)

	iters := len(latencies)
	sort.Float64s(latencies)
	q := func(p float64) float64 { return latencies[int(p*float64(iters-1))] / 1000 }
	run.QueryIters = iters
	run.QueryNsOp = float64(elapsed.Nanoseconds()) / float64(iters)
	run.QueryP50Us = q(0.50)
	run.QueryP95Us = q(0.95)
	run.QueryAllocsOp = float64(mem1.Mallocs-mem0.Mallocs) / float64(iters)

	fmt.Printf("  query (top-%d)    %.0f ns/op   p50 %.1fµs   p95 %.1fµs   %.2f allocs/op   (%d iters)\n",
		topN, run.QueryNsOp, run.QueryP50Us, run.QueryP95Us, run.QueryAllocsOp, iters)

	if outPath != "" {
		if err := appendBenchRun(outPath, run); err != nil {
			return err
		}
		fmt.Println("appended run to", outPath)
	}
	return nil
}

// signedVecs draws n random K-vectors with signed N(0, 1/K) entries —
// the same distribution the trained embeddings roughly follow.
func signedVecs(src *rng.Source, n, k int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, k)
		for f := range v {
			v[f] = float32(src.NormFloat64()) / float32(k)
		}
		out[i] = v
	}
	return out
}

