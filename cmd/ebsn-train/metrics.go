package main

import (
	"net/http"
	"sync"
	"time"

	"ebsn"
	"ebsn/internal/obs"
)

// checkpointBoundsSeconds buckets atomic-snapshot write times: tiny-city
// checkpoints land in milliseconds, Shanghai-scale ones in seconds.
var checkpointBoundsSeconds = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// trainMetrics is the -metrics-addr instrument panel over a training
// run: live step/draw counters read from the model's lock-free
// telemetry at scrape time, throughput and objective gauges set by the
// progress loop, and a checkpoint-duration histogram. A nil
// *trainMetrics is valid and records nothing, so the training loop
// stays unconditional.
type trainMetrics struct {
	reg   *obs.Registry
	model *ebsn.Model

	mu    sync.Mutex
	prev  map[string]int64
	draws *obs.CounterVec

	stepsPerSec *obs.Gauge
	objective   *obs.Gauge
	ckpts       *obs.Counter
	ckptHist    *obs.Histogram
}

func newTrainMetrics(model *ebsn.Model) *trainMetrics {
	tm := &trainMetrics{
		reg:   obs.NewRegistry(),
		model: model,
		prev:  make(map[string]int64),
	}
	start := time.Now()
	tm.reg.GaugeFunc("ebsn_train_uptime_seconds",
		"Seconds since the training process started.",
		func() float64 { return time.Since(start).Seconds() })
	tm.reg.CounterFunc("ebsn_train_steps_total",
		"Gradient steps completed by this process (live; excludes steps restored from a resumed checkpoint).",
		func() uint64 { return uint64(model.TrainStats().Steps) })
	tm.reg.GaugeFunc("ebsn_train_schedule_step",
		"Decay-schedule position, including steps restored on resume.",
		func() float64 { return float64(model.Steps()) })
	tm.reg.GaugeFunc("ebsn_train_schedule_total_steps",
		"Configured training budget N.",
		func() float64 { return float64(model.Cfg.TotalSteps) })
	tm.draws = tm.reg.CounterVec("ebsn_train_edge_draws_total",
		"Positive edges drawn per relation graph (Algorithm 2 Line 3 distribution).",
		"graph")
	tm.reg.CounterFunc("ebsn_train_rank_rebuilds_total",
		"Adaptive-sampler ranking refreshes, including build-time initials.",
		func() uint64 { return uint64(model.TrainStats().RankRebuilds) })
	tm.reg.GaugeFunc("ebsn_train_rank_rebuild_seconds_total",
		"Cumulative wall-clock seconds spent refreshing sampler rankings.",
		func() float64 { return model.TrainStats().RankRebuildTotal.Seconds() })
	tm.reg.GaugeFunc("ebsn_train_rank_rebuild_last_seconds",
		"Duration of the most recent ranking refresh.",
		func() float64 { return model.TrainStats().RankRebuildLast.Seconds() })
	tm.stepsPerSec = tm.reg.Gauge("ebsn_train_steps_per_second",
		"Training throughput over the last progress window.")
	tm.objective = tm.reg.Gauge("ebsn_train_objective_estimate",
		"Sampled training-objective estimate from the last progress report.")
	tm.ckpts = tm.reg.Counter("ebsn_train_checkpoints_total",
		"Atomic model checkpoints written.")
	tm.ckptHist = tm.reg.Histogram("ebsn_train_checkpoint_duration_seconds",
		"Wall-clock time per atomic checkpoint write.", checkpointBoundsSeconds)
	return tm
}

// syncDraws folds the model's per-graph draw totals into the labeled
// counter vec as deltas, called at scrape time so the exposition is
// exact at the instant it renders.
func (tm *trainMetrics) syncDraws() {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	st := tm.model.TrainStats()
	for g, n := range st.EdgeDraws {
		if d := n - tm.prev[g]; d > 0 {
			tm.draws.With(g).Add(uint64(d))
			tm.prev[g] = n
		}
	}
}

// serve starts the exposition listener in a goroutine. onErr receives
// the listener's terminal error (nil ignores it).
func (tm *trainMetrics) serve(addr string, onErr func(error)) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		tm.syncDraws()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = tm.reg.WritePrometheus(w)
	})
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil && onErr != nil {
			onErr(err)
		}
	}()
}

// setRate records the last progress window's throughput.
func (tm *trainMetrics) setRate(stepsPerSec float64) {
	if tm != nil {
		tm.stepsPerSec.Set(stepsPerSec)
	}
}

// setObjective records the last sampled objective estimate.
func (tm *trainMetrics) setObjective(v float64) {
	if tm != nil {
		tm.objective.Set(v)
	}
}

// observeCheckpoint records one checkpoint write.
func (tm *trainMetrics) observeCheckpoint(d time.Duration) {
	if tm != nil {
		tm.ckpts.Inc()
		tm.ckptHist.Observe(d)
	}
}
