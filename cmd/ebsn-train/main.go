// ebsn-train generates (or imports) an EBSN dataset, trains a GEM model
// on it, and saves the dataset and learned embeddings for ebsn-recommend
// and ebsn-serve.
//
// Training is crash-safe: -checkpoint-every writes periodic atomic
// snapshots (temp file + fsync + rename, so a kill mid-write never
// corrupts the previous checkpoint), SIGINT/SIGTERM stops at a step
// boundary and checkpoints before exiting, and -resume continues an
// interrupted run — including its learning-rate decay schedule — from
// the saved step counter.
//
// Usage:
//
//	ebsn-train -city small -out ./run                    # generate + train
//	ebsn-train -data ./run/dataset -out ./run            # retrain on saved data
//	ebsn-train -city tiny -variant pte -steps 500000 -out ./run
//	ebsn-train -city small -out ./run -checkpoint-every 1000000
//	ebsn-train -city small -out ./run -resume            # continue after a crash/SIGINT
//
// Long runs are observable: -metrics-addr exposes Prometheus text
// (steps, per-graph edge draws, sampler rank-rebuild latency,
// checkpoint durations, throughput and objective gauges) and
// -debug-addr mounts net/http/pprof, both off the training hot path.
// See OPERATIONS.md for the metric reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"ebsn"
	"ebsn/internal/obs"
)

func main() {
	var (
		city      = flag.String("city", "small", "dataset scale: tiny small beijing shanghai")
		data      = flag.String("data", "", "existing dataset directory (skips generation)")
		out       = flag.String("out", "ebsn-run", "output directory")
		variant   = flag.String("variant", "gem-a", "model variant: gem-a gem-p pte")
		seed      = flag.Uint64("seed", 1, "generation/training seed")
		steps     = flag.Int64("steps", 0, "training budget N (0 = ~25 samples per edge)")
		k         = flag.Int("k", 60, "embedding dimension")
		threads   = flag.Int("threads", 4, "Hogwild training threads")
		ckptEvery = flag.Int64("checkpoint-every", 0, "write an atomic model checkpoint every N steps (0 = only at the end)")
		resume    = flag.Bool("resume", false, "resume from the checkpoint in -out, continuing its decay schedule")
		objSample = flag.Int("objective-samples", 4096, "edges sampled per progress report for the objective estimate (0 disables)")
		artShards = flag.Int("artifact-shards", 1, "shard count of the zero-copy index artifact written to <out>/index.art after training (0 skips the artifact)")
		metrics   = flag.String("metrics-addr", "", "Prometheus exposition listener (e.g. localhost:9090; empty disables)")
		debugAddr = flag.String("debug-addr", "", "net/http/pprof listener address (e.g. localhost:6060; empty disables)")
	)
	flag.Parse()

	v, err := ebsn.ParseVariant(*variant)
	if err != nil {
		fatal(err)
	}
	cfg := ebsn.Config{
		Seed:       *seed,
		Variant:    v,
		K:          *k,
		TrainSteps: *steps,
		Threads:    *threads,
	}
	modelPath := filepath.Join(*out, "model.gob")
	dataDir := filepath.Join(*out, "dataset")

	// On resume, prefer the dataset saved next to the checkpoint so the
	// graphs match the embeddings exactly.
	if *resume && *data == "" {
		if _, statErr := os.Stat(dataDir); statErr == nil {
			*data = dataDir
		}
	}

	var dataset *ebsn.Dataset
	if *data != "" {
		fmt.Printf("loading dataset from %s...\n", *data)
		dataset, err = ebsn.LoadDatasetCSV(*data)
		if err != nil {
			fatal(err)
		}
	} else {
		cityID, err := ebsn.ParseCity(*city)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("generating %s dataset (seed %d)...\n", cityID, *seed)
		dataset, err = ebsn.GenerateDataset(ebsn.GeneratorConfigFor(cityID, *seed))
		if err != nil {
			fatal(err)
		}
	}
	fmt.Println("dataset:", dataset.Stats())

	rec, err := ebsn.Assemble(dataset, cfg)
	if err != nil {
		fatal(err)
	}
	model := rec.Model()

	if *resume {
		snap, err := ebsn.LoadModelSnapshot(modelPath)
		if err != nil {
			fatal(fmt.Errorf("resume: %w", err))
		}
		if err := model.RestoreSnapshot(snap); err != nil {
			fatal(fmt.Errorf("resume: %w (did -city/-k/-data change since the checkpoint?)", err))
		}
		fmt.Printf("resumed from %s at step %d/%d\n", modelPath, model.Steps(), model.Cfg.TotalSteps)
	}

	// The dataset (filtered) is saved before training so a crashed run's
	// checkpoint is loadable by -resume and ebsn-serve immediately.
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	if err := ebsn.SaveDatasetCSV(rec.Dataset(), dataDir); err != nil {
		fatal(err)
	}

	// SIGINT/SIGTERM cancels training at a step boundary; the loop below
	// then checkpoints what was learned and exits cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var tm *trainMetrics
	if *metrics != "" {
		tm = newTrainMetrics(model)
		tm.serve(*metrics, func(err error) { fmt.Fprintln(os.Stderr, "ebsn-train: metrics listener:", err) })
		fmt.Printf("metrics at http://%s/metrics\n", *metrics)
	}
	if *debugAddr != "" {
		obs.ServeDebug(*debugAddr, func(err error) { fmt.Fprintln(os.Stderr, "ebsn-train: pprof listener:", err) })
		fmt.Printf("pprof at http://%s/debug/pprof/\n", *debugAddr)
	}
	saveCheckpoint := func() error {
		t0 := time.Now()
		if err := rec.SaveModel(modelPath); err != nil {
			return err
		}
		tm.observeCheckpoint(time.Since(t0))
		return nil
	}

	total := model.Cfg.TotalSteps
	start := time.Now()
	interrupted := false
	for model.Steps() < total {
		batch := total - model.Steps()
		if *ckptEvery > 0 && batch > *ckptEvery {
			batch = *ckptEvery
		}
		t0 := time.Now()
		taken := model.TrainStepsCtx(ctx, batch)
		if taken > 0 {
			logProgress(rec, tm, taken, time.Since(t0), total, *objSample)
		}
		if *ckptEvery > 0 || ctx.Err() != nil {
			if err := saveCheckpoint(); err != nil {
				fatal(err)
			}
		}
		if ctx.Err() != nil {
			interrupted = true
			break
		}
	}

	if interrupted {
		fmt.Printf("interrupted at step %d/%d; checkpoint saved to %s\n", model.Steps(), total, modelPath)
		fmt.Printf("resume with: ebsn-train -out %s -resume\n", *out)
		return
	}

	if err := saveCheckpoint(); err != nil {
		fatal(err)
	}
	fmt.Printf("trained %s in %.1fs (%d steps)\n", v, time.Since(start).Seconds(), model.Steps())
	fmt.Printf("saved filtered dataset to %s and model to %s\n", dataDir, modelPath)

	// Build the joint index once here and persist it as a zero-copy
	// artifact, so ebsn-serve -model starts by mapping it instead of
	// rebuilding. pruneK mirrors the daemon's default (the paper's
	// 5%-of-test-events heuristic) so a default serve run's fingerprint
	// matches. Best-effort: a failed artifact only costs the daemon one
	// rebuild on its next start.
	if *artShards > 0 {
		artPath := filepath.Join(*out, "index.art")
		t0 := time.Now()
		pk := len(rec.Split().TestEvents) / 20
		if pk < 1 {
			pk = 1
		}
		err := rec.PrepareJointSharded(pk, *artShards)
		if err == nil {
			// Include the int8 mirrors so quantized serving maps too.
			err = rec.EnableQuantizedQueries()
		}
		if err == nil {
			err = rec.SaveIndexArtifact(artPath)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ebsn-train: index artifact skipped: %v\n", err)
		} else {
			fmt.Printf("built joint index (pruneK=%d, %d shard(s)) and saved zero-copy artifact to %s in %.1fs\n",
				pk, *artShards, artPath, time.Since(t0).Seconds())
		}
	}
	fmt.Println("next: ebsn-recommend -run", *out, "-user 0")
}

// logProgress prints one training progress line — position in the
// budget, throughput for the batch, and a sampled objective estimate —
// and mirrors the window's throughput and objective into the metrics
// panel (tm may be nil).
func logProgress(rec *ebsn.Recommender, tm *trainMetrics, taken int64, elapsed time.Duration, total int64, objSamples int) {
	model := rec.Model()
	rate := float64(taken) / elapsed.Seconds()
	tm.setRate(rate)
	line := fmt.Sprintf("step %d/%d (%.1f%%) | %.0f steps/s", model.Steps(), total,
		100*float64(model.Steps())/float64(total), rate)
	if objSamples > 0 {
		if est, err := rec.TrainingObjective(objSamples); err == nil {
			line += fmt.Sprintf(" | objective ~%.4f (%d samples)", est.Total, est.Samples)
			tm.setObjective(est.Total)
		}
	}
	fmt.Println(line)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ebsn-train:", err)
	os.Exit(1)
}
