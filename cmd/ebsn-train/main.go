// ebsn-train generates (or imports) an EBSN dataset, trains a GEM model
// on it, and saves the dataset and learned embeddings for ebsn-recommend.
//
// Usage:
//
//	ebsn-train -city small -out ./run            # generate + train
//	ebsn-train -data ./run/dataset -out ./run    # retrain on saved data
//	ebsn-train -city tiny -variant pte -steps 500000 -out ./run
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ebsn"
)

func main() {
	var (
		city    = flag.String("city", "small", "dataset scale: tiny small beijing shanghai")
		data    = flag.String("data", "", "existing dataset directory (skips generation)")
		out     = flag.String("out", "ebsn-run", "output directory")
		variant = flag.String("variant", "gem-a", "model variant: gem-a gem-p pte")
		seed    = flag.Uint64("seed", 1, "generation/training seed")
		steps   = flag.Int64("steps", 0, "training budget N (0 = ~25 samples per edge)")
		k       = flag.Int("k", 60, "embedding dimension")
		threads = flag.Int("threads", 4, "Hogwild training threads")
	)
	flag.Parse()

	v, err := ebsn.ParseVariant(*variant)
	if err != nil {
		fatal(err)
	}
	cfg := ebsn.Config{
		Seed:       *seed,
		Variant:    v,
		K:          *k,
		TrainSteps: *steps,
		Threads:    *threads,
	}

	var dataset *ebsn.Dataset
	if *data != "" {
		fmt.Printf("loading dataset from %s...\n", *data)
		dataset, err = ebsn.LoadDatasetCSV(*data)
		if err != nil {
			fatal(err)
		}
	} else {
		cityID, err := ebsn.ParseCity(*city)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("generating %s dataset (seed %d)...\n", cityID, *seed)
		dataset, err = ebsn.GenerateDataset(ebsn.GeneratorConfigFor(cityID, *seed))
		if err != nil {
			fatal(err)
		}
	}
	fmt.Println("dataset:", dataset.Stats())

	start := time.Now()
	rec, err := ebsn.Build(dataset, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trained %s in %.1fs (%d steps)\n", v, time.Since(start).Seconds(), rec.Model().Steps())

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	dataDir := filepath.Join(*out, "dataset")
	if err := ebsn.SaveDatasetCSV(rec.Dataset(), dataDir); err != nil {
		fatal(err)
	}
	modelPath := filepath.Join(*out, "model.gob")
	if err := rec.SaveModel(modelPath); err != nil {
		fatal(err)
	}
	fmt.Printf("saved filtered dataset to %s and model to %s\n", dataDir, modelPath)
	fmt.Println("next: ebsn-recommend -run", *out, "-user 0")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ebsn-train:", err)
	os.Exit(1)
}
