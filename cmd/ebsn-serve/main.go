// ebsn-serve is the production recommendation daemon: it loads (or
// trains) a model, wraps it in the serve package's HTTP stack — result
// cache, load shedding, per-request timeouts, panic recovery, Prometheus
// metrics — and serves the joint event-partner API until SIGINT/SIGTERM,
// then drains connections and exits cleanly.
//
// A retrained model is picked up without restarting: SIGHUP (or POST
// /v1/reload) loads the snapshot file, rebuilds the TA index off the
// request path, and atomically swaps the serving model — in-flight
// queries finish on the old model, no request fails.
//
// Observability: /metrics serves Prometheus text exposition
// (?format=json keeps the JSON panel); -trace enables request-scoped
// spans with a slow-query ring at /v1/debug/slowlog; -debug-addr mounts
// net/http/pprof on a separate listener. See OPERATIONS.md for the full
// metric reference and diagnosis walkthroughs.
//
// Usage:
//
//	ebsn-serve -city tiny -addr :8080
//	ebsn-serve -model runs/beijing -threads 8 -cache 65536 -maxinflight 512
//	ebsn-serve -city tiny -trace -slow-query 50ms -debug-addr localhost:6060
//	ebsn-serve -city small -shards 4   # scatter-gather engine, one TA shard per core
//	curl 'http://localhost:8080/v1/events?user=3&n=5'
//	curl 'http://localhost:8080/metrics'
//	kill -HUP $(pidof ebsn-serve)   # swap in runs/beijing/model.gob after a retrain
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"ebsn"
	"ebsn/internal/obs"
	"ebsn/serve"
)

func main() {
	var (
		city        = flag.String("city", "tiny", "synthetic dataset scale: tiny small beijing shanghai (ignored with -model)")
		variant     = flag.String("variant", "gem-a", "model family: gem-a gem-p pte")
		seed        = flag.Uint64("seed", 1, "generator and training seed")
		steps       = flag.Int64("steps", 0, "training budget N (0 = scale default)")
		threads     = flag.Int("threads", 4, "training and index-build threads")
		model       = flag.String("model", "", "load a trained model directory (ebsn-train output) instead of training")
		addr        = flag.String("addr", ":8080", "listen address")
		cache       = flag.Int("cache", 4096, "result cache capacity in entries (0 = default, negative disables)")
		cacheTTL    = flag.Duration("cachettl", time.Minute, "result cache TTL")
		feedTTL     = flag.Duration("feed-ttl", 30*time.Second, "max staleness of a cached /v1/feed answer (negative = bounded only by -cachettl)")
		maxInflight = flag.Int("maxinflight", 256, "concurrent requests before load shedding with 503")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request handler timeout")
		drain       = flag.Duration("drain", 10*time.Second, "connection-drain budget on shutdown")
		pruneK      = flag.Int("prunek", 0, "TA candidate pruning per partner (0 = 5% heuristic, negative = full space)")
		shards      = flag.Int("shards", 1, "partner-range shards of the scatter-gather query engine (results identical for any value)")
		quantized   = flag.Bool("quantized", false, "int8-quantized candidate storage (~4x smaller, approximate: recall@10 >= 0.99 vs exact)")
		maxBatch    = flag.Int("max-batch", 64, "max users per batched POST query; larger requests get 400")
		coalesceWin = flag.Duration("coalesce-window", 200*time.Microsecond, "micro-batching window for single-user partner queries (0 disables coalescing)")
		coalesceCap = flag.Int("coalesce-batch", 16, "max single-user queries folded into one coalesced dispatch")
		autoCompact = flag.Int("auto-compact", 0, "background-compact the live delta once this many events are pending (0 = only on POST /v1/compact)")
		snapshot    = flag.String("snapshot", "", "model snapshot file for SIGHUP / POST /v1/reload (default <model>/model.gob)")
		artifact    = flag.String("artifact", "", "zero-copy index artifact: map it on start/reload instead of rebuilding, rewrite it after fallback rebuilds (default <model>/index.art)")
		quiet       = flag.Bool("quiet", false, "disable the per-request access log")
		trace       = flag.Bool("trace", false, "enable request-scoped tracing (slow-query ring at /v1/debug/slowlog)")
		slowQuery   = flag.Duration("slow-query", 100*time.Millisecond, "traced-request duration that lands in the slowlog")
		slowlogSize = flag.Int("slowlog-size", 128, "slow-query ring capacity")
		debugAddr   = flag.String("debug-addr", "", "net/http/pprof listener address (e.g. localhost:6060; empty disables)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "ebsn-serve: ", log.LstdFlags)

	variantID, err := ebsn.ParseVariant(*variant)
	if err != nil {
		fatal(err)
	}
	cfg := ebsn.Config{Seed: *seed, Variant: variantID, Threads: *threads, TrainSteps: *steps}

	var rec *ebsn.Recommender
	t0 := time.Now()
	if *model != "" {
		logger.Printf("loading model from %s...", *model)
		rec, err = ebsn.Open(*model, cfg)
	} else {
		cfg.City, err = ebsn.ParseCity(*city)
		if err != nil {
			fatal(err)
		}
		logger.Printf("training %s on %s city (seed %d)...", variantID, cfg.City, *seed)
		rec, err = ebsn.New(cfg)
	}
	if err != nil {
		fatal(err)
	}
	logger.Printf("model ready in %.1fs: %s", time.Since(t0).Seconds(), rec.Dataset().Stats())

	if *snapshot == "" && *model != "" {
		*snapshot = filepath.Join(*model, "model.gob")
	}
	if *artifact == "" && *model != "" {
		*artifact = filepath.Join(*model, "index.art")
	}

	s := serve.New(rec, serve.Config{
		PruneK:             *pruneK,
		Shards:             *shards,
		Quantized:          *quantized,
		MaxBatch:           *maxBatch,
		CoalesceWindow:     *coalesceWin,
		CoalesceBatch:      *coalesceCap,
		AutoCompactEvents:  *autoCompact,
		SnapshotPath:       *snapshot,
		ArtifactPath:       *artifact,
		CacheCapacity:      *cache,
		CacheTTL:           *cacheTTL,
		FeedTTL:            *feedTTL,
		MaxInFlight:        *maxInflight,
		RequestTimeout:     *timeout,
		DrainTimeout:       *drain,
		Logger:             logger,
		AccessLog:          !*quiet,
		TraceEnabled:       *trace,
		SlowQueryThreshold: *slowQuery,
		SlowLogSize:        *slowlogSize,
	})

	if *debugAddr != "" {
		obs.ServeDebug(*debugAddr, func(err error) { logger.Printf("pprof listener: %v", err) })
		logger.Printf("pprof at http://%s/debug/pprof/", *debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP hot-swaps the snapshot without dropping connections —
	// the conventional "reload your config" signal, here reloading the
	// model itself.
	sighup := make(chan os.Signal, 1)
	signal.Notify(sighup, syscall.SIGHUP)
	go func() {
		for range sighup {
			if err := s.Reload(""); err != nil {
				logger.Printf("SIGHUP reload failed: %v", err)
			} else {
				logger.Printf("SIGHUP reload succeeded")
			}
		}
	}()

	// Serve immediately so /healthz answers while the TA index builds;
	// /readyz flips to 200 once Warm finishes.
	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe(ctx, *addr) }()

	t0 = time.Now()
	logger.Printf("listening on %s, building TA index (%d shard(s))...", *addr, *shards)
	if err := s.Warm(); err != nil {
		fatal(err)
	}
	host := *addr
	if strings.HasPrefix(host, ":") {
		host = "localhost" + host
	}
	logger.Printf("ready in %.1fs — try curl 'http://%s/v1/events?user=3&n=5'", time.Since(t0).Seconds(), host)

	if err := <-errc; err != nil {
		fatal(err)
	}
	logger.Println("shutdown complete")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ebsn-serve:", err)
	os.Exit(1)
}
