// ebsn-datagen synthesizes an EBSN dataset, prints its distributional
// profile, and optionally exports it as CSV for external tooling or for
// ebsn-train -data.
//
// Usage:
//
//	ebsn-datagen -city small -seed 7
//	ebsn-datagen -city beijing -out ./beijing-data
//	ebsn-datagen -city tiny -filter 5 -out ./tiny-data
package main

import (
	"flag"
	"fmt"
	"os"

	"ebsn"
	"ebsn/internal/ebsnet"
)

func main() {
	var (
		city   = flag.String("city", "small", "dataset scale: tiny small beijing shanghai")
		seed   = flag.Uint64("seed", 1, "generator seed")
		out    = flag.String("out", "", "export directory (empty = describe only)")
		filter = flag.Int("filter", 0, "drop users with fewer events than this (paper uses 5)")
	)
	flag.Parse()

	cityID, err := ebsn.ParseCity(*city)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("generating %s (seed %d)...\n", cityID, *seed)
	d, err := ebsn.GenerateDataset(ebsn.GeneratorConfigFor(cityID, *seed))
	if err != nil {
		fatal(err)
	}
	if *filter > 0 {
		d, err = d.FilterMinEvents(*filter)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("applied min-%d-events filter\n", *filter)
	}
	fmt.Println()
	fmt.Print(ebsnet.Describe(d))

	if *out != "" {
		if err := ebsn.SaveDatasetCSV(d, *out); err != nil {
			fatal(err)
		}
		fmt.Printf("\nexported to %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ebsn-datagen:", err)
	os.Exit(1)
}
