// ebsn-eval evaluates a saved run directory (from ebsn-train) under the
// paper's protocols and the library's full-ranking metrics, and reports
// the current training objective — everything a model-quality dashboard
// would poll.
//
// Usage:
//
//	ebsn-eval -run ./run
//	ebsn-eval -run ./run -cases 5000 -full
package main

import (
	"flag"
	"fmt"
	"os"

	"ebsn"
)

func main() {
	var (
		run   = flag.String("run", "ebsn-run", "run directory from ebsn-train")
		cases = flag.Int("cases", 2000, "max evaluation cases per protocol")
		full  = flag.Bool("full", true, "also compute full-ranking metrics (MRR/NDCG)")
	)
	flag.Parse()

	rec, err := ebsn.Open(*run, ebsn.Config{})
	if err != nil {
		fatal(err)
	}
	fmt.Print(rec.DescribeDataset())
	fmt.Println()

	ns := []int{1, 5, 10, 15, 20}
	cold, err := rec.EvaluateColdStart(ns, *cases)
	if err != nil {
		fatal(err)
	}
	fmt.Println("cold-start event recommendation (1000 sampled negatives):")
	printAccuracy(cold)

	partner, err := rec.EvaluatePartner(ns, *cases)
	if err != nil {
		fatal(err)
	}
	fmt.Println("joint event-partner recommendation (500+500 negatives):")
	printAccuracy(partner)

	if *full {
		m, err := rec.EvaluateFullRanking([]int{1, 5, 10, 20}, *cases)
		if err != nil {
			fatal(err)
		}
		fmt.Println("full-ranking metrics (no negative sampling):")
		fmt.Printf("  %s\n\n", m)
	}

	obj, err := rec.TrainingObjective(20000)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("training objective estimate: %.4f over %d samples\n", obj.Total, obj.Samples)
	for name, v := range obj.PerRelation {
		fmt.Printf("  %-16s %.4f\n", name, v)
	}
}

func printAccuracy(res ebsn.EvalResult) {
	fmt.Print(" ")
	for i, n := range res.Ns {
		fmt.Printf("  acc@%d=%.3f", n, res.Accuracy[i])
	}
	fmt.Printf("   (%d cases)\n\n", res.Cases)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ebsn-eval:", err)
	os.Exit(1)
}
