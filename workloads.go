package ebsn

import (
	"fmt"

	"ebsn/internal/ta"
	"ebsn/internal/vecmath"
	"ebsn/internal/workload"
)

// This file is the facade over internal/workload: the scenario surface
// (group, constrained, feed) expressed in dataset IDs and trained-model
// vectors. The heavy lifting — constraint compilation, aggregation
// strategies, the feed join — lives in internal/workload; the TA
// predicate push-down lives in internal/ta and internal/engine.

// Workload scenario types, re-exported so callers never import internal
// packages.
type (
	// Constraint restricts recommendations to a time window and/or geo
	// radius (see workload.Constraint).
	Constraint = workload.Constraint
	// GroupStrategy selects how member preferences aggregate
	// (mean or least-misery).
	GroupStrategy = workload.Strategy
	// FeedItem is one "for you" feed entry: an event joined with its top
	// companions.
	FeedItem = workload.FeedItem
	// FeedPartner is one companion recommendation inside a FeedItem.
	FeedPartner = workload.FeedPartner
	// EventPredicate is the compiled event filter the TA walk consumes.
	EventPredicate = ta.EventPredicate
)

// The group aggregation strategies.
const (
	// GroupMean averages member preferences — one query with the
	// averaged member vector.
	GroupMean = workload.StrategyMean
	// GroupLeastMisery ranks events by their least-enthusiastic member.
	GroupLeastMisery = workload.StrategyLeastMisery
)

// ParseConstraint parses the wire form of a constraint: RFC 3339 from
// and until plus a "lat,lng,radiusKm" within. Empty strings impose
// nothing.
func ParseConstraint(from, until, within string) (Constraint, error) {
	return workload.ParseConstraint(from, until, within)
}

// ParseGroupStrategy parses "mean" or "least-misery" (empty defaults to
// mean).
func ParseGroupStrategy(s string) (GroupStrategy, error) { return workload.ParseStrategy(s) }

// CompileConstraint evaluates the constraint over the test (cold) events
// — the candidate space of every recommendation surface — returning the
// predicate in candidate-set event order plus the allowed-event count. A
// zero constraint compiles to a nil predicate, the signal for every
// query path to stay on its exact unconstrained code.
func (r *Recommender) CompileConstraint(c Constraint) (EventPredicate, int) {
	return workload.Compile(c, r.dataset, r.split.TestEvents)
}

// selectTopEvents runs the shared top-n selection over the test events
// under an arbitrary scoring function: the same strict-> insertion the
// unconstrained TopEvents uses, so ties keep first-seen (ascending
// event) order across every scenario. skip, when non-nil, drops events
// before scoring.
func (r *Recommender) selectTopEvents(n int, skip EventPredicate, score func(i int, x int32) float32) []Recommendation {
	type se struct {
		x int32
		s float32
	}
	best := make([]se, 0, n)
	for i, x := range r.split.TestEvents {
		if skip != nil && !skip[i] {
			continue
		}
		s := score(i, x)
		if len(best) < n {
			best = append(best, se{x, s})
			up := len(best) - 1
			for up > 0 && best[up].s > best[up-1].s {
				best[up], best[up-1] = best[up-1], best[up]
				up--
			}
		} else if s > best[n-1].s {
			best[n-1] = se{x, s}
			up := n - 1
			for up > 0 && best[up].s > best[up-1].s {
				best[up], best[up-1] = best[up-1], best[up]
				up--
			}
		}
	}
	out := make([]Recommendation, len(best))
	for i, e := range best {
		out[i] = Recommendation{Event: e.x, Score: e.s}
	}
	return out
}

// TopEventsConstrained is TopEvents restricted to events satisfying the
// constraint: the predicate filters candidates before scoring, so the
// result is the exact top n of the allowed subset (fewer when fewer
// allowed events exist). A zero constraint is identical to TopEvents.
func (r *Recommender) TopEventsConstrained(user int32, n int, c Constraint) ([]Recommendation, error) {
	if int(user) < 0 || int(user) >= r.dataset.NumUsers {
		return nil, fmt.Errorf("ebsn: user %d out of range [0,%d)", user, r.dataset.NumUsers)
	}
	if n <= 0 {
		return nil, fmt.Errorf("ebsn: n must be positive")
	}
	pred, _ := r.CompileConstraint(c)
	if pred == nil {
		return r.TopEvents(user, n)
	}
	return r.selectTopEvents(n, pred, func(_ int, x int32) float32 {
		return r.model.ScoreUserEvent(user, x)
	}), nil
}

// TopEventPartnersConstrained is TopEventPartners restricted to events
// satisfying the constraint, with the predicate pushed into the TA
// threshold walk (not post-filtered; see DESIGN.md §3.10) — the result
// is the exact constrained top n. Constrained queries answer over the
// base index only: events ingested live (IngestColdEvent) carry no
// dataset metadata to evaluate the constraint against and are not
// candidates here.
func (r *Recommender) TopEventPartnersConstrained(user int32, n int, c Constraint) ([]PairRecommendation, error) {
	out, _, err := r.TopEventPartnersConstrainedStats(user, n, c)
	return out, err
}

// TopEventPartnersConstrainedStats is TopEventPartnersConstrained plus
// the TA work counters (the engine's aggregate when a sharded engine is
// prepared).
func (r *Recommender) TopEventPartnersConstrainedStats(user int32, n int, c Constraint) ([]PairRecommendation, SearchStats, error) {
	if int(user) < 0 || int(user) >= r.dataset.NumUsers {
		return nil, SearchStats{}, fmt.Errorf("ebsn: user %d out of range [0,%d)", user, r.dataset.NumUsers)
	}
	if n <= 0 {
		return nil, SearchStats{}, fmt.Errorf("ebsn: n must be positive")
	}
	pred, _ := r.CompileConstraint(c)
	if r.taEngine == nil && r.taIndex == nil {
		k := len(r.split.TestEvents) / 20
		if k < 1 {
			k = 1
		}
		if err := r.PrepareJoint(k); err != nil {
			return nil, SearchStats{}, err
		}
	}
	var (
		res   []ta.Result
		stats SearchStats
	)
	// Deliberately the base tier, never liveEngine()/taLiveIdx: a
	// compacted live tier holds folded live events past the test-event
	// range, which the predicate (compiled over split.TestEvents) cannot
	// cover.
	if eng := r.taEngine; eng != nil {
		r2, es, err := eng.SearchPred(r.model.UserVec(user), n, user, pred)
		if err != nil {
			return nil, SearchStats{}, err
		}
		res, stats = r2, es.Agg
	} else {
		idx, set := r.taIndex, r.taSet
		sc := ta.GetScratch()
		defer ta.PutScratch(sc)
		if r.quantizedJointQuery(set) {
			res, stats = idx.TopNExcludingQuantizedPredScratch(r.model.UserVec(user), n, user, pred, sc)
		} else {
			res, stats = idx.TopNExcludingPredScratch(r.model.UserVec(user), n, user, pred, sc)
		}
	}
	out := make([]PairRecommendation, 0, len(res))
	for _, rr := range res {
		out = append(out, PairRecommendation{
			Event:   r.split.TestEvents[rr.Event],
			Partner: rr.Partner,
			Score:   rr.Score,
		})
	}
	return out, stats, nil
}

// GroupTopEvents recommends the top-n events for a group of users under
// the given aggregation strategy. The mean strategy averages the member
// vectors into one query point (exactly equivalent to averaging scores,
// since the score is an inner product); least misery scores every
// member per event and keeps the minimum. Duplicated members weight the
// mean accordingly and are idempotent under least misery.
func (r *Recommender) GroupTopEvents(members []int32, n int, strategy GroupStrategy) ([]Recommendation, error) {
	return r.GroupTopEventsConstrained(members, n, strategy, Constraint{})
}

// GroupTopEventsConstrained is GroupTopEvents with a constraint filter —
// the combination the group endpoint serves. A zero constraint imposes
// nothing.
func (r *Recommender) GroupTopEventsConstrained(members []int32, n int, strategy GroupStrategy, c Constraint) ([]Recommendation, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("ebsn: group has no members")
	}
	if n <= 0 {
		return nil, fmt.Errorf("ebsn: n must be positive")
	}
	vecs := make([][]float32, len(members))
	for i, u := range members {
		if int(u) < 0 || int(u) >= r.dataset.NumUsers {
			return nil, fmt.Errorf("ebsn: member %d out of range [0,%d)", u, r.dataset.NumUsers)
		}
		vecs[i] = r.model.UserVec(u)
	}
	pred, _ := r.CompileConstraint(c)
	if strategy == GroupLeastMisery {
		scores := make([]float32, len(members))
		return r.selectTopEvents(n, pred, func(_ int, x int32) float32 {
			for i, u := range members {
				scores[i] = r.model.ScoreUserEvent(u, x)
			}
			return GroupLeastMisery.Reduce(scores)
		}), nil
	}
	mean := workload.MeanVector(vecs, nil)
	return r.selectTopEvents(n, pred, func(_ int, x int32) float32 {
		return vecmath.Dot(mean, r.model.EventVec(x))
	}), nil
}

// Feed assembles the user's "for you" feed: the top-n cold events (as
// TopEvents ranks them), each joined with the top-m companions under the
// full joint score of Eqn. 8. For a fixed event the join is one dot
// pass over the user rows with the combined query u+x (see
// workload.JoinPartners); the querying user is excluded from every
// partner list. Feeds cover the base candidate space only — live
// ingested events surface through TopEventPartnersLive, not the feed.
func (r *Recommender) Feed(user int32, n, m int) ([]FeedItem, error) {
	if m <= 0 {
		return nil, fmt.Errorf("ebsn: m must be positive")
	}
	top, err := r.TopEvents(user, n)
	if err != nil {
		return nil, err
	}
	partners := make([][]float32, r.dataset.NumUsers)
	for u := range partners {
		partners[u] = r.model.UserVec(int32(u))
	}
	userVec := r.model.UserVec(user)
	items := make([]FeedItem, 0, len(top))
	var q []float32
	for _, rec := range top {
		var ps []FeedPartner
		ps, q = workload.JoinPartners(userVec, r.model.EventVec(rec.Event), partners, user, m, q)
		items = append(items, FeedItem{Event: rec.Event, Score: rec.Score, Partners: ps})
	}
	return items, nil
}
