// Package baselines implements the four comparison systems of the paper's
// evaluation: PCMF (collective BPR matrix factorization), CBPF (collective
// Poisson factorization with averaged auxiliary vectors), PER (meta-path
// features over the heterogeneous information network), and CFAPR-E (the
// activity-partner recommender extended to the joint task). Each exposes
// the same scoring interfaces as GEM so the evaluation harness treats all
// models uniformly, and each deliberately keeps the design decision the
// paper identifies as its weakness — that is what the comparison isolates.
package baselines

import (
	"fmt"

	"ebsn/internal/ebsnet"
	"ebsn/internal/graph"
	"ebsn/internal/rng"
	"ebsn/internal/vecmath"
)

// PCMFConfig parameterizes the collective matrix factorization baseline.
type PCMFConfig struct {
	K            int
	LearningRate float32
	// Reg is the L2 regularization weight of BPR.
	Reg float32
	// Steps is the number of BPR updates.
	Steps int64
	Seed  uint64
}

// DefaultPCMFConfig mirrors the GEM training budget with standard BPR
// hyper-parameters.
func DefaultPCMFConfig() PCMFConfig {
	return PCMFConfig{K: 60, LearningRate: 0.05, Reg: 0.01, Steps: 2_000_000, Seed: 1}
}

// PCMF is the paper's PCMF baseline [13]: BPR matrix factorization
// extended to multiple relations with one shared K-vector per entity. Its
// source combines "heterogenous social and geographical information" —
// user-event attendance, the social graph and event locations — and uses
// neither content nor time, which is precisely why the paper reports it
// weakest on cold-start events. Per the paper's critique it also treats
// every relation as binary (edge weights ignored) and samples negatives
// uniformly from one side only.
type PCMF struct {
	cfg  PCMFConfig
	rels []*graph.Bipartite
	mats []matPair // embedding matrices per relation side

	users  *mat
	events *mat
}

type mat struct {
	n, k int
	data []float32
}

func newMat(n, k int, src *rng.Source) *mat {
	m := &mat{n: n, k: k, data: make([]float32, n*k)}
	for i := range m.data {
		m.data[i] = float32(src.Gaussian(0, 0.01))
	}
	return m
}

func (m *mat) row(i int32) []float32 { return m.data[int(i)*m.k : (int(i)+1)*m.k] }

type matPair struct{ a, b *mat }

// NewPCMF builds and trains the baseline on the relation graphs.
func NewPCMF(g *ebsnet.Graphs, cfg PCMFConfig) (*PCMF, error) {
	if cfg.K <= 0 || cfg.LearningRate <= 0 || cfg.Steps < 0 {
		return nil, fmt.Errorf("baselines: invalid PCMF config %+v", cfg)
	}
	src := rng.New(cfg.Seed)
	users := newMat(g.UserEvent.NumA(), cfg.K, src)
	events := newMat(g.UserEvent.NumB(), cfg.K, src)
	locations := newMat(g.EventLocation.NumB(), cfg.K, src)

	p := &PCMF{
		cfg:    cfg,
		rels:   []*graph.Bipartite{g.UserEvent, g.EventLocation, g.UserUser},
		users:  users,
		events: events,
		mats: []matPair{
			{users, events},
			{events, locations},
			{users, users},
		},
	}
	p.train(src)
	return p, nil
}

// train runs BPR updates: sample a relation uniformly (PCMF has no notion
// of edge-mass balancing), a positive (i, j), a uniform negative j', and
// ascend σ(x_ij − x_ij').
func (p *PCMF) train(src *rng.Source) {
	alive := make([]int, 0, len(p.rels))
	for r, rel := range p.rels {
		if rel.NumEdges() > 0 {
			alive = append(alive, r)
		}
	}
	if len(alive) == 0 {
		return
	}
	lr, reg := p.cfg.LearningRate, p.cfg.Reg
	for s := int64(0); s < p.cfg.Steps; s++ {
		r := alive[src.Intn(len(alive))]
		rel := p.rels[r]
		// Binary relations: sample an edge uniformly, not by weight.
		e := rel.Edge(src.Intn(rel.NumEdges()))
		va := p.mats[r].a.row(e.A)
		vb := p.mats[r].b.row(e.B)
		// Uniform negative from side B, avoiding observed edges.
		var vn []float32
		for try := 0; try < 10; try++ {
			n := int32(src.Intn(rel.NumB()))
			if n == e.B || rel.HasEdge(e.A, n) {
				continue
			}
			vn = p.mats[r].b.row(n)
			break
		}
		if vn == nil {
			continue
		}
		diff := vecmath.Dot(va, vb) - vecmath.Dot(va, vn)
		g := lr * (1 - vecmath.FastSigmoid(diff))
		for f := 0; f < p.cfg.K; f++ {
			af, bf, nf := va[f], vb[f], vn[f]
			va[f] += g*(bf-nf) - lr*reg*af
			vb[f] += g*af - lr*reg*bf
			vn[f] += -g*af - lr*reg*nf
		}
	}
}

// ScoreUserEvent returns the dot-product preference score.
func (p *PCMF) ScoreUserEvent(u, x int32) float32 {
	return vecmath.Dot(p.users.row(u), p.events.row(x))
}

// ScoreTriple applies the paper's pairwise extension framework to the
// baseline (Section V-C): target preference + partner preference + social
// affinity from the shared user vectors.
func (p *PCMF) ScoreTriple(u, partner, x int32) float32 {
	uv, pv, xv := p.users.row(u), p.users.row(partner), p.events.row(x)
	return vecmath.Dot(uv, xv) + vecmath.Dot(pv, xv) + vecmath.Dot(uv, pv)
}
