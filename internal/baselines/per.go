package baselines

import (
	"fmt"
	"math"

	"ebsn/internal/ebsnet"
	"ebsn/internal/graph"
	"ebsn/internal/rng"
	"ebsn/internal/timeslot"
)

// PERConfig parameterizes the meta-path baseline.
type PERConfig struct {
	// Rank is the latent dimension of each per-path factorization; the
	// original PER compresses every meta-path diffusion matrix to a
	// low-rank user/item factor pair (that compression is what blurs its
	// cold-start precision).
	Rank int
	// FactorSteps is the SGD budget for fitting the per-path factors.
	FactorSteps int64
	// LearningRate drives both the factorization and the logistic
	// weight learning.
	LearningRate float32
	// Steps is the budget for learning the path-combination weights.
	Steps int64
	// NegativePerPositive controls sampled non-attended events during
	// weight learning.
	NegativePerPositive int
	Seed                uint64
}

// DefaultPERConfig mirrors the shared training budget order of magnitude.
func DefaultPERConfig() PERConfig {
	return PERConfig{
		Rank:                12,
		FactorSteps:         3_000_000,
		LearningRate:        0.1,
		Steps:               200_000,
		NegativePerPositive: 2,
		Seed:                1,
	}
}

// The meta paths PER aggregates. Cold events are reachable only through
// the location/time/content paths — exactly the paper's observation that
// PER underuses collaborative signal on cold items.
// maxDiffusionAttendees bounds the attendees examined per collaborative
// diffusion estimate (larger events are stride-subsampled).
const maxDiffusionAttendees = 32

const (
	pathUXUX = iota // co-attendance: users similar to u attended x
	pathUUX         // social: friends of u attended x
	pathUXLX        // location: u attends events in x's region
	pathUXTX        // time: u attends events in x's time slots
	pathUXCX        // content: u attends events sharing x's words
	numPaths
)

// PER is the paper's PER baseline [34]: the EBSN modeled as a
// heterogeneous information network, user-event relevance expressed as
// diffusion along typed meta paths. Faithful to the original recipe, each
// path's diffusion matrix is factorized into rank-r user/event latent
// features, and a logistic combiner learns the per-path weights on
// training attendance. The factorization bottleneck — not the raw
// diffusion counts — is what the recommender sees, which reproduces PER's
// characteristic blur on cold events.
type PER struct {
	cfg PERConfig
	d   *ebsnet.Dataset
	s   *ebsnet.Split
	g   *ebsnet.Graphs

	// Per-user diffusion profiles over training attendance (targets for
	// the factorization).
	regionProfile []map[int32]float32
	slotProfile   []map[int32]float32
	wordProfile   []map[int32]float32

	// Per-path rank-r factors: userF[p] is |U|×r, eventF[p] is |X|×r.
	userF  [numPaths][]float32
	eventF [numPaths][]float32

	weights [numPaths + 1]float32 // +1 bias
}

// NewPER builds the diffusion profiles, factorizes each path, and learns
// the combination weights.
func NewPER(d *ebsnet.Dataset, s *ebsnet.Split, g *ebsnet.Graphs, cfg PERConfig) (*PER, error) {
	if cfg.LearningRate <= 0 || cfg.Steps < 0 || cfg.Rank <= 0 || cfg.FactorSteps < 0 {
		return nil, fmt.Errorf("baselines: invalid PER config %+v", cfg)
	}
	p := &PER{cfg: cfg, d: d, s: s, g: g}
	p.buildProfiles()
	p.factorizePaths()
	p.learnWeights()
	return p, nil
}

func (p *PER) buildProfiles() {
	n := p.d.NumUsers
	p.regionProfile = make([]map[int32]float32, n)
	p.slotProfile = make([]map[int32]float32, n)
	p.wordProfile = make([]map[int32]float32, n)
	for u := 0; u < n; u++ {
		reg := make(map[int32]float32)
		slot := make(map[int32]float32)
		word := make(map[int32]float32)
		count := 0
		for _, x := range p.d.UserEvents(int32(u)) {
			if !p.s.InTrain(x) {
				continue
			}
			count++
			reg[int32(p.g.EventRegion[x])]++
			for _, sl := range timeslot.Slots(p.d.Events[x].Start) {
				slot[sl]++
			}
			words, ws := p.g.EventWord.Neighbors(graph.SideA, x)
			for i, w := range words {
				word[w] += ws[i]
			}
		}
		if count > 0 {
			inv := 1 / float32(count)
			for k := range reg {
				reg[k] *= inv
			}
			for k := range slot {
				slot[k] *= inv
			}
			var norm float32
			for _, v := range word {
				norm += v * v
			}
			if norm > 0 {
				s := 1 / float32(math.Sqrt(float64(norm)))
				for k := range word {
					word[k] *= s
				}
			}
		}
		p.regionProfile[u] = reg
		p.slotProfile[u] = slot
		p.wordProfile[u] = word
	}
}

// diffusion computes the raw meta-path diffusion value D_p(u, x) — the
// factorization target.
func (p *PER) diffusion(path int, u, x int32) float32 {
	switch path {
	case pathUXUX:
		attendees, _ := p.g.UserEvent.Neighbors(graph.SideB, x)
		if len(attendees) == 0 {
			return 0
		}
		// Large events are stride-subsampled: the diffusion value is a
		// fraction, and a few dozen attendees estimate it closely while
		// keeping city-scale factorization tractable.
		stride := 1 + len(attendees)/maxDiffusionAttendees
		common, seen := 0, 0
		for i := 0; i < len(attendees); i += stride {
			v := attendees[i]
			seen++
			if v != u && p.d.CommonEvents(u, v, p.s.InTrain) > 0 {
				common++
			}
		}
		return float32(common) / float32(seen)
	case pathUUX:
		attendees, _ := p.g.UserEvent.Neighbors(graph.SideB, x)
		if len(attendees) == 0 {
			return 0
		}
		stride := 1 + len(attendees)/maxDiffusionAttendees
		hits, seen := 0, 0
		for i := 0; i < len(attendees); i += stride {
			// Friendship comes from the trained user-user graph, not the
			// raw dataset, so scenario 2's removed links stay removed.
			seen++
			if p.g.UserUser.HasEdge(u, attendees[i]) {
				hits++
			}
		}
		return float32(hits) / float32(seen)
	case pathUXLX:
		return p.regionProfile[u][int32(p.g.EventRegion[x])]
	case pathUXTX:
		var sum float32
		for _, sl := range timeslot.Slots(p.d.Events[x].Start) {
			sum += p.slotProfile[u][sl]
		}
		return sum
	default: // pathUXCX
		words, ws := p.g.EventWord.Neighbors(graph.SideA, x)
		var dot, norm float32
		for i, w := range words {
			dot += p.wordProfile[u][w] * ws[i]
			norm += ws[i] * ws[i]
		}
		if norm == 0 {
			return 0
		}
		return dot / float32(math.Sqrt(float64(norm)))
	}
}

// factorizePaths fits rank-r factors to each path's diffusion matrix by
// SGD on squared error over sampled (u, x) pairs. Positive-attendance
// pairs are oversampled so the nonzero structure is covered; uniform
// pairs keep the zeros honest.
func (p *PER) factorizePaths() {
	src := rng.New(p.cfg.Seed ^ 0xfac)
	r := p.cfg.Rank
	nu, nx := p.d.NumUsers, p.d.NumEvents()
	for path := 0; path < numPaths; path++ {
		uf := make([]float32, nu*r)
		xf := make([]float32, nx*r)
		for i := range uf {
			uf[i] = float32(src.Gaussian(0, 0.1))
		}
		for i := range xf {
			xf[i] = float32(src.Gaussian(0, 0.1))
		}
		p.userF[path] = uf
		p.eventF[path] = xf
	}
	ux := p.g.UserEvent
	if ux.NumEdges() == 0 {
		return
	}
	lr := p.cfg.LearningRate
	for s := int64(0); s < p.cfg.FactorSteps; s++ {
		var u, x int32
		if s%2 == 0 {
			e := ux.SampleEdge(src)
			u, x = e.A, e.B
		} else {
			u = int32(src.Intn(nu))
			x = int32(src.Intn(nx))
		}
		path := int(s) % numPaths
		target := p.diffusion(path, u, x)
		uf := p.userF[path][int(u)*p.cfg.Rank : (int(u)+1)*p.cfg.Rank]
		xf := p.eventF[path][int(x)*p.cfg.Rank : (int(x)+1)*p.cfg.Rank]
		var pred float32
		for f := 0; f < p.cfg.Rank; f++ {
			pred += uf[f] * xf[f]
		}
		g := lr * (target - pred)
		for f := 0; f < p.cfg.Rank; f++ {
			ufv, xfv := uf[f], xf[f]
			uf[f] += g * xfv
			xf[f] += g * ufv
		}
	}
}

// pathScore is the factorized diffusion estimate for (u, x) on one path.
func (p *PER) pathScore(path int, u, x int32) float32 {
	r := p.cfg.Rank
	uf := p.userF[path][int(u)*r : (int(u)+1)*r]
	xf := p.eventF[path][int(x)*r : (int(x)+1)*r]
	var s float32
	for f := 0; f < r; f++ {
		s += uf[f] * xf[f]
	}
	return s
}

// learnWeights fits the logistic combiner over the factorized path scores
// on training attendance with sampled negatives.
func (p *PER) learnWeights() {
	src := rng.New(p.cfg.Seed)
	ux := p.g.UserEvent
	if ux.NumEdges() == 0 {
		return
	}
	var feats [numPaths]float32
	p.weights = [numPaths + 1]float32{}
	for s := int64(0); s < p.cfg.Steps; s++ {
		e := ux.SampleEdge(src)
		p.sgdStep(e.A, e.B, 1, &feats)
		for t := 0; t < p.cfg.NegativePerPositive; t++ {
			nx := int32(src.Intn(ux.NumB()))
			if ux.HasEdge(e.A, nx) {
				continue
			}
			p.sgdStep(e.A, nx, 0, &feats)
		}
	}
}

func (p *PER) fillFeatures(u, x int32, feats *[numPaths]float32) {
	for path := 0; path < numPaths; path++ {
		feats[path] = p.pathScore(path, u, x)
	}
}

func (p *PER) sgdStep(u, x int32, label float32, feats *[numPaths]float32) {
	p.fillFeatures(u, x, feats)
	z := p.weights[numPaths]
	for i := 0; i < numPaths; i++ {
		z += p.weights[i] * feats[i]
	}
	pred := 1 / (1 + float32(math.Exp(-float64(z))))
	g := p.cfg.LearningRate * (label - pred)
	for i := 0; i < numPaths; i++ {
		p.weights[i] += g * feats[i]
	}
	p.weights[numPaths] += g
}

// Weights exposes the learned path weights (diagnostics and tests).
func (p *PER) Weights() [numPaths + 1]float32 { return p.weights }

// ScoreUserEvent combines the factorized meta-path scores with the
// learned weights.
func (p *PER) ScoreUserEvent(u, x int32) float32 {
	var feats [numPaths]float32
	p.fillFeatures(u, x, &feats)
	z := p.weights[numPaths]
	for i := 0; i < numPaths; i++ {
		z += p.weights[i] * feats[i]
	}
	return z
}

// ScoreTriple applies the shared pairwise extension framework: both
// preferences plus a social-affinity feature from the trained user-user
// graph and shared training attendance.
func (p *PER) ScoreTriple(u, partner, x int32) float32 {
	social := float32(0)
	if p.g.UserUser.HasEdge(u, partner) {
		social = 1
	}
	common := p.d.CommonEvents(u, partner, p.s.InTrain)
	social += float32(common) / (1 + float32(common))
	return p.ScoreUserEvent(u, x) + p.ScoreUserEvent(partner, x) + social
}
