package baselines

import (
	"math"
	"testing"

	"ebsn/internal/ebsnet"
	"ebsn/internal/eval"
)

func TestRandomIsDeterministicAndSpread(t *testing.T) {
	r := Random{Salt: 1}
	if r.ScoreUserEvent(3, 7) != r.ScoreUserEvent(3, 7) {
		t.Fatal("Random not deterministic")
	}
	if (Random{Salt: 1}).ScoreUserEvent(3, 7) == (Random{Salt: 2}).ScoreUserEvent(3, 7) {
		t.Error("salts do not decorrelate")
	}
	// Scores should spread over [0,1): check moments.
	var sum, sq float64
	const n = 10000
	for i := 0; i < n; i++ {
		v := float64(r.ScoreUserEvent(int32(i), int32(i*31+5)))
		if v < 0 || v >= 1 {
			t.Fatalf("score %v out of range", v)
		}
		sum += v
		sq += v * v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("random score mean %v", mean)
	}
	if variance := sq/n - mean*mean; math.Abs(variance-1.0/12) > 0.01 {
		t.Errorf("random score variance %v, want ~1/12", variance)
	}
}

func TestRandomNearChanceUnderProtocol(t *testing.T) {
	d, s, _ := testEnv(t)
	cfg := eval.Config{Ns: []int{10}, NegativeEvents: 100, MaxCases: 400, Seed: 5}
	res, err := eval.EventRecommendation(Random{Salt: 3}, d, s, ebsnet.Test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 10.0 / 101.0
	if math.Abs(res.MustAt(10)-want) > 0.06 {
		t.Errorf("Random acc@10 = %v, want ~%v", res.MustAt(10), want)
	}
}

func TestPopularityCountsTrainingOnly(t *testing.T) {
	d, s, _ := testEnv(t)
	p := NewPopularity(d, s)
	// Every cold (test) event must score exactly zero.
	for _, x := range s.TestEvents {
		if p.ScoreUserEvent(0, x) != 0 {
			t.Fatalf("cold event %d has popularity %v", x, p.ScoreUserEvent(0, x))
		}
	}
	// Training events with attendance score positive.
	found := false
	for _, x := range s.TrainEvents {
		if len(d.EventUsers(x)) > 0 && p.ScoreUserEvent(0, x) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no training event has positive popularity")
	}
}

func TestPopularityFailsColdStartProtocol(t *testing.T) {
	// The illustrative point: the classic warm-catalog baseline scores
	// zero on the paper's task because all test events tie at zero.
	d, s, _ := testEnv(t)
	p := NewPopularity(d, s)
	cfg := eval.Config{Ns: []int{20}, NegativeEvents: 100, MaxCases: 200, Seed: 7}
	res, err := eval.EventRecommendation(p, d, s, ebsnet.Test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MustAt(20) != 0 {
		t.Errorf("popularity acc@20 = %v on cold events, want 0", res.MustAt(20))
	}
}

func TestPopularityUserIndependent(t *testing.T) {
	d, s, _ := testEnv(t)
	p := NewPopularity(d, s)
	for x := int32(0); x < 10; x++ {
		if p.ScoreUserEvent(0, x) != p.ScoreUserEvent(5, x) {
			t.Fatal("popularity depends on the user")
		}
	}
}

func TestPopularityTripleFavorsFriends(t *testing.T) {
	d, s, _ := testEnv(t)
	p := NewPopularity(d, s)
	// Find a user with at least one friend.
	for u := int32(0); int(u) < d.NumUsers; u++ {
		friends := d.Friends(u)
		if len(friends) == 0 {
			continue
		}
		friend := friends[0]
		// A stranger with the same friend count as the friend.
		for v := int32(0); int(v) < d.NumUsers; v++ {
			if v == u || v == friend || d.AreFriends(u, v) {
				continue
			}
			if len(d.Friends(v)) == len(d.Friends(friend)) {
				if p.ScoreTriple(u, friend, 0) <= p.ScoreTriple(u, v, 0) {
					t.Errorf("friend does not outrank equal-degree stranger")
				}
				return
			}
		}
	}
	t.Skip("no comparable friend/stranger pair in fixture")
}
