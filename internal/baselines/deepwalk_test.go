package baselines

import (
	"testing"
)

func TestDeepWalkLearnsSignal(t *testing.T) {
	_, _, g := testEnv(t)
	cfg := DefaultDeepWalkConfig()
	cfg.K = 16
	cfg.WalksPerNode = 6
	cfg.WalkLength = 20
	dw, err := NewDeepWalk(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m := marginOverRandom(dw, g); m <= 0 {
		t.Errorf("DeepWalk margin over random = %.2f, want positive", m)
	}
}

func TestDeepWalkNodeSpaces(t *testing.T) {
	_, _, g := testEnv(t)
	cfg := DefaultDeepWalkConfig()
	cfg.K = 8
	cfg.WalksPerNode = 1
	cfg.WalkLength = 5
	dw, err := NewDeepWalk(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dw.numNodes != g.UserEvent.NumA()+g.UserEvent.NumB()+g.EventLocation.NumB()+g.EventTime.NumB()+g.EventWord.NumB() {
		t.Errorf("unified node space size %d", dw.numNodes)
	}
	// Vector accessors must address disjoint rows.
	u0 := dw.UserVec(0)
	x0 := dw.EventVec(0)
	u0[0] = 42
	if x0[0] == 42 {
		t.Error("user and event vectors alias")
	}
}

func TestDeepWalkTripleDecomposition(t *testing.T) {
	_, _, g := testEnv(t)
	cfg := DefaultDeepWalkConfig()
	cfg.K = 8
	cfg.WalksPerNode = 1
	cfg.WalkLength = 5
	dw, err := NewDeepWalk(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var social float32
	for f, v := range dw.UserVec(1) {
		social += v * dw.UserVec(2)[f]
	}
	want := dw.ScoreUserEvent(1, 3) + dw.ScoreUserEvent(2, 3) + social
	if got := dw.ScoreTriple(1, 2, 3); got != want {
		t.Errorf("ScoreTriple = %v, want %v", got, want)
	}
}

func TestDeepWalkRejectsBadConfig(t *testing.T) {
	_, _, g := testEnv(t)
	if _, err := NewDeepWalk(g, DeepWalkConfig{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := NewDeepWalk(g, DeepWalkConfig{K: 4, WalkLength: 1, WalksPerNode: 1, Window: 2, LearningRate: 0.1}); err == nil {
		t.Error("walk length 1 accepted")
	}
}
