package baselines

import (
	"testing"

	"ebsn/internal/datagen"
	"ebsn/internal/ebsnet"
	"ebsn/internal/eval"
	"ebsn/internal/geo"
	"ebsn/internal/text"
)

var (
	cachedD *ebsnet.Dataset
	cachedS *ebsnet.Split
	cachedG *ebsnet.Graphs
)

func testEnv(t testing.TB) (*ebsnet.Dataset, *ebsnet.Split, *ebsnet.Graphs) {
	t.Helper()
	if cachedD != nil {
		return cachedD, cachedS, cachedG
	}
	d, err := datagen.Generate(datagen.TinyConfig(31))
	if err != nil {
		t.Fatal(err)
	}
	s, err := ebsnet.ChronologicalSplit(d, ebsnet.DefaultSplitConfig())
	if err != nil {
		t.Fatal(err)
	}
	g, err := ebsnet.BuildGraphs(d, s, ebsnet.GraphsConfig{
		DBSCAN:        geo.DBSCANConfig{EpsKm: 1.5, MinPts: 3},
		NoiseAttachKm: 5,
		Vocab:         text.VocabConfig{MinDocFreq: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	cachedD, cachedS, cachedG = d, s, g
	return d, s, g
}

// marginOverRandom sums score(pos) − score(shifted) over training edges:
// positive margins mean the model learned the attendance signal.
func marginOverRandom(sc eval.EventScorer, g *ebsnet.Graphs) float64 {
	var pos, rnd float64
	n := g.UserEvent.NumEdges()
	nb := g.UserEvent.NumB()
	for i := 0; i < n; i++ {
		e := g.UserEvent.Edge(i)
		pos += float64(sc.ScoreUserEvent(e.A, e.B))
		rnd += float64(sc.ScoreUserEvent(e.A, int32((int(e.B)+13*i+7)%nb)))
	}
	return pos - rnd
}

func TestPCMFLearnsSignal(t *testing.T) {
	_, _, g := testEnv(t)
	cfg := DefaultPCMFConfig()
	cfg.K = 16
	cfg.Steps = 150000
	p, err := NewPCMF(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m := marginOverRandom(p, g); m <= 0 {
		t.Errorf("PCMF margin over random = %.2f, want positive", m)
	}
}

func TestPCMFScoreTripleComposition(t *testing.T) {
	_, _, g := testEnv(t)
	cfg := DefaultPCMFConfig()
	cfg.K = 8
	cfg.Steps = 10000
	p, err := NewPCMF(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := p.ScoreTriple(1, 2, 3)
	uv, pv := p.users.row(1), p.users.row(2)
	var social float32
	for f := range uv {
		social += uv[f] * pv[f]
	}
	want := p.ScoreUserEvent(1, 3) + p.ScoreUserEvent(2, 3) + social
	if diff := got - want; diff > 1e-4 || diff < -1e-4 {
		t.Errorf("ScoreTriple = %v, want %v", got, want)
	}
}

func TestPCMFRejectsBadConfig(t *testing.T) {
	_, _, g := testEnv(t)
	if _, err := NewPCMF(g, PCMFConfig{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := NewPCMF(g, PCMFConfig{K: 8, LearningRate: -1}); err == nil {
		t.Error("negative LR accepted")
	}
}

func TestCBPFLearnsSignal(t *testing.T) {
	_, _, g := testEnv(t)
	cfg := DefaultCBPFConfig()
	cfg.K = 16
	cfg.Steps = 80000
	c, err := NewCBPF(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m := marginOverRandom(c, g); m <= 0 {
		t.Errorf("CBPF margin over random = %.2f, want positive", m)
	}
}

func TestCBPFFactorsStayPositive(t *testing.T) {
	_, _, g := testEnv(t)
	cfg := DefaultCBPFConfig()
	cfg.K = 8
	cfg.Steps = 20000
	c, err := NewCBPF(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*mat{c.users, c.words, c.locs, c.times} {
		for _, v := range m.data {
			if v < cbpfEps/2 || v != v {
				t.Fatalf("CBPF factor %v violates positivity", v)
			}
		}
	}
}

func TestCBPFEventIsAuxAverage(t *testing.T) {
	// The defining constraint: an event with identical auxiliary info to
	// another must have an identical representation, trained or not.
	d, _, g := testEnv(t)
	cfg := DefaultCBPFConfig()
	cfg.K = 8
	cfg.Steps = 5000
	c, err := NewCBPF(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = d
	a := make([]float32, cfg.K)
	b := make([]float32, cfg.K)
	c.eventInto(3, a)
	c.eventInto(3, b)
	for f := range a {
		if a[f] != b[f] {
			t.Fatal("eventInto is not deterministic")
		}
	}
	// Cached representation must match a fresh computation.
	for f := range a {
		if c.eventCache[3][f] != a[f] {
			t.Fatal("event cache stale")
		}
	}
}

func TestPERLearnsSignal(t *testing.T) {
	d, s, g := testEnv(t)
	cfg := DefaultPERConfig()
	cfg.FactorSteps = 300000
	cfg.Steps = 60000
	p, err := NewPER(d, s, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m := marginOverRandom(p, g); m <= 0 {
		t.Errorf("PER margin over random = %.2f, want positive", m)
	}
}

func TestPERColdEventDiffusionUsesOnlyContextPaths(t *testing.T) {
	d, s, g := testEnv(t)
	p, err := NewPER(d, s, g, PERConfig{Rank: 4, FactorSteps: 1000, LearningRate: 0.1, Steps: 1000, NegativePerPositive: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cold := s.TestEvents[0]
	if v := p.diffusion(pathUXUX, 0, cold); v != 0 {
		t.Errorf("cold event has UXUX diffusion %v", v)
	}
	if v := p.diffusion(pathUUX, 0, cold); v != 0 {
		t.Errorf("cold event has UUX diffusion %v", v)
	}
}

func TestPERFactorizationApproximatesDiffusion(t *testing.T) {
	// The factorized content-path score should correlate with the raw
	// diffusion values — the bottleneck blurs, it must not destroy.
	d, s, g := testEnv(t)
	cfg := DefaultPERConfig()
	cfg.FactorSteps = 400000
	cfg.Steps = 1000
	p, err := NewPER(d, s, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var hi, lo float64
	nHi, nLo := 0, 0
	for i := 0; i < g.UserEvent.NumEdges(); i += 3 {
		e := g.UserEvent.Edge(i)
		raw := p.diffusion(pathUXCX, e.A, e.B)
		est := float64(p.pathScore(pathUXCX, e.A, e.B))
		if raw > 0.2 {
			hi += est
			nHi++
		} else if raw < 0.05 {
			lo += est
			nLo++
		}
	}
	if nHi == 0 || nLo == 0 {
		t.Skip("diffusion values too uniform in tiny fixture")
	}
	if hi/float64(nHi) <= lo/float64(nLo) {
		t.Errorf("factorized scores do not track diffusion: hi %.4f <= lo %.4f", hi/float64(nHi), lo/float64(nLo))
	}
}

func TestPERRejectsBadConfig(t *testing.T) {
	d, s, g := testEnv(t)
	if _, err := NewPER(d, s, g, PERConfig{LearningRate: 0}); err == nil {
		t.Error("zero LR accepted")
	}
	if _, err := NewPER(d, s, g, PERConfig{LearningRate: 0.1, Rank: 0}); err == nil {
		t.Error("zero rank accepted")
	}
}

// fixedScorer gives every pair the same event preference, isolating the
// partner term in CFAPR-E tests.
type fixedScorer struct{}

func (fixedScorer) ScoreUserEvent(u, x int32) float32 { return 0.1 }

func TestCFAPREPartnerHistory(t *testing.T) {
	d, s, _ := testEnv(t)
	c, err := NewCFAPRE(d, s, fixedScorer{})
	if err != nil {
		t.Fatal(err)
	}
	// Find a pair with training co-attendance.
	var u, v int32 = -1, -1
	for _, x := range s.TrainEvents {
		users := d.EventUsers(x)
		if len(users) >= 2 {
			u, v = users[0], users[1]
			break
		}
	}
	if u < 0 {
		t.Skip("no co-attendance in tiny dataset")
	}
	if c.PartnerScore(u, v) <= 0 {
		t.Errorf("co-attending pair (%d,%d) has zero partner score", u, v)
	}
	if !c.HasHistory(u) {
		t.Error("HasHistory false for co-attending user")
	}
	// A user pair with no history must score zero — the paper's handicap.
	if c.PartnerScore(u, u+1) != 0 && c.coAttend[u][u+1] == 0 {
		t.Error("no-history pair has nonzero partner score")
	}
	// Triple score decomposes.
	want := float32(0.2) + c.PartnerScore(u, v)
	if got := c.ScoreTriple(u, v, 0); got != want {
		t.Errorf("ScoreTriple = %v, want %v", got, want)
	}
}

func TestCFAPRERequiresScorer(t *testing.T) {
	d, s, _ := testEnv(t)
	if _, err := NewCFAPRE(d, s, nil); err == nil {
		t.Error("nil event scorer accepted")
	}
}

func TestCFAPREMoreCoAttendanceScoresHigher(t *testing.T) {
	d, s, _ := testEnv(t)
	c, err := NewCFAPRE(d, s, fixedScorer{})
	if err != nil {
		t.Fatal(err)
	}
	// Log-damped counts are monotone.
	var best float32
	var bestPair [2]int32
	for u := int32(0); int(u) < d.NumUsers; u++ {
		for v, n := range c.coAttend[u] {
			if n > best {
				best = n
				bestPair = [2]int32{u, v}
			}
		}
	}
	if best < 2 {
		t.Skip("no pair with repeated co-attendance")
	}
	high := c.PartnerScore(bestPair[0], bestPair[1])
	// Find a pair with exactly one co-attendance.
	for u := int32(0); int(u) < d.NumUsers; u++ {
		for v, n := range c.coAttend[u] {
			if n == 1 {
				if low := c.PartnerScore(u, v); low >= high {
					t.Errorf("1-event pair scores %v >= %v of %v-event pair", low, high, best)
				}
				return
			}
		}
	}
}
