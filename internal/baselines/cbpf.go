package baselines

import (
	"fmt"

	"ebsn/internal/ebsnet"
	"ebsn/internal/graph"
	"ebsn/internal/rng"
	"ebsn/internal/vecmath"
)

// CBPFConfig parameterizes the collective Poisson factorization baseline.
type CBPFConfig struct {
	K            int
	LearningRate float32
	// NegativePerPositive is how many unobserved (zero-count) pairs are
	// sampled per observed pair during training.
	NegativePerPositive int
	Steps               int64
	Seed                uint64
}

// DefaultCBPFConfig mirrors the shared training budget.
func DefaultCBPFConfig() CBPFConfig {
	return CBPFConfig{K: 60, LearningRate: 0.02, NegativePerPositive: 2, Steps: 2_000_000, Seed: 1}
}

// CBPF reproduces the structure of the paper's CBPF baseline [36]: a
// Poisson response model in which an event has no free embedding — its
// vector is the *average* of the latent vectors of its auxiliary
// information (content words, region, time slots). The paper credits this
// averaging scheme for CBPF's weakness ("refrains CBPF from learning a
// more robust representation"), so the scheme is kept verbatim while the
// original's Bayesian variational inference is replaced by stochastic
// gradient ascent on the Poisson likelihood (substitution documented in
// DESIGN.md §2).
type CBPF struct {
	cfg   CBPFConfig
	g     *ebsnet.Graphs
	users *mat
	words *mat
	locs  *mat
	times *mat

	// eventVec caches the averaged event representation; it is refreshed
	// lazily after training finishes (cacheValid).
	eventCache [][]float32
}

// NewCBPF builds and trains the baseline.
func NewCBPF(g *ebsnet.Graphs, cfg CBPFConfig) (*CBPF, error) {
	if cfg.K <= 0 || cfg.LearningRate <= 0 || cfg.Steps < 0 || cfg.NegativePerPositive < 0 {
		return nil, fmt.Errorf("baselines: invalid CBPF config %+v", cfg)
	}
	src := rng.New(cfg.Seed)
	c := &CBPF{
		cfg:   cfg,
		g:     g,
		users: newNonNegMat(g.UserEvent.NumA(), cfg.K, src),
		words: newNonNegMat(g.EventWord.NumB(), cfg.K, src),
		locs:  newNonNegMat(g.EventLocation.NumB(), cfg.K, src),
		times: newNonNegMat(g.EventTime.NumB(), cfg.K, src),
	}
	c.train(src)
	c.buildEventCache()
	return c, nil
}

// newNonNegMat initializes with small positive values: Poisson rates
// require non-negative factors.
func newNonNegMat(n, k int, src *rng.Source) *mat {
	m := &mat{n: n, k: k, data: make([]float32, n*k)}
	for i := range m.data {
		m.data[i] = float32(0.05 + 0.05*src.Float64())
	}
	return m
}

const cbpfEps = 1e-6

// eventInto writes the averaged auxiliary representation of event x into
// out: mean of its TF-IDF-weighted word vectors, its region vector, and
// its three time-slot vectors.
func (c *CBPF) eventInto(x int32, out []float32) {
	for f := range out {
		out[f] = 0
	}
	var mass float32

	words, ws := c.g.EventWord.Neighbors(graph.SideA, x)
	for i, w := range words {
		vecmath.Axpy(ws[i], c.words.row(w), out)
		mass += ws[i]
	}
	locs, _ := c.g.EventLocation.Neighbors(graph.SideA, x)
	for _, l := range locs {
		vecmath.Axpy(1, c.locs.row(l), out)
		mass++
	}
	times, _ := c.g.EventTime.Neighbors(graph.SideA, x)
	for _, t := range times {
		vecmath.Axpy(1, c.times.row(t), out)
		mass++
	}
	if mass > 0 {
		vecmath.Scale(1/mass, out)
	}
}

// train ascends the Poisson log likelihood y·log λ − λ with λ = u·x̄,
// alternating observed pairs (y = 1) and sampled zeros (y = 0). Factors
// are clamped to a small positive floor after every update.
func (c *CBPF) train(src *rng.Source) {
	ux := c.g.UserEvent
	if ux.NumEdges() == 0 {
		return
	}
	k := c.cfg.K
	xbar := make([]float32, k)
	grad := make([]float32, k)
	for s := int64(0); s < c.cfg.Steps; s++ {
		e := ux.SampleEdge(src)
		c.updatePair(e.A, e.B, 1, xbar, grad)
		for t := 0; t < c.cfg.NegativePerPositive; t++ {
			nx := int32(src.Intn(ux.NumB()))
			if ux.HasEdge(e.A, nx) {
				continue
			}
			c.updatePair(e.A, nx, 0, xbar, grad)
		}
	}
}

// updatePair applies one Poisson gradient step for (u, x) with observed
// count y. d/dλ [y log λ − λ] = y/λ − 1; the chain rule pushes the scaled
// averaged event vector into the user factor and vice versa.
func (c *CBPF) updatePair(u, x int32, y float32, xbar, grad []float32) {
	c.eventInto(x, xbar)
	uv := c.users.row(u)
	lambda := vecmath.Dot(uv, xbar)
	if lambda < cbpfEps {
		lambda = cbpfEps
	}
	gl := y/lambda - 1
	// Clip: the Poisson gradient explodes as λ → 0 on positives.
	if gl > 10 {
		gl = 10
	}
	lr := c.cfg.LearningRate * gl

	for f := range grad {
		grad[f] = lr * xbar[f]
	}
	// Auxiliary factors receive the user-side gradient spread through the
	// averaging (equal share; the exact Jacobian scales by each source's
	// weight/mass, which the averaging makes uniform enough in practice).
	auxLR := lr / 3
	words, ws := c.g.EventWord.Neighbors(graph.SideA, x)
	var wmass float32
	for _, w := range ws {
		wmass += w
	}
	if wmass > 0 {
		for i, w := range words {
			scale := auxLR * ws[i] / wmass
			row := c.words.row(w)
			for f := range row {
				row[f] += scale * uv[f]
				if row[f] < cbpfEps {
					row[f] = cbpfEps
				}
			}
		}
	}
	locs, _ := c.g.EventLocation.Neighbors(graph.SideA, x)
	for _, l := range locs {
		row := c.locs.row(l)
		for f := range row {
			row[f] += auxLR / float32(len(locs)) * uv[f]
			if row[f] < cbpfEps {
				row[f] = cbpfEps
			}
		}
	}
	times, _ := c.g.EventTime.Neighbors(graph.SideA, x)
	for _, t := range times {
		row := c.times.row(t)
		for f := range row {
			row[f] += auxLR / float32(len(times)) * uv[f]
			if row[f] < cbpfEps {
				row[f] = cbpfEps
			}
		}
	}
	for f := range uv {
		uv[f] += grad[f]
		if uv[f] < cbpfEps {
			uv[f] = cbpfEps
		}
	}
}

func (c *CBPF) buildEventCache() {
	n := c.g.UserEvent.NumB()
	c.eventCache = make([][]float32, n)
	for x := 0; x < n; x++ {
		v := make([]float32, c.cfg.K)
		c.eventInto(int32(x), v)
		c.eventCache[x] = v
	}
}

// ScoreUserEvent returns the Poisson rate λ = u·x̄ (monotone in the
// recommendation ranking).
func (c *CBPF) ScoreUserEvent(u, x int32) float32 {
	return vecmath.Dot(c.users.row(u), c.eventCache[x])
}

// ScoreTriple applies the shared pairwise extension framework. Social
// affinity uses cosine similarity of user factors: raw Poisson factors
// have wildly uneven norms, and cosine keeps the term commensurate with
// the two preference terms.
func (c *CBPF) ScoreTriple(u, partner, x int32) float32 {
	uv, pv := c.users.row(u), c.users.row(partner)
	social := vecmath.Dot(uv, pv)
	nu, np := vecmath.Norm(uv), vecmath.Norm(pv)
	if nu > 0 && np > 0 {
		social /= nu * np
	}
	return c.ScoreUserEvent(u, x) + c.ScoreUserEvent(partner, x) + social
}
