package baselines

import (
	"math"

	"ebsn/internal/ebsnet"
)

// Random is the chance-level reference scorer: a deterministic hash of
// the pair, independent of any signal. Under the paper's protocol with R
// negatives it scores Accuracy@n ≈ n/(R+1); any model below it is broken.
type Random struct {
	// Salt decorrelates independent Random instances.
	Salt uint32
}

func hashScore(a, b, salt uint32) float32 {
	h := a*2654435761 ^ b*40503 ^ salt*2246822519
	h ^= h >> 15
	h *= 2654435761
	h ^= h >> 13
	return float32(h%1_000_003) / 1_000_003
}

// ScoreUserEvent returns a pair-deterministic pseudo-random score.
func (r Random) ScoreUserEvent(u, x int32) float32 {
	return hashScore(uint32(u), uint32(x), r.Salt)
}

// ScoreTriple returns a triple-deterministic pseudo-random score.
func (r Random) ScoreTriple(u, partner, x int32) float32 {
	return hashScore(uint32(u)^uint32(partner)<<8, uint32(x), r.Salt^0x9e37)
}

// Popularity ranks events by training attendance volume — the classic
// non-personalized baseline. It is structurally blind on the paper's
// task: cold events have zero training attendance, so every test event
// ties at the bottom and the protocol (ties lose) scores it at zero.
// Including it makes the cold-start framing concrete: popularity, the
// strongest baseline on warm catalogs, is the weakest possible one here.
type Popularity struct {
	counts []float32
	social [][]int32 // friends per user for the partner term
}

// NewPopularity counts training attendance per event.
func NewPopularity(d *ebsnet.Dataset, s *ebsnet.Split) *Popularity {
	p := &Popularity{counts: make([]float32, d.NumEvents())}
	for _, a := range s.TrainAttendance {
		p.counts[a[1]]++
	}
	p.social = make([][]int32, d.NumUsers)
	for u := int32(0); int(u) < d.NumUsers; u++ {
		p.social[u] = d.Friends(u)
	}
	return p
}

// ScoreUserEvent returns log(1 + training attendance of x), identical
// for all users.
func (p *Popularity) ScoreUserEvent(u, x int32) float32 {
	return float32(math.Log1p(float64(p.counts[x])))
}

// ScoreTriple adds a friend-count partner prior to the popularity score:
// recommend popular events with popular friends.
func (p *Popularity) ScoreTriple(u, partner, x int32) float32 {
	social := float32(0)
	for _, f := range p.social[u] {
		if f == partner {
			social = 1
			break
		}
	}
	return p.ScoreUserEvent(u, x) + social + float32(math.Log1p(float64(len(p.social[partner]))))*0.1
}
