package baselines

import (
	"fmt"
	"math"

	"ebsn/internal/ebsnet"
	"ebsn/internal/eval"
)

// CFAPRE is the paper's CFAPR-E baseline: the collaborative-filtering
// activity-partner recommender of [22] extended to the joint task per
// [23]. Event preference p(x|u) comes from an externally supplied scorer
// — the paper plugs in GEM-A's learned vectors — while the partner score
// comes exclusively from historical partner data: users who co-attended
// training events with u. Its two designed-in handicaps, kept faithfully:
//
//  1. Partners are limited to users who have co-attended with u before;
//     everyone else gets a zero partner score.
//  2. Users with no co-attendance history cannot be served at all (their
//     partner scores are uniformly zero).
type CFAPRE struct {
	event eval.EventScorer
	// coAttend[u] maps partner -> number of co-attended training events.
	coAttend []map[int32]float32
}

// NewCFAPRE builds the co-attendance history from training attendance.
// The event scorer is typically a trained GEM-A model, as in the paper.
func NewCFAPRE(d *ebsnet.Dataset, s *ebsnet.Split, event eval.EventScorer) (*CFAPRE, error) {
	if event == nil {
		return nil, fmt.Errorf("baselines: CFAPR-E requires an event scorer")
	}
	c := &CFAPRE{event: event, coAttend: make([]map[int32]float32, d.NumUsers)}
	for _, x := range s.TrainEvents {
		users := d.EventUsers(x)
		// Guard against extremely large events blowing up the pair count:
		// partner signal in CF comes from small-group co-attendance, and
		// the paper's Douban events are overwhelmingly small.
		if len(users) > 200 {
			continue
		}
		for i := 0; i < len(users); i++ {
			for j := i + 1; j < len(users); j++ {
				a, b := users[i], users[j]
				if c.coAttend[a] == nil {
					c.coAttend[a] = make(map[int32]float32)
				}
				if c.coAttend[b] == nil {
					c.coAttend[b] = make(map[int32]float32)
				}
				c.coAttend[a][b]++
				c.coAttend[b][a]++
			}
		}
	}
	return c, nil
}

// PartnerScore returns the CF partner affinity: log-damped co-attendance
// count, zero for pairs with no history.
func (c *CFAPRE) PartnerScore(u, partner int32) float32 {
	m := c.coAttend[u]
	if m == nil {
		return 0
	}
	n := m[partner]
	if n == 0 {
		return 0
	}
	return float32(math.Log1p(float64(n)))
}

// HasHistory reports whether user u has any co-attendance history (the
// paper notes CFAPR cannot work for users without it).
func (c *CFAPRE) HasHistory(u int32) bool { return len(c.coAttend[u]) > 0 }

// ScoreTriple combines the plugged-in event preference for both users
// with the history-based partner score.
func (c *CFAPRE) ScoreTriple(u, partner, x int32) float32 {
	return c.event.ScoreUserEvent(u, x) + c.event.ScoreUserEvent(partner, x) + c.PartnerScore(u, partner)
}

// ScoreUserEvent delegates to the plugged-in event scorer: CFAPR-E is a
// partner recommender and contributes nothing of its own to pure event
// preference.
func (c *CFAPRE) ScoreUserEvent(u, x int32) float32 {
	return c.event.ScoreUserEvent(u, x)
}
