package baselines

import (
	"fmt"
	"math"

	"ebsn/internal/ebsnet"
	"ebsn/internal/rng"
	"ebsn/internal/vecmath"
)

// DeepWalkConfig parameterizes the homogeneous-embedding baseline.
type DeepWalkConfig struct {
	K            int
	WalkLength   int
	WalksPerNode int
	Window       int
	// Negatives per skip-gram pair.
	Negatives    int
	LearningRate float32
	Seed         uint64
}

// DefaultDeepWalkConfig follows the DeepWalk paper's common settings
// scaled to the shared budget.
func DefaultDeepWalkConfig() DeepWalkConfig {
	return DeepWalkConfig{
		K: 60, WalkLength: 40, WalksPerNode: 10, Window: 5,
		Negatives: 2, LearningRate: 0.025, Seed: 1,
	}
}

// DeepWalk is the homogeneous network-embedding family of the paper's
// related work (Section VI-C: DeepWalk/LINE/node2vec "can only handle
// single homogeneous networks"). It flattens the EBSN into one untyped
// node space — users, events, regions, time slots and words all become
// plain vertices — runs truncated random walks, and trains skip-gram with
// degree-based negative sampling. Included to let the harness demonstrate
// the related-work claim: treating the heterogeneous graphs homogeneously
// discards the relation semantics GEM exploits, and cold events in
// particular are reachable only through low-weight content/context edges
// that the uniform walk underuses.
type DeepWalk struct {
	cfg DeepWalkConfig

	// Unified node space offsets.
	userBase, eventBase, regionBase, timeBase, wordBase int32
	numNodes                                            int

	adj   [][]int32 // flattened adjacency
	emb   []float32 // node embeddings (input vectors)
	noise []int32   // degree^0.75 sampling table (prebuilt permutation-free)
}

// NewDeepWalk flattens the relation graphs and trains.
func NewDeepWalk(g *ebsnet.Graphs, cfg DeepWalkConfig) (*DeepWalk, error) {
	if cfg.K <= 0 || cfg.WalkLength < 2 || cfg.WalksPerNode <= 0 || cfg.Window <= 0 || cfg.LearningRate <= 0 {
		return nil, fmt.Errorf("baselines: invalid DeepWalk config %+v", cfg)
	}
	dw := &DeepWalk{cfg: cfg}
	nu := g.UserEvent.NumA()
	nx := g.UserEvent.NumB()
	nr := g.EventLocation.NumB()
	nt := g.EventTime.NumB()
	nw := g.EventWord.NumB()
	dw.userBase = 0
	dw.eventBase = int32(nu)
	dw.regionBase = dw.eventBase + int32(nx)
	dw.timeBase = dw.regionBase + int32(nr)
	dw.wordBase = dw.timeBase + int32(nt)
	dw.numNodes = nu + nx + nr + nt + nw

	dw.adj = make([][]int32, dw.numNodes)
	addBoth := func(a, b int32) {
		dw.adj[a] = append(dw.adj[a], b)
		dw.adj[b] = append(dw.adj[b], a)
	}
	for _, e := range g.UserEvent.Edges() {
		addBoth(dw.userBase+e.A, dw.eventBase+e.B)
	}
	for _, e := range g.EventLocation.Edges() {
		addBoth(dw.eventBase+e.A, dw.regionBase+e.B)
	}
	for _, e := range g.EventTime.Edges() {
		addBoth(dw.eventBase+e.A, dw.timeBase+e.B)
	}
	for _, e := range g.EventWord.Edges() {
		addBoth(dw.eventBase+e.A, dw.wordBase+e.B)
	}
	for _, e := range g.UserUser.Edges() {
		// Symmetric graphs store both directions; add each once.
		if e.A < e.B {
			addBoth(dw.userBase+e.A, dw.userBase+e.B)
		}
	}

	src := rng.New(cfg.Seed)
	dw.emb = make([]float32, dw.numNodes*cfg.K)
	ctx := make([]float32, dw.numNodes*cfg.K)
	for i := range dw.emb {
		dw.emb[i] = float32(src.Gaussian(0, 0.01))
	}

	// Degree-proportional noise table (unigram^0.75 bucketing).
	const noiseTable = 1 << 18
	dw.noise = make([]int32, 0, noiseTable)
	var total float64
	pows := make([]float64, dw.numNodes)
	for v, nbrs := range dw.adj {
		if len(nbrs) == 0 {
			continue
		}
		pows[v] = math.Pow(float64(len(nbrs)), 0.75)
		total += pows[v]
	}
	for v := range dw.adj {
		n := int(pows[v] / total * noiseTable)
		for i := 0; i < n; i++ {
			dw.noise = append(dw.noise, int32(v))
		}
	}
	if len(dw.noise) == 0 {
		return nil, fmt.Errorf("baselines: DeepWalk flattened graph has no edges")
	}

	dw.train(src, ctx)
	return dw, nil
}

func (dw *DeepWalk) row(buf []float32, v int32) []float32 {
	return buf[int(v)*dw.cfg.K : (int(v)+1)*dw.cfg.K]
}

// train runs truncated random walks and skip-gram with negative sampling.
func (dw *DeepWalk) train(src *rng.Source, ctx []float32) {
	k := dw.cfg.K
	walk := make([]int32, 0, dw.cfg.WalkLength)
	grad := make([]float32, k)
	lr := dw.cfg.LearningRate
	for rep := 0; rep < dw.cfg.WalksPerNode; rep++ {
		for start := 0; start < dw.numNodes; start++ {
			if len(dw.adj[start]) == 0 {
				continue
			}
			walk = walk[:0]
			cur := int32(start)
			for len(walk) < dw.cfg.WalkLength {
				walk = append(walk, cur)
				nbrs := dw.adj[cur]
				if len(nbrs) == 0 {
					break
				}
				cur = nbrs[src.Intn(len(nbrs))]
			}
			// Skip-gram over the walk.
			for i, center := range walk {
				lo := i - dw.cfg.Window
				if lo < 0 {
					lo = 0
				}
				hi := i + dw.cfg.Window
				if hi >= len(walk) {
					hi = len(walk) - 1
				}
				cv := dw.row(dw.emb, center)
				for j := lo; j <= hi; j++ {
					if j == i {
						continue
					}
					target := walk[j]
					for f := range grad {
						grad[f] = 0
					}
					// Positive pair.
					tv := dw.row(ctx, target)
					g := lr * (1 - vecmath.FastSigmoid(vecmath.Dot(cv, tv)))
					vecmath.Axpy(g, tv, grad)
					vecmath.Axpy(g, cv, tv)
					// Negatives.
					for t := 0; t < dw.cfg.Negatives; t++ {
						neg := dw.noise[src.Intn(len(dw.noise))]
						if neg == target {
							continue
						}
						nv := dw.row(ctx, neg)
						gn := -lr * vecmath.FastSigmoid(vecmath.Dot(cv, nv))
						vecmath.Axpy(gn, nv, grad)
						vecmath.Axpy(gn, cv, nv)
					}
					vecmath.Axpy(1, grad, cv)
				}
			}
		}
	}
}

// UserVec and EventVec expose embeddings in the unified space.
func (dw *DeepWalk) UserVec(u int32) []float32 { return dw.row(dw.emb, dw.userBase+u) }

// EventVec returns the event's embedding.
func (dw *DeepWalk) EventVec(x int32) []float32 { return dw.row(dw.emb, dw.eventBase+x) }

// ScoreUserEvent is the skip-gram inner product.
func (dw *DeepWalk) ScoreUserEvent(u, x int32) float32 {
	return vecmath.Dot(dw.UserVec(u), dw.EventVec(x))
}

// ScoreTriple applies the shared pairwise extension framework.
func (dw *DeepWalk) ScoreTriple(u, partner, x int32) float32 {
	return dw.ScoreUserEvent(u, x) + dw.ScoreUserEvent(partner, x) +
		vecmath.Dot(dw.UserVec(u), dw.UserVec(partner))
}
