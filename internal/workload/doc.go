// Package workload implements the scenario layer on top of the joint
// event-partner engine: group recommendation (member vectors aggregated
// into one query point under a mean or least-misery strategy),
// constrained recommendation (time-window and geo-radius constraints
// compiled into ta.EventPredicate masks the threshold walk consumes
// directly), and the "for you" feed join (top events each joined with
// their top partners via the (u+x)·u' identity). Everything here is
// pure computation over embeddings and dataset metadata — no index,
// cache, or transport state — so the facade and the serving layer can
// share one implementation of each scenario. See DESIGN.md §3.10.
package workload
