package workload

import (
	"math"
	"sort"
	"testing"
	"time"

	"ebsn/internal/ebsnet"
	"ebsn/internal/geo"
	"ebsn/internal/rng"
	"ebsn/internal/vecmath"
)

func TestParseStrategy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Strategy
		ok   bool
	}{
		{"", StrategyMean, true},
		{"mean", StrategyMean, true},
		{"least-misery", StrategyLeastMisery, true},
		{"median", 0, false},
	} {
		got, err := ParseStrategy(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("ParseStrategy(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if err == nil && got != tc.want {
			t.Fatalf("ParseStrategy(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if StrategyMean.String() != "mean" || StrategyLeastMisery.String() != "least-misery" {
		t.Fatal("strategy wire names drifted")
	}
}

func TestReduce(t *testing.T) {
	row := []float32{0.5, -1.5, 2}
	if got := StrategyLeastMisery.Reduce(row); got != -1.5 {
		t.Fatalf("least-misery = %v, want -1.5", got)
	}
	if got := StrategyMean.Reduce(row); math.Abs(float64(got-1.0/3)) > 1e-6 {
		t.Fatalf("mean = %v, want ~1/3", got)
	}
}

func TestMeanVectorIsSingleQueryPoint(t *testing.T) {
	// The linearity that makes the mean strategy one query: scoring with
	// the averaged vector must equal averaging the per-member scores.
	src := rng.New(11)
	members := make([][]float32, 4)
	for i := range members {
		v := make([]float32, 8)
		for d := range v {
			v[d] = float32(src.Gaussian(0, 1))
		}
		members[i] = v
	}
	event := make([]float32, 8)
	for d := range event {
		event[d] = float32(src.Gaussian(0, 1))
	}
	mean := MeanVector(members, nil)
	viaVector := vecmath.Dot(mean, event)
	scores := make([]float32, len(members))
	for i, m := range members {
		scores[i] = vecmath.Dot(m, event)
	}
	viaScores := StrategyMean.Reduce(scores)
	if math.Abs(float64(viaVector-viaScores)) > 1e-4 {
		t.Fatalf("mean-vector score %v vs mean-of-scores %v", viaVector, viaScores)
	}
}

func testDataset(t *testing.T) *ebsnet.Dataset {
	t.Helper()
	base := time.Date(2012, 6, 1, 18, 0, 0, 0, time.UTC)
	d := &ebsnet.Dataset{
		Name:     "workload-test",
		NumUsers: 4,
		Venues: []geo.Point{
			{Lat: 30.27, Lng: -97.74}, // downtown
			{Lat: 30.45, Lng: -97.79}, // ~20 km north
		},
	}
	for i := 0; i < 6; i++ {
		d.Events = append(d.Events, ebsnet.Event{
			Venue: int32(i % 2),
			Start: base.Add(time.Duration(i) * 24 * time.Hour),
		})
	}
	if err := d.Finalize(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCompileTimeWindow(t *testing.T) {
	d := testDataset(t)
	ids := []int32{0, 1, 2, 3, 4, 5}
	base := d.Events[0].Start

	pred, allowed := Compile(Constraint{}, d, ids)
	if pred != nil || allowed != 6 {
		t.Fatalf("zero constraint: pred=%v allowed=%d, want nil/6", pred, allowed)
	}

	// Half-open [day1, day3): events starting on day 1 and 2 only.
	c := Constraint{From: base.Add(24 * time.Hour), Until: base.Add(3 * 24 * time.Hour)}
	pred, allowed = Compile(c, d, ids)
	if allowed != 2 {
		t.Fatalf("window allowed %d events, want 2", allowed)
	}
	want := []bool{false, true, true, false, false, false}
	for i := range want {
		if pred[i] != want[i] {
			t.Fatalf("pred[%d] = %v, want %v", i, pred[i], want[i])
		}
	}
	// Boundary: an event exactly at Until is excluded, exactly at From
	// included — adjacent windows tile without overlap.
	if !c.Allow(c.From, d.Venues[0]) {
		t.Fatal("event at From excluded")
	}
	if c.Allow(c.Until, d.Venues[0]) {
		t.Fatal("event at Until included")
	}
}

func TestCompileGeoRadius(t *testing.T) {
	d := testDataset(t)
	ids := []int32{0, 1, 2, 3, 4, 5}
	// 5 km around downtown keeps only venue-0 events (even indices).
	c := Constraint{Center: d.Venues[0], RadiusKm: 5}
	pred, allowed := Compile(c, d, ids)
	if allowed != 3 {
		t.Fatalf("radius allowed %d events, want 3", allowed)
	}
	for i := range pred {
		if pred[i] != (i%2 == 0) {
			t.Fatalf("pred[%d] = %v, want %v", i, pred[i], i%2 == 0)
		}
	}
}

func TestParseConstraint(t *testing.T) {
	c, err := ParseConstraint("2012-06-02T00:00:00Z", "2012-06-04T00:00:00Z", "30.27,-97.74,5")
	if err != nil {
		t.Fatal(err)
	}
	if c.From.IsZero() || c.Until.IsZero() || c.RadiusKm != 5 || c.Center.Lat != 30.27 {
		t.Fatalf("parsed constraint %+v incomplete", c)
	}
	if _, err := ParseConstraint("not-a-time", "", ""); err == nil {
		t.Fatal("bad from accepted")
	}
	if _, err := ParseConstraint("", "", "1,2"); err == nil {
		t.Fatal("two-field within accepted")
	}
	if _, err := ParseConstraint("", "", "1,2,-3"); err == nil {
		t.Fatal("negative radius accepted")
	}
	if _, err := ParseConstraint("2012-06-04T00:00:00Z", "2012-06-02T00:00:00Z", ""); err == nil {
		t.Fatal("inverted window accepted")
	}
	z, err := ParseConstraint("", "", "")
	if err != nil || !z.IsZero() {
		t.Fatalf("empty params: %+v, %v", z, err)
	}
}

func TestConstraintKey(t *testing.T) {
	if (Constraint{}).Key() != "" {
		t.Fatal("zero constraint key not empty")
	}
	a, _ := ParseConstraint("2012-06-02T00:00:00Z", "", "")
	b, _ := ParseConstraint("2012-06-03T00:00:00Z", "", "")
	g, _ := ParseConstraint("2012-06-02T00:00:00Z", "", "30.27,-97.74,5")
	if a.Key() == b.Key() || a.Key() == g.Key() || a.Key() == "" {
		t.Fatalf("keys collide: %q %q %q", a.Key(), b.Key(), g.Key())
	}
}

func TestJoinPartners(t *testing.T) {
	src := rng.New(21)
	k := 8
	vec := func() []float32 {
		v := make([]float32, k)
		for d := range v {
			v[d] = float32(src.Gaussian(0, 1))
		}
		return v
	}
	user := vec()
	event := vec()
	partners := make([][]float32, 15)
	for i := range partners {
		partners[i] = vec()
	}

	got, _ := JoinPartners(user, event, partners, 3, 5, nil)
	if len(got) != 5 {
		t.Fatalf("got %d partners, want 5", len(got))
	}

	// Brute-force oracle over the distributed form u·x + u·u' + x·u'.
	type ps struct {
		u int32
		s float64
	}
	var all []ps
	for u, p := range partners {
		if u == 3 {
			continue
		}
		s := float64(vecmath.Dot(user, event)) + float64(vecmath.Dot(user, p)) + float64(vecmath.Dot(event, p))
		all = append(all, ps{int32(u), s})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].u < all[j].u
	})
	for i, g := range got {
		if g.Partner == 3 {
			t.Fatal("excluded partner surfaced")
		}
		if g.Partner != all[i].u {
			t.Fatalf("rank %d: partner %d, oracle %d", i, g.Partner, all[i].u)
		}
		// (u+x)·u' vs u·u' + x·u' differ only by accumulation order.
		if math.Abs(float64(g.Score)-all[i].s) > 1e-4 {
			t.Fatalf("rank %d: score %v, oracle %v", i, g.Score, all[i].s)
		}
	}
}
