package workload

import (
	"fmt"

	"ebsn/internal/vecmath"
)

// FeedPartner is one recommended companion for a feed event.
type FeedPartner struct {
	// Partner is the companion's user ID.
	Partner int32 `json:"partner"`
	// Score is the full joint score of Eqn. 8 for (user, partner, event):
	// u·x + u·u' + x·u'.
	Score float32 `json:"score"`
}

// FeedItem is one entry of a user's "for you" feed: an event joined
// with the companions it is best attended with.
type FeedItem struct {
	// Event is the event ID (dataset space).
	Event int32 `json:"event"`
	// Score is the user's own affinity u·x for the event — the key the
	// feed is ordered by.
	Score float32 `json:"score"`
	// Partners holds the top companions for this event, best first.
	Partners []FeedPartner `json:"partners"`
}

// JoinPartners ranks every partner for a fixed (user, event) pair and
// returns the top m by the joint score of Eqn. 8. For a fixed event x
// the partner-dependent part collapses to one dot product:
//
//	u·u' + x·u' = (u + x)·u'
//
// so the join is a single pass over the partner rows with the combined
// query q = u + x, plus the constant u·x. Ties break by ascending
// partner ID (the repo's canonical order). exclude drops one partner —
// the querying user, whose self-pair is degenerate. q is scratch for
// the combined query, grown as needed; the returned slice is freshly
// allocated.
func JoinPartners(userVec, eventVec []float32, partners [][]float32, exclude int32, m int, q []float32) ([]FeedPartner, []float32) {
	k := len(userVec)
	if len(eventVec) != k {
		panic(fmt.Sprintf("workload: event dim %d, want %d", len(eventVec), k))
	}
	if cap(q) < k {
		q = make([]float32, k)
	}
	q = q[:k]
	for i := range q {
		q[i] = userVec[i] + eventVec[i]
	}
	base := vecmath.Dot(userVec, eventVec)
	if m > len(partners) {
		m = len(partners)
	}
	best := make([]FeedPartner, 0, m)
	for u, p := range partners {
		if int32(u) == exclude {
			continue
		}
		s := base + vecmath.Dot(q, p)
		if len(best) < m {
			best = append(best, FeedPartner{int32(u), s})
			up := len(best) - 1
			for up > 0 && best[up].Score > best[up-1].Score {
				best[up], best[up-1] = best[up-1], best[up]
				up--
			}
		} else if m > 0 && s > best[m-1].Score {
			best[m-1] = FeedPartner{int32(u), s}
			up := m - 1
			for up > 0 && best[up].Score > best[up-1].Score {
				best[up], best[up-1] = best[up-1], best[up]
				up--
			}
		}
	}
	return best, q
}
