package workload

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"ebsn/internal/ebsnet"
	"ebsn/internal/geo"
	"ebsn/internal/ta"
)

// Constraint restricts recommendations to events inside a time window
// and/or a geographic radius — the auxiliary attributes (start time,
// venue location) the GEM model already embeds, exposed as hard filters.
// Zero-valued fields impose nothing: the zero Constraint allows every
// event.
type Constraint struct {
	// From, when non-zero, requires the event to start at or after it.
	From time.Time
	// Until, when non-zero, requires the event to start strictly before
	// it (a half-open [From, Until) window, so adjacent windows tile).
	Until time.Time
	// Center and RadiusKm, when RadiusKm > 0, require the event's venue
	// to lie within RadiusKm of Center (equirectangular distance — the
	// city-scale approximation the rest of the repo uses).
	Center   geo.Point
	RadiusKm float64
}

// IsZero reports whether the constraint allows every event, in which
// case Compile returns a nil predicate and queries take the exact
// unconstrained path.
func (c Constraint) IsZero() bool {
	return c.From.IsZero() && c.Until.IsZero() && c.RadiusKm <= 0
}

// Allow reports whether one event — by start time and venue location —
// satisfies the constraint.
func (c Constraint) Allow(start time.Time, venue geo.Point) bool {
	if !c.From.IsZero() && start.Before(c.From) {
		return false
	}
	if !c.Until.IsZero() && !start.Before(c.Until) {
		return false
	}
	if c.RadiusKm > 0 && geo.EquirectKm(c.Center, venue) > c.RadiusKm {
		return false
	}
	return true
}

// Compile evaluates the constraint over the given event IDs (typically
// the split's test events, in candidate-set order) and returns the
// ta.EventPredicate the threshold walk consumes, plus the allowed-event
// count. A zero constraint compiles to a nil predicate — the signal for
// every layer below to take its exact unconstrained path.
func Compile(c Constraint, d *ebsnet.Dataset, eventIDs []int32) (ta.EventPredicate, int) {
	if c.IsZero() {
		return nil, len(eventIDs)
	}
	pred := make(ta.EventPredicate, len(eventIDs))
	allowed := 0
	for i, x := range eventIDs {
		e := d.Events[x]
		if c.Allow(e.Start, d.Venues[e.Venue]) {
			pred[i] = true
			allowed++
		}
	}
	return pred, allowed
}

// ParseConstraint builds a Constraint from the serving layer's wire
// parameters: from and until are RFC 3339 timestamps, within is
// "lat,lng,radiusKm". Empty strings impose nothing; a from at or after
// until is rejected (the window would be empty by construction).
func ParseConstraint(from, until, within string) (Constraint, error) {
	var c Constraint
	var err error
	if from != "" {
		if c.From, err = time.Parse(time.RFC3339, from); err != nil {
			return Constraint{}, fmt.Errorf("workload: bad from %q: %w", from, err)
		}
	}
	if until != "" {
		if c.Until, err = time.Parse(time.RFC3339, until); err != nil {
			return Constraint{}, fmt.Errorf("workload: bad until %q: %w", until, err)
		}
	}
	if !c.From.IsZero() && !c.Until.IsZero() && !c.From.Before(c.Until) {
		return Constraint{}, fmt.Errorf("workload: empty window: from %v is not before until %v", c.From, c.Until)
	}
	if within != "" {
		parts := strings.Split(within, ",")
		if len(parts) != 3 {
			return Constraint{}, fmt.Errorf("workload: bad within %q: want \"lat,lng,radiusKm\"", within)
		}
		lat, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return Constraint{}, fmt.Errorf("workload: bad within latitude %q: %w", parts[0], err)
		}
		lng, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return Constraint{}, fmt.Errorf("workload: bad within longitude %q: %w", parts[1], err)
		}
		radius, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			return Constraint{}, fmt.Errorf("workload: bad within radius %q: %w", parts[2], err)
		}
		if radius <= 0 {
			return Constraint{}, fmt.Errorf("workload: within radius must be positive, got %v", radius)
		}
		c.Center = geo.Point{Lat: lat, Lng: lng}
		c.RadiusKm = radius
	}
	return c, nil
}

// Key renders the constraint as a short canonical string — the
// serving layer's cache-key component, so distinct constraints never
// share a cache entry. The zero constraint renders as the empty string.
func (c Constraint) Key() string {
	if c.IsZero() {
		return ""
	}
	var b strings.Builder
	if !c.From.IsZero() {
		b.WriteString("f")
		b.WriteString(strconv.FormatInt(c.From.UnixNano(), 36))
	}
	if !c.Until.IsZero() {
		b.WriteString("u")
		b.WriteString(strconv.FormatInt(c.Until.UnixNano(), 36))
	}
	if c.RadiusKm > 0 {
		b.WriteString("g")
		b.WriteString(strconv.FormatFloat(c.Center.Lat, 'g', -1, 64))
		b.WriteString(",")
		b.WriteString(strconv.FormatFloat(c.Center.Lng, 'g', -1, 64))
		b.WriteString(",")
		b.WriteString(strconv.FormatFloat(c.RadiusKm, 'g', -1, 64))
	}
	return b.String()
}
