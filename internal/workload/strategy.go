package workload

import "fmt"

// Strategy selects how a group's member preferences combine into one
// group score. The paper's score is an inner product, so the mean
// strategy collapses to a single query: mean_m(u_m·x) = (mean_m u_m)·x —
// one averaged vector queries any index unchanged. Least misery is not
// linear (min does not distribute over the dot product) and reduces
// per-member score panels instead.
type Strategy uint8

// The supported aggregation strategies.
const (
	// StrategyMean averages member scores — equivalently, queries with
	// the averaged member vector.
	StrategyMean Strategy = iota
	// StrategyLeastMisery takes the minimum member score: the group goes
	// where its least-enthusiastic member still wants to go.
	StrategyLeastMisery
)

// String returns the wire name used by the API and the bench flags.
func (s Strategy) String() string {
	switch s {
	case StrategyMean:
		return "mean"
	case StrategyLeastMisery:
		return "least-misery"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// ParseStrategy parses a wire name ("mean" or "least-misery"); the
// empty string defaults to mean.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "", "mean":
		return StrategyMean, nil
	case "least-misery":
		return StrategyLeastMisery, nil
	default:
		return 0, fmt.Errorf("workload: unknown strategy %q (want \"mean\" or \"least-misery\")", s)
	}
}

// Reduce collapses one item's member-score row to the group score under
// the strategy. Panics on an empty row — a group always has members.
func (s Strategy) Reduce(memberScores []float32) float32 {
	if len(memberScores) == 0 {
		panic("workload: Reduce on empty member scores")
	}
	switch s {
	case StrategyLeastMisery:
		min := memberScores[0]
		for _, v := range memberScores[1:] {
			if v < min {
				min = v
			}
		}
		return min
	default:
		var sum float32
		for _, v := range memberScores {
			sum += v
		}
		return sum / float32(len(memberScores))
	}
}

// MeanVector averages the member vectors into dst (grown as needed) —
// the single query point the mean strategy hands to any event index.
// All members must share one dimension; panics otherwise or when the
// member list is empty.
func MeanVector(members [][]float32, dst []float32) []float32 {
	if len(members) == 0 {
		panic("workload: MeanVector on empty member list")
	}
	k := len(members[0])
	if cap(dst) < k {
		dst = make([]float32, k)
	}
	dst = dst[:k]
	for i := range dst {
		dst[i] = 0
	}
	for j, m := range members {
		if len(m) != k {
			panic(fmt.Sprintf("workload: member %d has dim %d, want %d", j, len(m), k))
		}
		for i, v := range m {
			dst[i] += v
		}
	}
	inv := 1 / float32(len(members))
	for i := range dst {
		dst[i] *= inv
	}
	return dst
}
