// Package rng provides the deterministic random-number machinery used
// throughout the reproduction: a small, fast, splittable generator so every
// worker goroutine gets an independent stream, plus the specialized
// distributions the paper needs (Gaussian initialization, the Geometric rank
// distribution of the adaptive sampler, and Zipf for the synthetic corpus).
//
// Determinism matters here: experiments are specified by a seed, and the
// same seed must reproduce the same dataset, the same training trajectory
// (modulo Hogwild races), and the same evaluation negatives.
package rng

import "math"

// splitmix64 advances a state word and returns a well-mixed 64-bit output.
// It is the standard seeding/mixing function from Vigna's xoshiro family.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a xoshiro256** generator. It is not safe for concurrent use;
// create one per goroutine via Split.
type Source struct {
	s [4]uint64
	// spare Gaussian from the Box-Muller pair, if any.
	gauss    float64
	hasGauss bool
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	var src Source
	st := seed
	for i := range src.s {
		src.s[i] = splitmix64(&st)
	}
	// xoshiro must not start in the all-zero state.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 1
	}
	return &src
}

// Split returns a new Source whose stream is a deterministic function of
// the receiver's current state and the stream index, suitable for handing
// to a worker goroutine.
func (s *Source) Split(stream uint64) *Source {
	st := s.Uint64() ^ (stream * 0x9e3779b97f4a7c15)
	return New(splitmix64(&st))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling would be overkill here;
	// 64-bit modulo bias at our n (< 2^32) is ~2^-32 and irrelevant for SGD.
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float32 returns a uniform float32 in [0, 1).
func (s *Source) Float32() float32 {
	return float32(s.Uint64()>>40) * (1.0 / (1 << 24))
}

// NormFloat64 returns a standard normal variate via Box-Muller.
func (s *Source) NormFloat64() float64 {
	if s.hasGauss {
		s.hasGauss = false
		return s.gauss
	}
	var u, v float64
	for {
		u = s.Float64()
		if u > 0 {
			break
		}
	}
	v = s.Float64()
	r := math.Sqrt(-2 * math.Log(u))
	s.gauss = r * math.Sin(2*math.Pi*v)
	s.hasGauss = true
	return r * math.Cos(2*math.Pi*v)
}

// Gaussian returns a normal variate with the given mean and standard
// deviation. GEM initializes embeddings with N(0, 0.01).
func (s *Source) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*s.NormFloat64()
}

// Perm fills out with a random permutation of [0, len(out)).
func (s *Source) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// Shuffle randomly permutes the first n indices using the provided swap
// function, mirroring math/rand.Shuffle.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
