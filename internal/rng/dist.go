package rng

import "math"

// Geometric samples ranks from the truncated geometric-style distribution
// the paper uses for the adaptive noise sampler (Eqn. 6):
//
//	p(s) ∝ exp(-s/λ),  s ∈ {0, 1, …, n-1}
//
// Higher-ranked (smaller s) positions are exponentially more likely, with λ
// tuning how concentrated the mass is near the top of the ranking.
type Geometric struct {
	lambda float64
	n      int
	// 1 - exp(-1/λ), the per-step success probability of the equivalent
	// geometric distribution before truncation.
	p float64
	// normalizing mass of the truncated support: F(s) = (1 - q^(s+1)) /
	// (1 - q^n) with q = exp(-1/λ). Retained for Prob.
	q    float64
	mass float64
	// Walker alias table over the truncated support. The distribution is
	// fixed at construction, so O(1) table lookups replace the
	// inverse-CDF's per-draw Log1p/Log pair — which profiled at ~19% of a
	// whole training step, since every noise draw takes one rank sample.
	prob  []float64
	alias []int32
}

// NewGeometric returns a sampler over ranks {0, …, n-1} with density
// parameter lambda > 0. It panics on invalid parameters because a silently
// degenerate sampler would invalidate an entire training run.
func NewGeometric(lambda float64, n int) *Geometric {
	if lambda <= 0 {
		panic("rng: Geometric lambda must be positive")
	}
	if n <= 0 {
		panic("rng: Geometric support must be non-empty")
	}
	q := math.Exp(-1 / lambda)
	g := &Geometric{
		lambda: lambda,
		n:      n,
		p:      1 - q,
		q:      q,
		mass:   1 - math.Pow(q, float64(n)),
	}
	g.buildAlias()
	return g
}

// buildAlias constructs the Walker alias table for weights q^s,
// s ∈ {0,…,n-1}. O(n) build, 12 bytes per rank; samplers are built once
// per embedding matrix, so the cost is negligible next to training.
// Deep-rank weights underflowing to zero is fine: Walker's method leaves
// them with acceptance probability zero.
func (g *Geometric) buildAlias() {
	n := g.n
	scaled := make([]float64, n)
	var total float64
	w := 1.0
	for s := 0; s < n; s++ {
		scaled[s] = w
		total += w
		w *= g.q
	}
	scale := float64(n) / total
	for s := range scaled {
		scaled[s] *= scale
	}
	g.prob = make([]float64, n)
	g.alias = make([]int32, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i := n - 1; i >= 0; i-- {
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		g.prob[s] = scaled[s]
		g.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Residual slots are exactly 1 up to floating-point error.
	for _, l := range large {
		g.prob[l] = 1
	}
	for _, s := range small {
		g.prob[s] = 1
	}
}

// Lambda returns the density parameter.
func (g *Geometric) Lambda() float64 { return g.lambda }

// N returns the support size.
func (g *Geometric) N() int { return g.n }

// Sample draws one rank in [0, n) from the alias table. O(1), two RNG
// words, no transcendentals.
func (g *Geometric) Sample(src *Source) int {
	i := src.Intn(g.n)
	if src.Float64() < g.prob[i] {
		return i
	}
	return int(g.alias[i])
}

// SampleSet draws m ranks (with replacement, as in Algorithm 1) into out.
func (g *Geometric) SampleSet(src *Source, out []int) {
	for i := range out {
		out[i] = g.Sample(src)
	}
}

// Prob returns the probability of rank s under the truncated distribution.
// Exposed for tests that validate the sampler empirically.
func (g *Geometric) Prob(s int) float64 {
	if s < 0 || s >= g.n {
		return 0
	}
	return g.p * math.Pow(g.q, float64(s)) / g.mass
}

// Zipf samples integers in [0, n) with probability ∝ 1/(rank+1)^exponent.
// The synthetic corpus generator uses it for word frequencies and event
// popularity skew. Sampling is inverse-CDF over a precomputed cumulative
// table: O(log n) per draw, exact.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler with the given exponent over [0, n).
func NewZipf(exponent float64, n int) *Zipf {
	if n <= 0 {
		panic("rng: Zipf support must be non-empty")
	}
	if exponent < 0 {
		panic("rng: Zipf exponent must be non-negative")
	}
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), exponent)
		cdf[i] = total
	}
	inv := 1 / total
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf}
}

// Sample draws one value in [0, n).
func (z *Zipf) Sample(src *Source) int {
	u := src.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
