package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeometricProbSumsToOne(t *testing.T) {
	for _, lambda := range []float64{0.5, 10, 200, 1000} {
		g := NewGeometric(lambda, 500)
		var sum float64
		for s := 0; s < 500; s++ {
			sum += g.Prob(s)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("lambda=%v: probabilities sum to %v", lambda, sum)
		}
	}
}

func TestGeometricMonotoneDecreasing(t *testing.T) {
	g := NewGeometric(100, 1000)
	for s := 1; s < 1000; s++ {
		if g.Prob(s) > g.Prob(s-1) {
			t.Fatalf("Prob(%d)=%v > Prob(%d)=%v", s, g.Prob(s), s-1, g.Prob(s-1))
		}
	}
}

func TestGeometricSampleRange(t *testing.T) {
	src := New(1)
	g := NewGeometric(50, 30)
	for i := 0; i < 50000; i++ {
		s := g.Sample(src)
		if s < 0 || s >= 30 {
			t.Fatalf("sample %d out of range [0,30)", s)
		}
	}
}

func TestGeometricEmpiricalMatchesProb(t *testing.T) {
	src := New(99)
	const n, draws = 20, 400000
	g := NewGeometric(5, n)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[g.Sample(src)]++
	}
	for s := 0; s < n; s++ {
		want := g.Prob(s) * draws
		if want < 50 {
			continue // too rare for a tight check
		}
		if math.Abs(float64(counts[s])-want) > 6*math.Sqrt(want) {
			t.Errorf("rank %d: observed %d, expected ~%.0f", s, counts[s], want)
		}
	}
}

func TestGeometricSmallLambdaConcentratesOnTop(t *testing.T) {
	src := New(7)
	g := NewGeometric(0.5, 1000)
	top := 0
	for i := 0; i < 10000; i++ {
		if g.Sample(src) < 3 {
			top++
		}
	}
	if float64(top)/10000 < 0.95 {
		t.Errorf("lambda=0.5 put only %d/10000 mass on top-3 ranks", top)
	}
}

func TestGeometricLargeLambdaNearUniform(t *testing.T) {
	// As λ → ∞ the distribution approaches uniform over the support.
	g := NewGeometric(1e7, 100)
	if ratio := g.Prob(0) / g.Prob(99); ratio > 1.001 {
		t.Errorf("lambda=1e7: Prob(0)/Prob(99) = %v, want ~1", ratio)
	}
}

func TestGeometricPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"lambda<=0": func() { NewGeometric(0, 10) },
		"n<=0":      func() { NewGeometric(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestGeometricSampleSet(t *testing.T) {
	src := New(2)
	g := NewGeometric(10, 50)
	out := make([]int, 8)
	g.SampleSet(src, out)
	for _, s := range out {
		if s < 0 || s >= 50 {
			t.Fatalf("SampleSet produced out-of-range rank %d", s)
		}
	}
}

func TestGeometricSampleAlwaysInRangeProperty(t *testing.T) {
	f := func(seed uint64, lamScale uint8, n uint16) bool {
		support := int(n%500) + 1
		lambda := 0.1 + float64(lamScale)
		g := NewGeometric(lambda, support)
		src := New(seed)
		for i := 0; i < 100; i++ {
			s := g.Sample(src)
			if s < 0 || s >= support {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZipfSkew(t *testing.T) {
	src := New(31)
	z := NewZipf(1.2, 1000)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Sample(src)]++
	}
	if counts[0] < counts[100] {
		t.Error("Zipf head is not heavier than tail")
	}
	if counts[0] == 0 {
		t.Error("Zipf never drew the head element")
	}
}

func TestZipfZeroExponentIsUniform(t *testing.T) {
	src := New(37)
	z := NewZipf(0, 10)
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Sample(src)]++
	}
	want := float64(draws) / 10
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, expected ~%.0f", v, c, want)
		}
	}
}

func TestZipfRange(t *testing.T) {
	src := New(41)
	z := NewZipf(2, 7)
	for i := 0; i < 10000; i++ {
		v := z.Sample(src)
		if v < 0 || v >= 7 {
			t.Fatalf("Zipf sample %d out of range", v)
		}
	}
}

func BenchmarkGeometricSample(b *testing.B) {
	src := New(1)
	g := NewGeometric(200, 64113)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Sample(src)
	}
}
