package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestSplitStreamsIndependent(t *testing.T) {
	parent := New(7)
	s1 := parent.Split(1)
	s2 := parent.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams produced %d/100 identical outputs", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(9).Split(3)
	b := New(9).Split(3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		v := s.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, expected ~%.0f", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	var sum float64
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / 100000; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestFloat32Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 = %v out of [0,1)", v)
		}
	}
}

func TestGaussianMoments(t *testing.T) {
	s := New(13)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := s.Gaussian(2, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("Gaussian mean %v, want ~2", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Errorf("Gaussian variance %v, want ~9", variance)
	}
}

func TestPerm(t *testing.T) {
	s := New(17)
	out := make([]int, 20)
	s.Perm(out)
	seen := make(map[int]bool)
	for _, v := range out {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", out)
		}
		seen[v] = true
	}
}

func TestShuffle(t *testing.T) {
	s := New(19)
	v := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	s.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
	sum := 0
	for _, x := range v {
		sum += x
	}
	if sum != 45 {
		t.Fatalf("Shuffle lost elements: %v", v)
	}
}
