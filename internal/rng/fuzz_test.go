package rng

import "testing"

// FuzzGeometricSample asserts range safety for arbitrary parameters.
func FuzzGeometricSample(f *testing.F) {
	f.Add(uint64(1), 200.0, 100)
	f.Add(uint64(2), 0.001, 1)
	f.Add(uint64(3), 1e9, 7)
	f.Fuzz(func(t *testing.T, seed uint64, lambda float64, n int) {
		if lambda <= 0 || lambda != lambda || n <= 0 || n > 1<<20 {
			t.Skip()
		}
		g := NewGeometric(lambda, n)
		src := New(seed)
		for i := 0; i < 64; i++ {
			s := g.Sample(src)
			if s < 0 || s >= n {
				t.Fatalf("sample %d out of [0,%d) for lambda=%v", s, n, lambda)
			}
		}
	})
}

// FuzzIntn asserts bounded sampling stays in range for any seed/bound.
func FuzzIntn(f *testing.F) {
	f.Add(uint64(0), 1)
	f.Add(uint64(42), 1000000)
	f.Fuzz(func(t *testing.T, seed uint64, n int) {
		if n <= 0 {
			t.Skip()
		}
		src := New(seed)
		for i := 0; i < 32; i++ {
			if v := src.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	})
}
