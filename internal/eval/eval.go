// Package eval implements the paper's evaluation protocols (Section V-B):
//
//   - Cold-start event recommendation: for every user-event pair in the
//     holdout attendance set, rank the true event against 1000 events
//     sampled from the holdout events the user did not attend; a hit is a
//     rank within the top n.
//   - Joint event-partner recommendation: for every ground-truth triple
//     (u, u', x), rank it against 500 negative triples with the event
//     replaced and 500 with the partner replaced.
//
// Both protocols report Accuracy@n — the hit ratio over all test cases —
// and both are deterministic for a fixed seed, with per-case RNG streams
// so results do not depend on the worker count.
package eval

import (
	"fmt"
	"runtime"
	"sync"

	"ebsn/internal/ebsnet"
	"ebsn/internal/rng"
)

// EventScorer scores a user-event pair; higher means more recommended.
// core.Model, every baseline, and snapshots all implement it.
type EventScorer interface {
	ScoreUserEvent(u, x int32) float32
}

// TripleScorer scores a (user, partner, event) triple per Eqn. 8.
type TripleScorer interface {
	ScoreTriple(u, partner, x int32) float32
}

// Config controls a protocol run.
type Config struct {
	// Ns are the cutoffs to report Accuracy@n for (paper: 1,5,10,15,20).
	Ns []int
	// NegativeEvents is the negative-sample count per case for the event
	// task (paper: 1000) and for the event-replacement half of the
	// partner task (paper: 500).
	NegativeEvents int
	// NegativeUsers is the user-replacement count for the partner task
	// (paper: 500).
	NegativeUsers int
	// MaxCases caps the evaluated cases (0 = all). Cases are subsampled
	// deterministically and evenly across the test set; the hit ratio is
	// an unbiased estimate of the full metric.
	MaxCases int
	// Workers bounds evaluation parallelism (0 = GOMAXPROCS).
	Workers int
	Seed    uint64
}

// DefaultConfig returns the paper's protocol parameters.
func DefaultConfig() Config {
	return Config{
		Ns:             []int{1, 5, 10, 15, 20},
		NegativeEvents: 1000,
		NegativeUsers:  500,
		Seed:           99,
	}
}

func (c *Config) validate() error {
	if len(c.Ns) == 0 {
		return fmt.Errorf("eval: no cutoffs requested")
	}
	for _, n := range c.Ns {
		if n <= 0 {
			return fmt.Errorf("eval: cutoff %d invalid", n)
		}
	}
	if c.NegativeEvents <= 0 {
		return fmt.Errorf("eval: NegativeEvents must be positive")
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return nil
}

// Result is the outcome of one protocol run.
type Result struct {
	Ns       []int
	Accuracy []float64
	Cases    int
}

// At returns Accuracy@n, or an error if n was not requested.
func (r Result) At(n int) (float64, error) {
	for i, v := range r.Ns {
		if v == n {
			return r.Accuracy[i], nil
		}
	}
	return 0, fmt.Errorf("eval: Accuracy@%d was not computed", n)
}

// MustAt is At for callers with static cutoffs (the experiment harness).
func (r Result) MustAt(n int) float64 {
	v, err := r.At(n)
	if err != nil {
		panic(err)
	}
	return v
}

// EventRecommendation runs the cold-start event protocol over the given
// holdout class (Validation for hyper-parameter tuning, Test for
// reporting).
func EventRecommendation(sc EventScorer, d *ebsnet.Dataset, s *ebsnet.Split, class ebsnet.EventClass, cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	cases := subsamplePairs(s.HoldoutAttendance(class), cfg.MaxCases)
	if len(cases) == 0 {
		return Result{}, fmt.Errorf("eval: no %v attendance cases", class)
	}
	pool := s.HoldoutEvents(class)
	if len(pool) < 2 {
		return Result{}, fmt.Errorf("eval: %v event pool too small (%d)", class, len(pool))
	}

	maxN := maxOf(cfg.Ns)
	hits := make([]int64, len(cfg.Ns))
	var mu sync.Mutex
	parallelFor(len(cases), cfg.Workers, func(lo, hi int) {
		local := make([]int64, len(cfg.Ns))
		for i := lo; i < hi; i++ {
			u, x := cases[i][0], cases[i][1]
			src := rng.New(cfg.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
			pos := sc.ScoreUserEvent(u, x)
			rank := 1
			// Draw the full negative budget; rejected candidates (the true
			// event, or events u actually attended) do not consume it. The
			// early break once rank exceeds the largest cutoff cannot
			// change any hit decision because rank only grows.
			for got, tries := 0, 0; got < cfg.NegativeEvents && tries < cfg.NegativeEvents*10 && rank <= maxN; tries++ {
				neg := pool[src.Intn(len(pool))]
				if neg == x || d.Attended(u, neg) {
					continue
				}
				got++
				// Ties count against the positive: a model that cannot
				// separate the true event from noise (e.g. collapsed
				// all-zero embeddings) must not look perfect.
				if s := sc.ScoreUserEvent(u, neg); s >= pos {
					rank++
				}
			}
			for j, n := range cfg.Ns {
				if rank <= n {
					local[j]++
				}
			}
		}
		mu.Lock()
		for j := range hits {
			hits[j] += local[j]
		}
		mu.Unlock()
	})
	return tally(cfg.Ns, hits, len(cases)), nil
}

// PartnerRecommendation runs the joint event-partner protocol over
// ground-truth triples (built by ebsnet.PartnerGroundTruth).
func PartnerRecommendation(sc TripleScorer, d *ebsnet.Dataset, s *ebsnet.Split, triples []ebsnet.PartnerTriple, class ebsnet.EventClass, cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if cfg.NegativeUsers <= 0 {
		return Result{}, fmt.Errorf("eval: NegativeUsers must be positive for the partner task")
	}
	triples = subsampleTriples(triples, cfg.MaxCases)
	if len(triples) == 0 {
		return Result{}, fmt.Errorf("eval: no ground-truth triples")
	}
	pool := s.HoldoutEvents(class)
	if len(pool) < 2 {
		return Result{}, fmt.Errorf("eval: %v event pool too small (%d)", class, len(pool))
	}

	maxN := maxOf(cfg.Ns)
	hits := make([]int64, len(cfg.Ns))
	var mu sync.Mutex
	parallelFor(len(triples), cfg.Workers, func(lo, hi int) {
		local := make([]int64, len(cfg.Ns))
		for i := lo; i < hi; i++ {
			tr := triples[i]
			src := rng.New(cfg.Seed ^ (uint64(i)+1)*0xbf58476d1ce4e5b9)
			pos := sc.ScoreTriple(tr.User, tr.Partner, tr.Event)
			rank := 1
			// Fix (u, u'), replace the event with holdout events neither
			// attended (the paper's X^test − (X_u ∩ X_u'), tightened to
			// the union to avoid scoring other true positives as noise).
			for got, tries := 0, 0; got < cfg.NegativeEvents && tries < cfg.NegativeEvents*10 && rank <= maxN; tries++ {
				neg := pool[src.Intn(len(pool))]
				if neg == tr.Event || d.Attended(tr.User, neg) || d.Attended(tr.Partner, neg) {
					continue
				}
				got++
				if s := sc.ScoreTriple(tr.User, tr.Partner, neg); s >= pos {
					rank++
				}
			}
			// Fix (u, x), replace the partner with users who did not
			// attend x (the paper's U − U_x).
			for got, tries := 0, 0; got < cfg.NegativeUsers && tries < cfg.NegativeUsers*10 && rank <= maxN; tries++ {
				neg := int32(src.Intn(d.NumUsers))
				if neg == tr.User || neg == tr.Partner || d.Attended(neg, tr.Event) {
					continue
				}
				got++
				if s := sc.ScoreTriple(tr.User, neg, tr.Event); s >= pos {
					rank++
				}
			}
			for j, n := range cfg.Ns {
				if rank <= n {
					local[j]++
				}
			}
		}
		mu.Lock()
		for j := range hits {
			hits[j] += local[j]
		}
		mu.Unlock()
	})
	return tally(cfg.Ns, hits, len(triples)), nil
}

func tally(ns []int, hits []int64, cases int) Result {
	res := Result{Ns: append([]int(nil), ns...), Accuracy: make([]float64, len(ns)), Cases: cases}
	for i := range ns {
		res.Accuracy[i] = float64(hits[i]) / float64(cases)
	}
	return res
}

// subsamplePairs picks an even deterministic subsample of at most max
// cases (0 = all).
func subsamplePairs(cases [][2]int32, max int) [][2]int32 {
	if max <= 0 || len(cases) <= max {
		return cases
	}
	out := make([][2]int32, 0, max)
	stride := float64(len(cases)) / float64(max)
	for i := 0; i < max; i++ {
		out = append(out, cases[int(float64(i)*stride)])
	}
	return out
}

func subsampleTriples(cases []ebsnet.PartnerTriple, max int) []ebsnet.PartnerTriple {
	if max <= 0 || len(cases) <= max {
		return cases
	}
	out := make([]ebsnet.PartnerTriple, 0, max)
	stride := float64(len(cases)) / float64(max)
	for i := 0; i < max; i++ {
		out = append(out, cases[int(float64(i)*stride)])
	}
	return out
}

// parallelFor splits [0, n) into contiguous chunks across workers.
func parallelFor(n, workers int, f func(lo, hi int)) {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func maxOf(s []int) int {
	m := s[0]
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}
