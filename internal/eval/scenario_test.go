package eval

import (
	"testing"

	"ebsn/internal/ebsnet"
	"ebsn/internal/workload"
)

func scenarioConfig() Config {
	cfg := DefaultConfig()
	cfg.NegativeEvents = 200
	cfg.NegativeUsers = 100
	cfg.MaxCases = 300
	return cfg
}

func TestGroupEventRecommendationOracle(t *testing.T) {
	d, s := testData(t)
	cfg := scenarioConfig()
	for _, strat := range []workload.Strategy{workload.StrategyMean, workload.StrategyLeastMisery} {
		res, err := GroupEventRecommendation(oracleScorer{d}, d, s, ebsnet.Test, 3, strat, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// The oracle scores every attended pair 1: the true event (attended
		// by the case's user, usually by co-members too) cannot be beaten
		// by negatives no member attended, under either aggregation, but
		// ties with other attended events keep Accuracy@1 below exactly 1.
		if acc := res.MustAt(20); acc < 0.9 {
			t.Fatalf("%v: oracle group Accuracy@20 = %v, want ≥0.9", strat, acc)
		}
		anti, err := GroupEventRecommendation(antiOracle{d}, d, s, ebsnet.Test, 3, strat, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if acc := anti.MustAt(1); acc > 0.1 {
			t.Fatalf("%v: anti-oracle group Accuracy@1 = %v, want ~0", strat, acc)
		}
		if res.Cases == 0 || res.Cases != anti.Cases {
			t.Fatalf("%v: case counts diverge: %d vs %d", strat, res.Cases, anti.Cases)
		}
	}

	if _, err := GroupEventRecommendation(oracleScorer{d}, d, s, ebsnet.Test, 1, workload.StrategyMean, cfg); err == nil {
		t.Fatal("group size 1 accepted")
	}
}

func TestGroupEventRecommendationDeterministic(t *testing.T) {
	d, s := testData(t)
	cfg := scenarioConfig()
	a, err := GroupEventRecommendation(oracleScorer{d}, d, s, ebsnet.Test, 3, workload.StrategyLeastMisery, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := GroupEventRecommendation(oracleScorer{d}, d, s, ebsnet.Test, 3, workload.StrategyLeastMisery, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Accuracy {
		if a.Accuracy[i] != b.Accuracy[i] {
			t.Fatalf("worker count changed Accuracy@%d: %v vs %v", a.Ns[i], a.Accuracy[i], b.Accuracy[i])
		}
	}
}

func TestConstrainedEventRecommendation(t *testing.T) {
	d, s := testData(t)
	cfg := scenarioConfig()

	// An even-ID filter: roughly half the holdout universe.
	allow := func(x int32) bool { return x%2 == 0 }
	res, err := ConstrainedEventRecommendation(oracleScorer{d}, d, s, ebsnet.Test, allow, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.MustAt(20); acc < 0.9 {
		t.Fatalf("oracle constrained Accuracy@20 = %v, want ≥0.9", acc)
	}
	full, err := ConstrainedEventRecommendation(oracleScorer{d}, d, s, ebsnet.Test, func(int32) bool { return true }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	unconstrained, err := EventRecommendation(oracleScorer{d}, d, s, ebsnet.Test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// An allow-everything filter is the base protocol exactly (same case
	// set, same pool, but a different per-case RNG stream constant — so
	// compare case counts, the part that must agree bit for bit).
	if full.Cases != unconstrained.Cases {
		t.Fatalf("allow-all cases = %d, base protocol %d", full.Cases, unconstrained.Cases)
	}

	if _, err := ConstrainedEventRecommendation(oracleScorer{d}, d, s, ebsnet.Test, nil, cfg); err == nil {
		t.Fatal("nil predicate accepted")
	}
	if _, err := ConstrainedEventRecommendation(oracleScorer{d}, d, s, ebsnet.Test, func(int32) bool { return false }, cfg); err == nil {
		t.Fatal("allow-nothing filter accepted")
	}
}

func TestFeedRecommendation(t *testing.T) {
	d, s := testData(t)
	triples := ebsnet.PartnerGroundTruth(d, s, ebsnet.Test)
	if len(triples) == 0 {
		t.Skip("no ground-truth triples in the tiny dataset")
	}
	cfg := scenarioConfig()

	res, err := FeedRecommendation(oracleScorer{d}, oracleScorer{d}, d, s, triples, ebsnet.Test, 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.MustAt(20); acc < 0.5 {
		t.Fatalf("oracle feed Accuracy@20 = %v, want ≥0.5", acc)
	}

	// The joint hit is monotone in m: a tighter partner cutoff can only
	// lose cases.
	tight, err := FeedRecommendation(oracleScorer{d}, oracleScorer{d}, d, s, triples, ebsnet.Test, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Accuracy {
		if tight.Accuracy[i] > res.Accuracy[i] {
			t.Fatalf("Accuracy@%d grew when m shrank: %v > %v", res.Ns[i], tight.Accuracy[i], res.Accuracy[i])
		}
	}

	// And monotone vs. the pure event protocol: requiring the partner to
	// rank too can only lose cases relative to ranking events alone.
	events, err := eventOnlyAccuracy(d, s, triples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Accuracy {
		if res.Accuracy[i] > events.Accuracy[i]+1e-9 {
			t.Fatalf("joint Accuracy@%d = %v exceeds event-only %v", res.Ns[i], res.Accuracy[i], events.Accuracy[i])
		}
	}

	anti, err := FeedRecommendation(antiOracle{d}, antiOracle{d}, d, s, triples, ebsnet.Test, 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := anti.MustAt(1); acc > 0.1 {
		t.Fatalf("anti-oracle feed Accuracy@1 = %v, want ~0", acc)
	}

	if _, err := FeedRecommendation(oracleScorer{d}, oracleScorer{d}, d, s, triples, ebsnet.Test, 0, cfg); err == nil {
		t.Fatal("m=0 accepted")
	}
}

// eventOnlyAccuracy reruns FeedRecommendation's event stage with the
// partner stage made un-failable (m = #users), giving the event-only
// upper bound over the same cases and RNG streams.
func eventOnlyAccuracy(d *ebsnet.Dataset, s *ebsnet.Split, triples []ebsnet.PartnerTriple, cfg Config) (Result, error) {
	return FeedRecommendation(oracleScorer{d}, constScorer{}, d, s, triples, ebsnet.Test, d.NumUsers, cfg)
}
