package eval

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"ebsn/internal/ebsnet"
)

// RankingMetrics is the richer metric set computed by the full-ranking
// evaluation mode: whereas the paper reports Accuracy@n against sampled
// negatives, a library user tuning a deployment usually wants the
// sampled-negative-free versions too.
type RankingMetrics struct {
	Cases int
	// MRR is the mean reciprocal rank of the true event.
	MRR float64
	// MeanRank is the average 1-based rank of the true event.
	MeanRank float64
	// RecallAt maps cutoff n to the fraction of cases ranked within n.
	RecallAt map[int]float64
	// NDCGAt maps cutoff n to mean normalized discounted cumulative gain
	// (binary relevance, one relevant item per case: 1/log2(1+rank) when
	// rank ≤ n).
	NDCGAt map[int]float64
}

// FullRankingConfig controls the exhaustive evaluation mode.
type FullRankingConfig struct {
	// Ns are the cutoffs for Recall@n and NDCG@n.
	Ns []int
	// MaxCases caps evaluated cases (0 = all), deterministically
	// subsampled.
	MaxCases int
	// Workers bounds parallelism (0 = 1).
	Workers int
}

// EventRecommendationFullRanking ranks each held-out attendance's true
// event against the *entire* holdout event pool (no negative sampling):
// the metric a production dashboard would track. Ties rank pessimistically,
// consistent with the sampled protocol.
func EventRecommendationFullRanking(sc EventScorer, d *ebsnet.Dataset, s *ebsnet.Split, class ebsnet.EventClass, cfg FullRankingConfig) (RankingMetrics, error) {
	if len(cfg.Ns) == 0 {
		return RankingMetrics{}, fmt.Errorf("eval: no cutoffs requested")
	}
	for _, n := range cfg.Ns {
		if n <= 0 {
			return RankingMetrics{}, fmt.Errorf("eval: cutoff %d invalid", n)
		}
	}
	cases := subsamplePairs(s.HoldoutAttendance(class), cfg.MaxCases)
	if len(cases) == 0 {
		return RankingMetrics{}, fmt.Errorf("eval: no %v attendance cases", class)
	}
	pool := s.HoldoutEvents(class)
	if len(pool) < 2 {
		return RankingMetrics{}, fmt.Errorf("eval: %v event pool too small", class)
	}

	type acc struct {
		mrr, meanRank float64
		recall, ndcg  map[int]float64
	}
	var mu sync.Mutex
	total := acc{recall: map[int]float64{}, ndcg: map[int]float64{}}

	parallelFor(len(cases), cfg.Workers, func(lo, hi int) {
		local := acc{recall: map[int]float64{}, ndcg: map[int]float64{}}
		for i := lo; i < hi; i++ {
			u, x := cases[i][0], cases[i][1]
			pos := sc.ScoreUserEvent(u, x)
			rank := 1
			for _, other := range pool {
				if other == x || d.Attended(u, other) {
					// The user's other true events are not competitors.
					continue
				}
				if sc.ScoreUserEvent(u, other) >= pos {
					rank++
				}
			}
			local.mrr += 1 / float64(rank)
			local.meanRank += float64(rank)
			for _, n := range cfg.Ns {
				if rank <= n {
					local.recall[n]++
					local.ndcg[n] += 1 / math.Log2(1+float64(rank))
				}
			}
		}
		mu.Lock()
		total.mrr += local.mrr
		total.meanRank += local.meanRank
		for _, n := range cfg.Ns {
			total.recall[n] += local.recall[n]
			total.ndcg[n] += local.ndcg[n]
		}
		mu.Unlock()
	})

	m := RankingMetrics{
		Cases:    len(cases),
		MRR:      total.mrr / float64(len(cases)),
		MeanRank: total.meanRank / float64(len(cases)),
		RecallAt: make(map[int]float64, len(cfg.Ns)),
		NDCGAt:   make(map[int]float64, len(cfg.Ns)),
	}
	for _, n := range cfg.Ns {
		m.RecallAt[n] = total.recall[n] / float64(len(cases))
		m.NDCGAt[n] = total.ndcg[n] / float64(len(cases))
	}
	return m, nil
}

// String renders the metrics compactly, cutoffs sorted.
func (m RankingMetrics) String() string {
	ns := make([]int, 0, len(m.RecallAt))
	for n := range m.RecallAt {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	out := fmt.Sprintf("cases=%d MRR=%.4f meanRank=%.1f", m.Cases, m.MRR, m.MeanRank)
	for _, n := range ns {
		out += fmt.Sprintf(" recall@%d=%.3f ndcg@%d=%.3f", n, m.RecallAt[n], n, m.NDCGAt[n])
	}
	return out
}

// PartnerRecommendationFullRanking is the sampling-free version of the
// joint protocol: each ground-truth triple is ranked against every
// holdout event (with the pair fixed) and every user as replacement
// partner (with the event fixed). Quadratic-ish but tractable at harness
// scales; the definitive number when sampling noise matters.
func PartnerRecommendationFullRanking(sc TripleScorer, d *ebsnet.Dataset, s *ebsnet.Split, triples []ebsnet.PartnerTriple, class ebsnet.EventClass, cfg FullRankingConfig) (RankingMetrics, error) {
	if len(cfg.Ns) == 0 {
		return RankingMetrics{}, fmt.Errorf("eval: no cutoffs requested")
	}
	for _, n := range cfg.Ns {
		if n <= 0 {
			return RankingMetrics{}, fmt.Errorf("eval: cutoff %d invalid", n)
		}
	}
	triples = subsampleTriples(triples, cfg.MaxCases)
	if len(triples) == 0 {
		return RankingMetrics{}, fmt.Errorf("eval: no ground-truth triples")
	}
	pool := s.HoldoutEvents(class)
	if len(pool) < 2 {
		return RankingMetrics{}, fmt.Errorf("eval: %v event pool too small", class)
	}

	type acc struct {
		mrr, meanRank float64
		recall, ndcg  map[int]float64
	}
	var mu sync.Mutex
	total := acc{recall: map[int]float64{}, ndcg: map[int]float64{}}

	parallelFor(len(triples), cfg.Workers, func(lo, hi int) {
		local := acc{recall: map[int]float64{}, ndcg: map[int]float64{}}
		for i := lo; i < hi; i++ {
			tr := triples[i]
			pos := sc.ScoreTriple(tr.User, tr.Partner, tr.Event)
			rank := 1
			for _, x := range pool {
				if x == tr.Event || d.Attended(tr.User, x) || d.Attended(tr.Partner, x) {
					continue
				}
				if sc.ScoreTriple(tr.User, tr.Partner, x) >= pos {
					rank++
				}
			}
			for v := int32(0); int(v) < d.NumUsers; v++ {
				if v == tr.User || v == tr.Partner || d.Attended(v, tr.Event) {
					continue
				}
				if sc.ScoreTriple(tr.User, v, tr.Event) >= pos {
					rank++
				}
			}
			local.mrr += 1 / float64(rank)
			local.meanRank += float64(rank)
			for _, n := range cfg.Ns {
				if rank <= n {
					local.recall[n]++
					local.ndcg[n] += 1 / math.Log2(1+float64(rank))
				}
			}
		}
		mu.Lock()
		total.mrr += local.mrr
		total.meanRank += local.meanRank
		for _, n := range cfg.Ns {
			total.recall[n] += local.recall[n]
			total.ndcg[n] += local.ndcg[n]
		}
		mu.Unlock()
	})

	m := RankingMetrics{
		Cases:    len(triples),
		MRR:      total.mrr / float64(len(triples)),
		MeanRank: total.meanRank / float64(len(triples)),
		RecallAt: make(map[int]float64, len(cfg.Ns)),
		NDCGAt:   make(map[int]float64, len(cfg.Ns)),
	}
	for _, n := range cfg.Ns {
		m.RecallAt[n] = total.recall[n] / float64(len(triples))
		m.NDCGAt[n] = total.ndcg[n] / float64(len(triples))
	}
	return m, nil
}
