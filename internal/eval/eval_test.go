package eval

import (
	"math"
	"testing"

	"ebsn/internal/datagen"
	"ebsn/internal/ebsnet"
)

var (
	cachedData  *ebsnet.Dataset
	cachedSplit *ebsnet.Split
)

func testData(t testing.TB) (*ebsnet.Dataset, *ebsnet.Split) {
	t.Helper()
	if cachedData != nil {
		return cachedData, cachedSplit
	}
	d, err := datagen.Generate(datagen.TinyConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	s, err := ebsnet.ChronologicalSplit(d, ebsnet.DefaultSplitConfig())
	if err != nil {
		t.Fatal(err)
	}
	cachedData, cachedSplit = d, s
	return d, s
}

// oracleScorer knows the ground truth: attended pairs score 1, others 0,
// so Accuracy@n must be ~1 for any n under the negative-sampling protocol.
type oracleScorer struct{ d *ebsnet.Dataset }

func (o oracleScorer) ScoreUserEvent(u, x int32) float32 {
	if o.d.Attended(u, x) {
		return 1
	}
	return 0
}

func (o oracleScorer) ScoreTriple(u, p, x int32) float32 {
	s := o.ScoreUserEvent(u, x) + o.ScoreUserEvent(p, x)
	if o.d.AreFriends(u, p) {
		s++
	}
	return s
}

// antiOracle inverts the oracle: the true item always loses.
type antiOracle struct{ d *ebsnet.Dataset }

func (o antiOracle) ScoreUserEvent(u, x int32) float32 {
	if o.d.Attended(u, x) {
		return 0
	}
	return 1
}

func (o antiOracle) ScoreTriple(u, p, x int32) float32 {
	return -oracleScorer{o.d}.ScoreTriple(u, p, x)
}

// constScorer ties everything.
type constScorer struct{}

func (constScorer) ScoreUserEvent(u, x int32) float32 { return 0.5 }
func (constScorer) ScoreTriple(u, p, x int32) float32 { return 0.5 }

func TestEventRecommendationOracleHitsEverything(t *testing.T) {
	d, s := testData(t)
	cfg := DefaultConfig()
	cfg.NegativeEvents = 200
	cfg.MaxCases = 300
	res, err := EventRecommendation(oracleScorer{d}, d, s, ebsnet.Test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.MustAt(1); acc < 0.999 {
		t.Errorf("oracle Accuracy@1 = %v, want ~1", acc)
	}
	if res.Cases != 300 {
		t.Errorf("cases = %d, want capped 300", res.Cases)
	}
}

func TestEventRecommendationAntiOracleMissesEverything(t *testing.T) {
	d, s := testData(t)
	cfg := DefaultConfig()
	cfg.NegativeEvents = 200
	cfg.MaxCases = 200
	res, err := EventRecommendation(antiOracle{d}, d, s, ebsnet.Test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.MustAt(20); acc > 0.02 {
		t.Errorf("anti-oracle Accuracy@20 = %v, want ~0", acc)
	}
}

func TestEventRecommendationTiesAreMisses(t *testing.T) {
	// A constant scorer ties every negative; ties count against the
	// positive so degenerate models (collapsed embeddings) score zero.
	d, s := testData(t)
	cfg := DefaultConfig()
	cfg.NegativeEvents = 100
	cfg.MaxCases = 100
	res, err := EventRecommendation(constScorer{}, d, s, ebsnet.Test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.MustAt(20); acc != 0 {
		t.Errorf("const scorer Accuracy@20 = %v; ties must rank pessimistically", acc)
	}
}

func TestEventRecommendationDeterministicAcrossWorkers(t *testing.T) {
	d, s := testData(t)
	cfg := DefaultConfig()
	cfg.NegativeEvents = 150
	cfg.MaxCases = 250
	run := func(workers int) Result {
		c := cfg
		c.Workers = workers
		res, err := EventRecommendation(oracleScorer{d}, d, s, ebsnet.Test, c)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r8 := run(1), run(8)
	for i := range r1.Accuracy {
		if r1.Accuracy[i] != r8.Accuracy[i] {
			t.Fatalf("worker count changed results: %v vs %v", r1.Accuracy, r8.Accuracy)
		}
	}
}

func TestAccuracyMonotoneInN(t *testing.T) {
	d, s := testData(t)
	cfg := DefaultConfig()
	cfg.NegativeEvents = 100
	cfg.MaxCases = 150
	// A weak scorer: score by event ID parity noise — arbitrary but
	// deterministic; accuracy must still be monotone in n.
	res, err := EventRecommendation(weakScorer{}, d, s, ebsnet.Test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Ns); i++ {
		if res.Accuracy[i] < res.Accuracy[i-1] {
			t.Fatalf("accuracy not monotone: %v", res.Accuracy)
		}
	}
}

type weakScorer struct{}

func (weakScorer) ScoreUserEvent(u, x int32) float32 {
	return float32((int(u)*31+int(x)*17)%97) / 97
}

func TestPartnerRecommendationOracle(t *testing.T) {
	d, s := testData(t)
	triples := ebsnet.PartnerGroundTruth(d, s, ebsnet.Test)
	if len(triples) == 0 {
		t.Skip("no triples in tiny dataset")
	}
	cfg := DefaultConfig()
	cfg.NegativeEvents = 100
	cfg.NegativeUsers = 100
	cfg.MaxCases = 200
	res, err := PartnerRecommendation(oracleScorer{d}, d, s, triples, ebsnet.Test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The oracle scores the true triple 3; negative events score at most
	// 1 + friendship, negative partners at most... a friend of u who
	// attended nothing still loses. Expect near-perfect accuracy.
	if acc := res.MustAt(5); acc < 0.9 {
		t.Errorf("oracle partner Accuracy@5 = %v", acc)
	}
}

func TestPartnerRecommendationAntiOracle(t *testing.T) {
	d, s := testData(t)
	triples := ebsnet.PartnerGroundTruth(d, s, ebsnet.Test)
	if len(triples) == 0 {
		t.Skip("no triples in tiny dataset")
	}
	cfg := DefaultConfig()
	cfg.NegativeEvents = 100
	cfg.NegativeUsers = 100
	cfg.MaxCases = 100
	res, err := PartnerRecommendation(antiOracle{d}, d, s, triples, ebsnet.Test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.MustAt(20); acc > 0.05 {
		t.Errorf("anti-oracle partner Accuracy@20 = %v", acc)
	}
}

func TestRandomScorerNearChance(t *testing.T) {
	// With R negatives, a random scorer hits top-n with probability about
	// n/(R+1).
	d, s := testData(t)
	cfg := Config{Ns: []int{10}, NegativeEvents: 200, MaxCases: 500, Seed: 5}
	res, err := EventRecommendation(weakScorer2{}, d, s, ebsnet.Test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 10.0 / 201.0
	if got := res.MustAt(10); math.Abs(got-want) > 0.05 {
		t.Errorf("random scorer Accuracy@10 = %v, want ~%v", got, want)
	}
}

type weakScorer2 struct{}

func (weakScorer2) ScoreUserEvent(u, x int32) float32 {
	// A hash-based pseudo-random score independent of attendance.
	h := uint32(u)*2654435761 ^ uint32(x)*40503
	h ^= h >> 13
	h *= 2654435761
	return float32(h%100000) / 100000
}

func TestConfigValidation(t *testing.T) {
	d, s := testData(t)
	if _, err := EventRecommendation(oracleScorer{d}, d, s, ebsnet.Test, Config{Ns: nil, NegativeEvents: 10}); err == nil {
		t.Error("empty Ns accepted")
	}
	if _, err := EventRecommendation(oracleScorer{d}, d, s, ebsnet.Test, Config{Ns: []int{0}, NegativeEvents: 10}); err == nil {
		t.Error("zero cutoff accepted")
	}
	if _, err := EventRecommendation(oracleScorer{d}, d, s, ebsnet.Test, Config{Ns: []int{5}}); err == nil {
		t.Error("zero NegativeEvents accepted")
	}
	triples := []ebsnet.PartnerTriple{{User: 0, Partner: 1, Event: s.TestEvents[0]}}
	if _, err := PartnerRecommendation(oracleScorer{d}, d, s, triples, ebsnet.Test, Config{Ns: []int{5}, NegativeEvents: 10}); err == nil {
		t.Error("zero NegativeUsers accepted for partner task")
	}
	if _, err := PartnerRecommendation(oracleScorer{d}, d, s, nil, ebsnet.Test, DefaultConfig()); err == nil {
		t.Error("empty triple set accepted")
	}
}

func TestResultAt(t *testing.T) {
	r := Result{Ns: []int{1, 5}, Accuracy: []float64{0.1, 0.4}, Cases: 10}
	if v, err := r.At(5); err != nil || v != 0.4 {
		t.Errorf("At(5) = %v, %v", v, err)
	}
	if _, err := r.At(7); err == nil {
		t.Error("At(7) should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAt(7) did not panic")
		}
	}()
	r.MustAt(7)
}

func TestSubsampleEven(t *testing.T) {
	cases := make([][2]int32, 100)
	for i := range cases {
		cases[i] = [2]int32{int32(i), 0}
	}
	out := subsamplePairs(cases, 10)
	if len(out) != 10 {
		t.Fatalf("subsample size %d", len(out))
	}
	if out[0][0] != 0 || out[9][0] != 90 {
		t.Errorf("subsample not evenly spread: first=%d last=%d", out[0][0], out[9][0])
	}
	if got := subsamplePairs(cases, 0); len(got) != 100 {
		t.Error("max=0 should keep all cases")
	}
	if got := subsamplePairs(cases, 200); len(got) != 100 {
		t.Error("max>len should keep all cases")
	}
}
