package eval

import (
	"fmt"
	"sync"

	"ebsn/internal/ebsnet"
	"ebsn/internal/rng"
	"ebsn/internal/workload"
)

// This file holds the scenario-workload protocols layered on the paper's
// two base tasks: group event recommendation (member preferences
// aggregated per strategy), constrained event recommendation (the
// candidate universe restricted by a hard filter), and the joint feed
// protocol (an event hit only counts when the joined partner ranks too).
// All three keep the base protocols' determinism contract: per-case RNG
// streams keyed on the case index, so results are independent of the
// worker count.

// GroupEventRecommendation runs the cold-start event protocol for
// groups: every holdout attendance pair (u, x) whose event has at least
// two attendees becomes one case, with the group formed from u plus up
// to groupSize-1 other attendees of x — people who really did attend
// together. The group's score for an event aggregates the members'
// scores under the strategy (mean or least-misery), and negatives are
// drawn from holdout events none of the members attended, mirroring the
// partner task's tightening.
func GroupEventRecommendation(sc EventScorer, d *ebsnet.Dataset, s *ebsnet.Split, class ebsnet.EventClass, groupSize int, strategy workload.Strategy, cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if groupSize < 2 {
		return Result{}, fmt.Errorf("eval: group size %d below 2", groupSize)
	}
	all := s.HoldoutAttendance(class)
	cases := make([][2]int32, 0, len(all))
	for _, c := range all {
		if len(d.EventUsers(c[1])) >= 2 {
			cases = append(cases, c)
		}
	}
	cases = subsamplePairs(cases, cfg.MaxCases)
	if len(cases) == 0 {
		return Result{}, fmt.Errorf("eval: no %v attendance cases with co-attendees", class)
	}
	pool := s.HoldoutEvents(class)
	if len(pool) < 2 {
		return Result{}, fmt.Errorf("eval: %v event pool too small (%d)", class, len(pool))
	}

	maxN := maxOf(cfg.Ns)
	hits := make([]int64, len(cfg.Ns))
	var mu sync.Mutex
	parallelFor(len(cases), cfg.Workers, func(lo, hi int) {
		local := make([]int64, len(cfg.Ns))
		members := make([]int32, 0, groupSize)
		scores := make([]float32, 0, groupSize)
		for i := lo; i < hi; i++ {
			u, x := cases[i][0], cases[i][1]
			members = members[:0]
			members = append(members, u)
			for _, v := range d.EventUsers(x) {
				if len(members) == groupSize {
					break
				}
				if v != u {
					members = append(members, v)
				}
			}
			group := func(ev int32) float32 {
				scores = scores[:0]
				for _, m := range members {
					scores = append(scores, sc.ScoreUserEvent(m, ev))
				}
				return strategy.Reduce(scores)
			}
			src := rng.New(cfg.Seed ^ (uint64(i)+1)*0x94d049bb133111eb)
			pos := group(x)
			rank := 1
			for got, tries := 0, 0; got < cfg.NegativeEvents && tries < cfg.NegativeEvents*10 && rank <= maxN; tries++ {
				neg := pool[src.Intn(len(pool))]
				if neg == x || attendedByAny(d, members, neg) {
					continue
				}
				got++
				if s := group(neg); s >= pos {
					rank++
				}
			}
			for j, n := range cfg.Ns {
				if rank <= n {
					local[j]++
				}
			}
		}
		mu.Lock()
		for j := range hits {
			hits[j] += local[j]
		}
		mu.Unlock()
	})
	return tally(cfg.Ns, hits, len(cases)), nil
}

func attendedByAny(d *ebsnet.Dataset, users []int32, x int32) bool {
	for _, u := range users {
		if d.Attended(u, x) {
			return true
		}
	}
	return false
}

// ConstrainedEventRecommendation runs the cold-start event protocol with
// a hard candidate filter: only allowed events can be recommended, so
// cases whose true event is disallowed are dropped (no recommender could
// surface them) and negatives are drawn from the allowed holdout pool
// only. The returned accuracy therefore measures ranking quality within
// the filtered universe — the quantity the constrained endpoints serve.
func ConstrainedEventRecommendation(sc EventScorer, d *ebsnet.Dataset, s *ebsnet.Split, class ebsnet.EventClass, allow func(x int32) bool, cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if allow == nil {
		return Result{}, fmt.Errorf("eval: allow predicate is nil")
	}
	all := s.HoldoutAttendance(class)
	cases := make([][2]int32, 0, len(all))
	for _, c := range all {
		if allow(c[1]) {
			cases = append(cases, c)
		}
	}
	cases = subsamplePairs(cases, cfg.MaxCases)
	if len(cases) == 0 {
		return Result{}, fmt.Errorf("eval: no %v attendance cases satisfy the constraint", class)
	}
	fullPool := s.HoldoutEvents(class)
	pool := make([]int32, 0, len(fullPool))
	for _, x := range fullPool {
		if allow(x) {
			pool = append(pool, x)
		}
	}
	if len(pool) < 2 {
		return Result{}, fmt.Errorf("eval: allowed %v event pool too small (%d of %d)", class, len(pool), len(fullPool))
	}

	maxN := maxOf(cfg.Ns)
	hits := make([]int64, len(cfg.Ns))
	var mu sync.Mutex
	parallelFor(len(cases), cfg.Workers, func(lo, hi int) {
		local := make([]int64, len(cfg.Ns))
		for i := lo; i < hi; i++ {
			u, x := cases[i][0], cases[i][1]
			src := rng.New(cfg.Seed ^ (uint64(i)+1)*0xd6e8feb86659fd93)
			pos := sc.ScoreUserEvent(u, x)
			rank := 1
			for got, tries := 0, 0; got < cfg.NegativeEvents && tries < cfg.NegativeEvents*10 && rank <= maxN; tries++ {
				neg := pool[src.Intn(len(pool))]
				if neg == x || d.Attended(u, neg) {
					continue
				}
				got++
				if s := sc.ScoreUserEvent(u, neg); s >= pos {
					rank++
				}
			}
			for j, n := range cfg.Ns {
				if rank <= n {
					local[j]++
				}
			}
		}
		mu.Lock()
		for j := range hits {
			hits[j] += local[j]
		}
		mu.Unlock()
	})
	return tally(cfg.Ns, hits, len(cases)), nil
}

// FeedRecommendation runs the joint feed protocol over ground-truth
// triples: a case (u, u', x) counts as a hit at cutoff n only when the
// event survives the feed's first stage AND the joined partner survives
// the second — i.e. x ranks within the top n against NegativeEvents
// event negatives under the user's own score (the feed's ordering key),
// and u' ranks within the top m against NegativeUsers partner negatives
// under the full joint score with (u, x) fixed. Accuracy at each cutoff
// is the fraction of triples passing both stages.
func FeedRecommendation(esc EventScorer, tsc TripleScorer, d *ebsnet.Dataset, s *ebsnet.Split, triples []ebsnet.PartnerTriple, class ebsnet.EventClass, m int, cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if m <= 0 {
		return Result{}, fmt.Errorf("eval: feed partner cutoff m must be positive")
	}
	if cfg.NegativeUsers <= 0 {
		return Result{}, fmt.Errorf("eval: NegativeUsers must be positive for the feed task")
	}
	triples = subsampleTriples(triples, cfg.MaxCases)
	if len(triples) == 0 {
		return Result{}, fmt.Errorf("eval: no ground-truth triples")
	}
	pool := s.HoldoutEvents(class)
	if len(pool) < 2 {
		return Result{}, fmt.Errorf("eval: %v event pool too small (%d)", class, len(pool))
	}

	maxN := maxOf(cfg.Ns)
	hits := make([]int64, len(cfg.Ns))
	var mu sync.Mutex
	parallelFor(len(triples), cfg.Workers, func(lo, hi int) {
		local := make([]int64, len(cfg.Ns))
		for i := lo; i < hi; i++ {
			tr := triples[i]
			src := rng.New(cfg.Seed ^ (uint64(i)+1)*0x2545f4914f6cdd1d)
			// Stage 1: does the event make the feed? Ranked by the user's
			// own affinity, exactly how the feed orders events.
			posE := esc.ScoreUserEvent(tr.User, tr.Event)
			eventRank := 1
			for got, tries := 0, 0; got < cfg.NegativeEvents && tries < cfg.NegativeEvents*10 && eventRank <= maxN; tries++ {
				neg := pool[src.Intn(len(pool))]
				if neg == tr.Event || d.Attended(tr.User, neg) {
					continue
				}
				got++
				if s := esc.ScoreUserEvent(tr.User, neg); s >= posE {
					eventRank++
				}
			}
			// Stage 2: does the partner make the event's join? Ranked by
			// the full joint score with (u, x) fixed.
			posP := tsc.ScoreTriple(tr.User, tr.Partner, tr.Event)
			partnerRank := 1
			for got, tries := 0, 0; got < cfg.NegativeUsers && tries < cfg.NegativeUsers*10 && partnerRank <= m; tries++ {
				neg := int32(src.Intn(d.NumUsers))
				if neg == tr.User || neg == tr.Partner || d.Attended(neg, tr.Event) {
					continue
				}
				got++
				if s := tsc.ScoreTriple(tr.User, neg, tr.Event); s >= posP {
					partnerRank++
				}
			}
			if partnerRank > m {
				continue // the join misses regardless of the event cutoff
			}
			for j, n := range cfg.Ns {
				if eventRank <= n {
					local[j]++
				}
			}
		}
		mu.Lock()
		for j := range hits {
			hits[j] += local[j]
		}
		mu.Unlock()
	})
	return tally(cfg.Ns, hits, len(triples)), nil
}
