package eval

import (
	"math"
	"strings"
	"testing"

	"ebsn/internal/ebsnet"
)

func TestFullRankingOracle(t *testing.T) {
	d, s := testData(t)
	m, err := EventRecommendationFullRanking(oracleScorer{d}, d, s, ebsnet.Test,
		FullRankingConfig{Ns: []int{1, 10}, MaxCases: 200, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.MRR < 0.999 {
		t.Errorf("oracle MRR = %v, want ~1", m.MRR)
	}
	if m.MeanRank > 1.001 {
		t.Errorf("oracle mean rank = %v, want 1", m.MeanRank)
	}
	if m.RecallAt[1] < 0.999 || m.NDCGAt[1] < 0.999 {
		t.Errorf("oracle recall@1=%v ndcg@1=%v", m.RecallAt[1], m.NDCGAt[1])
	}
}

func TestFullRankingAntiOracle(t *testing.T) {
	d, s := testData(t)
	m, err := EventRecommendationFullRanking(antiOracle{d}, d, s, ebsnet.Test,
		FullRankingConfig{Ns: []int{1}, MaxCases: 100})
	if err != nil {
		t.Fatal(err)
	}
	if m.RecallAt[1] > 0.01 {
		t.Errorf("anti-oracle recall@1 = %v", m.RecallAt[1])
	}
	// Mean rank should be near the bottom of the pool.
	if m.MeanRank < 10 {
		t.Errorf("anti-oracle mean rank = %v, suspiciously good", m.MeanRank)
	}
}

func TestFullRankingTiesPessimistic(t *testing.T) {
	d, s := testData(t)
	m, err := EventRecommendationFullRanking(constScorer{}, d, s, ebsnet.Test,
		FullRankingConfig{Ns: []int{1}, MaxCases: 50})
	if err != nil {
		t.Fatal(err)
	}
	if m.RecallAt[1] != 0 {
		t.Errorf("const scorer recall@1 = %v; ties must lose", m.RecallAt[1])
	}
}

func TestFullRankingMetricsConsistency(t *testing.T) {
	d, s := testData(t)
	m, err := EventRecommendationFullRanking(weakScorer{}, d, s, ebsnet.Test,
		FullRankingConfig{Ns: []int{1, 5, 20}, MaxCases: 200, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Recall monotone in n; NDCG@n ≤ Recall@n (gain ≤ 1 per case); MRR
	// between recall@1 and 1.
	if m.RecallAt[1] > m.RecallAt[5] || m.RecallAt[5] > m.RecallAt[20] {
		t.Errorf("recall not monotone: %v", m.RecallAt)
	}
	for _, n := range []int{1, 5, 20} {
		if m.NDCGAt[n] > m.RecallAt[n]+1e-9 {
			t.Errorf("ndcg@%d=%v exceeds recall %v", n, m.NDCGAt[n], m.RecallAt[n])
		}
	}
	if m.MRR < m.RecallAt[1]-1e-9 || m.MRR > 1 {
		t.Errorf("MRR %v outside [recall@1=%v, 1]", m.MRR, m.RecallAt[1])
	}
	if m.MeanRank < 1 {
		t.Errorf("mean rank %v < 1", m.MeanRank)
	}
}

func TestFullRankingDeterministicAcrossWorkers(t *testing.T) {
	d, s := testData(t)
	run := func(w int) RankingMetrics {
		m, err := EventRecommendationFullRanking(weakScorer{}, d, s, ebsnet.Test,
			FullRankingConfig{Ns: []int{5}, MaxCases: 150, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(1), run(6)
	if math.Abs(a.MRR-b.MRR) > 1e-12 || a.RecallAt[5] != b.RecallAt[5] {
		t.Fatalf("worker count changed full-ranking results: %v vs %v", a, b)
	}
}

func TestFullRankingValidation(t *testing.T) {
	d, s := testData(t)
	if _, err := EventRecommendationFullRanking(weakScorer{}, d, s, ebsnet.Test, FullRankingConfig{}); err == nil {
		t.Error("empty cutoffs accepted")
	}
	if _, err := EventRecommendationFullRanking(weakScorer{}, d, s, ebsnet.Test, FullRankingConfig{Ns: []int{-1}}); err == nil {
		t.Error("negative cutoff accepted")
	}
}

func TestRankingMetricsString(t *testing.T) {
	m := RankingMetrics{
		Cases: 10, MRR: 0.5, MeanRank: 3,
		RecallAt: map[int]float64{5: 0.6, 1: 0.3},
		NDCGAt:   map[int]float64{5: 0.5, 1: 0.3},
	}
	out := m.String()
	if !strings.Contains(out, "recall@1") || !strings.Contains(out, "recall@5") {
		t.Errorf("String() = %q", out)
	}
	// Cutoffs render sorted.
	if strings.Index(out, "recall@1") > strings.Index(out, "recall@5") {
		t.Error("cutoffs not sorted in String()")
	}
}

func TestPartnerFullRankingOracle(t *testing.T) {
	d, s := testData(t)
	triples := ebsnet.PartnerGroundTruth(d, s, ebsnet.Test)
	if len(triples) == 0 {
		t.Skip("no triples")
	}
	m, err := PartnerRecommendationFullRanking(oracleScorer{d}, d, s, triples, ebsnet.Test,
		FullRankingConfig{Ns: []int{5}, MaxCases: 60, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The oracle's true triple scores 3 (both attend + friends); event
	// replacements lose the two attendance points, partner replacements
	// lose at least the partner-attendance point... partner replacements
	// who are friends of u and attended other events still lose one
	// point. Expect strong but maybe imperfect recall.
	if m.RecallAt[5] < 0.8 {
		t.Errorf("oracle partner full-ranking recall@5 = %v", m.RecallAt[5])
	}
}

func TestPartnerFullRankingValidation(t *testing.T) {
	d, s := testData(t)
	if _, err := PartnerRecommendationFullRanking(oracleScorer{d}, d, s, nil, ebsnet.Test,
		FullRankingConfig{Ns: []int{5}}); err == nil {
		t.Error("empty triples accepted")
	}
	triples := []ebsnet.PartnerTriple{{User: 0, Partner: 1, Event: s.TestEvents[0]}}
	if _, err := PartnerRecommendationFullRanking(oracleScorer{d}, d, s, triples, ebsnet.Test,
		FullRankingConfig{}); err == nil {
		t.Error("empty cutoffs accepted")
	}
}

func TestPartnerFullRankingDeterministic(t *testing.T) {
	d, s := testData(t)
	triples := ebsnet.PartnerGroundTruth(d, s, ebsnet.Test)
	if len(triples) == 0 {
		t.Skip("no triples")
	}
	run := func(w int) RankingMetrics {
		m, err := PartnerRecommendationFullRanking(weakScorer3{}, d, s, triples, ebsnet.Test,
			FullRankingConfig{Ns: []int{5}, MaxCases: 40, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if a, b := run(1), run(5); a.MRR != b.MRR {
		t.Errorf("worker count changed partner full ranking: %v vs %v", a.MRR, b.MRR)
	}
}

type weakScorer3 struct{}

func (weakScorer3) ScoreTriple(u, p, x int32) float32 {
	h := uint32(u)*31 ^ uint32(p)*17 ^ uint32(x)*13
	return float32(h%1000) / 1000
}
