// Package engine is the sharded scatter-gather layer between the serving
// stack and the TA index: it partitions the transformed candidate space
// into contiguous partner-range shards at build time, fans each query out
// to per-shard threshold-algorithm searches, and merges the per-shard
// top-n lists into one exact answer.
//
// # Why sharding is exact
//
// The TA threshold bound is valid over any subset of the candidate rows:
// a shard holding partners [lo, hi) runs the exact same search it would
// run as a standalone index over those partners, so its local top-n is
// the true top-n of its partition. Results follow a canonical total
// order — score descending, ties by ascending partner then ascending
// event (ta.Result.Outranks) — which makes every top-n set
// traversal-order independent. The global canonical top-n therefore
// satisfies: each of its members is, within its home shard, outranked by
// fewer than n pairs, hence a member of that shard's canonical top-n.
// So the global top-n is contained in the union of the per-shard top-n
// lists, and an n-element merge of those lists in canonical order
// reproduces the monolithic answer bit for bit — for any shard count.
// The property tests assert this, including at tied boundaries.
//
// # The shard boundary
//
// Shards are addressed through the Shard interface with an RPC-shaped
// contract: a self-contained Request in, a Response (top-n with global
// IDs, per-shard SearchStats) or an error out. Nothing about the engine
// assumes shards share memory — the one in-process concession, the
// precomputed event-affinity pass carried in Request.EventAff, is
// derivable from Request.UserVec, so a transport may drop it and let the
// remote side recompute. Moving shards out of process is a transport
// change, not a redesign.
//
// # Cost model
//
// Per-query work splits into a shard-invariant prepass (the per-event
// affinity pass, computed once and shared), per-shard work that shrinks
// linearly with the shard count (the per-partner affinity pass, bound
// heapify, and TA scan over roughly 1/N of the partners), and an O(n·N)
// merge. Wall-clock latency improves with shards only when cores are
// free to run them; Stats.CriticalPath reports the prepass + slowest
// shard + merge path — the latency an N-core box observes — next to the
// measured wall time.
package engine
