package engine

import (
	"fmt"
	"sync"
	"time"

	"ebsn/internal/ta"
)

// Config parameterizes Build.
type Config struct {
	// Shards is the partner-range shard count; values < 1 mean 1 and the
	// count is capped at the partner count.
	Shards int
	// TopKEvents is the per-partner candidate pruning passed to every
	// shard's ta.BuildCandidates (0 keeps the full cross product).
	TopKEvents int
	// Workers bounds the build parallelism inside each shard's
	// candidate-set and index construction (0 = serial build,
	// GOMAXPROCS index build — the ta defaults).
	Workers int
}

// Engine is the scatter-gather query front: it owns N partner-range
// shards and answers top-n queries by fanning a self-contained Request
// out to each shard concurrently and merging the per-shard answers in
// canonical order. Queries are safe for concurrent use; building and
// EnableQuantized are not.
type Engine struct {
	k         int
	nPartners int
	pairs     int
	shards    []Shard
	quantized bool
	// affSet computes the shared per-event affinity prepass. It belongs
	// to shard 0, whose event rows are bit-identical copies of every
	// other shard's (events are replicated across shards).
	affSet *ta.CandidateSet
	pool   sync.Pool // *fanoutScratch
	// art is the open artifact backing a mapped engine (nil for built
	// ones); it pins the mapping for the engine's lifetime. See
	// OpenArtifact in artifact.go.
	art *ta.Artifact
}

// fanoutScratch owns one query's fan-out state so steady-state queries
// reuse buffers instead of reallocating them. The shard closures are
// built once per scratch and read their per-query parameters from the
// scratch fields, so the fan-out itself allocates nothing.
type fanoutScratch struct {
	aff    []float32
	resp   []Response
	errs   []error
	walls  []time.Duration
	dsts   [][]ta.Result
	heads  []int
	lists  [][]ta.Result
	merged []ta.Result
	stats  []ShardStats
	psc    ta.Scratch // quantized-prepass scratch

	// Pre-built zero-arg shard closures (single-query and batch) and
	// the parameters they read. wg coordinates each fan-out.
	fns  []func()
	bfns []func()
	wg   sync.WaitGroup

	userVec []float32
	n       int
	exclude int32
	pred    ta.EventPredicate

	// Batch fan-out state.
	absc   *ta.BatchScratch
	busers [][]float32
	bexcl  []int32
	bresp  []BatchResponse
	bdsts  [][][]ta.Result
	bstats [][]ta.SearchStats
}

// ensureFns (re)builds the per-shard closures when the shard count
// changes — once per scratch lifetime in practice, since a scratch
// never leaves its engine's pool.
func (fs *fanoutScratch) ensureFns(e *Engine, ns int) {
	if len(fs.fns) == ns {
		return
	}
	fs.fns = make([]func(), ns)
	fs.bfns = make([]func(), ns)
	for i := 0; i < ns; i++ {
		i := i
		fs.fns[i] = func() {
			defer fs.wg.Done()
			s0 := time.Now()
			req := Request{
				UserVec:        fs.userVec,
				N:              fs.n,
				ExcludePartner: fs.exclude,
				EventAff:       fs.aff,
				Quantized:      e.quantized,
				Pred:           fs.pred,
				Dst:            fs.dsts[i],
			}
			fs.resp[i], fs.errs[i] = e.shards[i].Search(req)
			fs.dsts[i] = fs.resp[i].Results // keep grown buffers across queries
			fs.walls[i] = time.Since(s0)
		}
		fs.bfns[i] = func() {
			defer fs.wg.Done()
			s0 := time.Now()
			req := BatchRequest{
				Users:     fs.busers,
				N:         fs.n,
				Exclude:   fs.bexcl,
				EventAff:  fs.aff,
				Quantized: e.quantized,
				Dst:       fs.bdsts[i],
				DstStats:  fs.bstats[i],
			}
			fs.bresp[i], fs.errs[i] = e.shards[i].SearchBatch(req)
			fs.bdsts[i] = fs.bresp[i].Results
			fs.bstats[i] = fs.bresp[i].Stats
			fs.walls[i] = time.Since(s0)
		}
	}
}

// Build partitions partners into cfg.Shards contiguous ranges and
// constructs one self-contained shard per range: the shard's candidate
// set is built by ta.BuildCandidates over the full event list and its
// own partner slice, so per-partner pruning, cross terms and index
// bounds are computed exactly as the monolithic build computes them —
// the per-partner passes are independent, which is what makes shard
// answers bit-identical to the monolithic index restricted to the
// range. Event rows are replicated per shard (each shard packs its own
// copy); partner row headers are copied so shards never alias each
// other's packed storage.
func Build(events, partners [][]float32, cfg Config) (*Engine, error) {
	if len(events) == 0 || len(partners) == 0 {
		return nil, fmt.Errorf("engine: empty event or partner set")
	}
	ns := cfg.Shards
	if ns < 1 {
		ns = 1
	}
	if ns > len(partners) {
		ns = len(partners)
	}
	e := &Engine{
		k:         len(events[0]),
		nPartners: len(partners),
		shards:    make([]Shard, 0, ns),
	}
	e.pool.New = func() any { return &fanoutScratch{} }
	for i := 0; i < ns; i++ {
		lo := i * len(partners) / ns
		hi := (i + 1) * len(partners) / ns
		// Fresh slice headers: ta.BuildCandidates re-aliases rows into
		// its packed storage, and that mutation must stay shard-local.
		ev := make([][]float32, len(events))
		copy(ev, events)
		ps := make([][]float32, hi-lo)
		copy(ps, partners[lo:hi])
		set, err := ta.BuildCandidates(ev, ps, ta.BuildConfig{TopKEvents: cfg.TopKEvents, Workers: cfg.Workers})
		if err != nil {
			return nil, fmt.Errorf("engine: shard %d build: %w", i, err)
		}
		idx := ta.NewFastIndexWorkers(set, cfg.Workers)
		sh := &localShard{set: set, idx: idx, lo: int32(lo), hi: int32(hi)}
		e.pairs += sh.Pairs()
		e.shards = append(e.shards, sh)
		if i == 0 {
			e.affSet = set
		}
	}
	return e, nil
}

// EnableQuantized packs every shard's int8 candidate mirrors and routes
// all subsequent queries — single and batched — through the quantized
// search path (approximate int8 affinity passes, exact re-rank; see
// ta.PackQuantized). Event rows are replicated bit-identically across
// shards, so the quantized prepass stays shard-invariant exactly like
// the exact one. Not safe concurrently with queries; call it right
// after Build, before serving.
func (e *Engine) EnableQuantized() error {
	for i, sh := range e.shards {
		ls, ok := sh.(*localShard)
		if !ok {
			return fmt.Errorf("engine: shard %d (%T) does not support quantization", i, sh)
		}
		ls.set.PackQuantized()
	}
	e.quantized = true
	return nil
}

// Quantized reports whether queries route through the int8 path.
func (e *Engine) Quantized() bool { return e.quantized }

// Fold builds a new engine covering this one's candidate space plus a
// delta of ingested events, without mutating the original: each shard's
// event list gains the delta events (replicated, as Build replicates),
// and each delta pair lands on the shard owning its partner with the
// pair's Event index rebased past the shard's base events and its
// Partner translated to the shard-local space. Row headers are copied
// before the per-shard index builds re-alias them into fresh packed
// storage, so the original engine keeps answering queries while the
// fold runs — the engine half of the copy-on-write compaction
// (ta.FoldDelta is the monolithic half, and the two stay bit-identical
// shard-by-shard because the appended pairs keep their arrival order
// and cross terms). pairs[i].Event indexes events; partners are global
// IDs. workers bounds each shard's index-build parallelism. A quantized
// engine folds into a quantized engine: the new shards re-pack their
// int8 mirrors over the extended event list.
func (e *Engine) Fold(events [][]float32, pairs []ta.Candidate, cross []float32, workers int) (*Engine, error) {
	if len(pairs) != len(cross) {
		return nil, fmt.Errorf("engine: fold pair/cross length mismatch: %d vs %d", len(pairs), len(cross))
	}
	ne := &Engine{k: e.k, nPartners: e.nPartners, shards: make([]Shard, 0, len(e.shards)), quantized: e.quantized}
	ne.pool.New = func() any { return &fanoutScratch{} }
	for i, sh := range e.shards {
		ls, ok := sh.(*localShard)
		if !ok {
			return nil, fmt.Errorf("engine: shard %d (%T) does not support local folds", i, sh)
		}
		nb := len(ls.set.Events)
		ev := make([][]float32, nb+len(events))
		copy(ev, ls.set.Events)
		copy(ev[nb:], events)
		ps := make([][]float32, len(ls.set.Partners))
		copy(ps, ls.set.Partners)
		np := make([]ta.Candidate, len(ls.set.Pairs), len(ls.set.Pairs)+len(pairs))
		copy(np, ls.set.Pairs)
		nc := make([]float32, len(ls.set.Cross), len(ls.set.Cross)+len(cross))
		copy(nc, ls.set.Cross)
		for j, p := range pairs {
			if p.Partner >= ls.lo && p.Partner < ls.hi {
				np = append(np, ta.Candidate{Event: p.Event + int32(nb), Partner: p.Partner - ls.lo})
				nc = append(nc, cross[j])
			}
		}
		set := &ta.CandidateSet{K: e.k, Events: ev, Partners: ps, Pairs: np, Cross: nc}
		idx := ta.NewFastIndexWorkers(set, workers)
		if ne.quantized {
			set.PackQuantized()
		}
		nsh := &localShard{set: set, idx: idx, lo: ls.lo, hi: ls.hi}
		ne.pairs += nsh.Pairs()
		ne.shards = append(ne.shards, nsh)
		if i == 0 {
			ne.affSet = set
		}
	}
	return ne, nil
}

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// NumEvents returns the number of events each shard replicates — the
// event index space of Search results.
func (e *Engine) NumEvents() int { return len(e.affSet.Events) }

// Candidates returns the total candidate pairs across all shards.
func (e *Engine) Candidates() int { return e.pairs }

// K returns the embedding dimension queries must match.
func (e *Engine) K() int { return e.k }

// Partners returns the global partner count.
func (e *Engine) Partners() int { return e.nPartners }

// Set returns shard 0's candidate set when the engine is monolithic
// (one shard) — the seam the live-ingestion delta (ta.Dynamic) builds
// on, which needs a set covering every partner. Multi-shard engines
// return nil.
func (e *Engine) Set() *ta.CandidateSet {
	if len(e.shards) == 1 {
		return e.affSet
	}
	return nil
}

// Index returns shard 0's FastIndex when the engine is monolithic (one
// shard); nil otherwise. With Set it lets a one-shard engine stand in
// for the plain monolithic index without a second build.
func (e *Engine) Index() *ta.FastIndex {
	if len(e.shards) == 1 {
		if ls, ok := e.shards[0].(*localShard); ok {
			return ls.idx
		}
	}
	return nil
}

// ShardStats is one shard's share of a query.
type ShardStats struct {
	// Shard is the shard index, matching engine build order.
	Shard int
	// Stats is the shard's TA work (in-index elapsed included).
	Stats ta.SearchStats
	// Wall is the wall-clock duration of the shard call as observed by
	// the fan-out, scheduling included.
	Wall time.Duration
}

// Stats decomposes one scatter-gather query.
type Stats struct {
	// Agg sums the per-shard work: access counts and candidates add up
	// (each pair lives on exactly one shard, so Agg.Candidates equals
	// the monolithic candidate count), and Elapsed totals the in-index
	// time across shards plus the prepass and merge — the CPU cost of
	// the query, not its latency.
	Agg ta.SearchStats
	// Shards is the per-shard breakdown, in shard order.
	Shards []ShardStats
	// Prepass is the shared event-affinity pass duration.
	Prepass time.Duration
	// Merge is the canonical-order merge duration.
	Merge time.Duration
	// Wall is the end-to-end Search duration on this machine.
	Wall time.Duration
	// CriticalPath is Prepass + the slowest shard's Wall + Merge: the
	// latency floor with one core per shard. On a machine with fewer
	// cores than shards, Wall exceeds CriticalPath; the gap is the
	// parallelism the hardware did not supply.
	CriticalPath time.Duration
}

// Search answers the exact top-n for userVec with one partner excluded
// (< 0 excludes no one), scattering the query across all shards and
// gathering the canonical merge. The returned slice and Stats.Shards
// are freshly allocated and owned by the caller; latency-critical
// callers use SearchInto to reuse both.
func (e *Engine) Search(userVec []float32, n int, exclude int32) ([]ta.Result, Stats, error) {
	out, stats, err := e.SearchInto(userVec, n, exclude, nil, nil)
	if err != nil {
		return nil, stats, err
	}
	owned := make([]ShardStats, len(stats.Shards))
	copy(owned, stats.Shards)
	stats.Shards = owned
	return out, stats, nil
}

// SearchPred is Search restricted to predicate-allowed events: the
// predicate is shipped to every shard (events are replicated, so it is
// shard-invariant) and pushed into each shard's threshold walk. Each
// shard's constrained answer is exact, so the canonical merge is exact
// too. A nil predicate is bit-identical to Search.
func (e *Engine) SearchPred(userVec []float32, n int, exclude int32, pred ta.EventPredicate) ([]ta.Result, Stats, error) {
	out, stats, err := e.SearchIntoPred(userVec, n, exclude, pred, nil, nil)
	if err != nil {
		return nil, stats, err
	}
	owned := make([]ShardStats, len(stats.Shards))
	copy(owned, stats.Shards)
	stats.Shards = owned
	return out, stats, nil
}

// SearchInto is Search with caller-managed storage: results are
// appended to dst[:0] and Stats.Shards reuses shardStats when its
// capacity suffices (both are grown — and thus allocated — only when
// too small). With warmed buffers a steady-state sharded query
// allocates nothing.
func (e *Engine) SearchInto(userVec []float32, n int, exclude int32, dst []ta.Result, shardStats []ShardStats) ([]ta.Result, Stats, error) {
	return e.SearchIntoPred(userVec, n, exclude, nil, dst, shardStats)
}

// SearchIntoPred is SearchPred with caller-managed storage, exactly as
// SearchInto manages it.
func (e *Engine) SearchIntoPred(userVec []float32, n int, exclude int32, pred ta.EventPredicate, dst []ta.Result, shardStats []ShardStats) ([]ta.Result, Stats, error) {
	start := time.Now()
	var stats Stats
	if n <= 0 {
		return nil, stats, fmt.Errorf("engine: n must be positive, got %d", n)
	}
	if len(userVec) != e.k {
		return nil, stats, fmt.Errorf("engine: user vector length %d, want %d", len(userVec), e.k)
	}
	if pred != nil && len(pred) != len(e.affSet.Events) {
		return nil, stats, fmt.Errorf("engine: predicate has %d entries, want %d events", len(pred), len(e.affSet.Events))
	}
	fs := e.pool.Get().(*fanoutScratch)
	defer e.pool.Put(fs)

	// Shared prepass: the per-event affinities are shard-invariant
	// (every shard replicates the event rows), so one pass serves all
	// shards. The quantized pass is shard-invariant too — the int8
	// event mirrors are derived from replicated rows.
	t0 := time.Now()
	if e.quantized {
		fs.aff = e.affSet.EventAffinitiesQuantized(userVec, fs.aff, &fs.psc)
	} else {
		fs.aff = e.affSet.EventAffinities(userVec, fs.aff)
	}
	stats.Prepass = time.Since(t0)

	ns := len(e.shards)
	fs.resp = resize(fs.resp, ns)
	fs.errs = resize(fs.errs, ns)
	fs.walls = resize(fs.walls, ns)
	fs.dsts = resize(fs.dsts, ns)
	fs.ensureFns(e, ns)
	fs.userVec, fs.n, fs.exclude, fs.pred = userVec, n, exclude, pred
	if ns == 1 {
		fs.wg.Add(1)
		fs.fns[0]()
	} else {
		fs.wg.Add(ns)
		for i := 0; i < ns; i++ {
			go fs.fns[i]()
		}
		fs.wg.Wait()
	}
	fs.userVec, fs.pred = nil, nil // do not retain caller data in the pool

	if cap(shardStats) < ns {
		shardStats = make([]ShardStats, ns)
	}
	stats.Shards = shardStats[:ns]
	var maxWall time.Duration
	for i := 0; i < ns; i++ {
		if err := fs.errs[i]; err != nil {
			stats.Shards = nil
			return nil, stats, fmt.Errorf("engine: shard %d: %w", i, err)
		}
		st := fs.resp[i].Stats
		stats.Shards[i] = ShardStats{Shard: i, Stats: st, Wall: fs.walls[i]}
		stats.Agg.SortedAccesses += st.SortedAccesses
		stats.Agg.RandomAccesses += st.RandomAccesses
		stats.Agg.Candidates += st.Candidates
		stats.Agg.Elapsed += st.Elapsed
		if fs.walls[i] > maxWall {
			maxWall = fs.walls[i]
		}
	}

	m0 := time.Now()
	fs.lists = resize(fs.lists, ns)
	fs.heads = resize(fs.heads, ns)
	for i := 0; i < ns; i++ {
		fs.lists[i] = fs.resp[i].Results
		fs.heads[i] = 0
	}
	out := mergeCanonical(fs.lists, fs.heads, n, dst[:0])
	stats.Merge = time.Since(m0)

	stats.Agg.Elapsed += stats.Prepass + stats.Merge
	stats.Wall = time.Since(start)
	stats.CriticalPath = stats.Prepass + maxWall + stats.Merge
	return out, stats, nil
}

// BatchStats decomposes one scatter-gather batch.
type BatchStats struct {
	// Agg sums the TA work across every user and shard, plus the shared
	// prepass and the merges — the CPU cost of the whole batch.
	Agg ta.SearchStats
	// Shards is the per-shard breakdown: Stats sums the shard's work
	// over the batch's users; Wall is the one batched shard call.
	Shards []ShardStats
	// Prepass is the shared event-affinity panel duration.
	Prepass time.Duration
	// Merge totals the per-user canonical merges.
	Merge time.Duration
	// Wall is the end-to-end SearchBatch duration.
	Wall time.Duration
	// CriticalPath is Prepass + the slowest shard's Wall + Merge.
	CriticalPath time.Duration
}

// SearchBatch answers the top-n for every user vector with one fan-out:
// the event-affinity panel is computed once (matrix-panel kernel over
// the shared event rows), each shard receives the whole batch as a
// single BatchRequest, and the per-shard answers are merged per user in
// canonical order. Results are indexed like users; exclude may be nil
// (no exclusions) or one global partner ID per user. The exact path is
// bit-identical to calling Search per user — same pairs, same score
// bits, same tie order — which is what lets the serving layer coalesce
// concurrent requests into batches transparently. The returned slices
// are freshly allocated (one backing array) and owned by the caller;
// Stats.Shards aliases nothing pooled.
func (e *Engine) SearchBatch(users [][]float32, n int, exclude []int32) ([][]ta.Result, BatchStats, error) {
	start := time.Now()
	var stats BatchStats
	if n <= 0 {
		return nil, stats, fmt.Errorf("engine: n must be positive, got %d", n)
	}
	if exclude != nil && len(exclude) != len(users) {
		return nil, stats, fmt.Errorf("engine: batch has %d users but %d excludes", len(users), len(exclude))
	}
	for j, u := range users {
		if len(u) != e.k {
			return nil, stats, fmt.Errorf("engine: batch user %d vector length %d, want %d", j, len(u), e.k)
		}
	}
	nb := len(users)
	if nb == 0 {
		return nil, stats, nil
	}
	fs := e.pool.Get().(*fanoutScratch)
	defer e.pool.Put(fs)
	if fs.absc == nil {
		fs.absc = ta.GetBatchScratch()
	}

	// Shared prepass: one panel over the replicated event rows serves
	// every shard.
	t0 := time.Now()
	fs.aff = append(fs.aff[:0], e.affSet.EventAffinityPanel(users, e.quantized, fs.absc)...)
	stats.Prepass = time.Since(t0)

	ns := len(e.shards)
	fs.bresp = resize(fs.bresp, ns)
	fs.errs = resize(fs.errs, ns)
	fs.walls = resize(fs.walls, ns)
	fs.bdsts = resize(fs.bdsts, ns)
	fs.bstats = resize(fs.bstats, ns)
	fs.ensureFns(e, ns)
	fs.busers, fs.n, fs.bexcl = users, n, exclude
	if ns == 1 {
		fs.wg.Add(1)
		fs.bfns[0]()
	} else {
		fs.wg.Add(ns)
		for i := 0; i < ns; i++ {
			go fs.bfns[i]()
		}
		fs.wg.Wait()
	}
	fs.busers, fs.bexcl = nil, nil // do not retain caller data in the pool

	stats.Shards = make([]ShardStats, ns)
	var maxWall time.Duration
	for i := 0; i < ns; i++ {
		if err := fs.errs[i]; err != nil {
			stats.Shards = nil
			return nil, stats, fmt.Errorf("engine: shard %d: %w", i, err)
		}
		ss := ShardStats{Shard: i, Wall: fs.walls[i]}
		for _, st := range fs.bresp[i].Stats {
			ss.Stats.SortedAccesses += st.SortedAccesses
			ss.Stats.RandomAccesses += st.RandomAccesses
			ss.Stats.Elapsed += st.Elapsed
			ss.Stats.Candidates = st.Candidates // per-query resident pairs, not summed
		}
		stats.Shards[i] = ss
		stats.Agg.SortedAccesses += ss.Stats.SortedAccesses
		stats.Agg.RandomAccesses += ss.Stats.RandomAccesses
		stats.Agg.Candidates += ss.Stats.Candidates
		stats.Agg.Elapsed += ss.Stats.Elapsed
		if fs.walls[i] > maxWall {
			maxWall = fs.walls[i]
		}
	}

	// Per-user canonical merges into one caller-owned backing array.
	m0 := time.Now()
	fs.lists = resize(fs.lists, ns)
	fs.heads = resize(fs.heads, ns)
	flat := make([]ta.Result, 0, nb*n)
	outs := make([][]ta.Result, nb)
	for j := 0; j < nb; j++ {
		for i := 0; i < ns; i++ {
			fs.lists[i] = fs.bresp[i].Results[j]
			fs.heads[i] = 0
		}
		lo := len(flat)
		flat = mergeCanonical(fs.lists, fs.heads, n, flat)
		outs[j] = flat[lo:len(flat):len(flat)]
	}
	stats.Merge = time.Since(m0)

	stats.Agg.Elapsed += stats.Prepass + stats.Merge
	stats.Wall = time.Since(start)
	stats.CriticalPath = stats.Prepass + maxWall + stats.Merge
	return outs, stats, nil
}

// mergeCanonical merges per-shard canonical top-n lists into the global
// top-n by repeatedly taking the best head (ta.Result.Outranks). Shard
// counts are small, so the O(n·shards) linear scan beats a heap.
func mergeCanonical(lists [][]ta.Result, heads []int, n int, dst []ta.Result) []ta.Result {
	want := len(dst) + n
	for len(dst) < want {
		best := -1
		for s := range lists {
			h := heads[s]
			if h >= len(lists[s]) {
				continue
			}
			if best < 0 || lists[s][h].Outranks(lists[best][heads[best]]) {
				best = s
			}
		}
		if best < 0 {
			break
		}
		dst = append(dst, lists[best][heads[best]])
		heads[best]++
	}
	return dst
}

// resize grows s to length n, reusing capacity; contents are
// unspecified beyond indices the caller overwrites.
func resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
