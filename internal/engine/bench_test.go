package engine

import (
	"strconv"
	"testing"

	"ebsn/internal/rng"
	"ebsn/internal/ta"
)

// benchEngine builds the standard engine benchmark space: 1000 events ×
// 4000 partners at K=32 with top-40 pruning.
func benchEngine(b *testing.B, shards int) (*Engine, [][]float32) {
	b.Helper()
	src := rng.New(71)
	events := randomVecs(src, 1000, 32)
	partners := randomVecs(src, 4000, 32)
	e, err := Build(events, partners, Config{Shards: shards, TopKEvents: 40, Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	return e, randomVecs(src, 128, 32)
}

// BenchmarkEngineSearchInto measures the sharded single-query hot path
// with caller-managed buffers. The allocs/op column is the regression
// gate: steady state must report 0 allocs/op for every shard count (the
// multi-shard fan-out reuses pre-built closures, pooled responses and
// the caller's result and stats buffers).
func BenchmarkEngineSearchInto(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run("shards="+strconv.Itoa(shards), func(b *testing.B) {
			e, queries := benchEngine(b, shards)
			out := make([]ta.Result, 0, 10)
			ss := make([]ShardStats, shards)
			var err error
			for i := 0; i < 4; i++ { // warm the pooled fan-out scratch
				if out, _, err = e.SearchInto(queries[i], 10, int32(i), out, ss); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, _, err = e.SearchInto(queries[i%len(queries)], 10, int32(i)%4000, out, ss)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineSearchBatch measures per-user cost of the batched
// fan-out across batch widths.
func BenchmarkEngineSearchBatch(b *testing.B) {
	for _, shards := range []int{1, 4} {
		e, queries := benchEngine(b, shards)
		for _, nb := range []int{4, 8} {
			b.Run("shards="+strconv.Itoa(shards)+"/b="+strconv.Itoa(nb), func(b *testing.B) {
				users := make([][]float32, nb)
				exclude := make([]int32, nb)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := 0; j < nb; j++ {
						users[j] = queries[(i*nb+j)%len(queries)]
						exclude[j] = int32((i*nb + j) % 4000)
					}
					if _, _, err := e.SearchBatch(users, 10, exclude); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nb), "ns/user")
			})
		}
	}
}
