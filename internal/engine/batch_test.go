package engine

import (
	"testing"

	"ebsn/internal/rng"
	"ebsn/internal/ta"
)

// TestSearchBatchBitIdenticalToSearch checks the batched fan-out
// against per-user Search calls across shard counts: same pairs, same
// score bits, same tie order — the property the serving coalescer
// depends on.
func TestSearchBatchBitIdenticalToSearch(t *testing.T) {
	src := rng.New(611)
	events := randomVecs(src, 30, 8)
	partners := randomVecs(src, 45, 8)
	for _, shards := range []int{1, 2, 3, 7} {
		e, err := Build(events, partners, Config{Shards: shards, TopKEvents: 12, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, nb := range []int{0, 1, 3, 8} {
			users := randomVecs(src, nb, 8)
			exclude := make([]int32, nb)
			for j := range exclude {
				exclude[j] = int32(src.Intn(len(partners)+2)) - 1
			}
			res, _, err := e.SearchBatch(users, 9, exclude)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != nb {
				t.Fatalf("shards=%d nb=%d: got %d result lists", shards, nb, len(res))
			}
			for j := 0; j < nb; j++ {
				want, _, err := e.Search(users[j], 9, exclude[j])
				if err != nil {
					t.Fatal(err)
				}
				assertBitIdentical(t, "batch vs single", want, res[j])
			}
		}
	}
}

// TestSearchBatchQuantizedMatchesQuantizedSearch checks the quantized
// batched fan-out against per-user quantized Search calls — both route
// through the int8 mirrors with exact re-ranking, so they must agree
// bit for bit.
func TestSearchBatchQuantizedMatchesQuantizedSearch(t *testing.T) {
	src := rng.New(612)
	events := randomVecs(src, 40, 10)
	partners := randomVecs(src, 50, 10)
	for _, shards := range []int{1, 3} {
		e, err := Build(events, partners, Config{Shards: shards, TopKEvents: 15, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.EnableQuantized(); err != nil {
			t.Fatal(err)
		}
		if !e.Quantized() {
			t.Fatal("Quantized() false after EnableQuantized")
		}
		users := randomVecs(src, 6, 10)
		exclude := make([]int32, len(users))
		for j := range exclude {
			exclude[j] = int32(j)
		}
		res, _, err := e.SearchBatch(users, 7, exclude)
		if err != nil {
			t.Fatal(err)
		}
		for j := range users {
			want, _, err := e.Search(users[j], 7, exclude[j])
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, "quantized batch vs single", want, res[j])
		}
	}
}

// TestSearchBatchValidation covers the batch front-door error paths.
func TestSearchBatchValidation(t *testing.T) {
	src := rng.New(613)
	e, err := Build(randomVecs(src, 6, 4), randomVecs(src, 8, 4), Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	users := randomVecs(src, 3, 4)
	if _, _, err := e.SearchBatch(users, 0, nil); err == nil {
		t.Fatal("want error for n=0")
	}
	if _, _, err := e.SearchBatch(users, 5, make([]int32, 2)); err == nil {
		t.Fatal("want error for exclude length mismatch")
	}
	bad := [][]float32{{1, 2, 3}}
	if _, _, err := e.SearchBatch(bad, 5, nil); err == nil {
		t.Fatal("want error for wrong user dim")
	}
	res, _, err := e.SearchBatch(nil, 5, nil)
	if err != nil || res != nil {
		t.Fatalf("empty batch: res=%v err=%v, want nil/nil", res, err)
	}
}

// TestSearchIntoSteadyStateAllocs pins the sharded single-query path
// back to zero steady-state allocations: with warmed caller buffers a
// SearchInto must not allocate. Shards=1 runs the fan-out inline; the
// multi-shard case spawns goroutines, whose stacks the runtime reuses.
func TestSearchIntoSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation charges goroutine bookkeeping to the fan-out")
	}
	src := rng.New(614)
	events := randomVecs(src, 60, 12)
	partners := randomVecs(src, 80, 12)
	for _, shards := range []int{1, 4} {
		e, err := Build(events, partners, Config{Shards: shards, TopKEvents: 20, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		queries := randomVecs(src, 8, 12)
		var out []ta.Result
		var ss []ShardStats
		// Warm every pooled scratch and the caller buffers.
		for i := 0; i < 16; i++ {
			out, _, err = e.SearchInto(queries[i%len(queries)], 10, int32(i), out, ss)
			if err != nil {
				t.Fatal(err)
			}
			if ss == nil {
				ss = make([]ShardStats, shards)
			}
		}
		allocs := testing.AllocsPerRun(100, func() {
			out, _, err = e.SearchInto(queries[0], 10, 3, out, ss)
			if err != nil {
				t.Fatal(err)
			}
		})
		// The multi-shard fan-out spawns goroutines; the runtime may
		// charge an occasional stack or scheduler allocation to us, so
		// allow a small slack there while holding the inline path to
		// exactly zero.
		limit := 0.0
		if shards > 1 {
			limit = 1.0
		}
		if allocs > limit {
			t.Errorf("shards=%d: %v allocs per warmed SearchInto, want <= %v", shards, allocs, limit)
		}
	}
}
