package engine

import (
	"math"
	"sync"
	"testing"

	"ebsn/internal/rng"
	"ebsn/internal/ta"
)

func randomVecs(src *rng.Source, n, k int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, k)
		for d := range v {
			v[d] = float32(src.NormFloat64())
		}
		out[i] = v
	}
	return out
}

// monolithic builds the unsharded reference index over the same inputs
// the engine shards.
func monolithic(t *testing.T, events, partners [][]float32, topK int) *ta.FastIndex {
	t.Helper()
	ev := make([][]float32, len(events))
	copy(ev, events)
	ps := make([][]float32, len(partners))
	copy(ps, partners)
	set, err := ta.BuildCandidates(ev, ps, ta.BuildConfig{TopKEvents: topK, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return ta.NewFastIndex(set)
}

func assertBitIdentical(t *testing.T, label string, want, got []ta.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: got %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].Event != got[i].Event || want[i].Partner != got[i].Partner {
			t.Fatalf("%s: result %d is (event %d, partner %d), want (event %d, partner %d)",
				label, i, got[i].Event, got[i].Partner, want[i].Event, want[i].Partner)
		}
		wb, gb := math.Float32bits(want[i].Score), math.Float32bits(got[i].Score)
		if wb != gb {
			t.Fatalf("%s: result %d score bits %#x, want %#x", label, i, gb, wb)
		}
	}
}

// shardCounts is the property-test grid from the issue.
var shardCounts = []int{1, 2, 3, 8}

// TestShardedBitIdenticalToMonolithic is the shard-merge exactness
// property test: for every shard count, across random seeds, shapes,
// result sizes and exclusions, the engine's merged top-n must be
// bit-identical to the monolithic FastIndex answer, and the aggregated
// SearchStats must be the exact sum of the per-shard stats with the
// monolithic candidate total.
func TestShardedBitIdenticalToMonolithic(t *testing.T) {
	shapes := []struct {
		nx, nu, k, topK int
	}{
		{20, 13, 6, 0},
		{35, 40, 8, 7},
		{9, 64, 10, 3},
	}
	for seed := uint64(1); seed <= 3; seed++ {
		src := rng.New(600 + seed)
		for _, sh := range shapes {
			events := randomVecs(src, sh.nx, sh.k)
			partners := randomVecs(src, sh.nu, sh.k)
			mono := monolithic(t, events, partners, sh.topK)
			for _, shards := range shardCounts {
				e, err := Build(events, partners, Config{Shards: shards, TopKEvents: sh.topK, Workers: 2})
				if err != nil {
					t.Fatal(err)
				}
				for q := 0; q < 12; q++ {
					userVec := randomVecs(src, 1, sh.k)[0]
					n := 1 + src.Intn(sh.nu*2)
					exclude := int32(src.Intn(sh.nu+2)) - 1
					want, wantStats := mono.TopNExcluding(userVec, n, exclude)
					got, stats, err := e.Search(userVec, n, exclude)
					if err != nil {
						t.Fatal(err)
					}
					assertBitIdentical(t, "sharded vs monolithic", want, got)
					if stats.Agg.Candidates != wantStats.Candidates {
						t.Fatalf("aggregate candidates %d, monolithic %d", stats.Agg.Candidates, wantStats.Candidates)
					}
					var sorted, random, cands int
					for _, ss := range stats.Shards {
						sorted += ss.Stats.SortedAccesses
						random += ss.Stats.RandomAccesses
						cands += ss.Stats.Candidates
					}
					if sorted != stats.Agg.SortedAccesses || random != stats.Agg.RandomAccesses || cands != stats.Agg.Candidates {
						t.Fatalf("aggregate stats %+v are not the sum of the per-shard stats (%d/%d/%d)",
							stats.Agg, sorted, random, cands)
					}
					if len(stats.Shards) != e.Shards() {
						t.Fatalf("got %d shard stats, want %d", len(stats.Shards), e.Shards())
					}
				}
			}
		}
	}
}

// TestShardedTiesAtBoundary forces exact score ties across the top-n
// boundary — duplicated event and partner rows produce bit-equal
// affinities and cross terms — and asserts the canonical tie-break
// keeps every shard count's answer identical.
func TestShardedTiesAtBoundary(t *testing.T) {
	src := rng.New(77)
	k := 5
	// 4 distinct event rows replicated 6×, 3 distinct partner rows
	// replicated 8×: every score is shared by a 48-pair tie class.
	baseEv := randomVecs(src, 4, k)
	baseUs := randomVecs(src, 3, k)
	events := make([][]float32, 0, 24)
	for i := 0; i < 24; i++ {
		events = append(events, baseEv[i%4])
	}
	partners := make([][]float32, 0, 24)
	for i := 0; i < 24; i++ {
		partners = append(partners, baseUs[i%3])
	}
	mono := monolithic(t, events, partners, 0)
	for _, shards := range shardCounts {
		e, err := Build(events, partners, Config{Shards: shards, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 8; q++ {
			userVec := randomVecs(src, 1, k)[0]
			// n values chosen to land inside tie classes, not on their
			// edges.
			for _, n := range []int{1, 5, 17, 50, 100} {
				want, _ := mono.TopNExcluding(userVec, n, -1)
				got, _, err := e.Search(userVec, n, -1)
				if err != nil {
					t.Fatal(err)
				}
				assertBitIdentical(t, "tied boundary", want, got)
			}
		}
	}
}

// TestShardedExclusion pins exclusion semantics: excluding a partner
// from any shard's range removes exactly that partner, matching the
// monolithic path.
func TestShardedExclusion(t *testing.T) {
	src := rng.New(78)
	events := randomVecs(src, 15, 7)
	partners := randomVecs(src, 30, 7)
	mono := monolithic(t, events, partners, 0)
	e, err := Build(events, partners, Config{Shards: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	userVec := randomVecs(src, 1, 7)[0]
	for u := int32(-1); u < 30; u++ {
		want, _ := mono.TopNExcluding(userVec, 12, u)
		got, _, err := e.Search(userVec, 12, u)
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, "exclusion", want, got)
		for _, r := range got {
			if u >= 0 && r.Partner == u {
				t.Fatalf("excluded partner %d surfaced", u)
			}
		}
	}
}

// TestSearchValidation covers the error half of the shard contract.
func TestSearchValidation(t *testing.T) {
	src := rng.New(79)
	e, err := Build(randomVecs(src, 5, 4), randomVecs(src, 6, 4), Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Search(make([]float32, 3), 5, -1); err == nil {
		t.Fatal("wrong-length user vector accepted")
	}
	if _, _, err := e.Search(make([]float32, 4), 0, -1); err == nil {
		t.Fatal("n = 0 accepted")
	}
	if _, err := Build(nil, randomVecs(src, 2, 4), Config{}); err == nil {
		t.Fatal("empty event set accepted")
	}
}

// TestBuildShardPartition checks the partner ranges tile [0, |U|)
// contiguously and the pair total matches the monolithic space.
func TestBuildShardPartition(t *testing.T) {
	src := rng.New(80)
	events := randomVecs(src, 12, 5)
	partners := randomVecs(src, 29, 5)
	for _, shards := range []int{1, 2, 3, 8, 29, 100} {
		e, err := Build(events, partners, Config{Shards: shards, TopKEvents: 4})
		if err != nil {
			t.Fatal(err)
		}
		wantShards := shards
		if wantShards > 29 {
			wantShards = 29
		}
		if e.Shards() != wantShards {
			t.Fatalf("built %d shards, want %d", e.Shards(), wantShards)
		}
		next := int32(0)
		for i := 0; i < e.Shards(); i++ {
			sh := e.shardAt(i)
			lo, hi := sh.PartnerRange()
			if lo != next || hi <= lo {
				t.Fatalf("shard %d range [%d, %d), want lo %d", i, lo, hi, next)
			}
			next = hi
		}
		if next != 29 {
			t.Fatalf("ranges end at %d, want 29", next)
		}
		if e.Candidates() != 29*4 {
			t.Fatalf("pair total %d, want %d", e.Candidates(), 29*4)
		}
	}
}

// TestConcurrentFanout hammers one engine from many goroutines — the
// test the CI race step leans on to prove the scatter-gather path
// (shared affinity buffer, per-shard scratch, merge) is data-race free.
// Every query is verified against the monolithic answer, so a race that
// corrupts results fails even without -race.
func TestConcurrentFanout(t *testing.T) {
	src := rng.New(81)
	events := randomVecs(src, 25, 8)
	partners := randomVecs(src, 40, 8)
	mono := monolithic(t, events, partners, 10)
	e, err := Build(events, partners, Config{Shards: 3, TopKEvents: 10, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	queries := randomVecs(src, 32, 8)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for q := 0; q < 25; q++ {
				uv := queries[(g*25+q)%len(queries)]
				n := 1 + (g+q)%15
				exclude := int32((g + q) % 41)
				want, _ := mono.TopNExcluding(uv, n, exclude)
				got, stats, err := e.Search(uv, n, exclude)
				if err != nil {
					errs <- err.Error()
					return
				}
				if len(got) != len(want) {
					errs <- "result length mismatch under concurrency"
					return
				}
				for i := range want {
					if want[i] != got[i] {
						errs <- "result mismatch under concurrency"
						return
					}
				}
				if len(stats.Shards) != 3 {
					errs <- "shard stats mismatch under concurrency"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// shardAt exposes shard i to tests.
func (e *Engine) shardAt(i int) Shard { return e.shards[i] }
