package engine

import (
	"path/filepath"
	"strconv"
	"testing"

	"ebsn/internal/rng"
	"ebsn/internal/ta"
)

// tieVecs generates random vectors with deliberate duplicate rows, so
// queries hit exact score ties and the round-trip asserts canonical tie
// order too.
func tieVecs(src *rng.Source, n, k int) [][]float32 {
	out := randomVecs(src, n, k)
	for i := 3; i < n; i += 4 {
		out[i] = append([]float32(nil), out[i-1]...)
	}
	return out
}

// saveEngineArtifact writes e's artifact under dir and returns its path.
func saveEngineArtifact(t testing.TB, dir string, e *Engine, fp uint64) string {
	t.Helper()
	path := filepath.Join(dir, "engine.art")
	if err := e.SaveArtifact(path, fp); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestArtifactEngineBitIdentical is the issue's mapped-vs-built
// property test: for shards ∈ {1, 4}, exact and quantized, an engine
// mapped from an artifact must answer Search and SearchBatch
// bit-identically to the engine that wrote it — same pairs, same score
// bits, same tie order.
func TestArtifactEngineBitIdentical(t *testing.T) {
	src := rng.New(913)
	events := tieVecs(src, 80, 8)
	partners := tieVecs(src, 55, 8)
	queries := randomVecs(src, 30, 8)
	for _, shards := range []int{1, 4} {
		for _, quantized := range []bool{false, true} {
			built, err := Build(events, partners, Config{Shards: shards, TopKEvents: 11, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			if quantized {
				if err := built.EnableQuantized(); err != nil {
					t.Fatal(err)
				}
			}
			fp := ta.Fingerprint([]uint64{uint64(shards)}, events, partners)
			path := saveEngineArtifact(t, t.TempDir(), built, fp)
			mapped, err := OpenArtifact(path, fp)
			if err != nil {
				t.Fatal(err)
			}
			if mapped.Shards() != shards || mapped.Partners() != len(partners) ||
				mapped.K() != 8 || mapped.Candidates() != built.Candidates() {
				t.Fatalf("mapped geometry differs: %d shards %d partners %d pairs",
					mapped.Shards(), mapped.Partners(), mapped.Candidates())
			}
			if mapped.Artifact() == nil || (mapped.Artifact().Quantized() != quantized) {
				t.Fatal("mapped engine lost its artifact or quantized flag")
			}
			if quantized {
				if err := mapped.EnableQuantized(); err != nil {
					t.Fatal(err)
				}
			}
			label := "shards=" + strconv.Itoa(shards) + " quantized=" + strconv.FormatBool(quantized)
			for qi, u := range queries {
				n := 1 + qi%20
				exclude := int32(qi%len(partners)) - 1
				want, _, err := built.Search(u, n, exclude)
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := mapped.Search(u, n, exclude)
				if err != nil {
					t.Fatal(err)
				}
				assertBitIdentical(t, label, want, got)
			}
			exclude := make([]int32, len(queries))
			for i := range exclude {
				exclude[i] = int32(i % len(partners))
			}
			wantB, _, err := built.SearchBatch(queries, 7, exclude)
			if err != nil {
				t.Fatal(err)
			}
			gotB, _, err := mapped.SearchBatch(queries, 7, exclude)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantB {
				assertBitIdentical(t, label+" batch", wantB[i], gotB[i])
			}
		}
	}
}

// TestArtifactEngineFold checks that a mapped engine folds a delta like
// a built one: the fold copies the mapped rows into fresh heap storage
// (it must not mutate the read-only mapping) and keeps answering
// bit-identically to a fold of the original engine.
func TestArtifactEngineFold(t *testing.T) {
	src := rng.New(517)
	events := tieVecs(src, 40, 6)
	partners := tieVecs(src, 30, 6)
	built, err := Build(events, partners, Config{Shards: 3, TopKEvents: 9, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	fp := ta.Fingerprint(nil, events, partners)
	path := saveEngineArtifact(t, t.TempDir(), built, fp)
	mapped, err := OpenArtifact(path, fp)
	if err != nil {
		t.Fatal(err)
	}

	// One delta event with candidate pairs across the partner space.
	delta := randomVecs(src, 1, 6)
	var pairs []ta.Candidate
	var cross []float32
	for u := 0; u < len(partners); u += 5 {
		var c float32
		for d := 0; d < 6; d++ {
			c += delta[0][d] * partners[u][d]
		}
		pairs = append(pairs, ta.Candidate{Event: 0, Partner: int32(u)})
		cross = append(cross, c)
	}
	wantFold, err := built.Fold(delta, pairs, cross, 2)
	if err != nil {
		t.Fatal(err)
	}
	gotFold, err := mapped.Fold(delta, pairs, cross, 2)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 10; qi++ {
		u := randomVecs(src, 1, 6)[0]
		want, _, err := wantFold.Search(u, 9, -1)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := gotFold.Search(u, 9, -1)
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, "fold over mapped", want, got)
	}
}

// BenchmarkEngineSearchIntoMapped is the mapped-path alloc gate: the
// steady-state single-query hot path over an artifact-mapped engine
// must stay 0 allocs/op, exactly like the built engine's gate.
func BenchmarkEngineSearchIntoMapped(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run("shards="+strconv.Itoa(shards), func(b *testing.B) {
			built, queries := benchEngine(b, shards)
			path := saveEngineArtifact(b, b.TempDir(), built, 42)
			e, err := OpenArtifact(path, 42)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Artifact().Close()
			out := make([]ta.Result, 0, 10)
			ss := make([]ShardStats, shards)
			for i := 0; i < 4; i++ { // warm the pooled fan-out scratch
				if out, _, err = e.SearchInto(queries[i], 10, int32(i), out, ss); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, _, err = e.SearchInto(queries[i%len(queries)], 10, int32(i)%4000, out, ss)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
