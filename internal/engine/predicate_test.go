package engine

import (
	"testing"

	"ebsn/internal/rng"
	"ebsn/internal/ta"
)

// randomPred draws a predicate allowing each event independently with
// probability selectivity.
func randomPred(src *rng.Source, nEvents int, selectivity float64) ta.EventPredicate {
	pred := make(ta.EventPredicate, nEvents)
	for x := range pred {
		pred[x] = src.Float64() < selectivity
	}
	return pred
}

// TestShardedPredicateBitIdenticalToOracle is the ISSUE 10 acceptance
// property: across shard counts {1, 4}, random shapes, selectivities,
// result sizes and exclusions — including ties constructed exactly at
// the filter boundary via duplicated event rows — the engine's
// constrained answer must be bit-identical to the monolithic
// filter-then-rank oracle (TopNExcludingPred, itself oracle-gated in
// internal/ta against the exhaustive reference).
func TestShardedPredicateBitIdenticalToOracle(t *testing.T) {
	shapes := []struct {
		nx, nu, k, topK int
	}{
		{24, 16, 6, 0},
		{36, 40, 8, 7},
	}
	for seed := uint64(1); seed <= 3; seed++ {
		src := rng.New(8100 + seed)
		for _, sh := range shapes {
			events := randomVecs(src, sh.nx, sh.k)
			// Duplicate the first quarter of the event rows: exact score
			// ties across each twin, with the predicate free to ban one
			// side — ties at the filter boundary.
			for i := 0; i < sh.nx/4; i++ {
				dup := make([]float32, sh.k)
				copy(dup, events[i])
				events = append(events, dup)
			}
			partners := randomVecs(src, sh.nu, sh.k)
			mono := monolithic(t, events, partners, sh.topK)
			for _, shards := range []int{1, 4} {
				e, err := Build(events, partners, Config{Shards: shards, TopKEvents: sh.topK, Workers: 2})
				if err != nil {
					t.Fatal(err)
				}
				for _, sel := range []float64{0, 0.25, 0.6, 1} {
					pred := randomPred(src, len(events), sel)
					u := randomVecs(src, 1, sh.k)[0]
					for _, n := range []int{1, 5, 12} {
						for _, exclude := range []int32{-1, int32(src.Uint64() % uint64(sh.nu))} {
							want, _ := mono.TopNExcludingPred(u, n, exclude, pred)
							got, stats, err := e.SearchPred(u, n, exclude, pred)
							if err != nil {
								t.Fatal(err)
							}
							assertBitIdentical(t, "constrained sharded vs monolithic", want, got)
							if stats.Agg.Candidates != e.Candidates() {
								t.Fatalf("aggregated candidates %d, want %d", stats.Agg.Candidates, e.Candidates())
							}
						}
					}
				}
			}
		}
	}
}

// TestShardedPredicateNilBitIdentical pins that a nil predicate through
// SearchPred takes the exact unconstrained path: same bits as Search.
func TestShardedPredicateNilBitIdentical(t *testing.T) {
	src := rng.New(8200)
	events := randomVecs(src, 30, 8)
	partners := randomVecs(src, 25, 8)
	for _, shards := range []int{1, 4} {
		e, err := Build(events, partners, Config{Shards: shards, TopKEvents: 0, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			u := randomVecs(src, 1, 8)[0]
			want, _, err := e.Search(u, 8, -1)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := e.SearchPred(u, 8, -1, nil)
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, "nil predicate vs Search", want, got)
		}
	}
}

// TestShardedPredicateQuantized checks the constrained int8 fan-out:
// every result respects the predicate on every shard count, and a nil
// predicate is bit-identical to the unconstrained quantized search.
func TestShardedPredicateQuantized(t *testing.T) {
	src := rng.New(8300)
	events := randomVecs(src, 40, 8)
	partners := randomVecs(src, 30, 8)
	for _, shards := range []int{1, 4} {
		e, err := Build(events, partners, Config{Shards: shards, TopKEvents: 0, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.EnableQuantized(); err != nil {
			t.Fatal(err)
		}
		pred := randomPred(src, 40, 0.3)
		for trial := 0; trial < 8; trial++ {
			u := randomVecs(src, 1, 8)[0]
			want, _, err := e.Search(u, 10, -1)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := e.SearchPred(u, 10, -1, nil)
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, "nil predicate vs quantized Search", want, got)
			res, _, err := e.SearchPred(u, 10, -1, pred)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range res {
				if !pred[r.Event] {
					t.Fatalf("shards=%d trial=%d: quantized result event %d violates predicate", shards, trial, r.Event)
				}
			}
		}
	}
}

// TestSearchPredValidation pins the predicate shape check at the engine
// boundary.
func TestSearchPredValidation(t *testing.T) {
	src := rng.New(8400)
	events := randomVecs(src, 10, 4)
	partners := randomVecs(src, 8, 4)
	e, err := Build(events, partners, Config{Shards: 2, TopKEvents: 0, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	u := randomVecs(src, 1, 4)[0]
	if _, _, err := e.SearchPred(u, 3, -1, make(ta.EventPredicate, 7)); err == nil {
		t.Fatal("short predicate accepted")
	}
}
