//go:build !race

package engine

// See race_test.go: normal builds run the allocation assertions.
const raceEnabled = false
