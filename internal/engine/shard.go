package engine

import (
	"fmt"
	"sync"

	"ebsn/internal/ta"
)

// Request is one self-contained shard query. Every field a shard needs
// to answer is carried in the request — no ambient state — so the same
// struct can cross a process boundary unchanged.
type Request struct {
	// UserVec is the querying user's embedding (length K).
	UserVec []float32
	// N is the number of results wanted from this shard.
	N int
	// ExcludePartner is a global partner ID to exclude (< 0 excludes no
	// one). Shards not owning the ID ignore it.
	ExcludePartner int32
	// EventAff optionally carries the shared per-event affinity pass
	// userVec·Events[x], indexed like the candidate set's events. It is
	// derivable from UserVec — the engine precomputes it once per query
	// so in-process shards skip the shard-invariant half of the work; a
	// transport moving requests across processes may omit it and let the
	// shard recompute, trading bandwidth for compute, never correctness.
	// When Quantized is set the pass carries the approximate affinities
	// (ta.EventAffinitiesQuantized), which are likewise shard-invariant.
	EventAff []float32
	// Quantized routes the shard search through its int8 candidate
	// mirrors (the shard must have been packed via PackQuantized — the
	// engine's EnableQuantized packs every shard).
	Quantized bool
	// Pred optionally restricts the search to predicate-allowed events.
	// Events are replicated across shards, so the same predicate — indexed
	// by candidate-set event — is valid on every shard unchanged; the
	// fan-out ships one predicate to all shards exactly like EventAff.
	// Nil means unrestricted.
	Pred ta.EventPredicate
	// Dst, when non-nil, offers a buffer Response.Results may reuse — an
	// allocation optimization for in-process shards; transports ignore
	// it.
	Dst []ta.Result
}

// Response is a shard's half of the scatter-gather exchange.
type Response struct {
	// Results is the shard's exact top-N in canonical order
	// (ta.Result.Outranks), with partner IDs already translated to the
	// global space.
	Results []ta.Result
	// Stats is the TA work this request cost the shard.
	Stats ta.SearchStats
}

// BatchRequest is one self-contained shard batch: every user of the
// batch queried against the shard in a single call, sharing one panel
// pass over the shard's partner rows.
type BatchRequest struct {
	// Users holds one K-dim vector per batch lane.
	Users [][]float32
	// N is the per-user result count.
	N int
	// Exclude is one global partner ID per user (nil excludes no one).
	Exclude []int32
	// EventAff optionally carries the shared event-affinity panel, laid
	// out user-major (u·|X| .. (u+1)·|X|), produced by
	// ta.EventAffinityPanel over replicated event rows. Same transport
	// semantics as Request.EventAff.
	EventAff []float32
	// Quantized routes the batch through the shard's int8 mirrors.
	Quantized bool
	// Pred optionally restricts every query of the batch to
	// predicate-allowed events (shard-invariant, like Request.Pred).
	Pred ta.EventPredicate
	// Dst and DstStats, when non-nil, offer buffers the response may
	// reuse; transports ignore them.
	Dst      [][]ta.Result
	DstStats []ta.SearchStats
}

// BatchResponse is a shard's answer to a BatchRequest.
type BatchResponse struct {
	// Results holds each user's canonical top-N with global partner IDs,
	// indexed like BatchRequest.Users.
	Results [][]ta.Result
	// Stats is the per-user TA work, indexed like Users.
	Stats []ta.SearchStats
}

// Shard answers self-contained top-n requests over one contiguous
// partner range of the candidate space. Implementations must be safe
// for concurrent Search and SearchBatch calls — the engine fans one
// query's requests out in parallel and may overlap queries.
type Shard interface {
	// Search answers one request exactly.
	Search(req Request) (Response, error)
	// SearchBatch answers every user of the batch in one call.
	SearchBatch(req BatchRequest) (BatchResponse, error)
	// PartnerRange returns the global partner ID range [lo, hi) this
	// shard owns.
	PartnerRange() (lo, hi int32)
	// Pairs returns the number of candidate pairs resident on the shard.
	Pairs() int
}

// localShard is the in-process Shard: a self-contained candidate set
// over partners [lo, hi) (events replicated, partner rows copied) with
// its own FastIndex. Local partner IDs are global IDs minus lo.
type localShard struct {
	set    *ta.CandidateSet
	idx    *ta.FastIndex
	lo, hi int32
}

// Search runs the shard-local TA search on pooled scratch and returns
// results in global partner IDs.
func (s *localShard) Search(req Request) (Response, error) {
	if req.N <= 0 {
		return Response{}, fmt.Errorf("engine: shard request n must be positive, got %d", req.N)
	}
	if len(req.UserVec) != s.set.K {
		return Response{}, fmt.Errorf("engine: shard request user vector length %d, want %d", len(req.UserVec), s.set.K)
	}
	exclude := int32(-1)
	if req.ExcludePartner >= s.lo && req.ExcludePartner < s.hi {
		exclude = req.ExcludePartner - s.lo
	}
	sc := ta.GetScratch()
	defer ta.PutScratch(sc)
	var (
		res   []ta.Result
		stats ta.SearchStats
	)
	switch {
	case req.Quantized && req.Pred != nil:
		res, stats = s.idx.TopNExcludingQuantizedPredAffScratch(req.UserVec, req.EventAff, req.N, exclude, req.Pred, sc)
	case req.Quantized:
		res, stats = s.idx.TopNExcludingQuantizedAffScratch(req.UserVec, req.EventAff, req.N, exclude, sc)
	case req.Pred != nil:
		res, stats = s.idx.TopNExcludingPredAffScratch(req.UserVec, req.EventAff, req.N, exclude, req.Pred, sc)
	default:
		res, stats = s.idx.TopNExcludingAffScratch(req.UserVec, req.EventAff, req.N, exclude, sc)
	}
	// The raw results alias the scratch; copy them out (into the
	// caller's buffer when offered) translating partners to global IDs.
	// Local IDs are offset by a constant, so the canonical order — which
	// breaks score ties by ascending partner — is preserved.
	out := req.Dst[:0]
	if cap(out) < len(res) {
		out = make([]ta.Result, 0, len(res))
	}
	for _, r := range res {
		r.Partner += s.lo
		out = append(out, r)
	}
	return Response{Results: out, Stats: stats}, nil
}

// shardBatchState is one batch call's shard-side scratch: the ta batch
// scratch plus the translated-exclusion buffer.
type shardBatchState struct {
	bsc  *ta.BatchScratch
	excl []int32
}

var shardBatchPool = sync.Pool{New: func() any { return &shardBatchState{bsc: ta.GetBatchScratch()} }}

// SearchBatch runs the whole batch against the shard with one
// partner-panel pass, translating exclusions in and partner IDs out.
func (s *localShard) SearchBatch(req BatchRequest) (BatchResponse, error) {
	if req.N <= 0 {
		return BatchResponse{}, fmt.Errorf("engine: shard batch n must be positive, got %d", req.N)
	}
	for j, u := range req.Users {
		if len(u) != s.set.K {
			return BatchResponse{}, fmt.Errorf("engine: shard batch user %d vector length %d, want %d", j, len(u), s.set.K)
		}
	}
	if req.Exclude != nil && len(req.Exclude) != len(req.Users) {
		return BatchResponse{}, fmt.Errorf("engine: shard batch has %d users but %d excludes", len(req.Users), len(req.Exclude))
	}
	nb := len(req.Users)
	sb := shardBatchPool.Get().(*shardBatchState)
	defer shardBatchPool.Put(sb)

	var excl []int32
	if req.Exclude != nil {
		sb.excl = resize(sb.excl, nb)
		excl = sb.excl
		for j, g := range req.Exclude {
			if g >= s.lo && g < s.hi {
				excl[j] = g - s.lo
			} else {
				excl[j] = -1
			}
		}
	}
	res, stats := s.idx.TopNBatch(ta.BatchQuery{
		Users:     req.Users,
		N:         req.N,
		Exclude:   excl,
		EventAff:  req.EventAff,
		Quantized: req.Quantized,
		Pred:      req.Pred,
	}, sb.bsc)

	// Copy out of the pooled scratch into caller-offered (and otherwise
	// fresh) response storage, translating partners to the global ID
	// space — the response must not alias the pooled scratch.
	outs := req.Dst
	if cap(outs) < nb {
		outs = make([][]ta.Result, nb)
	}
	outs = outs[:nb]
	outStats := req.DstStats
	if cap(outStats) < nb {
		outStats = make([]ta.SearchStats, nb)
	}
	outStats = outStats[:nb]
	for j, rs := range res {
		dst := outs[j][:0]
		if cap(dst) < len(rs) {
			dst = make([]ta.Result, 0, len(rs))
		}
		for _, r := range rs {
			r.Partner += s.lo
			dst = append(dst, r)
		}
		outs[j] = dst
		outStats[j] = stats[j]
	}
	return BatchResponse{Results: outs, Stats: outStats}, nil
}

// PartnerRange returns the shard's global partner range [lo, hi).
func (s *localShard) PartnerRange() (lo, hi int32) { return s.lo, s.hi }

// Pairs returns the shard's resident candidate-pair count.
func (s *localShard) Pairs() int { return len(s.set.Pairs) }
