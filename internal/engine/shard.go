package engine

import (
	"fmt"

	"ebsn/internal/ta"
)

// Request is one self-contained shard query. Every field a shard needs
// to answer is carried in the request — no ambient state — so the same
// struct can cross a process boundary unchanged.
type Request struct {
	// UserVec is the querying user's embedding (length K).
	UserVec []float32
	// N is the number of results wanted from this shard.
	N int
	// ExcludePartner is a global partner ID to exclude (< 0 excludes no
	// one). Shards not owning the ID ignore it.
	ExcludePartner int32
	// EventAff optionally carries the shared per-event affinity pass
	// userVec·Events[x], indexed like the candidate set's events. It is
	// derivable from UserVec — the engine precomputes it once per query
	// so in-process shards skip the shard-invariant half of the work; a
	// transport moving requests across processes may omit it and let the
	// shard recompute, trading bandwidth for compute, never correctness.
	EventAff []float32
	// Dst, when non-nil, offers a buffer Response.Results may reuse — an
	// allocation optimization for in-process shards; transports ignore
	// it.
	Dst []ta.Result
}

// Response is a shard's half of the scatter-gather exchange.
type Response struct {
	// Results is the shard's exact top-N in canonical order
	// (ta.Result.Outranks), with partner IDs already translated to the
	// global space.
	Results []ta.Result
	// Stats is the TA work this request cost the shard.
	Stats ta.SearchStats
}

// Shard answers self-contained top-n requests over one contiguous
// partner range of the candidate space. Implementations must be safe
// for concurrent Search calls — the engine fans one query's requests
// out in parallel and may overlap queries.
type Shard interface {
	// Search answers one request exactly.
	Search(req Request) (Response, error)
	// PartnerRange returns the global partner ID range [lo, hi) this
	// shard owns.
	PartnerRange() (lo, hi int32)
	// Pairs returns the number of candidate pairs resident on the shard.
	Pairs() int
}

// localShard is the in-process Shard: a self-contained candidate set
// over partners [lo, hi) (events replicated, partner rows copied) with
// its own FastIndex. Local partner IDs are global IDs minus lo.
type localShard struct {
	set    *ta.CandidateSet
	idx    *ta.FastIndex
	lo, hi int32
}

// Search runs the shard-local TA search on pooled scratch and returns
// results in global partner IDs.
func (s *localShard) Search(req Request) (Response, error) {
	if req.N <= 0 {
		return Response{}, fmt.Errorf("engine: shard request n must be positive, got %d", req.N)
	}
	if len(req.UserVec) != s.set.K {
		return Response{}, fmt.Errorf("engine: shard request user vector length %d, want %d", len(req.UserVec), s.set.K)
	}
	exclude := int32(-1)
	if req.ExcludePartner >= s.lo && req.ExcludePartner < s.hi {
		exclude = req.ExcludePartner - s.lo
	}
	sc := ta.GetScratch()
	defer ta.PutScratch(sc)
	res, stats := s.idx.TopNExcludingAffScratch(req.UserVec, req.EventAff, req.N, exclude, sc)
	// The raw results alias the scratch; copy them out (into the
	// caller's buffer when offered) translating partners to global IDs.
	// Local IDs are offset by a constant, so the canonical order — which
	// breaks score ties by ascending partner — is preserved.
	out := req.Dst[:0]
	if cap(out) < len(res) {
		out = make([]ta.Result, 0, len(res))
	}
	for _, r := range res {
		r.Partner += s.lo
		out = append(out, r)
	}
	return Response{Results: out, Stats: stats}, nil
}

// PartnerRange returns the shard's global partner range [lo, hi).
func (s *localShard) PartnerRange() (lo, hi int32) { return s.lo, s.hi }

// Pairs returns the shard's resident candidate-pair count.
func (s *localShard) Pairs() int { return len(s.set.Pairs) }
