package engine

import (
	"testing"

	"ebsn/internal/rng"
	"ebsn/internal/ta"
)

// TestFoldBitIdenticalToMonolithicFold checks the sharded delta fold:
// for every shard count, folding a delta view into the engine must
// answer bit-identically to folding the same view into a monolithic
// candidate set with ta.FoldDelta — and the original engine must be
// left untouched (the fold is copy-on-write).
func TestFoldBitIdenticalToMonolithicFold(t *testing.T) {
	shapes := []struct {
		nx, nu, k, topK, added int
	}{
		{22, 15, 6, 0, 5},
		{30, 33, 8, 6, 9},
	}
	for _, sh := range shapes {
		src := rng.New(910 + uint64(sh.nu))
		events := randomVecs(src, sh.nx, sh.k)
		partners := randomVecs(src, sh.nu, sh.k)

		// The monolithic reference: same base, same delta view, folded
		// with ta.FoldDelta.
		baseSet, err := ta.BuildCandidates(events, partners, ta.BuildConfig{TopKEvents: sh.topK, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		delta, err := ta.NewDelta(partners, sh.topK)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range randomVecs(src, sh.added, sh.k) {
			if err := delta.AddEvent(v); err != nil {
				t.Fatal(err)
			}
		}
		view := delta.View()
		_, refIdx := ta.FoldDelta(baseSet, view, 2)

		queries := randomVecs(src, 10, sh.k)
		for _, shards := range shardCounts {
			e, err := Build(events, partners, Config{Shards: shards, TopKEvents: sh.topK, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			// Pin a pre-fold answer to prove immutability afterwards.
			preWant, _, err := e.Search(queries[0], 8, -1)
			if err != nil {
				t.Fatal(err)
			}

			folded, err := e.Fold(view.Events, view.Pairs, view.Cross, 2)
			if err != nil {
				t.Fatal(err)
			}
			if folded.NumEvents() != sh.nx+sh.added {
				t.Fatalf("shards=%d: folded NumEvents = %d, want %d", shards, folded.NumEvents(), sh.nx+sh.added)
			}
			if e.NumEvents() != sh.nx {
				t.Fatalf("shards=%d: fold mutated the source engine (NumEvents %d)", shards, e.NumEvents())
			}
			for q, u := range queries {
				n := 1 + src.Intn(sh.nu*2)
				exclude := int32(src.Intn(sh.nu+2)) - 1
				want, _ := refIdx.TopNExcluding(u, n, exclude)
				got, _, err := folded.Search(u, n, exclude)
				if err != nil {
					t.Fatal(err)
				}
				assertBitIdentical(t, "folded engine vs monolithic fold", want, got)
				_ = q
			}
			// The source engine still answers exactly as before the fold.
			preGot, _, err := e.Search(queries[0], 8, -1)
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, "source engine after fold", preWant, preGot)
		}
	}
}
