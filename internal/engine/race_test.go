//go:build race

package engine

// raceEnabled lets the steady-state allocation tests skip their
// assertions under the race detector, whose instrumentation charges
// goroutine bookkeeping allocations to the fan-out path.
const raceEnabled = true
