package engine

import (
	"fmt"

	"ebsn/internal/ta"
)

// SaveArtifact serializes the engine's built state — every shard's
// packed candidate set, FastIndex and partner range, quantized mirrors
// included when EnableQuantized has run — into a zero-copy index
// artifact at path (see ta.WriteArtifact for the format and atomicity
// guarantees). The fingerprint should come from ta.Fingerprint over the
// engine's build inputs; OpenArtifact with the same value maps the file
// back into an equivalent engine.
func (e *Engine) SaveArtifact(path string, fingerprint uint64) error {
	segs := make([]ta.Segment, 0, len(e.shards))
	for i, sh := range e.shards {
		ls, ok := sh.(*localShard)
		if !ok {
			return fmt.Errorf("engine: shard %d (%T) cannot be serialized", i, sh)
		}
		segs = append(segs, ta.Segment{Lo: ls.lo, Hi: ls.hi, Set: ls.set, Idx: ls.idx})
	}
	return ta.WriteArtifact(path, fingerprint, e.k, e.nPartners, segs)
}

// OpenArtifact maps the artifact at path into a ready engine without
// rebuilding anything: every shard's candidate rows, index arrays and
// quantized mirrors alias the mapped file (see ta.OpenArtifact). The
// fingerprint must match the stored one or the open fails with
// ta.ErrArtifactStale; structural damage fails with
// ta.ErrArtifactCorrupt; callers fall back to Build in every error
// case. A mapped engine answers queries bit-identically to the build
// that produced the artifact. Quantized routing still starts off — call
// EnableQuantized to turn it on; when the artifact carries the int8
// mirrors that flip is free.
func OpenArtifact(path string, fingerprint uint64) (*Engine, error) {
	art, err := ta.OpenArtifact(path, fingerprint)
	if err != nil {
		return nil, err
	}
	e := &Engine{k: art.K(), nPartners: art.Partners(), art: art}
	e.pool.New = func() any { return &fanoutScratch{} }
	for i, seg := range art.Segments() {
		sh := &localShard{set: seg.Set, idx: seg.Idx, lo: seg.Lo, hi: seg.Hi}
		e.pairs += sh.Pairs()
		e.shards = append(e.shards, sh)
		if i == 0 {
			e.affSet = seg.Set
		}
	}
	return e, nil
}

// Artifact returns the open artifact backing a mapped engine, or nil
// for an engine built in memory.
func (e *Engine) Artifact() *ta.Artifact { return e.art }
