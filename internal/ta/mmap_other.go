//go:build !unix

package ta

import (
	"io"
	"os"
)

// mapFile reads the file into the heap — the portable fallback for
// platforms without a usable mmap. Decode aliases the index slices onto
// the heap copy exactly as it would onto mapped pages, so everything
// above this function behaves identically; only the "outside the GC
// heap" property is lost.
func mapFile(f *os.File, size int64) (*mapping, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), data); err != nil {
		return nil, err
	}
	return &mapping{data: data}, nil
}

// release is a no-op: the heap copy is reclaimed by the GC.
func (m *mapping) release() error { return nil }
