package ta

import (
	"math"
	"slices"
	"testing"

	"ebsn/internal/rng"
	"ebsn/internal/vecmath"
)

// referenceTopNExcluding is a direct port of the pre-optimization
// FastIndex query path: per-row vecmath.Dot affinity passes, a full
// descending sort of every partner bound, and fresh allocations for all
// per-query state. Dot and DotBatch share one accumulation kernel, so
// the optimized path must reproduce these results bit for bit.
func referenceTopNExcluding(f *FastIndex, userVec []float32, n int, exclude int32) []Result {
	set := f.set
	nc := len(set.Pairs)
	if n <= 0 || nc == 0 {
		return nil
	}
	if n > nc {
		n = nc
	}

	a := make([]float32, len(set.Events))
	var amax float32
	for x := range set.Events {
		a[x] = vecmath.Dot(userVec, set.Events[x])
		if x == 0 || a[x] > amax {
			amax = a[x]
		}
	}
	b := make([]float32, len(set.Partners))
	for u := range set.Partners {
		b[u] = vecmath.Dot(userVec, set.Partners[u])
	}

	bounds := make([]partnerBound, 0, len(set.Partners))
	for u := range set.Partners {
		if f.partnerStart[u] == f.partnerStart[u+1] {
			continue
		}
		bounds = append(bounds, partnerBound{int32(u), b[u] + amax + f.maxCross[u]})
	}
	slices.SortFunc(bounds, func(x, y partnerBound) int {
		switch {
		case x.bound > y.bound:
			return -1
		case x.bound < y.bound:
			return 1
		default:
			return int(x.u - y.u)
		}
	})

	var h resultHeap
	for _, pb := range bounds {
		if len(h) == n && h[0].Score >= pb.bound {
			break
		}
		if pb.u == exclude {
			continue
		}
		u := pb.u
		for oi := f.partnerStart[u]; oi < f.partnerStart[u+1]; oi++ {
			i := f.order[oi]
			s := a[set.Pairs[i].Event] + b[u] + set.Cross[i]
			if len(h) < n {
				h.push(Result{set.Pairs[i].Event, u, s})
			} else if s > h[0].Score {
				h.replaceMin(Result{set.Pairs[i].Event, u, s})
			}
		}
	}
	return h.drainDescending(nil)
}

func resultsBitIdentical(t *testing.T, want, got []Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("result count: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Event != got[i].Event || want[i].Partner != got[i].Partner {
			t.Fatalf("result %d: got pair (%d,%d), want (%d,%d)",
				i, got[i].Event, got[i].Partner, want[i].Event, want[i].Partner)
		}
		wb := math.Float32bits(want[i].Score)
		gb := math.Float32bits(got[i].Score)
		if wb != gb {
			t.Fatalf("result %d score bits: got %#x (%v), want %#x (%v)",
				i, gb, got[i].Score, wb, want[i].Score)
		}
	}
}

// TestTopNExcludingBitIdenticalToReference checks that the pooled-
// scratch query path — packed DotBatch affinities, lazy bound heap,
// reused result buffers — returns results bit-identical to the
// pre-pool implementation across randomized candidate sets, query
// vectors, result sizes, and exclusions. One scratch is reused across
// every query to also exercise warm-buffer reuse.
func TestTopNExcludingBitIdenticalToReference(t *testing.T) {
	src := rng.New(411)
	sc := GetScratch()
	defer PutScratch(sc)
	shapes := []struct {
		nx, nu, k, topK int
	}{
		{17, 9, 5, 0},
		{40, 25, 8, 6},
		{3, 50, 12, 1},
		{64, 31, 16, 10},
		{25, 25, 7, 25}, // topK == |X|: unpruned
	}
	for _, sh := range shapes {
		events := randomVecs(src, sh.nx, sh.k, true)
		partners := randomVecs(src, sh.nu, sh.k, true)
		cs, err := BuildCandidates(events, partners, BuildConfig{TopKEvents: sh.topK, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		f := NewFastIndex(cs)
		for q := 0; q < 20; q++ {
			userVec := randomVecs(src, 1, sh.k, true)[0]
			n := 1 + src.Intn(len(cs.Pairs)+3)
			exclude := int32(src.Intn(sh.nu+2)) - 1
			want := referenceTopNExcluding(f, userVec, n, exclude)

			got, _ := f.TopNExcludingScratch(userVec, n, exclude, sc)
			resultsBitIdentical(t, want, got)

			// The pooled convenience wrapper must agree too.
			got2, _ := f.TopNExcluding(userVec, n, exclude)
			resultsBitIdentical(t, want, got2)
		}
	}
}

// TestDynamicScratchMatchesPooled checks the Dynamic scratch variant
// against the allocating wrapper after delta arrivals.
func TestDynamicScratchMatchesPooled(t *testing.T) {
	src := rng.New(412)
	events := randomVecs(src, 30, 9, true)
	partners := randomVecs(src, 20, 9, true)
	cs, err := BuildCandidates(events, partners, BuildConfig{TopKEvents: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDynamic(cs, 8)
	for _, v := range randomVecs(src, 7, 9, true) {
		if err := d.AddEvent(v); err != nil {
			t.Fatal(err)
		}
	}
	sc := GetScratch()
	defer PutScratch(sc)
	for q := 0; q < 10; q++ {
		userVec := randomVecs(src, 1, 9, true)[0]
		want, _ := d.TopNExcluding(userVec, 12, int32(q%len(partners)))
		got, _ := d.TopNExcludingScratch(userVec, 12, int32(q%len(partners)), sc)
		if len(want) != len(got) {
			t.Fatalf("query %d: got %d results, want %d", q, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("query %d result %d: got %+v, want %+v", q, i, got[i], want[i])
			}
		}
	}
}
