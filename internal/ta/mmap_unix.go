//go:build unix

package ta

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f copy-on-write. PROT_WRITE with
// MAP_PRIVATE means reads serve straight from the page cache while an
// accidental in-process store dirties a private anonymous page instead
// of the artifact file — the on-disk bytes can never be damaged through
// the mapping.
func mapFile(f *os.File, size int64) (*mapping, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, err
	}
	return &mapping{data: data, mmapped: true}, nil
}

// release unmaps an OS mapping; heap-backed mappings (from tests
// exercising the portable decode path) have nothing to release.
func (m *mapping) release() error {
	if !m.mmapped || m.data == nil {
		return nil
	}
	return syscall.Munmap(m.data)
}
