package ta

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"ebsn/internal/rng"
)

// buildTieSet builds a candidate set + index whose vectors contain
// deliberate duplicates, so top-n results include exact score ties and
// the round-trip tests exercise the canonical tie order.
func buildTieSet(t testing.TB, seed uint64, nEvents, nPartners, k, topK int) (*CandidateSet, *FastIndex) {
	t.Helper()
	src := rng.New(seed)
	events := randomVecs(src, nEvents, k, true)
	partners := randomVecs(src, nPartners, k, true)
	for i := 4; i < nEvents; i += 5 {
		events[i] = append([]float32(nil), events[i-1]...)
	}
	for u := 3; u < nPartners; u += 4 {
		partners[u] = append([]float32(nil), partners[u-1]...)
	}
	set, err := BuildCandidates(events, partners, BuildConfig{TopKEvents: topK})
	if err != nil {
		t.Fatal(err)
	}
	return set, NewFastIndex(set)
}

// writeTieArtifact writes buildTieSet's single-segment artifact and
// returns its path, fingerprint, and the original set/index.
func writeTieArtifact(t testing.TB, dir string, quantized bool) (string, uint64, *CandidateSet, *FastIndex) {
	t.Helper()
	set, idx := buildTieSet(t, 42, 60, 35, 8, 9)
	if quantized {
		set.PackQuantized()
	}
	fp := Fingerprint([]uint64{uint64(set.K), uint64(len(set.Events)), uint64(len(set.Partners))},
		set.Events, set.Partners)
	path := filepath.Join(dir, "index.art")
	seg := Segment{Lo: 0, Hi: int32(len(set.Partners)), Set: set, Idx: idx}
	if err := WriteArtifact(path, fp, set.K, len(set.Partners), []Segment{seg}); err != nil {
		t.Fatal(err)
	}
	return path, fp, set, idx
}

// queryBits runs a tie-heavy query workload against an index and
// returns the exact result stream (pairs + score bit patterns).
func queryBits(t testing.TB, idx *FastIndex, quantized bool, seed uint64) []uint64 {
	t.Helper()
	src := rng.New(seed)
	sc := GetScratch()
	defer PutScratch(sc)
	var out []uint64
	for trial := 0; trial < 40; trial++ {
		u := randomVecs(src, 1, idx.set.K, true)[0]
		for _, n := range []int{1, 5, 17} {
			var res []Result
			if quantized {
				res, _ = idx.TopNExcludingQuantizedScratch(u, n, int32(trial%7), sc)
			} else {
				res, _ = idx.TopNExcludingScratch(u, n, int32(trial%7), sc)
			}
			for _, r := range res {
				out = append(out, uint64(r.Event)<<40|uint64(r.Partner)<<8)
				out = append(out, uint64(math.Float32bits(r.Score)))
			}
		}
	}
	return out
}

func TestArtifactRoundTripBitIdentical(t *testing.T) {
	for _, quantized := range []bool{false, true} {
		path, fp, set, idx := writeTieArtifact(t, t.TempDir(), quantized)
		art, err := OpenArtifact(path, fp)
		if err != nil {
			t.Fatal(err)
		}
		defer art.Close()
		if art.Quantized() != quantized {
			t.Fatalf("quantized=%v, artifact says %v", quantized, art.Quantized())
		}
		segs := art.Segments()
		if len(segs) != 1 {
			t.Fatalf("got %d segments", len(segs))
		}
		m := segs[0]
		if len(m.Set.Events) != len(set.Events) || len(m.Set.Partners) != len(set.Partners) ||
			len(m.Set.Pairs) != len(set.Pairs) {
			t.Fatal("mapped geometry differs")
		}
		for i, p := range set.Pairs {
			if m.Set.Pairs[i] != p {
				t.Fatalf("pair %d differs", i)
			}
		}
		for i, c := range set.Cross {
			if math.Float32bits(m.Set.Cross[i]) != math.Float32bits(c) {
				t.Fatalf("cross %d differs", i)
			}
		}
		want := queryBits(t, idx, quantized, 99)
		got := queryBits(t, m.Idx, quantized, 99)
		if len(want) != len(got) {
			t.Fatalf("result stream length %d vs %d", len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("quantized=%v: result stream diverges at %d", quantized, i)
			}
		}
	}
}

// TestArtifactHeapDecodeMatchesMapped drives the decode path over a
// plain heap copy of the file — exactly what the non-unix mapFile
// fallback produces — and checks it yields the same index as the
// mmap-backed open.
func TestArtifactHeapDecodeMatchesMapped(t *testing.T) {
	path, fp, _, idx := writeTieArtifact(t, t.TempDir(), true)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	art, err := decodeArtifact(&mapping{data: raw}, fp)
	if err != nil {
		t.Fatal(err)
	}
	want := queryBits(t, idx, true, 7)
	got := queryBits(t, art.Segments()[0].Idx, true, 7)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("heap decode diverges at %d", i)
		}
	}
}

func TestArtifactCorruptionTable(t *testing.T) {
	dir := t.TempDir()
	path, fp, _, _ := writeTieArtifact(t, dir, true)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
		wantFp uint64
	}{
		{"truncated header", func(b []byte) []byte { return b[:10] }, ErrArtifactCorrupt, fp},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-100] }, ErrArtifactCorrupt, fp},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, ErrArtifactCorrupt, fp},
		{"version skew", func(b []byte) []byte { b[11] = 99; return b }, ErrArtifactStale, fp},
		{"header bit flip", func(b []byte) []byte { b[30] ^= 0x40; return b }, ErrArtifactCorrupt, fp},
		{"directory bit flip", func(b []byte) []byte { b[artifactHeaderLen+3] ^= 1; return b }, ErrArtifactCorrupt, fp},
		{"payload bit flip", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }, ErrArtifactCorrupt, fp},
		{"fingerprint mismatch", func(b []byte) []byte { return b }, ErrArtifactStale, fp + 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mutate(append([]byte(nil), raw...))
			p := filepath.Join(dir, "mutated.art")
			if err := os.WriteFile(p, mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := OpenArtifact(p, tc.wantFp)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}

	t.Run("missing file", func(t *testing.T) {
		_, err := OpenArtifact(filepath.Join(dir, "nope.art"), fp)
		if !os.IsNotExist(err) {
			t.Fatalf("got %v, want not-exist", err)
		}
	})
}

// TestArtifactMappedPackQuantizedNoop checks that re-quantizing a
// mapped set is a no-op: the mirrors already alias the artifact pages
// and must not be rewritten in place.
func TestArtifactMappedPackQuantizedNoop(t *testing.T) {
	path, fp, _, _ := writeTieArtifact(t, t.TempDir(), true)
	art, err := OpenArtifact(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer art.Close()
	set := art.Segments()[0].Set
	beforeQ := &set.eventQ[0]
	beforeS := &set.eventScale[0]
	set.PackQuantized()
	if &set.eventQ[0] != beforeQ || &set.eventScale[0] != beforeS {
		t.Fatal("PackQuantized rewrote a mapped set's mirrors")
	}
}

func TestArtifactMappedBytesAccounting(t *testing.T) {
	path, fp, _, _ := writeTieArtifact(t, t.TempDir(), false)
	before := MappedBytes()
	art, err := OpenArtifact(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if got := MappedBytes() - before; got != art.Size() {
		t.Fatalf("MappedBytes grew by %d, artifact is %d bytes", got, art.Size())
	}
	if err := art.Close(); err != nil {
		t.Fatal(err)
	}
	if err := art.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if got := MappedBytes(); got != before {
		t.Fatalf("MappedBytes %d after close, want %d", got, before)
	}
}
