package ta

import "math"

// jacobiEigen computes the eigendecomposition of a symmetric d×d matrix
// (row-major) with the cyclic Jacobi method: a = V · diag(w) · Vᵀ. It
// returns the eigenvalues and the column-eigenvector matrix V (row-major,
// V[i*d+j] = component i of eigenvector j). d is small here — at most
// K+1 ≤ 101 — so the O(d³) sweeps are trivial next to index building.
func jacobiEigen(a []float64, d int) (w []float64, v []float64) {
	m := make([]float64, len(a))
	copy(m, a)
	v = make([]float64, d*d)
	for i := 0; i < d; i++ {
		v[i*d+i] = 1
	}
	for sweep := 0; sweep < 64; sweep++ {
		// Sum of off-diagonal magnitudes; stop when negligible.
		var off float64
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				off += math.Abs(m[i*d+j])
			}
		}
		if off < 1e-10 {
			break
		}
		for p := 0; p < d; p++ {
			for q := p + 1; q < d; q++ {
				apq := m[p*d+q]
				if math.Abs(apq) < 1e-14 {
					continue
				}
				app, aqq := m[p*d+p], m[q*d+q]
				theta := (aqq - app) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/columns p and q of m.
				for i := 0; i < d; i++ {
					aip, aiq := m[i*d+p], m[i*d+q]
					m[i*d+p] = c*aip - s*aiq
					m[i*d+q] = s*aip + c*aiq
				}
				for i := 0; i < d; i++ {
					api, aqi := m[p*d+i], m[q*d+i]
					m[p*d+i] = c*api - s*aqi
					m[q*d+i] = s*api + c*aqi
				}
				// Accumulate the rotation into V.
				for i := 0; i < d; i++ {
					vip, viq := v[i*d+p], v[i*d+q]
					v[i*d+p] = c*vip - s*viq
					v[i*d+q] = s*vip + c*viq
				}
			}
		}
	}
	w = make([]float64, d)
	for i := 0; i < d; i++ {
		w[i] = m[i*d+i]
	}
	return w, v
}
