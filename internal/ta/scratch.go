package ta

import "sync"

// Scratch owns every per-query buffer of the TA hot paths: the affinity
// arrays and lazy bound heap of FastIndex, the rotated query, cursors
// and epoch-stamped seen set of the Fagin Index, the result heap, and
// the reusable result slices the ...Scratch query variants return. A
// warmed Scratch makes steady-state queries allocation-free.
//
// A Scratch is not safe for concurrent use; take one per query from
// GetScratch (a sync.Pool) and return it with PutScratch. Results
// returned by the ...Scratch query variants alias its buffers and are
// valid only until the Scratch's next use.
type Scratch struct {
	// FastIndex state.
	a      []float32      // per-event affinity u·x
	b      []float32      // per-partner affinity u·u'
	bounds []partnerBound // lazy max-heap of partner score bounds

	// Fagin Index state.
	q       []float32 // rotated reduced query
	cursors []cursor
	ch      cursorHeap
	seen    []uint32 // epoch stamps per candidate (replaces a map)
	epoch   uint32

	// Quantized query state: the int8-quantized query, its scale's
	// widening dot results, and the approximate-walk survivor heap the
	// exact re-rank consumes.
	q8     []int8
	i32    []int32
	qcands quantHeap

	// Shared result state.
	results resultHeap
	out     []Result
	dout    []DynamicResult
}

// markSeen reports whether candidate c was already stamped this query,
// stamping it if not. sizeSeen must have been called for the query.
func (sc *Scratch) markSeen(c int32) bool {
	if sc.seen[c] == sc.epoch {
		return true
	}
	sc.seen[c] = sc.epoch
	return false
}

// sizeSeen prepares the epoch-stamped seen set for a query over n
// candidates: the array is grown (zeroed by the runtime) when too small,
// and the epoch is bumped so prior stamps expire without a clear. On the
// rare epoch wraparound the array is cleared once.
func (sc *Scratch) sizeSeen(n int) {
	if len(sc.seen) < n {
		sc.seen = make([]uint32, n)
		sc.epoch = 0
	}
	sc.epoch++
	if sc.epoch == 0 {
		clear(sc.seen)
		sc.epoch = 1
	}
}

// resizeF32 returns buf grown to length n, reusing capacity. Contents
// are unspecified.
func resizeF32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// resizeSlice is resizeF32 for any element type.
func resizeSlice[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch takes a query scratch from the pool. Pair with PutScratch.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a scratch to the pool. The caller must not touch
// the scratch — or any query results that alias it — afterwards.
func PutScratch(sc *Scratch) {
	if sc != nil {
		scratchPool.Put(sc)
	}
}
