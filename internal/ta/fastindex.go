package ta

import (
	"time"

	"ebsn/internal/vecmath"
)

// FastIndex is the production top-n engine for the transformed space. The
// generic Fagin TA of Index treats the 2K+1 coordinates as opaque lists,
// which on dense signed embeddings degenerates (fat-tailed spectra keep
// the threshold high; see EXPERIMENTS.md). FastIndex instead exploits the
// product structure the transformation creates:
//
//	score(u; x, u') = u·x + u·u' + x·u' = a(x) + b(u') + cross(x, u')
//
// a and b are computed once per query in (|X|+|U|)·K flops — streamed
// over the set's packed row-major storage with vecmath.DotBatch; cross is
// precomputed per pair at build time. Candidates are grouped by partner,
// each partner u' carries the offline bound maxCross(u') over its own
// candidate events, and the query consumes partners in decreasing
//
//	bound(u') = b(u') + max_x a(x) + maxCross(u')
//
// order — an upper bound on every one of u's pairs — stopping as soon as
// the next bound cannot beat the n-th best exact score. The decreasing
// order comes from a lazy max-heap over the bounds (O(|U|) to build, one
// O(log|U|) pop per partner actually consumed), not a full sort: a query
// that terminates after a few hundred partners never orders the other
// hundreds of thousands. This is the same threshold-algorithm contract
// as Index (sorted access by bound, cheap random access, early
// termination, exact results), specialized to the pair structure. Even a
// full scan costs one addition per pair instead of one K-dim dot
// product, so it lower-bounds brute force by a factor ~K; the threshold
// stop then prunes on top of that.
type FastIndex struct {
	set *CandidateSet
	// order holds pair indices grouped by partner via a counting sort;
	// partnerStart[u] .. partnerStart[u+1] delimit partner u's pairs
	// within it. The indirection makes the index independent of the
	// set's pair ordering (Dynamic.Rebuild appends out of order).
	order        []int32
	partnerStart []int32
	// maxCross[u] is max over u's candidate pairs of the cross term.
	maxCross []float32
}

// partnerBound is one entry of the per-query lazy bound heap.
type partnerBound struct {
	u     int32
	bound float32
}

// NewFastIndex builds the per-partner grouping and offline bounds using
// all available CPUs. See NewFastIndexWorkers.
func NewFastIndex(set *CandidateSet) *FastIndex { return NewFastIndexWorkers(set, 0) }

// NewFastIndexWorkers builds the per-partner grouping and offline bounds
// with the given parallelism (≤ 0 means GOMAXPROCS). The build is a
// parallel counting sort: per-chunk partner counts, a prefix pass that
// assigns every (chunk, partner) block its slot range, then fully
// parallel placement — each chunk writes disjoint slots, and a partner's
// pairs land in original order regardless of the worker count, so the
// output is identical to the serial build. Packs the set as a side
// effect.
func NewFastIndexWorkers(set *CandidateSet, workers int) *FastIndex {
	workers = resolveWorkers(workers)
	set.Pack()
	nu := len(set.Partners)
	np := len(set.Pairs)
	f := &FastIndex{
		set:          set,
		order:        make([]int32, np),
		partnerStart: make([]int32, nu+1),
		maxCross:     make([]float32, nu),
	}

	// Chunk the pair list. Each chunk counts its pairs per partner.
	nchunks := workers
	if nchunks > np {
		nchunks = np
	}
	if nchunks < 1 {
		nchunks = 1
	}
	chunk := (np + nchunks - 1) / nchunks
	counts := make([][]int32, 0, nchunks)
	for lo := 0; lo < np; lo += chunk {
		counts = append(counts, make([]int32, nu))
	}
	parallelFor(len(counts), workers, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > np {
			hi = np
		}
		cnt := counts[c]
		for _, p := range set.Pairs[lo:hi] {
			cnt[p.Partner]++
		}
	})

	// Prefix pass: partnerStart from the per-partner totals, then turn
	// each chunk's count into its starting slot for that partner.
	var run int32
	for u := 0; u < nu; u++ {
		f.partnerStart[u] = run
		for _, cnt := range counts {
			n := cnt[u]
			cnt[u] = run
			run += n
		}
	}
	f.partnerStart[nu] = run

	// Placement: each chunk fills its own slots.
	parallelFor(len(counts), workers, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > np {
			hi = np
		}
		cur := counts[c]
		for i := lo; i < hi; i++ {
			u := set.Pairs[i].Partner
			f.order[cur[u]] = int32(i)
			cur[u]++
		}
	})

	// Offline per-partner cross-term bounds.
	parallelChunks(nu, workers, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			s, e := f.partnerStart[u], f.partnerStart[u+1]
			if s == e {
				continue
			}
			best := set.Cross[f.order[s]]
			for i := s + 1; i < e; i++ {
				if c := set.Cross[f.order[i]]; c > best {
					best = c
				}
			}
			f.maxCross[u] = best
		}
	})
	return f
}

// TopN returns the exact top-n event-partner pairs for the user vector,
// descending by score, with access statistics. RandomAccesses counts
// exactly the pairs whose score was materialized; SortedAccesses counts
// the partner bounds consumed from the lazy heap.
func (f *FastIndex) TopN(userVec []float32, n int) ([]Result, SearchStats) {
	return f.TopNExcluding(userVec, n, -1)
}

// TopNExcluding is TopN with one partner excluded from the results — the
// serving path excludes the querying user, whose self-pairs would
// otherwise crowd the top of the list (u·u is a squared norm and u's own
// candidate events score u·x twice). Pass a negative ID to exclude no one.
func (f *FastIndex) TopNExcluding(userVec []float32, n int, exclude int32) ([]Result, SearchStats) {
	sc := GetScratch()
	defer PutScratch(sc)
	return f.topNExcluding(userVec, nil, n, exclude, sc, nil)
}

// TopNExcludingScratch is TopNExcluding with caller-managed scratch:
// every per-query buffer, including the returned slice, comes from sc,
// so a warmed scratch makes the query allocation-free. The results alias
// sc and are valid only until its next use.
func (f *FastIndex) TopNExcludingScratch(userVec []float32, n int, exclude int32, sc *Scratch) ([]Result, SearchStats) {
	res, stats := f.topNExcluding(userVec, nil, n, exclude, sc, sc.out[:0])
	sc.out = res[:0]
	return res, stats
}

// TopNExcludingAffScratch is TopNExcludingScratch with the per-event
// affinity pass precomputed: eventAff[x] must be userVec·Events[x] for
// every event of the candidate set, produced by the same kernel
// (vecmath.DotBatch over packed rows) so scores stay bit-identical to
// the self-computing variants. The sharded engine computes the pass once
// per query and shares it across every shard — the event side of the
// space is replicated per shard, so recomputing it per shard would undo
// the partitioning of the per-query work (see internal/engine).
func (f *FastIndex) TopNExcludingAffScratch(userVec, eventAff []float32, n int, exclude int32, sc *Scratch) ([]Result, SearchStats) {
	res, stats := f.topNExcluding(userVec, eventAff, n, exclude, sc, sc.out[:0])
	sc.out = res[:0]
	return res, stats
}

func (f *FastIndex) topNExcluding(userVec, eventAff []float32, n int, exclude int32, sc *Scratch, dst []Result) ([]Result, SearchStats) {
	start := time.Now()
	set := f.set
	nc := len(set.Pairs)
	stats := SearchStats{Candidates: nc}
	if n <= 0 || nc == 0 {
		return nil, stats
	}
	if n > nc {
		n = nc
	}

	// Per-query event and partner affinities, streamed over the packed
	// rows. A caller that already holds the event pass hands it in and
	// only the partner pass runs here.
	a := eventAff
	if a == nil {
		sc.a = resizeF32(sc.a, len(set.Events))
		a = sc.a
		vecmath.DotBatch(userVec, set.eventData, set.K, a)
	}
	nu := len(set.Partners)
	sc.b = resizeF32(sc.b, nu)
	b := sc.b
	vecmath.DotBatch(userVec, set.partnerData, set.K, b)

	res := f.walkTopN(a, b, n, exclude, sc, &stats, dst)
	stats.Elapsed = time.Since(start)
	return res, stats
}

// walkTopN runs the bound-heap walk over precomputed affinities: a[x] =
// a(x) per event, b[u] = b(u') per partner. It is the shared core of
// the single-query and batched exact paths — both hand it affinities
// produced by the same accumulation order (DotBatch and DotPanel are
// bit-identical), so batched results match sequential ones bit for bit,
// tie ordering included. Results are drained into dst in canonical
// order; stats accumulates the access counts.
func (f *FastIndex) walkTopN(a, b []float32, n int, exclude int32, sc *Scratch, stats *SearchStats, dst []Result) []Result {
	set := f.set
	var amax float32
	for x, v := range a {
		if x == 0 || v > amax {
			amax = v
		}
	}

	// Lazy selection: heapify the partner bounds in O(|U|) and pop only
	// as many as the threshold stop actually consumes.
	nu := len(set.Partners)
	bounds := sc.bounds[:0]
	for u := 0; u < nu; u++ {
		if f.partnerStart[u] == f.partnerStart[u+1] {
			continue // partner contributes no candidates
		}
		bounds = append(bounds, partnerBound{int32(u), b[u] + amax + f.maxCross[u]})
	}
	sc.bounds = bounds
	heapifyBounds(bounds)

	h := &sc.results
	*h = (*h)[:0]
	for len(bounds) > 0 {
		top := bounds[0]
		// Strictly greater, not ≥: a remaining pair whose score exactly
		// equals both the bound and the weakest retained score could still
		// outrank it on the canonical tie-break (smaller partner/event), so
		// equality keeps scanning. Exact equality needs a pair to attain
		// amax and maxCross simultaneously — rare enough that the extra
		// partner scans are noise, and exactness under ties is what the
		// sharded engine's merge depends on.
		if len(*h) == n && (*h)[0].Score > top.bound {
			break // no remaining partner can beat the current top n
		}
		last := len(bounds) - 1
		bounds[0] = bounds[last]
		bounds = bounds[:last]
		if last > 0 {
			siftDownBounds(bounds, 0)
		}
		stats.SortedAccesses++
		if top.u == exclude {
			continue
		}
		u := top.u
		bu := b[u]
		for oi := f.partnerStart[u]; oi < f.partnerStart[u+1]; oi++ {
			i := f.order[oi]
			stats.RandomAccesses++
			r := Result{set.Pairs[i].Event, u, a[set.Pairs[i].Event] + bu + set.Cross[i]}
			if len(*h) < n {
				h.push(r)
			} else if r.Outranks((*h)[0]) {
				h.replaceMin(r)
			}
		}
	}
	return h.drainDescending(dst)
}

// heapifyBounds establishes the max-heap invariant on bound.
func heapifyBounds(b []partnerBound) {
	for i := len(b)/2 - 1; i >= 0; i-- {
		siftDownBounds(b, i)
	}
}

// siftDownBounds restores the max-heap invariant below position i.
func siftDownBounds(b []partnerBound, i int) {
	for {
		l := 2*i + 1
		if l >= len(b) {
			return
		}
		m := l
		if r := l + 1; r < len(b) && b[r].bound > b[l].bound {
			m = r
		}
		if b[i].bound >= b[m].bound {
			return
		}
		b[i], b[m] = b[m], b[i]
		i = m
	}
}
