package ta

import (
	"container/heap"
	"sort"

	"ebsn/internal/vecmath"
)

// FastIndex is the production top-n engine for the transformed space. The
// generic Fagin TA of Index treats the 2K+1 coordinates as opaque lists,
// which on dense signed embeddings degenerates (fat-tailed spectra keep
// the threshold high; see EXPERIMENTS.md). FastIndex instead exploits the
// product structure the transformation creates:
//
//	score(u; x, u') = u·x + u·u' + x·u' = a(x) + b(u') + cross(x, u')
//
// a and b are computed once per query in (|X|+|U|)·K flops; cross is
// precomputed per pair at build time. Candidates are grouped by partner,
// each partner u' carries the offline bound maxCross(u') over its own
// candidate events, and the query scans partners in decreasing
//
//	bound(u') = b(u') + max_x a(x) + maxCross(u')
//
// order — an upper bound on every one of u's pairs — stopping as soon as
// the next bound cannot beat the n-th best exact score. This is the same
// threshold-algorithm contract as Index (sorted access by bound, cheap
// random access, early termination, exact results), specialized to the
// pair structure. Even a full scan costs one addition per pair instead of
// one K-dim dot product, so it lower-bounds brute force by a factor ~K;
// the threshold stop then prunes on top of that.
type FastIndex struct {
	set *CandidateSet
	// order holds pair indices grouped by partner via a counting sort;
	// partnerStart[u] .. partnerStart[u+1] delimit partner u's pairs
	// within it. The indirection makes the index independent of the
	// set's pair ordering (Dynamic.Rebuild appends out of order).
	order        []int32
	partnerStart []int32
	// maxCross[u] is max over u's candidate pairs of the cross term.
	maxCross []float32
}

// NewFastIndex builds the per-partner grouping and offline bounds.
func NewFastIndex(set *CandidateSet) *FastIndex {
	nu := len(set.Partners)
	f := &FastIndex{
		set:          set,
		order:        make([]int32, len(set.Pairs)),
		partnerStart: make([]int32, nu+1),
		maxCross:     make([]float32, nu),
	}
	counts := make([]int32, nu+1)
	for _, p := range set.Pairs {
		counts[p.Partner+1]++
	}
	for u := 0; u < nu; u++ {
		counts[u+1] += counts[u]
	}
	copy(f.partnerStart, counts)
	cursor := make([]int32, nu)
	for i, p := range set.Pairs {
		f.order[f.partnerStart[p.Partner]+cursor[p.Partner]] = int32(i)
		cursor[p.Partner]++
	}

	for u := range f.maxCross {
		lo, hi := f.partnerStart[u], f.partnerStart[u+1]
		if lo == hi {
			continue
		}
		best := set.Cross[f.order[lo]]
		for i := lo + 1; i < hi; i++ {
			if c := set.Cross[f.order[i]]; c > best {
				best = c
			}
		}
		f.maxCross[u] = best
	}
	return f
}

// TopN returns the exact top-n event-partner pairs for the user vector,
// descending by score, with access statistics. RandomAccesses counts
// exactly the pairs whose score was materialized.
func (f *FastIndex) TopN(userVec []float32, n int) ([]Result, SearchStats) {
	return f.TopNExcluding(userVec, n, -1)
}

// TopNExcluding is TopN with one partner excluded from the results — the
// serving path excludes the querying user, whose self-pairs would
// otherwise crowd the top of the list (u·u is a squared norm and u's own
// candidate events score u·x twice). Pass a negative ID to exclude no one.
func (f *FastIndex) TopNExcluding(userVec []float32, n int, exclude int32) ([]Result, SearchStats) {
	set := f.set
	nc := len(set.Pairs)
	stats := SearchStats{Candidates: nc}
	if n <= 0 || nc == 0 {
		return nil, stats
	}
	if n > nc {
		n = nc
	}

	// Per-query event and partner affinities.
	a := make([]float32, len(set.Events))
	var amax float32
	for x, ev := range set.Events {
		a[x] = vecmath.Dot(userVec, ev)
		if x == 0 || a[x] > amax {
			amax = a[x]
		}
	}
	nu := len(set.Partners)
	type pb struct {
		u     int32
		b     float32
		bound float32
	}
	bounds := make([]pb, 0, nu)
	for u := 0; u < nu; u++ {
		if f.partnerStart[u] == f.partnerStart[u+1] {
			continue // partner contributes no candidates
		}
		b := vecmath.Dot(userVec, set.Partners[u])
		bounds = append(bounds, pb{int32(u), b, b + amax + f.maxCross[u]})
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].bound > bounds[j].bound })
	stats.SortedAccesses = len(bounds)

	h := &resultHeap{}
	heap.Init(h)
	for _, cand := range bounds {
		if h.Len() == n && (*h)[0].Score >= cand.bound {
			break // no remaining partner can beat the current top n
		}
		if cand.u == exclude {
			continue
		}
		u := cand.u
		b := cand.b
		for oi := f.partnerStart[u]; oi < f.partnerStart[u+1]; oi++ {
			i := f.order[oi]
			stats.RandomAccesses++
			s := a[set.Pairs[i].Event] + b + set.Cross[i]
			if h.Len() < n {
				heap.Push(h, Result{set.Pairs[i].Event, u, s})
			} else if s > (*h)[0].Score {
				(*h)[0] = Result{set.Pairs[i].Event, u, s}
				heap.Fix(h, 0)
			}
		}
	}
	return drainDescending(h), stats
}
