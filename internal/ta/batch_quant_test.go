package ta

import (
	"math"
	"strconv"
	"testing"

	"ebsn/internal/rng"
)

// TestTopNBatchBitIdenticalToSequential checks the batched exact path
// against issuing the same queries one at a time: same pairs, same
// scores bit for bit, same order — the contract that lets the serving
// coalescer batch concurrent requests transparently.
func TestTopNBatchBitIdenticalToSequential(t *testing.T) {
	src := rng.New(517)
	sc := GetScratch()
	defer PutScratch(sc)
	bsc := GetBatchScratch()
	defer PutBatchScratch(bsc)
	shapes := []struct {
		nx, nu, k, topK int
	}{
		{17, 9, 5, 0},
		{40, 25, 8, 6},
		{64, 31, 16, 10},
		{25, 25, 7, 25},
	}
	for _, sh := range shapes {
		events := randomVecs(src, sh.nx, sh.k, true)
		partners := randomVecs(src, sh.nu, sh.k, true)
		cs, err := BuildCandidates(events, partners, BuildConfig{TopKEvents: sh.topK, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		f := NewFastIndex(cs)
		for _, nb := range []int{0, 1, 2, 3, 4, 5, 8, 9} {
			users := randomVecs(src, nb, sh.k, true)
			exclude := make([]int32, nb)
			for j := range exclude {
				exclude[j] = int32(src.Intn(sh.nu+2)) - 1
			}
			n := 1 + src.Intn(len(cs.Pairs)+3)
			res, stats := f.TopNBatch(BatchQuery{Users: users, N: n, Exclude: exclude}, bsc)
			if len(res) != nb || len(stats) != nb {
				t.Fatalf("batch size %d: got %d results, %d stats", nb, len(res), len(stats))
			}
			for j := 0; j < nb; j++ {
				want, _ := f.TopNExcludingScratch(users[j], n, exclude[j], sc)
				resultsBitIdentical(t, want, res[j])
			}
		}
	}
}

// TestTopNBatchTieOrdering constructs deliberate score ties — duplicated
// event rows and duplicated partner rows make distinct pairs score
// exactly equal — and checks the batched path resolves them identically
// to the sequential path (canonical order: score desc, then partner
// asc, then event asc).
func TestTopNBatchTieOrdering(t *testing.T) {
	src := rng.New(518)
	k := 6
	events := randomVecs(src, 12, k, true)
	partners := randomVecs(src, 10, k, true)
	// Duplicate rows: events 0–3 identical, partners 0–2 identical.
	for i := 1; i <= 3; i++ {
		copy(events[i], events[0])
	}
	for u := 1; u <= 2; u++ {
		copy(partners[u], partners[0])
	}
	cs, err := BuildCandidates(events, partners, BuildConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := NewFastIndex(cs)
	sc := GetScratch()
	defer PutScratch(sc)
	bsc := GetBatchScratch()
	defer PutBatchScratch(bsc)

	users := randomVecs(src, 6, k, true)
	// Identical queries across lanes also force cross-lane determinism.
	copy(users[1], users[0])
	for _, n := range []int{1, 5, 12, len(cs.Pairs)} {
		res, _ := f.TopNBatch(BatchQuery{Users: users, N: n}, bsc)
		for j := range users {
			want, _ := f.TopNExcludingScratch(users[j], n, -1, sc)
			resultsBitIdentical(t, want, res[j])
		}
		// Sanity: the duplicated rows really did create ties (guaranteed
		// only in the full ranking, which contains every duplicate pair).
		if n == len(cs.Pairs) {
			tied := false
			for i := 1; i < len(res[0]); i++ {
				if math.Float32bits(res[0][i].Score) == math.Float32bits(res[0][i-1].Score) {
					tied = true
				}
			}
			if !tied {
				t.Fatal("tie construction failed: no equal adjacent scores in top results")
			}
		}
	}
}

// TestTopNBatchPrecomputedAff checks that handing the event-affinity
// panel in via BatchQuery.EventAff (the sharded engine's prepass) is
// bit-identical to letting TopNBatch compute it.
func TestTopNBatchPrecomputedAff(t *testing.T) {
	src := rng.New(519)
	k := 9
	events := randomVecs(src, 30, k, true)
	partners := randomVecs(src, 20, k, true)
	cs, err := BuildCandidates(events, partners, BuildConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := NewFastIndex(cs)
	bsc := GetBatchScratch()
	defer PutBatchScratch(bsc)
	affBsc := GetBatchScratch()
	defer PutBatchScratch(affBsc)

	for _, quantized := range []bool{false, true} {
		if quantized {
			cs.PackQuantized()
		}
		users := randomVecs(src, 7, k, true)
		res, _ := f.TopNBatch(BatchQuery{Users: users, N: 8, Quantized: quantized}, bsc)
		want := make([][]Result, len(res))
		for j := range res {
			want[j] = append([]Result(nil), res[j]...)
		}
		aff := cs.EventAffinityPanel(users, quantized, affBsc)
		res2, _ := f.TopNBatch(BatchQuery{Users: users, N: 8, EventAff: aff, Quantized: quantized}, bsc)
		for j := range want {
			resultsBitIdentical(t, want[j], res2[j])
		}
	}
}

// TestQuantizedMatchesBatchQuantized checks the single-query quantized
// path and the batched quantized path agree bit for bit — both route
// through the same approximate walk and exact re-rank.
func TestQuantizedMatchesBatchQuantized(t *testing.T) {
	src := rng.New(520)
	k := 12
	events := randomVecs(src, 50, k, true)
	partners := randomVecs(src, 40, k, true)
	cs, err := BuildCandidates(events, partners, BuildConfig{TopKEvents: 20, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cs.PackQuantized()
	f := NewFastIndex(cs)
	sc := GetScratch()
	defer PutScratch(sc)
	bsc := GetBatchScratch()
	defer PutBatchScratch(bsc)

	users := randomVecs(src, 9, k, true)
	exclude := make([]int32, len(users))
	for j := range exclude {
		exclude[j] = int32(src.Intn(len(partners)+2)) - 1
	}
	res, _ := f.TopNBatch(BatchQuery{Users: users, N: 7, Exclude: exclude, Quantized: true}, bsc)
	for j := range users {
		want, _ := f.TopNExcludingQuantizedScratch(users[j], 7, exclude[j], sc)
		resultsBitIdentical(t, want, res[j])
	}
}

// TestQuantizedSurvivorScoresExact checks that every result the
// quantized path returns carries the exact float32 score the exact path
// assigns the same pair — the re-rank must leave no approximate scores
// in the output.
func TestQuantizedSurvivorScoresExact(t *testing.T) {
	src := rng.New(521)
	k := 10
	events := randomVecs(src, 60, k, true)
	partners := randomVecs(src, 45, k, true)
	cs, err := BuildCandidates(events, partners, BuildConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cs.PackQuantized()
	f := NewFastIndex(cs)
	sc := GetScratch()
	defer PutScratch(sc)

	for q := 0; q < 10; q++ {
		userVec := randomVecs(src, 1, k, true)[0]
		got, _ := f.TopNExcludingQuantizedScratch(userVec, 10, -1, sc)
		exact := referenceTopNExcluding(f, userVec, len(cs.Pairs), -1)
		byPair := make(map[[2]int32]float32, len(exact))
		for _, r := range exact {
			byPair[[2]int32{r.Event, r.Partner}] = r.Score
		}
		for i, r := range got {
			want, ok := byPair[[2]int32{r.Event, r.Partner}]
			if !ok {
				t.Fatalf("result %d: pair (%d,%d) not in exact ranking", i, r.Event, r.Partner)
			}
			if math.Float32bits(want) != math.Float32bits(r.Score) {
				t.Fatalf("result %d: score %v, exact path scores the pair %v", i, r.Score, want)
			}
		}
	}
}

// quantRecallAt10 runs nq quantized queries against the index and
// returns the fraction of exact top-10 pairs the quantized path
// recovered.
func quantRecallAt10(t *testing.T, f *FastIndex, src *rng.Source, k, nq int) float64 {
	t.Helper()
	sc := GetScratch()
	defer PutScratch(sc)
	const n = 10
	hits, total := 0, 0
	for q := 0; q < nq; q++ {
		userVec := randomVecs(src, 1, k, true)[0]
		want, _ := f.TopNExcludingScratch(userVec, n, -1, sc)
		wantSet := make(map[[2]int32]bool, len(want))
		for _, r := range want {
			wantSet[[2]int32{r.Event, r.Partner}] = true
		}
		got, _ := f.TopNExcludingQuantizedScratch(userVec, n, -1, sc)
		for _, r := range got {
			if wantSet[[2]int32{r.Event, r.Partner}] {
				hits++
			}
		}
		total += len(want)
	}
	return float64(hits) / float64(total)
}

// TestQuantizedRecallGate is the CI quality gate for the int8 path:
// recall@10 against the exact ranking must stay at or above 0.99 on a
// serving-scale synthetic space. Deterministic (fixed seeds), so a
// regression in the quantization scheme fails loudly rather than
// shifting a flaky threshold.
func TestQuantizedRecallGate(t *testing.T) {
	if testing.Short() {
		t.Skip("serving-scale space; skipped in -short")
	}
	src := rng.New(522)
	const k = 60
	events := randomVecs(src, 800, k, true)
	partners := randomVecs(src, 1200, k, true)
	cs, err := BuildCandidates(events, partners, BuildConfig{TopKEvents: 50, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cs.PackQuantized()
	f := NewFastIndex(cs)

	recall := quantRecallAt10(t, f, src, k, 200)
	t.Logf("quantized recall@10 = %.4f over 200 queries, %d pairs", recall, len(cs.Pairs))
	if recall < 0.99 {
		t.Fatalf("quantized recall@10 = %.4f, gate requires >= 0.99", recall)
	}
}

// TestTopNBatchSteadyStateAllocs checks that a warmed batch scratch
// makes batched queries — exact and quantized — allocation-free.
func TestTopNBatchSteadyStateAllocs(t *testing.T) {
	src := rng.New(523)
	const k = 16
	events := randomVecs(src, 100, k, true)
	partners := randomVecs(src, 80, k, true)
	cs, err := BuildCandidates(events, partners, BuildConfig{TopKEvents: 30, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cs.PackQuantized()
	f := NewFastIndex(cs)
	bsc := GetBatchScratch()
	defer PutBatchScratch(bsc)
	users := randomVecs(src, 8, k, true)

	for _, quantized := range []bool{false, true} {
		q := BatchQuery{Users: users, N: 10, Quantized: quantized}
		f.TopNBatch(q, bsc) // warm the buffers
		allocs := testing.AllocsPerRun(50, func() { f.TopNBatch(q, bsc) })
		if allocs != 0 {
			t.Errorf("quantized=%v: %v allocs per warmed batch, want 0", quantized, allocs)
		}
	}
}

// BenchmarkTopNBatch measures per-user cost of the batched exact path
// across batch widths on the standard benchmark space; b=1 is the
// degenerate batch for comparison against BenchmarkTopNExcluding.
func BenchmarkTopNBatch(b *testing.B) {
	cs := benchSet(b)
	f := NewFastIndex(cs)
	cs.PackQuantized()
	src := rng.New(95)
	queries := randomVecs(src, 256, 60, true)
	for _, quantized := range []bool{false, true} {
		mode := "exact"
		if quantized {
			mode = "quantized"
		}
		for _, nb := range []int{1, 4, 8, 16} {
			b.Run(mode+"/b="+strconv.Itoa(nb), func(b *testing.B) {
				bsc := GetBatchScratch()
				defer PutBatchScratch(bsc)
				users := make([][]float32, nb)
				q := BatchQuery{Users: users, N: 10, Quantized: quantized}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := 0; j < nb; j++ {
						users[j] = queries[(i*nb+j)%len(queries)]
					}
					f.TopNBatch(q, bsc)
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nb), "ns/user")
			})
		}
	}
}

// BenchmarkTopNQuantized measures the single-query quantized path.
func BenchmarkTopNQuantized(b *testing.B) {
	cs := benchSet(b)
	cs.PackQuantized()
	f := NewFastIndex(cs)
	src := rng.New(96)
	queries := randomVecs(src, 256, 60, true)
	sc := GetScratch()
	defer PutScratch(sc)
	f.TopNExcludingQuantizedScratch(queries[0], 10, -1, sc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.TopNExcludingQuantizedScratch(queries[i%len(queries)], 10, -1, sc)
	}
}
