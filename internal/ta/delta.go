package ta

import (
	"fmt"
	"slices"

	"ebsn/internal/isort"
	"ebsn/internal/vecmath"
)

// Delta is the small mutable tier of the two-tier (LSM-flavored) index:
// events that arrive after the packed main index was built accumulate
// here, pruned to their topK partner pairs exactly as the offline build
// prunes, and every query scans the delta exhaustively (it is small by
// construction — compaction folds it into a fresh main index before it
// grows). A Delta only ever appends to its event/pair arrays, so a
// DeltaView captured at any point stays valid while later arrivals land;
// Advance (called when a compaction of that view is installed) is the
// one operation that rewrites the arrays and must be serialized with
// both AddEvent and queries by the caller.
type Delta struct {
	k    int
	topK int

	// Partner rows and their packed row-major mirror, shared by every
	// event that arrives: pruning scores and cross terms stream the
	// packed array (vecmath.DotBatch), query-time partner affinities
	// read the rows.
	partners    [][]float32
	partnerData []float32

	// Appended state. pairs[i].Event indexes events; pairs are grouped
	// by event in arrival order with partners ascending inside a group.
	events [][]float32
	pairs  []Candidate
	cross  []float32

	folded int // events dropped by Advance since creation
}

// NewDelta builds a delta over copies of the given partner rows; topK
// bounds the pairs added per arriving event (0 = all partners). Use
// NewDeltaForSet when a packed CandidateSet over the same partners
// already exists.
func NewDelta(partners [][]float32, topK int) (*Delta, error) {
	if len(partners) == 0 {
		return nil, fmt.Errorf("ta: empty partner set")
	}
	k := len(partners[0])
	rows := make([][]float32, len(partners))
	copy(rows, partners)
	d := &Delta{k: k, topK: topK, partners: rows}
	for _, v := range rows {
		if len(v) != k {
			return nil, fmt.Errorf("ta: partner vector length %d, want %d", len(v), k)
		}
	}
	d.partnerData = packRows(rows, k, nil)
	return d, nil
}

// NewDeltaForSet builds a delta sharing the set's partner rows and
// packed storage (no copy). The set must already be packed — any index
// constructor packs it.
func NewDeltaForSet(set *CandidateSet, topK int) *Delta {
	return &Delta{k: set.K, topK: topK, partners: set.Partners, partnerData: set.partnerData}
}

// K returns the embedding dimension arriving vectors must match.
func (d *Delta) K() int { return d.k }

// Events returns the number of events currently in the delta.
func (d *Delta) Events() int { return len(d.events) }

// PairCount returns the number of unindexed candidate pairs — the
// per-query exhaustive-scan cost, i.e. the compaction queue depth.
func (d *Delta) PairCount() int { return len(d.pairs) }

// Folded returns how many delta events Advance has dropped since the
// delta was created (the events already folded into some main index).
func (d *Delta) Folded() int { return d.folded }

// AddEvent registers a newly arrived event vector. Its candidate pairs
// are the topK partners by the partner-preference score u'·x (the same
// pruning rule the offline build uses), or all partners when topK ≤ 0.
// The vector is copied, so the caller may reuse its slice.
func (d *Delta) AddEvent(vec []float32) error {
	if len(vec) != d.k {
		return fmt.Errorf("ta: event vector length %d, want %d", len(vec), d.k)
	}
	vec = append(make([]float32, 0, len(vec)), vec...)
	eventIdx := int32(len(d.events))
	d.events = append(d.events, vec)

	// One streamed pass over the packed partner rows covers both the
	// pruning scores and the cross terms of the retained pairs.
	scores := make([]float32, len(d.partners))
	vecmath.DotBatch(vec, d.partnerData, d.k, scores)
	for _, u := range d.partnerIndices(scores) {
		d.pairs = append(d.pairs, Candidate{Event: eventIdx, Partner: u})
		d.cross = append(d.cross, scores[u])
	}
	return nil
}

// partnerIndices returns the partners whose candidate list the new event
// joins, given the per-partner preference scores u'·x: everyone when
// unpruned, else the topK by score — selected in O(P) with quickselect
// (the scores are a scratch copy, so partitioning them in place is fine)
// rather than a full O(P log P) sort.
func (d *Delta) partnerIndices(scores []float32) []int32 {
	n := len(d.partners)
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	if d.topK <= 0 || d.topK >= n {
		return out
	}
	isort.SelectAsc(out, scores, n-d.topK)
	out = out[n-d.topK:]
	slices.Sort(out)
	return out
}

// DeltaView is an immutable prefix snapshot of a Delta: the events and
// pairs present when View was called. Later AddEvent calls only append
// past the captured lengths (or reallocate), so a view stays readable
// without locks while ingestion continues — the property the background
// compaction relies on.
type DeltaView struct {
	// Events holds the snapshot's event vectors in arrival order.
	Events [][]float32
	// Pairs are the snapshot's candidate pairs; Event indexes Events.
	Pairs []Candidate
	// Cross holds x·u' per pair, computed at arrival time.
	Cross []float32
}

// View captures the current delta contents as an immutable snapshot.
// Must be serialized with AddEvent/Advance (the same writer lock that
// guards them); the returned view may then be read without locks.
func (d *Delta) View() DeltaView {
	return DeltaView{
		Events: d.events[:len(d.events):len(d.events)],
		Pairs:  d.pairs[:len(d.pairs):len(d.pairs)],
		Cross:  d.cross[:len(d.cross):len(d.cross)],
	}
}

// Advance drops the view's prefix — just folded into a new main index —
// keeping only events that arrived after the view was captured, with
// their pair Event indices rebased. Residuals are copied into fresh
// arrays so in-flight readers of the old ones are unaffected. The view
// must have been captured from this delta; the caller serializes
// Advance with AddEvent and queries.
func (d *Delta) Advance(v DeltaView) {
	ke, kp := len(v.Events), len(v.Pairs)
	d.events = append(make([][]float32, 0, len(d.events)-ke), d.events[ke:]...)
	rest := d.pairs[kp:]
	pairs := make([]Candidate, len(rest))
	for i, p := range rest {
		pairs[i] = Candidate{Event: p.Event - int32(ke), Partner: p.Partner}
	}
	d.pairs = pairs
	d.cross = append(make([]float32, 0, len(d.cross)-kp), d.cross[kp:]...)
	d.folded += ke
}

// MergeTopN merges base — an exact top-n over some main index, in
// canonical order — with an exhaustive scan of the delta, returning the
// overall top n. baseEvents is the main index's event count: a delta
// event's effective index in the canonical (score desc, partner asc,
// event asc) order is baseEvents + its delta position, which is exactly
// the index it will hold after compaction — so rankings, including tie
// breaks, are bit-consistent before and after a fold. Results alias
// sc's buffers; stats accumulates the delta-scan work.
func (d *Delta) MergeTopN(base []Result, baseEvents int, userVec []float32, n int, exclude int32, sc *Scratch, stats *SearchStats) []DynamicResult {
	merged := sc.dout[:0]
	for _, r := range base {
		merged = append(merged, DynamicResult{Result: r})
	}
	// Exhaustive scan of the delta: tiny by construction.
	for i, pair := range d.pairs {
		if pair.Partner == exclude {
			continue
		}
		// Operand order matters: the FastIndex scores a pair as
		// (event·u + partner·u) + cross, and float addition is not
		// associative — summing in the same order keeps a delta pair's
		// score bit-identical to what the folded index will assign it.
		s := vecmath.Dot(userVec, d.events[pair.Event]) +
			vecmath.Dot(userVec, d.partners[pair.Partner]) +
			d.cross[i]
		merged = append(merged, DynamicResult{
			Result:    Result{Event: pair.Event, Partner: pair.Partner, Score: s},
			FromDelta: true,
		})
		stats.RandomAccesses++
	}
	stats.Candidates += len(d.pairs)
	be := int32(baseEvents)
	slices.SortStableFunc(merged, func(a, b DynamicResult) int {
		ka, kb := a.Result, b.Result
		if a.FromDelta {
			ka.Event += be
		}
		if b.FromDelta {
			kb.Event += be
		}
		switch {
		case ka == kb:
			return 0
		case ka.Outranks(kb):
			return -1
		default:
			return 1
		}
	})
	sc.dout = merged
	if len(merged) > n {
		merged = merged[:n]
	}
	return merged
}
