package ta

import (
	"bytes"
	"path/filepath"
	"testing"

	"ebsn/internal/rng"
	"ebsn/internal/vecmath"
)

func TestDynamicMatchesStaticBeforeAdds(t *testing.T) {
	cs := buildSmallSet(t, 41, 30, 20, 6, 0, true)
	idx := NewIndex(cs)
	dyn := NewDynamic(cs, 0)
	src := rng.New(42)
	u := randomVecs(src, 1, 6, true)[0]
	static, _ := idx.TopN(u, 8)
	dynamic, _ := dyn.TopN(u, 8)
	if len(static) != len(dynamic) {
		t.Fatalf("result counts differ: %d vs %d", len(static), len(dynamic))
	}
	for i := range static {
		if !approxEqual(static[i].Score, dynamic[i].Score) {
			t.Fatalf("rank %d: %v vs %v", i, static[i].Score, dynamic[i].Score)
		}
		if dynamic[i].FromDelta {
			t.Fatal("phantom delta result")
		}
	}
}

func TestDynamicAddEventSurfacesInResults(t *testing.T) {
	cs := buildSmallSet(t, 43, 20, 15, 6, 0, false)
	dyn := NewDynamic(cs, 0)
	src := rng.New(44)
	u := randomVecs(src, 1, 6, false)[0]

	// An event vector aligned with the query dominates every base score.
	super := make([]float32, 6)
	for f := range super {
		super[f] = u[f] * 10
	}
	if err := dyn.AddEvent(super); err != nil {
		t.Fatal(err)
	}
	if dyn.DeltaSize() != 15 { // one pair per partner, unpruned
		t.Fatalf("delta size %d, want 15", dyn.DeltaSize())
	}
	res, stats := dyn.TopN(u, 3)
	if !res[0].FromDelta {
		t.Fatal("dominant delta event not ranked first")
	}
	if stats.Candidates != len(cs.Pairs)+15 {
		t.Errorf("stats.Candidates = %d", stats.Candidates)
	}
}

func TestDynamicTopKPruning(t *testing.T) {
	cs := buildSmallSet(t, 45, 20, 12, 6, 0, true)
	dyn := NewDynamic(cs, 4)
	src := rng.New(46)
	vec := randomVecs(src, 1, 6, true)[0]
	if err := dyn.AddEvent(vec); err != nil {
		t.Fatal(err)
	}
	if dyn.DeltaSize() != 4 {
		t.Fatalf("pruned delta size %d, want 4", dyn.DeltaSize())
	}
	// The 4 chosen partners must be the top-4 by u'·x.
	best := map[int32]bool{}
	type us struct {
		u int32
		s float32
	}
	var all []us
	for i, p := range cs.Partners {
		all = append(all, us{int32(i), vecmath.Dot(vec, p)})
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].s > all[i].s {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	for _, e := range all[:4] {
		best[e.u] = true
	}
	for _, pair := range dyn.delta.pairs {
		if !best[pair.Partner] {
			t.Fatalf("partner %d not in true top-4", pair.Partner)
		}
	}
}

func TestDynamicRebuildFoldsDelta(t *testing.T) {
	cs := buildSmallSet(t, 47, 15, 10, 4, 0, true)
	dyn := NewDynamic(cs, 0)
	src := rng.New(48)
	u := randomVecs(src, 1, 4, true)[0]
	added := randomVecs(src, 3, 4, true)
	for _, v := range added {
		if err := dyn.AddEvent(v); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := dyn.TopN(u, 10)
	baseEvents := len(cs.Events) - 0
	dyn.Rebuild()
	if dyn.DeltaSize() != 0 {
		t.Fatal("delta not cleared by rebuild")
	}
	if dyn.NumEvents() != baseEvents+3 {
		t.Fatalf("NumEvents = %d", dyn.NumEvents())
	}
	after, _ := dyn.TopN(u, 10)
	if len(before) != len(after) {
		t.Fatalf("result counts changed across rebuild")
	}
	for i := range before {
		if !approxEqual(before[i].Score, after[i].Score) {
			t.Fatalf("rank %d score changed across rebuild: %v vs %v", i, before[i].Score, after[i].Score)
		}
		if after[i].FromDelta {
			t.Fatal("rebuilt result still tagged as delta")
		}
	}
	// Rebuild with empty delta is a no-op.
	dyn.Rebuild()
}

func TestAddEventCopiesCallerVector(t *testing.T) {
	// Regression: AddEvent used to retain the caller's slice, so later
	// mutation silently corrupted delta scoring and the post-Rebuild
	// candidate set.
	cs := buildSmallSet(t, 61, 20, 15, 6, 0, false)
	dyn := NewDynamic(cs, 0)
	src := rng.New(62)
	u := randomVecs(src, 1, 6, false)[0]

	vec := make([]float32, 6)
	for f := range vec {
		vec[f] = u[f] * 10
	}
	if err := dyn.AddEvent(vec); err != nil {
		t.Fatal(err)
	}
	before, _ := dyn.TopN(u, 5)

	// The caller trashes its slice after the call.
	for f := range vec {
		vec[f] = -1e9
	}

	after, _ := dyn.TopN(u, 5)
	for i := range before {
		if !approxEqual(before[i].Score, after[i].Score) {
			t.Fatalf("rank %d: delta scoring changed after caller mutated its slice: %v vs %v",
				i, before[i].Score, after[i].Score)
		}
	}

	// Rebuild must fold the original vector, not the mutated one.
	dyn.Rebuild()
	rebuilt, _ := dyn.TopN(u, 5)
	for i := range before {
		if !approxEqual(before[i].Score, rebuilt[i].Score) {
			t.Fatalf("rank %d: rebuilt index reflects caller's mutation: %v vs %v",
				i, before[i].Score, rebuilt[i].Score)
		}
	}
}

func TestDynamicRejectsBadVector(t *testing.T) {
	cs := buildSmallSet(t, 49, 10, 5, 4, 0, true)
	dyn := NewDynamic(cs, 0)
	if err := dyn.AddEvent([]float32{1, 2}); err == nil {
		t.Fatal("wrong-length vector accepted")
	}
}

func TestCandidateSetPersistRoundTrip(t *testing.T) {
	cs := buildSmallSet(t, 51, 25, 15, 6, 5, true)
	var buf bytes.Buffer
	if err := cs.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCandidateSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != cs.K || len(got.Pairs) != len(cs.Pairs) {
		t.Fatalf("shape changed: K=%d pairs=%d", got.K, len(got.Pairs))
	}
	// Queries over the reloaded set must match exactly.
	src := rng.New(52)
	u := randomVecs(src, 1, 6, true)[0]
	a := cs.BruteForceTopN(u, 5)
	b := got.BruteForceTopN(u, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d differs after reload: %+v vs %+v", i, a[i], b[i])
		}
	}
	// And the rebuilt index agrees too.
	idx := NewIndex(got)
	c, _ := idx.TopN(u, 5)
	for i := range a {
		if !approxEqual(a[i].Score, c[i].Score) {
			t.Fatalf("index rank %d differs after reload", i)
		}
	}
}

func TestCandidateSetFileRoundTrip(t *testing.T) {
	cs := buildSmallSet(t, 53, 10, 8, 4, 0, false)
	path := filepath.Join(t.TempDir(), "cands.gob")
	if err := cs.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCandidateSetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Pairs) != len(cs.Pairs) {
		t.Fatal("pair count changed")
	}
}

func TestDecodeRejectsGarbageAndMalformed(t *testing.T) {
	if _, err := DecodeCandidateSet(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Malformed: pair referencing a missing event.
	cs := buildSmallSet(t, 55, 5, 4, 4, 0, true)
	cs.Pairs[0].Event = 99
	var buf bytes.Buffer
	if err := cs.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCandidateSet(&buf); err == nil {
		t.Fatal("out-of-range pair accepted")
	}
	// Repair for other tests sharing the fixture seed (none do, but keep
	// the set consistent).
	cs.Pairs[0].Event = 0
}

func TestLoadCandidateSetMissingFile(t *testing.T) {
	if _, err := LoadCandidateSetFile(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatal("missing file accepted")
	}
}
