package ta

import "ebsn/internal/par"

// The package's build-time parallelism helpers are thin aliases over
// internal/par, which the adaptive sampler's rank rebuilds share; the
// local names keep the many call sites in the index builders short.

// resolveWorkers maps the conventional "0 or negative means pick for me"
// worker count onto GOMAXPROCS.
func resolveWorkers(workers int) int { return par.Workers(workers) }

// parallelFor runs f(i) for every i in [0,n) across up to workers
// goroutines; see par.For.
func parallelFor(n, workers int, f func(i int)) { par.For(n, workers, f) }

// parallelChunks splits [0,n) into up to workers contiguous ranges; see
// par.Chunks.
func parallelChunks(n, workers int, f func(lo, hi int)) { par.Chunks(n, workers, f) }
