package ta

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// persisted is the gob wire format for a candidate set. The index's
// sorted lists and rotation are rebuilt on load: they derive entirely
// from the set, and rebuilding keeps the format small and forward-
// compatible with index-layout changes.
type persisted struct {
	K        int
	Events   [][]float32
	Partners [][]float32
	Pairs    []Candidate
	Cross    []float32
}

// Encode writes the candidate set with encoding/gob.
func (c *CandidateSet) Encode(w io.Writer) error {
	p := persisted{K: c.K, Events: c.Events, Partners: c.Partners, Pairs: c.Pairs, Cross: c.Cross}
	if err := gob.NewEncoder(w).Encode(&p); err != nil {
		return fmt.Errorf("ta: encode candidate set: %w", err)
	}
	return nil
}

// DecodeCandidateSet reads a candidate set written by Encode, validating
// its internal consistency.
func DecodeCandidateSet(r io.Reader) (*CandidateSet, error) {
	var p persisted
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("ta: decode candidate set: %w", err)
	}
	if p.K <= 0 || len(p.Events) == 0 || len(p.Partners) == 0 {
		return nil, fmt.Errorf("ta: decoded candidate set malformed (K=%d events=%d partners=%d)",
			p.K, len(p.Events), len(p.Partners))
	}
	if len(p.Pairs) != len(p.Cross) {
		return nil, fmt.Errorf("ta: pair/cross length mismatch: %d vs %d", len(p.Pairs), len(p.Cross))
	}
	for _, v := range p.Events {
		if len(v) != p.K {
			return nil, fmt.Errorf("ta: event vector length %d, want %d", len(v), p.K)
		}
	}
	for _, v := range p.Partners {
		if len(v) != p.K {
			return nil, fmt.Errorf("ta: partner vector length %d, want %d", len(v), p.K)
		}
	}
	for i, pair := range p.Pairs {
		if int(pair.Event) >= len(p.Events) || int(pair.Partner) >= len(p.Partners) || pair.Event < 0 || pair.Partner < 0 {
			return nil, fmt.Errorf("ta: pair %d out of range: %+v", i, pair)
		}
	}
	return &CandidateSet{K: p.K, Events: p.Events, Partners: p.Partners, Pairs: p.Pairs, Cross: p.Cross}, nil
}

// SaveFile writes the candidate set to path.
func (c *CandidateSet) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("ta: save candidate set: %w", err)
	}
	if err := c.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCandidateSetFile reads a candidate set from path.
func LoadCandidateSetFile(path string) (*CandidateSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ta: load candidate set: %w", err)
	}
	defer f.Close()
	return DecodeCandidateSet(f)
}
