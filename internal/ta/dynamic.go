package ta

import (
	"fmt"
	"sort"

	"ebsn/internal/vecmath"
)

// Dynamic serves exact top-n queries over a candidate space that keeps
// growing: EBSN events arrive continuously (the cold-start premise), and
// rebuilding the sorted TA index per arrival would be wasteful. New
// events' pairs accumulate in an unsorted delta that every query scans
// exhaustively (it is small), merged into a fresh index on Rebuild —
// the classic main-index-plus-delta design of search systems.
type Dynamic struct {
	set *CandidateSet
	idx *FastIndex

	// Delta state: appended events and their pruned pairs.
	deltaEvents [][]float32
	deltaPairs  []Candidate // Event indexes into deltaEvents
	deltaCross  []float32
	topK        int
}

// NewDynamic wraps a built candidate set. topK bounds the pairs added per
// arriving event (0 = all partners).
func NewDynamic(set *CandidateSet, topK int) *Dynamic {
	return &Dynamic{set: set, idx: NewFastIndex(set), topK: topK}
}

// DeltaSize returns the number of unindexed pairs.
func (d *Dynamic) DeltaSize() int { return len(d.deltaPairs) }

// NumEvents returns the total events known (indexed + delta).
func (d *Dynamic) NumEvents() int { return len(d.set.Events) + len(d.deltaEvents) }

// AddEvent registers a newly arrived event vector. Its candidate pairs
// are the topK partners by the partner-preference score u'·x (the same
// pruning rule the offline build uses), or all partners when topK ≤ 0.
// The vector is copied, so the caller may reuse its slice.
func (d *Dynamic) AddEvent(vec []float32) error {
	if len(vec) != d.set.K {
		return fmt.Errorf("ta: event vector length %d, want %d", len(vec), d.set.K)
	}
	vec = append(make([]float32, 0, len(vec)), vec...)
	eventIdx := int32(len(d.deltaEvents))
	d.deltaEvents = append(d.deltaEvents, vec)

	partners := d.partnerIndices(vec)
	for _, u := range partners {
		d.deltaPairs = append(d.deltaPairs, Candidate{Event: eventIdx, Partner: u})
		d.deltaCross = append(d.deltaCross, vecmath.Dot(vec, d.set.Partners[u]))
	}
	return nil
}

// partnerIndices returns the partners whose candidate list the new event
// joins: everyone when unpruned, else the topK by their preference u'·x.
func (d *Dynamic) partnerIndices(vec []float32) []int32 {
	n := len(d.set.Partners)
	if d.topK <= 0 || d.topK >= n {
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	type us struct {
		u int32
		s float32
	}
	scored := make([]us, n)
	for u := 0; u < n; u++ {
		scored[u] = us{int32(u), vecmath.Dot(vec, d.set.Partners[u])}
	}
	sort.Slice(scored, func(i, j int) bool { return scored[i].s > scored[j].s })
	out := make([]int32, d.topK)
	for i := 0; i < d.topK; i++ {
		out[i] = scored[i].u
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DynamicResult tags a Result with whether the event came from the delta
// (its Event index then refers to arrival order, not the base set).
type DynamicResult struct {
	Result
	FromDelta bool
}

// TopN returns the exact top n over the indexed space plus the delta.
func (d *Dynamic) TopN(userVec []float32, n int) ([]DynamicResult, SearchStats) {
	return d.TopNExcluding(userVec, n, -1)
}

// TopNExcluding is TopN with one partner excluded (see
// FastIndex.TopNExcluding).
func (d *Dynamic) TopNExcluding(userVec []float32, n int, exclude int32) ([]DynamicResult, SearchStats) {
	base, stats := d.idx.TopNExcluding(userVec, n, exclude)
	merged := make([]DynamicResult, 0, n+len(base))
	for _, r := range base {
		merged = append(merged, DynamicResult{Result: r})
	}
	// Exhaustive scan of the delta: tiny by construction.
	for i, pair := range d.deltaPairs {
		if pair.Partner == exclude {
			continue
		}
		s := vecmath.Dot(userVec, d.deltaEvents[pair.Event]) +
			d.deltaCross[i] +
			vecmath.Dot(userVec, d.set.Partners[pair.Partner])
		merged = append(merged, DynamicResult{
			Result:    Result{Event: pair.Event, Partner: pair.Partner, Score: s},
			FromDelta: true,
		})
		stats.RandomAccesses++
	}
	stats.Candidates += len(d.deltaPairs)
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Score > merged[j].Score })
	if len(merged) > n {
		merged = merged[:n]
	}
	return merged, stats
}

// Rebuild folds the delta into a fresh candidate set and index. Delta
// events are appended to the base event list in arrival order, so their
// post-rebuild Event indices are len(baseEvents) + arrival position.
func (d *Dynamic) Rebuild() {
	if len(d.deltaEvents) == 0 {
		return
	}
	offset := int32(len(d.set.Events))
	d.set.Events = append(d.set.Events, d.deltaEvents...)
	for i, pair := range d.deltaPairs {
		d.set.Pairs = append(d.set.Pairs, Candidate{Event: offset + pair.Event, Partner: pair.Partner})
		d.set.Cross = append(d.set.Cross, d.deltaCross[i])
	}
	d.deltaEvents = nil
	d.deltaPairs = nil
	d.deltaCross = nil
	d.idx = NewFastIndex(d.set)
}

// DeltaEvents returns the number of events currently in the delta (not
// yet folded into the base index by Rebuild).
func (d *Dynamic) DeltaEvents() int { return len(d.deltaEvents) }
