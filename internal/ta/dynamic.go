package ta

import (
	"time"
)

// Dynamic serves exact top-n queries over a candidate space that keeps
// growing: EBSN events arrive continuously (the cold-start premise), and
// rebuilding the sorted TA index per arrival would be wasteful. It is
// the two-tier composition of an immutable packed main index and a small
// mutable Delta that every query scans exhaustively. Compaction folds
// the delta into a fresh main index copy-on-write (BeginCompact / Run /
// Install, or the synchronous Rebuild wrapper): the old tiers keep
// serving while the fold runs, and installation is a pointer swap.
type Dynamic struct {
	set   *CandidateSet
	idx   *FastIndex
	delta *Delta
}

// NewDynamic wraps a built candidate set. topK bounds the pairs added per
// arriving event (0 = all partners).
func NewDynamic(set *CandidateSet, topK int) *Dynamic {
	idx := NewFastIndex(set) // packs the set; the delta shares its rows
	return &Dynamic{set: set, idx: idx, delta: NewDeltaForSet(set, topK)}
}

// DeltaSize returns the number of unindexed pairs.
func (d *Dynamic) DeltaSize() int { return d.delta.PairCount() }

// NumEvents returns the total events known (indexed + delta).
func (d *Dynamic) NumEvents() int { return len(d.set.Events) + d.delta.Events() }

// AddEvent registers a newly arrived event vector. Its candidate pairs
// are the topK partners by the partner-preference score u'·x (the same
// pruning rule the offline build uses), or all partners when topK ≤ 0.
// The vector is copied, so the caller may reuse its slice.
func (d *Dynamic) AddEvent(vec []float32) error { return d.delta.AddEvent(vec) }

// DynamicResult tags a Result with whether the event came from the delta
// (its Event index then refers to arrival order, not the base set).
type DynamicResult struct {
	Result
	FromDelta bool
}

// TopN returns the exact top n over the indexed space plus the delta.
func (d *Dynamic) TopN(userVec []float32, n int) ([]DynamicResult, SearchStats) {
	return d.TopNExcluding(userVec, n, -1)
}

// TopNExcluding is TopN with one partner excluded (see
// FastIndex.TopNExcluding).
func (d *Dynamic) TopNExcluding(userVec []float32, n int, exclude int32) ([]DynamicResult, SearchStats) {
	sc := GetScratch()
	defer PutScratch(sc)
	merged, stats := d.topNExcluding(userVec, n, exclude, sc)
	return append([]DynamicResult(nil), merged...), stats
}

// TopNExcludingScratch is TopNExcluding with caller-managed scratch; the
// results alias sc and are valid only until its next use.
func (d *Dynamic) TopNExcludingScratch(userVec []float32, n int, exclude int32, sc *Scratch) ([]DynamicResult, SearchStats) {
	return d.topNExcluding(userVec, n, exclude, sc)
}

func (d *Dynamic) topNExcluding(userVec []float32, n int, exclude int32, sc *Scratch) ([]DynamicResult, SearchStats) {
	start := time.Now()
	base, stats := d.idx.topNExcluding(userVec, nil, n, exclude, sc, sc.out[:0])
	sc.out = base[:0]
	merged := d.delta.MergeTopN(base, len(d.set.Events), userVec, n, exclude, sc, &stats)
	// Re-stamp over the base index's reading so Elapsed covers the delta
	// scan and merge as well.
	stats.Elapsed = time.Since(start)
	return merged, stats
}

// Rebuild folds the delta into a fresh candidate set and index
// synchronously (BeginCompact + Run + Install in one call). Delta events
// are appended to the base event list in arrival order, so their
// post-rebuild Event indices are len(baseEvents) + arrival position.
// The base set is not mutated — the fold is copy-on-write — and the
// rebuilt index (grouping, bounds, re-pack) uses all available CPUs.
func (d *Dynamic) Rebuild() {
	c := d.BeginCompact()
	if c == nil {
		return
	}
	c.Run(0)
	d.Install(c)
}

// DeltaEvents returns the number of events currently in the delta (not
// yet folded into the base index by a compaction).
func (d *Dynamic) DeltaEvents() int { return d.delta.Events() }
