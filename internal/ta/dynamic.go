package ta

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"ebsn/internal/vecmath"
)

// Dynamic serves exact top-n queries over a candidate space that keeps
// growing: EBSN events arrive continuously (the cold-start premise), and
// rebuilding the sorted TA index per arrival would be wasteful. New
// events' pairs accumulate in an unsorted delta that every query scans
// exhaustively (it is small), merged into a fresh index on Rebuild —
// the classic main-index-plus-delta design of search systems.
type Dynamic struct {
	set *CandidateSet
	idx *FastIndex

	// Delta state: appended events and their pruned pairs.
	deltaEvents [][]float32
	deltaPairs  []Candidate // Event indexes into deltaEvents
	deltaCross  []float32
	topK        int
}

// NewDynamic wraps a built candidate set. topK bounds the pairs added per
// arriving event (0 = all partners).
func NewDynamic(set *CandidateSet, topK int) *Dynamic {
	return &Dynamic{set: set, idx: NewFastIndex(set), topK: topK}
}

// DeltaSize returns the number of unindexed pairs.
func (d *Dynamic) DeltaSize() int { return len(d.deltaPairs) }

// NumEvents returns the total events known (indexed + delta).
func (d *Dynamic) NumEvents() int { return len(d.set.Events) + len(d.deltaEvents) }

// AddEvent registers a newly arrived event vector. Its candidate pairs
// are the topK partners by the partner-preference score u'·x (the same
// pruning rule the offline build uses), or all partners when topK ≤ 0.
// The vector is copied, so the caller may reuse its slice.
func (d *Dynamic) AddEvent(vec []float32) error {
	if len(vec) != d.set.K {
		return fmt.Errorf("ta: event vector length %d, want %d", len(vec), d.set.K)
	}
	vec = append(make([]float32, 0, len(vec)), vec...)
	eventIdx := int32(len(d.deltaEvents))
	d.deltaEvents = append(d.deltaEvents, vec)

	// One streamed pass over the packed partner rows covers both the
	// pruning scores and the cross terms of the retained pairs.
	scores := make([]float32, len(d.set.Partners))
	vecmath.DotBatch(vec, d.set.partnerData, d.set.K, scores)
	for _, u := range d.partnerIndices(scores) {
		d.deltaPairs = append(d.deltaPairs, Candidate{Event: eventIdx, Partner: u})
		d.deltaCross = append(d.deltaCross, scores[u])
	}
	return nil
}

// partnerIndices returns the partners whose candidate list the new event
// joins, given the per-partner preference scores u'·x: everyone when
// unpruned, else the topK by score.
func (d *Dynamic) partnerIndices(scores []float32) []int32 {
	n := len(d.set.Partners)
	if d.topK <= 0 || d.topK >= n {
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	sort.Slice(out, func(i, j int) bool { return scores[out[i]] > scores[out[j]] })
	out = out[:d.topK]
	slices.Sort(out)
	return out
}

// DynamicResult tags a Result with whether the event came from the delta
// (its Event index then refers to arrival order, not the base set).
type DynamicResult struct {
	Result
	FromDelta bool
}

// TopN returns the exact top n over the indexed space plus the delta.
func (d *Dynamic) TopN(userVec []float32, n int) ([]DynamicResult, SearchStats) {
	return d.TopNExcluding(userVec, n, -1)
}

// TopNExcluding is TopN with one partner excluded (see
// FastIndex.TopNExcluding).
func (d *Dynamic) TopNExcluding(userVec []float32, n int, exclude int32) ([]DynamicResult, SearchStats) {
	sc := GetScratch()
	defer PutScratch(sc)
	merged, stats := d.topNExcluding(userVec, n, exclude, sc)
	return append([]DynamicResult(nil), merged...), stats
}

// TopNExcludingScratch is TopNExcluding with caller-managed scratch; the
// results alias sc and are valid only until its next use.
func (d *Dynamic) TopNExcludingScratch(userVec []float32, n int, exclude int32, sc *Scratch) ([]DynamicResult, SearchStats) {
	return d.topNExcluding(userVec, n, exclude, sc)
}

func (d *Dynamic) topNExcluding(userVec []float32, n int, exclude int32, sc *Scratch) ([]DynamicResult, SearchStats) {
	start := time.Now()
	base, stats := d.idx.topNExcluding(userVec, nil, n, exclude, sc, sc.out[:0])
	sc.out = base[:0]
	merged := sc.dout[:0]
	for _, r := range base {
		merged = append(merged, DynamicResult{Result: r})
	}
	// Exhaustive scan of the delta: tiny by construction.
	for i, pair := range d.deltaPairs {
		if pair.Partner == exclude {
			continue
		}
		s := vecmath.Dot(userVec, d.deltaEvents[pair.Event]) +
			d.deltaCross[i] +
			vecmath.Dot(userVec, d.set.Partners[pair.Partner])
		merged = append(merged, DynamicResult{
			Result:    Result{Event: pair.Event, Partner: pair.Partner, Score: s},
			FromDelta: true,
		})
		stats.RandomAccesses++
	}
	stats.Candidates += len(d.deltaPairs)
	slices.SortStableFunc(merged, func(a, b DynamicResult) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		default:
			return 0
		}
	})
	sc.dout = merged
	if len(merged) > n {
		merged = merged[:n]
	}
	// Re-stamp over the base index's reading so Elapsed covers the delta
	// scan and merge as well.
	stats.Elapsed = time.Since(start)
	return merged, stats
}

// Rebuild folds the delta into a fresh candidate set and index. Delta
// events are appended to the base event list in arrival order, so their
// post-rebuild Event indices are len(baseEvents) + arrival position.
// The rebuilt index (grouping, bounds, re-pack) uses all available CPUs.
func (d *Dynamic) Rebuild() {
	if len(d.deltaEvents) == 0 {
		return
	}
	offset := int32(len(d.set.Events))
	d.set.Events = append(d.set.Events, d.deltaEvents...)
	for i, pair := range d.deltaPairs {
		d.set.Pairs = append(d.set.Pairs, Candidate{Event: offset + pair.Event, Partner: pair.Partner})
		d.set.Cross = append(d.set.Cross, d.deltaCross[i])
	}
	d.deltaEvents = nil
	d.deltaPairs = nil
	d.deltaCross = nil
	d.idx = NewFastIndex(d.set)
}

// DeltaEvents returns the number of events currently in the delta (not
// yet folded into the base index by Rebuild).
func (d *Dynamic) DeltaEvents() int { return len(d.deltaEvents) }
