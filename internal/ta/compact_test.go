package ta

import (
	"math"
	"runtime"
	"slices"
	"sync"
	"testing"

	"ebsn/internal/rng"
	"ebsn/internal/vecmath"
)

// oracleTopN is the brute-force reference for a folded candidate set:
// every pair scored in the FastIndex's operand order (event·u +
// partner·u) + cross, sorted canonically (score desc, partner asc,
// event asc), exclusion applied, truncated to n. Unlike
// CandidateSet.BruteForceTopN it matches the index's float-addition
// order bit for bit, so ties constructed from duplicated vectors stay
// exact ties.
func oracleTopN(set *CandidateSet, userVec []float32, n int, exclude int32) []Result {
	out := make([]Result, 0, len(set.Pairs))
	for i, p := range set.Pairs {
		if p.Partner == exclude {
			continue
		}
		s := vecmath.Dot(userVec, set.Events[p.Event]) +
			vecmath.Dot(userVec, set.Partners[p.Partner]) +
			set.Cross[i]
		out = append(out, Result{Event: p.Event, Partner: p.Partner, Score: s})
	}
	slices.SortFunc(out, func(a, b Result) int {
		switch {
		case a == b:
			return 0
		case a.Outranks(b):
			return -1
		default:
			return 1
		}
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// TestDynamicMergeMatchesOracleWithTies is the live-path property test:
// the two-tier answer (main-index TA search merged with the exhaustive
// delta scan) must be bit-identical — pairs, tie order, and score bits —
// to a brute-force scan of the folded candidate set, under deliberately
// constructed exact ties (duplicated event vectors inside the delta and
// across the delta/main boundary).
func TestDynamicMergeMatchesOracleWithTies(t *testing.T) {
	src := rng.New(881)
	for _, topK := range []int{0, 5} {
		events := randomVecs(src, 25, 6, true)
		partners := randomVecs(src, 12, 6, true)
		cs, err := BuildCandidates(events, partners, BuildConfig{TopKEvents: topK, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		dyn := NewDynamic(cs, topK)

		// Delta arrivals: randoms plus exact duplicates — of a base event
		// (tie across the tier boundary), of each other (tie inside the
		// delta), and of the first delta arrival.
		added := randomVecs(src, 3, 6, true)
		added = append(added,
			slices.Clone(events[4]),
			slices.Clone(events[4]),
			slices.Clone(added[0]),
		)
		for _, v := range added {
			if err := dyn.AddEvent(v); err != nil {
				t.Fatal(err)
			}
		}

		// The oracle ranks the folded space; FoldDelta appends delta
		// events at baseEvents+i, the same effective index MergeTopN
		// ranks them under.
		folded, _ := FoldDelta(cs, dyn.delta.View(), 2)
		baseEvents := len(cs.Events)

		for q := 0; q < 25; q++ {
			userVec := randomVecs(src, 1, 6, true)[0]
			n := []int{1, 5, 17, len(folded.Pairs) + 5}[q%4]
			exclude := int32(src.Intn(len(partners)+2)) - 1
			want := oracleTopN(folded, userVec, n, exclude)
			got, _ := dyn.TopNExcluding(userVec, n, exclude)
			if len(got) != len(want) {
				t.Fatalf("topK=%d q=%d: %d results, want %d", topK, q, len(got), len(want))
			}
			for i := range want {
				eff := got[i].Event
				if got[i].FromDelta {
					eff += int32(baseEvents)
				}
				if eff != want[i].Event || got[i].Partner != want[i].Partner {
					t.Fatalf("topK=%d q=%d rank %d: got pair (%d,%d) delta=%v, want (%d,%d)",
						topK, q, i, eff, got[i].Partner, got[i].FromDelta, want[i].Event, want[i].Partner)
				}
				if math.Float32bits(got[i].Score) != math.Float32bits(want[i].Score) {
					t.Fatalf("topK=%d q=%d rank %d score bits: got %v, want %v",
						topK, q, i, got[i].Score, want[i].Score)
				}
			}
		}
	}
}

// TestBackgroundCompactionBitIdenticalToRebuild runs the same arrivals
// through the synchronous Rebuild and through the background
// BeginCompact/Run/Install protocol — with queries and further ingests
// landing while the fold runs — and requires the resulting main tiers to
// be bit-identical: set contents, index layout, and query answers.
func TestBackgroundCompactionBitIdenticalToRebuild(t *testing.T) {
	sync1 := buildSmallSet(t, 71, 40, 25, 8, 6, true)
	back1 := buildSmallSet(t, 71, 40, 25, 8, 6, true)
	syncDyn := NewDynamic(sync1, 6)
	backDyn := NewDynamic(back1, 6)

	src := rng.New(72)
	added := randomVecs(src, 9, 8, true)
	late := randomVecs(src, 2, 8, true)
	queries := randomVecs(src, 6, 8, true)
	for _, v := range added {
		if err := syncDyn.AddEvent(v); err != nil {
			t.Fatal(err)
		}
		if err := backDyn.AddEvent(v); err != nil {
			t.Fatal(err)
		}
	}

	// Synchronous path: fold everything, then the late arrivals land in
	// the fresh delta.
	syncDyn.Rebuild()
	for _, v := range late {
		if err := syncDyn.AddEvent(v); err != nil {
			t.Fatal(err)
		}
	}

	// Background path: capture, then fold on another goroutine while
	// queries read the old tiers and the late arrivals are ingested.
	c := backDyn.BeginCompact()
	if c == nil {
		t.Fatal("BeginCompact returned nil with a non-empty delta")
	}
	ran := make(chan struct{})
	go func() {
		defer close(ran)
		c.Run(3)
	}()
	for _, v := range late {
		if err := backDyn.AddEvent(v); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range queries {
		if res, _ := backDyn.TopN(u, 10); len(res) == 0 {
			t.Fatal("query against old tiers returned nothing mid-fold")
		}
	}
	<-ran
	backDyn.Install(c)

	// Late arrivals must have survived the install as residual delta.
	if got := backDyn.DeltaEvents(); got != len(late) {
		t.Fatalf("residual delta events = %d, want %d", got, len(late))
	}

	// Main tiers: bit-identical sets and index layouts.
	a, b := syncDyn.set, backDyn.set
	if !slices.EqualFunc(a.Events, b.Events, slices.Equal) {
		t.Fatal("folded event rows differ")
	}
	if !slices.EqualFunc(a.Partners, b.Partners, slices.Equal) {
		t.Fatal("folded partner rows differ")
	}
	if !slices.Equal(a.Pairs, b.Pairs) {
		t.Fatal("folded pairs differ")
	}
	if !slices.Equal(a.Cross, b.Cross) {
		t.Fatal("folded cross terms differ")
	}
	ai, bi := syncDyn.idx, backDyn.idx
	if !slices.Equal(ai.order, bi.order) || !slices.Equal(ai.partnerStart, bi.partnerStart) {
		t.Fatal("index layouts differ")
	}
	if !slices.Equal(ai.maxCross, bi.maxCross) {
		t.Fatal("index bounds differ")
	}

	// And the merged live answers agree, residual delta included.
	for _, u := range queries {
		want, _ := syncDyn.TopNExcluding(u, 12, 3)
		got, _ := backDyn.TopNExcluding(u, 12, 3)
		if !slices.Equal(want, got) {
			t.Fatalf("post-install answers diverge:\n got %+v\nwant %+v", got, want)
		}
	}
}

// TestDynamicConcurrentIngestQueryCompact exercises the documented
// locking pattern — queries under RLock, AddEvent/BeginCompact/Install
// under Lock, Run with no lock — under -race: four query workers, one
// ingester, and a compaction loop folding whatever has accumulated.
func TestDynamicConcurrentIngestQueryCompact(t *testing.T) {
	const adds = 250
	cs := buildSmallSet(t, 73, 30, 20, 6, 5, true)
	dyn := NewDynamic(cs, 5)

	var mu sync.RWMutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			src := rng.New(seed)
			sc := GetScratch()
			defer PutScratch(sc)
			for {
				select {
				case <-stop:
					return
				default:
				}
				u := randomVecs(src, 1, 6, true)[0]
				mu.RLock()
				res, _ := dyn.TopNExcludingScratch(u, 8, int32(src.Intn(20)), sc)
				if len(res) == 0 {
					mu.RUnlock()
					t.Error("query returned nothing")
					return
				}
				mu.RUnlock()
			}
		}(100 + uint64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		src := rng.New(200)
		for i := 0; i < adds; i++ {
			v := randomVecs(src, 1, 6, true)[0]
			mu.Lock()
			err := dyn.AddEvent(v)
			mu.Unlock()
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			c := dyn.BeginCompact()
			mu.Unlock()
			if c == nil {
				runtime.Gosched()
				continue
			}
			c.Run(2)
			mu.Lock()
			dyn.Install(c)
			mu.Unlock()
		}
	}()
	wg.Wait()

	// Whatever the compaction loop left behind folds cleanly, and no
	// arrival was lost or double-counted along the way.
	dyn.Rebuild()
	if got := dyn.NumEvents(); got != 30+adds {
		t.Fatalf("NumEvents = %d after concurrent run, want %d", got, 30+adds)
	}
	if dyn.DeltaSize() != 0 {
		t.Fatal("delta not empty after final rebuild")
	}
}
