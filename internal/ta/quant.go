package ta

import (
	"time"

	"ebsn/internal/vecmath"
)

// Quantized query path: the affinity passes run over the int8 mirrors
// built by PackQuantized (a quarter of the float32 memory traffic), the
// bound-heap walk collects the top n·quantOverfetch survivors under the
// approximate scores, and the survivors are re-ranked against the exact
// float32 rows. The walk is exact *with respect to the approximate
// scores* — the partner bounds are built from the same approximate
// affinities they bound — so the only error source is quantization
// displacing a true top-n pair below the survivor cut, which the
// recall@10 ≥ 0.99 CI gate bounds empirically.

// quantOverfetch is how many times n the approximate walk keeps for the
// exact re-rank.
const quantOverfetch = 4

// quantCand is one approximate-walk survivor: the canonical-order key
// under the approximate score plus the pair index the exact re-rank
// needs.
type quantCand struct {
	i int32
	r Result
}

// quantHeap is a min-heap of survivors in the canonical order of their
// approximate scores, mirroring resultHeap.
type quantHeap []quantCand

// push adds c, sifting up.
func (h *quantHeap) push(c quantCand) {
	*h = append(*h, c)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s[p].r.Outranks(s[i].r) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

// replaceMin overwrites the root with c and sifts down.
func (h quantHeap) replaceMin(c quantCand) {
	h[0] = c
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && h[m].r.Outranks(h[l].r) {
			m = l
		}
		if r < len(h) && h[m].r.Outranks(h[r].r) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// scaleWidened reconstructs approximate affinities from widened integer
// dots: dst[i] = (qscale·scales[i])·float32(v[i]). Every quantized path
// — single-query, batched, engine prepass — shares this helper so their
// approximate scores are bit-identical to each other.
func scaleWidened(qscale float32, scales []float32, v []int32, dst []float32) {
	for i := range dst {
		dst[i] = (qscale * scales[i]) * float32(v[i])
	}
}

// quantizeQuery quantizes userVec into sc.q8 and returns its scale.
func (c *CandidateSet) quantizeQuery(userVec []float32, sc *Scratch) float32 {
	sc.q8 = resizeSlice(sc.q8, c.K)
	return vecmath.QuantizeRow(userVec, sc.q8)
}

// EventAffinitiesQuantized is EventAffinities over the int8 mirrors:
// approximate a[x] reconstructed from the widening dot and the per-row
// scales, into dst (grown as needed). The engine's shared prepass uses
// it when quantized queries are enabled; handing the result to
// TopNExcludingQuantizedAffScratch yields the same scores the shard
// would compute itself. Requires PackQuantized; panics otherwise.
func (c *CandidateSet) EventAffinitiesQuantized(userVec, dst []float32, sc *Scratch) []float32 {
	if !c.quantized {
		panic("ta: EventAffinitiesQuantized on unquantized set")
	}
	dst = resizeF32(dst, len(c.Events))
	qscale := c.quantizeQuery(userVec, sc)
	sc.i32 = resizeSlice(sc.i32, len(c.Events))
	vecmath.DotBatchI8(sc.q8, c.eventQ, c.K, sc.i32)
	scaleWidened(qscale, c.eventScale, sc.i32, dst)
	return dst
}

// TopNExcludingQuantizedScratch is TopNExcludingScratch over the
// quantized mirrors: approximate affinities select n·quantOverfetch
// survivors, which are re-ranked exactly. The set must have been packed
// with PackQuantized. Results alias sc like the exact variant.
func (f *FastIndex) TopNExcludingQuantizedScratch(userVec []float32, n int, exclude int32, sc *Scratch) ([]Result, SearchStats) {
	res, stats := f.topNQuantized(userVec, nil, n, exclude, sc, sc.out[:0])
	sc.out = res[:0]
	return res, stats
}

// TopNExcludingQuantizedAffScratch is TopNExcludingQuantizedScratch
// with the approximate event-affinity pass precomputed (the sharded
// engine computes it once per query via EventAffinitiesQuantized and
// shares it across shards).
func (f *FastIndex) TopNExcludingQuantizedAffScratch(userVec, eventAff []float32, n int, exclude int32, sc *Scratch) ([]Result, SearchStats) {
	res, stats := f.topNQuantized(userVec, eventAff, n, exclude, sc, sc.out[:0])
	sc.out = res[:0]
	return res, stats
}

func (f *FastIndex) topNQuantized(userVec, eventAff []float32, n int, exclude int32, sc *Scratch, dst []Result) ([]Result, SearchStats) {
	start := time.Now()
	set := f.set
	if !set.quantized {
		panic("ta: quantized query on a set without PackQuantized")
	}
	nc := len(set.Pairs)
	stats := SearchStats{Candidates: nc}
	if n <= 0 || nc == 0 {
		return nil, stats
	}
	if n > nc {
		n = nc
	}

	qscale := set.quantizeQuery(userVec, sc)
	a := eventAff
	if a == nil {
		sc.a = resizeF32(sc.a, len(set.Events))
		sc.i32 = resizeSlice(sc.i32, len(set.Events))
		vecmath.DotBatchI8(sc.q8, set.eventQ, set.K, sc.i32)
		scaleWidened(qscale, set.eventScale, sc.i32, sc.a)
		a = sc.a
	}
	nu := len(set.Partners)
	sc.b = resizeF32(sc.b, nu)
	sc.i32 = resizeSlice(sc.i32, nu)
	vecmath.DotBatchI8(sc.q8, set.partnerQ, set.K, sc.i32)
	scaleWidened(qscale, set.partnerScale, sc.i32, sc.b)

	res := f.walkQuantized(userVec, a, sc.b, n, exclude, sc, &stats, dst)
	stats.Elapsed = time.Since(start)
	return res, stats
}

// walkQuantized is walkTopN's approximate twin: the same bound-heap
// walk over approximate affinities keeping m = n·quantOverfetch
// survivors (with their pair indices), followed by an exact re-rank of
// the survivors against the float32 rows. The exact re-scoring uses the
// same operand order as the exact walk, so a survivor's final score is
// bit-identical to what the exact path would assign the same pair.
func (f *FastIndex) walkQuantized(userVec []float32, a, b []float32, n int, exclude int32, sc *Scratch, stats *SearchStats, dst []Result) []Result {
	set := f.set
	m := n * quantOverfetch
	if nc := len(set.Pairs); m > nc {
		m = nc
	}
	var amax float32
	for x, v := range a {
		if x == 0 || v > amax {
			amax = v
		}
	}
	nu := len(set.Partners)
	bounds := sc.bounds[:0]
	for u := 0; u < nu; u++ {
		if f.partnerStart[u] == f.partnerStart[u+1] {
			continue
		}
		bounds = append(bounds, partnerBound{int32(u), b[u] + amax + f.maxCross[u]})
	}
	sc.bounds = bounds
	heapifyBounds(bounds)

	qh := &sc.qcands
	*qh = (*qh)[:0]
	for len(bounds) > 0 {
		top := bounds[0]
		if len(*qh) == m && (*qh)[0].r.Score > top.bound {
			break
		}
		last := len(bounds) - 1
		bounds[0] = bounds[last]
		bounds = bounds[:last]
		if last > 0 {
			siftDownBounds(bounds, 0)
		}
		stats.SortedAccesses++
		if top.u == exclude {
			continue
		}
		u := top.u
		bu := b[u]
		for oi := f.partnerStart[u]; oi < f.partnerStart[u+1]; oi++ {
			i := f.order[oi]
			stats.RandomAccesses++
			r := Result{set.Pairs[i].Event, u, a[set.Pairs[i].Event] + bu + set.Cross[i]}
			if len(*qh) < m {
				qh.push(quantCand{i, r})
			} else if r.Outranks((*qh)[0].r) {
				qh.replaceMin(quantCand{i, r})
			}
		}
	}

	// Exact re-rank: score every survivor against the float32 rows and
	// keep the canonical top n.
	h := &sc.results
	*h = (*h)[:0]
	for _, qc := range *qh {
		i := qc.i
		pair := set.Pairs[i]
		bu := vecmath.Dot(userVec, set.Partners[pair.Partner])
		r := Result{pair.Event, pair.Partner, vecmath.Dot(userVec, set.Events[pair.Event]) + bu + set.Cross[i]}
		if len(*h) < n {
			h.push(r)
		} else if r.Outranks((*h)[0]) {
			h.replaceMin(r)
		}
	}
	return h.drainDescending(dst)
}
