package ta

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"ebsn/internal/rng"
	"ebsn/internal/vecmath"
)

func randomVecs(src *rng.Source, n, k int, signed bool) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, k)
		for f := range v {
			v[f] = float32(src.Gaussian(0, 1))
			if !signed && v[f] < 0 {
				v[f] = -v[f]
			}
		}
		out[i] = v
	}
	return out
}

func buildSmallSet(t testing.TB, seed uint64, nEvents, nPartners, k, topK int, signed bool) *CandidateSet {
	t.Helper()
	src := rng.New(seed)
	events := randomVecs(src, nEvents, k, signed)
	partners := randomVecs(src, nPartners, k, signed)
	cs, err := BuildCandidates(events, partners, BuildConfig{TopKEvents: topK, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestSpaceTransformIdentity(t *testing.T) {
	// q_u · p_{xu'} must equal u·x + u'·x + u·u' for every pair.
	cs := buildSmallSet(t, 1, 20, 15, 8, 0, true)
	src := rng.New(2)
	u := randomVecs(src, 1, 8, true)[0]
	q := Query(u)
	for i := range cs.Pairs {
		direct := cs.Score(u, i)
		transformed := vecmath.Dot(q, cs.Point(i))
		if !approxEqual(direct, transformed) {
			t.Fatalf("pair %d: direct %v != transformed %v", i, direct, transformed)
		}
	}
}

func TestSpaceTransformIdentityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		cs := buildSmallSet(t, seed, 10, 8, 4, 0, true)
		src := rng.New(seed ^ 0xabc)
		u := randomVecs(src, 1, 4, true)[0]
		q := Query(u)
		for i := range cs.Pairs {
			if !approxEqual(cs.Score(u, i), vecmath.Dot(q, cs.Point(i))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFullSpaceSize(t *testing.T) {
	cs := buildSmallSet(t, 3, 12, 7, 4, 0, true)
	if len(cs.Pairs) != 12*7 {
		t.Fatalf("unpruned space has %d pairs, want %d", len(cs.Pairs), 84)
	}
	if cs.Dims() != 9 {
		t.Fatalf("dims = %d, want 2K+1 = 9", cs.Dims())
	}
}

func TestPrunedSpaceSizeAndContents(t *testing.T) {
	cs := buildSmallSet(t, 4, 30, 9, 6, 5, true)
	if len(cs.Pairs) != 9*5 {
		t.Fatalf("pruned space has %d pairs, want %d", len(cs.Pairs), 45)
	}
	// Every retained pair must be in its partner's true top-5 by u'·x.
	for i, pair := range cs.Pairs {
		pv := cs.Partners[pair.Partner]
		s := vecmath.Dot(pv, cs.Events[pair.Event])
		better := 0
		for _, ev := range cs.Events {
			if vecmath.Dot(pv, ev) > s {
				better++
			}
		}
		if better >= 5 {
			t.Fatalf("pair %d: event ranks %d-th for its partner, beyond top-5", i, better+1)
		}
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := BuildCandidates(nil, [][]float32{{1}}, BuildConfig{}); err == nil {
		t.Error("empty events accepted")
	}
	if _, err := BuildCandidates([][]float32{{1, 2}}, [][]float32{{1}}, BuildConfig{}); err == nil {
		t.Error("mismatched vector lengths accepted")
	}
	if _, err := BuildCandidates([][]float32{{1, 2}, {1}}, [][]float32{{1, 2}}, BuildConfig{}); err == nil {
		t.Error("ragged event vectors accepted")
	}
}

func TestBruteForceTopNOrdering(t *testing.T) {
	cs := buildSmallSet(t, 5, 25, 10, 6, 0, true)
	src := rng.New(6)
	u := randomVecs(src, 1, 6, true)[0]
	res := cs.BruteForceTopN(u, 10)
	if len(res) != 10 {
		t.Fatalf("got %d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatal("results not descending")
		}
	}
	// Cross-check against exhaustive sort.
	all := make([]float32, len(cs.Pairs))
	for i := range cs.Pairs {
		all[i] = cs.Score(u, i)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] > all[j] })
	for i := 0; i < 10; i++ {
		if !approxEqual(res[i].Score, all[i]) {
			t.Fatalf("rank %d: %v != exhaustive %v", i, res[i].Score, all[i])
		}
	}
}

func TestTAMatchesBruteForce(t *testing.T) {
	for _, signed := range []bool{false, true} {
		cs := buildSmallSet(t, 7, 40, 25, 8, 0, signed)
		idx := NewIndex(cs)
		src := rng.New(8)
		for trial := 0; trial < 20; trial++ {
			u := randomVecs(src, 1, 8, signed)[0]
			for _, n := range []int{1, 5, 10} {
				bf := cs.BruteForceTopN(u, n)
				taRes, stats := idx.TopN(u, n)
				if len(taRes) != len(bf) {
					t.Fatalf("signed=%v n=%d: TA returned %d results, BF %d", signed, n, len(taRes), len(bf))
				}
				for i := range bf {
					if !approxEqual(taRes[i].Score, bf[i].Score) {
						t.Fatalf("signed=%v trial=%d n=%d rank=%d: TA %v vs BF %v",
							signed, trial, n, i, taRes[i].Score, bf[i].Score)
					}
				}
				if stats.RandomAccesses > stats.Candidates {
					t.Fatal("random accesses exceed candidate count")
				}
			}
		}
	}
}

func TestTAMatchesBruteForceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		cs := buildSmallSet(t, seed, 15, 10, 4, 0, true)
		idx := NewIndex(cs)
		src := rng.New(seed ^ 0x55)
		u := randomVecs(src, 1, 4, true)[0]
		bf := cs.BruteForceTopN(u, 5)
		taRes, _ := idx.TopN(u, 5)
		if len(bf) != len(taRes) {
			return false
		}
		for i := range bf {
			if !approxEqual(bf[i].Score, taRes[i].Score) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTAPrunesAccesses(t *testing.T) {
	// On a larger concentrated instance, TA must stop well before
	// touching every candidate — the whole point of Table VI.
	cs := buildSmallSet(t, 9, 200, 300, 16, 0, false)
	idx := NewIndex(cs)
	src := rng.New(10)
	u := randomVecs(src, 1, 16, false)[0]
	_, stats := idx.TopN(u, 10)
	if frac := stats.AccessFraction(); frac >= 0.9 {
		t.Errorf("TA evaluated %.0f%% of candidates; expected pruning", frac*100)
	}
}

func TestTAHandlesDegenerateQueries(t *testing.T) {
	cs := buildSmallSet(t, 11, 10, 5, 4, 0, true)
	idx := NewIndex(cs)
	zero := make([]float32, 4)
	// All-zero user: q has only the constant coordinate; still correct.
	bf := cs.BruteForceTopN(zero, 3)
	res, _ := idx.TopN(zero, 3)
	for i := range bf {
		if !approxEqual(bf[i].Score, res[i].Score) {
			t.Fatalf("zero-query rank %d: %v vs %v", i, res[i].Score, bf[i].Score)
		}
	}
	// n larger than candidate count.
	resAll, _ := idx.TopN(zero, 1000)
	if len(resAll) != len(cs.Pairs) {
		t.Fatalf("n>candidates returned %d of %d", len(resAll), len(cs.Pairs))
	}
	// n = 0.
	if res, _ := idx.TopN(zero, 0); res != nil {
		t.Fatal("n=0 returned results")
	}
}

func TestBruteForceEdgeCases(t *testing.T) {
	cs := buildSmallSet(t, 12, 6, 4, 4, 0, true)
	src := rng.New(13)
	u := randomVecs(src, 1, 4, true)[0]
	if res := cs.BruteForceTopN(u, 0); res != nil {
		t.Fatal("n=0 returned results")
	}
	if res := cs.BruteForceTopN(u, 100); len(res) != len(cs.Pairs) {
		t.Fatal("n>candidates should return all pairs")
	}
}

func TestQueryShape(t *testing.T) {
	u := []float32{1, 2, 3}
	q := Query(u)
	want := []float32{1, 2, 3, 1, 2, 3, 1}
	if len(q) != len(want) {
		t.Fatalf("query length %d", len(q))
	}
	for i := range want {
		if q[i] != want[i] {
			t.Fatalf("query = %v, want %v", q, want)
		}
	}
}

func TestTopEventsForExactness(t *testing.T) {
	src := rng.New(14)
	events := randomVecs(src, 50, 6, true)
	partner := randomVecs(src, 1, 6, true)[0]
	scores := make([]float32, len(events))
	for i, ev := range events {
		scores[i] = vecmath.Dot(partner, ev)
	}
	got := selectTopEvents(scores, 7, nil, make([]int32, 7))
	if len(got) != 7 {
		t.Fatalf("got %d events", len(got))
	}
	// Compare against exhaustive ranking.
	type sx struct {
		x int32
		s float32
	}
	all := make([]sx, len(events))
	for i, ev := range events {
		all[i] = sx{int32(i), vecmath.Dot(partner, ev)}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].s > all[j].s })
	want := map[int32]bool{}
	for _, e := range all[:7] {
		want[e.x] = true
	}
	for _, x := range got {
		if !want[x] {
			t.Fatalf("event %d not in true top-7", x)
		}
	}
}

func TestSortedListsAreSorted(t *testing.T) {
	cs := buildSmallSet(t, 15, 30, 20, 6, 0, true)
	idx := NewIndex(cs)
	if len(idx.sorted) != cs.K+1 {
		t.Fatalf("index has %d dimensions, want reduced K+1 = %d", len(idx.sorted), cs.K+1)
	}
	for d := range idx.sorted {
		list := idx.sorted[d]
		for i := 1; i < len(list); i++ {
			if idx.vals[d][list[i-1]] > idx.vals[d][list[i]]+1e-7 {
				t.Fatalf("dimension %d not ascending at %d", d, i)
			}
		}
	}
	// The index stores an orthogonal rotation of the reduced coordinates
	// (x+u', x·u'). Orthogonality preserves norms: per pair, the squared
	// norm of the rotated coordinates must equal that of the reduced
	// form built from the paper's full transform.
	for i := range cs.Pairs {
		p := cs.Point(i)
		var reduced, rotated float64
		for d := 0; d < cs.K; d++ {
			v := float64(p[d] + p[cs.K+d])
			reduced += v * v
		}
		reduced += float64(p[2*cs.K]) * float64(p[2*cs.K])
		for d := 0; d <= cs.K; d++ {
			rotated += float64(idx.vals[d][i]) * float64(idx.vals[d][i])
		}
		if math.Abs(reduced-rotated) > 1e-3*(1+reduced) {
			t.Fatalf("pair %d: rotation changed norm %v -> %v", i, reduced, rotated)
		}
	}
}

func TestAccessFraction(t *testing.T) {
	s := SearchStats{RandomAccesses: 25, Candidates: 100}
	if s.AccessFraction() != 0.25 {
		t.Fatal("AccessFraction wrong")
	}
	if (SearchStats{}).AccessFraction() != 0 {
		t.Fatal("zero-candidate fraction should be 0")
	}
}

func BenchmarkTATop10(b *testing.B) {
	src := rng.New(20)
	events := randomVecs(src, 400, 16, false)
	partners := randomVecs(src, 1000, 16, false)
	cs, err := BuildCandidates(events, partners, BuildConfig{TopKEvents: 40, Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	idx := NewIndex(cs)
	u := randomVecs(src, 1, 16, false)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.TopN(u, 10)
	}
}

func BenchmarkBruteForceTop10(b *testing.B) {
	src := rng.New(20)
	events := randomVecs(src, 400, 16, false)
	partners := randomVecs(src, 1000, 16, false)
	cs, err := BuildCandidates(events, partners, BuildConfig{TopKEvents: 40, Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	u := randomVecs(src, 1, 16, false)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.BruteForceTopN(u, 10)
	}
}

func TestVarianceOfScoresNonTrivial(t *testing.T) {
	// Guard against degenerate test fixtures: candidate scores should
	// spread, otherwise the TA pruning tests prove nothing.
	cs := buildSmallSet(t, 16, 50, 50, 8, 0, true)
	src := rng.New(17)
	u := randomVecs(src, 1, 8, true)[0]
	var mean, sq float64
	for i := range cs.Pairs {
		s := float64(cs.Score(u, i))
		mean += s
		sq += s * s
	}
	n := float64(len(cs.Pairs))
	mean /= n
	if sq/n-mean*mean < 1e-6 {
		t.Fatal("candidate scores are degenerate")
	}
	_ = math.Pi
}
