package ta

import (
	"fmt"
	"sync"
	"time"

	"ebsn/internal/vecmath"
)

// Batched queries share the expensive part of a top-n search — the
// affinity passes over the packed event and partner rows — across B
// users via the matrix-panel kernels (vecmath.DotPanel and its int8
// twin). The bound-heap walk still runs per user: it is cheap relative
// to the passes and inherently data-dependent. Because DotPanel is
// bit-identical to repeated Dot calls, a batched query returns exactly
// the results the same users would get sequentially, tie ordering
// included.

// BatchQuery describes one batched top-n request against a FastIndex.
type BatchQuery struct {
	// Users holds one K-dim user vector per batch lane. Rows may have
	// different backing arrays; they are packed contiguously into the
	// scratch before the panel pass.
	Users [][]float32
	// N is the per-user result count.
	N int
	// Exclude holds one partner ID to exclude per user (the serving
	// path excludes the querying user). Nil means exclude no one;
	// otherwise the length must match Users.
	Exclude []int32
	// EventAff optionally carries a precomputed event-affinity panel,
	// laid out [user-major] u*|X| .. (u+1)*|X|, produced by
	// EventAffinityPanel on a set with identical event rows (the
	// sharded engine computes it once and shares it across shards).
	// Nil means compute it here.
	EventAff []float32
	// Quantized routes the search through the int8 mirrors with exact
	// re-ranking; the set must have been packed with PackQuantized.
	Quantized bool
	// Pred optionally restricts every query in the batch to
	// predicate-allowed events (the batch shares one predicate — callers
	// with per-user predicates issue single queries instead; see the
	// serving coalescer, which never folds constrained requests). Nil
	// means unrestricted and is bit-identical to the unconstrained batch.
	Pred EventPredicate
}

// BatchScratch owns every per-batch buffer of TopNBatch: the packed
// query panel, its quantized mirror, the affinity panels, and the
// per-user walk scratch and result slices. A warmed BatchScratch makes
// steady-state batched queries allocation-free. Not safe for concurrent
// use; take one from GetBatchScratch per batch.
type BatchScratch struct {
	qs     []float32 // packed query panel, b×K row-major
	q8     []int8    // quantized query panel
	qscale []float32 // per-query quantization scales
	aff    []float32 // event-affinity panel, b×|X|
	bp     []float32 // partner-affinity panel, b×|U|
	i32    []int32   // widening dot results for the quantized panels
	per    Scratch   // walk state, reused across the batch's users
	out    []Result  // backing array for all users' results
	res    [][]Result
	stats  []SearchStats
}

var batchScratchPool = sync.Pool{New: func() any { return new(BatchScratch) }}

// GetBatchScratch takes a batch scratch from the pool. Pair with
// PutBatchScratch.
func GetBatchScratch() *BatchScratch { return batchScratchPool.Get().(*BatchScratch) }

// PutBatchScratch returns a batch scratch to the pool. The caller must
// not touch the scratch — or any batch results that alias it —
// afterwards.
func PutBatchScratch(bsc *BatchScratch) {
	if bsc != nil {
		batchScratchPool.Put(bsc)
	}
}

// packQueries copies the user vectors into the scratch's contiguous
// b×K panel, quantizing each row as well when quantized is set.
func (c *CandidateSet) packQueries(users [][]float32, quantized bool, bsc *BatchScratch) {
	b, k := len(users), c.K
	bsc.qs = resizeF32(bsc.qs, b*k)
	for j, u := range users {
		if len(u) != k {
			panic(fmt.Sprintf("ta: batch user %d has dim %d, want %d", j, len(u), k))
		}
		copy(bsc.qs[j*k:(j+1)*k], u)
	}
	if quantized {
		bsc.q8 = resizeSlice(bsc.q8, b*k)
		bsc.qscale = resizeF32(bsc.qscale, b)
		for j := range users {
			bsc.qscale[j] = vecmath.QuantizeRow(bsc.qs[j*k:(j+1)*k], bsc.q8[j*k:(j+1)*k])
		}
	}
}

// EventAffinityPanel computes the b×|X| event-affinity panel for the
// batch: row j holds Users[j]·Events[x] for every event, produced by
// the same kernels as TopNBatch's internal pass so handing the panel
// back in via BatchQuery.EventAff is bit-identical to recomputing it.
// The sharded engine calls this once per batch on its affinity set and
// shares the panel across shards. The returned slice aliases bsc.
func (c *CandidateSet) EventAffinityPanel(users [][]float32, quantized bool, bsc *BatchScratch) []float32 {
	c.packQueries(users, quantized, bsc)
	b, k, nx := len(users), c.K, len(c.Events)
	bsc.aff = resizeF32(bsc.aff, b*nx)
	if quantized {
		if !c.quantized {
			panic("ta: EventAffinityPanel quantized on unquantized set")
		}
		bsc.i32 = resizeSlice(bsc.i32, b*nx)
		vecmath.DotPanelI8(bsc.q8, b, c.eventQ, k, bsc.i32)
		for j := 0; j < b; j++ {
			scaleWidened(bsc.qscale[j], c.eventScale, bsc.i32[j*nx:(j+1)*nx], bsc.aff[j*nx:(j+1)*nx])
		}
	} else {
		vecmath.DotPanel(bsc.qs, b, c.eventData, k, bsc.aff)
	}
	return bsc.aff
}

// TopNBatch answers every query in the batch against the index with one
// panel pass per side of the space. Results and stats are per-user,
// indexed like q.Users; both alias bsc and are valid only until its
// next use. Per-user SearchStats count that user's walk (Elapsed
// excludes the shared panel passes, which are amortized across the
// batch). The exact path is bit-identical to issuing the queries
// sequentially via TopNExcludingScratch.
func (f *FastIndex) TopNBatch(q BatchQuery, bsc *BatchScratch) ([][]Result, []SearchStats) {
	set := f.set
	nb := len(q.Users)
	if q.Exclude != nil && len(q.Exclude) != nb {
		panic(fmt.Sprintf("ta: batch has %d users but %d excludes", nb, len(q.Exclude)))
	}
	if q.Quantized && !set.quantized {
		panic("ta: quantized batch on a set without PackQuantized")
	}
	set.checkPred(q.Pred)
	bsc.res = resizeSlice(bsc.res, nb)
	bsc.stats = resizeSlice(bsc.stats, nb)
	if nb == 0 {
		return bsc.res, bsc.stats
	}

	nx, nu, k := len(set.Events), len(set.Partners), set.K
	aff := q.EventAff
	if aff == nil {
		aff = f.set.EventAffinityPanel(q.Users, q.Quantized, bsc)
	} else {
		if len(aff) != nb*nx {
			panic(fmt.Sprintf("ta: event-affinity panel has %d entries, want %d", len(aff), nb*nx))
		}
		// Still pack (and quantize) the queries: the partner pass and
		// the quantized re-rank need them.
		set.packQueries(q.Users, q.Quantized, bsc)
	}

	// Partner-affinity panel, shared across the batch.
	bsc.bp = resizeF32(bsc.bp, nb*nu)
	if q.Quantized {
		bsc.i32 = resizeSlice(bsc.i32, nb*nu)
		vecmath.DotPanelI8(bsc.q8, nb, set.partnerQ, k, bsc.i32)
		for j := 0; j < nb; j++ {
			scaleWidened(bsc.qscale[j], set.partnerScale, bsc.i32[j*nu:(j+1)*nu], bsc.bp[j*nu:(j+1)*nu])
		}
	} else {
		vecmath.DotPanel(bsc.qs, nb, set.partnerData, k, bsc.bp)
	}

	nc := len(set.Pairs)
	n := q.N
	if n > nc {
		n = nc
	}
	if n < 0 {
		n = 0
	}
	bsc.out = resizeSlice(bsc.out, nb*n)
	for j := 0; j < nb; j++ {
		start := time.Now()
		stats := SearchStats{Candidates: nc}
		var res []Result
		if n > 0 && nc > 0 {
			exclude := int32(-1)
			if q.Exclude != nil {
				exclude = q.Exclude[j]
			}
			a := aff[j*nx : (j+1)*nx]
			b := bsc.bp[j*nu : (j+1)*nu]
			dst := bsc.out[j*n : j*n : j*n+n]
			switch {
			case q.Quantized && q.Pred != nil:
				res = f.walkQuantizedPred(bsc.qs[j*k:(j+1)*k], a, b, n, exclude, q.Pred, &bsc.per, &stats, dst)
			case q.Quantized:
				res = f.walkQuantized(bsc.qs[j*k:(j+1)*k], a, b, n, exclude, &bsc.per, &stats, dst)
			case q.Pred != nil:
				res = f.walkTopNPred(a, b, n, exclude, q.Pred, &bsc.per, &stats, dst)
			default:
				res = f.walkTopN(a, b, n, exclude, &bsc.per, &stats, dst)
			}
		}
		stats.Elapsed = time.Since(start)
		bsc.res[j] = res
		bsc.stats[j] = stats
	}
	return bsc.res, bsc.stats
}
