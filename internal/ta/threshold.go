package ta

import (
	"container/heap"
	"math"
	"time"

	"ebsn/internal/isort"
)

// Index is the TA search structure over a candidate set: per indexed
// dimension, the candidate indices sorted by that coordinate. Building is
// O(D·C·log C) offline (parallel across dimensions; see
// NewIndexWorkers); queries then use Fagin's Threshold Algorithm, which
// stops as soon as the running threshold proves no unseen candidate can
// enter the top n.
//
// The index works in a reduced K+1-dimensional form of the paper's
// transformation: since the query duplicates the user vector across the
// first two blocks, u·x + u'·x + u·u' = u·(x+u') + x·u', so each pair is
// indexed as p̃ = (x+u', x·u') with query q̃ = (u, 1). The scores are
// identical to the paper's (2K+1)-dim formulation (see the space
// transform property tests) while the threshold — a sum of per-dimension
// maxima — is over half as many, strictly tighter, terms. That is what
// makes TA touch the small candidate fractions Table VI reports.
//
// Embeddings are signed, so the sorted lists are read from whichever end
// yields decreasing contribution q_d·p_d for the query at hand: top-down
// for q_d > 0, bottom-up for q_d < 0. The threshold remains a valid upper
// bound either way.
type Index struct {
	set  *CandidateSet
	dims int
	// rot is the (K+1)×(K+1) orthogonal rotation (column eigenvectors).
	rot []float64
	// vals[d][i] is rotated reduced coordinate d of pair i.
	vals [][]float32
	// sorted[d] lists candidate indices in ascending order of vals[d].
	sorted [][]int32
}

// NewIndex builds the per-dimension sorted lists using all available
// CPUs. See NewIndexWorkers.
func NewIndex(set *CandidateSet) *Index { return NewIndexWorkers(set, 0) }

// NewIndexWorkers builds the per-dimension sorted lists with the given
// parallelism (≤ 0 means GOMAXPROCS). Before sorting, the reduced
// coordinates are rotated onto the principal axes of the candidate cloud
// (a shared orthogonal rotation leaves every inner product, and hence
// every score and threshold, unchanged). Learned embeddings are strongly
// anisotropic, so after rotation a handful of dimensions carry almost
// all score variance and the TA threshold collapses after a short
// prefix — the effect behind the paper's ~8% access fraction.
//
// Extraction, rotation and sorting parallelize per dimension; the
// second-moment accumulation parallelizes over fixed-size row blocks
// merged in block order, so the estimated axes do not depend on the
// worker count.
func NewIndexWorkers(set *CandidateSet, workers int) *Index {
	workers = resolveWorkers(workers)
	set.Pack()
	dims := set.K + 1
	n := len(set.Pairs)

	// Reduced coordinates per pair.
	raw := make([][]float32, dims)
	parallelFor(dims, workers, func(d int) {
		vals := make([]float32, n)
		if d < set.K {
			for i := 0; i < n; i++ {
				pair := set.Pairs[i]
				vals[i] = set.Events[pair.Event][d] + set.Partners[pair.Partner][d]
			}
		} else {
			copy(vals, set.Cross)
		}
		raw[d] = vals
	})

	// Second-moment matrix and its eigenvectors. Sampling rows is enough
	// to estimate the principal axes on large candidate sets. Partial
	// moments accumulate per fixed-size block and merge in block order:
	// bit-identical for every worker count.
	stride := 1
	if n > 20000 {
		stride = n / 20000
	}
	samples := (n + stride - 1) / stride
	const momentBlock = 4096
	nblocks := (samples + momentBlock - 1) / momentBlock
	partial := make([][]float64, nblocks)
	parallelFor(nblocks, workers, func(blk int) {
		mom := make([]float64, dims*dims)
		lo, hi := blk*momentBlock, (blk+1)*momentBlock
		if hi > samples {
			hi = samples
		}
		for s := lo; s < hi; s++ {
			i := s * stride
			for a := 0; a < dims; a++ {
				va := float64(raw[a][i])
				for b := a; b < dims; b++ {
					mom[a*dims+b] += va * float64(raw[b][i])
				}
			}
		}
		partial[blk] = mom
	})
	mom := make([]float64, dims*dims)
	for _, p := range partial {
		for i, v := range p {
			mom[i] += v
		}
	}
	for a := 0; a < dims; a++ {
		for b := 0; b < a; b++ {
			mom[a*dims+b] = mom[b*dims+a]
		}
	}
	_, evec := jacobiEigen(mom, dims)

	idx := &Index{
		set:    set,
		rot:    evec,
		dims:   dims,
		vals:   make([][]float32, dims),
		sorted: make([][]int32, dims),
	}
	// Rotate every pair's coordinate vector — vals'[d][i] =
	// Σ_a evec[a*dims+d]·raw[a][i] — and sort, one dimension per task.
	parallelFor(dims, workers, func(d int) {
		vals := make([]float32, n)
		for a := 0; a < dims; a++ {
			w := float32(evec[a*dims+d])
			if w == 0 {
				continue
			}
			col := raw[a]
			for i := 0; i < n; i++ {
				vals[i] += w * col[i]
			}
		}
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32(i)
		}
		sortInt32sByVal(ids, vals)
		idx.vals[d] = vals
		idx.sorted[d] = ids
	})
	return idx
}

// sortInt32sByVal sorts ids ascending by vals[id] with the shared
// introsort (quicksort with a depth guard falling back to heapsort, so
// an adversarial ordering cannot push the build quadratic).
func sortInt32sByVal(ids []int32, vals []float32) {
	// vals is indexed by candidate id.
	isort.SortAsc(ids, vals)
}

// SearchStats reports how much work one TA query did — the instrument
// behind the paper's observation that top-10 queries touch only ~8% of
// the candidate pairs.
type SearchStats struct {
	// SortedAccesses counts positions consumed across all sorted lists
	// (for FastIndex: partner bounds consumed from the lazy heap).
	SortedAccesses int
	// RandomAccesses counts full score computations (distinct candidates
	// seen).
	RandomAccesses int
	// Candidates is the total pair count, for fractions.
	Candidates int
	// Elapsed is the wall-clock time the query spent inside the index,
	// excluding scratch acquisition. Reading the monotonic clock twice
	// costs ~50ns against a ~300µs query, so it is always on.
	Elapsed time.Duration
}

// AccessFraction is the fraction of candidate pairs score-evaluated.
func (s SearchStats) AccessFraction() float64 {
	if s.Candidates == 0 {
		return 0
	}
	return float64(s.RandomAccesses) / float64(s.Candidates)
}

// TopN runs the Threshold Algorithm for the user vector and returns the
// exact top-n candidates by joint score, descending.
func (idx *Index) TopN(userVec []float32, n int) ([]Result, SearchStats) {
	sc := GetScratch()
	defer PutScratch(sc)
	return idx.topN(userVec, n, sc, nil)
}

// TopNScratch is TopN with caller-managed scratch; the results alias sc
// and are valid only until its next use.
func (idx *Index) TopNScratch(userVec []float32, n int, sc *Scratch) ([]Result, SearchStats) {
	res, stats := idx.topN(userVec, n, sc, sc.out[:0])
	sc.out = res[:0]
	return res, stats
}

func (idx *Index) topN(userVec []float32, n int, sc *Scratch, dst []Result) ([]Result, SearchStats) {
	start := time.Now()
	set := idx.set
	nc := len(set.Pairs)
	stats := SearchStats{Candidates: nc}
	if n <= 0 || nc == 0 {
		return nil, stats
	}
	if n > nc {
		n = nc
	}
	// Reduced query q̃ = (u, 1), rotated into the index basis.
	dims := idx.dims
	sc.q = resizeF32(sc.q, dims)
	q := sc.q
	for d := 0; d < dims; d++ {
		var acc float64
		for a := 0; a < dims; a++ {
			var ra float64 = 1
			if a < set.K {
				ra = float64(userVec[a])
			}
			acc += idx.rot[a*dims+d] * ra
		}
		q[d] = float32(acc)
	}

	// Per-dimension cursor into the sorted list, walking from the end
	// that maximizes q_d·coordinate. Dimensions with q_d == 0 contribute
	// nothing and are skipped entirely. Cursors advance greedily: each
	// step consumes the dimension whose current bound contributes most to
	// the threshold, which drives τ down as fast as possible. (Classic TA
	// uses strict round-robin; any access order keeps the threshold a
	// valid upper bound, so correctness is unaffected.)
	cursors := sc.cursors[:0]
	var tau float64
	for d := 0; d < dims; d++ {
		if q[d] == 0 {
			continue
		}
		c := cursor{d: d, desc: q[d] > 0}
		list := idx.sorted[d]
		var v float32
		if c.desc {
			v = idx.vals[d][list[nc-1]]
		} else {
			v = idx.vals[d][list[0]]
		}
		c.contrib = float64(q[d]) * float64(v)
		tau += c.contrib
		cursors = append(cursors, c)
	}
	sc.cursors = cursors
	if len(cursors) == 0 {
		return nil, stats
	}
	// Max-heap over cursor contributions, as a slice-heap keyed by index.
	ch := &sc.ch
	ch.cs = cursors
	ch.order = ch.order[:0]
	for i := range cursors {
		ch.order = append(ch.order, i)
	}
	heap.Init(ch)

	// The seen set is an epoch-stamped array: clearing between queries is
	// an epoch bump, not an O(|C|) wipe or a fresh map.
	sc.sizeSeen(nc)
	h := &sc.results
	*h = (*h)[:0]

	for ch.Len() > 0 {
		i := ch.order[0] // dimension with the largest current bound
		c := &cursors[i]
		list := idx.sorted[c.d]
		var cand int32
		if c.desc {
			cand = list[nc-1-c.pos]
		} else {
			cand = list[c.pos]
		}
		v := idx.vals[c.d][cand]
		newContrib := float64(q[c.d]) * float64(v)
		tau += newContrib - c.contrib
		c.contrib = newContrib
		c.pos++
		stats.SortedAccesses++
		if c.pos >= nc {
			heap.Pop(ch)
		} else {
			heap.Fix(ch, 0)
		}

		if !sc.markSeen(cand) {
			stats.RandomAccesses++
			r := Result{set.Pairs[cand].Event, set.Pairs[cand].Partner, set.Score(userVec, int(cand))}
			if len(*h) < n {
				h.push(r)
			} else if r.Outranks((*h)[0]) {
				h.replaceMin(r)
			}
		}
		// Threshold check: no unseen candidate can beat τ.
		if len(*h) == n && float64((*h)[0].Score) >= tau-1e-6 {
			break
		}
	}
	stats.Elapsed = time.Since(start)
	return h.drainDescending(dst), stats
}

// cursor walks one dimension's sorted list from the end that maximizes
// q_d·coordinate.
type cursor struct {
	d       int
	pos     int // 0-based steps taken
	desc    bool
	contrib float64 // q_d · (coordinate at current position)
}

// cursorHeap is a max-heap over cursor indices keyed by their current
// threshold contribution.
type cursorHeap struct {
	cs    []cursor
	order []int
}

func (h *cursorHeap) Len() int { return len(h.order) }
func (h *cursorHeap) Less(i, j int) bool {
	return h.cs[h.order[i]].contrib > h.cs[h.order[j]].contrib
}
func (h *cursorHeap) Swap(i, j int) { h.order[i], h.order[j] = h.order[j], h.order[i] }
func (h *cursorHeap) Push(x any)    { h.order = append(h.order, x.(int)) }
func (h *cursorHeap) Pop() any {
	old := h.order
	n := len(old)
	x := old[n-1]
	h.order = old[:n-1]
	return x
}

// approxEqual helps tests compare score floats.
func approxEqual(a, b float32) bool {
	return math.Abs(float64(a)-float64(b)) <= 1e-4*(1+math.Abs(float64(a)))
}
