// Package ta implements the paper's fast online event-partner
// recommendation (Section IV): the space transformation that turns the
// joint score u·x + u'·x + u·u' into a single inner product, the
// per-partner top-k event pruning that shrinks the candidate set from
// |U|·|X| to |U|·k, and Fagin's Threshold Algorithm over per-dimension
// sorted lists (GEM-TA), with a brute-force scorer (GEM-BF) as the
// comparison point of Table VI.
//
// [BuildCandidates] materializes the transformed space as a
// [CandidateSet]; [NewIndex] and [NewFastIndex] construct the static TA
// indexes over it and [NewDynamic] wraps one with an appendable delta
// for live-ingested events. Queries go through TopN/TopNExcluding and
// report per-query work in [SearchStats] — sorted and random accesses,
// heap pops, candidates scored, and wall-clock time inside the index —
// which the serve layer exports as Prometheus metrics and span attrs.
//
// The query path is allocation-free at steady state: per-query scratch
// comes from a [Scratch] pool and the packed row-major vector storage
// keeps the affinity passes sequential. Determinism: for a given set
// and k, results are reproducible across runs and worker counts.
package ta
