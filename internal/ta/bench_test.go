package ta

import (
	"runtime"
	"strconv"
	"testing"

	"ebsn/internal/rng"
)

// benchSet builds the standard benchmark candidate space: 2000 events ×
// 5000 partners at K=60 with top-50 pruning — 250k pairs, comfortably
// above the 100k floor the build-scaling acceptance criterion asks for.
func benchSet(b *testing.B) *CandidateSet {
	b.Helper()
	src := rng.New(91)
	events := randomVecs(src, 2000, 60, true)
	partners := randomVecs(src, 5000, 60, true)
	cs, err := BuildCandidates(events, partners, BuildConfig{TopKEvents: 50, Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		b.Fatal(err)
	}
	return cs
}

// BenchmarkTopNExcluding measures the serving hot path over a cold cache
// of 256 rotating query vectors and rotating excluded partners.
// "pooled" is the plain API (scratch from the sync.Pool, results
// allocated for the caller); "scratch" is the caller-managed variant,
// which must be allocation-free once the scratch is warm.
func BenchmarkTopNExcluding(b *testing.B) {
	cs := benchSet(b)
	f := NewFastIndex(cs)
	src := rng.New(93)
	queries := randomVecs(src, 256, 60, true)
	np := int32(len(cs.Partners))

	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.TopNExcluding(queries[i%len(queries)], 10, int32(i)%np)
		}
	})
	b.Run("scratch", func(b *testing.B) {
		sc := GetScratch()
		defer PutScratch(sc)
		f.TopNExcludingScratch(queries[0], 10, 0, sc) // warm the buffers
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.TopNExcludingScratch(queries[i%len(queries)], 10, int32(i)%np, sc)
		}
	})
}

// BenchmarkIndexTopN measures the generic Fagin index hot path with
// caller-managed scratch.
func BenchmarkIndexTopN(b *testing.B) {
	cs := benchSet(b)
	idx := NewIndex(cs)
	src := rng.New(94)
	queries := randomVecs(src, 64, 60, true)
	sc := GetScratch()
	defer PutScratch(sc)
	idx.TopNScratch(queries[0], 10, sc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.TopNScratch(queries[i%len(queries)], 10, sc)
	}
}

// benchWorkerCounts covers the serial baseline and the machine's full
// parallelism (plus an intermediate point when there is one).
func benchWorkerCounts() []int {
	max := runtime.GOMAXPROCS(0)
	counts := []int{1}
	if max >= 4 {
		counts = append(counts, max/2)
	}
	if max > 1 {
		counts = append(counts, max)
	}
	return counts
}

// BenchmarkBuildCandidates measures candidate-set construction (pruning
// pass + packing) across worker counts; near-linear scaling is an
// acceptance criterion of the parallel build.
func BenchmarkBuildCandidates(b *testing.B) {
	src := rng.New(92)
	events := randomVecs(src, 2000, 60, true)
	partners := randomVecs(src, 5000, 60, true)
	for _, w := range benchWorkerCounts() {
		b.Run("workers="+strconv.Itoa(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := BuildCandidates(events, partners, BuildConfig{TopKEvents: 50, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNewFastIndex measures the grouped-bound index build (parallel
// counting sort + offline bounds) across worker counts.
func BenchmarkNewFastIndex(b *testing.B) {
	cs := benchSet(b)
	for _, w := range benchWorkerCounts() {
		b.Run("workers="+strconv.Itoa(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				NewFastIndexWorkers(cs, w)
			}
		})
	}
}

// BenchmarkNewIndex measures the Fagin index build (rotation + per-
// dimension sorts) across worker counts.
func BenchmarkNewIndex(b *testing.B) {
	cs := benchSet(b)
	for _, w := range benchWorkerCounts() {
		b.Run("workers="+strconv.Itoa(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				NewIndexWorkers(cs, w)
			}
		})
	}
}
