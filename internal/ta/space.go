// Package ta implements the paper's fast online event-partner
// recommendation (Section IV): the space transformation that turns the
// joint score u·x + u'·x + u·u' into a single inner product, the
// per-partner top-k event pruning that shrinks the candidate set from
// |U|·|X| to |U|·k, and Fagin's Threshold Algorithm over per-dimension
// sorted lists (GEM-TA), with a brute-force scorer (GEM-BF) as the
// comparison point of Table VI.
package ta

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"

	"ebsn/internal/vecmath"
)

// Candidate is one event-partner pair in the transformed space.
type Candidate struct {
	Event   int32 // index into the event vector set
	Partner int32 // index into the partner vector set
}

// CandidateSet holds the materialized transformed space: every candidate
// pair (x, u') mapped to the (2K+1)-dimensional point p = (x, u', x·u').
// Points are not stored explicitly — the first K coordinates depend only
// on the event and the next K only on the partner, so the set stores the
// original vectors plus the pair list and the precomputed cross term.
type CandidateSet struct {
	K        int
	Events   [][]float32 // event vectors (index space of Candidate.Event)
	Partners [][]float32 // partner/user vectors
	Pairs    []Candidate
	Cross    []float32 // x·u' per pair — the (2K+1)-th coordinate
}

// Dims returns the transformed-space dimensionality 2K+1.
func (c *CandidateSet) Dims() int { return 2*c.K + 1 }

// Point materializes the transformed point of pair i (mostly for tests).
func (c *CandidateSet) Point(i int) []float32 {
	p := make([]float32, c.Dims())
	pair := c.Pairs[i]
	copy(p[:c.K], c.Events[pair.Event])
	copy(p[c.K:2*c.K], c.Partners[pair.Partner])
	p[2*c.K] = c.Cross[i]
	return p
}

// Query materializes the transformed query point q_u = (u, u, 1).
func Query(userVec []float32) []float32 {
	k := len(userVec)
	q := make([]float32, 2*k+1)
	copy(q[:k], userVec)
	copy(q[k:2*k], userVec)
	q[2*k] = 1
	return q
}

// coord returns coordinate d of pair i without materializing the point.
func (c *CandidateSet) coord(i int, d int) float32 {
	switch {
	case d < c.K:
		return c.Events[c.Pairs[i].Event][d]
	case d < 2*c.K:
		return c.Partners[c.Pairs[i].Partner][d-c.K]
	default:
		return c.Cross[i]
	}
}

// Score computes the pair's joint score for the given user vector using
// the untransformed identity u·x + u'·x + u·u'; by construction it equals
// the transformed inner product q_u·p (verified by property test).
func (c *CandidateSet) Score(userVec []float32, i int) float32 {
	pair := c.Pairs[i]
	xv := c.Events[pair.Event]
	pv := c.Partners[pair.Partner]
	return vecmath.Dot(userVec, xv) + c.Cross[i] + vecmath.Dot(userVec, pv)
}

// BuildConfig controls candidate-set construction.
type BuildConfig struct {
	// TopKEvents keeps only each partner's k highest-scoring events
	// (their own preference u'·x). Zero keeps the full cross product —
	// the paper's unpruned space.
	TopKEvents int
	// Workers bounds build parallelism (0 = serial).
	Workers int
}

// BuildCandidates constructs the transformed candidate space over the
// given event and partner vectors. With pruning enabled, each partner
// contributes only their top-k events, reducing the space from |U|·|X| to
// |U|·k exactly as Section IV proposes: a partner is unlikely to accept
// an invitation to an event they have no interest in.
func BuildCandidates(events, partners [][]float32, cfg BuildConfig) (*CandidateSet, error) {
	if len(events) == 0 || len(partners) == 0 {
		return nil, fmt.Errorf("ta: empty event or partner set")
	}
	k := len(events[0])
	for _, v := range events {
		if len(v) != k {
			return nil, fmt.Errorf("ta: inconsistent event vector lengths")
		}
	}
	for _, v := range partners {
		if len(v) != k {
			return nil, fmt.Errorf("ta: partner vector length %d, want %d", len(v), k)
		}
	}
	cs := &CandidateSet{K: k, Events: events, Partners: partners}

	topK := cfg.TopKEvents
	if topK <= 0 || topK > len(events) {
		topK = len(events)
	}

	// Per-partner candidate events, computed in parallel.
	perPartner := make([][]int32, len(partners))
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (len(partners) + workers - 1) / workers
	for lo := 0; lo < len(partners); lo += chunk {
		hi := lo + chunk
		if hi > len(partners) {
			hi = len(partners)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for u := lo; u < hi; u++ {
				perPartner[u] = topEventsFor(partners[u], events, topK)
			}
		}(lo, hi)
	}
	wg.Wait()

	for u, evs := range perPartner {
		for _, x := range evs {
			cs.Pairs = append(cs.Pairs, Candidate{Event: x, Partner: int32(u)})
			cs.Cross = append(cs.Cross, vecmath.Dot(events[x], partners[u]))
		}
	}
	return cs, nil
}

// topEventsFor returns the indices of the top-k events by u'·x, sorted by
// event index for deterministic output.
func topEventsFor(partner []float32, events [][]float32, k int) []int32 {
	if k >= len(events) {
		out := make([]int32, len(events))
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	type sx struct {
		x int32
		s float32
	}
	h := make([]sx, 0, k) // min-heap on s
	less := func(i, j int) bool { return h[i].s < h[j].s }
	push := func(e sx) {
		h = append(h, e)
		i := len(h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if less(i, p) {
				h[i], h[p] = h[p], h[i]
				i = p
			} else {
				break
			}
		}
	}
	fix := func() {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && less(l, m) {
				m = l
			}
			if r < len(h) && less(r, m) {
				m = r
			}
			if m == i {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for x, ev := range events {
		s := vecmath.Dot(partner, ev)
		if len(h) < k {
			push(sx{int32(x), s})
		} else if s > h[0].s {
			h[0] = sx{int32(x), s}
			fix()
		}
	}
	out := make([]int32, len(h))
	for i, e := range h {
		out[i] = e.x
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Result is one recommended event-partner pair with its score.
type Result struct {
	Event   int32
	Partner int32
	Score   float32
}

// BruteForceTopN scores every candidate (GEM-BF) and returns the top n by
// score, descending, ties broken by pair order.
func (c *CandidateSet) BruteForceTopN(userVec []float32, n int) []Result {
	if n <= 0 {
		return nil
	}
	h := &resultHeap{}
	heap.Init(h)
	for i := range c.Pairs {
		s := c.Score(userVec, i)
		if h.Len() < n {
			heap.Push(h, Result{c.Pairs[i].Event, c.Pairs[i].Partner, s})
		} else if s > (*h)[0].Score {
			(*h)[0] = Result{c.Pairs[i].Event, c.Pairs[i].Partner, s}
			heap.Fix(h, 0)
		}
	}
	return drainDescending(h)
}

// resultHeap is a min-heap on Score so the root is the weakest retained
// result.
type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func drainDescending(h *resultHeap) []Result {
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result)
	}
	return out
}
