package ta

import (
	"fmt"
	"sort"

	"ebsn/internal/vecmath"
)

// Candidate is one event-partner pair in the transformed space.
type Candidate struct {
	Event   int32 // index into the event vector set
	Partner int32 // index into the partner vector set
}

// CandidateSet holds the materialized transformed space: every candidate
// pair (x, u') mapped to the (2K+1)-dimensional point p = (x, u', x·u').
// Points are not stored explicitly — the first K coordinates depend only
// on the event and the next K only on the partner, so the set stores the
// original vectors plus the pair list and the precomputed cross term.
//
// The vectors have a second representation: Pack copies them into
// contiguous row-major backing arrays and re-aliases every Events[i] /
// Partners[u] row into them, so the per-query affinity passes stream
// sequential memory (vecmath.DotBatch) instead of chasing one pointer
// per row. The index constructors pack automatically; a set mutated
// afterwards (Dynamic.Rebuild appends events) is re-packed on the next
// index build.
type CandidateSet struct {
	K        int
	Events   [][]float32 // event vectors (index space of Candidate.Event)
	Partners [][]float32 // partner/user vectors
	Pairs    []Candidate
	Cross    []float32 // x·u' per pair — the (2K+1)-th coordinate

	// Packed row-major mirrors of Events/Partners (see Pack). Queries
	// require them; index constructors guarantee they are current.
	eventData   []float32
	partnerData []float32

	// int8-quantized mirrors of the packed rows with per-row scales
	// (see PackQuantized). Present only after PackQuantized; the exact
	// float32 rows are always kept — the quantized query path re-ranks
	// its survivors against them.
	eventQ       []int8
	partnerQ     []int8
	eventScale   []float32
	partnerScale []float32
	quantized    bool

	// Artifact backing (see artifact.go). mapped marks a set decoded
	// from an open artifact: its packed (and, when quantized, int8)
	// storage aliases the artifact's pages and must not be rewritten in
	// place. owner pins that artifact, so a mapped set kept alive by a
	// delta or a folded engine keeps its pages mapped even after every
	// other reference to the artifact is gone.
	mapped bool
	owner  *Artifact
}

// Pack (re)builds the contiguous row-major backing arrays and re-aliases
// the per-row slices into them. Idempotent and cheap when already packed;
// not safe to call concurrently with queries (index constructors call it
// at build time, which the facade serializes as its contract requires).
func (c *CandidateSet) Pack() {
	c.eventData = packRows(c.Events, c.K, c.eventData)
	c.partnerData = packRows(c.Partners, c.K, c.partnerData)
}

// packRows copies rows into one contiguous buffer and re-aliases each
// row into it, returning the buffer. A prev buffer that already backs
// the rows is reused untouched.
func packRows(rows [][]float32, k int, prev []float32) []float32 {
	if len(prev) == len(rows)*k && (len(rows) == 0 || &rows[0][0] == &prev[0]) {
		return prev
	}
	data := make([]float32, len(rows)*k)
	for i, r := range rows {
		copy(data[i*k:(i+1)*k], r)
	}
	for i := range rows {
		rows[i] = data[i*k : (i+1)*k : (i+1)*k]
	}
	return data
}

// PackQuantized builds the int8-quantized mirrors of the packed rows:
// each event and partner row is quantized symmetrically with its own
// scale (vecmath.QuantizeRow), so row i reconstructs as
// scale[i]·float32(q[i*K+j]). Candidate storage for the approximate
// walk drops to a quarter of the float32 footprint; the exact rows stay
// resident for re-ranking. Calls Pack first, so it subsumes it; like
// Pack it must not run concurrently with queries. A set that is
// re-packed after mutation (Dynamic.Rebuild) is re-quantized too.
func (c *CandidateSet) PackQuantized() {
	if c.mapped && c.quantized {
		// Artifact-decoded mirrors are already current, and recomputing
		// them would store into the mapped (copy-on-write) pages.
		return
	}
	c.Pack()
	k := c.K
	c.eventQ = resizeSlice(c.eventQ, len(c.Events)*k)
	c.eventScale = resizeF32(c.eventScale, len(c.Events))
	for i := range c.Events {
		c.eventScale[i] = vecmath.QuantizeRow(c.eventData[i*k:(i+1)*k], c.eventQ[i*k:(i+1)*k])
	}
	c.partnerQ = resizeSlice(c.partnerQ, len(c.Partners)*k)
	c.partnerScale = resizeF32(c.partnerScale, len(c.Partners))
	for i := range c.Partners {
		c.partnerScale[i] = vecmath.QuantizeRow(c.partnerData[i*k:(i+1)*k], c.partnerQ[i*k:(i+1)*k])
	}
	c.quantized = true
}

// Quantized reports whether PackQuantized has built the int8 mirrors.
func (c *CandidateSet) Quantized() bool { return c.quantized }

// Dims returns the transformed-space dimensionality 2K+1.
func (c *CandidateSet) Dims() int { return 2*c.K + 1 }

// EventAffinities computes the per-event affinity pass a[x] = userVec·
// Events[x] for every event into dst (grown as needed) and returns it.
// It runs the same kernel over the same packed storage as the index
// queries (vecmath.DotBatch), so handing the result to
// FastIndex.TopNExcludingAffScratch yields bit-identical scores. The set
// must be packed (any index constructor packs it).
func (c *CandidateSet) EventAffinities(userVec, dst []float32) []float32 {
	dst = resizeF32(dst, len(c.Events))
	vecmath.DotBatch(userVec, c.eventData, c.K, dst)
	return dst
}

// Point materializes the transformed point of pair i (mostly for tests).
func (c *CandidateSet) Point(i int) []float32 {
	p := make([]float32, c.Dims())
	pair := c.Pairs[i]
	copy(p[:c.K], c.Events[pair.Event])
	copy(p[c.K:2*c.K], c.Partners[pair.Partner])
	p[2*c.K] = c.Cross[i]
	return p
}

// Query materializes the transformed query point q_u = (u, u, 1).
func Query(userVec []float32) []float32 {
	k := len(userVec)
	q := make([]float32, 2*k+1)
	copy(q[:k], userVec)
	copy(q[k:2*k], userVec)
	q[2*k] = 1
	return q
}

// Score computes the pair's joint score for the given user vector using
// the untransformed identity u·x + u'·x + u·u'; by construction it equals
// the transformed inner product q_u·p (verified by property test). After
// Pack the row slices alias the contiguous backing arrays, so this reads
// packed memory.
func (c *CandidateSet) Score(userVec []float32, i int) float32 {
	pair := c.Pairs[i]
	xv := c.Events[pair.Event]
	pv := c.Partners[pair.Partner]
	return vecmath.Dot(userVec, xv) + c.Cross[i] + vecmath.Dot(userVec, pv)
}

// BuildConfig controls candidate-set construction.
type BuildConfig struct {
	// TopKEvents keeps only each partner's k highest-scoring events
	// (their own preference u'·x). Zero keeps the full cross product —
	// the paper's unpruned space.
	TopKEvents int
	// Workers bounds build parallelism (0 = serial).
	Workers int
}

// BuildCandidates constructs the transformed candidate space over the
// given event and partner vectors. With pruning enabled, each partner
// contributes only their top-k events, reducing the space from |U|·|X| to
// |U|·k exactly as Section IV proposes: a partner is unlikely to accept
// an invitation to an event they have no interest in.
//
// Every partner contributes exactly min(TopKEvents, |X|) pairs, so the
// pair array is sized up front and filled fully in parallel — including
// the cross terms, which reuse the u'·x scores the pruning pass already
// computed instead of re-deriving them with a second dot product per
// pair. The input vectors are packed (see Pack) as a side effect.
func BuildCandidates(events, partners [][]float32, cfg BuildConfig) (*CandidateSet, error) {
	if len(events) == 0 || len(partners) == 0 {
		return nil, fmt.Errorf("ta: empty event or partner set")
	}
	k := len(events[0])
	for _, v := range events {
		if len(v) != k {
			return nil, fmt.Errorf("ta: inconsistent event vector lengths")
		}
	}
	for _, v := range partners {
		if len(v) != k {
			return nil, fmt.Errorf("ta: partner vector length %d, want %d", len(v), k)
		}
	}
	cs := &CandidateSet{K: k, Events: events, Partners: partners}
	cs.Pack()

	topK := cfg.TopKEvents
	if topK <= 0 || topK > len(events) {
		topK = len(events)
	}
	per := topK
	cs.Pairs = make([]Candidate, per*len(partners))
	cs.Cross = make([]float32, per*len(partners))

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	parallelChunks(len(partners), workers, func(lo, hi int) {
		scores := make([]float32, len(events))
		heap := make([]eventScore, 0, per)
		ids := make([]int32, per)
		for u := lo; u < hi; u++ {
			vecmath.DotBatch(cs.Partners[u], cs.eventData, k, scores)
			sel := selectTopEvents(scores, per, heap, ids)
			base := u * per
			for j, x := range sel {
				cs.Pairs[base+j] = Candidate{Event: x, Partner: int32(u)}
				cs.Cross[base+j] = scores[x]
			}
		}
	})
	return cs, nil
}

// eventScore is one entry of the pruning pass's top-k min-heap.
type eventScore struct {
	x int32
	s float32
}

// selectTopEvents returns the indices of the top-k events by score,
// sorted by event index for deterministic output. Ties keep the earliest
// events, matching the historical behavior (a later event only displaces
// the heap minimum on a strictly greater score). h and out are caller
// scratch; the result aliases out.
func selectTopEvents(scores []float32, k int, h []eventScore, out []int32) []int32 {
	if k >= len(scores) {
		out = out[:len(scores)]
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	h = h[:0]
	for x, s := range scores {
		if len(h) < k {
			// Sift up.
			h = append(h, eventScore{int32(x), s})
			i := len(h) - 1
			for i > 0 {
				p := (i - 1) / 2
				if h[i].s >= h[p].s {
					break
				}
				h[i], h[p] = h[p], h[i]
				i = p
			}
		} else if s > h[0].s {
			// Replace the minimum and sift down.
			h[0] = eventScore{int32(x), s}
			i := 0
			for {
				l, r := 2*i+1, 2*i+2
				m := i
				if l < len(h) && h[l].s < h[m].s {
					m = l
				}
				if r < len(h) && h[r].s < h[m].s {
					m = r
				}
				if m == i {
					break
				}
				h[i], h[m] = h[m], h[i]
				i = m
			}
		}
	}
	out = out[:len(h)]
	for i, e := range h {
		out[i] = e.x
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Result is one recommended event-partner pair with its score.
type Result struct {
	Event   int32
	Partner int32
	Score   float32
}

// Outranks reports whether r precedes o in the canonical result order:
// higher score first, score ties broken by ascending partner then
// ascending event. The tie-break makes top-n selection a total order, so
// the exact answer no longer depends on traversal order — the property
// the sharded engine's heap-merge relies on: the canonical global top-n
// is always contained in the union of canonical per-shard top-n's
// (see internal/engine).
func (r Result) Outranks(o Result) bool {
	if r.Score != o.Score {
		return r.Score > o.Score
	}
	if r.Partner != o.Partner {
		return r.Partner < o.Partner
	}
	return r.Event < o.Event
}

// BruteForceTopN scores every candidate (GEM-BF) and returns the top n in
// the canonical order (score descending, ties by partner then event).
func (c *CandidateSet) BruteForceTopN(userVec []float32, n int) []Result {
	if n <= 0 {
		return nil
	}
	var h resultHeap
	for i := range c.Pairs {
		r := Result{c.Pairs[i].Event, c.Pairs[i].Partner, c.Score(userVec, i)}
		if len(h) < n {
			h.push(r)
		} else if r.Outranks(h[0]) {
			h.replaceMin(r)
		}
	}
	return h.drainDescending(nil)
}

// resultHeap is a min-heap in the canonical order (Result.Outranks), so
// the root is the weakest retained result. The heap is hand-rolled (no
// container/heap) so pushes take no interface boxing allocation — it
// sits on the query hot path.
type resultHeap []Result

// push adds r, sifting up.
func (h *resultHeap) push(r Result) {
	*h = append(*h, r)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s[p].Outranks(s[i]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

// replaceMin overwrites the root with r and sifts down.
func (h resultHeap) replaceMin(r Result) {
	h[0] = r
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		m := i
		if l < len(h) && h[m].Outranks(h[l]) {
			m = l
		}
		if rr < len(h) && h[m].Outranks(h[rr]) {
			m = rr
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// drainDescending empties the heap into dst (reused when its capacity
// suffices, so pooled callers stay allocation-free) in descending score
// order.
func (h *resultHeap) drainDescending(dst []Result) []Result {
	n := len(*h)
	if cap(dst) < n {
		dst = make([]Result, n)
	}
	dst = dst[:n]
	s := *h
	for i := n - 1; i >= 0; i-- {
		dst[i] = s[0]
		last := len(s) - 1
		s[0] = s[last]
		s = s[:last]
		if last > 0 {
			s.replaceMin(s[0])
		}
	}
	*h = (*h)[:0]
	return dst
}
