package ta

import (
	"testing"
	"testing/quick"

	"ebsn/internal/rng"
	"ebsn/internal/vecmath"
)

// filterThenRankOracle is the exhaustive constrained reference: score
// every pair with per-row vecmath.Dot (bit-identical to the packed
// DotBatch passes), drop pairs whose event the predicate disallows or
// whose partner is excluded, and keep the canonical top n of the
// survivors. This is filter-then-rank over the full candidate list —
// trivially exact — and the predicate walk must reproduce it bit for
// bit, tie ordering included.
func filterThenRankOracle(set *CandidateSet, userVec []float32, n int, exclude int32, pred EventPredicate) []Result {
	if n <= 0 {
		return nil
	}
	a := make([]float32, len(set.Events))
	for x := range set.Events {
		a[x] = vecmath.Dot(userVec, set.Events[x])
	}
	b := make([]float32, len(set.Partners))
	for u := range set.Partners {
		b[u] = vecmath.Dot(userVec, set.Partners[u])
	}
	var h resultHeap
	for i := range set.Pairs {
		p := set.Pairs[i]
		if pred != nil && !pred[p.Event] {
			continue
		}
		if p.Partner == exclude {
			continue
		}
		r := Result{p.Event, p.Partner, a[p.Event] + b[p.Partner] + set.Cross[i]}
		if len(h) < n {
			h.push(r)
		} else if r.Outranks(h[0]) {
			h.replaceMin(r)
		}
	}
	return h.drainDescending(nil)
}

// randomPred draws a predicate allowing each event independently with
// probability selectivity.
func randomPred(src *rng.Source, nEvents int, selectivity float64) EventPredicate {
	pred := make(EventPredicate, nEvents)
	for x := range pred {
		pred[x] = src.Float64() < selectivity
	}
	return pred
}

// TestPredicateBitIdenticalToOracle is the push-down exactness property
// test: across random candidate sets, query vectors, result sizes,
// exclusions and filter selectivities (including the degenerate none-
// and all-allowed masks), the predicate walk must return exactly the
// filter-then-rank oracle's results, bit for bit.
func TestPredicateBitIdenticalToOracle(t *testing.T) {
	shapes := []struct {
		nx, nu, k, topK int
	}{
		{25, 15, 6, 0},
		{40, 30, 8, 7},
		{10, 50, 5, 3},
	}
	sc := GetScratch()
	defer PutScratch(sc)
	for seed := uint64(1); seed <= 3; seed++ {
		for _, sh := range shapes {
			cs := buildSmallSet(t, 900+seed, sh.nx, sh.nu, sh.k, sh.topK, true)
			f := NewFastIndex(cs)
			src := rng.New(7000 + seed)
			for _, sel := range []float64{0, 0.1, 0.25, 0.5, 1} {
				pred := randomPred(src, sh.nx, sel)
				u := randomVecs(src, 1, sh.k, true)[0]
				for _, n := range []int{1, 4, 10, sh.nx * sh.nu} {
					for _, exclude := range []int32{-1, int32(src.Uint64() % uint64(sh.nu))} {
						want := filterThenRankOracle(cs, u, n, exclude, pred)
						got, stats := f.TopNExcludingPredScratch(u, n, exclude, pred, sc)
						resultsBitIdentical(t, want, got)
						for _, r := range got {
							if !pred[r.Event] {
								t.Fatalf("sel=%v n=%d: result event %d violates predicate", sel, n, r.Event)
							}
						}
						if stats.RandomAccesses > stats.Candidates {
							t.Fatalf("sel=%v: random accesses %d exceed candidates %d", sel, stats.RandomAccesses, stats.Candidates)
						}
					}
				}
			}
		}
	}
}

// TestPredicateTiesAtFilterBoundary pins tie exactness where it is most
// fragile: duplicated event rows produce exactly tied pair scores, and
// the predicate bans one event of each tied twin — so the surviving twin
// sits precisely at the filter boundary. The walk must keep the allowed
// twin with the oracle's canonical ordering, never the banned one, and
// never drop a tied survivor early via the threshold stop.
func TestPredicateTiesAtFilterBoundary(t *testing.T) {
	src := rng.New(4242)
	k := 6
	base := randomVecs(src, 8, k, true)
	// Events come in identical pairs: event 2j and 2j+1 share a row, so
	// every (event, partner) score ties exactly across the twins.
	events := make([][]float32, 0, 16)
	for _, v := range base {
		dup := make([]float32, k)
		copy(dup, v)
		events = append(events, v, dup)
	}
	partners := randomVecs(src, 12, k, true)
	cs, err := BuildCandidates(events, partners, BuildConfig{TopKEvents: 0, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := NewFastIndex(cs)
	sc := GetScratch()
	defer PutScratch(sc)

	// Ban the even twin of each pair: the allowed odd twin ties the
	// banned one's score exactly.
	pred := make(EventPredicate, len(events))
	for x := range pred {
		pred[x] = x%2 == 1
	}
	for trial := 0; trial < 20; trial++ {
		u := randomVecs(src, 1, k, true)[0]
		for _, n := range []int{1, 5, 12, 40} {
			want := filterThenRankOracle(cs, u, n, -1, pred)
			got, _ := f.TopNExcludingPredScratch(u, n, -1, pred, sc)
			resultsBitIdentical(t, want, got)
			for _, r := range got {
				if r.Event%2 == 0 {
					t.Fatalf("trial=%d n=%d: banned twin event %d surfaced", trial, n, r.Event)
				}
			}
		}
	}
}

// TestNilPredicateBitIdentical pins the bit-identity contract for the
// unrestricted cases: a nil predicate must take the exact unconstrained
// code path, and an all-true predicate must return the same bits as nil
// (the push-down degenerates to the plain walk on identical operands).
func TestNilPredicateBitIdentical(t *testing.T) {
	cs := buildSmallSet(t, 77, 30, 20, 8, 5, true)
	f := NewFastIndex(cs)
	src := rng.New(78)
	sc := GetScratch()
	defer PutScratch(sc)
	allTrue := make(EventPredicate, 30)
	for x := range allTrue {
		allTrue[x] = true
	}
	for trial := 0; trial < 15; trial++ {
		u := randomVecs(src, 1, 8, true)[0]
		for _, n := range []int{1, 7, 25} {
			plain, _ := f.TopNExcludingScratch(u, n, -1, sc)
			want := append([]Result(nil), plain...)
			gotNil, _ := f.TopNExcludingPredScratch(u, n, -1, nil, sc)
			resultsBitIdentical(t, want, gotNil)
			gotAll, _ := f.TopNExcludingPredScratch(u, n, -1, allTrue, sc)
			resultsBitIdentical(t, want, gotAll)
		}
	}
}

// TestPredicateQuantized covers the int8 path: a nil predicate is
// bit-identical to the unconstrained quantized query, every constrained
// result respects the predicate, and the exact re-rank keeps the
// constrained results bit-compatible with the exact constrained path on
// the pairs both return (the survivor cut is the only divergence, as in
// the unconstrained quantized contract).
func TestPredicateQuantized(t *testing.T) {
	cs := buildSmallSet(t, 55, 40, 25, 8, 0, true)
	cs.PackQuantized()
	f := NewFastIndex(cs)
	src := rng.New(56)
	sc := GetScratch()
	defer PutScratch(sc)
	for trial := 0; trial < 10; trial++ {
		u := randomVecs(src, 1, 8, true)[0]
		pred := randomPred(src, 40, 0.3)
		plain, _ := f.TopNExcludingQuantizedScratch(u, 10, -1, sc)
		want := append([]Result(nil), plain...)
		gotNil, _ := f.TopNExcludingQuantizedPredScratch(u, 10, -1, nil, sc)
		resultsBitIdentical(t, want, gotNil)

		got, _ := f.TopNExcludingQuantizedPredScratch(u, 10, -1, pred, sc)
		for _, r := range got {
			if !pred[r.Event] {
				t.Fatalf("trial=%d: quantized result event %d violates predicate", trial, r.Event)
			}
		}
	}
}

// TestPredicateBatch checks the batched predicate path: one shared
// predicate across the batch must return, per user, exactly the bits of
// the sequential constrained query.
func TestPredicateBatch(t *testing.T) {
	cs := buildSmallSet(t, 91, 30, 22, 8, 6, true)
	f := NewFastIndex(cs)
	src := rng.New(92)
	sc := GetScratch()
	defer PutScratch(sc)
	bsc := GetBatchScratch()
	defer PutBatchScratch(bsc)
	users := randomVecs(src, 6, 8, true)
	pred := randomPred(src, 30, 0.25)
	res, _ := f.TopNBatch(BatchQuery{Users: users, N: 8, Pred: pred}, bsc)
	for j, u := range users {
		want, _ := f.TopNExcludingPredScratch(u, 8, -1, pred, sc)
		resultsBitIdentical(t, want, res[j])
	}
}

// TestPredicateSelectivity pins the Selectivity accessor, including the
// nil and empty conventions.
func TestPredicateSelectivity(t *testing.T) {
	if got := EventPredicate(nil).Selectivity(); got != 1 {
		t.Fatalf("nil selectivity = %v, want 1", got)
	}
	if got := (EventPredicate{}).Selectivity(); got != 0 {
		t.Fatalf("empty selectivity = %v, want 0", got)
	}
	if got := (EventPredicate{true, false, true, false}).Selectivity(); got != 0.5 {
		t.Fatalf("selectivity = %v, want 0.5", got)
	}
}

// TestPredicateTightensBound is the push-down efficiency property: the
// constrained walk must terminate no later than the same constrained
// query run with the slack unconstrained bound. The comparison holds the
// result set fixed (both walks answer the constrained query; only the
// amax in the partner bounds differs), which is the actual theorem —
// the constrained walk's access counts are NOT comparable to the
// unconstrained query's, whose result set differs.
func TestPredicateTightensBound(t *testing.T) {
	f := func(seed uint64) bool {
		cs := buildSmallSet(t, seed, 30, 20, 6, 0, true)
		idx := NewFastIndex(cs)
		src := rng.New(seed ^ 0x5eed)
		u := randomVecs(src, 1, 6, true)[0]
		pred := randomPred(src, 30, 0.25)
		sc := GetScratch()
		defer PutScratch(sc)
		_, tight := idx.TopNExcludingPredScratch(u, 10, -1, pred, sc)
		slack := slackBoundConstrainedAccesses(idx, u, 10, pred)
		return tight.SortedAccesses <= slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// slackBoundConstrainedAccesses runs the constrained walk with the
// unconstrained amax in the partner bounds — the push-down minus the
// bound tightening — and returns the sorted accesses it consumes.
func slackBoundConstrainedAccesses(f *FastIndex, userVec []float32, n int, pred EventPredicate) int {
	set := f.set
	a := make([]float32, len(set.Events))
	for x := range set.Events {
		a[x] = vecmath.Dot(userVec, set.Events[x])
	}
	b := make([]float32, len(set.Partners))
	for u := range set.Partners {
		b[u] = vecmath.Dot(userVec, set.Partners[u])
	}
	var amax float32
	for x, v := range a {
		if x == 0 || v > amax {
			amax = v // unconstrained: the slack bound
		}
	}
	bounds := make([]partnerBound, 0, len(set.Partners))
	for u := range set.Partners {
		if f.partnerStart[u] == f.partnerStart[u+1] {
			continue
		}
		bounds = append(bounds, partnerBound{int32(u), b[u] + amax + f.maxCross[u]})
	}
	heapifyBounds(bounds)
	var h resultHeap
	sorted := 0
	for len(bounds) > 0 {
		top := bounds[0]
		if len(h) == n && h[0].Score > top.bound {
			break
		}
		last := len(bounds) - 1
		bounds[0] = bounds[last]
		bounds = bounds[:last]
		if last > 0 {
			siftDownBounds(bounds, 0)
		}
		sorted++
		u := top.u
		for oi := f.partnerStart[u]; oi < f.partnerStart[u+1]; oi++ {
			i := f.order[oi]
			x := set.Pairs[i].Event
			if !pred[x] {
				continue
			}
			r := Result{x, u, a[x] + b[u] + set.Cross[i]}
			if len(h) < n {
				h.push(r)
			} else if r.Outranks(h[0]) {
				h.replaceMin(r)
			}
		}
	}
	return sorted
}
