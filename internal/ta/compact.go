package ta

// FoldDelta builds a fresh candidate set and index covering base plus
// the delta view, without mutating either: event and partner row headers
// are copied into new containers before the index build re-aliases them
// into new packed storage, so queries over base (and appends to the
// delta past the view) proceed concurrently while the fold runs. Delta
// events are appended after the base events in arrival order — a delta
// event at position i lands at index len(base.Events)+i, the same
// effective index the delta overlay ranks it under — and their pairs
// keep the cross terms computed at arrival, so the folded index is
// bit-identical to an in-place rebuild. workers bounds the index-build
// parallelism (0 = GOMAXPROCS, the NewFastIndexWorkers default).
func FoldDelta(base *CandidateSet, v DeltaView, workers int) (*CandidateSet, *FastIndex) {
	nb := len(base.Events)
	events := make([][]float32, nb+len(v.Events))
	copy(events, base.Events)
	copy(events[nb:], v.Events)
	partners := make([][]float32, len(base.Partners))
	copy(partners, base.Partners)

	pairs := make([]Candidate, len(base.Pairs)+len(v.Pairs))
	copy(pairs, base.Pairs)
	for i, p := range v.Pairs {
		pairs[len(base.Pairs)+i] = Candidate{Event: p.Event + int32(nb), Partner: p.Partner}
	}
	cross := make([]float32, len(base.Cross)+len(v.Cross))
	copy(cross, base.Cross)
	copy(cross[len(base.Cross):], v.Cross)

	set := &CandidateSet{K: base.K, Events: events, Partners: partners, Pairs: pairs, Cross: cross}
	idx := NewFastIndexWorkers(set, workers)
	return set, idx
}

// Compaction is one in-flight fold of a Dynamic's delta into a fresh
// main index. BeginCompact captures the work cheaply under the caller's
// writer lock; Run does the expensive build with no lock held (queries
// and further AddEvent calls proceed against the old tiers); Install
// swaps the result in under the writer lock again — a pointer swap, not
// a rebuild.
type Compaction struct {
	baseSet *CandidateSet
	view    DeltaView

	// Set and Idx are the folded main tier, populated by Run.
	Set *CandidateSet
	Idx *FastIndex
}

// Events returns the number of delta events this compaction folds.
func (c *Compaction) Events() int { return len(c.view.Events) }

// Run performs the fold. It holds no reference to the Dynamic and may
// run on any goroutine; the capture/install steps carry the mutual
// exclusion.
func (c *Compaction) Run(workers int) {
	c.Set, c.Idx = FoldDelta(c.baseSet, c.view, workers)
}

// BeginCompact captures the current delta as a compaction unit, or nil
// when the delta is empty. Serialize with AddEvent/Install (the same
// writer lock); the returned compaction's Run needs no lock.
func (d *Dynamic) BeginCompact() *Compaction {
	if d.delta.Events() == 0 {
		return nil
	}
	return &Compaction{baseSet: d.set, view: d.delta.View()}
}

// Install swaps the compaction's folded index in as the main tier and
// drops the folded prefix from the delta (events ingested after
// BeginCompact remain queued). Serialize with AddEvent and queries; the
// call is two pointer swaps plus the residual-delta copy.
func (d *Dynamic) Install(c *Compaction) {
	d.set, d.idx = c.Set, c.Idx
	d.delta.Advance(c.view)
}
