package ta

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/crc64"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// This file implements the zero-copy index artifact: the *built* joint
// index — packed candidate rows, the per-partner FastIndex grouping and
// bounds, the int8-quantized mirrors, and the engine's shard partition
// table — serialized into one versioned, CRC'd, page-aligned sidecar
// file. Opening an artifact maps the file (mmap on unix, a heap read
// elsewhere) and aliases every slice of every CandidateSet/FastIndex
// directly onto the mapped pages, so loading a built index costs a map
// plus one checksum pass instead of a rebuild, and the large float32
// arrays live outside the GC heap.
//
// Layout (header scalars big-endian; bulk sections native-endian, with
// a byte-order marker so a foreign-endian artifact reads as stale):
//
//	[0:8)    magic "EBSNIDX1"
//	[8:12)   format version
//	[12:16)  native byte-order marker 0x01020304
//	[16:24)  build fingerprint (see Fingerprint)
//	[24:28)  flags (bit 0: quantized sections present)
//	[28:32)  embedding dimension K
//	[32:36)  segment (shard) count
//	[36:40)  global partner count
//	[40:48)  total file size
//	[48:52)  CRC32-IEEE of the segment directory
//	[52:56)  CRC32-IEEE of header bytes [0:52)
//	[56:64)  reserved
//
// A segment directory follows: per segment its partner range [lo, hi),
// event and pair counts, then per section a file offset and CRC32.
// Sections are page-aligned and ordered eventData, partnerData, pairs,
// cross, order, partnerStart, maxCross, and — when the quantized flag
// is set — eventQ, partnerQ, eventScale, partnerScale; their byte
// lengths are derived from the counts, never read from the file.

const (
	artifactMagic      = "EBSNIDX1"
	artifactVersion    = 1
	artifactHeaderLen  = 64
	artifactAlign      = 4096 // section alignment: one page, mmap-friendly
	artifactEndianMark = 0x01020304

	artifactFlagQuantized = 1 << 0

	exactSections = 7 // eventData partnerData pairs cross order partnerStart maxCross
	quantSections = 4 // eventQ partnerQ eventScale partnerScale

	maxArtifactSegments = 1 << 16
	maxArtifactDim      = 1 << 20
)

// Artifact error classes, matchable with errors.Is. Corrupt means the
// bytes fail structural validation (bad magic, checksum mismatch,
// truncation, impossible geometry); stale means the file is internally
// sound but does not describe the caller's index (format version skew,
// foreign byte order, fingerprint mismatch after a retrain). Both are
// recoverable by rebuilding the index and rewriting the artifact.
var (
	ErrArtifactCorrupt = errors.New("index artifact corrupt")
	ErrArtifactStale   = errors.New("index artifact stale")
)

// Candidate must stay two int32s: the artifact encodes the pair table
// as raw native-endian memory. This fails to compile if the size drifts.
var _ = [1]struct{}{}[unsafe.Sizeof(Candidate{})-8]

// mappedBytes tracks the bytes of artifact storage currently open
// (resident outside the GC heap on platforms with a real mmap).
var mappedBytes atomic.Int64

// MappedBytes returns the total bytes of index artifact storage
// currently open across the process — the backing of every Artifact
// not yet closed or collected. On unix this memory is mapped from the
// artifact files and lives outside the Go heap.
func MappedBytes() int64 { return mappedBytes.Load() }

// mapping is the backing storage of an open artifact: an OS file
// mapping on unix, a heap copy of the file elsewhere (see mapFile in
// the build-tagged mmap files). close is idempotent; a finalizer closes
// mappings whose Artifact was dropped without an explicit Close.
type mapping struct {
	data    []byte
	mmapped bool // data is an OS mapping, released by munmap
	closed  atomic.Bool
}

// close releases the backing storage once; later calls are no-ops.
func (m *mapping) close() error {
	if m.closed.Swap(true) {
		return nil
	}
	mappedBytes.Add(-int64(len(m.data)))
	err := m.release()
	m.data = nil
	return err
}

// Segment is one shard of a joint index: the partner range [Lo, Hi) it
// owns within the global partner space, its candidate set, and its
// FastIndex. WriteArtifact consumes segments; OpenArtifact yields them
// with every slice aliasing the artifact's backing storage.
type Segment struct {
	Lo, Hi int32
	Set    *CandidateSet
	Idx    *FastIndex
}

// Artifact is an open index artifact. Its segments' sets and indexes
// alias the backing storage directly — they are valid until the
// artifact is closed, and each set pins the artifact, so dropping every
// reference lets a finalizer release the mapping. Close releases it
// eagerly and must not race in-flight queries over the segments.
type Artifact struct {
	k           int
	nPartners   int
	quantized   bool
	fingerprint uint64
	segments    []Segment
	m           *mapping
}

// K returns the embedding dimension of the artifact's index.
func (a *Artifact) K() int { return a.k }

// Partners returns the global partner count the segments partition.
func (a *Artifact) Partners() int { return a.nPartners }

// Quantized reports whether the artifact carries the int8-quantized
// candidate mirrors (its sets then answer Quantized() true).
func (a *Artifact) Quantized() bool { return a.quantized }

// Fingerprint returns the build fingerprint stored in the artifact.
func (a *Artifact) Fingerprint() uint64 { return a.fingerprint }

// Segments returns the shard segments in partner order. The segments
// alias the artifact's storage; see Artifact.
func (a *Artifact) Segments() []Segment { return a.segments }

// Size returns the artifact's backing size in bytes.
func (a *Artifact) Size() int64 { return int64(len(a.m.data)) }

// Close releases the backing storage. After Close every segment's
// slices are invalid (on unix the pages are unmapped); the caller must
// guarantee no query still reads them. Safe to call more than once.
func (a *Artifact) Close() error {
	runtime.SetFinalizer(a.m, nil)
	return a.m.close()
}

// fingerprintTable is the CRC64 polynomial used by Fingerprint.
var fingerprintTable = crc64.MakeTable(crc64.ECMA)

// Fingerprint hashes the inputs that determine a built joint index —
// scalar build parameters (dimension, pruning, shard count, counts)
// followed by the raw bytes of every embedding row — into the staleness
// check stored in an artifact: a retrain, a different dataset, or a
// different build configuration all change it. Row bytes are hashed in
// native endianness; that is safe because the artifact's byte-order
// marker already rejects foreign-endian files.
func Fingerprint(params []uint64, rowSets ...[][]float32) uint64 {
	h := crc64.New(fingerprintTable)
	var buf [8]byte
	for _, p := range params {
		binary.LittleEndian.PutUint64(buf[:], p)
		h.Write(buf[:])
	}
	for _, rows := range rowSets {
		for _, r := range rows {
			h.Write(f32Bytes(r))
		}
	}
	return h.Sum64()
}

// WriteArtifact serializes the built index segments into an artifact at
// path, atomically (temp file + fsync + rename, like the model
// snapshots): a crash mid-write never corrupts a previous artifact.
// The segments must partition [0, nPartners) contiguously; quantized
// sections are written only when every segment's set carries them. The
// fingerprint should come from Fingerprint over the build inputs —
// OpenArtifact refuses the file as stale unless the caller presents the
// same value.
func WriteArtifact(path string, fingerprint uint64, k, nPartners int, segs []Segment) error {
	if k < 1 || k > maxArtifactDim {
		return fmt.Errorf("ta: artifact dimension %d out of range", k)
	}
	if len(segs) == 0 || len(segs) > maxArtifactSegments {
		return fmt.Errorf("ta: artifact needs 1..%d segments, got %d", maxArtifactSegments, len(segs))
	}
	quantized := true
	var lo int32
	for i, s := range segs {
		if s.Set == nil || s.Idx == nil || s.Idx.set != s.Set {
			return fmt.Errorf("ta: artifact segment %d: set/index mismatch", i)
		}
		if s.Lo != lo || s.Hi <= s.Lo {
			return fmt.Errorf("ta: artifact segments must partition the partner space contiguously")
		}
		if int(s.Hi-s.Lo) != len(s.Set.Partners) {
			return fmt.Errorf("ta: artifact segment %d: partner range %d..%d vs %d partner rows",
				i, s.Lo, s.Hi, len(s.Set.Partners))
		}
		np := len(s.Set.Pairs)
		if len(s.Set.Cross) != np || len(s.Idx.order) != np ||
			len(s.Idx.partnerStart) != len(s.Set.Partners)+1 ||
			len(s.Idx.maxCross) != len(s.Set.Partners) {
			return fmt.Errorf("ta: artifact segment %d: inconsistent index geometry", i)
		}
		s.Set.Pack()
		if !s.Set.quantized {
			quantized = false
		}
		lo = s.Hi
	}
	if int(lo) != nPartners {
		return fmt.Errorf("ta: artifact segments cover %d partners, want %d", lo, nPartners)
	}

	nsec := exactSections
	flags := uint32(0)
	if quantized {
		nsec += quantSections
		flags |= artifactFlagQuantized
	}

	// Lay out the directory and the page-aligned sections.
	type section struct {
		off  uint64
		data []byte
	}
	recSize := 16 + nsec*12
	dir := make([]byte, 0, len(segs)*recSize)
	var sections []section
	pos := uint64(artifactHeaderLen + len(segs)*recSize)
	for _, s := range segs {
		dir = binary.BigEndian.AppendUint32(dir, uint32(s.Lo))
		dir = binary.BigEndian.AppendUint32(dir, uint32(s.Hi))
		dir = binary.BigEndian.AppendUint32(dir, uint32(len(s.Set.Events)))
		dir = binary.BigEndian.AppendUint32(dir, uint32(len(s.Set.Pairs)))
		for _, b := range s.sectionViews(quantized) {
			pos = (pos + artifactAlign - 1) &^ (artifactAlign - 1)
			dir = binary.BigEndian.AppendUint64(dir, pos)
			dir = binary.BigEndian.AppendUint32(dir, crc32.ChecksumIEEE(b))
			sections = append(sections, section{off: pos, data: b})
			pos += uint64(len(b))
		}
	}
	total := pos

	hdr := make([]byte, artifactHeaderLen)
	copy(hdr, artifactMagic)
	binary.BigEndian.PutUint32(hdr[8:], artifactVersion)
	binary.NativeEndian.PutUint32(hdr[12:], artifactEndianMark)
	binary.BigEndian.PutUint64(hdr[16:], fingerprint)
	binary.BigEndian.PutUint32(hdr[24:], flags)
	binary.BigEndian.PutUint32(hdr[28:], uint32(k))
	binary.BigEndian.PutUint32(hdr[32:], uint32(len(segs)))
	binary.BigEndian.PutUint32(hdr[36:], uint32(nPartners))
	binary.BigEndian.PutUint64(hdr[40:], total)
	binary.BigEndian.PutUint32(hdr[48:], crc32.ChecksumIEEE(dir))
	binary.BigEndian.PutUint32(hdr[52:], crc32.ChecksumIEEE(hdr[:52]))

	// Atomic save, mirroring core.SaveFile: temp in the same directory,
	// fsync, rename, best-effort directory sync.
	dirName := filepath.Dir(path)
	f, err := os.CreateTemp(dirName, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ta: save artifact: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	w := bufio.NewWriterSize(f, 1<<20)
	written := uint64(0)
	emit := func(b []byte) {
		if err == nil {
			_, err = w.Write(b)
			written += uint64(len(b))
		}
	}
	emit(hdr)
	emit(dir)
	var zero [artifactAlign]byte
	for _, s := range sections {
		for written < s.off && err == nil {
			pad := s.off - written
			if pad > artifactAlign {
				pad = artifactAlign
			}
			emit(zero[:pad])
		}
		emit(s.data)
	}
	if err != nil {
		return fmt.Errorf("ta: save artifact: %w", err)
	}
	if err = w.Flush(); err != nil {
		return fmt.Errorf("ta: save artifact: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("ta: save artifact: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("ta: save artifact: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("ta: save artifact: %w", err)
	}
	if d, derr := os.Open(dirName); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// sectionViews returns the segment's section byte views in file order.
func (s Segment) sectionViews(quantized bool) [][]byte {
	views := [][]byte{
		f32Bytes(s.Set.eventData),
		f32Bytes(s.Set.partnerData),
		candBytes(s.Set.Pairs),
		f32Bytes(s.Set.Cross),
		i32Bytes(s.Idx.order),
		i32Bytes(s.Idx.partnerStart),
		f32Bytes(s.Idx.maxCross),
	}
	if quantized {
		views = append(views,
			i8Bytes(s.Set.eventQ),
			i8Bytes(s.Set.partnerQ),
			f32Bytes(s.Set.eventScale),
			f32Bytes(s.Set.partnerScale))
	}
	return views
}

// OpenArtifact opens the artifact at path zero-copy: the file is mapped
// (or, on platforms without mmap, read into the heap once) and the
// returned segments' sets and indexes alias the mapped pages directly.
// Every section checksum is verified before the artifact is accepted —
// one sequential pass over the file, orders of magnitude cheaper than a
// rebuild. The caller's fingerprint (from Fingerprint over its current
// build inputs) must match the stored one, or the artifact is rejected
// as ErrArtifactStale; structural damage is ErrArtifactCorrupt; a
// missing file surfaces as the underlying fs.ErrNotExist. Callers treat
// all three the same way: rebuild, and rewrite the artifact.
func OpenArtifact(path string, fingerprint uint64) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < artifactHeaderLen {
		return nil, fmt.Errorf("ta: %s: %d-byte file, truncated header: %w", path, size, ErrArtifactCorrupt)
	}
	m, err := mapFile(f, size)
	if err != nil {
		return nil, fmt.Errorf("ta: map %s: %w", path, err)
	}
	a, err := decodeArtifact(m, fingerprint)
	if err != nil {
		m.release()
		return nil, fmt.Errorf("ta: %s: %w", path, err)
	}
	mappedBytes.Add(size)
	runtime.SetFinalizer(m, func(m *mapping) { m.close() })
	return a, nil
}

// decodeArtifact validates the mapped bytes and builds the segments,
// aliasing every slice onto the mapping. It performs the full check
// sequence: magic → version → byte order → header CRC → size →
// fingerprint → directory CRC → per-section geometry, alignment and
// CRC → index-content invariants.
func decodeArtifact(m *mapping, want uint64) (*Artifact, error) {
	b := m.data
	if len(b) < artifactHeaderLen {
		return nil, fmt.Errorf("truncated header: %w", ErrArtifactCorrupt)
	}
	if string(b[:8]) != artifactMagic {
		return nil, fmt.Errorf("bad magic: %w", ErrArtifactCorrupt)
	}
	if v := binary.BigEndian.Uint32(b[8:]); v != artifactVersion {
		return nil, fmt.Errorf("format version %d, want %d: %w", v, artifactVersion, ErrArtifactStale)
	}
	if e := binary.NativeEndian.Uint32(b[12:]); e != artifactEndianMark {
		return nil, fmt.Errorf("foreign byte order: %w", ErrArtifactStale)
	}
	if crc32.ChecksumIEEE(b[:52]) != binary.BigEndian.Uint32(b[52:56]) {
		return nil, fmt.Errorf("header checksum mismatch: %w", ErrArtifactCorrupt)
	}
	if total := binary.BigEndian.Uint64(b[40:]); total != uint64(len(b)) {
		return nil, fmt.Errorf("file is %d bytes, header says %d: %w", len(b), total, ErrArtifactCorrupt)
	}
	fp := binary.BigEndian.Uint64(b[16:])
	if fp != want {
		return nil, fmt.Errorf("fingerprint %016x, current build inputs give %016x: %w", fp, want, ErrArtifactStale)
	}
	flags := binary.BigEndian.Uint32(b[24:])
	if flags&^uint32(artifactFlagQuantized) != 0 {
		return nil, fmt.Errorf("unknown flags %#x: %w", flags, ErrArtifactStale)
	}
	quantized := flags&artifactFlagQuantized != 0
	k := int(binary.BigEndian.Uint32(b[28:]))
	nseg := int(binary.BigEndian.Uint32(b[32:]))
	nPartners := int(binary.BigEndian.Uint32(b[36:]))
	if k < 1 || k > maxArtifactDim || nseg < 1 || nseg > maxArtifactSegments || nPartners < nseg {
		return nil, fmt.Errorf("impossible geometry (k=%d segments=%d partners=%d): %w", k, nseg, nPartners, ErrArtifactCorrupt)
	}
	nsec := exactSections
	if quantized {
		nsec += quantSections
	}
	recSize := 16 + nsec*12
	dirEnd := artifactHeaderLen + nseg*recSize
	if dirEnd > len(b) {
		return nil, fmt.Errorf("truncated directory: %w", ErrArtifactCorrupt)
	}
	dir := b[artifactHeaderLen:dirEnd]
	if crc32.ChecksumIEEE(dir) != binary.BigEndian.Uint32(b[48:52]) {
		return nil, fmt.Errorf("directory checksum mismatch: %w", ErrArtifactCorrupt)
	}

	a := &Artifact{k: k, nPartners: nPartners, quantized: quantized, fingerprint: fp, m: m}
	prevHi := int64(0)
	for si := 0; si < nseg; si++ {
		rec := dir[si*recSize : (si+1)*recSize]
		lo := int64(binary.BigEndian.Uint32(rec[0:]))
		hi := int64(binary.BigEndian.Uint32(rec[4:]))
		ne := int64(binary.BigEndian.Uint32(rec[8:]))
		np := int64(binary.BigEndian.Uint32(rec[12:]))
		if lo != prevHi || hi <= lo || hi > int64(nPartners) {
			return nil, fmt.Errorf("segment %d: broken partner partition: %w", si, ErrArtifactCorrupt)
		}
		nsp := hi - lo
		sizes := []int64{ne * int64(k) * 4, nsp * int64(k) * 4, np * 8, np * 4, np * 4, (nsp + 1) * 4, nsp * 4}
		if quantized {
			sizes = append(sizes, ne*int64(k), nsp*int64(k), ne*4, nsp*4)
		}
		secs := make([][]byte, len(sizes))
		for j, sz := range sizes {
			off := int64(binary.BigEndian.Uint64(rec[16+j*12:]))
			crc := binary.BigEndian.Uint32(rec[16+j*12+8:])
			if off%8 != 0 || off < int64(dirEnd) || sz < 0 || off+sz > int64(len(b)) {
				return nil, fmt.Errorf("segment %d section %d: out of bounds: %w", si, j, ErrArtifactCorrupt)
			}
			sec := b[off : off+sz : off+sz]
			if crc32.ChecksumIEEE(sec) != crc {
				return nil, fmt.Errorf("segment %d section %d: checksum mismatch: %w", si, j, ErrArtifactCorrupt)
			}
			secs[j] = sec
		}

		eventData := bytesF32(secs[0])
		partnerData := bytesF32(secs[1])
		pairs := bytesCand(secs[2])
		cross := bytesF32(secs[3])
		order := bytesI32(secs[4])
		partnerStart := bytesI32(secs[5])
		maxCross := bytesF32(secs[6])
		for _, p := range pairs {
			if int64(p.Event) >= ne || p.Event < 0 || int64(p.Partner) >= nsp || p.Partner < 0 {
				return nil, fmt.Errorf("segment %d: pair out of range: %w", si, ErrArtifactCorrupt)
			}
		}
		for _, o := range order {
			if int64(o) >= np || o < 0 {
				return nil, fmt.Errorf("segment %d: order entry out of range: %w", si, ErrArtifactCorrupt)
			}
		}
		if partnerStart[0] != 0 || int64(partnerStart[nsp]) != np {
			return nil, fmt.Errorf("segment %d: broken partner grouping: %w", si, ErrArtifactCorrupt)
		}
		for u := int64(0); u < nsp; u++ {
			if partnerStart[u] > partnerStart[u+1] {
				return nil, fmt.Errorf("segment %d: broken partner grouping: %w", si, ErrArtifactCorrupt)
			}
		}

		set := &CandidateSet{
			K:           k,
			Events:      sliceRows(eventData, int(ne), k),
			Partners:    sliceRows(partnerData, int(nsp), k),
			Pairs:       pairs,
			Cross:       cross,
			eventData:   eventData,
			partnerData: partnerData,
			mapped:      true,
			owner:       a,
		}
		if quantized {
			set.eventQ = bytesI8(secs[7])
			set.partnerQ = bytesI8(secs[8])
			set.eventScale = bytesF32(secs[9])
			set.partnerScale = bytesF32(secs[10])
			set.quantized = true
		}
		idx := &FastIndex{set: set, order: order, partnerStart: partnerStart, maxCross: maxCross}
		a.segments = append(a.segments, Segment{Lo: int32(lo), Hi: int32(hi), Set: set, Idx: idx})
		prevHi = hi
	}
	if prevHi != int64(nPartners) {
		return nil, fmt.Errorf("segments cover %d partners, header says %d: %w", prevHi, nPartners, ErrArtifactCorrupt)
	}
	return a, nil
}

// sliceRows re-creates the per-row slice headers over a packed
// row-major array, capacity-clamped so an append can never scribble
// into the neighbouring row (or the mapped page after it).
func sliceRows(data []float32, n, k int) [][]float32 {
	rows := make([][]float32, n)
	for i := range rows {
		rows[i] = data[i*k : (i+1)*k : (i+1)*k]
	}
	return rows
}

// The casts below reinterpret typed slices as raw native-endian bytes
// and back. Sections are written page-aligned and the heap fallback
// allocates word-aligned, so every element type's alignment (≤ 8) is
// satisfied.

// f32Bytes returns the raw bytes of a float32 slice (nil for empty).
func f32Bytes(s []float32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

// i32Bytes returns the raw bytes of an int32 slice (nil for empty).
func i32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

// i8Bytes returns the raw bytes of an int8 slice (nil for empty).
func i8Bytes(s []int8) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s))
}

// candBytes returns the raw bytes of a Candidate slice (nil for empty).
func candBytes(s []Candidate) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

// bytesF32 views raw bytes as float32s (nil for empty).
func bytesF32(b []byte) []float32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// bytesI32 views raw bytes as int32s (nil for empty).
func bytesI32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// bytesI8 views raw bytes as int8s (nil for empty).
func bytesI8(b []byte) []int8 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int8)(unsafe.Pointer(&b[0])), len(b))
}

// bytesCand views raw bytes as Candidates (nil for empty).
func bytesCand(b []byte) []Candidate {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*Candidate)(unsafe.Pointer(&b[0])), len(b)/8)
}
