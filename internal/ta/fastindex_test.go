package ta

import (
	"testing"
	"testing/quick"

	"ebsn/internal/rng"
)

func TestFastIndexMatchesBruteForce(t *testing.T) {
	for _, signed := range []bool{false, true} {
		for _, topK := range []int{0, 7} {
			cs := buildSmallSet(t, 61, 40, 25, 8, topK, signed)
			f := NewFastIndex(cs)
			src := rng.New(62)
			for trial := 0; trial < 25; trial++ {
				u := randomVecs(src, 1, 8, signed)[0]
				for _, n := range []int{1, 5, 10} {
					bf := cs.BruteForceTopN(u, n)
					res, stats := f.TopN(u, n)
					if len(res) != len(bf) {
						t.Fatalf("signed=%v topK=%d n=%d: %d results vs BF %d", signed, topK, n, len(res), len(bf))
					}
					for i := range bf {
						if !approxEqual(res[i].Score, bf[i].Score) {
							t.Fatalf("signed=%v topK=%d trial=%d n=%d rank=%d: fast %v vs BF %v",
								signed, topK, trial, n, i, res[i].Score, bf[i].Score)
						}
					}
					if stats.RandomAccesses > stats.Candidates {
						t.Fatal("accesses exceed candidates")
					}
				}
			}
		}
	}
}

func TestFastIndexMatchesBruteForceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		cs := buildSmallSet(t, seed, 12, 9, 4, 0, true)
		fi := NewFastIndex(cs)
		src := rng.New(seed ^ 0x77)
		u := randomVecs(src, 1, 4, true)[0]
		bf := cs.BruteForceTopN(u, 5)
		res, _ := fi.TopN(u, 5)
		if len(bf) != len(res) {
			return false
		}
		for i := range bf {
			if !approxEqual(bf[i].Score, res[i].Score) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFastIndexPrunesOnStructuredData(t *testing.T) {
	// With spread-out partner affinities, most partners' bounds fall
	// below the running top-n and their pairs are never materialized.
	src := rng.New(63)
	events := randomVecs(src, 100, 16, false)
	partners := randomVecs(src, 800, 16, false)
	cs, err := BuildCandidates(events, partners, BuildConfig{TopKEvents: 10, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	f := NewFastIndex(cs)
	u := randomVecs(src, 1, 16, false)[0]
	res, stats := f.TopN(u, 10)
	if len(res) != 10 {
		t.Fatalf("got %d results", len(res))
	}
	if frac := stats.AccessFraction(); frac > 0.5 {
		t.Errorf("fast index materialized %.0f%% of pairs", frac*100)
	}
}

func TestFastIndexDegenerateInputs(t *testing.T) {
	cs := buildSmallSet(t, 65, 8, 5, 4, 0, true)
	f := NewFastIndex(cs)
	zero := make([]float32, 4)
	if res, _ := f.TopN(zero, 0); res != nil {
		t.Error("n=0 returned results")
	}
	res, _ := f.TopN(zero, 1000)
	if len(res) != len(cs.Pairs) {
		t.Errorf("n>candidates returned %d of %d", len(res), len(cs.Pairs))
	}
	bf := cs.BruteForceTopN(zero, 3)
	got, _ := f.TopN(zero, 3)
	for i := range bf {
		if !approxEqual(bf[i].Score, got[i].Score) {
			t.Fatalf("zero-query mismatch at %d", i)
		}
	}
}

func BenchmarkFastIndexTop10(b *testing.B) {
	src := rng.New(66)
	events := randomVecs(src, 400, 16, false)
	partners := randomVecs(src, 1000, 16, false)
	cs, err := BuildCandidates(events, partners, BuildConfig{TopKEvents: 40, Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	f := NewFastIndex(cs)
	u := randomVecs(src, 1, 16, false)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.TopN(u, 10)
	}
}

func TestFastIndexExcluding(t *testing.T) {
	cs := buildSmallSet(t, 71, 20, 10, 6, 0, true)
	f := NewFastIndex(cs)
	src := rng.New(72)
	u := randomVecs(src, 1, 6, true)[0]
	const exclude = int32(3)
	res, _ := f.TopNExcluding(u, 8, exclude)
	if len(res) != 8 {
		t.Fatalf("got %d results", len(res))
	}
	for _, r := range res {
		if r.Partner == exclude {
			t.Fatal("excluded partner present")
		}
	}
	// Against a filtered brute force.
	bf := cs.BruteForceTopN(u, len(cs.Pairs))
	var want []Result
	for _, r := range bf {
		if r.Partner != exclude {
			want = append(want, r)
		}
		if len(want) == 8 {
			break
		}
	}
	for i := range want {
		if !approxEqual(want[i].Score, res[i].Score) {
			t.Fatalf("rank %d: %v vs filtered BF %v", i, res[i].Score, want[i].Score)
		}
	}
}
