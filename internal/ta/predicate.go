package ta

import (
	"fmt"
	"time"

	"ebsn/internal/vecmath"
)

// Constrained queries push an event filter *into* the threshold walk
// instead of post-filtering its output. Post-filtering an exact top-n is
// not exact: to guarantee n surviving results the caller must overfetch
// an unbounded amount (the filter may reject every one of the first N
// pairs for any fixed N). Pushing the filter down restores exactness and
// tightens the bound that drives early termination: the per-partner
// bound b(u') + amax + maxCross(u') uses amax = max over *allowed*
// events of a(x), which is ≤ the unconstrained maximum, while
// maxCross(u') remains a valid upper bound over the surviving subset of
// u's pairs. The constrained walk therefore terminates no later than the
// same constrained query run with the slack unconstrained bound — and,
// unlike post-filtering, it never re-ranks rejected pairs at all. (Its
// access counts are not comparable to the *unconstrained* query's: a
// filter that bans the easy winners legitimately walks deeper.) See
// DESIGN.md §3.10.

// EventPredicate restricts a top-n search to a subset of the candidate
// set's events: entry x reports whether event x (in candidate-set event
// indices) may appear in results. A nil predicate means unrestricted,
// and every predicate-taking variant with a nil predicate returns
// results bit-identical to its unconstrained counterpart — same pairs,
// same score bits, same tie order. A non-nil predicate's length must
// equal the candidate set's event count.
type EventPredicate []bool

// Selectivity returns the allowed-event fraction in [0, 1]; a nil
// predicate is fully permissive and returns 1.
func (p EventPredicate) Selectivity() float64 {
	if p == nil {
		return 1
	}
	if len(p) == 0 {
		return 0
	}
	allowed := 0
	for _, ok := range p {
		if ok {
			allowed++
		}
	}
	return float64(allowed) / float64(len(p))
}

// checkPred panics when a non-nil predicate's length does not cover the
// set's events — the one shape error a caller can make.
func (c *CandidateSet) checkPred(pred EventPredicate) {
	if pred != nil && len(pred) != len(c.Events) {
		panic(fmt.Sprintf("ta: predicate has %d entries, want %d events", len(pred), len(c.Events)))
	}
}

// TopNExcludingPred is TopNExcluding restricted to predicate-allowed
// events. Results are the exact top n among pairs whose event the
// predicate allows, in canonical order; fewer than n are returned when
// fewer allowed pairs exist. A nil predicate is bit-identical to
// TopNExcluding.
func (f *FastIndex) TopNExcludingPred(userVec []float32, n int, exclude int32, pred EventPredicate) ([]Result, SearchStats) {
	sc := GetScratch()
	defer PutScratch(sc)
	return f.topNExcludingPred(userVec, nil, n, exclude, pred, sc, nil)
}

// TopNExcludingPredScratch is TopNExcludingPred with caller-managed
// scratch; results alias sc like TopNExcludingScratch.
func (f *FastIndex) TopNExcludingPredScratch(userVec []float32, n int, exclude int32, pred EventPredicate, sc *Scratch) ([]Result, SearchStats) {
	res, stats := f.topNExcludingPred(userVec, nil, n, exclude, pred, sc, sc.out[:0])
	sc.out = res[:0]
	return res, stats
}

// TopNExcludingPredAffScratch is TopNExcludingPredScratch with the
// event-affinity pass precomputed. The pass covers *all* events (it is
// the same shard-invariant prepass the unconstrained engine shares), so
// one prepass serves constrained and unconstrained queries alike; the
// predicate only gates which entries the walk may select.
func (f *FastIndex) TopNExcludingPredAffScratch(userVec, eventAff []float32, n int, exclude int32, pred EventPredicate, sc *Scratch) ([]Result, SearchStats) {
	res, stats := f.topNExcludingPred(userVec, eventAff, n, exclude, pred, sc, sc.out[:0])
	sc.out = res[:0]
	return res, stats
}

func (f *FastIndex) topNExcludingPred(userVec, eventAff []float32, n int, exclude int32, pred EventPredicate, sc *Scratch, dst []Result) ([]Result, SearchStats) {
	if pred == nil {
		return f.topNExcluding(userVec, eventAff, n, exclude, sc, dst)
	}
	f.set.checkPred(pred)
	start := time.Now()
	set := f.set
	nc := len(set.Pairs)
	stats := SearchStats{Candidates: nc}
	if n <= 0 || nc == 0 {
		return nil, stats
	}
	if n > nc {
		n = nc
	}

	a := eventAff
	if a == nil {
		sc.a = resizeF32(sc.a, len(set.Events))
		a = sc.a
		vecmath.DotBatch(userVec, set.eventData, set.K, a)
	}
	nu := len(set.Partners)
	sc.b = resizeF32(sc.b, nu)
	b := sc.b
	vecmath.DotBatch(userVec, set.partnerData, set.K, b)

	res := f.walkTopNPred(a, b, n, exclude, pred, sc, &stats, dst)
	stats.Elapsed = time.Since(start)
	return res, stats
}

// walkTopNPred is walkTopN with the predicate pushed into the walk: amax
// ranges over allowed events only — so every partner bound is at most
// its unconstrained value, and the threshold stop fires no later than it
// would with the slack bound — and disallowed pairs are skipped inside
// the per-partner scan without materializing a score. With a predicate allowing every event the walk
// degenerates to walkTopN's behaviour exactly (amax and all scores are
// computed from identical operands in identical order).
func (f *FastIndex) walkTopNPred(a, b []float32, n int, exclude int32, pred EventPredicate, sc *Scratch, stats *SearchStats, dst []Result) []Result {
	set := f.set
	var amax float32
	any := false
	for x, v := range a {
		if !pred[x] {
			continue
		}
		if !any || v > amax {
			amax, any = v, true
		}
	}
	h := &sc.results
	*h = (*h)[:0]
	if !any {
		return h.drainDescending(dst) // predicate allows no events
	}

	nu := len(set.Partners)
	bounds := sc.bounds[:0]
	for u := 0; u < nu; u++ {
		if f.partnerStart[u] == f.partnerStart[u+1] {
			continue
		}
		bounds = append(bounds, partnerBound{int32(u), b[u] + amax + f.maxCross[u]})
	}
	sc.bounds = bounds
	heapifyBounds(bounds)

	for len(bounds) > 0 {
		top := bounds[0]
		// Same strictly-greater stop as walkTopN: exactness under ties is
		// what the sharded merge and the oracle property test rely on.
		if len(*h) == n && (*h)[0].Score > top.bound {
			break
		}
		last := len(bounds) - 1
		bounds[0] = bounds[last]
		bounds = bounds[:last]
		if last > 0 {
			siftDownBounds(bounds, 0)
		}
		stats.SortedAccesses++
		if top.u == exclude {
			continue
		}
		u := top.u
		bu := b[u]
		for oi := f.partnerStart[u]; oi < f.partnerStart[u+1]; oi++ {
			i := f.order[oi]
			x := set.Pairs[i].Event
			if !pred[x] {
				continue // filtered before scoring: no random access
			}
			stats.RandomAccesses++
			r := Result{x, u, a[x] + bu + set.Cross[i]}
			if len(*h) < n {
				h.push(r)
			} else if r.Outranks((*h)[0]) {
				h.replaceMin(r)
			}
		}
	}
	return h.drainDescending(dst)
}

// TopNExcludingQuantizedPredScratch is TopNExcludingQuantizedScratch
// restricted to predicate-allowed events: the approximate walk skips
// disallowed pairs (so every survivor is allowed) and the exact re-rank
// proceeds unchanged. A nil predicate is bit-identical to the
// unconstrained quantized variant.
func (f *FastIndex) TopNExcludingQuantizedPredScratch(userVec []float32, n int, exclude int32, pred EventPredicate, sc *Scratch) ([]Result, SearchStats) {
	res, stats := f.topNQuantizedPred(userVec, nil, n, exclude, pred, sc, sc.out[:0])
	sc.out = res[:0]
	return res, stats
}

// TopNExcludingQuantizedPredAffScratch is the quantized predicate
// variant with the approximate event-affinity pass precomputed (the
// engine's shared prepass; it covers all events, like the exact one).
func (f *FastIndex) TopNExcludingQuantizedPredAffScratch(userVec, eventAff []float32, n int, exclude int32, pred EventPredicate, sc *Scratch) ([]Result, SearchStats) {
	res, stats := f.topNQuantizedPred(userVec, eventAff, n, exclude, pred, sc, sc.out[:0])
	sc.out = res[:0]
	return res, stats
}

func (f *FastIndex) topNQuantizedPred(userVec, eventAff []float32, n int, exclude int32, pred EventPredicate, sc *Scratch, dst []Result) ([]Result, SearchStats) {
	if pred == nil {
		return f.topNQuantized(userVec, eventAff, n, exclude, sc, dst)
	}
	f.set.checkPred(pred)
	start := time.Now()
	set := f.set
	if !set.quantized {
		panic("ta: quantized query on a set without PackQuantized")
	}
	nc := len(set.Pairs)
	stats := SearchStats{Candidates: nc}
	if n <= 0 || nc == 0 {
		return nil, stats
	}
	if n > nc {
		n = nc
	}

	qscale := set.quantizeQuery(userVec, sc)
	a := eventAff
	if a == nil {
		sc.a = resizeF32(sc.a, len(set.Events))
		sc.i32 = resizeSlice(sc.i32, len(set.Events))
		vecmath.DotBatchI8(sc.q8, set.eventQ, set.K, sc.i32)
		scaleWidened(qscale, set.eventScale, sc.i32, sc.a)
		a = sc.a
	}
	nu := len(set.Partners)
	sc.b = resizeF32(sc.b, nu)
	sc.i32 = resizeSlice(sc.i32, nu)
	vecmath.DotBatchI8(sc.q8, set.partnerQ, set.K, sc.i32)
	scaleWidened(qscale, set.partnerScale, sc.i32, sc.b)

	res := f.walkQuantizedPred(userVec, a, sc.b, n, exclude, pred, sc, &stats, dst)
	stats.Elapsed = time.Since(start)
	return res, stats
}

// walkQuantizedPred is walkQuantized with the predicate pushed into the
// approximate walk: amax over allowed events only, disallowed pairs
// skipped before entering the survivor heap. The exact re-rank then sees
// only allowed survivors, so its output respects the predicate by
// construction.
func (f *FastIndex) walkQuantizedPred(userVec []float32, a, b []float32, n int, exclude int32, pred EventPredicate, sc *Scratch, stats *SearchStats, dst []Result) []Result {
	set := f.set
	m := n * quantOverfetch
	if nc := len(set.Pairs); m > nc {
		m = nc
	}
	var amax float32
	any := false
	for x, v := range a {
		if !pred[x] {
			continue
		}
		if !any || v > amax {
			amax, any = v, true
		}
	}
	h := &sc.results
	*h = (*h)[:0]
	if !any {
		return h.drainDescending(dst)
	}

	nu := len(set.Partners)
	bounds := sc.bounds[:0]
	for u := 0; u < nu; u++ {
		if f.partnerStart[u] == f.partnerStart[u+1] {
			continue
		}
		bounds = append(bounds, partnerBound{int32(u), b[u] + amax + f.maxCross[u]})
	}
	sc.bounds = bounds
	heapifyBounds(bounds)

	qh := &sc.qcands
	*qh = (*qh)[:0]
	for len(bounds) > 0 {
		top := bounds[0]
		if len(*qh) == m && (*qh)[0].r.Score > top.bound {
			break
		}
		last := len(bounds) - 1
		bounds[0] = bounds[last]
		bounds = bounds[:last]
		if last > 0 {
			siftDownBounds(bounds, 0)
		}
		stats.SortedAccesses++
		if top.u == exclude {
			continue
		}
		u := top.u
		bu := b[u]
		for oi := f.partnerStart[u]; oi < f.partnerStart[u+1]; oi++ {
			i := f.order[oi]
			x := set.Pairs[i].Event
			if !pred[x] {
				continue
			}
			stats.RandomAccesses++
			r := Result{x, u, a[x] + bu + set.Cross[i]}
			if len(*qh) < m {
				qh.push(quantCand{i, r})
			} else if r.Outranks((*qh)[0].r) {
				qh.replaceMin(quantCand{i, r})
			}
		}
	}

	// Exact re-rank of the allowed survivors, identical to walkQuantized.
	for _, qc := range *qh {
		i := qc.i
		pair := set.Pairs[i]
		bu := vecmath.Dot(userVec, set.Partners[pair.Partner])
		r := Result{pair.Event, pair.Partner, vecmath.Dot(userVec, set.Events[pair.Event]) + bu + set.Cross[i]}
		if len(*h) < n {
			h.push(r)
		} else if r.Outranks((*h)[0]) {
			h.replaceMin(r)
		}
	}
	return h.drainDescending(dst)
}
