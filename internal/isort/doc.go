// Package isort provides allocation-free sorting and selection of int32
// id slices keyed by a value array — the permutation-sort shape every
// ranking structure in this repo needs (TA index lists, the adaptive
// sampler's per-dimension rankings, the exact sampler's per-draw
// ranking). The comparator is vals[id], so the sort never moves the
// float payload and never allocates a closure: on these workloads the
// introsort runs several times faster than sort.Slice and its friends,
// and unlike sort.SliceStable it costs nothing per call in interface
// conversions.
//
// The entry points are [SortAsc] and [SortDesc] for full orderings and
// [SelectAsc] for partial selection when only the head of the ranking
// is needed (quickselect, no ordering inside or beyond the prefix).
// All of them operate on the id slice in place and never touch vals.
//
// The algorithms are deterministic for a given input, which the
// per-seed training reproducibility guarantees rely on; they are NOT
// stable, so equal-valued ids may appear in any fixed order.
package isort
