package isort

import "math/bits"

// SortAsc sorts ids in ascending order of vals[id] with an introsort:
// quicksort with a depth guard that falls back to heapsort, so an
// adversarial ordering cannot push the sort quadratic. vals is indexed
// by id and left untouched.
func SortAsc(ids []int32, vals []float32) {
	quickSortIDs(ids, vals, 2*bits.Len(uint(len(ids))))
}

// SortDesc sorts ids in descending order of vals[id]: SortAsc followed
// by an in-place reversal, whose O(n) cost is noise next to the sort.
func SortDesc(ids []int32, vals []float32) {
	SortAsc(ids, vals)
	for i, j := 0, len(ids)-1; i < j; i, j = i+1, j-1 {
		ids[i], ids[j] = ids[j], ids[i]
	}
}

// SelectAsc partially sorts ids so that ids[k] holds the element of
// ascending rank k (k-th smallest by vals[id]), everything before it is
// ≤ vals[ids[k]], and everything after is ≥. Average O(n) — the
// quickselect counterpart of SortAsc, with the same depth guard.
func SelectAsc(ids []int32, vals []float32, k int) {
	depth := 2 * bits.Len(uint(len(ids)))
	for len(ids) >= 24 {
		if depth == 0 {
			heapSortIDs(ids, vals)
			return
		}
		depth--
		mid := ids[len(ids)/2]
		pivot := vals[mid]
		lo, hi := 0, len(ids)-1
		for lo <= hi {
			for vals[ids[lo]] < pivot {
				lo++
			}
			for vals[ids[hi]] > pivot {
				hi--
			}
			if lo <= hi {
				ids[lo], ids[hi] = ids[hi], ids[lo]
				lo++
				hi--
			}
		}
		// [0,hi] ≤ pivot ≤ [lo,n); the band between is all-pivot.
		switch {
		case k <= hi:
			ids = ids[:hi+1]
		case k >= lo:
			ids = ids[lo:]
			k -= lo
		default:
			return // k lands in the pivot band: already in place
		}
	}
	insertionSortIDs(ids, vals)
}

func quickSortIDs(ids []int32, vals []float32, depth int) {
	for len(ids) >= 24 {
		if depth == 0 {
			heapSortIDs(ids, vals)
			return
		}
		depth--
		mid := ids[len(ids)/2]
		pivot := vals[mid]
		lo, hi := 0, len(ids)-1
		for lo <= hi {
			for vals[ids[lo]] < pivot {
				lo++
			}
			for vals[ids[hi]] > pivot {
				hi--
			}
			if lo <= hi {
				ids[lo], ids[hi] = ids[hi], ids[lo]
				lo++
				hi--
			}
		}
		// Recurse into the smaller partition, loop on the larger: bounds
		// the stack at O(log n) even before the depth guard fires.
		if hi+1 < len(ids)-lo {
			quickSortIDs(ids[:hi+1], vals, depth)
			ids = ids[lo:]
		} else {
			quickSortIDs(ids[lo:], vals, depth)
			ids = ids[:hi+1]
		}
	}
	insertionSortIDs(ids, vals)
}

func insertionSortIDs(ids []int32, vals []float32) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && vals[ids[j]] < vals[ids[j-1]]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// heapSortIDs is the depth-guard fallback: guaranteed O(n log n) on any
// input.
func heapSortIDs(ids []int32, vals []float32) {
	n := len(ids)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownIDs(ids, vals, i, n)
	}
	for end := n - 1; end > 0; end-- {
		ids[0], ids[end] = ids[end], ids[0]
		siftDownIDs(ids, vals, 0, end)
	}
}

func siftDownIDs(ids []int32, vals []float32, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && vals[ids[r]] > vals[ids[l]] {
			m = r
		}
		if vals[ids[i]] >= vals[ids[m]] {
			return
		}
		ids[i], ids[m] = ids[m], ids[i]
		i = m
	}
}
