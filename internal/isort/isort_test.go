package isort

import (
	"math/rand"
	"sort"
	"testing"
)

// patterns generates the adversarial shapes a ranking sort meets in
// practice: random, presorted, reversed, constant (the all-clamped-to-
// zero case NonNegative training produces), and few-distinct.
func patterns(r *rand.Rand, n int) map[string][]float32 {
	random := make([]float32, n)
	sorted := make([]float32, n)
	reversed := make([]float32, n)
	constant := make([]float32, n)
	fewDistinct := make([]float32, n)
	for i := 0; i < n; i++ {
		random[i] = float32(r.NormFloat64())
		sorted[i] = float32(i)
		reversed[i] = float32(n - i)
		constant[i] = 1
		fewDistinct[i] = float32(r.Intn(3))
	}
	return map[string][]float32{
		"random": random, "sorted": sorted, "reversed": reversed,
		"constant": constant, "fewDistinct": fewDistinct,
	}
}

func identity(n int) []int32 {
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	return ids
}

// checkPermutation verifies ids is a permutation of 0..n-1 — a sort
// that drops or duplicates ids corrupts whatever ranking consumes it.
func checkPermutation(t *testing.T, ids []int32) {
	t.Helper()
	seen := make([]bool, len(ids))
	for _, id := range ids {
		if int(id) < 0 || int(id) >= len(ids) || seen[id] {
			t.Fatalf("not a permutation: id %d", id)
		}
		seen[id] = true
	}
}

func TestSortAscMatchesStdlib(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 23, 24, 100, 4097} {
		for name, vals := range patterns(r, n) {
			ids := identity(n)
			SortAsc(ids, vals)
			checkPermutation(t, ids)
			for i := 1; i < n; i++ {
				if vals[ids[i-1]] > vals[ids[i]] {
					t.Fatalf("%s n=%d: out of order at %d", name, n, i)
				}
			}
		}
	}
}

func TestSortDescReverses(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for name, vals := range patterns(r, 257) {
		ids := identity(257)
		SortDesc(ids, vals)
		checkPermutation(t, ids)
		for i := 1; i < len(ids); i++ {
			if vals[ids[i-1]] < vals[ids[i]] {
				t.Fatalf("%s: not descending at %d", name, i)
			}
		}
	}
}

// TestSelectAscRankMatchesFullSort checks that the selected position
// holds exactly the value a full sort would put there, and that the
// partition invariant holds on both sides.
func TestSelectAscRankMatchesFullSort(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 2, 23, 24, 100, 1025} {
		for name, vals := range patterns(r, n) {
			want := make([]float64, n)
			for i, v := range vals {
				want[i] = float64(v)
			}
			sort.Float64s(want)
			for _, k := range []int{0, n / 3, n / 2, n - 1} {
				ids := identity(n)
				SelectAsc(ids, vals, k)
				checkPermutation(t, ids)
				if float64(vals[ids[k]]) != want[k] {
					t.Fatalf("%s n=%d k=%d: got %v, want %v", name, n, k, vals[ids[k]], want[k])
				}
				for i := 0; i < k; i++ {
					if vals[ids[i]] > vals[ids[k]] {
						t.Fatalf("%s n=%d k=%d: left side violates partition", name, n, k)
					}
				}
				for i := k + 1; i < n; i++ {
					if vals[ids[i]] < vals[ids[k]] {
						t.Fatalf("%s n=%d k=%d: right side violates partition", name, n, k)
					}
				}
			}
		}
	}
}

// TestSortDeterministic guards the per-seed training reproducibility:
// the same input must produce the identical permutation every time,
// ties included.
func TestSortDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	vals := patterns(r, 2048)["fewDistinct"]
	first := identity(2048)
	SortAsc(first, vals)
	for trial := 0; trial < 3; trial++ {
		again := identity(2048)
		SortAsc(again, vals)
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("trial %d: permutation differs at %d", trial, i)
			}
		}
	}
}

func BenchmarkSortAsc(b *testing.B) {
	r := rand.New(rand.NewSource(15))
	const n = 8192
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(r.NormFloat64())
	}
	ids := identity(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(ids, idsTemplate(n))
		SortAsc(ids, vals)
	}
}

// BenchmarkSortSliceStable is the closure-based baseline SortAsc
// replaced in the rank rebuilds.
func BenchmarkSortSliceStable(b *testing.B) {
	r := rand.New(rand.NewSource(15))
	const n = 8192
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(r.NormFloat64())
	}
	ids := identity(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(ids, idsTemplate(n))
		sort.SliceStable(ids, func(a, c int) bool { return vals[ids[a]] < vals[ids[c]] })
	}
}

func BenchmarkSelectAsc(b *testing.B) {
	r := rand.New(rand.NewSource(16))
	const n = 8192
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(r.NormFloat64())
	}
	ids := identity(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(ids, idsTemplate(n))
		SelectAsc(ids, vals, n-1-(i%32))
	}
}

var templates = map[int][]int32{}

func idsTemplate(n int) []int32 {
	if t, ok := templates[n]; ok {
		return t
	}
	t := identity(n)
	templates[n] = t
	return t
}
