package timeslot_test

import (
	"fmt"
	"time"

	"ebsn/internal/timeslot"
)

// The paper's running example: an event at 2017-06-29 18:00 links to the
// 18:00 hour slot, the Thursday day slot, and the weekday type slot.
func ExampleSlots() {
	start := time.Date(2017, 6, 29, 18, 0, 0, 0, time.UTC)
	for _, slot := range timeslot.Slots(start) {
		fmt.Println(timeslot.Name(slot))
	}
	// Output:
	// 18:00
	// Thursday
	// weekday
}

func ExampleName() {
	fmt.Println(timeslot.Name(timeslot.HourSlot(9)))
	fmt.Println(timeslot.Name(timeslot.DaySlot(5)))
	fmt.Println(timeslot.Name(timeslot.WeekendSlot()))
	// Output:
	// 09:00
	// Saturday
	// weekend
}
