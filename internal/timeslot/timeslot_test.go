package timeslot

import (
	"testing"
	"testing/quick"
	"time"
)

func TestNumSlotsIs33(t *testing.T) {
	if NumSlots != 33 {
		t.Fatalf("NumSlots = %d, want 33 (24 hours + 7 days + 2 weekday types)", NumSlots)
	}
}

func TestPaperExample(t *testing.T) {
	// The paper's example: "2017-06-29 18:00" corresponds to 18:00,
	// Thursday, and weekday.
	ts := time.Date(2017, 6, 29, 18, 0, 0, 0, time.UTC)
	slots := Slots(ts)
	if Name(slots[0]) != "18:00" {
		t.Errorf("hour slot = %s, want 18:00", Name(slots[0]))
	}
	if Name(slots[1]) != "Thursday" {
		t.Errorf("day slot = %s, want Thursday", Name(slots[1]))
	}
	if Name(slots[2]) != "weekday" {
		t.Errorf("type slot = %s, want weekday", Name(slots[2]))
	}
}

func TestWeekend(t *testing.T) {
	sat := time.Date(2017, 7, 1, 10, 0, 0, 0, time.UTC) // Saturday
	slots := Slots(sat)
	if Name(slots[1]) != "Saturday" || Name(slots[2]) != "weekend" {
		t.Errorf("Saturday slots = %s/%s", Name(slots[1]), Name(slots[2]))
	}
	sun := time.Date(2017, 7, 2, 23, 0, 0, 0, time.UTC) // Sunday
	slots = Slots(sun)
	if Name(slots[1]) != "Sunday" || Name(slots[2]) != "weekend" {
		t.Errorf("Sunday slots = %s/%s", Name(slots[1]), Name(slots[2]))
	}
}

func TestSlotsDisjointScales(t *testing.T) {
	f := func(unix int64) bool {
		ts := time.Unix(unix%4e9, 0).UTC()
		s := Slots(ts)
		return s[0] >= 0 && s[0] < NumHourSlots &&
			s[1] >= NumHourSlots && s[1] < NumHourSlots+NumDaySlots &&
			s[2] >= NumHourSlots+NumDaySlots && s[2] < NumSlots
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHourSlotAndDaySlotRanges(t *testing.T) {
	for h := 0; h < 24; h++ {
		if s := HourSlot(h); int(s) != h {
			t.Errorf("HourSlot(%d) = %d", h, s)
		}
	}
	for d := 0; d < 7; d++ {
		if s := DaySlot(d); int(s) != 24+d {
			t.Errorf("DaySlot(%d) = %d", d, s)
		}
	}
}

func TestPanicsOutOfRange(t *testing.T) {
	for name, f := range map[string]func(){
		"hour-neg": func() { HourSlot(-1) },
		"hour-24":  func() { HourSlot(24) },
		"day-neg":  func() { DaySlot(-1) },
		"day-7":    func() { DaySlot(7) },
		"name-big": func() { Name(NumSlots) },
		"name-neg": func() { Name(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAllNamesDistinct(t *testing.T) {
	seen := make(map[string]int32)
	for s := int32(0); s < NumSlots; s++ {
		n := Name(s)
		if prev, dup := seen[n]; dup {
			t.Fatalf("slots %d and %d share name %q", prev, s, n)
		}
		seen[n] = s
	}
}

func TestMondayIndexing(t *testing.T) {
	mon := time.Date(2017, 7, 3, 9, 0, 0, 0, time.UTC) // Monday
	slots := Slots(mon)
	if slots[1] != DaySlot(0) {
		t.Errorf("Monday maps to day slot %d, want %d", slots[1], DaySlot(0))
	}
	if WeekdaySlot() != 31 || WeekendSlot() != 32 {
		t.Errorf("weekday/weekend slots = %d/%d, want 31/32", WeekdaySlot(), WeekendSlot())
	}
}
