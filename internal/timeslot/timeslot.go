// Package timeslot implements the paper's multi-scale time discretization
// for the event-time graph: 33 time-slot nodes comprising 24 hour-of-day
// slots, 7 day-of-week slots, and 2 weekday/weekend slots. Each event links
// to exactly three slots (Definition 5): its hour, its day, and its weekday
// type. For example 2017-06-29 18:00 (a Thursday) maps to {18:00, Thursday,
// weekday}.
package timeslot

import (
	"fmt"
	"time"
)

// Slot counts per scale and the fixed layout of the 33-slot ID space:
// [0,24) hours, [24,31) days (Monday=24 … Sunday=30), 31 weekday,
// 32 weekend.
const (
	NumHourSlots    = 24
	NumDaySlots     = 7
	NumWeekdaySlots = 2
	NumSlots        = NumHourSlots + NumDaySlots + NumWeekdaySlots

	dayBase     = NumHourSlots
	weekdaySlot = dayBase + NumDaySlots
	weekendSlot = weekdaySlot + 1

	// SlotsPerEvent is how many time nodes each event links to.
	SlotsPerEvent = 3
)

// HourSlot returns the slot ID for hour h in [0, 24).
func HourSlot(h int) int32 {
	if h < 0 || h >= 24 {
		panic(fmt.Sprintf("timeslot: hour %d out of range", h))
	}
	return int32(h)
}

// DaySlot returns the slot ID for weekday d, with Monday = 0 … Sunday = 6.
func DaySlot(d int) int32 {
	if d < 0 || d >= 7 {
		panic(fmt.Sprintf("timeslot: day %d out of range", d))
	}
	return int32(dayBase + d)
}

// WeekdaySlot and WeekendSlot return the third-scale slot IDs.
func WeekdaySlot() int32 { return weekdaySlot }

// WeekendSlot returns the weekend slot ID.
func WeekendSlot() int32 { return weekendSlot }

// mondayIndexed converts time.Weekday (Sunday=0) to Monday=0 indexing.
func mondayIndexed(w time.Weekday) int {
	return (int(w) + 6) % 7
}

// Slots returns the three slot IDs for t: hour, day-of-week, and
// weekday/weekend.
func Slots(t time.Time) [SlotsPerEvent]int32 {
	day := mondayIndexed(t.Weekday())
	third := weekdaySlot
	if t.Weekday() == time.Saturday || t.Weekday() == time.Sunday {
		third = weekendSlot
	}
	return [SlotsPerEvent]int32{HourSlot(t.Hour()), DaySlot(day), int32(third)}
}

// Name returns a human-readable label for a slot ID, e.g. "18:00",
// "Thursday", "weekday".
func Name(slot int32) string {
	switch {
	case slot >= 0 && slot < NumHourSlots:
		return fmt.Sprintf("%02d:00", slot)
	case slot >= dayBase && slot < dayBase+NumDaySlots:
		return [...]string{"Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"}[slot-dayBase]
	case slot == weekdaySlot:
		return "weekday"
	case slot == weekendSlot:
		return "weekend"
	default:
		panic(fmt.Sprintf("timeslot: slot %d out of range", slot))
	}
}
