package geo_test

import (
	"fmt"

	"ebsn/internal/geo"
)

func ExampleHaversineKm() {
	beijing := geo.Point{Lat: 39.9042, Lng: 116.4074}
	shanghai := geo.Point{Lat: 31.2304, Lng: 121.4737}
	fmt.Printf("%.0f km\n", geo.HaversineKm(beijing, shanghai))
	// Output: 1067 km
}

func ExampleDBSCAN() {
	// Two tight venue clusters ~11 km apart plus one isolated point.
	points := []geo.Point{
		{Lat: 39.900, Lng: 116.400}, {Lat: 39.901, Lng: 116.401}, {Lat: 39.902, Lng: 116.399},
		{Lat: 39.980, Lng: 116.310}, {Lat: 39.981, Lng: 116.311}, {Lat: 39.979, Lng: 116.309},
		{Lat: 41.000, Lng: 118.000},
	}
	labels, clusters, err := geo.DBSCAN(points, geo.DBSCANConfig{EpsKm: 1, MinPts: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", clusters)
	fmt.Println("labels:", labels)
	// Output:
	// clusters: 2
	// labels: [0 0 0 1 1 1 -1]
}
