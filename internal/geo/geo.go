// Package geo provides the spatial primitives of the reproduction: points,
// distances, and the DBSCAN clustering the paper uses to discretize event
// coordinates into the region node set V_L of the event-location graph.
package geo

import "math"

// Point is a geographic coordinate in degrees.
type Point struct {
	Lat float64
	Lng float64
}

// EarthRadiusKm is the mean Earth radius used by distance computations.
const EarthRadiusKm = 6371.0

// HaversineKm returns the great-circle distance between p and q in
// kilometers.
func HaversineKm(p, q Point) float64 {
	const degToRad = math.Pi / 180
	lat1 := p.Lat * degToRad
	lat2 := q.Lat * degToRad
	dLat := (q.Lat - p.Lat) * degToRad
	dLng := (q.Lng - p.Lng) * degToRad
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLng/2)*math.Sin(dLng/2)
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}

// EquirectKm returns the equirectangular-approximation distance in
// kilometers. At city scale (tens of km) it matches haversine to well
// under 0.1% and is several times cheaper, which matters inside DBSCAN's
// O(n²)-ish neighborhood queries.
func EquirectKm(p, q Point) float64 {
	const degToRad = math.Pi / 180
	x := (q.Lng - p.Lng) * degToRad * math.Cos((p.Lat+q.Lat)/2*degToRad)
	y := (q.Lat - p.Lat) * degToRad
	return EarthRadiusKm * math.Sqrt(x*x+y*y)
}
