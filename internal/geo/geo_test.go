package geo

import (
	"math"
	"testing"
	"testing/quick"

	"ebsn/internal/rng"
)

func TestHaversineKnownDistance(t *testing.T) {
	// Beijing (39.9042, 116.4074) to Shanghai (31.2304, 121.4737) ≈ 1068 km.
	beijing := Point{39.9042, 116.4074}
	shanghai := Point{31.2304, 121.4737}
	d := HaversineKm(beijing, shanghai)
	if math.Abs(d-1068) > 10 {
		t.Errorf("Beijing-Shanghai distance = %v km, want ~1068", d)
	}
}

func TestHaversineZero(t *testing.T) {
	p := Point{39.9, 116.4}
	if d := HaversineKm(p, p); d != 0 {
		t.Errorf("distance to self = %v", d)
	}
}

func TestHaversineSymmetry(t *testing.T) {
	f := func(lat1, lng1, lat2, lng2 float64) bool {
		p := Point{math.Mod(lat1, 80), math.Mod(lng1, 180)}
		q := Point{math.Mod(lat2, 80), math.Mod(lng2, 180)}
		if math.IsNaN(p.Lat) || math.IsNaN(p.Lng) || math.IsNaN(q.Lat) || math.IsNaN(q.Lng) {
			return true
		}
		return math.Abs(HaversineKm(p, q)-HaversineKm(q, p)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEquirectMatchesHaversineAtCityScale(t *testing.T) {
	src := rng.New(1)
	center := Point{39.9, 116.4}
	for i := 0; i < 1000; i++ {
		p := Point{center.Lat + (src.Float64()-0.5)*0.4, center.Lng + (src.Float64()-0.5)*0.4}
		q := Point{center.Lat + (src.Float64()-0.5)*0.4, center.Lng + (src.Float64()-0.5)*0.4}
		h := HaversineKm(p, q)
		e := EquirectKm(p, q)
		if math.Abs(h-e) > 0.01*(h+0.1) {
			t.Fatalf("equirect %v vs haversine %v for %v %v", e, h, p, q)
		}
	}
}

func clusterAround(src *rng.Source, c Point, n int, spreadKm float64) []Point {
	// ~111 km per degree latitude.
	spreadDeg := spreadKm / 111
	out := make([]Point, n)
	for i := range out {
		out[i] = Point{
			Lat: c.Lat + src.Gaussian(0, spreadDeg),
			Lng: c.Lng + src.Gaussian(0, spreadDeg/math.Cos(c.Lat*math.Pi/180)),
		}
	}
	return out
}

func TestDBSCANFindsPlantedClusters(t *testing.T) {
	src := rng.New(42)
	c1 := Point{39.90, 116.40}
	c2 := Point{39.98, 116.31} // ~11 km away
	points := append(clusterAround(src, c1, 200, 0.5), clusterAround(src, c2, 200, 0.5)...)

	labels, k, err := DBSCAN(points, DBSCANConfig{EpsKm: 1.0, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Fatalf("found %d clusters, want 2", k)
	}
	// All of cluster 1's points should share a label distinct from cluster 2's.
	l1 := labels[0]
	l2 := labels[200]
	if l1 == l2 {
		t.Fatal("planted clusters merged")
	}
	mismatch := 0
	for i := 0; i < 200; i++ {
		if labels[i] != l1 {
			mismatch++
		}
		if labels[200+i] != l2 {
			mismatch++
		}
	}
	if mismatch > 8 { // tolerate a couple of tail points labeled noise
		t.Errorf("%d/400 points mislabeled", mismatch)
	}
}

func TestDBSCANNoise(t *testing.T) {
	src := rng.New(7)
	points := clusterAround(src, Point{39.9, 116.4}, 100, 0.2)
	// A far-away isolated point must be noise.
	points = append(points, Point{41.0, 118.0})
	labels, k, err := DBSCAN(points, DBSCANConfig{EpsKm: 1.0, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("found %d clusters, want 1", k)
	}
	if labels[100] != Noise {
		t.Errorf("isolated point labeled %d, want Noise", labels[100])
	}
}

func TestDBSCANEmptyInput(t *testing.T) {
	labels, k, err := DBSCAN(nil, DBSCANConfig{EpsKm: 1, MinPts: 3})
	if err != nil || k != 0 || len(labels) != 0 {
		t.Fatalf("empty input: labels=%v k=%d err=%v", labels, k, err)
	}
}

func TestDBSCANConfigValidation(t *testing.T) {
	if _, _, err := DBSCAN([]Point{{0, 0}}, DBSCANConfig{EpsKm: 0, MinPts: 3}); err == nil {
		t.Error("EpsKm=0 accepted")
	}
	if _, _, err := DBSCAN([]Point{{0, 0}}, DBSCANConfig{EpsKm: 1, MinPts: 0}); err == nil {
		t.Error("MinPts=0 accepted")
	}
}

func TestDBSCANMinPtsOneClustersEverything(t *testing.T) {
	points := []Point{{39.9, 116.4}, {39.9001, 116.4001}, {41, 118}}
	labels, k, err := DBSCAN(points, DBSCANConfig{EpsKm: 0.5, MinPts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Fatalf("clusters = %d, want 2", k)
	}
	for i, l := range labels {
		if l == Noise {
			t.Errorf("point %d is noise with MinPts=1", i)
		}
	}
}

// Property: every core point's eps-neighborhood is entirely in some
// cluster (no core point is noise), and labels are in [-1, k).
func TestDBSCANLabelRangeProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%150 + 1
		src := rng.New(seed)
		points := make([]Point, n)
		for i := range points {
			points[i] = Point{39.8 + src.Float64()*0.3, 116.3 + src.Float64()*0.3}
		}
		labels, k, err := DBSCAN(points, DBSCANConfig{EpsKm: 2, MinPts: 4})
		if err != nil {
			return false
		}
		for _, l := range labels {
			if l < Noise || l >= k {
				return false
			}
		}
		// Core point check: any point with >= MinPts neighbors must be clustered.
		for i := range points {
			cnt := 0
			for j := range points {
				if HaversineKm(points[i], points[j]) <= 2 {
					cnt++
				}
			}
			if cnt >= 4 && labels[i] == Noise {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDBSCANDeterministic(t *testing.T) {
	src := rng.New(99)
	points := clusterAround(src, Point{39.9, 116.4}, 300, 1.5)
	l1, k1, _ := DBSCAN(points, DBSCANConfig{EpsKm: 0.8, MinPts: 4})
	l2, k2, _ := DBSCAN(points, DBSCANConfig{EpsKm: 0.8, MinPts: 4})
	if k1 != k2 {
		t.Fatal("cluster count nondeterministic")
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("labels nondeterministic")
		}
	}
}

func TestAssignRegionsAttachesNearbyNoise(t *testing.T) {
	src := rng.New(3)
	points := clusterAround(src, Point{39.9, 116.4}, 100, 0.2)
	nearNoise := Point{39.93, 116.4} // ~3.3 km from centroid
	farNoise := Point{40.5, 117.0}   // far away
	points = append(points, nearNoise, farNoise)
	labels, k, err := DBSCAN(points, DBSCANConfig{EpsKm: 1.0, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	regions, total := AssignRegions(points, labels, k, 5.0)
	if regions[100] != labels[0] {
		t.Errorf("near noise assigned region %d, want cluster %d", regions[100], labels[0])
	}
	if regions[101] < k {
		t.Errorf("far noise assigned to existing cluster %d", regions[101])
	}
	if total != k+1 {
		t.Errorf("total regions = %d, want %d", total, k+1)
	}
	for _, r := range regions {
		if r < 0 || r >= total {
			t.Fatalf("region %d out of range [0,%d)", r, total)
		}
	}
}

func TestCentroids(t *testing.T) {
	points := []Point{{0, 0}, {2, 2}, {10, 10}}
	labels := []int{0, 0, Noise}
	cts := Centroids(points, labels, 1)
	if cts[0].Lat != 1 || cts[0].Lng != 1 {
		t.Errorf("centroid = %v, want (1,1)", cts[0])
	}
}

func BenchmarkDBSCAN5000(b *testing.B) {
	src := rng.New(5)
	var points []Point
	for c := 0; c < 10; c++ {
		center := Point{39.7 + src.Float64()*0.5, 116.2 + src.Float64()*0.5}
		points = append(points, clusterAround(src, center, 500, 0.6)...)
	}
	cfg := DBSCANConfig{EpsKm: 0.5, MinPts: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DBSCAN(points, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
