package geo

import (
	"fmt"
	"math"
)

// Noise is the cluster label DBSCAN assigns to points that belong to no
// dense region.
const Noise = -1

// DBSCANConfig parameterizes density clustering.
type DBSCANConfig struct {
	// EpsKm is the neighborhood radius in kilometers.
	EpsKm float64
	// MinPts is the minimum number of points (including the point itself)
	// within EpsKm for a point to be a core point.
	MinPts int
}

// Validate reports a configuration error, if any.
func (c DBSCANConfig) Validate() error {
	if c.EpsKm <= 0 {
		return fmt.Errorf("geo: DBSCAN EpsKm must be positive, got %v", c.EpsKm)
	}
	if c.MinPts < 1 {
		return fmt.Errorf("geo: DBSCAN MinPts must be >= 1, got %d", c.MinPts)
	}
	return nil
}

// DBSCAN clusters points by density. It returns a label per point
// (cluster IDs 0..k-1, or Noise) and the number of clusters found.
//
// The implementation is the textbook algorithm with a uniform-grid spatial
// index so that neighborhood queries touch only nearby cells; at city
// scale this makes clustering tens of thousands of venues effectively
// linear.
func DBSCAN(points []Point, cfg DBSCANConfig) (labels []int, clusters int, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	n := len(points)
	labels = make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	if n == 0 {
		return labels, 0, nil
	}

	idx := newGridIndex(points, cfg.EpsKm)

	visited := make([]bool, n)
	var queue []int32
	next := 0
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		nbrs := idx.rangeQuery(points, i, cfg.EpsKm)
		if len(nbrs) < cfg.MinPts {
			continue // provisional noise; may be adopted as border point later
		}
		cluster := next
		next++
		labels[i] = cluster
		queue = append(queue[:0], nbrs...)
		for len(queue) > 0 {
			j := int(queue[len(queue)-1])
			queue = queue[:len(queue)-1]
			if labels[j] == Noise {
				labels[j] = cluster // border point adoption
			}
			if visited[j] {
				continue
			}
			visited[j] = true
			labels[j] = cluster
			jn := idx.rangeQuery(points, j, cfg.EpsKm)
			if len(jn) >= cfg.MinPts {
				queue = append(queue, jn...)
			}
		}
	}
	return labels, next, nil
}

// AssignRegions converts DBSCAN labels into a total region assignment, as
// the event-location graph requires every event to link to exactly one
// region node. Noise points are attached to the nearest cluster centroid
// when one exists within attachKm; otherwise each remaining noise point
// founds its own singleton region. It returns the final region labels and
// region count.
func AssignRegions(points []Point, labels []int, clusters int, attachKm float64) ([]int, int) {
	out := make([]int, len(labels))
	copy(out, labels)

	centroids := Centroids(points, labels, clusters)
	regions := clusters
	for i, l := range out {
		if l != Noise {
			continue
		}
		best, bestD := -1, attachKm
		for c, ct := range centroids {
			if d := EquirectKm(points[i], ct); d <= bestD {
				best, bestD = c, d
			}
		}
		if best >= 0 {
			out[i] = best
		} else {
			out[i] = regions
			regions++
		}
	}
	return out, regions
}

// Centroids returns the arithmetic centroid of each cluster. Labels equal
// to Noise are ignored. Clusters with no members get a zero Point.
func Centroids(points []Point, labels []int, clusters int) []Point {
	sums := make([]Point, clusters)
	counts := make([]int, clusters)
	for i, l := range labels {
		if l < 0 || l >= clusters {
			continue
		}
		sums[l].Lat += points[i].Lat
		sums[l].Lng += points[i].Lng
		counts[l]++
	}
	for c := range sums {
		if counts[c] > 0 {
			sums[c].Lat /= float64(counts[c])
			sums[c].Lng /= float64(counts[c])
		}
	}
	return sums
}

// gridIndex buckets points into square cells of side epsKm so that all
// eps-neighbors of a point lie in its 3x3 cell block.
type gridIndex struct {
	cellKm  float64
	originX float64
	originY float64
	cells   map[[2]int32][]int32
	xs, ys  []float64 // projected coordinates in km
}

func newGridIndex(points []Point, epsKm float64) *gridIndex {
	g := &gridIndex{
		cellKm: epsKm,
		cells:  make(map[[2]int32][]int32),
		xs:     make([]float64, len(points)),
		ys:     make([]float64, len(points)),
	}
	// Project once around the mean latitude; at city scale the distortion
	// is negligible and it lets the index use plain Euclidean geometry.
	var meanLat float64
	for _, p := range points {
		meanLat += p.Lat
	}
	meanLat /= float64(len(points))
	const degToRad = math.Pi / 180
	kx := EarthRadiusKm * degToRad * math.Cos(meanLat*degToRad)
	ky := EarthRadiusKm * degToRad
	for i, p := range points {
		g.xs[i] = p.Lng * kx
		g.ys[i] = p.Lat * ky
	}
	for i := range points {
		key := g.cellOf(i)
		g.cells[key] = append(g.cells[key], int32(i))
	}
	return g
}

func (g *gridIndex) cellOf(i int) [2]int32 {
	return [2]int32{int32(math.Floor(g.xs[i] / g.cellKm)), int32(math.Floor(g.ys[i] / g.cellKm))}
}

func (g *gridIndex) rangeQuery(points []Point, i int, epsKm float64) []int32 {
	center := g.cellOf(i)
	var out []int32
	eps2 := epsKm * epsKm
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			for _, j := range g.cells[[2]int32{center[0] + dx, center[1] + dy}] {
				ddx := g.xs[j] - g.xs[i]
				ddy := g.ys[j] - g.ys[i]
				if ddx*ddx+ddy*ddy <= eps2 {
					out = append(out, j)
				}
			}
		}
	}
	return out
}
