package datagen

import (
	"ebsn/internal/ebsnet"
	"ebsn/internal/geo"
)

// Oracle scores user-event pairs with the generator's own latent affinity
// function — the exact probabilities attendance was sampled from. It is
// the Bayes-optimal content/context scorer for a synthetic dataset and
// therefore an upper reference point for what any cold-start model can
// achieve on it. The experiment harness reports it alongside the learned
// models; tests use it to verify the planted signal is strong enough to
// matter.
type Oracle struct {
	cfg Config
	lat *latent
	d   *ebsnet.Dataset
}

// GenerateWithOracle is Generate plus the latent-affinity oracle.
func GenerateWithOracle(cfg Config) (*ebsnet.Dataset, *Oracle, error) {
	d, lat, err := generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	return d, &Oracle{cfg: cfg, lat: lat, d: d}, nil
}

// ScoreUserEvent returns the latent acceptance probability for (u, x).
func (o *Oracle) ScoreUserEvent(u, x int32) float32 {
	return float32(affinity(o.cfg, o.lat, o.d, u, x))
}

// ScoreTriple composes the two endpoint affinities with latent social
// proximity (shared community and home distance).
func (o *Oracle) ScoreTriple(u, partner, x int32) float32 {
	social := float32(0)
	if o.lat.userCommunity[u] == o.lat.userCommunity[partner] {
		social = 0.5
	}
	km := geo.EquirectKm(o.lat.userHome[u], o.lat.userHome[partner])
	social += float32(1 / (1 + km/o.cfg.CityRadiusKm))
	if o.d.AreFriends(u, partner) {
		social += 1
	}
	return o.ScoreUserEvent(u, x) + o.ScoreUserEvent(partner, x) + social
}

// EventCommunity exposes the event's latent community (white-box tests).
func (o *Oracle) EventCommunity(x int32) int { return o.lat.eventCommunity[x] }

// UserCommunity exposes the user's latent community (white-box tests).
func (o *Oracle) UserCommunity(u int32) int { return o.lat.userCommunity[u] }
