package datagen

import "ebsn/internal/rng"

// newTestSource gives white-box tests a seeded source without exporting
// generator internals.
func newTestSource() *rng.Source { return rng.New(12345) }
