package datagen

import (
	"math"
	"testing"
	"time"

	"ebsn/internal/ebsnet"
	"ebsn/internal/geo"
)

func tinyDataset(t testing.TB, seed uint64) *ebsnet.Dataset {
	t.Helper()
	d, err := Generate(TinyConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateShapes(t *testing.T) {
	cfg := TinyConfig(1)
	d := tinyDataset(t, 1)
	if d.NumUsers != cfg.NumUsers {
		t.Errorf("users = %d, want %d", d.NumUsers, cfg.NumUsers)
	}
	if d.NumEvents() != cfg.NumEvents {
		t.Errorf("events = %d, want %d", d.NumEvents(), cfg.NumEvents)
	}
	if len(d.Venues) != cfg.NumVenues {
		t.Errorf("venues = %d, want %d", len(d.Venues), cfg.NumVenues)
	}
	// Attendance volume lands in the target's ballpark; the sharp
	// affinity acceptance sampler trades volume exactness for signal.
	ratio := float64(len(d.Attendance)) / float64(cfg.TargetAttendance)
	if ratio < 0.4 || ratio > 1.4 {
		t.Errorf("attendance = %d, target %d (ratio %.2f)", len(d.Attendance), cfg.TargetAttendance, ratio)
	}
	if len(d.Friendships) == 0 {
		t.Error("no friendships generated")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d1 := tinyDataset(t, 42)
	d2 := tinyDataset(t, 42)
	if len(d1.Attendance) != len(d2.Attendance) || len(d1.Friendships) != len(d2.Friendships) {
		t.Fatal("same seed produced different volumes")
	}
	for i := range d1.Attendance {
		if d1.Attendance[i] != d2.Attendance[i] {
			t.Fatal("same seed produced different attendance")
		}
	}
	for i := range d1.Events {
		if !d1.Events[i].Start.Equal(d2.Events[i].Start) || d1.Events[i].Venue != d2.Events[i].Venue {
			t.Fatal("same seed produced different events")
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	d1 := tinyDataset(t, 1)
	d2 := tinyDataset(t, 2)
	same := 0
	n := min(len(d1.Attendance), len(d2.Attendance))
	for i := 0; i < n; i++ {
		if d1.Attendance[i] == d2.Attendance[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical attendance")
	}
}

func TestEventsWithinTimeRange(t *testing.T) {
	cfg := TinyConfig(3)
	d := tinyDataset(t, 3)
	// adjustWeekendType may push an event up to 6 days past End.
	hardEnd := cfg.End.AddDate(0, 0, 7)
	for i, e := range d.Events {
		if e.Start.Before(cfg.Start) || e.Start.After(hardEnd) {
			t.Errorf("event %d at %v outside [%v, %v]", i, e.Start, cfg.Start, hardEnd)
		}
	}
}

func TestDocumentsNonEmpty(t *testing.T) {
	cfg := TinyConfig(4)
	d := tinyDataset(t, 4)
	for i, e := range d.Events {
		if len(e.Words) != cfg.WordsPerDoc {
			t.Fatalf("event %d has %d words, want %d", i, len(e.Words), cfg.WordsPerDoc)
		}
	}
}

func TestVenuesWithinCity(t *testing.T) {
	cfg := TinyConfig(5)
	d := tinyDataset(t, 5)
	far := 0
	for _, v := range d.Venues {
		if geo.HaversineKm(cfg.CityCenter, v) > cfg.CityRadiusKm*1.5 {
			far++
		}
	}
	// Gaussian tails may place a few venues outside, but not many.
	if float64(far) > 0.05*float64(len(d.Venues)) {
		t.Errorf("%d/%d venues far outside the city", far, len(d.Venues))
	}
}

func TestNoDuplicateAttendance(t *testing.T) {
	d := tinyDataset(t, 6)
	seen := make(map[[2]int32]bool, len(d.Attendance))
	for _, a := range d.Attendance {
		if seen[a] {
			t.Fatalf("duplicate attendance %v", a)
		}
		seen[a] = true
	}
}

func TestFriendsCoAttend(t *testing.T) {
	// The event-partner ground truth requires friends who co-attend;
	// verify the generator produces a meaningful number of such triples.
	d := tinyDataset(t, 7)
	s, err := ebsnet.ChronologicalSplit(d, ebsnet.DefaultSplitConfig())
	if err != nil {
		t.Fatal(err)
	}
	triples := ebsnet.PartnerGroundTruth(d, s, ebsnet.Test)
	if len(triples) < 20 {
		t.Errorf("only %d partner ground-truth triples on test events", len(triples))
	}
}

func TestCommunityTopicCoherence(t *testing.T) {
	// White-box: users should attend events whose topic they prefer more
	// often than random, which is the signal GEM learns from content.
	cfg := TinyConfig(8)
	d, lat, err := generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var attended, random float64
	n := 0
	for _, a := range d.Attendance {
		u, x := a[0], a[1]
		attended += float64(lat.userTopics[u][lat.eventTopic[x]])
		random += float64(lat.userTopics[u][lat.eventTopic[int(x)%len(lat.eventTopic)]])
		n++
	}
	var baseline float64
	m := 0
	for u := 0; u < cfg.NumUsers; u++ {
		for x := 0; x < cfg.NumEvents; x += 7 {
			baseline += float64(lat.userTopics[u][lat.eventTopic[x]])
			m++
		}
	}
	if attended/float64(n) <= baseline/float64(m)*1.3 {
		t.Errorf("attended-topic affinity %.4f not clearly above baseline %.4f",
			attended/float64(n), baseline/float64(m))
	}
}

func TestGeographicLocality(t *testing.T) {
	// Users attend events closer to home than random user-event pairs.
	cfg := TinyConfig(9)
	d, lat, err := generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var attKm float64
	for _, a := range d.Attendance {
		attKm += geo.EquirectKm(lat.userHome[a[0]], d.Venues[d.Events[a[1]].Venue])
	}
	attKm /= float64(len(d.Attendance))
	var rndKm float64
	n := 0
	for u := 0; u < cfg.NumUsers; u += 3 {
		for x := 0; x < cfg.NumEvents; x += 11 {
			rndKm += geo.EquirectKm(lat.userHome[u], d.Venues[d.Events[x].Venue])
			n++
		}
	}
	rndKm /= float64(n)
	if attKm >= rndKm*0.9 {
		t.Errorf("attended distance %.2f km not clearly below random %.2f km", attKm, rndKm)
	}
}

func TestTemporalPreference(t *testing.T) {
	// Users attend events near their preferred hour.
	cfg := TinyConfig(10)
	d, lat, err := generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var attDiff float64
	for _, a := range d.Attendance {
		attDiff += hourDiff(float64(d.Events[a[1]].Start.Hour()), lat.userHourPref[a[0]])
	}
	attDiff /= float64(len(d.Attendance))
	// Random hour distance against a circular uniform is 6 on average;
	// against the actual skewed event-hour distribution it is lower, so
	// compare with the empirical random baseline.
	var rndDiff float64
	n := 0
	for u := 0; u < cfg.NumUsers; u += 3 {
		for x := 0; x < cfg.NumEvents; x += 11 {
			rndDiff += hourDiff(float64(d.Events[x].Start.Hour()), lat.userHourPref[u])
			n++
		}
	}
	rndDiff /= float64(n)
	if attDiff >= rndDiff {
		t.Errorf("attended hour diff %.2f not below random %.2f", attDiff, rndDiff)
	}
}

func TestConfigValidation(t *testing.T) {
	base := TinyConfig(1)
	cases := map[string]func(c *Config){
		"noUsers":       func(c *Config) { c.NumUsers = 0 },
		"noEvents":      func(c *Config) { c.NumEvents = 0 },
		"noVenues":      func(c *Config) { c.NumVenues = 0 },
		"noCommunities": func(c *Config) { c.NumCommunities = 0 },
		"tinyVocab":     func(c *Config) { c.VocabSize = 3 },
		"noWords":       func(c *Config) { c.WordsPerDoc = 0 },
		"noDistricts":   func(c *Config) { c.NumDistricts = 0 },
		"emptyTime":     func(c *Config) { c.End = c.Start },
		"lowTarget":     func(c *Config) { c.TargetAttendance = 1 },
	}
	for name, mutate := range cases {
		c := base
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestPresetConfigsValid(t *testing.T) {
	for _, c := range []Config{TinyConfig(1), SmallConfig(1), BeijingConfig(1), ShanghaiConfig(1)} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s preset invalid: %v", c.Name, err)
		}
	}
}

func TestFilterMinEventsIntegration(t *testing.T) {
	d := tinyDataset(t, 11)
	f, err := d.FilterMinEvents(5)
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); int(u) < f.NumUsers; u++ {
		if len(f.UserEvents(u)) < 5 {
			t.Fatalf("user %d has %d events after filter", u, len(f.UserEvents(u)))
		}
	}
	if f.NumUsers == 0 {
		t.Fatal("filter removed every user; generator volume too thin")
	}
}

func TestAdjustWeekendType(t *testing.T) {
	mon := time.Date(2012, 3, 5, 0, 0, 0, 0, time.UTC) // Monday
	sat := adjustWeekendType(mon, true)
	if wd := sat.Weekday(); wd != time.Saturday && wd != time.Sunday {
		t.Errorf("weekend adjustment landed on %v", wd)
	}
	same := adjustWeekendType(mon, false)
	if !same.Equal(mon) {
		t.Errorf("weekday adjustment moved a Monday to %v", same)
	}
}

func TestHourDiffWrapsMidnight(t *testing.T) {
	if d := hourDiff(23, 1); d != 2 {
		t.Errorf("hourDiff(23,1) = %v, want 2", d)
	}
	if d := hourDiff(12, 12); d != 0 {
		t.Errorf("hourDiff(12,12) = %v", d)
	}
	if d := hourDiff(0, 12); d != 12 {
		t.Errorf("hourDiff(0,12) = %v", d)
	}
}

func TestMixtureHelpers(t *testing.T) {
	src := newTestSource()
	m := sparseMixture(10, 3, src)
	var sum float32
	nonzero := 0
	for _, p := range m {
		if p < 0 {
			t.Fatal("negative mixture weight")
		}
		if p > 0 {
			nonzero++
		}
		sum += p
	}
	if math.Abs(float64(sum)-1) > 1e-5 {
		t.Errorf("mixture sums to %v", sum)
	}
	if nonzero == 0 || nonzero > 3 {
		t.Errorf("sparse mixture has %d support points", nonzero)
	}
	p := perturbMixture(m, 0.2, src)
	sum = 0
	for _, v := range p {
		sum += v
	}
	if math.Abs(float64(sum)-1) > 1e-5 {
		t.Errorf("perturbed mixture sums to %v", sum)
	}
	for i := 0; i < 100; i++ {
		if idx := sampleMixture(m, src); idx < 0 || idx >= len(m) {
			t.Fatal("sampleMixture out of range")
		}
	}
}

func TestOracleBeatsRandomScorerUnderProtocol(t *testing.T) {
	// The oracle scores with the exact latent acceptance probabilities;
	// under the eval protocol it must dominate chance by a wide margin —
	// the ceiling any learned model is compared against.
	d, oracle, err := GenerateWithOracle(TinyConfig(51))
	if err != nil {
		t.Fatal(err)
	}
	s, err := ebsnet.ChronologicalSplit(d, ebsnet.DefaultSplitConfig())
	if err != nil {
		t.Fatal(err)
	}
	hits, cases := 0, 0
	for _, a := range s.TestAttendance[:min(300, len(s.TestAttendance))] {
		u, x := a[0], a[1]
		pos := oracle.ScoreUserEvent(u, x)
		rank := 1
		for _, other := range s.TestEvents {
			if other != x && !d.Attended(u, other) && oracle.ScoreUserEvent(u, other) >= pos {
				rank++
			}
		}
		if rank <= 10 {
			hits++
		}
		cases++
	}
	frac := float64(hits) / float64(cases)
	chance := 10.0 / float64(len(s.TestEvents))
	if frac < 3*chance {
		t.Errorf("oracle full-ranking hit@10 = %.3f, chance = %.3f", frac, chance)
	}
}

func TestOracleCommunityAccessors(t *testing.T) {
	_, oracle, err := GenerateWithOracle(TinyConfig(52))
	if err != nil {
		t.Fatal(err)
	}
	cfg := TinyConfig(52)
	for u := int32(0); u < 20; u++ {
		if c := oracle.UserCommunity(u); c < 0 || c >= cfg.NumCommunities {
			t.Fatalf("user community %d out of range", c)
		}
	}
	for x := int32(0); x < 20; x++ {
		if c := oracle.EventCommunity(x); c < 0 || c >= cfg.NumCommunities {
			t.Fatalf("event community %d out of range", c)
		}
	}
}

func TestOracleTripleFavorsFriendPartners(t *testing.T) {
	d, oracle, err := GenerateWithOracle(TinyConfig(53))
	if err != nil {
		t.Fatal(err)
	}
	// For a user with friends, a friend partner must outscore the same
	// partner with friendship hypothetically absent — directly from the
	// +1 friendship term. Verify via monotonicity across pairs instead:
	// friends average higher triple scores than strangers.
	var friendSum, strangerSum float64
	var nf, ns int
	for u := int32(0); int(u) < d.NumUsers && (nf < 200 || ns < 200); u++ {
		for v := int32(0); int(v) < d.NumUsers; v += 7 {
			if v == u {
				continue
			}
			s := float64(oracle.ScoreTriple(u, v, 0))
			if d.AreFriends(u, v) {
				friendSum += s
				nf++
			} else {
				strangerSum += s
				ns++
			}
		}
	}
	if nf == 0 || ns == 0 {
		t.Skip("no comparable pairs")
	}
	if friendSum/float64(nf) <= strangerSum/float64(ns) {
		t.Error("oracle triple score does not favor friends")
	}
}

func BenchmarkGenerateTiny(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(TinyConfig(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
