// Package datagen synthesizes Douban-Event-like EBSN datasets. The real
// benchmark of the paper is a proprietary crawl of Douban Event (Table I);
// this generator is the substitution documented in DESIGN.md §2. It plants
// exactly the regularities GEM exploits, so the reproduction exercises the
// same code paths and produces the same qualitative result shapes:
//
//   - Content regularity: users carry stable topic preferences; events have
//     topic mixtures realized as Zipfian word documents, so a cold event's
//     text predicts who will come.
//   - Geographic locality: venues cluster into districts; users have home
//     districts and discount distant events.
//   - Temporal periodicity: users prefer hours of day and weekday/weekend
//     types; events carry multi-scale start times.
//   - Social homophily and influence: friendships are seeded inside
//     communities, friends adopt each other's events, and co-attendance
//     breeds further friendships — giving the event-partner ground truth
//     real signal.
//
// Everything is driven by a single seed; identical configs produce
// identical datasets bit-for-bit.
package datagen

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"ebsn/internal/ebsnet"
	"ebsn/internal/geo"
	"ebsn/internal/rng"
)

// Config parameterizes a synthetic city.
type Config struct {
	Name string
	Seed uint64

	NumUsers  int
	NumEvents int
	NumVenues int

	// Latent structure.
	NumCommunities int // user interest communities
	NumTopics      int // event topic space
	VocabSize      int // distinct words
	WordsPerDoc    int // document length per event

	// Geography.
	CityCenter       geo.Point
	CityRadiusKm     float64
	NumDistricts     int
	DistrictSpreadKm float64

	// Interaction volume.
	TargetAttendance int
	FriendsPerUser   float64

	// Time range events are spread over.
	Start time.Time
	End   time.Time

	// Behavioural strengths, all in [0,1]; zero values are replaced by
	// defaults in Validate.
	SocialAdoptionProb float64 // chance an attendee slot is filled by a friend of an attendee
	CrossCommunityProb float64 // chance a candidate attendee is drawn outside the event's community
	CoAttendFriendProb float64 // chance a co-attending pair becomes friends
}

// Preset scales mirroring the paper's two cities plus small fixtures.
func TinyConfig(seed uint64) Config {
	return Config{
		Name: "tiny", Seed: seed,
		NumUsers: 300, NumEvents: 160, NumVenues: 40,
		NumCommunities: 8, NumTopics: 16, VocabSize: 400, WordsPerDoc: 12,
		CityCenter: geo.Point{Lat: 39.9042, Lng: 116.4074}, CityRadiusKm: 15,
		NumDistricts: 5, DistrictSpreadKm: 1.2,
		TargetAttendance: 4500, FriendsPerUser: 8,
		Start: time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2012, 12, 31, 0, 0, 0, 0, time.UTC),
	}
}

// SmallConfig is the default harness scale: big enough for stable
// accuracy estimates, small enough to train a model zoo in seconds.
func SmallConfig(seed uint64) Config {
	c := TinyConfig(seed)
	c.Name = "small"
	c.NumUsers, c.NumEvents, c.NumVenues = 2400, 900, 220
	c.NumCommunities, c.NumTopics, c.VocabSize = 24, 48, 2000
	c.WordsPerDoc = 20
	c.NumDistricts = 8
	c.TargetAttendance = 42000
	c.FriendsPerUser = 10
	return c
}

// BeijingConfig approximates the paper's Beijing dataset shape (Table I:
// 64,113 users; 12,955 events; 3,212 venues; 1.11M attendances; 865k
// friendship links).
func BeijingConfig(seed uint64) Config {
	c := TinyConfig(seed)
	c.Name = "beijing"
	c.NumUsers, c.NumEvents, c.NumVenues = 64113, 12955, 3212
	c.NumCommunities, c.NumTopics, c.VocabSize = 48, 96, 8000
	// Real Douban event descriptions run long; document length drives the
	// event-word edge mass that cold-start learning depends on.
	c.WordsPerDoc = 40
	c.NumDistricts, c.CityRadiusKm = 16, 25
	c.TargetAttendance = 1114097
	c.FriendsPerUser = 27 // 865,298 links / 64,113 users * 2 endpoints
	c.Start = time.Date(2005, 9, 1, 0, 0, 0, 0, time.UTC)
	c.End = time.Date(2012, 12, 31, 0, 0, 0, 0, time.UTC)
	return c
}

// ShanghaiConfig approximates the paper's Shanghai dataset shape (Table I:
// 36,440 users; 6,753 events; 1,990 venues; 482k attendances; 298k links).
func ShanghaiConfig(seed uint64) Config {
	c := BeijingConfig(seed)
	c.Name = "shanghai"
	c.CityCenter = geo.Point{Lat: 31.2304, Lng: 121.4737}
	c.NumUsers, c.NumEvents, c.NumVenues = 36440, 6753, 1990
	c.NumCommunities, c.NumTopics = 40, 80
	c.TargetAttendance = 482138
	c.FriendsPerUser = 16
	return c
}

// Validate fills defaults and rejects impossible configurations.
func (c *Config) Validate() error {
	if c.NumUsers <= 0 || c.NumEvents <= 0 || c.NumVenues <= 0 {
		return fmt.Errorf("datagen: sizes must be positive: users=%d events=%d venues=%d", c.NumUsers, c.NumEvents, c.NumVenues)
	}
	if c.NumCommunities <= 0 || c.NumTopics < c.NumCommunities/2 || c.VocabSize < 10 {
		return fmt.Errorf("datagen: latent structure invalid: communities=%d topics=%d vocab=%d", c.NumCommunities, c.NumTopics, c.VocabSize)
	}
	if c.WordsPerDoc <= 0 {
		return fmt.Errorf("datagen: WordsPerDoc must be positive")
	}
	if c.NumDistricts <= 0 || c.CityRadiusKm <= 0 || c.DistrictSpreadKm <= 0 {
		return fmt.Errorf("datagen: geography invalid")
	}
	if !c.Start.Before(c.End) {
		return fmt.Errorf("datagen: time range empty: %v .. %v", c.Start, c.End)
	}
	if c.TargetAttendance < c.NumEvents {
		return fmt.Errorf("datagen: TargetAttendance %d < NumEvents %d", c.TargetAttendance, c.NumEvents)
	}
	if c.SocialAdoptionProb == 0 {
		c.SocialAdoptionProb = 0.35
	}
	if c.CrossCommunityProb == 0 {
		c.CrossCommunityProb = 0.10
	}
	if c.CoAttendFriendProb == 0 {
		c.CoAttendFriendProb = 0.25
	}
	return nil
}

// latent holds the hidden variables the generator samples from; exposed to
// white-box tests via Generate's second return value.
type latent struct {
	userCommunity []int
	userHome      []geo.Point
	userHourPref  []float64 // preferred hour center in [0,24)
	userWeekend   []float64 // probability mass on weekend events
	userTopics    [][]float32
	userTopicMax  []float32 // max entry of userTopics, cached for affinity

	eventCommunity []int
	eventTopic     []int

	communityTopics    [][]float32 // mixture over topics per community
	communityDistricts []int       // home district per community
	districtCenters    []geo.Point
}

// Generate synthesizes a dataset. The returned dataset is finalized.
func Generate(cfg Config) (*ebsnet.Dataset, error) {
	d, _, err := generate(cfg)
	return d, err
}

func generate(cfg Config) (*ebsnet.Dataset, *latent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	src := rng.New(cfg.Seed)
	lat := &latent{}

	// --- Districts: venue clusters scattered inside the city radius.
	lat.districtCenters = make([]geo.Point, cfg.NumDistricts)
	for i := range lat.districtCenters {
		lat.districtCenters[i] = jitterKm(cfg.CityCenter, cfg.CityRadiusKm*0.6, src)
	}

	// --- Venues: each in a Zipf-weighted district with Gaussian spread,
	// so central districts are denser, like a real city.
	venueDistrict := make([]int, cfg.NumVenues)
	venues := make([]geo.Point, cfg.NumVenues)
	districtZipf := rng.NewZipf(0.8, cfg.NumDistricts)
	for v := range venues {
		dist := districtZipf.Sample(src)
		venueDistrict[v] = dist
		venues[v] = gaussKm(lat.districtCenters[dist], cfg.DistrictSpreadKm, src)
	}
	venuesByDistrict := make([][]int32, cfg.NumDistricts)
	for v, dist := range venueDistrict {
		venuesByDistrict[dist] = append(venuesByDistrict[dist], int32(v))
	}
	// Guarantee every district has at least one venue so community venue
	// choice below never dead-ends.
	for dist := range venuesByDistrict {
		if len(venuesByDistrict[dist]) == 0 {
			v := src.Intn(cfg.NumVenues)
			venueDistrict[v] = dist
			venues[v] = gaussKm(lat.districtCenters[dist], cfg.DistrictSpreadKm, src)
			venuesByDistrict[dist] = append(venuesByDistrict[dist], int32(v))
		}
	}

	// --- Communities: topic mixture, home district, temporal style.
	lat.communityTopics = make([][]float32, cfg.NumCommunities)
	lat.communityDistricts = make([]int, cfg.NumCommunities)
	commHour := make([]float64, cfg.NumCommunities)
	commWeekend := make([]float64, cfg.NumCommunities)
	for cm := 0; cm < cfg.NumCommunities; cm++ {
		lat.communityTopics[cm] = sparseMixture(cfg.NumTopics, 3, src)
		lat.communityDistricts[cm] = src.Intn(cfg.NumDistricts)
		commHour[cm] = []float64{10, 14, 19, 20, 21}[src.Intn(5)]
		commWeekend[cm] = 0.2 + 0.6*src.Float64()
	}

	// --- Users.
	lat.userCommunity = make([]int, cfg.NumUsers)
	lat.userHome = make([]geo.Point, cfg.NumUsers)
	lat.userHourPref = make([]float64, cfg.NumUsers)
	lat.userWeekend = make([]float64, cfg.NumUsers)
	lat.userTopics = make([][]float32, cfg.NumUsers)
	lat.userTopicMax = make([]float32, cfg.NumUsers)
	usersByCommunity := make([][]int32, cfg.NumCommunities)
	commZipf := rng.NewZipf(0.6, cfg.NumCommunities)
	for u := 0; u < cfg.NumUsers; u++ {
		cm := commZipf.Sample(src)
		lat.userCommunity[u] = cm
		usersByCommunity[cm] = append(usersByCommunity[cm], int32(u))
		lat.userHome[u] = gaussKm(lat.districtCenters[lat.communityDistricts[cm]], cfg.DistrictSpreadKm*2, src)
		lat.userHourPref[u] = math.Mod(commHour[cm]+src.Gaussian(0, 1.5)+24, 24)
		lat.userWeekend[u] = clamp01(commWeekend[cm] + src.Gaussian(0, 0.1))
		// Personal interests: one dominant topic drawn from the
		// community's mixture, a slice of the community's shared taste,
		// and a dash of something personal — sharp enough that users in
		// one community still differ from each other.
		topics := make([]float32, cfg.NumTopics)
		primary := sampleMixture(lat.communityTopics[cm], src)
		topics[primary] += 0.55
		for t, w := range lat.communityTopics[cm] {
			topics[t] += 0.35 * w
		}
		topics[src.Intn(cfg.NumTopics)] += 0.10
		lat.userTopics[u] = topics
		maxw := topics[0]
		for _, w := range topics {
			if w > maxw {
				maxw = w
			}
		}
		lat.userTopicMax[u] = maxw
	}
	for cm := range usersByCommunity {
		if len(usersByCommunity[cm]) == 0 {
			// Tiny configs can starve a community; adopt a random user.
			u := int32(src.Intn(cfg.NumUsers))
			usersByCommunity[cm] = append(usersByCommunity[cm], u)
		}
	}

	// --- Topic-word distributions: each topic owns a band of the
	// vocabulary with Zipfian word frequencies; neighboring topics
	// overlap so documents are not trivially separable.
	wordsPerTopic := cfg.VocabSize / cfg.NumTopics * 2 // 2x band width = 50% overlap
	if wordsPerTopic < 5 {
		wordsPerTopic = 5
	}
	topicWordZipf := rng.NewZipf(1.05, wordsPerTopic)
	topicBase := func(topic int) int {
		span := cfg.VocabSize - wordsPerTopic
		if span <= 0 {
			return 0
		}
		return topic * span / max(cfg.NumTopics-1, 1)
	}

	// --- Events.
	dataset := &ebsnet.Dataset{Name: cfg.Name, NumUsers: cfg.NumUsers, Venues: venues}
	lat.eventCommunity = make([]int, cfg.NumEvents)
	lat.eventTopic = make([]int, cfg.NumEvents)
	span := cfg.End.Sub(cfg.Start)
	for x := 0; x < cfg.NumEvents; x++ {
		cm := commZipf.Sample(src)
		lat.eventCommunity[x] = cm
		topic := sampleMixture(lat.communityTopics[cm], src)
		lat.eventTopic[x] = topic

		// Venue: usually the community's home district, sometimes anywhere.
		dist := lat.communityDistricts[cm]
		if src.Float64() < 0.25 {
			dist = src.Intn(cfg.NumDistricts)
		}
		venue := venuesByDistrict[dist][src.Intn(len(venuesByDistrict[dist]))]

		// Start time: event days are uniform over the span (so the
		// chronological split stays balanced); hour and weekday type
		// follow the community's temporal style.
		day := cfg.Start.Add(time.Duration(src.Float64() * float64(span)))
		day = time.Date(day.Year(), day.Month(), day.Day(), 0, 0, 0, 0, time.UTC)
		day = adjustWeekendType(day, src.Float64() < commWeekend[cm])
		hour := int(math.Mod(commHour[cm]+src.Gaussian(0, 1.2)+24, 24))
		start := day.Add(time.Duration(hour) * time.Hour)

		// Document: mostly the event's topic band, with some words from a
		// second topic of the community and a sprinkle of stopwords.
		words := make([]string, 0, cfg.WordsPerDoc)
		second := sampleMixture(lat.communityTopics[cm], src)
		for w := 0; w < cfg.WordsPerDoc; w++ {
			t := topic
			r := src.Float64()
			if r < 0.15 {
				t = second
			}
			if r > 0.92 {
				words = append(words, stopwordPool[src.Intn(len(stopwordPool))])
				continue
			}
			id := topicBase(t) + topicWordZipf.Sample(src)
			words = append(words, wordString(id))
		}
		dataset.Events = append(dataset.Events, ebsnet.Event{Venue: venue, Start: start, Words: words})
	}

	// --- Seed friendships inside communities (phase 1), used for social
	// adoption during attendance generation.
	friendSet := make(map[[2]int32]struct{})
	addFriend := func(a, b int32) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		friendSet[[2]int32{a, b}] = struct{}{}
	}
	phase1 := int(float64(cfg.NumUsers) * cfg.FriendsPerUser / 2 * 0.6)
	for i := 0; i < phase1; i++ {
		var a, b int32
		if src.Float64() < 0.8 {
			cm := commZipf.Sample(src)
			members := usersByCommunity[cm]
			a = members[src.Intn(len(members))]
			b = members[src.Intn(len(members))]
		} else {
			a = int32(src.Intn(cfg.NumUsers))
			b = int32(src.Intn(cfg.NumUsers))
		}
		addFriend(a, b)
	}
	friendAdj := buildAdj(friendSet, cfg.NumUsers)

	// --- Attendance: per-event head counts follow a Zipf popularity law
	// scaled to the target volume; attendees are drawn from the event's
	// community (or anywhere with CrossCommunityProb), filtered through a
	// topic/geo/time affinity acceptance test, and with
	// SocialAdoptionProb a slot is filled by a friend of an existing
	// attendee instead — the mechanism that makes friends co-attend.
	popularity := make([]float64, cfg.NumEvents)
	var popTotal float64
	popZipf := rng.NewZipf(0.9, cfg.NumEvents)
	// Draw a popularity profile by sampling the Zipf law; rank within the
	// event index is randomized by the sample itself.
	for x := range popularity {
		popularity[x] = 1 + float64(popZipf.Sample(src))
		popTotal += popularity[x]
	}
	attSeen := make(map[[2]int32]struct{})
	eventAttendees := make([][]int32, cfg.NumEvents)
	for x := 0; x < cfg.NumEvents; x++ {
		target := int(math.Round(popularity[x] / popTotal * float64(cfg.TargetAttendance)))
		if target < 2 {
			target = 2
		}
		if target > cfg.NumUsers/10 {
			target = cfg.NumUsers / 10
		}
		cm := lat.eventCommunity[x]
		tries := 0
		maxTries := target * 120
		for len(eventAttendees[x]) < target && tries < maxTries {
			tries++
			var u int32
			if len(eventAttendees[x]) > 0 && src.Float64() < cfg.SocialAdoptionProb {
				// Social adoption: a friend of a random attendee.
				a := eventAttendees[x][src.Intn(len(eventAttendees[x]))]
				fr := friendAdj[a]
				if len(fr) == 0 {
					continue
				}
				u = fr[src.Intn(len(fr))]
			} else if src.Float64() < cfg.CrossCommunityProb {
				u = int32(src.Intn(cfg.NumUsers))
			} else {
				members := usersByCommunity[cm]
				u = members[src.Intn(len(members))]
			}
			key := [2]int32{u, int32(x)}
			if _, dup := attSeen[key]; dup {
				continue
			}
			if src.Float64() > affinity(cfg, lat, dataset, u, int32(x)) {
				continue
			}
			attSeen[key] = struct{}{}
			eventAttendees[x] = append(eventAttendees[x], u)
			dataset.Attendance = append(dataset.Attendance, key)
		}
	}

	// --- Phase 2 friendships: co-attending pairs become friends, which
	// is what gives the "potential friends" scenario signal.
	for x := 0; x < cfg.NumEvents; x++ {
		att := eventAttendees[x]
		// Cap the per-event pair sampling so huge events don't dominate.
		pairs := len(att)
		for i := 0; i < pairs; i++ {
			a := att[src.Intn(len(att))]
			b := att[src.Intn(len(att))]
			if a != b && src.Float64() < cfg.CoAttendFriendProb {
				addFriend(a, b)
			}
		}
	}
	for key := range friendSet {
		dataset.Friendships = append(dataset.Friendships, key)
	}
	sortPairs(dataset.Friendships)
	sortPairs(dataset.Attendance)

	if err := dataset.Finalize(); err != nil {
		return nil, nil, err
	}
	return dataset, lat, nil
}

// affinity returns the acceptance probability for user u attending event
// x: the product of topic match, geographic decay, and temporal match.
// The factors are deliberately sharp — real event attendance is highly
// idiosyncratic (the paper's models reach Accuracy@10 ≈ 0.37 against 1000
// negatives, which requires strong per-user signal), so the synthetic
// ceiling must be comparable for the reproduction to be meaningful.
func affinity(cfg Config, lat *latent, d *ebsnet.Dataset, u, x int32) float64 {
	// Topic: normalized by the user's own strongest interest and squared,
	// so a user's primary topic dominates their secondary ones.
	topic := float64(lat.userTopics[u][lat.eventTopic[x]])
	rel := topic / float64(lat.userTopicMax[u])
	topicMatch := 0.02 + 0.98*rel*rel

	// Geography: a few kilometers is the scale at which people stop
	// showing up, regardless of city size.
	venue := d.Venues[d.Events[x].Venue]
	km := geo.EquirectKm(lat.userHome[u], venue)
	geoMatch := 0.05 + 0.95*math.Exp(-km/3.0)

	start := d.Events[x].Start
	hd := hourDiff(float64(start.Hour()), lat.userHourPref[u])
	timeMatch := math.Exp(-hd * hd / 8)
	isWeekend := start.Weekday() == time.Saturday || start.Weekday() == time.Sunday
	if isWeekend {
		timeMatch *= 0.25 + 0.75*lat.userWeekend[u]
	} else {
		timeMatch *= 0.25 + 0.75*(1-lat.userWeekend[u])
	}
	timeMatch = 0.05 + 0.95*timeMatch

	return clamp01(topicMatch * geoMatch * timeMatch)
}

func hourDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > 12 {
		d = 24 - d
	}
	return d
}

// adjustWeekendType nudges day forward to the nearest day matching the
// requested weekday type.
func adjustWeekendType(day time.Time, wantWeekend bool) time.Time {
	for i := 0; i < 7; i++ {
		wd := day.Weekday()
		isWeekend := wd == time.Saturday || wd == time.Sunday
		if isWeekend == wantWeekend {
			return day
		}
		day = day.AddDate(0, 0, 1)
	}
	return day
}

// sparseMixture returns a distribution over n items concentrated on k
// random support points.
func sparseMixture(n, k int, src *rng.Source) []float32 {
	m := make([]float32, n)
	var total float32
	for i := 0; i < k; i++ {
		w := float32(0.3 + src.Float64())
		m[src.Intn(n)] += w
		total += w
	}
	for i := range m {
		m[i] /= total
	}
	return m
}

// perturbMixture adds noise to a mixture and renormalizes.
func perturbMixture(base []float32, noise float64, src *rng.Source) []float32 {
	out := make([]float32, len(base))
	var total float32
	for i, b := range base {
		v := float64(b) + noise*src.Float64()/float64(len(base))*4
		out[i] = float32(v)
		total += out[i]
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// sampleMixture draws an index from a normalized mixture.
func sampleMixture(m []float32, src *rng.Source) int {
	u := src.Float32()
	var cum float32
	for i, p := range m {
		cum += p
		if u < cum {
			return i
		}
	}
	return len(m) - 1
}

// jitterKm returns a point uniform-ish within radiusKm of center.
func jitterKm(center geo.Point, radiusKm float64, src *rng.Source) geo.Point {
	r := radiusKm * math.Sqrt(src.Float64())
	theta := 2 * math.Pi * src.Float64()
	return offsetKm(center, r*math.Cos(theta), r*math.Sin(theta))
}

// gaussKm returns a point Gaussian-scattered around center.
func gaussKm(center geo.Point, sigmaKm float64, src *rng.Source) geo.Point {
	return offsetKm(center, src.Gaussian(0, sigmaKm), src.Gaussian(0, sigmaKm))
}

func offsetKm(p geo.Point, eastKm, northKm float64) geo.Point {
	const kmPerDegLat = 111.19
	lat := p.Lat + northKm/kmPerDegLat
	lng := p.Lng + eastKm/(kmPerDegLat*math.Cos(p.Lat*math.Pi/180))
	return geo.Point{Lat: lat, Lng: lng}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func buildAdj(pairs map[[2]int32]struct{}, n int) [][]int32 {
	adj := make([][]int32, n)
	for p := range pairs {
		adj[p[0]] = append(adj[p[0]], p[1])
		adj[p[1]] = append(adj[p[1]], p[0])
	}
	// Map iteration order is random; the generator samples from these
	// lists by index, so sort them to keep output deterministic per seed.
	for _, l := range adj {
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	}
	return adj
}

func sortPairs(pairs [][2]int32) {
	// Deterministic output ordering regardless of map iteration.
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
}

// wordString renders word IDs as distinct tokens.
func wordString(id int) string {
	return "w" + strconv.Itoa(id)
}

var stopwordPool = []string{"the", "and", "of", "to", "in", "a", "is", "for", "with", "on"}
