package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry owns an ordered set of metric families and renders them in
// the Prometheus text exposition format. Families are registered once at
// startup (registration takes a lock and panics on an invalid or
// duplicate name — a programmer error, as in the reference client);
// recording into the returned instruments is lock-free.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one exposition family: the HELP/TYPE header plus its
// children (one per label-value combination; exactly one, with no
// labels, for plain instruments).
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge" or "histogram"
	labels []string
	bounds []float64 // histogram families only

	mu    sync.Mutex
	order []*famChild
	byKey map[string]*famChild

	// Scrape-time families read a callback instead of owning state.
	gaugeFn   func() float64
	counterFn func() uint64
}

type famChild struct {
	labelValues []string
	inst        any // *Counter, *Gauge or *Histogram
}

// Counter registers and returns a plain counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil, nil)
	return f.child(nil).(*Counter)
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, "counter", labels, nil)}
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for monotone values owned elsewhere (cache hit counts, model
// step counters) that should not be mirrored into a second counter.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	f := r.register(name, help, "counter", nil, nil)
	f.counterFn = fn
}

// Gauge registers and returns a plain gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil, nil)
	return f.child(nil).(*Gauge)
}

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, "gauge", labels, nil)}
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time (uptime, cache occupancy, in-flight totals owned by a semaphore).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "gauge", nil, nil)
	f.gaugeFn = fn
}

// Histogram registers and returns a plain histogram with the given
// ascending bucket upper bounds in seconds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(name, help, "histogram", nil, bounds)
	return f.child(nil).(*Histogram)
}

// HistogramVec registers a histogram family with the given bounds and
// label names.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{fam: r.register(name, help, "histogram", labels, bounds)}
}

func (r *Registry) register(name, help, typ string, labels []string, bounds []float64) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q in family %s", l, name))
		}
	}
	if typ == "histogram" {
		if len(bounds) == 0 {
			panic(fmt.Sprintf("obs: histogram %s needs at least one bucket bound", name))
		}
		if !sort.Float64sAreSorted(bounds) {
			panic(fmt.Sprintf("obs: histogram %s bounds are not ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric family %q", name))
	}
	f := &family{
		name:   name,
		help:   help,
		typ:    typ,
		labels: append([]string(nil), labels...),
		bounds: append([]float64(nil), bounds...),
		byKey:  make(map[string]*famChild),
	}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

// child returns (creating on first use) the instrument for one
// label-value combination. Children render in creation order, which is
// deterministic for the fixed label sets the servers register up front.
func (f *family) child(labelValues []string) any {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: family %s has %d labels, got %d values", f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.byKey[key]; ok {
		return c.inst
	}
	c := &famChild{labelValues: append([]string(nil), labelValues...)}
	switch f.typ {
	case "counter":
		c.inst = &Counter{}
	case "gauge":
		c.inst = &Gauge{}
	case "histogram":
		c.inst = newHistogram(f.bounds)
	}
	f.byKey[key] = c
	f.order = append(f.order, c)
	return c.inst
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "le" { // le is reserved for histogram buckets
		return false
	}
	for i, c := range s {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// ---- exposition rendering ----

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (text/plain; version=0.0.4): # HELP and # TYPE
// headers, then one sample line per child — and for histograms the
// cumulative le-labeled bucket series with a trailing +Inf bucket plus
// the _sum and _count series. Families render in registration order and
// children in creation order, so the output is deterministic and
// golden-testable. Values are read without stopping writers; a scrape
// under load is approximate but every individual sample is a real value
// some moment saw.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	if f.gaugeFn != nil {
		writeSample(b, f.name, "", nil, nil, formatFloat(f.gaugeFn()))
		return
	}
	if f.counterFn != nil {
		writeSample(b, f.name, "", nil, nil, strconv.FormatUint(f.counterFn(), 10))
		return
	}
	f.mu.Lock()
	children := append([]*famChild(nil), f.order...)
	f.mu.Unlock()
	for _, c := range children {
		switch inst := c.inst.(type) {
		case *Counter:
			writeSample(b, f.name, "", f.labels, c.labelValues, strconv.FormatUint(inst.Value(), 10))
		case *Gauge:
			writeSample(b, f.name, "", f.labels, c.labelValues, formatFloat(inst.Value()))
		case *Histogram:
			writeHistogram(b, f, c, inst)
		}
	}
}

// writeHistogram renders one histogram child. Bucket counts accumulate
// low-to-high so the le series is monotone by construction, and the
// +Inf bucket equals _count even when observations race the scrape:
// each per-bucket load happens once and the sums derive from those
// loads, never from a second pass over moving counters.
func writeHistogram(b *strings.Builder, f *family, c *famChild, h *Histogram) {
	labels := append(append([]string(nil), f.labels...), "le")
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		vals := append(append([]string(nil), c.labelValues...), formatFloat(bound))
		writeSample(b, f.name, "_bucket", labels, vals, strconv.FormatUint(cum, 10))
	}
	cum += h.buckets[len(h.bounds)].Load()
	vals := append(append([]string(nil), c.labelValues...), "+Inf")
	writeSample(b, f.name, "_bucket", labels, vals, strconv.FormatUint(cum, 10))
	writeSample(b, f.name, "_sum", f.labels, c.labelValues, formatFloat(h.Sum()))
	writeSample(b, f.name, "_count", f.labels, c.labelValues, strconv.FormatUint(cum, 10))
}

func writeSample(b *strings.Builder, name, suffix string, labels, values []string, value string) {
	b.WriteString(name)
	b.WriteString(suffix)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(values[i]))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
