package obs

import (
	"io"
	"testing"
	"time"
)

// BenchmarkSpanDisabled is the CI alloc gate for the tracing fast path:
// the full Start/Stage/SetAttr/End sequence with tracing off must cost
// 0 allocs/op, so compiling tracing into the serving path is free when
// an operator leaves it disabled.
func BenchmarkSpanDisabled(b *testing.B) {
	tr := NewTracer(128, 25*time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("partners")
		sp.Stage("cache")
		sp.SetAttr("cache_hit", 0)
		sp.Stage("ta_search")
		sp.SetAttr("ta_random", int64(i))
		sp.Stage("encode")
		sp.End()
	}
}

// BenchmarkSpanEnabled measures the pooled live-span path (fast spans,
// below the slow threshold, so the ring buffer is never touched).
func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewTracer(128, time.Hour)
	tr.SetEnabled(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("partners")
		sp.Stage("cache")
		sp.SetAttr("cache_hit", 0)
		sp.Stage("ta_search")
		sp.SetAttr("ta_random", int64(i))
		sp.Stage("encode")
		sp.End()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram([]float64{0.0001, 0.001, 0.01, 0.1, 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(300 * time.Microsecond)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := goldenRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
