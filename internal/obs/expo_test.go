package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite exposition golden files")

// goldenRegistry builds a registry with every instrument kind at fixed
// values so the rendered exposition is byte-stable.
func goldenRegistry() *Registry {
	r := NewRegistry()
	req := r.CounterVec("ebsn_requests_total", "Requests served, by endpoint.", "endpoint")
	req.With("events").Add(6)
	req.With("partners").Add(5)
	r.Counter("ebsn_panics_total", "Recovered handler panics.").Add(1)
	r.Gauge("ebsn_in_flight", "Requests currently in flight.").Set(3)
	r.GaugeFunc("ebsn_uptime_seconds", "Seconds since process start.", func() float64 { return 12.5 })
	r.CounterFunc("ebsn_cache_hits_total", "Cache hits.", func() uint64 { return 17 })
	h := r.HistogramVec("ebsn_request_duration_seconds",
		"Request latency, by endpoint.", []float64{0.001, 0.01, 0.1}, "endpoint")
	eh := h.With("events")
	eh.Observe(500 * time.Microsecond)
	eh.Observe(5 * time.Millisecond)
	eh.Observe(2 * time.Second) // overflow bucket
	esc := r.GaugeVec("ebsn_escaped_gauge", "Has a tricky\nhelp string \\ with escapes.", "path")
	esc.With(`quo"te\slash`).Set(-1.5)
	return r
}

func TestExpositionGolden(t *testing.T) {
	var b bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", b.Bytes(), want)
	}
}

func TestExpositionLintsClean(t *testing.T) {
	var b bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := Lint(bytes.NewReader(b.Bytes())); err != nil {
		t.Fatalf("rendered exposition fails lint: %v", err)
	}
	samples, err := ParseText(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, s := range samples {
		got[s.Key()] = s.Value
	}
	for key, want := range map[string]float64{
		`ebsn_requests_total{endpoint="events"}`:                        6,
		`ebsn_requests_total{endpoint="partners"}`:                      5,
		`ebsn_in_flight`:                                                3,
		`ebsn_uptime_seconds`:                                           12.5,
		`ebsn_cache_hits_total`:                                         17,
		`ebsn_request_duration_seconds_bucket{endpoint="events",le="0.001"}`: 1,
		`ebsn_request_duration_seconds_bucket{endpoint="events",le="0.01"}`:  2,
		`ebsn_request_duration_seconds_bucket{endpoint="events",le="0.1"}`:   2,
		`ebsn_request_duration_seconds_bucket{endpoint="events",le="+Inf"}`:  3,
		`ebsn_request_duration_seconds_count{endpoint="events"}`:             3,
	} {
		if got[key] != want {
			t.Errorf("%s = %v, want %v", key, got[key], want)
		}
	}
}

func TestLintCatchesFormatViolations(t *testing.T) {
	cases := map[string]string{
		"sample before headers": "my_total 1\n",
		"missing TYPE":          "# HELP my_total x\nmy_total 1\n",
		"duplicate HELP":        "# HELP my_total x\n# HELP my_total y\n# TYPE my_total counter\nmy_total 1\n",
		"invalid type":          "# HELP my_total x\n# TYPE my_total bogus\nmy_total 1\n",
		"duplicate sample":      "# HELP my_total x\n# TYPE my_total counter\nmy_total 1\nmy_total 2\n",
		"interleaved families": "# HELP a_total x\n# TYPE a_total counter\na_total 1\n" +
			"# HELP b_total x\n# TYPE b_total counter\nb_total 1\na_total 2\n",
		"non-cumulative buckets": "# HELP h_seconds x\n# TYPE h_seconds histogram\n" +
			"h_seconds_bucket{le=\"0.1\"} 5\nh_seconds_bucket{le=\"+Inf\"} 3\nh_seconds_sum 1\nh_seconds_count 3\n",
		"missing +Inf bucket": "# HELP h_seconds x\n# TYPE h_seconds histogram\n" +
			"h_seconds_bucket{le=\"0.1\"} 5\nh_seconds_sum 1\nh_seconds_count 5\n",
		"bucket/count disagreement": "# HELP h_seconds x\n# TYPE h_seconds histogram\n" +
			"h_seconds_bucket{le=\"0.1\"} 5\nh_seconds_bucket{le=\"+Inf\"} 5\nh_seconds_sum 1\nh_seconds_count 7\n",
	}
	for name, text := range cases {
		if err := Lint(strings.NewReader(text)); err == nil {
			t.Errorf("%s: lint accepted invalid exposition", name)
		}
	}
}

// TestConcurrentRecordingAndScraping hammers every instrument kind from
// many goroutines while scrapes render concurrently — the shape the
// race job runs to prove recording is lock-free-safe. Totals are exact:
// nothing may be lost to races.
func TestConcurrentRecordingAndScraping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "x")
	v := r.CounterVec("v_total", "x", "who")
	g := r.Gauge("g", "x")
	h := r.Histogram("h_seconds", "x", []float64{0.001, 0.01, 0.1})
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := v.With("w") // all workers share one child: contended path
			for i := 0; i < perWorker; i++ {
				c.Inc()
				child.Inc()
				g.Add(1)
				h.ObserveSeconds(0.0005)
			}
		}(w)
	}
	// Concurrent scrapes must stay valid expositions throughout.
	var scrapeErr error
	var scrapeMu sync.Mutex
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var b bytes.Buffer
				if err := r.WritePrometheus(&b); err != nil {
					scrapeMu.Lock()
					scrapeErr = err
					scrapeMu.Unlock()
					return
				}
				if err := Lint(bytes.NewReader(b.Bytes())); err != nil {
					scrapeMu.Lock()
					scrapeErr = err
					scrapeMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if scrapeErr != nil {
		t.Fatalf("concurrent scrape: %v", scrapeErr)
	}
	total := uint64(workers * perWorker)
	if c.Value() != total {
		t.Fatalf("counter = %d, want %d", c.Value(), total)
	}
	if v.With("w").Value() != total {
		t.Fatalf("vec child = %d, want %d", v.With("w").Value(), total)
	}
	if g.Value() != float64(total) {
		t.Fatalf("gauge = %v, want %d", g.Value(), total)
	}
	if h.Count() != total {
		t.Fatalf("histogram count = %d, want %d", h.Count(), total)
	}
}
