package obs

import (
	"net/http"
	"net/http/pprof"
)

// PprofMux returns a mux exposing the standard net/http/pprof endpoints
// under /debug/pprof/. Both daemons mount it on the separate listener
// behind their -debug-addr flag — profiling stays off the serving port
// and off by default, and enabling it never touches the request path.
func PprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts PprofMux on addr in a new goroutine and reports
// startup errors to onErr (nil ignores them). It returns immediately;
// the listener lives for the life of the process, matching the
// debug-endpoint convention of long-lived daemons.
func ServeDebug(addr string, onErr func(error)) {
	go func() {
		if err := http.ListenAndServe(addr, PprofMux()); err != nil && onErr != nil {
			onErr(err)
		}
	}()
}
