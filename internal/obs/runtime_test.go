package obs

import (
	"strings"
	"testing"
)

func TestRegisterRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"go_memstats_heap_inuse_bytes",
		"go_memstats_heap_alloc_bytes",
		"go_memstats_alloc_bytes_total",
		"go_gc_cycles_total",
		"go_gc_pause_seconds",
		"go_goroutines",
	} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("exposition is missing %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "go_memstats_heap_inuse_bytes ") {
		t.Fatal("no heap in-use sample")
	}
}
