// Package obs is the repo-wide observability layer: lock-free metric
// instruments rendered in the Prometheus text exposition format, a
// request-scoped span tracer with a ring-buffer slow-query log, and the
// pprof debug mux both daemons mount behind their -debug-addr flags.
//
// # Metrics
//
// A Registry owns an ordered set of metric families. Instruments come in
// three kinds — Counter (monotone, atomic.Uint64), Gauge (float64,
// CAS-updated) and Histogram (fixed cumulative buckets, one atomic
// increment per observation) — each with a labeled Vec variant whose
// children are resolved once and then updated lock-free, so recording on
// a request or training hot path never takes a lock. Derived values that
// live elsewhere (cache occupancy, model step counters, uptime) are
// exported with GaugeFunc/CounterFunc, which read at scrape time instead
// of shadowing state in a second counter.
//
// WritePrometheus renders every family with its # HELP and # TYPE
// header, histogram buckets in cumulative le form with a trailing +Inf,
// and deterministic family and child order — the output is diffable and
// golden-testable. Lint checks a rendered exposition against the format
// rules (headers before samples, no duplicate or interleaved families,
// bucket monotonicity), and ParseText reads one back into a sample map;
// both exist so the serving tests and the package's own golden tests
// share one notion of "valid exposition".
//
// # Tracing
//
// A Tracer hands out Spans that carve one request into named stages
// (cache lookup, facade query, response encode, ...) and carry integer
// attributes (TA access counts, cache hit flags, pruning k). Tracing is
// designed to be compiled in and left off: when disabled, Start returns
// a nil *Span, every Span method no-ops on the nil receiver, and the hot
// path allocates nothing — BenchmarkSpanDisabled asserts 0 allocs/op and
// CI gates on it. When enabled, spans come from a sync.Pool, stage and
// attribute storage is fixed-size arrays, and a span whose total
// duration crosses the tracer's slow threshold is copied into a bounded
// ring buffer (SlowLog) that the server exposes at /v1/debug/slowlog —
// the first stop when a p99 regression needs a concrete offending query.
package obs
