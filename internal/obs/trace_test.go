package obs

import (
	"fmt"
	"testing"
	"time"
)

func TestDisabledTracerReturnsNilSpans(t *testing.T) {
	tr := NewTracer(8, time.Millisecond)
	sp := tr.Start("query")
	if sp != nil {
		t.Fatal("disabled tracer handed out a live span")
	}
	// The nil span must absorb the full call surface.
	sp.Stage("cache")
	sp.SetAttr("hit", 1)
	sp.End()
	if tr.Spans() != 0 || tr.Slow() != 0 {
		t.Fatalf("disabled tracer counted spans: %d/%d", tr.Spans(), tr.Slow())
	}
}

func TestSpanStagesAndSlowCapture(t *testing.T) {
	tr := NewTracer(8, time.Nanosecond) // everything is slow
	tr.SetEnabled(true)
	sp := tr.Start("partners")
	sp.Stage("cache")
	sp.SetAttr("cache_hit", 0)
	sp.Stage("ta_search")
	time.Sleep(2 * time.Millisecond)
	sp.SetAttr("ta_random", 123)
	sp.Stage("encode")
	sp.End()

	if tr.Spans() != 1 || tr.Slow() != 1 {
		t.Fatalf("spans/slow = %d/%d, want 1/1", tr.Spans(), tr.Slow())
	}
	entries := tr.SlowLog().Snapshot()
	if len(entries) != 1 {
		t.Fatalf("slowlog entries = %d", len(entries))
	}
	e := entries[0]
	if e.Name != "partners" || e.DurationMs <= 0 {
		t.Fatalf("entry = %+v", e)
	}
	if len(e.Stages) != 3 || e.Stages[0].Name != "cache" || e.Stages[1].Name != "ta_search" || e.Stages[2].Name != "encode" {
		t.Fatalf("stages = %+v", e.Stages)
	}
	if e.Stages[1].DurationMs < 1 {
		t.Fatalf("ta_search stage = %vms, want ≥ 1ms (slept 2ms)", e.Stages[1].DurationMs)
	}
	if e.Attrs["cache_hit"] != 0 || e.Attrs["ta_random"] != 123 {
		t.Fatalf("attrs = %+v", e.Attrs)
	}
	var sum float64
	for _, st := range e.Stages {
		sum += st.DurationMs
	}
	if sum > e.DurationMs+0.001 {
		t.Fatalf("stage durations %.3fms exceed total %.3fms", sum, e.DurationMs)
	}
}

func TestFastSpansAreNotCaptured(t *testing.T) {
	tr := NewTracer(8, time.Hour)
	tr.SetEnabled(true)
	sp := tr.Start("events")
	sp.Stage("cache")
	sp.End()
	if tr.Spans() != 1 {
		t.Fatalf("spans = %d", tr.Spans())
	}
	if tr.Slow() != 0 || len(tr.SlowLog().Snapshot()) != 0 {
		t.Fatal("fast span landed in the slowlog")
	}
}

func TestSlowLogRingEvictionNewestFirst(t *testing.T) {
	tr := NewTracer(3, time.Nanosecond)
	tr.SetEnabled(true)
	for i := 0; i < 5; i++ {
		sp := tr.Start(fmt.Sprintf("q%d", i))
		sp.End()
	}
	entries := tr.SlowLog().Snapshot()
	if len(entries) != 3 {
		t.Fatalf("retained = %d, want 3 (ring capacity)", len(entries))
	}
	for i, want := range []string{"q4", "q3", "q2"} {
		if entries[i].Name != want {
			t.Fatalf("entry %d = %s, want %s (newest first)", i, entries[i].Name, want)
		}
	}
	if tr.SlowLog().Total() != 5 {
		t.Fatalf("total = %d, want 5", tr.SlowLog().Total())
	}
}

func TestSpanOverflowTruncatesInsteadOfGrowing(t *testing.T) {
	tr := NewTracer(4, time.Nanosecond)
	tr.SetEnabled(true)
	sp := tr.Start("big")
	for i := 0; i < maxStages+3; i++ {
		sp.Stage("s")
	}
	for i := 0; i < maxAttrs+2; i++ {
		sp.SetAttr("k", int64(i))
	}
	sp.End()
	e := tr.SlowLog().Snapshot()[0]
	if len(e.Stages) != maxStages {
		t.Fatalf("stages = %d, want cap %d", len(e.Stages), maxStages)
	}
	if e.Truncated == 0 {
		t.Fatal("overflow not reported in Truncated")
	}
}

func TestTracerToggleMidStream(t *testing.T) {
	tr := NewTracer(4, 0) // threshold 0: slow capture disabled
	tr.SetEnabled(true)
	sp := tr.Start("a")
	sp.End()
	tr.SetEnabled(false)
	if tr.Start("b") != nil {
		t.Fatal("span handed out after disable")
	}
	if tr.Spans() != 1 {
		t.Fatalf("spans = %d", tr.Spans())
	}
	if tr.Slow() != 0 {
		t.Fatal("threshold 0 must disable slow capture")
	}
}
