package obs

import (
	"runtime"
	"sync"
	"time"
)

// runtimeSampler caches one runtime.ReadMemStats snapshot for a short
// interval so a /metrics scrape that reads several runtime gauges pays
// the (stop-the-world) collection once, and back-to-back scrapes from
// multiple collectors don't multiply it.
type runtimeSampler struct {
	mu    sync.Mutex
	at    time.Time
	stats runtime.MemStats
}

// read returns a memstats snapshot no older than one second.
func (s *runtimeSampler) read() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := time.Now(); now.Sub(s.at) > time.Second {
		runtime.ReadMemStats(&s.stats)
		s.at = now
	}
	return s.stats
}

// RegisterRuntimeMetrics registers Go runtime memory and GC telemetry
// on the registry, under the conventional go_* names so standard
// dashboards pick them up: heap in-use/allocated/idle bytes, cumulative
// GC pause time and cycle count, goroutine count, and total bytes ever
// allocated. All readings come from one cached runtime.ReadMemStats
// snapshot per scrape.
func RegisterRuntimeMetrics(reg *Registry) {
	s := &runtimeSampler{}
	reg.GaugeFunc("go_memstats_heap_inuse_bytes", "Bytes in in-use heap spans.",
		func() float64 { ms := s.read(); return float64(ms.HeapInuse) })
	reg.GaugeFunc("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { ms := s.read(); return float64(ms.HeapAlloc) })
	reg.GaugeFunc("go_memstats_heap_idle_bytes", "Bytes in idle (unused) heap spans.",
		func() float64 { ms := s.read(); return float64(ms.HeapIdle) })
	reg.GaugeFunc("go_memstats_next_gc_bytes", "Heap size at which the next GC cycle starts.",
		func() float64 { ms := s.read(); return float64(ms.NextGC) })
	reg.GaugeFunc("go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.CounterFunc("go_memstats_alloc_bytes_total", "Cumulative bytes allocated for heap objects.",
		func() uint64 { ms := s.read(); return ms.TotalAlloc })
	reg.CounterFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() uint64 { ms := s.read(); return uint64(ms.NumGC) })
	// Exposed as a float gauge rather than the integer counter type so
	// sub-second cumulative pause totals keep their precision.
	reg.GaugeFunc("go_gc_pause_seconds", "Cumulative stop-the-world GC pause time in seconds.",
		func() float64 { ms := s.read(); return float64(ms.PauseTotalNs) / 1e9 })
}
