package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.001, 0.01, 0.1, 1})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	for i := 0; i < 90; i++ {
		h.Observe(200 * time.Microsecond) // (0.0001, 0.001] bucket... 0.0002 ≤ 0.001
	}
	for i := 0; i < 10; i++ {
		h.Observe(80 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if mean := h.Mean(); mean < 0.005 || mean > 0.02 {
		t.Fatalf("mean = %vs, want ~0.008", mean)
	}
	p50 := h.Quantile(0.5)
	if p50 <= 0 || p50 > 0.001 {
		t.Fatalf("p50 = %vs, want in (0, 0.001]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 0.01 || p99 > 0.1 {
		t.Fatalf("p99 = %vs, want in [0.01, 0.1]", p99)
	}
	// Overflow beyond the last bound reports the last bound.
	h2 := r.Histogram("test_overflow_seconds", "latency", []float64{0.001})
	h2.Observe(30 * time.Second)
	if got := h2.Quantile(0.5); got != 0.001 {
		t.Fatalf("overflow quantile = %v, want 0.001", got)
	}
}

func TestVecChildrenAreStable(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("requests_total", "requests", "endpoint")
	a := v.With("events")
	b := v.With("partners")
	if a == b {
		t.Fatal("distinct label values share a child")
	}
	if v.With("events") != a {
		t.Fatal("same label values resolve to different children")
	}
	a.Inc()
	if b.Value() != 0 {
		t.Fatal("sibling child counts leaked")
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("dup_total", "x")
	mustPanic("duplicate family", func() { r.Counter("dup_total", "x") })
	mustPanic("invalid name", func() { r.Counter("0bad", "x") })
	mustPanic("invalid label", func() { r.CounterVec("ok_total", "x", "le") })
	mustPanic("unsorted bounds", func() { r.Histogram("h_seconds", "x", []float64{1, 0.5}) })
	mustPanic("empty bounds", func() { r.Histogram("h2_seconds", "x", nil) })
	v := r.CounterVec("labeled_total", "x", "a", "b")
	mustPanic("arity mismatch", func() { v.With("only-one") })
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if v := g.Value(); v != 0 {
		t.Fatalf("gauge after balanced adds = %v, want 0", v)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("escape_gauge", "tricky", "path")
	v.With("a\"b\\c\nd").Set(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `escape_gauge{path="a\"b\\c\nd"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("escaped sample not found in:\n%s", out)
	}
	samples, err := ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || samples[0].Get("path") != "a\"b\\c\nd" {
		t.Fatalf("round-trip lost the label value: %+v", samples)
	}
}

func TestGaugeFuncAndCounterFunc(t *testing.T) {
	r := NewRegistry()
	val := 0.0
	r.GaugeFunc("fn_gauge", "computed", func() float64 { return val })
	r.CounterFunc("fn_total", "computed", func() uint64 { return 42 })
	val = math.Pi
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, s := range samples {
		got[s.Key()] = s.Value
	}
	if got["fn_gauge"] != math.Pi {
		t.Fatalf("fn_gauge = %v", got["fn_gauge"])
	}
	if got["fn_total"] != 42 {
		t.Fatalf("fn_total = %v", got["fn_total"])
	}
}
