package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric: one atomic.Uint64, so
// Inc on a request hot path is a single lock-free instruction.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64-valued metric that can move both ways (in-flight
// requests, steps/sec). Updates CAS the float bits, so concurrent Set
// and Add calls never tear.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket duration histogram safe for concurrent
// use: one atomic increment per observation, no locks. Bucket upper
// bounds are in seconds (the Prometheus convention) and fixed at
// creation — the standard serving trade-off of lock-free recording
// against interpolated quantiles.
type Histogram struct {
	bounds  []float64       // ascending upper bounds, seconds
	buckets []atomic.Uint64 // len(bounds)+1; the last is +Inf overflow
	count   atomic.Uint64
	sumNs   atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:  bounds,
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.ObserveSeconds(d.Seconds())
}

// ObserveSeconds records one observation given in seconds.
func (h *Histogram) ObserveSeconds(s float64) {
	if s < 0 {
		s = 0
	}
	i := sort.SearchFloat64s(h.bounds, s)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(s * 1e9))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNs.Load()) / 1e9 }

// Mean returns the mean observation in seconds (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (0 < q ≤ 1) in seconds by linear
// interpolation inside the covering bucket. Observations beyond the
// last bound report the last bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	lower := 0.0
	for i := range h.buckets {
		if i == len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		b := float64(h.buckets[i].Load())
		upper := h.bounds[i]
		if b > 0 && cum+b >= rank {
			return lower + (rank-cum)/b*(upper-lower)
		}
		cum += b
		lower = upper
	}
	return h.bounds[len(h.bounds)-1]
}

// CounterVec is a counter family partitioned by label values. Children
// are created on first With and cached; callers on hot paths resolve
// their child once at startup and then update it lock-free.
type CounterVec struct {
	fam *family
}

// With returns the child counter for the given label values (one per
// label name declared at registration; With panics on arity mismatch).
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.fam.child(labelValues).(*Counter)
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct {
	fam *family
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.fam.child(labelValues).(*Gauge)
}

// HistogramVec is a histogram family partitioned by label values. All
// children share the family's bucket bounds.
type HistogramVec struct {
	fam *family
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.fam.child(labelValues).(*Histogram)
}
