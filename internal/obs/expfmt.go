package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name (including any
// _bucket/_sum/_count suffix), its label pairs in source order, and the
// value.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Label is one name="value" pair of a parsed sample.
type Label struct {
	Name  string
	Value string
}

// Get returns the value of the named label ("" when absent).
func (s Sample) Get(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Key renders the sample identity as name{a="b",c="d"} with labels in
// source order — the lookup key tests use against ParseText results.
func (s Sample) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, l := range s.Labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// ParseText reads a Prometheus text exposition and returns its samples
// in order. It accepts exactly the subset WritePrometheus emits (HELP
// and TYPE comments, sample lines); anything else is an error. It is
// the read half the exposition tests and Lint build on.
func ParseText(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		s, err := parseSample(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSample(text string) (Sample, error) {
	var s Sample
	rest := text
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value separator in %q", text)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", text)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q", rest)
	}
	s.Value = v
	return s, nil
}

func parseLabels(s string) ([]Label, error) {
	var out []Label
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, fmt.Errorf("label pair missing '=' in %q", s)
		}
		name := s[:eq]
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s value not quoted", name)
		}
		val, rest, err := unquoteLabel(s[1:])
		if err != nil {
			return nil, fmt.Errorf("label %s: %w", name, err)
		}
		out = append(out, Label{Name: name, Value: val})
		s = rest
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		}
	}
	return out, nil
}

func unquoteLabel(s string) (val, rest string, err error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(s[i])
			default:
				return "", "", fmt.Errorf("bad escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

// Lint verifies that a text exposition obeys the format rules a
// Prometheus scraper enforces, the exact list the exposition golden
// tests gate on:
//
//   - every family has # HELP and # TYPE, both before its first sample,
//     and a valid type;
//   - no family is declared twice and no family's samples interleave
//     with another's;
//   - no duplicate sample (same name and label set);
//   - histogram buckets are cumulative (monotone in le order), end in a
//     +Inf bucket, and agree with the _count series.
func Lint(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	fams := make(map[string]*famState)
	var current string
	seen := make(map[string]bool) // full sample keys
	var samples []Sample
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "# HELP ") || strings.HasPrefix(text, "# TYPE ") {
			parts := strings.SplitN(text, " ", 4)
			if len(parts) < 4 {
				return fmt.Errorf("line %d: malformed comment %q", line, text)
			}
			kind, name, arg := parts[1], parts[2], parts[3]
			f := fams[name]
			if f == nil {
				f = &famState{}
				fams[name] = f
			}
			if f.sampleCount > 0 {
				return fmt.Errorf("line %d: # %s %s after its samples", line, kind, name)
			}
			if current != "" && current != name {
				fams[current].closed = true
			}
			current = name
			switch kind {
			case "HELP":
				if f.sawHelp {
					return fmt.Errorf("line %d: duplicate HELP for %s", line, name)
				}
				f.sawHelp = true
			case "TYPE":
				if f.sawType {
					return fmt.Errorf("line %d: duplicate TYPE for %s", line, name)
				}
				switch arg {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: invalid type %q for %s", line, arg, name)
				}
				f.sawType = true
				f.typ = arg
			}
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue // free-form comment
		}
		s, err := parseSample(text)
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		fam := familyOf(s.Name, fams)
		f := fams[fam]
		if f == nil || !f.sawHelp || !f.sawType {
			return fmt.Errorf("line %d: sample %s before # HELP/# TYPE of %s", line, s.Name, fam)
		}
		if f.closed {
			return fmt.Errorf("line %d: sample %s interleaves with a later family", line, s.Name)
		}
		if current != "" && current != fam {
			fams[current].closed = true
		}
		current = fam
		key := s.Key()
		if seen[key] {
			return fmt.Errorf("line %d: duplicate sample %s", line, key)
		}
		seen[key] = true
		f.sampleCount++
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return lintHistograms(samples, fams)
}

// familyOf strips a histogram/summary series suffix when the base name
// is a declared family (a plain counter named x_count stays x_count).
func familyOf(name string, fams map[string]*famState) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f := fams[base]; f != nil {
				return base
			}
		}
	}
	return name
}

// famState tracks one family's declaration state while Lint scans.
type famState struct {
	typ         string
	sawHelp     bool
	sawType     bool
	closed      bool // a later family started; no more samples allowed
	sampleCount int
}

// lintHistograms checks every histogram series for cumulative bucket
// monotonicity, a +Inf terminal bucket, and bucket/_count agreement.
func lintHistograms(samples []Sample, fams map[string]*famState) error {
	type series struct {
		bounds []float64
		counts []float64
		count  float64
		hasCnt bool
		hasSum bool
	}
	hist := make(map[string]*series) // keyed by family + non-le labels
	keyOf := func(fam string, s Sample) string {
		var b strings.Builder
		b.WriteString(fam)
		for _, l := range s.Labels {
			if l.Name != "le" {
				fmt.Fprintf(&b, ",%s=%q", l.Name, l.Value)
			}
		}
		return b.String()
	}
	get := func(k string) *series {
		if hist[k] == nil {
			hist[k] = &series{}
		}
		return hist[k]
	}
	for _, s := range samples {
		fam := familyOf(s.Name, fams)
		if fams[fam] == nil || fams[fam].typ != "histogram" {
			continue
		}
		k := keyOf(fam, s)
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le := s.Get("le")
			if le == "" {
				return fmt.Errorf("histogram series %s: bucket without le label", s.Name)
			}
			bound := math.Inf(1)
			if le != "+Inf" {
				v, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("histogram series %s: bad le %q", s.Name, le)
				}
				bound = v
			}
			sr := get(k)
			sr.bounds = append(sr.bounds, bound)
			sr.counts = append(sr.counts, s.Value)
		case strings.HasSuffix(s.Name, "_count"):
			sr := get(k)
			sr.count = s.Value
			sr.hasCnt = true
		case strings.HasSuffix(s.Name, "_sum"):
			get(k).hasSum = true
		}
	}
	for k, sr := range hist {
		if len(sr.bounds) == 0 {
			return fmt.Errorf("histogram %s: no buckets", k)
		}
		if !sort.Float64sAreSorted(sr.bounds) {
			return fmt.Errorf("histogram %s: le bounds out of order", k)
		}
		if !math.IsInf(sr.bounds[len(sr.bounds)-1], 1) {
			return fmt.Errorf("histogram %s: missing +Inf bucket", k)
		}
		for i := 1; i < len(sr.counts); i++ {
			if sr.counts[i] < sr.counts[i-1] {
				return fmt.Errorf("histogram %s: bucket counts not cumulative at le=%v", k, sr.bounds[i])
			}
		}
		if !sr.hasCnt || !sr.hasSum {
			return fmt.Errorf("histogram %s: missing _count or _sum series", k)
		}
		if sr.counts[len(sr.counts)-1] != sr.count {
			return fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", k, sr.counts[len(sr.counts)-1], sr.count)
		}
	}
	return nil
}
