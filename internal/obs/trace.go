package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span capacity limits. Stages and attributes live in fixed-size arrays
// so an enabled span performs no per-stage allocation; extra entries
// beyond the caps are dropped (and counted in truncated) rather than
// grown — a trace that needs more than eight stages is a trace that
// should be split.
const (
	maxStages = 8
	maxAttrs  = 12
)

// Tracer hands out request-scoped spans. The disabled fast path is the
// design center: Start returns a nil *Span when tracing is off, every
// Span method no-ops on the nil receiver, and nothing escapes to the
// heap — BenchmarkSpanDisabled holds the whole Start/Stage/SetAttr/End
// sequence to 0 allocs/op. Enabled spans are pooled; a span whose total
// duration reaches the slow threshold is copied into the tracer's
// SlowLog ring buffer on End.
type Tracer struct {
	enabled atomic.Bool
	slowNs  atomic.Int64
	spans   atomic.Uint64
	slow    atomic.Uint64
	log     *SlowLog
	pool    sync.Pool
}

// NewTracer creates a disabled tracer whose slow-query log keeps the
// most recent logCap slow spans (minimum 1) and whose slow threshold is
// slowThreshold (values ≤ 0 disable slow-query capture, spans are still
// counted).
func NewTracer(logCap int, slowThreshold time.Duration) *Tracer {
	if logCap < 1 {
		logCap = 1
	}
	t := &Tracer{log: newSlowLog(logCap)}
	t.slowNs.Store(int64(slowThreshold))
	t.pool.New = func() any { return &Span{} }
	return t
}

// SetEnabled flips tracing; safe to call at any time.
func (t *Tracer) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether Start currently returns live spans.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// SetSlowThreshold replaces the slow-query threshold (≤ 0 disables
// slow-query capture).
func (t *Tracer) SetSlowThreshold(d time.Duration) { t.slowNs.Store(int64(d)) }

// SlowThreshold returns the current slow-query threshold.
func (t *Tracer) SlowThreshold() time.Duration { return time.Duration(t.slowNs.Load()) }

// Spans returns the number of spans completed while tracing was on.
func (t *Tracer) Spans() uint64 { return t.spans.Load() }

// Slow returns the number of completed spans that crossed the slow
// threshold.
func (t *Tracer) Slow() uint64 { return t.slow.Load() }

// SlowLog returns the tracer's slow-query ring buffer.
func (t *Tracer) SlowLog() *SlowLog { return t.log }

// Start begins a span named name. When tracing is disabled it returns
// nil, which every Span method accepts — callers never branch.
func (t *Tracer) Start(name string) *Span {
	if !t.enabled.Load() {
		return nil
	}
	s := t.pool.Get().(*Span)
	s.t = t
	s.name = name
	s.nStages = 0
	s.nAttrs = 0
	s.truncated = 0
	s.start = time.Now()
	s.stageStart = s.start
	return s
}

type stageRec struct {
	name string
	dur  time.Duration
	// done marks a stage whose duration was supplied explicitly
	// (StageDur) or already finalized; closeStage leaves it untouched.
	done bool
}

type attrRec struct {
	key string
	val int64
}

// Span is one traced request. A nil *Span is the disabled form; all
// methods are nil-safe. Spans are single-goroutine objects: the request
// handler that Started one owns it until End.
type Span struct {
	t          *Tracer
	name       string
	start      time.Time
	stageStart time.Time
	nStages    int
	stages     [maxStages]stageRec
	nAttrs     int
	attrs      [maxAttrs]attrRec
	truncated  int
}

// Stage closes the span's current stage (if any) and opens a new one
// named name. Stage boundaries are how a slow query decomposes into
// cache lookup → facade call → encode.
func (s *Span) Stage(name string) {
	if s == nil {
		return
	}
	now := time.Now()
	s.closeStage(now)
	if s.nStages < maxStages {
		s.stages[s.nStages] = stageRec{name: name}
		s.nStages++
	} else {
		s.truncated++
	}
	s.stageStart = now
}

// StageDur records an already-completed stage with an explicit
// duration — the shape concurrent work needs: stages that ran in
// parallel (the engine's per-shard searches) cannot be measured as
// wall time between Stage calls, so the caller times each one itself
// and reports the durations here. The wall-time stage opened by the
// last Stage call is closed first, exactly as Stage would close it.
func (s *Span) StageDur(name string, d time.Duration) {
	if s == nil {
		return
	}
	now := time.Now()
	s.closeStage(now)
	if s.nStages < maxStages {
		s.stages[s.nStages] = stageRec{name: name, dur: d, done: true}
		s.nStages++
	} else {
		s.truncated++
	}
	s.stageStart = now
}

// closeStage finalizes the duration of the currently open stage. Stages
// recorded with explicit durations are already done and stay untouched.
func (s *Span) closeStage(now time.Time) {
	if s.nStages > 0 && s.nStages <= maxStages && !s.stages[s.nStages-1].done {
		s.stages[s.nStages-1].dur = now.Sub(s.stageStart)
		s.stages[s.nStages-1].done = true
	}
}

// SetAttr attaches an integer attribute (TA access counts, cache hit
// flags, pruning k) to the span.
func (s *Span) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	if s.nAttrs < maxAttrs {
		s.attrs[s.nAttrs] = attrRec{key: key, val: v}
		s.nAttrs++
	} else {
		s.truncated++
	}
}

// End closes the span: the open stage is finalized, the span counts
// toward the tracer's totals, and — when the total duration reaches the
// slow threshold — a copy lands in the slow-query log. The span returns
// to the pool; callers must not touch it after End.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.closeStage(now)
	total := now.Sub(s.start)
	t := s.t
	t.spans.Add(1)
	if thr := t.slowNs.Load(); thr > 0 && int64(total) >= thr {
		t.slow.Add(1)
		t.log.add(s, total)
	}
	s.t = nil
	t.pool.Put(s)
}

// SlowStage is one stage of a slow-query log entry.
type SlowStage struct {
	Name       string  `json:"name"`
	DurationMs float64 `json:"duration_ms"`
}

// SlowEntry is one captured slow query: when it happened, how long it
// took end to end, the per-stage decomposition, and the integer
// attributes the handler attached (cache hit, TA access counts, ...).
type SlowEntry struct {
	Time       time.Time        `json:"time"`
	Name       string           `json:"name"`
	DurationMs float64          `json:"duration_ms"`
	Stages     []SlowStage      `json:"stages"`
	Attrs      map[string]int64 `json:"attrs,omitempty"`
	Truncated  int              `json:"truncated,omitempty"`
}

// SlowLog is a bounded ring buffer of the most recent slow queries.
// Writes happen on the (rare) slow path under a mutex; Snapshot copies
// entries out newest-first for the /v1/debug/slowlog endpoint.
type SlowLog struct {
	mu      sync.Mutex
	entries []SlowEntry
	next    int
	filled  bool
	total   uint64
}

func newSlowLog(capacity int) *SlowLog {
	return &SlowLog{entries: make([]SlowEntry, capacity)}
}

// add copies the span's data into the ring. The span is still owned by
// the caller; nothing retained aliases it.
func (l *SlowLog) add(s *Span, total time.Duration) {
	e := SlowEntry{
		Time:       s.start,
		Name:       s.name,
		DurationMs: float64(total) / 1e6,
		Truncated:  s.truncated,
	}
	if s.nStages > 0 {
		e.Stages = make([]SlowStage, s.nStages)
		for i := 0; i < s.nStages; i++ {
			e.Stages[i] = SlowStage{Name: s.stages[i].name, DurationMs: float64(s.stages[i].dur) / 1e6}
		}
	}
	if s.nAttrs > 0 {
		e.Attrs = make(map[string]int64, s.nAttrs)
		for i := 0; i < s.nAttrs; i++ {
			e.Attrs[s.attrs[i].key] = s.attrs[i].val
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries[l.next] = e
	l.next++
	if l.next == len(l.entries) {
		l.next = 0
		l.filled = true
	}
	l.total++
}

// Total returns how many slow queries were ever captured (including
// ones the ring has since evicted).
func (l *SlowLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the retained slow queries, newest first.
func (l *SlowLog) Snapshot() []SlowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.filled {
		n = len(l.entries)
	}
	out := make([]SlowEntry, 0, n)
	for i := 0; i < n; i++ {
		idx := l.next - 1 - i
		if idx < 0 {
			idx += len(l.entries)
		}
		out = append(out, l.entries[idx])
	}
	return out
}
