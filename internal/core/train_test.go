package core

import (
	"context"
	"testing"
	"time"
)

// TestWorkerDecayGridCoversSingleThreadGrid verifies the Hogwild decay
// schedule: the union of the staggered workers' effective-α grid
// positions {Offset + s·Threads} must be exactly the single-thread grid
// {0, …, n−1} — each decay position visited once, none skipped.
func TestWorkerDecayGridCoversSingleThreadGrid(t *testing.T) {
	cases := []struct {
		n       int64
		threads int
	}{
		{10, 3}, {12, 4}, {7, 8}, {1, 2}, {100_003, 7}, {64, 1}, {5, 5},
	}
	for _, tc := range cases {
		spans := planWorkers(tc.n, tc.threads)
		var total int64
		seen := make(map[int64]bool, tc.n)
		for _, span := range spans {
			total += span.Steps
			for s := int64(0); s < span.Steps; s++ {
				pos := span.Offset + s*int64(tc.threads)
				if pos < 0 || pos >= tc.n {
					t.Fatalf("n=%d threads=%d: decay position %d outside [0,%d)",
						tc.n, tc.threads, pos, tc.n)
				}
				if seen[pos] {
					t.Fatalf("n=%d threads=%d: decay position %d visited twice",
						tc.n, tc.threads, pos)
				}
				seen[pos] = true
			}
		}
		if total != tc.n {
			t.Fatalf("n=%d threads=%d: workers sum to %d steps", tc.n, tc.threads, total)
		}
		if int64(len(seen)) != tc.n {
			t.Fatalf("n=%d threads=%d: %d of %d decay positions covered",
				tc.n, tc.threads, len(seen), tc.n)
		}
	}
}

func TestTrainStepsCtxPreCanceled(t *testing.T) {
	m := newTestModel(t, func(c *Config) { c.Threads = 3 })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if taken := m.TrainStepsCtx(ctx, 10_000); taken != 0 {
		t.Fatalf("pre-canceled context took %d steps", taken)
	}
	if m.Steps() != 0 {
		t.Fatalf("step counter advanced to %d without training", m.Steps())
	}
}

func TestTrainStepsCtxCancelStopsEarly(t *testing.T) {
	m := newTestModel(t, func(c *Config) { c.K = 8; c.Threads = 2 })
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(30*time.Millisecond, cancel)

	const budget = int64(1) << 40 // would run for years uncanceled
	taken := m.TrainStepsCtx(ctx, budget)
	if taken < 0 || taken >= budget {
		t.Fatalf("taken = %d, want 0 <= taken < %d", taken, budget)
	}
	if taken == 0 {
		// On a heavily loaded box the timer can win before the first
		// step; the counter consistency below is still meaningful.
		t.Log("cancel fired before the first step boundary")
	}
	if m.Steps() != taken {
		t.Fatalf("Steps() = %d, TrainStepsCtx returned %d", m.Steps(), taken)
	}

	// Training resumes cleanly after cancellation.
	if taken := m.TrainStepsCtx(context.Background(), 1000); taken != 1000 {
		t.Fatalf("post-cancel training took %d steps, want 1000", taken)
	}
}

func TestTrainStepsCtxFullRunCountsExactly(t *testing.T) {
	m := newTestModel(t, func(c *Config) { c.Threads = 4 })
	if taken := m.TrainStepsCtx(context.Background(), 10_007); taken != 10_007 {
		t.Fatalf("taken = %d, want 10007", taken)
	}
	if m.Steps() != 10_007 {
		t.Fatalf("Steps() = %d, want 10007", m.Steps())
	}
}

func TestValidateRejectsNegativeTotalSteps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalSteps = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative TotalSteps accepted (would silently disable decay)")
	}
	cfg.TotalSteps = 0 // explicitly disabled decay stays legal
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zero TotalSteps rejected: %v", err)
	}
}
