package core

import (
	"testing"

	"ebsn/internal/graph"
	"ebsn/internal/rng"
	"ebsn/internal/vecmath"
)

// stepScalarReference is the pre-fusion Model.step body, preserved
// verbatim as the oracle for the kernel swap: straight-line float32
// loops, separate Dot/FastSigmoid calls, interleaved endpoint apply.
// Single-thread training must stay bit-identical between this and the
// fused Model.step for the swap to count as a pure throughput change.
func stepScalarReference(m *Model, rel *Relation, src *rng.Source, alpha float32, errI, errJ []float32, ss *sampleScratch) {
	e := rel.G.SampleEdge(src)
	vi := rel.A.Row(e.A)
	vj := rel.B.Row(e.B)
	mNeg := m.Cfg.NegativeSamples

	g := alpha * (1 - vecmath.FastSigmoid(vecmath.Dot(vi, vj)))
	for f := range errI {
		errI[f] = g * vj[f]
		errJ[f] = g * vi[f]
	}

	for t := 0; t < mNeg; t++ {
		k := int32(-1)
		for try := 0; try < 5; try++ {
			c := m.noiseNode(rel, graph.SideB, vi, src, ss)
			if c == e.B || (rel.G.Symmetric() && c == e.A) {
				continue
			}
			if m.Cfg.RejectObserved && rel.G.HasEdge(e.A, c) {
				continue
			}
			k = c
			break
		}
		if k < 0 {
			continue
		}
		vk := rel.B.Row(k)
		s := alpha * vecmath.FastSigmoid(vecmath.Dot(vi, vk))
		for f := range errI {
			errI[f] -= s * vk[f]
			vk[f] -= s * vi[f]
		}
		if m.Cfg.NonNegative {
			vecmath.ClampNonNeg(vk)
		}
	}

	if m.Cfg.Bidirectional {
		for t := 0; t < mNeg; t++ {
			k := int32(-1)
			for try := 0; try < 5; try++ {
				c := m.noiseNode(rel, graph.SideA, vj, src, ss)
				if c == e.A || (rel.G.Symmetric() && c == e.B) {
					continue
				}
				if m.Cfg.RejectObserved && rel.G.HasEdge(c, e.B) {
					continue
				}
				k = c
				break
			}
			if k < 0 {
				continue
			}
			vk := rel.A.Row(k)
			s := alpha * vecmath.FastSigmoid(vecmath.Dot(vk, vj))
			for f := range errJ {
				errJ[f] -= s * vk[f]
				vk[f] -= s * vj[f]
			}
			if m.Cfg.NonNegative {
				vecmath.ClampNonNeg(vk)
			}
		}
	}

	for f := range errI {
		vi[f] += errI[f]
		vj[f] += errJ[f]
	}
	if m.Cfg.NonNegative {
		vecmath.ClampNonNeg(vi)
		vecmath.ClampNonNeg(vj)
	}
}

// trainScalarReference mirrors the single-thread trainWorker loop —
// same decay schedule, same graph picks, same RNG stream — but applies
// stepScalarReference instead of the fused step.
func trainScalarReference(m *Model, steps int64) {
	errI := make([]float32, m.Cfg.K)
	errJ := make([]float32, m.Cfg.K)
	ss := &sampleScratch{}
	for s := int64(0); s < steps; s++ {
		alpha := m.Cfg.LearningRate
		if m.Cfg.TotalSteps > 0 {
			frac := 1 - float32(m.steps+s)/float32(m.Cfg.TotalSteps)
			if frac < 1e-4 {
				frac = 1e-4
			}
			alpha *= frac
		}
		rel := &m.Relations[m.graphPick.Sample(m.src)]
		if raceEnabled {
			m.hogwildMu.Lock()
		}
		stepScalarReference(m, rel, m.src, alpha, errI, errJ, ss)
		if raceEnabled {
			m.hogwildMu.Unlock()
		}
	}
	m.steps += steps
}

// TestTrainStepMatchesScalarReference is the determinism regression
// test for the fused-kernel swap: two models with the same seed, one
// trained through the fused Model.step, one through the preserved
// scalar-reference step, must end bit-identical in every embedding
// matrix. The run is long enough (multiple of cancelCheckMask+1, and
// of the samplers' refresh cadence) to cross several rank rebuilds.
func TestTrainStepMatchesScalarReference(t *testing.T) {
	for _, variant := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"default", nil},
		{"decay+nonneg", func(c *Config) { c.TotalSteps = 30000; c.NonNegative = true }},
	} {
		t.Run(variant.name, func(t *testing.T) {
			fused := newTestModel(t, variant.mutate)
			ref := newTestModel(t, variant.mutate)
			const steps = 30000
			fused.TrainSteps(steps)
			trainScalarReference(ref, steps)

			pairs := []struct {
				name string
				a, b *Matrix
			}{
				{"Users", fused.Users, ref.Users},
				{"Events", fused.Events, ref.Events},
				{"Locations", fused.Locations, ref.Locations},
				{"Times", fused.Times, ref.Times},
				{"Words", fused.Words, ref.Words},
			}
			for _, p := range pairs {
				for i := range p.a.Data {
					if p.a.Data[i] != p.b.Data[i] {
						t.Fatalf("%s[%d]: fused %v != scalar reference %v",
							p.name, i, p.a.Data[i], p.b.Data[i])
					}
				}
			}
		})
	}
}

// TestMultiThreadTrainingDecreasesObjective is the Hogwild smoke test:
// the fused kernels must keep lock-free multi-thread training
// optimizing, even though its exact trajectory is scheduling-dependent.
func TestMultiThreadTrainingDecreasesObjective(t *testing.T) {
	m := newTestModel(t, func(c *Config) { c.Threads = 4 })
	before, err := m.EstimateObjective(20000, 11)
	if err != nil {
		t.Fatal(err)
	}
	m.TrainSteps(40000)
	after, err := m.EstimateObjective(20000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !(after.Total < before.Total) {
		t.Fatalf("objective did not decrease under 4-thread training: %v -> %v",
			before.Total, after.Total)
	}
}
