package core

import (
	"testing"
)

// TestTrainStatsCountsDraws holds the telemetry to exact accounting:
// every gradient step draws exactly one positive edge, so the per-graph
// draw counts must sum to the step count — across both the sequential
// and the Hogwild paths, whose flush points differ.
func TestTrainStatsCountsDraws(t *testing.T) {
	for _, threads := range []int{1, 4} {
		m := newTestModel(t, func(c *Config) { c.Threads = threads })
		const steps = 2000
		m.TrainSteps(steps)
		st := m.TrainStats()
		if st.Steps != steps {
			t.Fatalf("threads=%d: TrainStats.Steps = %d, want %d", threads, st.Steps, steps)
		}
		var total int64
		for name, n := range st.EdgeDraws {
			if n < 0 {
				t.Fatalf("threads=%d: negative draw count for %s", threads, name)
			}
			total += n
		}
		if total != steps {
			t.Fatalf("threads=%d: edge draws sum to %d, want %d", threads, total, steps)
		}
		// Proportional graph sampling on a dataset where user_event
		// dominates must show up in the draw distribution.
		if st.EdgeDraws["user_event"] == 0 {
			t.Fatalf("threads=%d: no user_event draws in %v", threads, st.EdgeDraws)
		}
	}
}

// TestTrainStatsRankRebuilds checks the adaptive sampler reports its
// ranking refreshes: the constructor's initial computation counts, and
// durations are recorded.
func TestTrainStatsRankRebuilds(t *testing.T) {
	m := newTestModel(t, func(c *Config) { c.Sampler = SamplerAdaptive })
	st := m.TrainStats()
	if st.RankRebuilds == 0 {
		t.Fatal("initial ranking computations not counted")
	}
	if st.RankRebuildTotal <= 0 {
		t.Fatalf("RankRebuildTotal = %v, want > 0", st.RankRebuildTotal)
	}
	if st.RankRebuildLast <= 0 {
		t.Fatalf("RankRebuildLast = %v, want > 0", st.RankRebuildLast)
	}
	before := st.RankRebuilds
	m.TrainSteps(60_000) // enough draws to cross the refresh cadence
	after := m.TrainStats().RankRebuilds
	if after <= before {
		t.Fatalf("rank rebuilds did not advance under training: %d -> %d", before, after)
	}
}

// TestRelationNameStability pins the telemetry label values: they key
// dashboards and the exposition golden files.
func TestRelationNameStability(t *testing.T) {
	want := []string{"user_event", "event_time", "event_word", "event_location", "user_user"}
	for i, w := range want {
		if got := RelationName(i); got != w {
			t.Fatalf("RelationName(%d) = %q, want %q", i, got, w)
		}
	}
}
