package core

import "fmt"

// SamplerKind selects the noise-node distribution used to build negative
// edges.
type SamplerKind int

const (
	// SamplerDegree is P_n(v) ∝ deg(v)^0.75, the word2vec/LINE default
	// used by GEM-P and PTE.
	SamplerDegree SamplerKind = iota
	// SamplerUniform draws noise nodes uniformly, the PCMF-style
	// strawman.
	SamplerUniform
	// SamplerAdaptive is the paper's rank-based adversarial sampler in
	// its fast approximate form (Algorithm 1): sample a rank from the
	// Geometric distribution, sample a dimension from p(f|v_c) ∝
	// v_{c,f}·σ_f, and return the node at that rank in the per-dimension
	// ranking.
	SamplerAdaptive
	// SamplerAdaptiveExact is the exact implementation of Eqn. 6 — it
	// ranks all nodes by σ(v_c·v_k) for every draw. O(|V|·K) per sample,
	// usable only on small graphs; kept for the approximation-quality
	// ablation.
	SamplerAdaptiveExact
)

func (s SamplerKind) String() string {
	switch s {
	case SamplerDegree:
		return "degree"
	case SamplerUniform:
		return "uniform"
	case SamplerAdaptive:
		return "adaptive"
	case SamplerAdaptiveExact:
		return "adaptive-exact"
	default:
		return fmt.Sprintf("SamplerKind(%d)", int(s))
	}
}

// GraphSampling selects how Algorithm 2 picks which bipartite graph to
// draw the next positive edge from.
type GraphSampling int

const (
	// GraphProportional samples a graph with probability proportional to
	// its edge count — the paper's joint training (Algorithm 2, Line 3).
	GraphProportional GraphSampling = iota
	// GraphUniform gives every graph equal probability, the PTE behaviour
	// the paper criticizes for over-exploiting small graphs.
	GraphUniform
)

func (g GraphSampling) String() string {
	if g == GraphProportional {
		return "proportional"
	}
	return "uniform"
}

// Config holds every hyper-parameter of GEM training. Zero values are
// replaced with the paper's tuned defaults by Validate.
type Config struct {
	// K is the embedding dimension; the paper settles on 60 (Table IV).
	K int
	// LearningRate is the SGD step size α; the paper uses 0.05.
	LearningRate float32
	// NegativeSamples is M, the noise nodes drawn per side per positive
	// edge; the paper uses 2.
	NegativeSamples int
	// Lambda is the Geometric density parameter λ of the adaptive
	// sampler; the paper settles on 200 (Table V).
	Lambda float64
	// InitStdDev is the Gaussian initialization scale (paper: 0.01).
	InitStdDev float64

	Sampler       SamplerKind
	Bidirectional bool
	GraphSampling GraphSampling

	// TotalSteps, when positive, enables the standard LINE/word2vec
	// linear learning-rate decay: the effective rate at step t is
	// LearningRate·max(1e-4, 1 − t/TotalSteps). The paper optimizes "following
	// [15], [21]" (Hogwild and LINE), both of which decay the rate; a
	// fixed rate never stops churning the embeddings under adversarial
	// negatives. Zero disables decay.
	TotalSteps int64

	// NonNegative applies the rectifier projection after each update, as
	// the paper describes. Our reproduction defaults it OFF: with every
	// vector clamped non-negative, every inner product is ≥ 0, so
	// σ(v·v_k) ≥ 0.5 for every sampled noise pair — the repulsive
	// gradient never vanishes and the only fixed point is the zero
	// embedding. Empirically the projection collapses all norms to ~0.02
	// and accuracy to chance (see BenchmarkAblationReLU and DESIGN.md);
	// without it the model learns as the paper reports. The adaptive
	// sampler and the TA index are sign-aware, so nothing downstream
	// needs the projection.
	NonNegative bool
	// RejectObserved skips noise nodes that form an actually observed
	// edge with the context node, honoring the definition of negative
	// edges as unobserved ones. Costs one hash lookup per noise node.
	RejectObserved bool

	// Threads is the asynchronous-SGD worker count; 1 means sequential.
	Threads int
	Seed    uint64
}

// DefaultConfig returns the paper's tuned GEM-A hyper-parameters.
func DefaultConfig() Config {
	return Config{
		K:               60,
		LearningRate:    0.05,
		NegativeSamples: 2,
		Lambda:          200,
		InitStdDev:      0.01,
		Sampler:         SamplerAdaptive,
		Bidirectional:   true,
		GraphSampling:   GraphProportional,
		NonNegative:     false,
		RejectObserved:  true,
		Threads:         1,
		Seed:            1,
	}
}

// GEMAConfig is the full model with the adaptive adversarial sampler.
func GEMAConfig() Config { return DefaultConfig() }

// GEMPConfig is GEM with the degree-based noise sampler (still
// bidirectional, still edge-proportional joint training).
func GEMPConfig() Config {
	c := DefaultConfig()
	c.Sampler = SamplerDegree
	return c
}

// PTEConfig reproduces the PTE baseline: unidirectional degree-based
// negative sampling and uniform graph selection in joint training.
func PTEConfig() Config {
	c := DefaultConfig()
	c.Sampler = SamplerDegree
	c.Bidirectional = false
	c.GraphSampling = GraphUniform
	return c
}

// Validate fills defaults and rejects nonsensical values.
func (c *Config) Validate() error {
	if c.K == 0 {
		c.K = 60
	}
	if c.K < 0 {
		return fmt.Errorf("core: K must be positive, got %d", c.K)
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.LearningRate < 0 {
		return fmt.Errorf("core: LearningRate must be positive, got %v", c.LearningRate)
	}
	if c.NegativeSamples == 0 {
		c.NegativeSamples = 2
	}
	if c.NegativeSamples < 0 {
		return fmt.Errorf("core: NegativeSamples must be positive, got %d", c.NegativeSamples)
	}
	if c.Lambda == 0 {
		c.Lambda = 200
	}
	if c.Lambda < 0 {
		return fmt.Errorf("core: Lambda must be positive, got %v", c.Lambda)
	}
	if c.InitStdDev == 0 {
		c.InitStdDev = 0.01
	}
	if c.TotalSteps < 0 {
		return fmt.Errorf("core: TotalSteps must be non-negative (0 disables decay), got %d", c.TotalSteps)
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	if c.Threads < 0 {
		return fmt.Errorf("core: Threads must be positive, got %d", c.Threads)
	}
	switch c.Sampler {
	case SamplerDegree, SamplerUniform, SamplerAdaptive, SamplerAdaptiveExact:
	default:
		return fmt.Errorf("core: unknown sampler %d", c.Sampler)
	}
	switch c.GraphSampling {
	case GraphProportional, GraphUniform:
	default:
		return fmt.Errorf("core: unknown graph sampling %d", c.GraphSampling)
	}
	return nil
}
