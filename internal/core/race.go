//go:build race

package core

// raceEnabled gates the Hogwild serialization in trainWorker: the
// trainer's benign embedding races (asynchronous SGD, exactly as in
// the paper) would otherwise flood `go test -race` and mask real data
// races in the code around it.
const raceEnabled = true
