package core

import (
	"fmt"
	"time"

	"ebsn/internal/text"
	"ebsn/internal/timeslot"
	"ebsn/internal/vecmath"
)

// ColdEvent describes an event that did not exist at training time: its
// content words, its region, and its start time. FoldIn synthesizes an
// embedding for it from the already-trained word/location/time vectors —
// the same information channel that gives training-time cold events their
// vectors, applied after the fact. This is the extension feature a live
// recommendation service needs: new events arrive continuously and
// retraining per event is not an option.
type ColdEvent struct {
	Words  []string
	Region int32
	Start  time.Time
}

// FoldIn returns an embedding for a cold event as the TF-IDF-weighted
// average of its word vectors blended with its region and time-slot
// vectors. The blend weights mirror the relative edge mass the three
// context graphs contribute during training (one location edge, three
// time edges, and the document's TF-IDF mass).
func (s *Snapshot) FoldIn(vocab *text.Vocabulary, ev ColdEvent) ([]float32, error) {
	if int(ev.Region) < 0 || int(ev.Region) >= s.Locations.N {
		return nil, fmt.Errorf("core: fold-in region %d out of range [0,%d)", ev.Region, s.Locations.N)
	}
	k := s.Cfg.K
	out := make([]float32, k)

	// Content: TF-IDF-weighted mean of word vectors.
	var contentMass float32
	for _, ww := range vocab.TFIDF(ev.Words) {
		vecmath.Axpy(ww.Weight, s.Words.Row(ww.Word), out)
		contentMass += ww.Weight
	}
	if contentMass > 0 {
		vecmath.Scale(1/contentMass, out)
	}

	// Context: region plus the three multi-scale time slots.
	ctx := make([]float32, k)
	vecmath.Axpy(1, s.Locations.Row(ev.Region), ctx)
	for _, slot := range timeslot.Slots(ev.Start) {
		vecmath.Axpy(1, s.Times.Row(slot), ctx)
	}
	vecmath.Scale(1.0/4.0, ctx)

	// Content carries most of the cold-start signal; context refines it.
	for f := range out {
		out[f] = 0.7*out[f] + 0.3*ctx[f]
	}
	if s.Cfg.NonNegative {
		vecmath.ClampNonNeg(out)
	}
	return out, nil
}

// ScoreUserColdEvent scores a folded-in event vector for user u.
func (s *Snapshot) ScoreUserColdEvent(u int32, eventVec []float32) float32 {
	return vecmath.Dot(s.Users.Row(u), eventVec)
}
