package core

import (
	"sync/atomic"
	"time"
)

// maxRelations bounds the fixed per-graph draw-counter array so Hogwild
// workers can accumulate into plain stack int64s and flush without
// allocating. The model has five relations; the headroom is free.
const maxRelations = 8

// relationNames are the stable telemetry labels for Relations, in the
// order NewModel constructs them. They name the metric label values in
// the training exposition, so changing one is a dashboard break.
var relationNames = [...]string{
	"user_event", "event_time", "event_word", "event_location", "user_user",
}

// RelationName returns the stable telemetry name of relation index i
// (the index into Model.Relations), or "relation_<i>" past the known
// set.
func RelationName(i int) string {
	if i >= 0 && i < len(relationNames) {
		return relationNames[i]
	}
	return "relation_" + string(rune('0'+i%10))
}

// trainCounters is the model's lock-free training telemetry. Workers
// accumulate edge draws in stack-local arrays and flush here at batch
// boundaries (every cancel-check interval and at worker exit), so the
// hot loop never touches a shared cache line; rank rebuilds record
// directly because they run at most once per |V|·log|V| draws.
type trainCounters struct {
	stepsDone     atomic.Int64
	edgeDraws     [maxRelations]atomic.Int64
	rankRebuilds  atomic.Int64
	rankRebuildNs atomic.Int64
	rankLastNs    atomic.Int64
}

// flush adds a worker's locally accumulated draws and step count.
func (c *trainCounters) flush(draws *[maxRelations]int64, steps int64) {
	for gi, d := range draws {
		if d != 0 {
			c.edgeDraws[gi].Add(d)
			draws[gi] = 0
		}
	}
	if steps != 0 {
		c.stepsDone.Add(steps)
	}
}

// recordRebuild records one ranking refresh of duration d.
func (c *trainCounters) recordRebuild(d time.Duration) {
	c.rankRebuilds.Add(1)
	c.rankRebuildNs.Add(d.Nanoseconds())
	c.rankLastNs.Store(d.Nanoseconds())
}

// TrainStats is a point-in-time snapshot of the model's training
// telemetry. All fields are safe to read while training runs; Steps
// advances live (per cancel-check interval, 256 steps), unlike
// Model.Steps which is the decay-schedule position and only moves at
// TrainSteps boundaries.
type TrainStats struct {
	// Steps counts gradient steps completed in this process. After a
	// checkpoint resume it restarts at zero while Model.Steps resumes at
	// the snapshot position.
	Steps int64
	// EdgeDraws counts positive-edge draws per relation graph, keyed by
	// RelationName. Proportions converge to the Algorithm 2 Line 3 graph
	// distribution; a skew is a sampler bug.
	EdgeDraws map[string]int64
	// RankRebuilds counts adaptive-sampler ranking refreshes, including
	// each ranking's build-time initial computation.
	RankRebuilds int64
	// RankRebuildTotal is wall-clock time spent inside refreshes.
	RankRebuildTotal time.Duration
	// RankRebuildLast is the duration of the most recent refresh.
	RankRebuildLast time.Duration
}

// TrainStats snapshots the model's training telemetry. Cheap (a handful
// of atomic loads plus one small map) and safe concurrently with
// TrainSteps, so a metrics goroutine can call it on every scrape.
func (m *Model) TrainStats() TrainStats {
	st := TrainStats{
		Steps:            m.stats.stepsDone.Load(),
		EdgeDraws:        make(map[string]int64, len(m.Relations)),
		RankRebuilds:     m.stats.rankRebuilds.Load(),
		RankRebuildTotal: time.Duration(m.stats.rankRebuildNs.Load()),
		RankRebuildLast:  time.Duration(m.stats.rankLastNs.Load()),
	}
	for i := range m.Relations {
		st.EdgeDraws[RelationName(i)] = m.stats.edgeDraws[i].Load()
	}
	return st
}
