//go:build !race

package core

// See race.go: normal builds keep Hogwild lock-free, so the guarded
// branches in trainWorker are dead code eliminated by the compiler.
const raceEnabled = false
