package core

import (
	"context"
	"sync"

	"ebsn/internal/graph"
	"ebsn/internal/rng"
	"ebsn/internal/vecmath"
)

// TrainSteps advances the model by n gradient steps of Algorithm 2: each
// step samples a graph (edge-count proportional or uniform), a positive
// edge within it (weight proportional — the paper's edge-sampling trick),
// 2M negative edges via the configured noise sampler, and applies the
// Eqn. 5 updates. With Cfg.Threads > 1 the steps are divided among
// Hogwild-style lock-free workers; embedding reads and writes race
// benignly exactly as in the paper's asynchronous SGD.
//
// TrainSteps may be called repeatedly; Tables II/III checkpoint a single
// run by alternating TrainSteps and evaluation.
func (m *Model) TrainSteps(n int64) {
	m.TrainStepsCtx(context.Background(), n)
}

// TrainStepsCtx is TrainSteps with cooperative cancellation: when ctx is
// canceled every worker stops at its next step boundary (no update is
// abandoned mid-write), and the model's step counter advances by exactly
// the steps actually taken — a checkpoint written afterwards resumes the
// decay schedule where training really stopped. Returns the number of
// steps taken (n unless canceled).
func (m *Model) TrainStepsCtx(ctx context.Context, n int64) int64 {
	if n <= 0 {
		return 0
	}
	if m.Cfg.Threads <= 1 {
		taken := m.trainWorker(ctx, n, m.src, m.steps, 1)
		m.steps += taken
		return taken
	}
	spans := planWorkers(n, m.Cfg.Threads)
	taken := make([]int64, len(spans))
	var wg sync.WaitGroup
	for w, span := range spans {
		if span.Steps <= 0 {
			continue
		}
		m.workerSeq++
		src := m.src.Split(m.workerSeq)
		wg.Add(1)
		go func(w int, span workerSpan, src *rng.Source) {
			defer wg.Done()
			// Workers interleave in step space for the decay schedule: an
			// exact global counter would serialize them. Worker w owns the
			// grid positions m.steps + Offset + s·Threads.
			taken[w] = m.trainWorker(ctx, span.Steps, src, m.steps+span.Offset, int64(m.Cfg.Threads))
		}(w, span, src)
	}
	wg.Wait()
	var total int64
	for _, t := range taken {
		total += t
	}
	m.steps += total
	return total
}

// workerSpan is one Hogwild worker's slice of an n-step run: Steps
// gradient steps at the decay-grid offsets Offset, Offset+Threads,
// Offset+2·Threads, ...
type workerSpan struct {
	Steps  int64
	Offset int64
}

// planWorkers splits an n-step budget across threads so the union of
// the workers' decay grids {Offset + s·threads : s < Steps} is exactly
// {0, …, n−1}: worker w is staggered to offset w, and the n mod threads
// remainder steps go to the first workers (whose grids extend furthest).
func planWorkers(n int64, threads int) []workerSpan {
	spans := make([]workerSpan, threads)
	per, rem := n/int64(threads), n%int64(threads)
	for w := range spans {
		spans[w] = workerSpan{Steps: per, Offset: int64(w)}
		if int64(w) < rem {
			spans[w].Steps++
		}
	}
	return spans
}

// cancelCheckMask batches the cancellation check to every 256 steps:
// cheap enough to keep the hot loop tight, frequent enough that SIGINT
// during training feels immediate.
const cancelCheckMask = 255

// trainScratch bundles one worker's per-step buffers: the two Eqn. 5
// error accumulators and the exact sampler's ranking scratch. Pooled so
// short TrainSteps calls (the serve daemon's incremental refreshes, the
// benchmarks' timed sections) reach a zero-allocation steady state
// instead of paying three make()s per call.
type trainScratch struct {
	errI, errJ []float32
	ss         sampleScratch
}

var trainScratchPool sync.Pool

func getTrainScratch(k int) *trainScratch {
	if ts, ok := trainScratchPool.Get().(*trainScratch); ok && cap(ts.errI) >= k {
		ts.errI = ts.errI[:k]
		ts.errJ = ts.errJ[:k]
		return ts
	}
	return &trainScratch{
		errI: make([]float32, k),
		errJ: make([]float32, k),
	}
}

// trainWorker runs up to steps sequential gradient steps on one RNG
// stream, stopping early at a step boundary if ctx is canceled; it
// returns the steps actually taken. startStep and stride position this
// worker in the global step count for the learning-rate decay schedule.
func (m *Model) trainWorker(ctx context.Context, steps int64, src *rng.Source, startStep, stride int64) int64 {
	done := ctx.Done()
	ts := getTrainScratch(m.Cfg.K)
	defer trainScratchPool.Put(ts)
	errI, errJ, ss := ts.errI, ts.errJ, &ts.ss
	// Edge-draw telemetry accumulates in a stack-local array and flushes
	// to the shared atomics at the cancel-check cadence — the hot loop
	// stays free of contended cache lines and the flush itself is a plain
	// method call, so the zero-allocation steady state holds.
	var draws [maxRelations]int64
	var flushed int64
	for s := int64(0); s < steps; s++ {
		if done != nil && s&cancelCheckMask == 0 {
			m.stats.flush(&draws, s-flushed)
			flushed = s
			select {
			case <-done:
				return s
			default:
			}
		}
		alpha := m.Cfg.LearningRate
		if m.Cfg.TotalSteps > 0 {
			frac := 1 - float32(startStep+s*stride)/float32(m.Cfg.TotalSteps)
			if frac < 1e-4 {
				frac = 1e-4
			}
			alpha *= frac
		}
		gi := m.graphPick.Sample(src)
		draws[gi]++
		rel := &m.Relations[gi]
		// Hogwild's unsynchronized embedding updates are the paper's
		// design, but they drown the race detector in benign reports and
		// hide real synchronization bugs elsewhere. Race builds serialize
		// the gradient step; normal builds compile this away.
		if raceEnabled {
			m.hogwildMu.Lock()
		}
		m.step(rel, src, alpha, errI, errJ, ss)
		if raceEnabled {
			m.hogwildMu.Unlock()
		}
	}
	m.stats.flush(&draws, steps-flushed)
	return steps
}

// step performs one positive edge update with 2M (or M, unidirectional)
// negative edges, following Eqn. 5. The arithmetic lives in the fused
// vecmath kernels (DotSigmoidGrad*, ScaleInto, AxpyTwo, Axpy), each of
// which is property-tested bit-identical to the scalar loops this
// function used to inline — so the swap changes throughput, never the
// trained parameters (TestTrainStepMatchesScalarReference holds the
// whole step to that standard).
func (m *Model) step(rel *Relation, src *rng.Source, alpha float32, errI, errJ []float32, ss *sampleScratch) {
	e := rel.G.SampleEdge(src)
	vi := rel.A.Row(e.A)
	vj := rel.B.Row(e.B)
	mNeg := m.Cfg.NegativeSamples

	// Positive term: g = α(1 - σ(vi·vj)) applied to both endpoints. The
	// endpoint updates accumulate in err buffers so each noise comparison
	// sees the pre-step vectors, mirroring LINE's implementation.
	g := vecmath.DotSigmoidGradPos(alpha, vi, vj)
	vecmath.ScaleInto(g, vj, errI)
	vecmath.ScaleInto(g, vi, errJ)

	// Noise on side B against context vi (the unidirectional direction).
	// A drawn node that is invalid as a negative (the positive endpoint
	// itself, or an observed neighbor under RejectObserved) is redrawn a
	// few times rather than dropped: the adaptive sampler's top-ranked
	// candidates are frequently true neighbors, and silently losing those
	// slots would starve exactly the sampler the paper advocates.
	for t := 0; t < mNeg; t++ {
		k := int32(-1)
		for try := 0; try < 5; try++ {
			c := m.noiseNode(rel, graph.SideB, vi, src, ss)
			if c == e.B || (rel.G.Symmetric() && c == e.A) {
				continue
			}
			if m.Cfg.RejectObserved && rel.G.HasEdge(e.A, c) {
				continue
			}
			k = c
			break
		}
		if k < 0 {
			continue
		}
		vk := rel.B.Row(k)
		// vk is never vi or vj (the redraw loop above excludes both
		// positive endpoints), so AxpyTwo's no-alias precondition holds.
		s := vecmath.DotSigmoidGrad(alpha, vi, vk)
		vecmath.AxpyTwo(s, vi, vk, errI)
		if m.Cfg.NonNegative {
			vecmath.ClampNonNeg(vk)
		}
	}

	// Noise on side A against context vj (the bidirectional extension,
	// Eqn. 4): without it the B-side vectors only ever see their positive
	// partners and cannot discriminate.
	if m.Cfg.Bidirectional {
		for t := 0; t < mNeg; t++ {
			k := int32(-1)
			for try := 0; try < 5; try++ {
				c := m.noiseNode(rel, graph.SideA, vj, src, ss)
				if c == e.A || (rel.G.Symmetric() && c == e.B) {
					continue
				}
				if m.Cfg.RejectObserved && rel.G.HasEdge(c, e.B) {
					continue
				}
				k = c
				break
			}
			if k < 0 {
				continue
			}
			vk := rel.A.Row(k)
			s := vecmath.DotSigmoidGrad(alpha, vk, vj)
			vecmath.AxpyTwo(s, vj, vk, errJ)
			if m.Cfg.NonNegative {
				vecmath.ClampNonNeg(vk)
			}
		}
	}

	// Apply the accumulated endpoint updates. vi and vj are distinct rows
	// (SampleEdge never returns self-loops), so the split into two axpys
	// is element-for-element the old interleaved loop.
	if m.Cfg.NonNegative {
		vecmath.AxpyClampNonNeg(1, errI, vi)
		vecmath.AxpyClampNonNeg(1, errJ, vj)
	} else {
		vecmath.Axpy(1, errI, vi)
		vecmath.Axpy(1, errJ, vj)
	}
}
