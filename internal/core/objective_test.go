package core

import (
	"math"
	"testing"
)

func TestLogSigmoidStable(t *testing.T) {
	cases := map[float64]float64{
		0:    math.Log(0.5),
		2:    math.Log(1 / (1 + math.Exp(-2))),
		-2:   math.Log(1 / (1 + math.Exp(2))),
		700:  0,
		-700: -700,
	}
	for x, want := range cases {
		got := logSigmoid(x)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("logSigmoid(%v) = %v, want %v", x, got, want)
		}
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("logSigmoid(%v) not finite: %v", x, got)
		}
	}
}

func TestEstimateObjectiveDecreasesWithTraining(t *testing.T) {
	m := newTestModel(t, nil)
	before, err := m.EstimateObjective(4000, 9)
	if err != nil {
		t.Fatal(err)
	}
	m.TrainSteps(150_000)
	after, err := m.EstimateObjective(4000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if after.Total >= before.Total {
		t.Errorf("objective did not decrease: %.4f -> %.4f", before.Total, after.Total)
	}
	if after.Samples != 4000 {
		t.Errorf("Samples = %d", after.Samples)
	}
	// Every relation that received samples reports a finite positive loss.
	for name, v := range after.PerRelation {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("relation %s loss = %v", name, v)
		}
	}
	if len(after.PerRelation) < 4 {
		t.Errorf("only %d relations sampled", len(after.PerRelation))
	}
}

func TestEstimateObjectiveDeterministic(t *testing.T) {
	m := newTestModel(t, nil)
	m.TrainSteps(5000)
	a, err := m.EstimateObjective(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.EstimateObjective(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total {
		t.Errorf("same seed, different estimates: %v vs %v", a.Total, b.Total)
	}
}

func TestEstimateObjectiveValidation(t *testing.T) {
	m := newTestModel(t, nil)
	if _, err := m.EstimateObjective(0, 1); err == nil {
		t.Error("samples=0 accepted")
	}
}

func TestEstimateObjectiveUntrainedNearLog2(t *testing.T) {
	// At near-zero initialization every dot is ~0, σ ≈ 0.5, so the loss
	// per term is ~log 2: total ≈ (1 + 2M) log 2 for bidirectional M
	// negatives a side (up to skipped self-collisions).
	m := newTestModel(t, nil)
	est, err := m.EstimateObjective(3000, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(1+2*m.Cfg.NegativeSamples) * math.Ln2
	if math.Abs(est.Total-want) > 0.15*want {
		t.Errorf("untrained objective %.4f, want ≈ %.4f", est.Total, want)
	}
}
