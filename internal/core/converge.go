package core

import "fmt"

// ConvergenceConfig drives TrainUntilConverged: the paper determines each
// model's required sample count N by training until the validation metric
// stops improving (Tables II/III show exactly those plateaus), and this
// API packages that procedure.
type ConvergenceConfig struct {
	// CheckEvery is the number of gradient steps between metric
	// evaluations.
	CheckEvery int64
	// MaxSteps bounds the total budget (0 = 64 × CheckEvery).
	MaxSteps int64
	// Patience is how many consecutive non-improving checks are allowed
	// before stopping (default 2 — the paper's tables flatline for
	// several rows before the authors call it converged).
	Patience int
	// MinDelta is the improvement threshold; smaller gains count as a
	// plateau (default 1e-4).
	MinDelta float64
}

func (c *ConvergenceConfig) fill() error {
	if c.CheckEvery <= 0 {
		return fmt.Errorf("core: CheckEvery must be positive")
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 64 * c.CheckEvery
	}
	if c.MaxSteps < c.CheckEvery {
		return fmt.Errorf("core: MaxSteps %d below CheckEvery %d", c.MaxSteps, c.CheckEvery)
	}
	if c.Patience <= 0 {
		c.Patience = 2
	}
	if c.MinDelta == 0 {
		c.MinDelta = 1e-4
	}
	return nil
}

// ConvergenceTrace records one metric checkpoint.
type ConvergenceTrace struct {
	Steps  int64
	Metric float64
}

// TrainUntilConverged alternates TrainSteps(CheckEvery) with the caller's
// metric (typically validation Accuracy@10) until Patience consecutive
// checks fail to improve the best seen value by MinDelta, or MaxSteps is
// reached. It returns the checkpoint trace; the model is left at its
// final state. Learning-rate decay (Cfg.TotalSteps) is unchanged — for
// this API a fixed rate (TotalSteps = 0) is the natural pairing, matching
// the paper's fixed α = 0.05.
func (m *Model) TrainUntilConverged(cfg ConvergenceConfig, metric func(m *Model) (float64, error)) ([]ConvergenceTrace, error) {
	if metric == nil {
		return nil, fmt.Errorf("core: nil metric")
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	var trace []ConvergenceTrace
	best := -1.0
	bad := 0
	for trained := int64(0); trained < cfg.MaxSteps; {
		step := cfg.CheckEvery
		if trained+step > cfg.MaxSteps {
			step = cfg.MaxSteps - trained
		}
		m.TrainSteps(step)
		trained += step
		v, err := metric(m)
		if err != nil {
			return trace, err
		}
		trace = append(trace, ConvergenceTrace{Steps: m.Steps(), Metric: v})
		if v > best+cfg.MinDelta {
			best = v
			bad = 0
		} else {
			bad++
			if bad >= cfg.Patience {
				break
			}
		}
	}
	return trace, nil
}
